package mvolap_test

import (
	"fmt"
	"log"

	"mvolap"
)

// caseStudy builds the ICDE 2003 running example: the institution whose
// Organization dimension evolves across 2001-2003.
func caseStudy() *mvolap.Schema {
	s := mvolap.NewSchema("institution", mvolap.Measure{Name: "Amount", Agg: mvolap.Sum})
	org := mvolap.NewDimension("Org", "Org")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	add := func(id mvolap.MVID, name, level string, valid mvolap.Interval) {
		must(org.AddVersion(&mvolap.MemberVersion{ID: id, Member: name, Name: name, Level: level, Valid: valid}))
	}
	add("sales", "Sales", "Division", mvolap.Since(mvolap.Year(2001)))
	add("rnd", "R&D", "Division", mvolap.Since(mvolap.Year(2001)))
	add("jones", "Dpt.Jones", "Department", mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12)))
	add("smith", "Dpt.Smith", "Department", mvolap.Since(mvolap.Year(2001)))
	add("brian", "Dpt.Brian", "Department", mvolap.Since(mvolap.Year(2001)))
	add("bill", "Dpt.Bill", "Department", mvolap.Since(mvolap.Year(2003)))
	add("paul", "Dpt.Paul", "Department", mvolap.Since(mvolap.Year(2003)))
	for _, r := range []mvolap.TemporalRelationship{
		{From: "jones", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12))},
		{From: "smith", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2001, 12))},
		{From: "smith", To: "rnd", Valid: mvolap.Since(mvolap.Year(2002))},
		{From: "brian", To: "rnd", Valid: mvolap.Since(mvolap.Year(2001))},
		{From: "bill", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
		{From: "paul", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
	} {
		must(org.AddRelationship(r))
	}
	must(s.AddDimension(org))
	for _, m := range []mvolap.MappingRelationship{
		{From: "jones", To: "bill",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.4), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
		{From: "jones", To: "paul",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.6), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
	} {
		must(s.AddMapping(m))
	}
	type fact struct {
		id  mvolap.MVID
		yr  int
		amt float64
	}
	for _, f := range []fact{
		{"jones", 2001, 100}, {"smith", 2001, 50}, {"brian", 2001, 100},
		{"jones", 2002, 100}, {"smith", 2002, 100}, {"brian", 2002, 50},
		{"bill", 2003, 150}, {"paul", 2003, 50}, {"smith", 2003, 110}, {"brian", 2003, 40},
	} {
		must(s.InsertFact(mvolap.Coords{f.id}, mvolap.Year(f.yr), f.amt))
	}
	return s
}

// ExampleRun reproduces the paper's Table 9: Q2 presented in the 2002
// organization, where the 2003 amounts of the split departments map
// back exactly onto Dpt.Jones.
func ExampleRun() {
	s := caseStudy()
	out, err := mvolap.Run(s,
		"SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE VERSION AT 2002")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mvolap.Render(out))
	// Output:
	// time | Org.Department | Amount
	// 2002 | Dpt.Brian | 50 (sd)
	// 2002 | Dpt.Jones | 100 (sd)
	// 2002 | Dpt.Smith | 100 (sd)
	// 2003 | Dpt.Brian | 40 (sd)
	// 2003 | Dpt.Jones | 200 (em)
	// 2003 | Dpt.Smith | 110 (sd)
	// mode=V2 quality=0.967
}

// ExampleSchema_StructureVersions shows the automatic partitioning of
// history into structure versions (Definition 9).
func ExampleSchema_StructureVersions() {
	s := caseStudy()
	for _, v := range s.StructureVersions() {
		fmt.Println(v)
	}
	// Output:
	// V1 [01/2001 ; 12/2001]
	// V2 [01/2002 ; 12/2002]
	// V3 [01/2003 ; Now]
}

// ExampleSchema_Execute runs the paper's Q1 in consistent time
// (Table 4) through the programmatic query API.
func ExampleSchema_Execute() {
	s := caseStudy()
	res, err := s.Execute(mvolap.Query{
		GroupBy: []mvolap.GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   mvolap.GrainYear,
		Range:   mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12)),
		Mode:    mvolap.TCM(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("%s %s %v\n", r.TimeKey, r.Groups[0], r.Values[0])
	}
	// Output:
	// 2001 R&D 100
	// 2001 Sales 150
	// 2002 R&D 150
	// 2002 Sales 100
}

// ExampleSchema_AggregateMember aggregates one member directly
// (Definition 12): Sales in 2003 presented in the 2002 structure.
func ExampleSchema_AggregateMember() {
	s := caseStudy()
	v2 := s.VersionAt(mvolap.Year(2002))
	values, cfs, err := s.AggregateMember("sales", mvolap.Year(2003), mvolap.InVersion(v2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sales 2003 in the 2002 structure: %v (%s)\n", values[0], cfs[0])
	// Output:
	// Sales 2003 in the 2002 structure: 200 (em)
}
