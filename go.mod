module mvolap

go 1.22
