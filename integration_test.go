package mvolap_test

// Integration test: one synthetic evolving warehouse driven through
// every tier of the Figure-1 architecture — generation, JSON
// persistence round trip, temporal and multiversion warehouses (both
// storage policies), MOLAP store, cube navigation, TQL, quality
// ranking, and the HTTP server — with cross-tier consistency checks.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/cube"
	"mvolap/internal/molap"
	"mvolap/internal/quality"
	"mvolap/internal/schemaio"
	"mvolap/internal/server"
	"mvolap/internal/tql"
	"mvolap/internal/warehouse"
	"mvolap/internal/workload"
)

func TestEndToEndSyntheticWarehouse(t *testing.T) {
	w := workload.MustGenerate(workload.Config{
		Seed: 99, Departments: 15, Years: 6, EvolutionsPerYear: 3, FactsPerYear: 2,
	})
	s := w.Schema
	if err := s.Validate(); err != nil {
		t.Fatalf("generated schema invalid: %v", err)
	}

	// 1. Persistence round trip preserves query results.
	var buf bytes.Buffer
	if err := schemaio.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	restored, err := schemaio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{
		GroupBy: []core.GroupBy{{Dim: workload.OrgDim, Level: "Division"}},
		Grain:   core.GrainYear,
		Mode:    core.TCM(),
	}
	resA, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := restored.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Rows) != len(resB.Rows) {
		t.Fatalf("round trip changed row count: %d vs %d", len(resA.Rows), len(resB.Rows))
	}
	for i := range resA.Rows {
		if resA.Rows[i].Values[0] != resB.Rows[i].Values[0] {
			t.Fatalf("round trip changed values at row %d", i)
		}
	}

	// 2. Warehouses: delta reconstruction equals full per mode, and the
	// temporal DW fact count matches the schema.
	tdw, err := warehouse.BuildTemporal(s, w.Applier.Log())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := tdw.Query("SELECT COUNT(*) AS n FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(s.Facts().Len()) {
		t.Errorf("temporal DW facts = %v, schema has %d", rel.Rows[0][0], s.Facts().Len())
	}
	full, err := warehouse.BuildMultiVersion(s, warehouse.Full)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := warehouse.BuildMultiVersion(s, warehouse.Delta)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range s.Modes() {
		fr, err := full.FactRows(mode.String())
		if err != nil {
			t.Fatal(err)
		}
		dr, err := delta.FactRows(mode.String())
		if err != nil {
			t.Fatal(err)
		}
		if len(fr.Rows) != len(dr.Rows) {
			t.Errorf("mode %s: full %d rows, delta reconstructs %d", mode, len(fr.Rows), len(dr.Rows))
		}
	}
	if delta.Stats.StoredRows > full.Stats.StoredRows {
		t.Error("delta must not store more than full")
	}

	// 3. MOLAP totals equal engine totals per mode.
	st, err := molap.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range s.Modes() {
		g, err := st.Grid(mode)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Execute(core.Query{Grain: core.GrainAll, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if len(res.Rows) > 0 && !math.IsNaN(res.Rows[0].Values[0]) {
			want = res.Rows[0].Values[0]
		}
		if got := g.TotalSum(0); math.Abs(got-want) > 1e-6 {
			t.Errorf("mode %s: molap %v vs engine %v", mode, got, want)
		}
	}

	// 4. Cube navigation agrees with direct queries.
	c, err := cube.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	view, err := c.NewView()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := view.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.RowLabels) == 0 || len(grid.ColLabels) == 0 {
		t.Fatal("empty cube grid")
	}

	// 5. TQL and quality ranking run in every mode.
	out, err := tql.Run(s, "QUALITY SELECT m0 BY Org.Department, TIME.YEAR")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ranking) != len(s.Modes()) {
		t.Errorf("ranking covers %d of %d modes", len(out.Ranking), len(s.Modes()))
	}
	if out.Ranking[0].Quality < out.Ranking[len(out.Ranking)-1].Quality {
		t.Error("ranking not descending")
	}
	best, err := quality.BestMode(s, core.Query{
		GroupBy: []core.GroupBy{{Dim: workload.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
	}, quality.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if best.Quality != out.Ranking[0].Quality {
		t.Error("BestMode disagrees with TQL QUALITY")
	}

	// 6. The HTTP tier serves the same numbers.
	srv := httptest.NewServer(server.New(s).Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/query?q=" + strings.ReplaceAll(
		"SELECT m0 BY Org.Division, TIME.YEAR MODE tcm", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("http status %d", resp.StatusCode)
	}
	var httpRes struct {
		Rows []struct {
			Time   string     `json:"time"`
			Groups []string   `json:"groups"`
			Values []*float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&httpRes); err != nil {
		t.Fatal(err)
	}
	if len(httpRes.Rows) != len(resA.Rows) {
		t.Fatalf("http rows = %d, direct rows = %d", len(httpRes.Rows), len(resA.Rows))
	}
	for i, hr := range httpRes.Rows {
		key := fmt.Sprintf("%s/%s", hr.Time, hr.Groups[0])
		direct := fmt.Sprintf("%s/%s", resA.Rows[i].TimeKey, resA.Rows[i].Groups[0])
		if key != direct {
			t.Errorf("row %d: http %s vs direct %s", i, key, direct)
		}
		if hr.Values[0] == nil || *hr.Values[0] != resA.Rows[i].Values[0] {
			t.Errorf("row %d: value mismatch", i)
		}
	}
}

// TestSoakLargeWarehouse pushes a larger synthetic warehouse through
// the core invariants. Skipped under -short.
func TestSoakLargeWarehouse(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	w := workload.MustGenerate(workload.Config{
		Seed: 7, Departments: 60, Years: 12, EvolutionsPerYear: 5, FactsPerYear: 4,
	})
	s := w.Schema
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	svs := s.StructureVersions()
	if len(svs) < 6 {
		t.Fatalf("soak workload produced only %d versions", len(svs))
	}
	// Every mode materializes; presented + dropped accounts for sources;
	// coordinates are version leaves.
	for _, mode := range s.Modes() {
		mt, err := s.MultiVersion().Mode(mode)
		if err != nil {
			t.Fatal(err)
		}
		presented := 0
		for _, mf := range mt.Facts() {
			presented += mf.Sources
		}
		if presented+mt.Dropped < s.Facts().Len() {
			t.Fatalf("mode %s: %d presented + %d dropped < %d sources",
				mode, presented, mt.Dropped, s.Facts().Len())
		}
	}
	// Query engine handles the full sweep of modes and grains.
	for _, grain := range []core.TimeGrain{core.GrainAll, core.GrainYear, core.GrainQuarter, core.GrainMonth} {
		res, err := s.Execute(core.Query{
			GroupBy: []core.GroupBy{{Dim: workload.OrgDim, Level: "Division"}},
			Grain:   grain,
			Mode:    core.InVersion(svs[len(svs)-1]),
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("grain %v: empty result", grain)
		}
	}
}
