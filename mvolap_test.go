package mvolap_test

import (
	"strings"
	"testing"

	"mvolap"
)

// buildCaseStudy assembles the paper's running example purely through
// the public façade.
func buildCaseStudy(t testing.TB) *mvolap.Schema {
	t.Helper()
	s := mvolap.NewSchema("institution", mvolap.Measure{Name: "Amount", Agg: mvolap.Sum})
	org := mvolap.NewDimension("Org", "Org")
	add := func(id mvolap.MVID, name, level string, valid mvolap.Interval) {
		if err := org.AddVersion(&mvolap.MemberVersion{ID: id, Member: name, Name: name, Level: level, Valid: valid}); err != nil {
			t.Fatal(err)
		}
	}
	add("sales", "Sales", "Division", mvolap.Since(mvolap.Year(2001)))
	add("rnd", "R&D", "Division", mvolap.Since(mvolap.Year(2001)))
	add("jones", "Dpt.Jones", "Department", mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12)))
	add("smith", "Dpt.Smith", "Department", mvolap.Since(mvolap.Year(2001)))
	add("brian", "Dpt.Brian", "Department", mvolap.Since(mvolap.Year(2001)))
	add("bill", "Dpt.Bill", "Department", mvolap.Since(mvolap.Year(2003)))
	add("paul", "Dpt.Paul", "Department", mvolap.Since(mvolap.Year(2003)))
	rels := []mvolap.TemporalRelationship{
		{From: "jones", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12))},
		{From: "smith", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2001, 12))},
		{From: "smith", To: "rnd", Valid: mvolap.Since(mvolap.Year(2002))},
		{From: "brian", To: "rnd", Valid: mvolap.Since(mvolap.Year(2001))},
		{From: "bill", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
		{From: "paul", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
	}
	for _, r := range rels {
		if err := org.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(org); err != nil {
		t.Fatal(err)
	}
	for _, m := range []mvolap.MappingRelationship{
		{From: "jones", To: "bill",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.4), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
		{From: "jones", To: "paul",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.6), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
	} {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	type row struct {
		id  mvolap.MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{"jones", 2001, 100}, {"smith", 2001, 50}, {"brian", 2001, 100},
		{"jones", 2002, 100}, {"smith", 2002, 100}, {"brian", 2002, 50},
		{"bill", 2003, 150}, {"paul", 2003, 50}, {"smith", 2003, 110}, {"brian", 2003, 40},
	} {
		if err := s.InsertFact(mvolap.Coords{r.id}, mvolap.Year(r.yr), r.amt); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestFacadeEndToEnd(t *testing.T) {
	s := buildCaseStudy(t)
	if got := len(s.StructureVersions()); got != 3 {
		t.Fatalf("structure versions = %d", got)
	}
	out, err := mvolap.Run(s, "SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE VERSION AT 2002")
	if err != nil {
		t.Fatal(err)
	}
	text := mvolap.Render(out)
	if !strings.Contains(text, "Dpt.Jones | 200 (em)") {
		t.Errorf("Table 9 via façade:\n%s", text)
	}
	if mvolap.QualityOf(out.Result) >= 1 {
		t.Error("mapped result quality must be below 1")
	}
	// Direct query API.
	res, err := s.Execute(mvolap.Query{
		GroupBy: []mvolap.GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   mvolap.GrainYear,
		Mode:    mvolap.TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || mvolap.QualityOf(res) != 1 {
		t.Error("tcm query via façade failed")
	}
}

func TestFacadeCube(t *testing.T) {
	s := buildCaseStudy(t)
	c, err := mvolap.NewCube(s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.NewView()
	if err != nil {
		t.Fatal(err)
	}
	g, err := v.DrillDown().SwitchMode(mvolap.InVersion(s.VersionAt(mvolap.Year(2003)))).Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.ColLabels) != 4 {
		t.Errorf("V3 departments = %v", g.ColLabels)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if mvolap.Year(2001) != mvolap.YM(2001, 1) {
		t.Error("Year helper wrong")
	}
	iv := mvolap.Between(mvolap.Year(2001), mvolap.YM(2001, 12))
	if iv.Duration() != 12 {
		t.Error("Between helper wrong")
	}
	if !mvolap.Since(mvolap.Year(2001)).Contains(mvolap.Now - 1) {
		t.Error("Since helper wrong")
	}
	if _, ok := mvolap.Unknown().Map(1); ok {
		t.Error("Unknown helper wrong")
	}
	if v, _ := mvolap.Linear(0.5).Map(10); v != 5 {
		t.Error("Linear helper wrong")
	}
}
