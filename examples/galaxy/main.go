// Galaxy: a fact constellation (§1.1's "galaxy schema") over one
// conformed evolving dimension — a Sales star and a Budget star share
// the Organization dimension of the paper's case study — queried with
// drill-across so actuals and budgets line up per division and year in
// any temporal mode. A data mart is then extracted for the Sales
// division only.
//
// Run with: go run ./examples/galaxy
package main

import (
	"fmt"
	"log"

	"mvolap"
	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/warehouse"
)

func main() {
	sales, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		log.Fatal(err)
	}
	budget := buildBudgetStar(sales)

	c := warehouse.NewConstellation("institution-galaxy")
	must(c.AddStar(sales))
	must(c.AddStar(budget))

	q := core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Division"}},
		Grain:   core.GrainYear,
	}
	fmt.Println("Actuals vs budget per division, consistent time:")
	printDrillAcross(c, q, func(*core.Schema) core.Mode { return core.TCM() })

	fmt.Println("Actuals vs budget per department, everything in the 2002 structure:")
	q2 := core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
	}
	printDrillAcross(c, q2, func(s *core.Schema) core.Mode {
		return core.InVersion(s.VersionAt(mvolap.Year(2002)))
	})

	// A data mart for the Sales subject only (Figure 1's optional tier).
	mart, err := warehouse.ExtractMart(sales, warehouse.MartSpec{
		Name:    "sales-mart",
		Members: map[core.DimID][]string{casestudy.OrgDim: {"Sales"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Extracted mart %q: %d of %d facts, %d structure versions carried over\n",
		mart.Name, mart.Facts().Len(), sales.Facts().Len(), len(mart.StructureVersions()))
	out, err := mvolap.Run(mart, "SELECT Amount BY Org.Department, TIME.YEAR MODE VERSION AT 2002")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mart query (departments in the 2002 structure):")
	fmt.Print(mvolap.Render(out))
}

func printDrillAcross(c *warehouse.Constellation, q core.Query, mode func(*core.Schema) core.Mode) {
	res, err := c.DrillAcross(q, mode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %-12s", "year", "group")
	for _, col := range res.Columns {
		fmt.Printf(" %20s", col)
	}
	fmt.Println()
	for _, r := range res.Rows {
		fmt.Printf("%-6s %-12s", r.TimeKey, r.Groups[0])
		for i, v := range r.Values {
			if v == nil {
				fmt.Printf(" %20s", "-")
			} else {
				fmt.Printf(" %15g (%s)", *v, r.CFs[i])
			}
		}
		fmt.Println()
	}
	fmt.Println()
}

// buildBudgetStar creates the Budget star sharing (a conformed copy of)
// the Sales star's Organization dimension.
func buildBudgetStar(sales *core.Schema) *core.Schema {
	s := core.NewSchema("budget", core.Measure{Name: "Budget", Agg: core.Sum})
	src := sales.Dimension(casestudy.OrgDim)
	d := core.NewDimension(casestudy.OrgDim, "Org")
	for _, mv := range src.Versions() {
		must(d.AddVersion(mv.Clone()))
	}
	for _, r := range src.Relationships() {
		must(d.AddRelationship(r))
	}
	must(s.AddDimension(d))
	// The mapping knowledge (Example 6's split factors) applies to the
	// budget measure just as well: carry the relationships over so the
	// budget star answers every temporal mode too.
	for _, m := range sales.Mappings() {
		must(s.AddMapping(m))
	}
	// Budgets are set ahead of time, so the split departments have 2003
	// budgets while Jones had the 2001-2002 ones.
	type row struct {
		id  core.MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{casestudy.Jones, 2001, 90}, {casestudy.Smith, 2001, 60}, {casestudy.Brian, 2001, 110},
		{casestudy.Jones, 2002, 110}, {casestudy.Smith, 2002, 95}, {casestudy.Brian, 2002, 45},
		{casestudy.Bill, 2003, 120}, {casestudy.Paul, 2003, 70},
		{casestudy.Smith, 2003, 100}, {casestudy.Brian, 2003, 50},
	} {
		must(s.InsertFact(core.Coords{r.id}, mvolap.Year(r.yr), r.amt))
	}
	return s
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
