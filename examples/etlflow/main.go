// ETL flow: the Figure-1 pipeline end-to-end. Successive dimension
// snapshots arrive from an operational source as CSV; the ETL differ
// detects what changed (creations, deletions, reclassifications
// automatically; the split via a designer hint) and compiles the
// changes into evolution operators. Fact feeds are cleaned through a
// transform pipeline and loaded. The result flows into the temporal
// warehouse, the multiversion warehouse, and an OLAP cube.
//
// Run with: go run ./examples/etlflow
package main

import (
	"fmt"
	"log"
	"strings"

	"mvolap"
	"mvolap/internal/cube"
	"mvolap/internal/etl"
	"mvolap/internal/evolution"
	"mvolap/internal/warehouse"
)

// Three yearly snapshots of the organization, as extracted from the
// operational HR system (Tables 1, 2 and 7 of the paper).
var snapshots = []struct {
	year  int
	csv   string
	hints etl.Hints
}{
	{2001, `Department,Division
Dpt.Jones,Sales
Dpt.Smith,Sales
Dpt.Brian,R&D
`, etl.Hints{}},
	{2002, `Department,Division
Dpt.Jones,Sales
Dpt.Smith,R&D
Dpt.Brian,R&D
`, etl.Hints{}},
	{2003, `Department,Division
Dpt.Bill,Sales
Dpt.Paul,Sales
Dpt.Smith,R&D
Dpt.Brian,R&D
`, etl.Hints{Splits: []etl.SplitHint{{
		Source:  "Dpt.Jones",
		Targets: []string{"Dpt.Bill", "Dpt.Paul"},
		Weights: []float64{0.4, 0.6},
	}}}},
}

// The fact feed, with the raw quirks a real source has: padded names
// and amounts in cents that need scaling.
const factFeed = `member,time,amount
Dpt.Jones ,2001,10000
Dpt.Smith,2001,5000
Dpt.Brian,2001,10000
Dpt.Jones,2002,10000
 Dpt.Smith,2002,10000
Dpt.Brian,2002,5000
Dpt.Bill,2003,15000
Dpt.Paul,2003,5000
Dpt.Smith,2003,11000
Dpt.Brian,2003,4000
`

func main() {
	s := mvolap.NewSchema("institution", mvolap.Measure{Name: "Amount", Agg: mvolap.Sum})
	if err := s.AddDimension(mvolap.NewDimension("Org", "Org")); err != nil {
		log.Fatal(err)
	}
	applier := evolution.NewApplier(s)

	for _, snap := range snapshots {
		parsed, err := etl.ReadDimensionSnapshot(strings.NewReader(snap.csv), mvolap.Year(snap.year))
		if err != nil {
			log.Fatal(err)
		}
		ops, err := etl.Diff(s, "Org", parsed, snap.hints)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Snapshot %d: differ emitted %d operators\n", snap.year, len(ops))
		if len(ops) > 0 {
			fmt.Println(indent(evolution.Describe(ops)))
		}
		if err := applier.Apply(ops...); err != nil {
			log.Fatal(err)
		}
	}

	records, err := etl.ReadFacts(strings.NewReader(factFeed), 1)
	if err != nil {
		log.Fatal(err)
	}
	clean := etl.Pipeline{
		etl.TrimMemberSpace(),
		etl.ScaleMeasure(0, 0.01), // cents → units
		etl.DropNegative(0),
	}
	n, err := etl.LoadFacts(s, "Org", records, clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Loaded %d cleaned fact records\n\n", n)

	// Tier 1+2: warehouses.
	tdw, err := warehouse.BuildTemporal(s, applier.Log())
	if err != nil {
		log.Fatal(err)
	}
	rel, err := tdw.Query("SELECT from_name, to_name, k_Amount, confidence FROM meta_mappings ORDER BY to_name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Mapping metadata in the temporal warehouse (Table 12 layout):")
	fmt.Println(indent(rel.String()))

	mvdw, err := warehouse.BuildMultiVersion(s, warehouse.Delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MultiVersion DW (delta storage): %d source rows, %d logical rows, %d stored (saving %.0f%%)\n\n",
		mvdw.Stats.SourceRows, mvdw.Stats.LogicalRows, mvdw.Stats.StoredRows, 100*mvdw.Stats.Saving())

	// Tier 3: the cube, navigated.
	c, err := cube.Build(s)
	if err != nil {
		log.Fatal(err)
	}
	view, err := c.NewView()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := view.DrillDown().
		SwitchMode(mvolap.InVersion(s.VersionAt(mvolap.Year(2003)))).
		Materialize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Cube view: departments in the 2003 presentation (Table 10):")
	fmt.Println(indent(grid.String()))
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n")
}
