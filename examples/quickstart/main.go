// Quickstart: the paper's running example end-to-end through the public
// façade — build the evolving Organization dimension, load the Table 3
// facts, and ask Q1/Q2 in every temporal mode of presentation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mvolap"
)

func main() {
	s := build()

	fmt.Println("Structure versions inferred from the dimension history:")
	for _, v := range s.StructureVersions() {
		fmt.Printf("  %s\n", v)
	}
	fmt.Println()

	queries := []struct {
		title string
		tql   string
	}{
		{"Q1 in consistent time (Table 4)",
			"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm"},
		{"Q1 mapped on the 2001 organization (Table 5)",
			"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE VERSION AT 2001"},
		{"Q1 mapped on the 2002 organization (Table 6)",
			"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE VERSION AT 2002"},
		{"Q2 in consistent time (Table 8)",
			"SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE tcm"},
		{"Q2 mapped on the 2002 organization (Table 9)",
			"SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE VERSION AT 2002"},
		{"Q2 mapped on the 2003 organization (Table 10)",
			"SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE VERSION AT 2003"},
		{"Which mode should I trust? (§5.2 quality ranking)",
			"QUALITY SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003"},
	}
	for _, q := range queries {
		fmt.Println(q.title + ":")
		out, err := mvolap.Run(s, q.tql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(mvolap.Render(out))
		fmt.Println()
	}
}

// build assembles the schema of §2.1: Sales{Jones, Smith}, R&D{Brian}
// in 2001; Smith moves to R&D in 2002; Jones splits into Bill (40%) and
// Paul (60%) in 2003.
func build() *mvolap.Schema {
	s := mvolap.NewSchema("institution", mvolap.Measure{Name: "Amount", Agg: mvolap.Sum})
	org := mvolap.NewDimension("Org", "Org")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	add := func(id mvolap.MVID, name, level string, valid mvolap.Interval) {
		must(org.AddVersion(&mvolap.MemberVersion{ID: id, Member: name, Name: name, Level: level, Valid: valid}))
	}
	add("sales", "Sales", "Division", mvolap.Since(mvolap.Year(2001)))
	add("rnd", "R&D", "Division", mvolap.Since(mvolap.Year(2001)))
	add("jones", "Dpt.Jones", "Department", mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12)))
	add("smith", "Dpt.Smith", "Department", mvolap.Since(mvolap.Year(2001)))
	add("brian", "Dpt.Brian", "Department", mvolap.Since(mvolap.Year(2001)))
	add("bill", "Dpt.Bill", "Department", mvolap.Since(mvolap.Year(2003)))
	add("paul", "Dpt.Paul", "Department", mvolap.Since(mvolap.Year(2003)))

	for _, r := range []mvolap.TemporalRelationship{
		{From: "jones", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2002, 12))},
		// Smith's reclassification: one member version, two links.
		{From: "smith", To: "sales", Valid: mvolap.Between(mvolap.Year(2001), mvolap.YM(2001, 12))},
		{From: "smith", To: "rnd", Valid: mvolap.Since(mvolap.Year(2002))},
		{From: "brian", To: "rnd", Valid: mvolap.Since(mvolap.Year(2001))},
		{From: "bill", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
		{From: "paul", To: "sales", Valid: mvolap.Since(mvolap.Year(2003))},
	} {
		must(org.AddRelationship(r))
	}
	must(s.AddDimension(org))

	// Example 6's mapping relationships keep the link across the split:
	// turnover divides 40/60 forward (approximate), and maps back
	// exactly.
	for _, m := range []mvolap.MappingRelationship{
		{From: "jones", To: "bill",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.4), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
		{From: "jones", To: "paul",
			Forward:  []mvolap.MeasureMapping{{Fn: mvolap.Linear(0.6), CF: mvolap.ApproxMapping}},
			Backward: []mvolap.MeasureMapping{{Fn: mvolap.Identity, CF: mvolap.ExactMapping}}},
	} {
		must(s.AddMapping(m))
	}

	// Table 3.
	type fact struct {
		id  mvolap.MVID
		yr  int
		amt float64
	}
	for _, f := range []fact{
		{"jones", 2001, 100}, {"smith", 2001, 50}, {"brian", 2001, 100},
		{"jones", 2002, 100}, {"smith", 2002, 100}, {"brian", 2002, 50},
		{"bill", 2003, 150}, {"paul", 2003, 50}, {"smith", 2003, 110}, {"brian", 2003, 40},
	} {
		must(s.InsertFact(mvolap.Coords{f.id}, mvolap.Year(f.yr), f.amt))
	}
	return s
}
