// Retail: a Kimball-style product mart whose category tree reorganizes,
// compared across Kimball's SCD types and the multiversion model.
//
// A grocer tracks revenue per product, rolled up to categories. In 2022
// the "Beverages" category is split into "Hot Drinks" and "Cold Drinks"
// (70/30 by revenue), and the "Organic" range is folded into "Produce".
// The example shows what each SCD type answers — and loses — versus the
// multiversion model's presentations with confidence factors.
//
// Run with: go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"mvolap"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/scd"
	"mvolap/internal/temporal"
)

func main() {
	s := buildMart()

	fmt.Println("== Multiversion model ==")
	fmt.Println("Revenue by category, consistent time:")
	show(s, "SELECT Revenue BY Product.Category, TIME.YEAR MODE tcm")
	fmt.Println("Revenue by category, everything presented in the 2022 structure:")
	show(s, "SELECT Revenue BY Product.Category, TIME.YEAR MODE VERSION AT 2022")
	fmt.Println("Revenue by category, everything presented in the 2021 structure:")
	show(s, "SELECT Revenue BY Product.Category, TIME.YEAR MODE VERSION AT 2021")
	fmt.Println("Revenue by product in the 2022 structure (the split apples are am cells):")
	show(s, "SELECT Revenue BY Product.Product, TIME.YEAR MODE VERSION AT 2022")
	fmt.Println("Which presentation is most trustworthy?")
	show(s, "QUALITY SELECT Revenue BY Product.Category, TIME.YEAR")

	fmt.Println("== Kimball SCD baselines on the same history ==")
	runBaselines()
}

func show(s *mvolap.Schema, stmt string) {
	out, err := mvolap.Run(s, stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mvolap.Render(out))
	fmt.Println()
}

// buildMart assembles the mart with evolution operators: categories are
// members too, so the category split is an ordinary Split on the
// Product dimension's upper level.
func buildMart() *mvolap.Schema {
	s := mvolap.NewSchema("retail", mvolap.Measure{Name: "Revenue", Agg: mvolap.Sum})
	d := mvolap.NewDimension("Product", "Product")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	y21 := mvolap.Year(2021)
	add := func(id mvolap.MVID, name, level string) {
		must(d.AddVersion(&mvolap.MemberVersion{ID: id, Member: name, Name: name, Level: level, Valid: mvolap.Since(y21)}))
	}
	add("beverages", "Beverages", "Category")
	add("produce", "Produce", "Category")
	add("organic", "Organic", "Category")
	add("coffee", "Coffee", "Product")
	add("soda", "Soda", "Product")
	add("apples", "Apples", "Product")
	add("kale", "Organic Kale", "Product")
	for _, r := range []mvolap.TemporalRelationship{
		{From: "coffee", To: "beverages", Valid: mvolap.Since(y21)},
		{From: "soda", To: "beverages", Valid: mvolap.Since(y21)},
		{From: "apples", To: "produce", Valid: mvolap.Since(y21)},
		{From: "kale", To: "organic", Valid: mvolap.Since(y21)},
	} {
		must(d.AddRelationship(r))
	}
	must(s.AddDimension(d))

	a := evolution.NewApplier(s)
	y22 := mvolap.Year(2022)
	// 2022: Beverages splits into Hot Drinks (70%) and Cold Drinks (30%).
	must(a.Apply(evolution.Split("Product", "beverages", []evolution.SplitTarget{
		{
			Member:   evolution.NewMember{ID: "hot", Name: "Hot Drinks", Level: "Category"},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.7}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
		{
			Member:   evolution.NewMember{ID: "cold", Name: "Cold Drinks", Level: "Category"},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.3}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
	}, y22)...))
	// The products under the old category move to the new ones.
	must(a.Apply(evolution.ReclassifyMember("Product", "coffee", y22,
		[]mvolap.MVID{"beverages"}, []mvolap.MVID{"hot"})...))
	must(a.Apply(evolution.ReclassifyMember("Product", "soda", y22,
		[]mvolap.MVID{"beverages"}, []mvolap.MVID{"cold"})...))
	// 2022: Organic folds into Produce (an "increase" of Produce);
	// kale follows.
	must(a.Apply(evolution.Merge("Product", []evolution.MergeSource{
		{ID: "organic",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(1, core.Linear{K: 0.2}, core.ApproxMapping)},
		{ID: "produce",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(1, core.Linear{K: 0.8}, core.ApproxMapping)},
	}, evolution.NewMember{ID: "produce2", Name: "Produce", Level: "Category"}, y22)...))
	must(a.Apply(evolution.ReclassifyMember("Product", "kale", y22,
		[]mvolap.MVID{}, []mvolap.MVID{"produce2"})...))
	// 2022: the Apples product line itself splits into Red and Green
	// apples, each estimated at half of past revenue — the case where
	// historic values must be approximated forward (am cells).
	must(a.Apply(evolution.Split("Product", "apples", []evolution.SplitTarget{
		{
			Member:   evolution.NewMember{ID: "apples-red", Name: "Red Apples", Level: "Product", Parents: []mvolap.MVID{"produce2"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.5}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
		{
			Member:   evolution.NewMember{ID: "apples-green", Name: "Green Apples", Level: "Product", Parents: []mvolap.MVID{"produce2"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.5}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
	}, y22)...))

	type fact struct {
		id  mvolap.MVID
		yr  int
		rev float64
	}
	for _, f := range []fact{
		{"coffee", 2021, 700}, {"soda", 2021, 300}, {"apples", 2021, 400}, {"kale", 2021, 100},
		{"coffee", 2022, 800}, {"soda", 2022, 250},
		{"apples-red", 2022, 250}, {"apples-green", 2022, 170}, {"kale", 2022, 150},
	} {
		must(s.InsertFact(mvolap.Coords{f.id}, mvolap.Year(f.yr), f.rev))
	}
	fmt.Printf("Evolution log (%d operators):\n%s\n", len(a.Log()), a.Script())
	return s
}

// runBaselines replays the same history as SCD dimension updates on the
// product → category attribute and reports what each type loses.
func runBaselines() {
	facts := []scd.Fact{
		{Key: "coffee", Time: temporal.Year(2021), Value: 700},
		{Key: "soda", Time: temporal.Year(2021), Value: 300},
		{Key: "apples", Time: temporal.Year(2021), Value: 400},
		{Key: "kale", Time: temporal.Year(2021), Value: 100},
		{Key: "coffee", Time: temporal.Year(2022), Value: 800},
		{Key: "soda", Time: temporal.Year(2022), Value: 250},
		{Key: "apples-red", Time: temporal.Year(2022), Value: 250},
		{Key: "apples-green", Time: temporal.Year(2022), Value: 170},
		{Key: "kale", Time: temporal.Year(2022), Value: 150},
	}
	history := func(d scd.Dimension) {
		d.Set("coffee", "Beverages", temporal.Year(2021))
		d.Set("soda", "Beverages", temporal.Year(2021))
		d.Set("apples", "Produce", temporal.Year(2021))
		d.Set("kale", "Organic", temporal.Year(2021))
		d.Set("coffee", "Hot Drinks", temporal.Year(2022))
		d.Set("soda", "Cold Drinks", temporal.Year(2022))
		d.Set("kale", "Produce", temporal.Year(2022))
		d.Delete("apples", temporal.Year(2022))
		d.Set("apples-red", "Produce", temporal.Year(2022))
		d.Set("apples-green", "Produce", temporal.Year(2022))
	}
	for _, mk := range []func() scd.Dimension{
		func() scd.Dimension { return scd.NewType1() },
		func() scd.Dimension { return scd.NewType2() },
		func() scd.Dimension { return scd.NewType3() },
	} {
		d := mk()
		history(d)
		for _, view := range []scd.View{scd.Current, scd.AtTime} {
			if !d.Supports(view) {
				fmt.Printf("%s: view %s unsupported\n", d.Name(), view)
				continue
			}
			rep := scd.Totals(d, facts, view)
			fmt.Printf("%s, %s view (%d facts lost):\n", d.Name(), view, rep.LostFacts)
			for _, r := range rep.Rows {
				fmt.Printf("  %d %-12s %6g\n", r.Year, r.Group, r.Total)
			}
		}
		fmt.Println()
	}
	fmt.Println("Note what disappeared: Type 1 rewrote 2021 under the 2022 tree with no")
	fmt.Println("trace and no 'Beverages' row; Type 2 kept history but cannot present 2021")
	fmt.Println("data in the 2022 categories; Type 3 remembers only the previous category.")
	fmt.Println("The multiversion model above answers every presentation, with confidence")
	fmt.Println("factors marking exactly which cells are approximations.")
}
