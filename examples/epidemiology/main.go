// Epidemiology: disease surveillance across an administrative
// redistricting — the kind of spatio-temporal application the paper's
// authors built their prototype for.
//
// A health agency counts cases per district, rolled up to health
// regions. On 01/2004 the government redraws the map: district "Nord"
// is split between "Nord-Est" (55% of its population) and "Nord-Ouest"
// (45%); districts "Centre-A" and "Centre-B" merge into "Grand-Centre";
// and region "Littoral" annexes 20% of district "Plateau". Epidemiology
// needs BOTH presentations: incidence trends must be comparable across
// the reform (map old data onto new districts, flagged as estimates),
// and retrospective studies need the data exactly as recorded.
//
// The example also shows value lineage (§5.2): for any estimated cell,
// which source records fed it and through which conversion factors.
//
// Run with: go run ./examples/epidemiology
package main

import (
	"fmt"
	"log"

	"mvolap"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/metadata"
)

func main() {
	s, applier := build()

	fmt.Println("Administrative history:")
	fmt.Print(applier.Script())
	fmt.Println()
	fmt.Println("Structure versions (the reform partitions history):")
	for _, v := range s.StructureVersions() {
		fmt.Printf("  %s\n", v)
	}
	fmt.Println()

	fmt.Println("Cases per district, as recorded (consistent time):")
	show(s, "SELECT Cases BY Geo.District, TIME.YEAR MODE tcm")
	fmt.Println("Cases per district, everything mapped onto the post-reform map:")
	show(s, "SELECT Cases BY Geo.District, TIME.YEAR MODE VERSION AT 2004")
	fmt.Println("Cases per region, post-reform map:")
	show(s, "SELECT Cases BY Geo.Region, TIME.YEAR MODE VERSION AT 2004")
	fmt.Println("Cases per district, pre-reform map (new data mapped backward):")
	show(s, "SELECT Cases BY Geo.District, TIME.YEAR MODE VERSION AT 2003")
	fmt.Println("Mode ranking for the district trend:")
	show(s, "QUALITY SELECT Cases BY Geo.District, TIME.YEAR")

	// Lineage: where does the estimated Nord-Est 2003 value come from?
	v4 := s.VersionAt(mvolap.Year(2004))
	steps, err := metadata.Explain(s, mvolap.InVersion(v4), mvolap.Coords{"nord-est"}, mvolap.Year(2003))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lineage of the estimated cell (Nord-Est, 2003) in the 2004 presentation:")
	fmt.Print(metadata.RenderLineage(s, steps))
}

func show(s *mvolap.Schema, stmt string) {
	out, err := mvolap.Run(s, stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mvolap.Render(out))
	fmt.Println()
}

func build() (*mvolap.Schema, *evolution.Applier) {
	s := mvolap.NewSchema("surveillance", mvolap.Measure{Name: "Cases", Agg: mvolap.Sum})
	g := mvolap.NewDimension("Geo", "Geo")
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	y02 := mvolap.Year(2002)
	add := func(id mvolap.MVID, name, level string) {
		must(g.AddVersion(&mvolap.MemberVersion{ID: id, Member: name, Name: name, Level: level, Valid: mvolap.Since(y02)}))
	}
	add("interieur", "Intérieur", "Region")
	add("littoral", "Littoral", "Region")
	add("nord", "Nord", "District")
	add("centre-a", "Centre-A", "District")
	add("centre-b", "Centre-B", "District")
	add("plateau", "Plateau", "District")
	add("cote", "Côte", "District")
	for _, r := range []mvolap.TemporalRelationship{
		{From: "nord", To: "interieur", Valid: mvolap.Since(y02)},
		{From: "centre-a", To: "interieur", Valid: mvolap.Since(y02)},
		{From: "centre-b", To: "interieur", Valid: mvolap.Since(y02)},
		{From: "plateau", To: "interieur", Valid: mvolap.Since(y02)},
		{From: "cote", To: "littoral", Valid: mvolap.Since(y02)},
	} {
		must(g.AddRelationship(r))
	}
	must(s.AddDimension(g))

	a := evolution.NewApplier(s)
	reform := mvolap.Year(2004)
	// Nord splits 55/45 by population.
	must(a.Apply(evolution.Split("Geo", "nord", []evolution.SplitTarget{
		{
			Member:   evolution.NewMember{ID: "nord-est", Name: "Nord-Est", Level: "District", Parents: []mvolap.MVID{"interieur"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.55}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
		{
			Member:   evolution.NewMember{ID: "nord-ouest", Name: "Nord-Ouest", Level: "District", Parents: []mvolap.MVID{"interieur"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.45}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
	}, reform)...))
	// Centre-A and Centre-B merge; back-mapping by population shares.
	must(a.Apply(evolution.Merge("Geo", []evolution.MergeSource{
		{ID: "centre-a",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(1, core.Linear{K: 0.6}, core.ApproxMapping)},
		{ID: "centre-b",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(1, core.Linear{K: 0.4}, core.ApproxMapping)},
	}, evolution.NewMember{ID: "grand-centre", Name: "Grand-Centre", Level: "District", Parents: []mvolap.MVID{"interieur"}}, reform)...))
	// Littoral annexes 20% of Plateau (partial annexation, Table 11).
	must(a.Apply(evolution.PartialAnnexation("Geo", "plateau", "cote",
		evolution.NewMember{ID: "plateau2", Name: "Plateau", Level: "District", Parents: []mvolap.MVID{"interieur"}},
		evolution.NewMember{ID: "cote2", Name: "Côte", Level: "District", Parents: []mvolap.MVID{"littoral"}},
		reform, 0.2, 0.25, 1)...))

	type fact struct {
		id    mvolap.MVID
		yr    int
		cases float64
	}
	for _, f := range []fact{
		{"nord", 2002, 120}, {"centre-a", 2002, 80}, {"centre-b", 2002, 60}, {"plateau", 2002, 100}, {"cote", 2002, 40},
		{"nord", 2003, 150}, {"centre-a", 2003, 90}, {"centre-b", 2003, 70}, {"plateau", 2003, 110}, {"cote", 2003, 50},
		{"nord-est", 2004, 95}, {"nord-ouest", 2004, 70}, {"grand-centre", 2004, 160},
		{"plateau2", 2004, 95}, {"cote2", 2004, 75},
	} {
		must(s.InsertFact(mvolap.Coords{f.id}, mvolap.Year(f.yr), f.cases))
	}
	return s, a
}
