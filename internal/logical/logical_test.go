package logical

import (
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/rolap"
	"mvolap/internal/temporal"
)

func caseSchema(t *testing.T) *core.Schema {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTMPDimension(t *testing.T) {
	s := caseSchema(t)
	tmp := TMPDimensionOf(s)
	want := []string{"tcm", "V1", "V2", "V3"}
	if len(tmp.Members) != len(want) {
		t.Fatalf("TMP members = %v", tmp.Members)
	}
	for i, w := range want {
		if tmp.Members[i] != w {
			t.Errorf("member[%d] = %q, want %q", i, tmp.Members[i], w)
		}
	}
}

func TestLogicalMeasures(t *testing.T) {
	s := caseSchema(t)
	ms := LogicalMeasures(s)
	if len(ms) != 2 {
		t.Fatalf("measures = %v", ms)
	}
	if ms[0].Name != "Amount" || ms[1].Name != "cf_Amount" {
		t.Errorf("measures = %v", ms)
	}
	if ms[1].Agg != core.Max {
		t.Error("cf measure must aggregate with the pessimistic Max (paper coding is ordered)")
	}
}

// TestRewriteReclassify rewrites the Smith 2002 reclassification as the
// logical level must (§4.2): a new version Smith@01/2002 appears,
// linked by a source-data equivalence mapping.
func TestRewriteReclassify(t *testing.T) {
	// Start from the 2001 organization with Smith under Sales since 2001.
	s := core.NewSchema("org", core.Measure{Name: "Amount", Agg: core.Sum})
	d := core.NewDimension("Org", "Org")
	for _, mv := range []*core.MemberVersion{
		{ID: "Sales", Name: "Sales", Level: "Division", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "R&D", Name: "R&D", Level: "Division", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "Smith", Name: "Dpt.Smith", Level: "Department", Valid: temporal.Since(temporal.Year(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(core.TemporalRelationship{
		From: "Smith", To: "Sales", Valid: temporal.Since(temporal.Year(2001)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	a := evolution.NewApplier(s)
	created, err := RewriteReclassify(a, s, "Org", "Smith", temporal.Year(2002),
		[]core.MVID{"Sales"}, []core.MVID{"R&D"})
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 1 || created[0] != "Smith@01/2002" {
		t.Fatalf("created = %v", created)
	}
	// The old version ends at 12/2001.
	if d.Version("Smith").Valid.End != temporal.YM(2001, 12) {
		t.Errorf("old version end = %v", d.Version("Smith").Valid.End)
	}
	// The new version hangs under R&D.
	ps := d.ParentsAt("Smith@01/2002", temporal.Year(2002))
	if len(ps) != 1 || ps[0].ID != "R&D" {
		t.Errorf("new version parents = %v", ps)
	}
	// Equivalence mapping with source-data confidence exists.
	if len(s.Mappings()) != 1 {
		t.Fatalf("mappings = %v", s.Mappings())
	}
	mp := s.Mappings()[0]
	if mp.From != "Smith" || mp.To != "Smith@01/2002" || mp.Forward[0].CF != core.SourceData {
		t.Errorf("equivalence mapping = %v", mp)
	}
	// Facts recorded on the old version present as source data in the
	// new structure version.
	s.MustInsertFact(core.Coords{"Smith"}, temporal.Year(2001), 50)
	v2 := s.VersionAt(temporal.Year(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := mt.Lookup(core.Coords{"Smith@01/2002"}, temporal.Year(2001))
	if !ok || got.Values[0] != 50 || got.CFs[0] != core.SourceData {
		t.Errorf("mapped presentation = %+v, want 50 (sd)", got)
	}
}

// TestRewriteReclassifyRecursive: reclassifying a non-leaf version
// re-versions all its descendants, the §4.2 consequence the paper
// flags as "not satisfying" but required by attribute-based links.
func TestRewriteReclassifyRecursive(t *testing.T) {
	s := core.NewSchema("org", core.Measure{Name: "m", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, mv := range []*core.MemberVersion{
		{ID: "top1", Name: "Top1", Level: "Top", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "top2", Name: "Top2", Level: "Top", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "mid", Name: "Mid", Level: "Mid", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "leafA", Name: "LeafA", Level: "Leaf", Valid: temporal.Since(temporal.Year(2001))},
		{ID: "leafB", Name: "LeafB", Level: "Leaf", Valid: temporal.Since(temporal.Year(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []core.TemporalRelationship{
		{From: "mid", To: "top1", Valid: temporal.Since(temporal.Year(2001))},
		{From: "leafA", To: "mid", Valid: temporal.Since(temporal.Year(2001))},
		{From: "leafB", To: "mid", Valid: temporal.Since(temporal.Year(2001))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	a := evolution.NewApplier(s)
	created, err := RewriteReclassify(a, s, "D", "mid", temporal.Year(2002),
		[]core.MVID{"top1"}, []core.MVID{"top2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(created) != 3 { // mid', leafA', leafB'
		t.Fatalf("created = %v", created)
	}
	// Descendant versions hang under the new mid version.
	newMid := created[0]
	kids := d.ChildrenAt(newMid, temporal.Year(2002))
	if len(kids) != 2 {
		t.Errorf("new mid children = %v", kids)
	}
	// Old leaves ended.
	if d.Version("leafA").Valid.End != temporal.YM(2001, 12) {
		t.Error("old leafA must end at 12/2001")
	}
	// Equivalence mappings exist for every re-versioned member.
	if len(s.Mappings()) != 3 {
		t.Errorf("mappings = %d, want 3", len(s.Mappings()))
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schema invalid after recursive rewrite: %v", err)
	}
}

func TestRewriteReclassifyErrors(t *testing.T) {
	s := caseSchema(t)
	a := evolution.NewApplier(s)
	if _, err := RewriteReclassify(a, s, "zz", "Smith", temporal.Year(2002), nil, nil); err == nil {
		t.Error("unknown dimension must fail")
	}
	if _, err := RewriteReclassify(a, s, "Org", "zz", temporal.Year(2002), nil, nil); err == nil {
		t.Error("unknown member must fail")
	}
	// Bill is not valid before 2003.
	if _, err := RewriteReclassify(a, s, "Org", casestudy.Bill, temporal.Year(2002), nil, nil); err == nil {
		t.Error("member not valid before the change must fail")
	}
}

func TestBuildParentChild(t *testing.T) {
	s := caseSchema(t)
	db := rolap.NewDatabase("dw")
	names, err := BuildDimensionTables(s, db, ParentChild)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "dim_Org_pc" {
		t.Fatalf("names = %v", names)
	}
	tab := db.Table("dim_Org_pc")
	// 6 relationship rows + 2 unlinked roots (Sales, R&D).
	if tab.Len() != 8 {
		t.Errorf("rows = %d, want 8\n%s", tab.Len(), tab.Relation())
	}
	rel, err := db.Query("SELECT name, parent_id FROM dim_Org_pc WHERE mv_id = 'Dpt.Smith_id' ORDER BY valid_from")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("Smith rows = %d, want 2 (two parent links)", len(rel.Rows))
	}
	if rel.Rows[0][1] != "Sales_id" || rel.Rows[1][1] != "R&D_id" {
		t.Errorf("Smith parents = %v", rel.Rows)
	}
}

func TestBuildStar(t *testing.T) {
	s := caseSchema(t)
	db := rolap.NewDatabase("dw")
	names, err := BuildDimensionTables(s, db, Star)
	if err != nil {
		t.Fatal(err)
	}
	tab := db.Table(names[0])
	if tab == nil {
		t.Fatal("star table missing")
	}
	// Smith's row in V1 carries ancestor Sales; in V2 it carries R&D.
	check := func(sv, anc string) {
		rel, err := db.Query("SELECT anc_Division FROM " + names[0] +
			" WHERE mv_id = 'Dpt.Smith_id' AND sv = '" + sv + "'")
		if err != nil {
			t.Fatal(err)
		}
		if len(rel.Rows) != 1 || rel.Rows[0][0] != anc {
			t.Errorf("%s ancestor = %v, want %s", sv, rel.Rows, anc)
		}
	}
	check("V1", "Sales")
	check("V2", "R&D")
	// Divisions carry themselves as their Division ancestor.
	rel, err := db.Query("SELECT anc_Division FROM " + names[0] + " WHERE mv_id = 'Sales_id' AND sv = 'V1'")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != "Sales" {
		t.Errorf("self ancestor = %v", rel.Rows)
	}
	// Redundancy: member versions repeat across structure versions.
	all, _ := db.Query("SELECT COUNT(*) AS n FROM " + names[0])
	if all.Rows[0][0].(int64) <= 7 {
		t.Errorf("star rows = %v; must exceed the 7 member versions", all.Rows[0][0])
	}
}

func TestBuildSnowflake(t *testing.T) {
	s := caseSchema(t)
	db := rolap.NewDatabase("dw")
	names, err := BuildDimensionTables(s, db, Snowflake)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("snowflake tables = %v", names)
	}
	dept := db.Table("dim_Org_Department")
	div := db.Table("dim_Org_Division")
	if dept == nil || div == nil {
		t.Fatal("level tables missing")
	}
	// Department rows point at division rows.
	rel, err := db.Query("SELECT parent_id FROM dim_Org_Department WHERE sv = 'V2' AND mv_id = 'Dpt.Smith_id'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 || rel.Rows[0][0] != "R&D_id" {
		t.Errorf("snowflake parent = %v", rel.Rows)
	}
	// Divisions are roots (NULL parent).
	rel, err = db.Query("SELECT parent_id FROM dim_Org_Division WHERE sv = 'V1' AND mv_id = 'Sales_id'")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != nil {
		t.Errorf("division parent = %v", rel.Rows[0][0])
	}
}

func TestLayoutString(t *testing.T) {
	if Star.String() != "star" || Snowflake.String() != "snowflake" || ParentChild.String() != "parent-child" {
		t.Error("layout names wrong")
	}
	if Layout(9).String() == "" {
		t.Error("out-of-range layout String")
	}
	db := rolap.NewDatabase("x")
	if _, err := BuildDimensionTables(caseSchema(t), db, Layout(9)); err == nil {
		t.Error("unknown layout must fail")
	}
}
