// Package logical implements the logical-level adaptation of §4 of Body
// et al. (ICDE 2003): how the conceptual temporal multidimensional
// model is represented on current commercial OLAP systems, which only
// know dimensions and fact tables.
//
//   - The set TMP of temporal modes of presentation becomes a 'flat'
//     dimension without hierarchical structure (§4.1), giving the user
//     all the flexibility of an ordinary dimension when exploring cubes
//     (comparing structure versions, switching modes, rotating...).
//   - Each confidence factor becomes an ordinary measure of the fact
//     table, with ⊗cf as its aggregate function (§4.1).
//   - Because commercial tools store hierarchical links as foreign keys
//     inside child attributes, the Reclassify operator cannot change a
//     relationship independently of members; §4.2 rewrites it into
//     Insert + Exclude + Associate with source-data equivalence, and
//     recursively re-versions all descendants.
//   - §5.1 discusses three physical dimension layouts: denormalized
//     (star), normalized (snowflake), and parent-child; all three are
//     generated here on the rolap substrate.
package logical

import (
	"fmt"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/rolap"
	"mvolap/internal/temporal"
)

// TMPDimension describes the flat temporal-mode dimension of §4.1: one
// member per temporal mode of presentation, no hierarchy.
type TMPDimension struct {
	// Members are the mode names: "tcm", "V1", "V2", ...
	Members []string
}

// TMPDimensionOf derives the flat TMP dimension from the schema.
func TMPDimensionOf(s *core.Schema) TMPDimension {
	modes := s.Modes()
	out := TMPDimension{Members: make([]string, len(modes))}
	for i, m := range modes {
		out.Members[i] = m.String()
	}
	return out
}

// LogicalMeasures lists the measures of the logical fact table: the m
// schema measures followed by one confidence measure per schema measure
// (§4.1: "each confidence factor ... may be seen as a measure in the
// fact table").
func LogicalMeasures(s *core.Schema) []core.Measure {
	ms := s.Measures()
	out := make([]core.Measure, 0, 2*len(ms))
	out = append(out, ms...)
	for _, m := range ms {
		out = append(out, core.Measure{Name: "cf_" + m.Name, Agg: core.Max})
	}
	return out
}

// RewriteReclassify performs the §4.2 rewrite of
// Reclassify(Did, mvID, ti, [tf], OldParents, NewParents) for tools
// whose hierarchical links live inside member attributes:
//
//	Insert(Did, mvID', mvName, [A], [level], ti, [tf], P', E)
//	Exclude(Did, mvID, ti)
//	Associate(mvID, mvID', ∪{(x→x, sd)}, ∪{(x→x, sd)})
//
// where P' = (P − OldParents) ∪ NewParents and E are the children of
// mvID. Every child in E is then reclassified recursively to the new
// version mvID'. The new versions take the ID of the old one suffixed
// with "@<ti>". It returns the IDs of all versions created.
func RewriteReclassify(a *evolution.Applier, s *core.Schema, dim core.DimID, id core.MVID,
	at temporal.Instant, oldParents, newParents []core.MVID) ([]core.MVID, error) {
	d := s.Dimension(dim)
	if d == nil {
		return nil, fmt.Errorf("logical: unknown dimension %q", dim)
	}
	mv := d.Version(id)
	if mv == nil {
		return nil, fmt.Errorf("logical: unknown member version %q", id)
	}
	if !mv.ValidAt(at.Prev()) {
		return nil, fmt.Errorf("logical: %q not valid just before %s", id, at)
	}
	// P' = (P − OldParents) ∪ NewParents, computed on the structure just
	// before the change.
	old := make(map[core.MVID]bool, len(oldParents))
	for _, p := range oldParents {
		old[p] = true
	}
	var parents []core.MVID
	seen := make(map[core.MVID]bool)
	for _, p := range d.ParentsAt(id, at.Prev()) {
		if !old[p.ID] && !seen[p.ID] {
			seen[p.ID] = true
			parents = append(parents, p.ID)
		}
	}
	for _, p := range newParents {
		if !seen[p] {
			seen[p] = true
			parents = append(parents, p)
		}
	}
	// E: children of mvID just before the change.
	var children []core.MVID
	for _, c := range d.ChildrenAt(id, at.Prev()) {
		children = append(children, c.ID)
	}

	newID := core.MVID(fmt.Sprintf("%s@%s", id, at))
	measures := len(s.Measures())
	ops := []evolution.Op{
		evolution.Insert{
			Dim: dim, ID: newID, Member: mv.Member, Name: mv.DisplayName(),
			Attrs: mv.Attrs, Level: mv.Level, Start: at, Parents: parents,
		},
		evolution.Exclude{Dim: dim, ID: id, At: at},
		evolution.Associate{Mapping: core.MappingRelationship{
			From:     id,
			To:       newID,
			Forward:  core.UniformMapping(measures, core.Identity, core.SourceData),
			Backward: core.UniformMapping(measures, core.Identity, core.SourceData),
		}},
	}
	if err := a.Apply(ops...); err != nil {
		return nil, err
	}
	created := []core.MVID{newID}
	// Recursively re-version every descendant under the new parent.
	for _, c := range children {
		sub, err := RewriteReclassify(a, s, dim, c, at, []core.MVID{id}, []core.MVID{newID})
		if err != nil {
			return nil, err
		}
		created = append(created, sub...)
	}
	return created, nil
}

// Layout selects one of the §5.1 physical dimension representations.
type Layout uint8

// The three layouts discussed by the paper.
const (
	// Star denormalizes each dimension into a single table whose rows
	// carry the display names of all ancestors per structure version.
	Star Layout = iota
	// Snowflake normalizes levels into separate tables linked by
	// foreign keys, one row per member version and structure version.
	Snowflake
	// ParentChild stores members and links in a single self-referencing
	// table, "close to our conceptual model" (§5.1) — the layout that
	// supports evolution best but (per the paper) not multi-hierarchies
	// in commercial tools.
	ParentChild
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Star:
		return "star"
	case Snowflake:
		return "snowflake"
	case ParentChild:
		return "parent-child"
	}
	return fmt.Sprintf("Layout(%d)", uint8(l))
}

// BuildDimensionTables lays the schema's dimensions out on the database
// in the chosen layout and returns the created table names.
func BuildDimensionTables(s *core.Schema, db *rolap.Database, layout Layout) ([]string, error) {
	switch layout {
	case Star:
		return buildStar(s, db)
	case Snowflake:
		return buildSnowflake(s, db)
	case ParentChild:
		return buildParentChild(s, db)
	}
	return nil, fmt.Errorf("logical: unknown layout %d", layout)
}

// buildParentChild creates one table per dimension:
// (mv_id, member, name, level, parent_id, valid_from, valid_to).
// Rows appear once per parent link (NULL parent for roots), exactly
// mirroring the conceptual temporal graph.
func buildParentChild(s *core.Schema, db *rolap.Database) ([]string, error) {
	var names []string
	for _, d := range s.Dimensions() {
		name := "dim_" + string(d.ID) + "_pc"
		tab, err := db.CreateTable(name, rolap.Schema{
			{Name: "mv_id", Type: rolap.Text},
			{Name: "member", Type: rolap.Text},
			{Name: "name", Type: rolap.Text},
			{Name: "level", Type: rolap.Text},
			{Name: "parent_id", Type: rolap.Text},
			{Name: "valid_from", Type: rolap.Time},
			{Name: "valid_to", Type: rolap.Time},
		})
		if err != nil {
			return nil, err
		}
		linked := make(map[core.MVID]bool)
		for _, r := range d.Relationships() {
			child := d.Version(r.From)
			if err := tab.Insert(string(r.From), child.Member, child.DisplayName(),
				child.Level, string(r.To), r.Valid.Start, r.Valid.End); err != nil {
				return nil, err
			}
			linked[r.From] = true
		}
		for _, mv := range d.Versions() {
			if linked[mv.ID] {
				continue
			}
			if err := tab.Insert(string(mv.ID), mv.Member, mv.DisplayName(),
				mv.Level, nil, mv.Valid.Start, mv.Valid.End); err != nil {
				return nil, err
			}
		}
		if err := tab.CreateIndex("mv_id"); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// buildStar creates one denormalized table per dimension:
// (sv, mv_id, name, level, ancestors as one column per upper level).
// Rows are repeated per structure version — the §5.1 observation that
// running on commercial tools "implies a high level of useless
// redundancies".
func buildStar(s *core.Schema, db *rolap.Database) ([]string, error) {
	svs := s.StructureVersions()
	var names []string
	for _, d := range s.Dimensions() {
		// Determine the global set of level names over all versions.
		levelSet := map[string]bool{}
		var levelOrder []string
		for _, sv := range svs {
			rd := sv.Dimension(d.ID)
			for _, l := range rd.LevelsAt(sv.Valid.Start) {
				if !levelSet[l.Name] {
					levelSet[l.Name] = true
					levelOrder = append(levelOrder, l.Name)
				}
			}
		}
		schema := rolap.Schema{
			{Name: "sv", Type: rolap.Text},
			{Name: "mv_id", Type: rolap.Text},
			{Name: "name", Type: rolap.Text},
			{Name: "level", Type: rolap.Text},
		}
		for _, ln := range levelOrder {
			schema = append(schema, rolap.Column{Name: "anc_" + ln, Type: rolap.Text})
		}
		name := "dim_" + string(d.ID) + "_star"
		tab, err := db.CreateTable(name, schema)
		if err != nil {
			return nil, err
		}
		for _, sv := range svs {
			rd := sv.Dimension(d.ID)
			at := sv.Valid.Start
			for _, mv := range rd.VersionsAt(at) {
				row := []any{sv.ID, string(mv.ID), mv.DisplayName(), rd.LevelOf(mv.ID, at)}
				for _, ln := range levelOrder {
					row = append(row, firstAncestorName(rd, mv.ID, ln, at))
				}
				if err := tab.Insert(row...); err != nil {
					return nil, err
				}
			}
		}
		if err := tab.CreateIndex("mv_id"); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// firstAncestorName finds the display name of an ancestor (or self) of
// id at the named level, or nil.
func firstAncestorName(d *core.Dimension, id core.MVID, level string, at temporal.Instant) any {
	var found any
	seen := map[core.MVID]bool{}
	var walk func(cur core.MVID)
	walk = func(cur core.MVID) {
		if found != nil || seen[cur] {
			return
		}
		seen[cur] = true
		if d.LevelOf(cur, at) == level {
			found = d.Version(cur).DisplayName()
			return
		}
		for _, p := range d.ParentsAt(cur, at) {
			walk(p.ID)
		}
	}
	walk(id)
	return found
}

// buildSnowflake creates one table per (dimension, level):
// (sv, mv_id, name, parent_id), normalized with a foreign key to the
// parent level.
func buildSnowflake(s *core.Schema, db *rolap.Database) ([]string, error) {
	svs := s.StructureVersions()
	var names []string
	for _, d := range s.Dimensions() {
		levelSet := map[string]*rolap.Table{}
		for _, sv := range svs {
			rd := sv.Dimension(d.ID)
			at := sv.Valid.Start
			for _, l := range rd.LevelsAt(at) {
				tab, ok := levelSet[l.Name]
				if !ok {
					name := "dim_" + string(d.ID) + "_" + sanitize(l.Name)
					var err error
					tab, err = db.CreateTable(name, rolap.Schema{
						{Name: "sv", Type: rolap.Text},
						{Name: "mv_id", Type: rolap.Text},
						{Name: "name", Type: rolap.Text},
						{Name: "parent_id", Type: rolap.Text},
					})
					if err != nil {
						return nil, err
					}
					levelSet[l.Name] = tab
					names = append(names, name)
				}
				for _, mv := range l.Members {
					ps := rd.ParentsAt(mv.ID, at)
					if len(ps) == 0 {
						if err := tab.Insert(sv.ID, string(mv.ID), mv.DisplayName(), nil); err != nil {
							return nil, err
						}
						continue
					}
					for _, p := range ps {
						if err := tab.Insert(sv.ID, string(mv.ID), mv.DisplayName(), string(p.ID)); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}
	return names, nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
