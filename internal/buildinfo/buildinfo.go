// Package buildinfo identifies the running build — module version, VCS
// commit, and Go toolchain — from the information the linker embeds
// (debug.ReadBuildInfo). The daemon exposes it as the
// mvolap_build_info metric and a -version flag, and mvolap-bench
// stamps it into every benchmark report, so a JSON result can always
// be traced back to the build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"mvolap/internal/obs"
)

// Info identifies a build.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// source build).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, shortened
	// to 12 characters, with a "+dirty" suffix when the working tree
	// had local modifications; "unknown" outside a VCS checkout.
	Commit string `json:"commit"`
	// Go is the toolchain that compiled the binary.
	Go string `json:"go"`
}

// version and commit are injected by the Makefile's -ldflags -X at
// build time. `go build`/`go run` on a plain package path does not
// stamp VCS information (buildvcs applies to the main module only when
// building from its directory, and `go run` never stamps), so bench
// reports and the build metric were showing "(devel)"/"unknown"; the
// linker injection names the measured commit regardless of how the
// binary was produced. When unset, the debug.ReadBuildInfo fields are
// used as before.
var (
	version string
	commit  string
)

// Get reads the linker-injected identity when present, falling back to
// the toolchain-embedded build information. It never fails: fields
// nobody recorded come back as "unknown" or "(devel)".
func Get() Info {
	info := Info{Version: "(devel)", Commit: "unknown", Go: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		var revision string
		var dirty bool
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				revision = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if revision != "" {
			if len(revision) > 12 {
				revision = revision[:12]
			}
			if dirty {
				revision += "+dirty"
			}
			info.Commit = revision
		}
	}
	if version != "" {
		info.Version = version
	}
	if commit != "" {
		info.Commit = commit
	}
	return info
}

// String renders "version (commit, go)" for -version flags.
func (i Info) String() string {
	return fmt.Sprintf("%s (%s, %s)", i.Version, i.Commit, i.Go)
}

// Register publishes the build as a constant mvolap_build_info gauge
// (value 1, identity in the labels — the Prometheus convention for
// build metadata, joinable against every other series of the process).
func Register(r *obs.Registry) Info {
	info := Get()
	r.GaugeVec("mvolap_build_info",
		"Build identity of the running process (constant 1; see labels).",
		"version", "commit", "go").
		With(info.Version, info.Commit, info.Go).Set(1)
	return info
}
