// Package buildinfo identifies the running build — module version, VCS
// commit, and Go toolchain — from the information the linker embeds
// (debug.ReadBuildInfo). The daemon exposes it as the
// mvolap_build_info metric and a -version flag, and mvolap-bench
// stamps it into every benchmark report, so a JSON result can always
// be traced back to the build that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"mvolap/internal/obs"
)

// Info identifies a build.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// source build).
	Version string `json:"version"`
	// Commit is the VCS revision the binary was built from, shortened
	// to 12 characters, with a "+dirty" suffix when the working tree
	// had local modifications; "unknown" outside a VCS checkout.
	Commit string `json:"commit"`
	// Go is the toolchain that compiled the binary.
	Go string `json:"go"`
}

// Get reads the linker-embedded build information. It never fails:
// fields the toolchain did not record come back as "unknown" or
// "(devel)".
func Get() Info {
	info := Info{Version: "(devel)", Commit: "unknown", Go: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		info.Commit = revision
	}
	return info
}

// String renders "version (commit, go)" for -version flags.
func (i Info) String() string {
	return fmt.Sprintf("%s (%s, %s)", i.Version, i.Commit, i.Go)
}

// Register publishes the build as a constant mvolap_build_info gauge
// (value 1, identity in the labels — the Prometheus convention for
// build metadata, joinable against every other series of the process).
func Register(r *obs.Registry) Info {
	info := Get()
	r.GaugeVec("mvolap_build_info",
		"Build identity of the running process (constant 1; see labels).",
		"version", "commit", "go").
		With(info.Version, info.Commit, info.Go).Set(1)
	return info
}
