package buildinfo

import (
	"strings"
	"testing"

	"mvolap/internal/obs"
)

func TestGet(t *testing.T) {
	info := Get()
	if info.Version == "" || info.Commit == "" || info.Go == "" {
		t.Fatalf("incomplete build info: %+v", info)
	}
	if !strings.HasPrefix(info.Go, "go") {
		t.Fatalf("go version = %q", info.Go)
	}
	s := info.String()
	if !strings.Contains(s, info.Commit) || !strings.Contains(s, info.Go) {
		t.Fatalf("String() = %q does not carry the identity", s)
	}
}

// TestLdflagsOverride pins the precedence: identity injected by the
// Makefile's -ldflags -X wins over whatever the toolchain embedded.
func TestLdflagsOverride(t *testing.T) {
	defer func(v, c string) { version, commit = v, c }(version, commit)
	version, commit = "v9.9.9", "abcdef123456"
	info := Get()
	if info.Version != "v9.9.9" || info.Commit != "abcdef123456" {
		t.Fatalf("ldflags identity not honored: %+v", info)
	}
	version, commit = "", ""
	if info := Get(); info.Version == "v9.9.9" || info.Commit == "abcdef123456" {
		t.Fatalf("fallback still carries the override: %+v", info)
	}
}

func TestRegister(t *testing.T) {
	r := obs.NewRegistry()
	info := Register(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "mvolap_build_info{") {
		t.Fatalf("metric missing from exposition:\n%s", out)
	}
	for _, label := range []string{`version="` + info.Version + `"`, `go="` + info.Go + `"`} {
		if !strings.Contains(out, label) {
			t.Fatalf("exposition missing label %s:\n%s", label, out)
		}
	}
	if !strings.Contains(out, "} 1") {
		t.Fatalf("build info gauge is not 1:\n%s", out)
	}
}
