package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"mvolap/internal/store"
)

// TestFactsRetractEndpoint drives the correction path over HTTP
// against a store-backed leader: append, retract (one appended and one
// seed tuple), and observe the WAL sequence advance, the warm modes
// absorb the retraction without rebuilding, and the query results
// change accordingly.
func TestFactsRetractEndpoint(t *testing.T) {
	srv, st := openServer(t, t.TempDir(), store.Options{})

	code, body := post(t, srv, "/facts", `[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]}]`)
	if code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, body)
	}
	// Materialize the modes the persistence queries use, so the
	// retraction below has warm tables to maintain.
	before := captureState(t, srv)

	code, body = post(t, srv, "/facts/retract",
		`[{"coords":["Dpt.Bill_id"],"time":"2004"},{"coords":["Dpt.Smith_id"],"time":"2002"}]`)
	if code != http.StatusOK {
		t.Fatalf("retract = %d: %s", code, body)
	}
	var resp struct {
		Retracted       int      `json:"retracted"`
		Facts           int      `json:"facts"`
		WALSeq          uint64   `json:"walSeq"`
		ModesSubtracted int      `json:"modesSubtracted"`
		RetainedModes   []string `json:"retainedModes"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("retract body %s: %v", body, err)
	}
	if resp.Retracted != 2 || resp.WALSeq != 2 {
		t.Fatalf("retract resp = %+v, want 2 retracted at walSeq 2", resp)
	}
	if resp.Facts != 9 { // 10 seed + 1 appended - 2 retracted
		t.Fatalf("facts = %d, want 9", resp.Facts)
	}
	// The case study carries a single Sum measure and the retracted
	// tuples are unmerged cells in every mode: all warm modes must
	// absorb the retraction (tombstones), none may rebuild.
	if resp.ModesSubtracted == 0 || len(resp.RetainedModes) == 0 {
		t.Fatalf("retraction rebuilt instead of subtracting: %+v", resp)
	}

	after := captureState(t, srv)
	same := 0
	for i := range before {
		if string(before[i]) == string(after[i]) {
			same++
		}
	}
	if same == len(before) {
		t.Fatal("retraction changed no query answer")
	}

	// Retracting the same tuple again is a whole-batch miss.
	code, body = post(t, srv, "/facts/retract", `[{"coords":["Dpt.Smith_id"],"time":"2002"}]`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("double retract = %d: %s", code, body)
	}
	if st.LastSeq() != 2 {
		t.Fatalf("failed retract advanced the WAL to %d", st.LastSeq())
	}

	// The maintenance metrics are exposed.
	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "mvolap_mvft_retractions_applied_total") {
		t.Error("retraction metrics missing from /metrics")
	}
}

// TestFactsRetractAtomic pins the 422 contract: a batch whose second
// record misses must change nothing — no schema mutation, no WAL
// record, byte-identical query answers.
func TestFactsRetractAtomic(t *testing.T) {
	srv, st := openServer(t, t.TempDir(), store.Options{})
	want := captureState(t, srv)
	seqBefore := st.LastSeq()

	code, body := post(t, srv, "/facts/retract",
		`[{"coords":["Dpt.Smith_id"],"time":"2002"},{"coords":["Dpt.Smith_id"],"time":"2050"}]`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("retract with miss = %d: %s", code, body)
	}
	var errResp struct {
		Error    string `json:"error"`
		FailedAt int    `json:"failedAt"`
		Retained bool   `json:"retained"`
	}
	if err := json.Unmarshal(body, &errResp); err != nil || errResp.FailedAt != 1 || errResp.Retained {
		t.Fatalf("422 envelope = %s (%v)", body, err)
	}
	if st.LastSeq() != seqBefore {
		t.Fatalf("failed batch was logged: seq %d → %d", seqBefore, st.LastSeq())
	}
	assertSameState(t, srv, want)
}

// TestFactsRetractValidation covers the client-error edges shared with
// /facts: malformed JSON and empty batches are 400s, and a server
// without WithEvolution refuses outright.
func TestFactsRetractValidation(t *testing.T) {
	srv := testServer(t, WithEvolution())
	if code, _ := post(t, srv, "/facts/retract", `not json`); code != http.StatusBadRequest {
		t.Error("malformed batch must be 400")
	}
	if code, _ := post(t, srv, "/facts/retract", `[]`); code != http.StatusBadRequest {
		t.Error("empty batch must be 400")
	}
	noEvolve := testServer(t)
	if code, _ := post(t, noEvolve, "/facts/retract", `[{"coords":["Dpt.Smith_id"],"time":"2002"}]`); code != http.StatusForbidden {
		t.Error("retract without WithEvolution must be 403")
	}
}

// TestFollowerRetractConvergence streams a retraction to a live
// follower mid-stream: the follower must apply the retract record and
// answer every persistence query byte-identically to the leader; and
// as a read-only node it must refuse direct retractions, naming the
// leader.
func TestFollowerRetractConvergence(t *testing.T) {
	leaderTS, _, st := startLeader(t, t.TempDir())
	mutate(t, leaderTS) // seqs 1..4: evolutions + a fact batch

	fTS, rep, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	waitApplied(t, rep, 4)

	// Retraction arrives while the follower is streaming.
	code, body := post(t, leaderTS, "/facts/retract",
		`[{"coords":["Dpt.Bill_id"],"time":"2004"},{"coords":["Dpt.Brian_id"],"time":"2003"}]`)
	if code != http.StatusOK {
		t.Fatalf("leader retract = %d: %s", code, body)
	}
	if st.LastSeq() != 5 {
		t.Fatalf("leader seq = %d, want 5", st.LastSeq())
	}
	waitApplied(t, rep, 5)

	want := captureState(t, leaderTS)
	assertSameState(t, fTS, want)

	// A late-joining follower bootstraps the retracted state too.
	f2TS, rep2, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	waitApplied(t, rep2, 5)
	assertSameState(t, f2TS, want)

	// Followers are read-only for corrections like everything else.
	code, body = post(t, fTS, "/facts/retract", `[{"coords":["Dpt.Smith_id"],"time":"2002"}]`)
	if code != http.StatusForbidden || !strings.Contains(string(body), leaderTS.URL) {
		t.Errorf("follower retract = %d: %s", code, body)
	}
}
