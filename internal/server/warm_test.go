package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/obs"
)

// newWarmServer returns the Server itself alongside its test listener,
// so tests can reach through to the served schema's MVFT counters.
func newWarmServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	sch, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sch, WithLogger(quietLogger()), WithEvolution())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// listModes fetches the schema's temporal modes over HTTP.
func listModes(t *testing.T, srv *httptest.Server) []string {
	t.Helper()
	code, body := get(t, srv, "/modes")
	if code != http.StatusOK {
		t.Fatalf("/modes = %d: %s", code, body)
	}
	var entries []struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Mode
	}
	return out
}

// warmAllModes queries every mode once so each MappedTable is cached.
func warmAllModes(t *testing.T, srv *httptest.Server, modes []string) {
	t.Helper()
	for _, m := range modes {
		code, body := get(t, srv, "/query?q="+
			urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE "+m))
		if code != http.StatusOK {
			t.Fatalf("warm query mode %s = %d: %s", m, code, body)
		}
	}
}

type mutateResponse struct {
	RetainedModes []string      `json:"retainedModes"`
	EvictedModes  []string      `json:"evictedModes"`
	DeltaApplies  int           `json:"deltaApplies"`
	Trace         *obs.SpanNode `json:"trace"`
}

// TestFactsWarmSwap is the acceptance test for the tentpole at the
// serving tier: after an insert-only /facts swap, every previously
// cached mode answers on the new schema without a single
// rematerialization — the batch was folded in as a delta.
func TestFactsWarmSwap(t *testing.T) {
	s, srv := newWarmServer(t)
	modes := listModes(t, srv)
	if len(modes) < 2 {
		t.Fatalf("case study has %d modes, want several", len(modes))
	}
	warmAllModes(t, srv, modes)

	code, body := post(t, srv, "/facts?trace=1",
		`[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]},
		  {"coords":["Dpt.Paul_id"],"time":"2004","values":[30]}]`)
	if code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	for _, m := range modes {
		if !slices.Contains(resp.RetainedModes, m) {
			t.Errorf("mode %s not retained across a pure fact batch: %+v", m, resp)
		}
	}
	if len(resp.EvictedModes) != 0 {
		t.Errorf("evicted %v on a pure fact batch", resp.EvictedModes)
	}
	if resp.DeltaApplies != len(modes) {
		t.Errorf("deltaApplies = %d, want %d", resp.DeltaApplies, len(modes))
	}
	if resp.Trace == nil || resp.Trace.Find("mvft_delta") == nil {
		t.Errorf("trace=1 response missing mvft_delta span: %s", body)
	}

	mv := s.snapshot().MultiVersion()
	if b := mv.Materializations(); b != 0 {
		t.Fatalf("swap triggered %d materializations, want 0", b)
	}
	if d := mv.DeltaApplies(); d != int64(len(modes)) {
		t.Fatalf("DeltaApplies = %d, want %d", d, len(modes))
	}

	// Queries on the swapped schema serve from the warm tables — still
	// zero builds — and see the new facts.
	warmAllModes(t, srv, modes)
	if b := s.snapshot().MultiVersion().Materializations(); b != 0 {
		t.Fatalf("post-swap queries rematerialized %d modes, want 0", b)
	}
	code, body = get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2004 AND 2004 MODE tcm"))
	if code != http.StatusOK {
		t.Fatalf("query = %d: %s", code, body)
	}
	var q struct {
		Rows []struct {
			Groups []string   `json:"groups"`
			Values []*float64 `json:"values"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, r := range q.Rows {
		if len(r.Groups) > 0 && r.Groups[0] == "Dpt.Bill" && r.Values[0] != nil && *r.Values[0] == 70 {
			seen = true
		}
	}
	if !seen {
		t.Errorf("delta-applied fact not visible in warm tcm: %s", body)
	}
}

// TestEvolveWarmSwap verifies structure-aware invalidation end to end:
// an EXCLUDE that splits only the tail of history keeps tcm (and any
// untouched version) warm and evicts exactly the modes whose partition
// slice changed.
func TestEvolveWarmSwap(t *testing.T) {
	s, srv := newWarmServer(t)
	modes := listModes(t, srv)
	warmAllModes(t, srv, modes)

	code, body := post(t, srv, "/evolve", "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if !slices.Contains(resp.RetainedModes, "tcm") {
		t.Errorf("tcm evicted by a dimension-only change: %+v", resp)
	}
	if len(resp.EvictedModes) == 0 {
		t.Errorf("no mode evicted although the structure-version partition changed: %+v", resp)
	}
	if slices.Contains(resp.EvictedModes, "tcm") {
		t.Errorf("tcm must never be evicted by dimension changes: %+v", resp)
	}

	// Retained modes answer without builds; querying an evicted mode
	// triggers exactly its one rematerialization.
	mv := s.snapshot().MultiVersion()
	if b := mv.Materializations(); b != 0 {
		t.Fatalf("swap triggered %d materializations, want 0", b)
	}
	warmAllModes(t, srv, resp.RetainedModes)
	if b := mv.Materializations(); b != 0 {
		t.Fatalf("queries in retained modes rebuilt %d times, want 0", b)
	}
	evicted := resp.EvictedModes[0]
	if code, body := get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE "+evicted)); code != http.StatusOK {
		t.Fatalf("query evicted mode %s = %d: %s", evicted, code, body)
	}
	if b := mv.Materializations(); b != 1 {
		t.Fatalf("evicted mode rebuilds = %d, want 1", b)
	}
}

// TestAssociateWarmSwap: a mapping change evicts every version mode
// (the graph is global) but keeps tcm warm.
func TestAssociateWarmSwap(t *testing.T) {
	_, srv := newWarmServer(t)
	modes := listModes(t, srv)
	warmAllModes(t, srv, modes)

	code, body := post(t, srv, "/evolve",
		"ASSOCIATE Dpt.Smith_id Dpt.Brian_id FORWARD - am BACKWARD - am\n")
	if code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	var resp mutateResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.RetainedModes) != 1 || resp.RetainedModes[0] != "tcm" {
		t.Errorf("retained = %v, want exactly tcm", resp.RetainedModes)
	}
	if len(resp.EvictedModes) != len(modes)-1 {
		t.Errorf("evicted = %v, want the %d version modes", resp.EvictedModes, len(modes)-1)
	}
}
