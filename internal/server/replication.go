// Replication endpoints and follower routing. The clone-swap model
// makes every query read-only over an immutable snapshot, so read
// throughput scales by shipping the write-ahead log: a leader streams
// its committed WAL frames (MVOWAL01 framing and CRCs intact) to
// follower processes that rebuild hot state exactly like warm restart
// and serve /query and /schema with warm caches. See
// docs/replication.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mvolap/internal/obs"
	"mvolap/internal/store"
)

// replHeartbeatEvery is how often an idle stream emits a heartbeat
// frame carrying the leader's committed sequence — the follower's
// liveness signal and lag reference.
const replHeartbeatEvery = 1 * time.Second

// replStreamBatchBytes bounds one write on the stream; whole frames
// only, so a batch can exceed it by one frame.
const replStreamBatchBytes = 256 << 10

var (
	metReplStreams = obs.Default().Gauge(
		"mvolap_repl_streams_active",
		"Replication stream connections currently open (leader side).")
	metReplStreamBytes = obs.Default().Counter(
		"mvolap_repl_stream_bytes_total",
		"WAL frame bytes shipped to followers (leader side).")
)

// WithReplica marks the server as a read-only follower replicating
// from rep's leader: mutating endpoints answer 403 with the leader's
// address, /readyz reports replication lag, and ?minWalSeq= waits on
// the replica's applied frontier.
func WithReplica(rep *store.Replica) Option {
	return func(s *Server) { s.replica = rep }
}

// forbidOnReplica answers 403 with the leader's address on a
// follower's mutating endpoints, reporting true when it did.
func (s *Server) forbidOnReplica(w http.ResponseWriter) bool {
	if s.replica == nil {
		return false
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusForbidden)
	json.NewEncoder(w).Encode(map[string]string{
		"error":  "read-only replica: this follower does not accept writes",
		"leader": s.replica.Leader(),
	})
	return true
}

// awaitMinSeq implements read-your-writes: a request carrying
// ?minWalSeq=<seq> (the walSeq a leader write returned) does not run
// until this process has applied that sequence. On the leader the
// check is immediate — an acked write is already visible; on a
// follower it waits, bounded by ctx, for replication to catch up.
func (s *Server) awaitMinSeq(ctx context.Context, r *http.Request) (int, error) {
	v := r.URL.Query().Get("minWalSeq")
	if v == "" {
		return 0, nil
	}
	seq, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return http.StatusBadRequest, fmt.Errorf("bad minWalSeq %q: %w", v, err)
	}
	if s.replica != nil {
		if err := s.replica.WaitForSeq(ctx, seq); err != nil {
			return http.StatusGatewayTimeout, err
		}
		return 0, nil
	}
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	if st == nil {
		return 0, nil // no durability: walSeq has no meaning here
	}
	if last := st.LastSeq(); last < seq {
		return http.StatusGatewayTimeout, fmt.Errorf("wal seq %d not yet committed (last %d)", seq, last)
	}
	return 0, nil
}

// handleWALSnapshot serves the leader's latest snapshot — the
// follower bootstrap payload. A leader that has never snapshotted
// takes one on demand, so bootstrap always succeeds and the stream's
// compaction horizon aligns with what the follower just loaded.
func (s *Server) handleWALSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	if st == nil {
		jsonError(w, http.StatusForbidden, fmt.Errorf("not a leader: no store configured (start with -data-dir)"))
		return
	}
	if s.notReady(w) {
		return
	}
	data, seq, err := st.LatestSnapshotBytes()
	if err != nil {
		s.mu.Lock()
		_, serr := st.Snapshot(s.schema, s.applier.Log(), "bootstrap")
		s.mu.Unlock()
		if serr != nil {
			jsonError(w, http.StatusInternalServerError, fmt.Errorf("bootstrap snapshot: %w", serr))
			return
		}
		if data, seq, err = st.LatestSnapshotBytes(); err != nil {
			jsonError(w, http.StatusInternalServerError, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(store.WALSeqHeader, strconv.FormatUint(seq, 10))
	w.Write(data)
}

// handleWALStream streams committed WAL frames from ?from=<seq>
// onward: the MVOWAL01 magic once, then length-prefixed CRC-checked
// frames exactly as they sit in the log, heartbeats when idle. The
// response never ends on its own — it holds until the client
// disconnects, the server shuts down, or the resume position turns
// out to be compacted (in which case the follower re-bootstraps).
func (s *Server) handleWALStream(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	if st == nil {
		jsonError(w, http.StatusForbidden, fmt.Errorf("not a leader: no store configured (start with -data-dir)"))
		return
	}
	if s.notReady(w) {
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		seq, err := strconv.ParseUint(v, 10, 64)
		if err != nil || seq == 0 {
			jsonError(w, http.StatusBadRequest, fmt.Errorf("bad from %q", v))
			return
		}
		from = seq
	}
	if snap := st.SnapshotSeq(); from <= snap {
		// Those records live only inside the snapshot now: the follower
		// must bootstrap from /wal/snapshot before streaming.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(store.WALSeqHeader, strconv.FormatUint(st.LastSeq(), 10))
		w.WriteHeader(http.StatusGone)
		json.NewEncoder(w).Encode(map[string]any{
			"error":       "requested WAL records compacted into a snapshot; bootstrap from /wal/snapshot",
			"snapshotSeq": snap,
		})
		return
	}

	// The stream outlives any server write timeout; the follower's
	// staleness watchdog is the liveness bound instead.
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(store.WALSeqHeader, strconv.FormatUint(st.LastSeq(), 10))
	w.WriteHeader(http.StatusOK)
	if _, err := io.WriteString(w, store.WALMagic); err != nil {
		return
	}
	rc.Flush()

	// End the stream when the daemon begins graceful shutdown, not
	// just when the client goes away — followers reconnect on their own.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.closing:
			cancel()
		case <-ctx.Done():
		}
	}()

	metReplStreams.Add(1)
	defer metReplStreams.Add(-1)
	sr := st.StreamFrom(from)
	defer sr.Close()
	for {
		frames, last, err := sr.Next(ctx, replStreamBatchBytes, replHeartbeatEvery)
		switch {
		case err == nil:
			if _, werr := w.Write(frames); werr != nil {
				return
			}
			metReplStreamBytes.Add(int64(len(frames)))
			rc.Flush()
		case errors.Is(err, store.ErrStreamIdle):
			hb, herr := store.HeartbeatFrame(last)
			if herr != nil {
				return
			}
			if _, werr := w.Write(hb); werr != nil {
				return
			}
			metReplStreamBytes.Add(int64(len(hb)))
			rc.Flush()
		default:
			// Client disconnect, shutdown, mid-stream compaction, or a
			// store error: close; the follower re-negotiates on reconnect.
			if !errors.Is(err, context.Canceled) {
				s.logger.Warn("wal stream ended", "from", from, "lastSent", last, "err", err)
			}
			return
		}
	}
}
