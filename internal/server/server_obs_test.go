package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/obs"
)

// TestMetricsEndpoint asserts the acceptance criterion: after
// exercising /query, GET /metrics serves the query latency histogram,
// the per-endpoint request counters, and the mode-cache hit/miss
// counters in Prometheus text format.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	q := "/query?q=" + urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	for i := 0; i < 2; i++ { // second run hits the mode cache
		if code, body := get(t, srv, q); code != http.StatusOK {
			t.Fatalf("query = %d: %s", code, body)
		}
	}
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	out := string(body)
	for _, want := range []string{
		`mvolap_http_requests_total{endpoint="/query",code="200"}`,
		`mvolap_http_request_seconds_bucket{endpoint="/query",le="+Inf"}`,
		`mvolap_http_request_seconds_count{endpoint="/query"}`,
		"mvolap_mode_cache_hits_total",
		"mvolap_mode_cache_misses_total",
		`mvolap_materialize_seconds_count{mode="tcm"}`,
		"mvolap_query_facts_scanned_total",
		"mvolap_http_in_flight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestDebugVarsEndpoint asserts the JSON flavour of the registry.
func TestDebugVarsEndpoint(t *testing.T) {
	srv := testServer(t)
	get(t, srv, "/query?q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"))
	code, body := get(t, srv, "/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("debug/vars = %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	for _, want := range []string{
		"mvolap_http_requests_total",
		"mvolap_mode_cache_misses_total",
		"mvolap_materialize_seconds",
	} {
		if _, ok := snap[want]; !ok {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

// TestQueryTrace asserts the acceptance criterion for ?trace=1: the
// response embeds a span tree containing at least the parse,
// materialize and aggregate stages.
func TestQueryTrace(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")+"&trace=1")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var resp struct {
		Rows  []json.RawMessage `json:"rows"`
		Trace *obs.SpanNode     `json:"trace"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Rows) == 0 {
		t.Fatal("traced query should still return rows")
	}
	if resp.Trace == nil {
		t.Fatal("trace=1 response has no trace")
	}
	for _, stage := range []string{"parse", "materialize", "aggregate"} {
		if resp.Trace.Find(stage) == nil {
			t.Errorf("trace missing %q span:\n%s", stage, body)
		}
	}
	// Without trace=1 the field is absent.
	_, body = get(t, srv, "/query?q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"))
	if strings.Contains(string(body), `"trace"`) {
		t.Error("untraced response should omit the trace field")
	}
}

// TestEmptyResultJSONShape is the golden test for the empty-result
// encoding: rows must be [] and never null.
func TestEmptyResultJSONShape(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 1990 AND 1991 MODE tcm"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"rows": []`) {
		t.Errorf("empty result should encode rows as [], got:\n%s", body)
	}
	if strings.Contains(string(body), `"rows": null`) {
		t.Errorf("rows must never be null:\n%s", body)
	}
	var resp struct {
		Rows []json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rows == nil || len(resp.Rows) != 0 {
		t.Errorf("rows = %v, want empty non-nil", resp.Rows)
	}
}

// TestNoMeasureJSONShape is the golden test for statements whose
// output carries no measured rows (MODES, EXPLAIN): the rows array is
// still [] and per-row arrays are never null anywhere.
func TestNoMeasureJSONShape(t *testing.T) {
	srv := testServer(t)
	for _, q := range []string{"MODES", "EXPLAIN Dpt.Jones_id AT 2003 MODE V2"} {
		code, body := get(t, srv, "/query?q="+urlEncode(q))
		if code != http.StatusOK {
			t.Fatalf("%s status = %d: %s", q, code, body)
		}
		if !strings.Contains(string(body), `"rows": []`) {
			t.Errorf("%s: rows should encode as []:\n%s", q, body)
		}
	}
	// A real result's per-row arrays are present and non-null.
	_, body := get(t, srv, "/query?q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"))
	var resp struct {
		Rows []struct {
			Groups []string   `json:"groups"`
			Values []*float64 `json:"values"`
			CFs    []string   `json:"cfs"`
			Colors []string   `json:"colors"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Rows {
		if r.Groups == nil || r.Values == nil || r.CFs == nil || r.Colors == nil {
			t.Fatalf("row %d has a null array: %+v", i, r)
		}
	}
}

// TestQueryCancelledContext asserts the cancellation criterion at the
// HTTP layer: a request whose context is already cancelled returns
// promptly with 499 (client closed request).
func TestQueryCancelledContext(t *testing.T) {
	sch, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	h := New(sch, WithLogger(quietLogger())).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/query?q="+
		urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"), nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	done := make(chan struct{})
	go func() { h.ServeHTTP(rr, req); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query did not return promptly")
	}
	if rr.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", rr.Code, StatusClientClosedRequest, rr.Body)
	}
	if !strings.Contains(rr.Body.String(), "cancel") {
		t.Errorf("body should report cancellation: %s", rr.Body)
	}
}

// TestQueryTimeout asserts the per-request deadline flavour: an
// expired deadline maps to 504.
func TestQueryTimeout(t *testing.T) {
	srv := testServer(t, WithQueryTimeout(time.Nanosecond))
	code, body := get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", code, body)
	}
}

// TestEvolveFailureEnvelope asserts the partial-application report: a
// batch failing mid-way returns 422 with applied/failedAt/failedOp and
// leaves the served schema untouched (copy-on-write).
func TestEvolveFailureEnvelope(t *testing.T) {
	srv := testServer(t, WithEvolution())
	_, before := get(t, srv, "/schema")

	script := "EXCLUDE Org Dpt.Brian_id AT 01/2004\nEXCLUDE Org nobody AT 01/2004\n"
	resp, err := http.Post(srv.URL+"/evolve", "text/plain", strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var envelope struct {
		Error    string `json:"error"`
		Applied  int    `json:"applied"`
		FailedAt int    `json:"failedAt"`
		FailedOp string `json:"failedOp"`
		Retained bool   `json:"retained"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Applied != 1 || envelope.FailedAt != 1 || envelope.Retained {
		t.Errorf("envelope = %+v, want applied=1 failedAt=1 retained=false", envelope)
	}
	if !strings.Contains(envelope.FailedOp, "nobody") {
		t.Errorf("failedOp = %q, want the failing operator description", envelope.FailedOp)
	}

	// Copy-on-write: the served schema did not change at all — not even
	// the successfully applied prefix.
	_, after := get(t, srv, "/schema")
	if string(before) != string(after) {
		t.Error("failed evolution batch mutated the served schema")
	}
}

// TestQueryVsEvolveRace drives queries and evolutions concurrently;
// meaningful under -race. Queries must keep returning consistent
// results from their snapshot while evolutions swap the schema.
func TestQueryVsEvolveRace(t *testing.T) {
	srv := testServer(t, WithEvolution())
	q := "/query?q=" + urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if code, body := get(t, srv, q); code != http.StatusOK {
					t.Errorf("query = %d: %s", code, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		scripts := []string{
			"EXCLUDE Org Dpt.Brian_id AT 01/2004\n",
			"EXCLUDE Org Dpt.Smith_id AT 01/2005\n",
			"EXCLUDE Org nobody AT 01/2004\n", // fails; must not disturb readers
		}
		for _, sc := range scripts {
			resp, err := http.Post(srv.URL+"/evolve", "text/plain", strings.NewReader(sc))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode >= 500 {
				t.Errorf("evolve = %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}

// TestPprofGate asserts /debug/pprof/ is mounted only with WithPprof.
func TestPprofGate(t *testing.T) {
	off := testServer(t)
	if code, _ := get(t, off, "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without WithPprof = %d, want 404", code)
	}
	on := testServer(t, WithPprof())
	if code, _ := get(t, on, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof with WithPprof = %d, want 200", code)
	}
}

// TestModesUnchangedByConcurrentReaders pins snapshot consistency: a
// reader that grabbed its schema before an evolution keeps serving the
// old structure for the rest of its request.
func TestSnapshotServesConsistentSchema(t *testing.T) {
	sch, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	s := New(sch, WithLogger(quietLogger()), WithEvolution())
	snap := s.snapshot()
	if snap != sch {
		t.Fatal("snapshot should be the served schema pointer")
	}
	// Swap in a clone as an evolution would; the old snapshot still
	// answers queries against the old structure.
	s.mu.Lock()
	s.schema = sch.Clone()
	s.mu.Unlock()
	if s.snapshot() == snap {
		t.Fatal("snapshot should observe the swap")
	}
	if _, err := snap.Execute(core.Query{
		GroupBy: []core.GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   core.GrainYear,
		Mode:    core.TCM(),
	}); err != nil {
		t.Fatalf("old snapshot no longer queryable: %v", err)
	}
}
