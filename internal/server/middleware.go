package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"mvolap/internal/obs"
)

// Serving-tier metrics, served back out at GET /metrics. Names are
// documented in docs/observability.md.
var (
	metHTTPRequests = obs.Default().CounterVec(
		"mvolap_http_requests_total",
		"HTTP requests by endpoint and status code.",
		"endpoint", "code")
	metHTTPSeconds = obs.Default().HistogramVec(
		"mvolap_http_request_seconds",
		"HTTP request latency by endpoint.",
		nil, "endpoint")
	metHTTPInFlight = obs.Default().Gauge(
		"mvolap_http_in_flight",
		"HTTP requests currently being served.")
	metSlowQueries = obs.Default().Counter(
		"mvolap_http_slow_queries_total",
		"Query requests slower than the slow-query threshold.")
)

// statusRecorder captures the status code written by a handler so the
// middleware can label metrics and the access log with it.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer so http.NewResponseController
// reaches Flush and the per-request deadline overrides the WAL stream
// endpoint needs.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// logExtra lets a handler attach response-derived fields (the query's
// quality factor) to the access-log line the middleware emits.
type logExtra struct {
	quality    float64
	hasQuality bool
}

type logExtraKey struct{}

// setQuality records the result's quality factor for the access log.
func setQuality(ctx context.Context, q float64) {
	if e, ok := ctx.Value(logExtraKey{}).(*logExtra); ok {
		e.quality = q
		e.hasQuality = true
	}
}

// quiet endpoints are logged at Debug so scrapes and liveness probes
// do not drown the access log.
func quietEndpoint(endpoint string) bool {
	switch endpoint {
	case "/healthz", "/readyz", "/metrics", "/debug/vars", "/debug/pprof/":
		return true
	}
	return false
}

// instrument wraps a handler with the serving-tier observability:
// in-flight gauge, per-endpoint request counter and latency histogram,
// the structured access log, and the slow-query log.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		metHTTPInFlight.Add(1)
		defer metHTTPInFlight.Add(-1)
		extra := &logExtra{}
		r = r.WithContext(context.WithValue(r.Context(), logExtraKey{}, extra))
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		dur := time.Since(start)
		metHTTPRequests.With(endpoint, strconv.Itoa(rec.code)).Inc()
		metHTTPSeconds.With(endpoint).Observe(dur.Seconds())

		attrs := []any{
			"method", r.Method,
			"endpoint", endpoint,
			"path", r.URL.Path,
			"status", rec.code,
			"bytes", rec.bytes,
			"ms", float64(dur) / float64(time.Millisecond),
		}
		if q := r.URL.Query().Get("q"); q != "" {
			attrs = append(attrs, "q", q)
		}
		if extra.hasQuality {
			attrs = append(attrs, "quality", extra.quality)
		}
		level := slog.LevelInfo
		if quietEndpoint(endpoint) {
			level = slog.LevelDebug
		}
		s.logger.Log(r.Context(), level, "request", attrs...)

		if endpoint == "/query" && s.slowQuery > 0 && dur >= s.slowQuery {
			metSlowQueries.Inc()
			s.logger.Warn("slow query", attrs...)
		}
	}
}
