package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/store"
)

// The warm-restart acceptance scenario over HTTP: mutate, materialize
// every temporal mode, snapshot warm, append a WAL tail, SIGKILL
// (abandon the store), restart — the first query in each retained mode
// must perform zero materializations and answer byte-identically to a
// cold-rebuild control.

// openWarmServer is openServer with warm snapshots enabled, also
// returning the served schema so the test can count materializations.
func openWarmServer(t *testing.T, dir string) (*httptest.Server, *store.Store, *core.Schema) {
	t.Helper()
	seed, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	st, sch, applier, err := store.Open(dir, seed, store.Options{SnapshotWarm: true, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil, WithLogger(quietLogger()), WithEvolution())
	s.Install(sch, applier, st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, st, sch
}

// modeQuery is the per-mode probe whose answers the restart must
// preserve bit for bit.
func modeQuery(mode string) string {
	return "/query?q=" + urlEncode("SELECT Amount BY Org.Department, TIME.YEAR MODE "+mode)
}

// queryModes runs the probe in every given mode and returns the raw
// bodies, keyed by mode.
func queryModes(t *testing.T, srv *httptest.Server, modes []string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, m := range modes {
		code, body := get(t, srv, modeQuery(m))
		if code != http.StatusOK {
			t.Fatalf("query mode %s = %d: %s", m, code, body)
		}
		out[m] = body
	}
	return out
}

func TestCrashRecoveryWarmRestartHTTP(t *testing.T) {
	dir := t.TempDir()
	srv, _, _ := openWarmServer(t, dir)
	mutate(t, srv) // WAL 1..4: three evolves + a fact batch

	// Materialize every temporal mode through the query path.
	code, body := get(t, srv, "/modes")
	if code != http.StatusOK {
		t.Fatalf("modes = %d: %s", code, body)
	}
	var modeList []struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(body, &modeList); err != nil {
		t.Fatal(err)
	}
	var modes []string
	for _, m := range modeList {
		modes = append(modes, m.Mode)
	}
	if len(modes) < 4 {
		t.Fatalf("fixture has %d modes, want >= 4", len(modes))
	}
	queryModes(t, srv, modes)

	// Warm snapshot, then a WAL-tail fact batch the snapshot does not
	// cover.
	code, body = post(t, srv, "/admin/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", code, body)
	}
	var snap struct {
		WarmModes []string `json:"warmModes"`
	}
	if err := json.Unmarshal(body, &snap); err != nil || len(snap.WarmModes) < 4 {
		t.Fatalf("snapshot warmModes = %+v, %v: %s", snap, err, body)
	}
	if code, body := post(t, srv, "/facts",
		`[{"coords":["Dpt.Smith_id"],"time":"2005","values":[11]}]`); code != http.StatusOK {
		t.Fatalf("tail facts = %d: %s", code, body)
	}
	srv.Close() // the store is abandoned un-closed: simulated SIGKILL

	srv2, st2, sch2 := openWarmServer(t, dir)
	stats := st2.RecoveryStats()
	if stats.Replayed != 1 {
		t.Errorf("replayed = %d, want the 1 post-snapshot record", stats.Replayed)
	}
	warm := stats.WarmModes
	if len(warm) < 4 {
		t.Fatalf("WarmModes = %v, want >= 4", warm)
	}

	// /readyz reports the warm-restored modes.
	code, body = get(t, srv2, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}
	var ready struct {
		Status            string   `json:"status"`
		WarmRestoredModes []string `json:"warmRestoredModes"`
	}
	if err := json.Unmarshal(body, &ready); err != nil || ready.Status != "ready" {
		t.Fatalf("readyz body = %s (%v)", body, err)
	}
	if len(ready.WarmRestoredModes) != len(warm) {
		t.Errorf("readyz warmRestoredModes = %v, want %v", ready.WarmRestoredModes, warm)
	}

	// First query per retained mode: zero materializations.
	got := queryModes(t, srv2, warm)
	if builds := sch2.MultiVersion().Materializations(); builds != 0 {
		t.Errorf("first queries after warm restart performed %d materializations, want 0", builds)
	}

	// Byte-identical to a cold-rebuild control over the same recovered
	// state.
	coldSrv := New(nil, WithLogger(quietLogger()))
	coldSrv.Install(sch2.Clone(), nil, nil)
	ctrl := httptest.NewServer(coldSrv.Handler())
	t.Cleanup(ctrl.Close)
	want := queryModes(t, ctrl, warm)
	for _, m := range warm {
		if string(got[m]) != string(want[m]) {
			t.Errorf("mode %s: warm answer differs from cold rebuild:\n%s\nwant:\n%s", m, got[m], want[m])
		}
	}

	// Warm restore is visible in /metrics.
	code, metrics := get(t, srv2, "/metrics")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !strings.Contains(string(metrics), "mvolap_mvft_warm_restore_total") {
		t.Error("/metrics missing mvolap_mvft_warm_restore_total")
	}
}
