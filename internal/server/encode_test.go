package server

import (
	"math"
	"math/rand"
	"testing"
)

func fp(v float64) *float64 { return &v }

// TestEncodeQueryResponseMatchesStdlib pins the hand-rolled encoder to
// encoding/json byte for byte across the shapes and edge cases the
// serving tier can produce.
func TestEncodeQueryResponseMatchesStdlib(t *testing.T) {
	cases := []struct {
		name string
		resp queryResponse
	}{
		{"empty", queryResponse{Rows: []queryRow{}}},
		{"nil rows", queryResponse{}},
		{"quality only", queryResponse{Rows: []queryRow{}, Quality: 0.6180339887498949}},
		{"dropped", queryResponse{Rows: []queryRow{}, Quality: 1, Dropped: 42}},
		{"full", queryResponse{
			Measures: []string{"amount", "count"},
			Groups:   []string{"Org.Division", "TIME.YEAR"},
			Mode:     "tcm",
			Quality:  0.875,
			Rows: []queryRow{
				{
					Time:   "1999",
					Groups: []string{"East", "1999"},
					Values: []*float64{fp(12.5), nil},
					CFs:    []string{"EM", "NM"},
					Colors: []string{"green", "red"},
				},
				{
					Time:   "2000-Q1",
					Groups: []string{"West <&> \"quoted\"\nnewline\ttab"},
					Values: []*float64{fp(0), fp(-0.0)},
					CFs:    []string{"AM(0.50)"},
					Colors: []string{"orange"},
				},
			},
		}},
		{"empty inner arrays", queryResponse{
			Rows: []queryRow{{Time: "1999", Groups: []string{}, Values: []*float64{}, CFs: []string{}, Colors: []string{}}},
		}},
		{"nil inner arrays", queryResponse{
			Rows: []queryRow{{Time: "1999"}},
		}},
		{"float extremes", queryResponse{
			Quality: 1e-7,
			Rows: []queryRow{{
				Time:   "x",
				Groups: []string{},
				Values: []*float64{
					fp(1e21), fp(1e20), fp(-1e21), fp(1e-6), fp(9.999999e-7),
					fp(math.MaxFloat64), fp(math.SmallestNonzeroFloat64),
					fp(123456789.123456789), fp(0.1), fp(-2.5),
				},
				CFs:    []string{},
				Colors: []string{},
			}},
		}},
		{"string edge cases", queryResponse{
			Mode: "version at 1999",
			Rows: []queryRow{{
				Time: "\x00\x01\x1f\x7f",
				Groups: []string{
					"héllo wörld", "\u2028line\u2029sep", "日本語",
					string([]byte{0xff, 0xfe, 'a'}), "<script>&amp;</script>",
					"back\\slash \"quote\"",
				},
				Values: []*float64{},
				CFs:    []string{},
				Colors: []string{},
			}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := encodeQueryResponse(tc.resp)
			want := encodeJSON(tc.resp)
			if string(got) != string(want) {
				t.Errorf("encoder diverges from encoding/json\n got: %q\nwant: %q", got, want)
			}
		})
	}
}

// TestEncodeQueryResponseRandomized cross-checks the encoder against
// encoding/json on seeded random responses: random row counts, random
// strings over a byte alphabet rich in escapes, random floats spanning
// the format-switch boundaries, and random nil values.
func TestEncodeQueryResponseRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("ab \"\\<>&\n\r\t\x00\x1fé\xff日")
	randStr := func() string {
		n := rng.Intn(12)
		b := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			b = append(b, alphabet[rng.Intn(len(alphabet))])
		}
		return string(b)
	}
	randStrs := func() []string {
		switch rng.Intn(4) {
		case 0:
			return nil
		case 1:
			return []string{}
		}
		out := make([]string, rng.Intn(3)+1)
		for i := range out {
			out[i] = randStr()
		}
		return out
	}
	randFloat := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return rng.Float64() * 1e-6 * 2 // straddles the 'e' switch
		case 2:
			return rng.Float64() * 2e21
		case 3:
			return -rng.NormFloat64() * 1e3
		default:
			return float64(rng.Intn(10000)) / 16
		}
	}
	for trial := 0; trial < 500; trial++ {
		resp := queryResponse{
			Measures: randStrs(),
			Groups:   randStrs(),
			Mode:     randStr(),
			Quality:  randFloat(),
			Dropped:  rng.Intn(3),
		}
		if rng.Intn(8) > 0 {
			resp.Rows = []queryRow{}
			for i := rng.Intn(4); i > 0; i-- {
				qr := queryRow{
					Time:   randStr(),
					Groups: randStrs(),
					CFs:    randStrs(),
					Colors: randStrs(),
				}
				switch rng.Intn(4) {
				case 0:
					qr.Values = nil
				case 1:
					qr.Values = []*float64{}
				default:
					for j := rng.Intn(4); j >= 0; j-- {
						if rng.Intn(4) == 0 {
							qr.Values = append(qr.Values, nil)
						} else {
							qr.Values = append(qr.Values, fp(randFloat()))
						}
					}
				}
				resp.Rows = append(resp.Rows, qr)
			}
		}
		got := encodeQueryResponse(resp)
		want := encodeJSON(resp)
		if string(got) != string(want) {
			t.Fatalf("trial %d: encoder diverges\nresp: %+v\n got: %q\nwant: %q", trial, resp, got, want)
		}
	}
}
