package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/store"
)

// These tests drive the replication acceptance scenario over real
// HTTP: a leader with a store, followers that bootstrap from its
// snapshot and apply its streamed WAL, evolution and fact batches on
// the leader, a follower killed and restarted mid-stream, and the
// requirement that every converged follower answers /query and
// /schema byte-identically to the leader.

// startLeader opens a store-backed leader over httptest. Stop runs
// before Close so an active WAL stream cannot hang the cleanup.
func startLeader(t *testing.T, dir string) (*httptest.Server, *Server, *store.Store) {
	t.Helper()
	seed, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	st, sch, applier, err := store.Open(dir, seed, store.Options{Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil, WithLogger(quietLogger()), WithEvolution())
	s.Install(sch, applier, st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Stop()
		ts.Close()
	})
	return ts, s, st
}

// startFollower runs a read-only follower of the leader at leaderURL:
// a Replica pumping applied clones into a storeless server, exactly
// as cmd/mvolapd wires -replicate-from. The returned cancel kills the
// replication loop — the mid-stream "crash" the tests use.
func startFollower(t *testing.T, leaderURL string, opts store.ReplicaOptions, serverOpts ...Option) (*httptest.Server, *store.Replica, context.CancelFunc) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	if opts.MinBackoff == 0 {
		opts.MinBackoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = 100 * time.Millisecond
	}
	rep := store.NewReplica(leaderURL, opts)
	s := New(nil, append([]Option{WithLogger(quietLogger()), WithReplica(rep)}, serverOpts...)...)
	rep.SetPublish(func(sch *core.Schema, applier *evolution.Applier, delta core.Delta) {
		s.InstallDelta(sch, applier, delta)
	})
	ctx, cancel := context.WithCancel(context.Background())
	go rep.Run(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		cancel()
		s.Stop()
		ts.Close()
	})
	return ts, rep, cancel
}

// waitApplied blocks until the replica has applied seq or the
// deadline passes.
func waitApplied(t *testing.T, rep *store.Replica, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for rep.Applied() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, want %d (status %+v)", rep.Applied(), seq, rep.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// readyzStatus fetches and decodes a follower's /readyz body.
func readyzStatus(t *testing.T, srv *httptest.Server) (int, map[string]any) {
	t.Helper()
	code, body := get(t, srv, "/readyz")
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("readyz body %q: %v", body, err)
	}
	return code, m
}

// TestReplicationConvergenceAndRestart is the acceptance scenario:
// leader plus two followers, evolution and fact batches on the
// leader, one follower killed mid-stream and restarted from scratch,
// both converge and answer byte-identically to the leader.
func TestReplicationConvergenceAndRestart(t *testing.T) {
	leaderTS, _, st := startLeader(t, t.TempDir())
	mutate(t, leaderTS) // 3 evolutions + 1 fact batch: seqs 1..4

	f1TS, rep1, kill1 := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	f2TS, rep2, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	waitApplied(t, rep1, 4)
	waitApplied(t, rep2, 4)

	want := captureState(t, leaderTS)
	assertSameState(t, f1TS, want)
	assertSameState(t, f2TS, want)

	// Kill follower 1 mid-stream; the leader keeps writing without it.
	kill1()
	code, body := post(t, leaderTS, "/evolve", "EXCLUDE Org Dpt.New_id AT 01/2006\n")
	if code != http.StatusOK {
		t.Fatalf("evolve while follower down = %d: %s", code, body)
	}
	code, body = post(t, leaderTS, "/facts",
		`[{"coords":["Dpt.Paul_id"],"time":"2005","values":[25]}]`)
	if code != http.StatusOK {
		t.Fatalf("facts while follower down = %d: %s", code, body)
	}
	if st.LastSeq() != 6 {
		t.Fatalf("leader seq = %d, want 6", st.LastSeq())
	}

	// Restart follower 1 from scratch: it re-bootstraps and catches up.
	f1bTS, rep1b, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	waitApplied(t, rep1b, 6)
	waitApplied(t, rep2, 6)

	want = captureState(t, leaderTS)
	assertSameState(t, f1bTS, want)
	assertSameState(t, f2TS, want)

	// A converged follower's readyz reports its role and progress.
	code, m := readyzStatus(t, f2TS)
	if code != http.StatusOK || m["role"] != "follower" {
		t.Fatalf("follower readyz = %d %v", code, m)
	}
	repl, _ := m["replication"].(map[string]any)
	if repl == nil || repl["appliedSeq"].(float64) != 6 {
		t.Fatalf("follower replication status = %v", repl)
	}
}

// TestFollowerRejectsWrites: every mutating endpoint on a follower
// answers 403 and points the client at the leader.
func TestFollowerRejectsWrites(t *testing.T) {
	leaderTS, _, _ := startLeader(t, t.TempDir())
	fTS, rep, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})

	// Wait out the bootstrap; the 403 must still name the leader after.
	deadline := time.Now().Add(10 * time.Second)
	for rep.Status().Bootstraps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never bootstrapped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	for _, tc := range []struct{ path, body string }{
		{"/evolve", "EXCLUDE Org Dpt.Brian_id AT 01/2004\n"},
		{"/facts", `[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]}]`},
		{"/admin/snapshot", ""},
	} {
		code, body := post(t, fTS, tc.path, tc.body)
		if code != http.StatusForbidden {
			t.Errorf("follower POST %s = %d: %s", tc.path, code, body)
		}
		if !strings.Contains(string(body), leaderTS.URL) {
			t.Errorf("follower POST %s does not name the leader: %s", tc.path, body)
		}
	}
}

// TestFollowerLagAndMinWalSeq: a follower whose apply loop is gated
// reports its lag on /readyz, blocks ?minWalSeq= queries until the
// sequence applies, and times out (504) when it cannot.
func TestFollowerLagAndMinWalSeq(t *testing.T) {
	leaderTS, _, st := startLeader(t, t.TempDir())
	mutate(t, leaderTS) // seqs 1..4

	gate := make(chan struct{})
	opts := store.ReplicaOptions{
		BeforeApply: func(seq uint64) {
			if seq >= 5 {
				<-gate
			}
		},
	}
	fTS, rep, _ := startFollower(t, leaderTS.URL, opts, WithQueryTimeout(500*time.Millisecond))
	waitApplied(t, rep, 4) // bootstrap snapshot covers everything so far

	// Leader commits seq 5; the gate holds it out of the follower.
	code, body := post(t, leaderTS, "/evolve", "EXCLUDE Org Dpt.New_id AT 01/2006\n")
	if code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	if st.LastSeq() != 5 {
		t.Fatalf("leader seq = %d", st.LastSeq())
	}

	// The lagging follower stays ready and reports the seq delta.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, m := readyzStatus(t, fTS)
		repl, _ := m["replication"].(map[string]any)
		if code == http.StatusOK && repl != nil && repl["lagRecords"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported lag: %d %v", code, m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Read-your-writes: pinned to seq 5, the query cannot answer from
	// the gated follower and fails bounded.
	q := "/query?minWalSeq=5&q=" + urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	if code, body := get(t, fTS, q); code != http.StatusGatewayTimeout {
		t.Fatalf("gated minWalSeq query = %d: %s", code, body)
	}

	// Release the gate: the same query now waits for the apply and
	// succeeds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if code, body := get(t, fTS, q); code != http.StatusOK {
			t.Errorf("post-release minWalSeq query = %d: %s", code, body)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(gate)
	<-done
	waitApplied(t, rep, 5)

	// On the leader the barrier is immediate: committed passes, the
	// future fails bounded, garbage is a client error.
	if code, _ := get(t, leaderTS, "/query?minWalSeq=5&q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")); code != http.StatusOK {
		t.Errorf("leader minWalSeq=5 = %d", code)
	}
	if code, _ := get(t, leaderTS, "/query?minWalSeq=999&q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")); code != http.StatusGatewayTimeout {
		t.Errorf("leader minWalSeq=999 = %d", code)
	}
	if code, _ := get(t, leaderTS, "/query?minWalSeq=bogus&q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")); code != http.StatusBadRequest {
		t.Errorf("leader minWalSeq=bogus = %d", code)
	}
}

// TestWALEndpoints covers the leader-side protocol edges: compacted
// positions answer 410 with the snapshot sequence, bad parameters are
// client errors, storeless servers refuse, and the snapshot endpoint
// reports the covered sequence.
func TestWALEndpoints(t *testing.T) {
	leaderTS, _, st := startLeader(t, t.TempDir())
	mutate(t, leaderTS) // seqs 1..4
	if code, body := post(t, leaderTS, "/admin/snapshot", ""); code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", code, body)
	}

	// Bootstrap payload: the snapshot bytes plus the covered sequence.
	resp, err := http.Get(leaderTS.URL + "/wal/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(store.WALSeqHeader) != "4" {
		t.Fatalf("wal/snapshot = %d, seq header %q", resp.StatusCode, resp.Header.Get(store.WALSeqHeader))
	}

	// Compacted resume position: 410 plus where to bootstrap from.
	code, body := get(t, leaderTS, "/wal/stream?from=1")
	if code != http.StatusGone {
		t.Fatalf("compacted stream = %d: %s", code, body)
	}
	var gone struct {
		SnapshotSeq uint64 `json:"snapshotSeq"`
	}
	if err := json.Unmarshal(body, &gone); err != nil || gone.SnapshotSeq != 4 {
		t.Fatalf("gone body = %s (%v)", body, err)
	}
	if st.SnapshotSeq() != 4 {
		t.Fatalf("snapshotSeq = %d", st.SnapshotSeq())
	}

	if code, _ := get(t, leaderTS, "/wal/stream?from=zero"); code != http.StatusBadRequest {
		t.Errorf("bad from = %d", code)
	}

	// A server without a store is not a leader.
	storeless := testServer(t)
	if code, _ := get(t, storeless, "/wal/stream?from=1"); code != http.StatusForbidden {
		t.Errorf("storeless stream = %d", code)
	}
	if code, _ := get(t, storeless, "/wal/snapshot"); code != http.StatusForbidden {
		t.Errorf("storeless snapshot = %d", code)
	}
}

// TestStreamEndsOnStop: Server.Stop ends a live WAL stream so a
// graceful daemon shutdown is not held open by followers.
func TestStreamEndsOnStop(t *testing.T) {
	leaderTS, s, _ := startLeader(t, t.TempDir())
	mutate(t, leaderTS)

	resp, err := http.Get(leaderTS.URL + "/wal/stream?from=5") // live tail: nothing to send yet
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream = %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	magic := make([]byte, len(store.WALMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != store.WALMagic {
		t.Fatalf("magic = %q, %v", magic, err)
	}

	s.Stop()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := br.Read(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after Stop")
	}
}
