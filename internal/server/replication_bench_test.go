package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/store"
)

// Replication benchmarks: follower catch-up throughput (WAL records
// applied per second from bootstrap to converged) and read throughput
// as replicas are added. Both feed the BENCH_7.json artifact.

// benchLeader starts a store-backed leader whose snapshot covers
// sequence zero, then appends records fact batches so a follower has
// a real catch-up to do.
func benchLeader(b *testing.B, records int) (*httptest.Server, *store.Store) {
	b.Helper()
	seed, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		b.Fatal(err)
	}
	st, sch, applier, err := store.Open(b.TempDir(), seed, store.Options{Logger: quietLogger()})
	if err != nil {
		b.Fatal(err)
	}
	// Snapshot before the appends: bootstrap lands at seq 0 and the
	// whole history streams.
	if _, err := st.Snapshot(sch, applier.Log(), "bench"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < records; i++ {
		batch := []store.FactRecord{{
			Coords: []string{"Dpt.Bill_id"},
			Time:   fmt.Sprintf("%d", 2004+i%3),
			Values: []float64{float64(i)},
		}}
		if _, _, err := st.AppendFactBatch(batch); err != nil {
			b.Fatal(err)
		}
		if err := store.ApplyFact(sch, batch[0]); err != nil {
			b.Fatal(err)
		}
	}
	s := New(nil, WithLogger(quietLogger()))
	s.Install(sch, applier, st)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		s.Stop()
		ts.Close()
		st.Close()
	})
	return ts, st
}

// benchFollower runs one follower and blocks until it has applied
// seq, returning its query endpoint.
func benchFollower(b *testing.B, leaderURL string, seq uint64) *httptest.Server {
	b.Helper()
	rep := store.NewReplica(leaderURL, store.ReplicaOptions{Logger: quietLogger()})
	s := New(nil, WithLogger(quietLogger()), WithReplica(rep))
	rep.SetPublish(func(sch *core.Schema, applier *evolution.Applier, delta core.Delta) {
		s.InstallDelta(sch, applier, delta)
	})
	ctx, cancel := context.WithCancel(context.Background())
	go rep.Run(ctx)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		cancel()
		s.Stop()
		ts.Close()
	})
	deadline := time.Now().Add(30 * time.Second)
	for rep.Applied() < seq {
		if time.Now().After(deadline) {
			b.Fatalf("follower stuck at %d, want %d", rep.Applied(), seq)
		}
		time.Sleep(time.Millisecond)
	}
	return ts
}

// BenchmarkFollowerCatchup: bootstrap plus full WAL replay on a fresh
// follower, reported as records applied per second.
func BenchmarkFollowerCatchup(b *testing.B) {
	const records = 256
	leaderTS, st := benchLeader(b, records)
	want := st.LastSeq()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		benchFollower(b, leaderTS.URL, want)
		b.ReportMetric(float64(records)/time.Since(start).Seconds(), "records/s")
	}
}

// BenchmarkReplicaQueryThroughput: aggregate /query throughput with
// the load spread over the leader plus 0, 1 and 2 converged replicas.
func BenchmarkReplicaQueryThroughput(b *testing.B) {
	const records = 64
	q := "/query?q=" + urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	for _, replicas := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			leaderTS, st := benchLeader(b, records)
			endpoints := []string{leaderTS.URL}
			for i := 0; i < replicas; i++ {
				endpoints = append(endpoints, benchFollower(b, leaderTS.URL, st.LastSeq()).URL)
			}
			var rr atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					url := endpoints[rr.Add(1)%uint64(len(endpoints))] + q
					resp, err := http.Get(url)
					if err != nil {
						b.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("query = %d", resp.StatusCode)
					}
				}
			})
		})
	}
}
