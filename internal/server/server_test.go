package server

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mvolap/internal/casestudy"
)

// quietLogger keeps the access log out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithLogger(quietLogger())}, opts...)
	srv := httptest.NewServer(New(s, opts...).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestIndexPage(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(string(body), "<form action=\"/query\"") {
		t.Fatalf("index = %d %q", code, body)
	}
}

func TestHealthz(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/query?q="+
		urlEncode("SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE V2"))
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var resp struct {
		Rows []struct {
			Time   string     `json:"time"`
			Groups []string   `json:"groups"`
			Values []*float64 `json:"values"`
			CFs    []string   `json:"cfs"`
			Colors []string   `json:"colors"`
		} `json:"rows"`
		Mode    string  `json:"mode"`
		Quality float64 `json:"quality"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if resp.Mode != "V2" || resp.Quality >= 1 {
		t.Errorf("mode=%s quality=%v", resp.Mode, resp.Quality)
	}
	found := false
	for _, r := range resp.Rows {
		if r.Time == "2003" && r.Groups[0] == "Dpt.Jones" {
			found = true
			if r.Values[0] == nil || *r.Values[0] != 200 || r.CFs[0] != "em" || r.Colors[0] != "green" {
				t.Errorf("merged row = %+v", r)
			}
		}
	}
	if !found {
		t.Error("Table 9 row missing")
	}
}

func TestQueryErrors(t *testing.T) {
	srv := testServer(t)
	if code, _ := get(t, srv, "/query"); code != http.StatusBadRequest {
		t.Errorf("missing q = %d", code)
	}
	if code, _ := get(t, srv, "/query?q=BOGUS"); code != http.StatusBadRequest {
		t.Errorf("bad statement = %d", code)
	}
}

func TestModesEndpoint(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/modes")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var modes []struct {
		Mode  string `json:"mode"`
		Valid string `json:"valid"`
	}
	if err := json.Unmarshal(body, &modes); err != nil {
		t.Fatal(err)
	}
	if len(modes) != 4 || modes[0].Mode != "tcm" || modes[3].Valid != "[01/2003 ; Now]" {
		t.Errorf("modes = %+v", modes)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/schema")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp struct {
		Name       string `json:"name"`
		Facts      int    `json:"facts"`
		Dimensions []struct {
			ID       string `json:"id"`
			Versions []struct {
				IsLeaf bool `json:"isLeaf"`
			} `json:"versions"`
		} `json:"dimensions"`
		Mappings []struct {
			From string `json:"from"`
		} `json:"mappings"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "institution" || resp.Facts != 10 {
		t.Errorf("schema = %+v", resp)
	}
	if len(resp.Dimensions) != 1 || len(resp.Dimensions[0].Versions) != 7 {
		t.Errorf("dimensions = %+v", resp.Dimensions)
	}
	if len(resp.Mappings) != 2 || resp.Mappings[0].From != "Dpt.Jones" {
		t.Errorf("mappings = %+v", resp.Mappings)
	}
}

func TestEvolveDisabledByDefault(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/evolve", "text/plain",
		strings.NewReader("EXCLUDE Org Dpt.Brian_id AT 01/2004\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d, want 403", resp.StatusCode)
	}
}

func TestEvolveEndpoint(t *testing.T) {
	srv := testServer(t, WithEvolution())
	resp, err := http.Post(srv.URL+"/evolve", "text/plain",
		strings.NewReader("EXCLUDE Org Dpt.Brian_id AT 01/2004\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// The new boundary creates a fourth structure version, visible in
	// subsequent queries.
	code, body := get(t, srv, "/modes")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var modes []struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(body, &modes); err != nil {
		t.Fatal(err)
	}
	if len(modes) != 5 {
		t.Errorf("modes after evolution = %d, want 5", len(modes))
	}
	// Bad scripts are rejected.
	resp, err = http.Post(srv.URL+"/evolve", "text/plain", strings.NewReader("FROBNICATE\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad script status = %d", resp.StatusCode)
	}
	// Scripts that parse but cannot apply are rejected too.
	resp, err = http.Post(srv.URL+"/evolve", "text/plain", strings.NewReader("EXCLUDE Org nobody AT 01/2004\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unapplicable script status = %d", resp.StatusCode)
	}
}

func TestExplainOverHTTP(t *testing.T) {
	srv := testServer(t)
	code, body := get(t, srv, "/query?q="+urlEncode("EXPLAIN Dpt.Jones_id AT 2003 MODE V2"))
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp struct {
		Lineage string `json:"lineage"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Lineage, "Dpt.Bill") {
		t.Errorf("lineage = %q", resp.Lineage)
	}
}

// TestConcurrentHTTPQueries exercises the RW locking under parallel
// readers; meaningful under -race.
func TestConcurrentHTTPQueries(t *testing.T) {
	srv := testServer(t, WithEvolution())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				code, _ := get(t, srv, "/query?q="+urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"))
				if code != http.StatusOK {
					t.Error("query failed")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func urlEncode(s string) string {
	r := strings.NewReplacer(" ", "%20", ",", "%2C", "&", "%26", "'", "%27")
	return r.Replace(s)
}
