package server

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/store"
)

// These tests drive the acceptance scenario of the persistence
// subsystem over HTTP: apply evolution batches and a fact append
// against a server with a -data-dir store, kill it (including with a
// deliberately truncated final WAL record), restart, and require
// /query and /schema to answer byte-identically to the pre-crash
// server.

// openServer opens (or recovers) a store in dir and returns a ready
// httptest server over it plus the store. The store is deliberately
// NOT closed on cleanup — abandoning it is how the tests simulate
// SIGKILL; recovery must not depend on a graceful close.
func openServer(t *testing.T, dir string, opts store.Options) (*httptest.Server, *store.Store) {
	t.Helper()
	seed, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	opts.Logger = quietLogger()
	st, sch, applier, err := store.Open(dir, seed, opts)
	if err != nil {
		t.Fatal(err)
	}
	s := New(nil, WithLogger(quietLogger()), WithEvolution())
	s.Install(sch, applier, st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

func post(t *testing.T, srv *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// The case-study queries the crash tests require byte-identical
// answers for: the Table 9 V2 presentation and a tcm rollup.
var persistenceQueries = []string{
	"/query?q=" + urlEncode("SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE V2"),
	"/query?q=" + urlEncode("SELECT Amount BY Org.Division, TIME.YEAR MODE tcm"),
	"/schema",
}

// captureState fetches every persistence query and returns the raw
// response bodies.
func captureState(t *testing.T, srv *httptest.Server) [][]byte {
	t.Helper()
	var out [][]byte
	for _, q := range persistenceQueries {
		code, body := get(t, srv, q)
		if code != http.StatusOK {
			t.Fatalf("%s = %d: %s", q, code, body)
		}
		out = append(out, body)
	}
	return out
}

func assertSameState(t *testing.T, srv *httptest.Server, want [][]byte) {
	t.Helper()
	for i, q := range persistenceQueries {
		code, body := get(t, srv, q)
		if code != http.StatusOK {
			t.Fatalf("%s = %d: %s", q, code, body)
		}
		if string(body) != string(want[i]) {
			t.Errorf("%s differs after recovery:\n%s\nwant:\n%s", q, body, want[i])
		}
	}
}

// mutate drives three evolution batches and a fact append through the
// HTTP mutation endpoints, asserting WAL sequence numbers 1..4.
func mutate(t *testing.T, srv *httptest.Server) {
	t.Helper()
	scripts := []string{
		"EXCLUDE Org Dpt.Brian_id AT 01/2004\n",
		"INSERT Org Dpt.New_id Dpt.New LEVEL Department AT 01/2005 PARENTS Sales_id\n",
		"RECLASSIFY Org Dpt.Smith_id AT 01/2005 FROM R&D_id TO Sales_id\n",
	}
	for i, script := range scripts {
		code, body := post(t, srv, "/evolve", script)
		if code != http.StatusOK {
			t.Fatalf("evolve %d = %d: %s", i, code, body)
		}
		var resp struct {
			WALSeq uint64 `json:"walSeq"`
		}
		if err := json.Unmarshal(body, &resp); err != nil || resp.WALSeq != uint64(i+1) {
			t.Fatalf("evolve %d walSeq = %+v, %v", i, resp, err)
		}
	}
	code, body := post(t, srv, "/facts",
		`[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]},
		  {"coords":["Dpt.Paul_id"],"time":"2004","values":[30]}]`)
	if code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, body)
	}
	var resp struct {
		Appended int    `json:"appended"`
		Facts    int    `json:"facts"`
		WALSeq   uint64 `json:"walSeq"`
	}
	if err := json.Unmarshal(body, &resp); err != nil ||
		resp.Appended != 2 || resp.Facts != 12 || resp.WALSeq != 4 {
		t.Fatalf("facts response = %+v, %v: %s", resp, err, body)
	}
}

// TestCrashRecoveryHTTPCleanKill: mutate, SIGKILL (abandon the store),
// restart, answers byte-identical.
func TestCrashRecoveryHTTPCleanKill(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openServer(t, dir, store.Options{})
	mutate(t, srv)
	want := captureState(t, srv)
	srv.Close() // the store is abandoned un-closed: simulated SIGKILL

	srv2, st2 := openServer(t, dir, store.Options{})
	if got := st2.RecoveryStats(); got.Replayed != 4 || got.TornBytes != 0 {
		t.Errorf("recovery stats = %+v", got)
	}
	assertSameState(t, srv2, want)

	// Recovery is visible in /metrics.
	code, metrics := get(t, srv2, "/metrics")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	for _, name := range []string{
		"mvolap_store_recovery_seconds",
		"mvolap_store_recovery_replayed_total",
		"mvolap_store_wal_appends_total",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestCrashRecoveryHTTPTornTail: the crash interrupts the final WAL
// append; the truncated record's batch is lost (it was never fully
// durable) and the server recovers the last complete state.
func TestCrashRecoveryHTTPTornTail(t *testing.T) {
	dir := t.TempDir()
	srv, _ := openServer(t, dir, store.Options{})
	mutate(t, srv)
	want := captureState(t, srv)

	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files = %v, %v", wals, err)
	}
	before, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if code, body := post(t, srv, "/evolve", "EXCLUDE Org Dpt.New_id AT 06/2005\n"); code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	after, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Tear the final record at a deterministic pseudo-random interior
	// byte, as if the crash hit mid-write.
	recLen := after.Size() - before.Size()
	rnd := rand.New(rand.NewSource(20030101))
	cut := before.Size() + 1 + rnd.Int63n(recLen-1)
	if err := os.Truncate(wals[0], cut); err != nil {
		t.Fatal(err)
	}

	srv2, st2 := openServer(t, dir, store.Options{})
	stats := st2.RecoveryStats()
	if stats.Replayed != 4 || stats.TornBytes != cut-before.Size() {
		t.Errorf("recovery stats = %+v (cut %d bytes into the record)", stats, cut-before.Size())
	}
	assertSameState(t, srv2, want)

	// The recovered server keeps serving writes: replaying the same
	// mutation lands on WAL seq 5.
	code, body := post(t, srv2, "/evolve", "EXCLUDE Org Dpt.New_id AT 06/2005\n")
	if code != http.StatusOK {
		t.Fatalf("evolve after recovery = %d: %s", code, body)
	}
	var resp struct {
		WALSeq uint64 `json:"walSeq"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.WALSeq != 5 {
		t.Fatalf("walSeq after recovery = %+v, %v", resp, err)
	}
}

// TestAutoSnapshotOverHTTP: with SnapshotEvery=2 the second accepted
// mutation triggers a snapshot and WAL truncation, transparently to
// the client.
func TestAutoSnapshotOverHTTP(t *testing.T) {
	dir := t.TempDir()
	srv, st := openServer(t, dir, store.Options{SnapshotEvery: 2})
	if code, body := post(t, srv, "/evolve", "EXCLUDE Org Dpt.Brian_id AT 01/2004\n"); code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	if st.SnapshotSeq() != 0 {
		t.Errorf("snapshot after 1 of 2 mutations: seq %d", st.SnapshotSeq())
	}
	if code, body := post(t, srv, "/facts", `[{"coords":["Dpt.Bill_id"],"time":"2004","values":[7]}]`); code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, body)
	}
	if st.SnapshotSeq() != 2 {
		t.Errorf("auto snapshot seq = %d, want 2", st.SnapshotSeq())
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if len(snaps) != 1 {
		t.Errorf("snapshot files = %v", snaps)
	}
	// Recovery from the snapshot (nil replay tail) is byte-identical.
	want := captureState(t, srv)
	srv.Close()
	srv2, st2 := openServer(t, dir, store.Options{})
	if got := st2.RecoveryStats(); got.SnapshotSeq != 2 || got.Replayed != 0 {
		t.Errorf("recovery stats = %+v", got)
	}
	assertSameState(t, srv2, want)
}

// TestAdminSnapshotEndpoint: on-demand snapshots via POST.
func TestAdminSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv, st := openServer(t, dir, store.Options{})
	if code, body := post(t, srv, "/evolve", "EXCLUDE Org Dpt.Brian_id AT 01/2004\n"); code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, body)
	}
	code, body := post(t, srv, "/admin/snapshot", "")
	if code != http.StatusOK {
		t.Fatalf("snapshot = %d: %s", code, body)
	}
	var resp struct {
		WALSeq uint64 `json:"walSeq"`
	}
	if err := json.Unmarshal(body, &resp); err != nil || resp.WALSeq != 1 {
		t.Fatalf("snapshot response = %+v, %v", resp, err)
	}
	if st.SnapshotSeq() != 1 {
		t.Errorf("snapSeq = %d", st.SnapshotSeq())
	}
}

func TestAdminSnapshotWithoutStore(t *testing.T) {
	srv := testServer(t, WithEvolution())
	code, body := post(t, srv, "/admin/snapshot", "")
	if code != http.StatusForbidden {
		t.Errorf("snapshot without store = %d: %s", code, body)
	}
}

// TestReadyzLifecycle: a nil-schema server is alive but not ready;
// warehouse endpoints 503 until Install publishes the recovered
// schema.
func TestReadyzLifecycle(t *testing.T) {
	s := New(nil, WithLogger(quietLogger()))
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz while recovering = %d", code)
	}
	if code, body := get(t, srv, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "recovering") {
		t.Errorf("readyz while recovering = %d %q", code, body)
	}
	for _, path := range []string{
		"/query?q=" + urlEncode("SELECT * BY Org.Division, TIME.YEAR MODE tcm"),
		"/modes",
		"/schema",
	} {
		if code, _ := get(t, srv, path); code != http.StatusServiceUnavailable {
			t.Errorf("%s while recovering = %d, want 503", path, code)
		}
	}

	sch, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Install(sch, nil, nil)

	if code, body := get(t, srv, "/readyz"); code != http.StatusOK ||
		!strings.Contains(string(body), "ready") {
		t.Errorf("readyz after install = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/modes"); code != http.StatusOK {
		t.Errorf("modes after install = %d", code)
	}
}

// TestFactsEndpoint covers the durable-less /facts path: atomic batch
// semantics with the 422 envelope, and the 403/400 guards.
func TestFactsEndpoint(t *testing.T) {
	srv := testServer(t, WithEvolution())
	code, body := post(t, srv, "/facts",
		`[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]}]`)
	if code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, body)
	}
	var ok struct {
		Appended int `json:"appended"`
		Facts    int `json:"facts"`
	}
	if err := json.Unmarshal(body, &ok); err != nil || ok.Appended != 1 || ok.Facts != 11 {
		t.Fatalf("facts response = %+v, %v", ok, err)
	}

	// A batch with one bad fact applies nothing.
	code, body = post(t, srv, "/facts",
		`[{"coords":["Dpt.Paul_id"],"time":"2004","values":[1]},
		  {"coords":["nobody"],"time":"2004","values":[1]}]`)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("bad batch = %d: %s", code, body)
	}
	var fail struct {
		FailedAt int  `json:"failedAt"`
		Retained bool `json:"retained"`
	}
	if err := json.Unmarshal(body, &fail); err != nil || fail.FailedAt != 1 || fail.Retained {
		t.Fatalf("422 envelope = %+v, %v: %s", fail, err, body)
	}
	var schema struct {
		Facts int `json:"facts"`
	}
	_, schemaBody := get(t, srv, "/schema")
	if err := json.Unmarshal(schemaBody, &schema); err != nil || schema.Facts != 11 {
		t.Errorf("facts after failed batch = %+v, %v (want the pre-batch 11)", schema, err)
	}

	if code, _ := post(t, srv, "/facts", `not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", code)
	}
	if code, _ := post(t, srv, "/facts", `[]`); code != http.StatusBadRequest {
		t.Errorf("empty batch = %d", code)
	}
	noEvolve := testServer(t)
	if code, _ := post(t, noEvolve, "/facts", `[{"coords":["Dpt.Bill_id"],"time":"2004","values":[1]}]`); code != http.StatusForbidden {
		t.Errorf("facts without WithEvolution = %d", code)
	}
}
