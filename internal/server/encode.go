package server

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// encodeQueryResponse renders resp exactly as encodeJSON would — the
// wire form is contractual — but writes the two-space indentation
// directly while walking the known struct shape, instead of encoding
// compact JSON with reflection and re-indenting it in a second pass.
// It covers the SELECT response shape (measures, groups, rows, mode,
// quality, dropped); responses carrying ranking, modes, lineage or a
// trace — and any non-finite float, which encoding/json rejects —
// fall back to encodeJSON. Byte-identity is enforced by the
// differential tests in encode_test.go.
func encodeQueryResponse(resp queryResponse) []byte {
	if resp.Ranking != nil || resp.Modes != nil || resp.Lineage != "" || resp.Trace != nil {
		return encodeJSON(resp)
	}
	if math.IsNaN(resp.Quality) || math.IsInf(resp.Quality, 0) {
		return encodeJSON(resp)
	}
	for i := range resp.Rows {
		for _, v := range resp.Rows[i].Values {
			if v != nil && (math.IsNaN(*v) || math.IsInf(*v, 0)) {
				return encodeJSON(resp)
			}
		}
	}

	b := make([]byte, 0, 128+160*len(resp.Rows))
	b = append(b, '{')
	if len(resp.Measures) > 0 {
		b = append(b, "\n  \"measures\": "...)
		b = appendStringArray(b, resp.Measures, 1)
		b = append(b, ',')
	}
	if len(resp.Groups) > 0 {
		b = append(b, "\n  \"groups\": "...)
		b = appendStringArray(b, resp.Groups, 1)
		b = append(b, ',')
	}
	b = append(b, "\n  \"rows\": "...)
	switch {
	case resp.Rows == nil:
		b = append(b, "null"...)
	case len(resp.Rows) == 0:
		b = append(b, '[', ']')
	default:
		b = append(b, '[')
		for i := range resp.Rows {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, "\n    "...)
			b = appendQueryRow(b, &resp.Rows[i])
		}
		b = append(b, "\n  ]"...)
	}
	if resp.Mode != "" {
		b = append(b, ",\n  \"mode\": "...)
		b = appendJSONString(b, resp.Mode)
	}
	b = append(b, ",\n  \"quality\": "...)
	b = appendJSONFloat(b, resp.Quality)
	if resp.Dropped != 0 {
		b = append(b, ",\n  \"dropped\": "...)
		b = strconv.AppendInt(b, int64(resp.Dropped), 10)
	}
	b = append(b, "\n}\n"...)
	return b
}

// appendQueryRow writes one row object at element depth 2 (its fields
// indent to depth 3).
func appendQueryRow(b []byte, qr *queryRow) []byte {
	b = append(b, "{\n      \"time\": "...)
	b = appendJSONString(b, qr.Time)
	b = append(b, ",\n      \"groups\": "...)
	b = appendStringArray(b, qr.Groups, 3)
	b = append(b, ",\n      \"values\": "...)
	switch {
	case qr.Values == nil:
		b = append(b, "null"...)
	case len(qr.Values) == 0:
		b = append(b, '[', ']')
	default:
		b = append(b, '[')
		for i, v := range qr.Values {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, "\n        "...)
			if v == nil {
				b = append(b, "null"...)
			} else {
				b = appendJSONFloat(b, *v)
			}
		}
		b = append(b, "\n      ]"...)
	}
	b = append(b, ",\n      \"cfs\": "...)
	b = appendStringArray(b, qr.CFs, 3)
	b = append(b, ",\n      \"colors\": "...)
	b = appendStringArray(b, qr.Colors, 3)
	b = append(b, "\n    }"...)
	return b
}

// appendStringArray writes a string array whose opening bracket sits at
// indent depth `depth` (elements indent one deeper). A nil slice is
// null, an empty one a compact [] — matching encoding/json.
func appendStringArray(b []byte, a []string, depth int) []byte {
	if a == nil {
		return append(b, "null"...)
	}
	if len(a) == 0 {
		return append(b, '[', ']')
	}
	b = append(b, '[')
	for i, s := range a {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendNewlineIndent(b, depth+1)
		b = appendJSONString(b, s)
	}
	b = appendNewlineIndent(b, depth)
	return append(b, ']')
}

func appendNewlineIndent(b []byte, depth int) []byte {
	b = append(b, '\n')
	for i := 0; i < depth; i++ {
		b = append(b, ' ', ' ')
	}
	return b
}

// appendJSONFloat mirrors encoding/json's float64 encoding: shortest
// representation, %f unless the exponent forces %e, with the exponent's
// leading zero trimmed. The caller has excluded NaN and ±Inf.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		n := len(b)
		if n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString mirrors encoding/json's string encoding with HTML
// escaping on (the package default, and what encodeJSON emits): quotes,
// backslashes, <, >, &, control bytes, U+2028/U+2029 and invalid UTF-8
// are escaped exactly as encoding/json escapes them.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Control bytes other than \n, \r, \t, and the
				// HTML-sensitive <, >, &.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, "\\ufffd"...)
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
