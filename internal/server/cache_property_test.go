package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"mvolap/internal/store"
	"mvolap/internal/workload"
)

// The serving-tier equivalence property behind the whole query fast
// path: with zone-map pruning, the result cache (facts-window
// retargeting and additive-evolve retention included) and the parallel
// fold all active, every /query response must be byte-identical to a
// server answering the same state with the cache disabled — whose
// every answer is a fresh scan. The test drives a seeded workload of
// queries, fact appends and evolution scripts (additive inserts and
// reclassifies, the generator's mix) through a store-backed leader,
// replicated to a cached and an uncached follower, and compares all
// three at a replication barrier after every step.

// propertyQuery fetches one query from all three servers at the given
// replication barrier and requires byte-identical bodies.
func propertyQuery(t *testing.T, stmt string, seq uint64, leader, cached, uncached *httptest.Server) {
	t.Helper()
	path := "/query?q=" + urlEncode(stmt)
	if seq > 0 {
		path += "&minWalSeq=" + strconv.FormatUint(seq, 10)
	}
	codeL, bodyL := get(t, leader, path)
	codeC, bodyC := get(t, cached, path)
	codeU, bodyU := get(t, uncached, path)
	if codeL != codeC || codeL != codeU {
		t.Fatalf("status diverges for %q: leader=%d cached=%d uncached=%d", stmt, codeL, codeC, codeU)
	}
	if codeL != http.StatusOK {
		return // all three rejected the statement identically
	}
	if string(bodyL) != string(bodyU) {
		t.Fatalf("leader (cached) diverges from uncached follower for %q:\n%s\nvs\n%s", stmt, bodyL, bodyU)
	}
	if string(bodyC) != string(bodyU) {
		t.Fatalf("cached follower diverges from uncached follower for %q:\n%s\nvs\n%s", stmt, bodyC, bodyU)
	}
}

// counterValue reads one plain counter from a server's /metrics
// exposition (the process-global registry: all in-process servers
// share it).
func counterValue(t *testing.T, srv *httptest.Server, name string) float64 {
	t.Helper()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metrics exposition missing %q", name)
	return 0
}

func TestPropertyCachedServingByteIdentical(t *testing.T) {
	leaderTS, leaderSrv, _ := startLeader(t, t.TempDir())
	cachedTS, cachedRep, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{})
	uncachedTS, uncachedRep, _ := startFollower(t, leaderTS.URL, store.ReplicaOptions{}, WithQueryCache(0))

	surface := workload.SurfaceOf(leaderSrv.snapshot())
	if err := surface.Validate(); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewOpGen(11, surface, "prop")

	var seq uint64
	barrier := func() {
		if seq == 0 {
			return
		}
		waitApplied(t, cachedRep, seq)
		waitApplied(t, uncachedRep, seq)
	}
	postLeader := func(path, body string) (int, []byte) {
		code, resp := post(t, leaderTS, path, body)
		if code == http.StatusOK {
			var r struct {
				WALSeq uint64 `json:"walSeq"`
			}
			if err := json.Unmarshal(resp, &r); err != nil {
				t.Fatalf("%s response %q: %v", path, resp, err)
			}
			seq = r.WALSeq
		}
		return code, resp
	}

	// Seeded random interleaving. Statements repeat (the generator's
	// keyspace is small), so the cached servers serve a mix of fresh
	// scans, LRU hits, and entries revalidated across mutations.
	var stmts []string
	for i := 0; i < 60; i++ {
		switch r := gen.Rand().Intn(10); {
		case r < 6:
			stmt := gen.Query()
			stmts = append(stmts, stmt)
			barrier()
			propertyQuery(t, stmt, seq, leaderTS, cachedTS, uncachedTS)
			// Replay an earlier statement too: the repeat is the one
			// that can hit or revalidate a cache entry.
			replay := stmts[gen.Rand().Intn(len(stmts))]
			propertyQuery(t, replay, seq, leaderTS, cachedTS, uncachedTS)
		case r < 8:
			batch, err := json.Marshal(gen.FactBatch(1 + gen.Rand().Intn(3)))
			if err != nil {
				t.Fatal(err)
			}
			if code, resp := postLeader("/facts", string(batch)); code != http.StatusOK {
				t.Fatalf("facts = %d: %s", code, resp)
			}
		default:
			// Evolution scripts are additive inserts or reclassifies;
			// a script the evolved structure no longer accepts leaves
			// the state unchanged on every server, which is fine for
			// the identity property.
			postLeader("/evolve", gen.EvolveScript())
		}
	}

	// Directed retarget coverage: cache a bounded-range query, append
	// facts at a disjoint later instant, and require (a) byte-identity
	// against the uncached follower and (b) that entries were
	// revalidated rather than dropped — the facts-window path, not a
	// wholesale flush.
	oldRange := "SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm"
	barrier()
	propertyQuery(t, oldRange, seq, leaderTS, cachedTS, uncachedTS)
	retainedBefore := counterValue(t, leaderTS, "mvolap_query_cache_retained_total")
	if code, resp := postLeader("/facts",
		`[{"coords":["Dpt.Smith_id"],"time":"2015","values":[5]}]`); code != http.StatusOK {
		t.Fatalf("facts = %d: %s", code, resp)
	}
	barrier()
	propertyQuery(t, oldRange, seq, leaderTS, cachedTS, uncachedTS)
	if after := counterValue(t, leaderTS, "mvolap_query_cache_retained_total"); after <= retainedBefore {
		t.Fatalf("facts append at a disjoint instant retained no cache entries (%v -> %v)", retainedBefore, after)
	}

	// Directed additive-retention coverage: a fresh member with only an
	// upward edge must retain every entry.
	propertyQuery(t, oldRange, seq, leaderTS, cachedTS, uncachedTS)
	retainedBefore = counterValue(t, leaderTS, "mvolap_query_cache_retained_total")
	if code, resp := postLeader("/evolve",
		"INSERT Org Dpt.PropNew_id Dpt.PropNew LEVEL Department AT 01/2015 PARENTS Sales_id\n"); code != http.StatusOK {
		t.Fatalf("evolve = %d: %s", code, resp)
	}
	barrier()
	propertyQuery(t, oldRange, seq, leaderTS, cachedTS, uncachedTS)
	if after := counterValue(t, leaderTS, "mvolap_query_cache_retained_total"); after <= retainedBefore {
		t.Fatalf("additive evolve retained no cache entries (%v -> %v)", retainedBefore, after)
	}
	for _, stmt := range stmts[:min(len(stmts), 10)] {
		propertyQuery(t, stmt, seq, leaderTS, cachedTS, uncachedTS)
	}
}
