// Package server is the front-end tier of the Figure-1 architecture: an
// HTTP service exposing the temporal multidimensional warehouse to
// analysis tools. It answers TQL queries as JSON (values paired with
// their §5.2 confidence factors and the result's quality factor), lists
// the temporal modes of presentation, serves the Table-12 mapping
// metadata, and — when enabled — applies evolution scripts.
//
// Endpoints:
//
//	GET  /query?q=<TQL>     run a statement; JSON result
//	GET  /modes             the set TMP of temporal modes
//	GET  /schema            dimensions, levels, measures, mappings
//	POST /evolve            apply an evolution script (requires enabling)
//	GET  /healthz           liveness
//
// Queries run concurrently; evolution takes an exclusive lock so the
// derived caches rebuild consistently.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/metadata"
	"mvolap/internal/quality"
	"mvolap/internal/tql"
)

// Server wraps a schema with HTTP handlers.
type Server struct {
	mu          sync.RWMutex
	schema      *core.Schema
	applier     *evolution.Applier
	allowEvolve bool
}

// Option configures the server.
type Option func(*Server)

// WithEvolution enables the POST /evolve endpoint.
func WithEvolution() Option {
	return func(s *Server) { s.allowEvolve = true }
}

// New creates a server over the schema.
func New(sch *core.Schema, opts ...Option) *Server {
	s := &Server{schema: sch, applier: evolution.NewApplier(sch)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /query", s.handleQuery)
	mux.HandleFunc("GET /modes", s.handleModes)
	mux.HandleFunc("GET /schema", s.handleSchema)
	mux.HandleFunc("POST /evolve", s.handleEvolve)
	return mux
}

// handleIndex serves a minimal front-end page: a TQL form posting to
// /query, in the spirit of the paper's analysis client.
func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<html><head><title>mvolap</title></head>
<body>
<h1>mvolap — multiversion temporal OLAP</h1>
<p>Query the warehouse in any temporal mode of presentation
(Body, Miquel, B&eacute;dard &amp; Tchounikine, ICDE 2003).</p>
<form action="/query" method="get">
<input name="q" size="100"
 value="SELECT * BY Org.Division, TIME.YEAR MODE tcm">
<button>Run</button>
</form>
<p>Also: <a href="/modes">/modes</a> &middot; <a href="/schema">/schema</a>
&middot; <a href="/healthz">/healthz</a></p>
</body></html>
`)
}

// jsonError writes a JSON error envelope.
func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// queryResponse is the JSON shape of a query result.
type queryResponse struct {
	Measures []string   `json:"measures,omitempty"`
	Groups   []string   `json:"groups,omitempty"`
	Rows     []queryRow `json:"rows,omitempty"`
	Mode     string     `json:"mode,omitempty"`
	Quality  float64    `json:"quality"`
	Dropped  int        `json:"dropped,omitempty"`
	// Ranking is set for QUALITY statements.
	Ranking []rankEntry `json:"ranking,omitempty"`
	// Modes is set for MODES statements.
	Modes []modeEntry `json:"modes,omitempty"`
	// Lineage is set for EXPLAIN statements.
	Lineage string `json:"lineage,omitempty"`
}

type queryRow struct {
	Time   string     `json:"time"`
	Groups []string   `json:"groups"`
	Values []*float64 `json:"values"` // null encodes unknown (NaN)
	CFs    []string   `json:"cfs"`
	Colors []string   `json:"colors"`
}

type rankEntry struct {
	Mode    string  `json:"mode"`
	Quality float64 `json:"quality"`
}

type modeEntry struct {
	Mode  string `json:"mode"`
	Valid string `json:"valid,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	stmt := r.URL.Query().Get("q")
	if stmt == "" {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	s.mu.RLock()
	out, err := tql.Run(s.schema, stmt)
	s.mu.RUnlock()
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, toResponse(out))
}

func toResponse(out *tql.Output) queryResponse {
	resp := queryResponse{Quality: out.Quality, Lineage: out.Lineage}
	for _, m := range out.Modes {
		e := modeEntry{Mode: m.String()}
		if m.Kind == core.VersionKind && m.Version != nil {
			e.Valid = m.Version.Valid.String()
		}
		resp.Modes = append(resp.Modes, e)
	}
	for _, rk := range out.Ranking {
		resp.Ranking = append(resp.Ranking, rankEntry{Mode: rk.Mode.String(), Quality: rk.Quality})
	}
	if res := out.Result; res != nil {
		resp.Measures = res.MeasureNames
		resp.Groups = res.GroupNames
		resp.Mode = res.Mode.String()
		resp.Dropped = res.Dropped
		for _, row := range res.Rows {
			qr := queryRow{Time: row.TimeKey, Groups: row.Groups}
			if qr.Groups == nil {
				qr.Groups = []string{}
			}
			for i, v := range row.Values {
				if math.IsNaN(v) {
					qr.Values = append(qr.Values, nil)
				} else {
					vv := v
					qr.Values = append(qr.Values, &vv)
				}
				qr.CFs = append(qr.CFs, row.CFs[i].String())
				qr.Colors = append(qr.Colors, quality.CellColor(row.CFs[i]).String())
			}
			resp.Rows = append(resp.Rows, qr)
		}
	}
	return resp
}

func (s *Server) handleModes(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []modeEntry
	for _, m := range s.schema.Modes() {
		e := modeEntry{Mode: m.String()}
		if m.Kind == core.VersionKind {
			e.Valid = m.Version.Valid.String()
		}
		out = append(out, e)
	}
	writeJSON(w, out)
}

// schemaResponse describes the warehouse structure.
type schemaResponse struct {
	Name       string           `json:"name"`
	Measures   []measureEntry   `json:"measures"`
	Dimensions []dimensionEntry `json:"dimensions"`
	Mappings   []mappingEntry   `json:"mappings,omitempty"`
	Facts      int              `json:"facts"`
	Modes      int              `json:"modes"`
	Evolution  []evolutionEntry `json:"evolution,omitempty"`
}

type measureEntry struct {
	Name string `json:"name"`
	Agg  string `json:"agg"`
}

type dimensionEntry struct {
	ID       string         `json:"id"`
	Name     string         `json:"name"`
	Versions []versionEntry `json:"versions"`
}

type versionEntry struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Level  string `json:"level,omitempty"`
	Valid  string `json:"valid"`
	IsLeaf bool   `json:"isLeaf"`
}

type mappingEntry struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	K       []string `json:"k"`
	KInv    []string `json:"kInv"`
	Conf    int      `json:"confidence"`
	ConfInv int      `json:"confidenceInv"`
}

type evolutionEntry struct {
	Seq         int    `json:"seq"`
	Description string `json:"description"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sch := s.schema
	resp := schemaResponse{
		Name:  sch.Name,
		Facts: sch.Facts().Len(),
		Modes: len(sch.Modes()),
	}
	for _, m := range sch.Measures() {
		resp.Measures = append(resp.Measures, measureEntry{Name: m.Name, Agg: m.Agg.String()})
	}
	for _, d := range sch.Dimensions() {
		de := dimensionEntry{ID: string(d.ID), Name: d.Name}
		for _, mv := range d.Versions() {
			de.Versions = append(de.Versions, versionEntry{
				ID:     string(mv.ID),
				Name:   mv.DisplayName(),
				Level:  mv.Level,
				Valid:  mv.Valid.String(),
				IsLeaf: d.IsLeafVersion(mv.ID),
			})
		}
		resp.Dimensions = append(resp.Dimensions, de)
	}
	for _, row := range metadata.MappingTable(sch) {
		resp.Mappings = append(resp.Mappings, mappingEntry{
			From: row.From, To: row.To, K: row.K, KInv: row.KInv,
			Conf: row.Conf, ConfInv: row.ConfInv,
		})
	}
	for _, e := range s.applier.Log() {
		resp.Evolution = append(resp.Evolution, evolutionEntry{Seq: e.Seq, Description: e.Description})
	}
	writeJSON(w, resp)
}

func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	if !s.allowEvolve {
		jsonError(w, http.StatusForbidden, fmt.Errorf("evolution disabled; start with WithEvolution"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ops, err := evolution.ParseScript(bytes.NewReader(body), len(s.schema.Measures()))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.applier.Apply(ops...); err != nil {
		jsonError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, map[string]any{
		"applied": len(ops),
		"modes":   len(s.schema.Modes()),
	})
}
