// Package server is the front-end tier of the Figure-1 architecture: an
// HTTP service exposing the temporal multidimensional warehouse to
// analysis tools. It answers TQL queries as JSON (values paired with
// their §5.2 confidence factors and the result's quality factor), lists
// the temporal modes of presentation, serves the Table-12 mapping
// metadata, and — when enabled — applies evolution scripts.
//
// Endpoints:
//
//	GET  /query?q=<TQL>     run a statement; JSON result (&trace=1 adds spans)
//	GET  /modes             the set TMP of temporal modes
//	GET  /schema            dimensions, levels, measures, mappings
//	POST /evolve            apply an evolution script (requires enabling)
//	POST /facts             append a fact batch (requires enabling)
//	POST /admin/snapshot    durably snapshot the warehouse (requires a store)
//	GET  /wal/snapshot      latest snapshot bytes (follower bootstrap; requires a store)
//	GET  /wal/stream        stream committed WAL frames from ?from=<seq> (requires a store)
//	GET  /healthz           liveness
//	GET  /readyz            readiness: 503 until recovery completes
//	GET  /metrics           Prometheus text-format metrics
//	GET  /debug/vars        the same metrics as JSON
//	GET  /debug/pprof/      pprof handlers (requires WithPprof)
//
// Queries run lock-free on an immutable schema snapshot; evolution is
// copy-on-write — operators apply to a clone which is swapped in only
// when the whole batch succeeds, so readers never observe a mutating
// or partially evolved structure, and a failing batch leaves the
// served schema untouched.
//
// With a store attached (Install), every accepted mutation — an
// evolution batch or a fact batch — is appended to the write-ahead
// log before the evolved clone is swapped in, so the durable history
// never records a state that was not served; a batch that fails to
// apply, or whose WAL append fails, is never logged and never served,
// preserving the 422 atomicity envelope.
//
// A server built WithReplica is a read-only follower: it serves
// /query, /modes and /schema from state replicated off a leader's
// WAL stream, answers 403 with the leader's address on every
// mutating endpoint, reports replication lag on /readyz, and honors
// ?minWalSeq= as a read-your-writes barrier. See docs/replication.md.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/metadata"
	"mvolap/internal/obs"
	"mvolap/internal/quality"
	"mvolap/internal/store"
	"mvolap/internal/tql"
)

// StatusClientClosedRequest is the non-standard (nginx) status code
// reported when a client disconnects before its query completes.
const StatusClientClosedRequest = 499

// Server wraps a schema with HTTP handlers.
type Server struct {
	// mu guards the schema/applier pointers only. Handlers snapshot
	// the pointers under a brief read-lock and run on the snapshot —
	// query execution never holds the lock, so a pending evolution
	// cannot queue readers behind the slowest in-flight query.
	mu          sync.RWMutex
	schema      *core.Schema
	applier     *evolution.Applier
	store       *store.Store
	allowEvolve bool
	// replica is set on a read-only follower: mutations 403 to the
	// leader, /readyz reports lag, ?minWalSeq= waits on the apply loop.
	replica *store.Replica
	// warmRestored lists the temporal modes crash recovery restored
	// warm from the snapshot (reported by /readyz once ready).
	warmRestored []string

	logger       *slog.Logger
	queryTimeout time.Duration
	slowQuery    time.Duration
	enablePprof  bool

	// queryCache serves repeated SELECTs with zero scan. Entries are
	// keyed on (among others) the served schema's swap identity, so
	// the clone-swap mutation path — /facts, /evolve, and Install,
	// which the replica apply loop and crash recovery publish through
	// — invalidates by construction; the swap handlers also reclaim
	// stale entries eagerly. nil when disabled.
	queryCache     *tql.ResultCache
	queryCacheSize int

	// closing is closed by Stop to end long-lived replication streams
	// ahead of a graceful shutdown (Shutdown waits for handlers).
	closing   chan struct{}
	closeOnce sync.Once
}

// Option configures the server.
type Option func(*Server)

// WithEvolution enables the POST /evolve endpoint.
func WithEvolution() Option {
	return func(s *Server) { s.allowEvolve = true }
}

// WithLogger sets the structured logger for the access, slow-query and
// evolution logs. The default is slog.Default().
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithQueryTimeout sets a per-request deadline for /query; 0 (the
// default) means no deadline. Expired queries stop materializing and
// aggregating promptly and return 504.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithSlowQueryThreshold sets the latency above which a /query request
// is counted and logged as slow; 0 disables the slow-query log. The
// default is 500ms.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(s *Server) { s.slowQuery = d }
}

// WithPprof mounts net/http/pprof under /debug/pprof/.
func WithPprof() Option {
	return func(s *Server) { s.enablePprof = true }
}

// DefaultQueryCacheSize bounds the TQL result cache when WithQueryCache
// is not given.
const DefaultQueryCacheSize = 4096

// WithQueryCache bounds the TQL result cache to n entries; n <= 0
// disables result caching entirely.
func WithQueryCache(n int) Option {
	return func(s *Server) { s.queryCacheSize = n }
}

// New creates a server over the schema. A nil schema creates a server
// that is not yet ready: /healthz answers but /readyz and every
// warehouse endpoint return 503 until Install publishes a recovered
// warehouse — this lets the daemon listen (and be probed) while crash
// recovery replays the write-ahead log.
func New(sch *core.Schema, opts ...Option) *Server {
	s := &Server{
		schema:         sch,
		applier:        evolution.NewApplier(sch),
		logger:         slog.Default(),
		slowQuery:      500 * time.Millisecond,
		queryCacheSize: DefaultQueryCacheSize,
		closing:        make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.queryCacheSize > 0 {
		s.queryCache = tql.NewResultCache(s.queryCacheSize)
	}
	return s
}

// Stop ends the server's long-lived replication streams so a graceful
// http.Server.Shutdown can drain; followers reconnect elsewhere (or
// to the restarted process) on their own. Idempotent.
func (s *Server) Stop() {
	s.closeOnce.Do(func() { close(s.closing) })
}

// Install publishes a recovered warehouse: the schema, the applier
// carrying its recovered evolution log (nil for a fresh one), and the
// store that subsequent mutations append to (nil to serve without
// durability). After Install the server reports ready.
func (s *Server) Install(sch *core.Schema, applier *evolution.Applier, st *store.Store) {
	if applier == nil {
		applier = evolution.NewApplier(sch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schema = sch
	s.applier = applier
	s.store = st
	if st != nil {
		s.warmRestored = st.RecoveryStats().WarmModes
	}
	// Install is the publish path of crash recovery: reclaim every
	// result-cache entry computed against a previous schema state
	// (their entry-held swapIDs can no longer validate either way).
	if sch != nil {
		s.queryCache.InvalidateExcept(sch.SwapID())
	}
}

// InstallDelta is the replica's publish path: Install, but carrying
// the delta the applied WAL record produced, so the result cache can
// revalidate entries an insert-only facts append provably cannot
// affect instead of dropping everything. Followers serve the read
// fan-out, so this is where repeated queries keep hitting across the
// leader's append stream.
func (s *Server) InstallDelta(sch *core.Schema, applier *evolution.Applier, delta core.Delta) {
	if applier == nil {
		applier = evolution.NewApplier(sch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var prevID uint64
	if s.schema != nil {
		prevID = s.schema.SwapID()
	}
	s.schema = sch
	s.applier = applier
	if sch != nil {
		s.queryCache.Invalidate(prevID, sch.SwapID(), delta)
	}
}

// snapshot returns the schema to serve this request from. The pointer
// is immutable once published (evolution swaps in a fresh clone), so
// the caller runs without holding any server lock. It is nil until a
// schema is installed.
func (s *Server) snapshot() *core.Schema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schema
}

// notReady answers 503 and reports true while no schema is installed
// (crash recovery still replaying).
func (s *Server) notReady(w http.ResponseWriter) bool {
	if s.snapshot() != nil {
		return false
	}
	jsonError(w, http.StatusServiceUnavailable, fmt.Errorf("recovering: warehouse not yet available"))
	return true
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(endpoint, h))
	}
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	handle("GET /readyz", "/readyz", s.handleReadyz)
	handle("GET /{$}", "/", s.handleIndex)
	handle("GET /query", "/query", s.handleQuery)
	handle("GET /modes", "/modes", s.handleModes)
	handle("GET /schema", "/schema", s.handleSchema)
	handle("POST /evolve", "/evolve", s.handleEvolve)
	handle("POST /facts", "/facts", s.handleFacts)
	handle("POST /facts/retract", "/facts/retract", s.handleFactsRetract)
	handle("POST /admin/snapshot", "/admin/snapshot", s.handleAdminSnapshot)
	handle("GET /wal/stream", "/wal/stream", s.handleWALStream)
	handle("GET /wal/snapshot", "/wal/snapshot", s.handleWALSnapshot)
	handle("GET /metrics", "/metrics", handleMetrics)
	handle("GET /debug/vars", "/debug/vars", handleDebugVars)
	if s.enablePprof {
		handle("GET /debug/pprof/", "/debug/pprof/", pprof.Index)
		handle("GET /debug/pprof/cmdline", "/debug/pprof/", pprof.Cmdline)
		handle("GET /debug/pprof/profile", "/debug/pprof/", pprof.Profile)
		handle("GET /debug/pprof/symbol", "/debug/pprof/", pprof.Symbol)
		handle("GET /debug/pprof/trace", "/debug/pprof/", pprof.Trace)
	}
	return mux
}

// handleReadyz is the readiness probe, distinct from /healthz
// liveness: the process is alive during crash recovery (or a
// follower's bootstrap) but must not receive traffic until a
// warehouse is installed. On a follower the response carries the
// replication lag: the seq delta behind the leader plus the
// wall-clock age of the applied frontier.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.snapshot() == nil {
		if s.replica != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"status":      "bootstrapping",
				"role":        "follower",
				"replication": s.replica.Status(),
			})
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
		return
	}
	s.mu.RLock()
	warm := s.warmRestored
	st := s.store
	s.mu.RUnlock()
	if warm == nil {
		warm = []string{}
	}
	resp := map[string]any{"status": "ready", "warmRestoredModes": warm}
	switch {
	case s.replica != nil:
		resp["role"] = "follower"
		resp["replication"] = s.replica.Status()
	case st != nil:
		resp["role"] = "leader"
		resp["walSeq"] = st.LastSeq()
	}
	writeJSON(w, resp)
}

// handleMetrics serves the process registry in the Prometheus text
// exposition format.
func handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// handleDebugVars serves the same registry as expvar-style JSON.
func handleDebugVars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, obs.Default().Snapshot())
}

// handleIndex serves a minimal front-end page: a TQL form posting to
// /query, in the spirit of the paper's analysis client.
func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!DOCTYPE html>
<html><head><title>mvolap</title></head>
<body>
<h1>mvolap — multiversion temporal OLAP</h1>
<p>Query the warehouse in any temporal mode of presentation
(Body, Miquel, B&eacute;dard &amp; Tchounikine, ICDE 2003).</p>
<form action="/query" method="get">
<input name="q" size="100"
 value="SELECT * BY Org.Division, TIME.YEAR MODE tcm">
<button>Run</button>
</form>
<p>Also: <a href="/modes">/modes</a> &middot; <a href="/schema">/schema</a>
&middot; <a href="/healthz">/healthz</a></p>
</body></html>
`)
}

// jsonError writes a JSON error envelope.
func jsonError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(encodeJSON(v))
}

// encodeJSON renders v in the server's wire form (two-space indent,
// trailing newline — exactly what json.Encoder.SetIndent produced).
func encodeJSON(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.Encode(v)
	return buf.Bytes()
}

// queryResponse is the JSON shape of a query result. Rows is always
// present (as [] when the result is empty) so clients can index into
// the response without null checks; the same holds for the per-row
// arrays, see queryRow.
type queryResponse struct {
	Measures []string   `json:"measures,omitempty"`
	Groups   []string   `json:"groups,omitempty"`
	Rows     []queryRow `json:"rows"`
	Mode     string     `json:"mode,omitempty"`
	Quality  float64    `json:"quality"`
	Dropped  int        `json:"dropped,omitempty"`
	// Ranking is set for QUALITY statements.
	Ranking []rankEntry `json:"ranking,omitempty"`
	// Modes is set for MODES statements.
	Modes []modeEntry `json:"modes,omitempty"`
	// Lineage is set for EXPLAIN statements.
	Lineage string `json:"lineage,omitempty"`
	// Trace is the span tree, present when the request set trace=1.
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// queryRow is one result row. The values, cfs and colors arrays are
// always emitted (empty, never null, for a measure-less result) and
// are index-aligned with the response's measures.
type queryRow struct {
	Time   string     `json:"time"`
	Groups []string   `json:"groups"`
	Values []*float64 `json:"values"` // null elements encode unknown (NaN)
	CFs    []string   `json:"cfs"`
	Colors []string   `json:"colors"`
}

type rankEntry struct {
	Mode    string  `json:"mode"`
	Quality float64 `json:"quality"`
}

type modeEntry struct {
	Mode  string `json:"mode"`
	Valid string `json:"valid,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	stmt := r.URL.Query().Get("q")
	if stmt == "" {
		jsonError(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	// The request context carries client-disconnect cancellation; the
	// configured per-request deadline is layered on top, and both stop
	// materialization and aggregation inside their per-fact loops.
	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	// Read-your-writes: a request pinned to a walSeq waits (bounded by
	// the same deadline as the query itself) until this process has
	// applied it — immediate on the leader, a replication barrier on a
	// follower.
	if status, err := s.awaitMinSeq(ctx, r); err != nil {
		jsonError(w, status, err)
		return
	}
	var root *obs.Span
	if r.URL.Query().Get("trace") == "1" {
		ctx, root = obs.NewTrace(ctx, "query")
	}
	out, err := tql.RunCachedContext(ctx, s.snapshot(), stmt, quality.DefaultWeights(), s.queryCache)
	if err != nil {
		jsonError(w, queryStatus(err), err)
		return
	}
	setQuality(r.Context(), out.Quality)
	if root == nil {
		// The response body is a pure function of the output, so the
		// encoded bytes ride along with the result-cache entry: a cache
		// hit writes them straight out, skipping rendering and JSON
		// encoding as well as the scan.
		body := out.RenderOnce(func() []byte { return encodeQueryResponse(toResponse(out)) })
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	resp := toResponse(out)
	root.End()
	resp.Trace = root.Node()
	writeJSON(w, resp)
}

// queryStatus maps a query error onto an HTTP status: expired
// deadlines are 504, client disconnects 499, anything else is the
// client's statement's fault.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

func toResponse(out *tql.Output) queryResponse {
	resp := queryResponse{Quality: out.Quality, Lineage: out.Lineage, Rows: []queryRow{}}
	for _, m := range out.Modes {
		e := modeEntry{Mode: m.String()}
		if m.Kind == core.VersionKind && m.Version != nil {
			e.Valid = m.Version.Valid.String()
		}
		resp.Modes = append(resp.Modes, e)
	}
	for _, rk := range out.Ranking {
		resp.Ranking = append(resp.Ranking, rankEntry{Mode: rk.Mode.String(), Quality: rk.Quality})
	}
	if res := out.Result; res != nil {
		resp.Measures = res.MeasureNames
		resp.Groups = res.GroupNames
		resp.Mode = res.Mode.String()
		resp.Dropped = res.Dropped
		for _, row := range res.Rows {
			qr := queryRow{
				Time:   row.TimeKey,
				Groups: row.Groups,
				Values: []*float64{},
				CFs:    []string{},
				Colors: []string{},
			}
			if qr.Groups == nil {
				qr.Groups = []string{}
			}
			for i, v := range row.Values {
				if math.IsNaN(v) {
					qr.Values = append(qr.Values, nil)
				} else {
					vv := v
					qr.Values = append(qr.Values, &vv)
				}
				qr.CFs = append(qr.CFs, row.CFs[i].String())
				qr.Colors = append(qr.Colors, quality.CellColor(row.CFs[i]).String())
			}
			resp.Rows = append(resp.Rows, qr)
		}
	}
	return resp
}

func (s *Server) handleModes(w http.ResponseWriter, _ *http.Request) {
	if s.notReady(w) {
		return
	}
	var out []modeEntry
	for _, m := range s.snapshot().Modes() {
		e := modeEntry{Mode: m.String()}
		if m.Kind == core.VersionKind {
			e.Valid = m.Version.Valid.String()
		}
		out = append(out, e)
	}
	writeJSON(w, out)
}

// schemaResponse describes the warehouse structure.
type schemaResponse struct {
	Name       string           `json:"name"`
	Measures   []measureEntry   `json:"measures"`
	Dimensions []dimensionEntry `json:"dimensions"`
	Mappings   []mappingEntry   `json:"mappings,omitempty"`
	Facts      int              `json:"facts"`
	Modes      int              `json:"modes"`
	Evolution  []evolutionEntry `json:"evolution,omitempty"`
}

type measureEntry struct {
	Name string `json:"name"`
	Agg  string `json:"agg"`
}

type dimensionEntry struct {
	ID       string         `json:"id"`
	Name     string         `json:"name"`
	Versions []versionEntry `json:"versions"`
}

type versionEntry struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Level  string `json:"level,omitempty"`
	Valid  string `json:"valid"`
	IsLeaf bool   `json:"isLeaf"`
}

type mappingEntry struct {
	From    string   `json:"from"`
	To      string   `json:"to"`
	K       []string `json:"k"`
	KInv    []string `json:"kInv"`
	Conf    int      `json:"confidence"`
	ConfInv int      `json:"confidenceInv"`
}

type evolutionEntry struct {
	Seq         int    `json:"seq"`
	Description string `json:"description"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if s.notReady(w) {
		return
	}
	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}
	if status, err := s.awaitMinSeq(ctx, r); err != nil {
		jsonError(w, status, err)
		return
	}
	s.mu.RLock()
	sch, applier := s.schema, s.applier
	s.mu.RUnlock()
	resp := schemaResponse{
		Name:  sch.Name,
		Facts: sch.Facts().Len(),
		Modes: len(sch.Modes()),
	}
	for _, m := range sch.Measures() {
		resp.Measures = append(resp.Measures, measureEntry{Name: m.Name, Agg: m.Agg.String()})
	}
	for _, d := range sch.Dimensions() {
		de := dimensionEntry{ID: string(d.ID), Name: d.Name}
		for _, mv := range d.Versions() {
			de.Versions = append(de.Versions, versionEntry{
				ID:     string(mv.ID),
				Name:   mv.DisplayName(),
				Level:  mv.Level,
				Valid:  mv.Valid.String(),
				IsLeaf: d.IsLeafVersion(mv.ID),
			})
		}
		resp.Dimensions = append(resp.Dimensions, de)
	}
	for _, row := range metadata.MappingTable(sch) {
		resp.Mappings = append(resp.Mappings, mappingEntry{
			From: row.From, To: row.To, K: row.K, KInv: row.KInv,
			Conf: row.Conf, ConfInv: row.ConfInv,
		})
	}
	for _, e := range applier.Log() {
		resp.Evolution = append(resp.Evolution, evolutionEntry{Seq: e.Seq, Description: e.Description})
	}
	writeJSON(w, resp)
}

// handleEvolve applies an evolution script copy-on-write: the batch
// runs against a clone of the served schema, and the clone is swapped
// in only when every operator succeeds. A failing batch therefore
// leaves the served schema untouched — and the 422 envelope reports
// exactly what happened: how many operators applied before the
// failure, which operator failed (index and Table 11 description),
// and that nothing was retained.
func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	if s.forbidOnReplica(w) {
		return
	}
	if !s.allowEvolve {
		jsonError(w, http.StatusForbidden, fmt.Errorf("evolution disabled; start with WithEvolution"))
		return
	}
	if s.notReady(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	// The write lock only serializes evolutions against each other and
	// against pointer snapshots; queries in flight keep reading the
	// previous schema and are never blocked by the clone or the apply.
	s.mu.Lock()
	defer s.mu.Unlock()
	ops, err := evolution.ParseScript(bytes.NewReader(body), len(s.schema.Measures()))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	clone := s.schema.Clone()
	applier := s.applier.Rebind(clone)
	touched, err := applier.ApplyTouched(ops...)
	if err != nil {
		envelope := map[string]any{"error": err.Error()}
		var ae *evolution.ApplyError
		if errors.As(err, &ae) {
			envelope["applied"] = ae.Applied
			envelope["failedAt"] = ae.Index
			envelope["failedOp"] = ae.Op
			// Copy-on-write: the partially applied clone is discarded,
			// so the served schema did not mutate. A failed batch is
			// also never appended to the WAL.
			envelope["retained"] = false
			s.logger.Warn("evolution batch failed",
				"ops", len(ops), "applied", ae.Applied,
				"failedAt", ae.Index, "failedOp", ae.Op, "err", ae.Err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(envelope)
		return
	}
	// Write-ahead: the accepted script must be durable (per the fsync
	// policy) before the evolved clone becomes visible. A failed append
	// serves and persists nothing.
	resp := map[string]any{
		"applied": len(ops),
		"modes":   len(clone.Modes()),
	}
	snapshotDue := false
	if s.store != nil {
		seq, due, err := s.store.AppendEvolve(body)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", err))
			return
		}
		resp["walSeq"] = seq
		snapshotDue = due
	}
	s.warmCaches(r, clone, touched.Delta(), "evolve", resp)
	prevID := s.schema.SwapID()
	s.schema = clone
	s.applier = applier
	resp["queryCacheInvalidated"] = s.queryCache.Invalidate(prevID, clone.SwapID(), touched.Delta())
	s.logger.Info("evolution applied", "ops", len(ops), "modes", len(clone.Modes()),
		"modesRetained", resp["retainedModes"], "modesEvicted", resp["evictedModes"])
	if snapshotDue {
		s.snapshotLocked("auto")
	}
	writeJSON(w, resp)
}

// handleFacts appends a batch of source facts, with the same
// copy-on-write atomicity as /evolve: the whole batch validates and
// inserts into a clone, is appended to the WAL, and only then swapped
// into service. A batch with any invalid fact changes nothing and is
// never logged.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if s.forbidOnReplica(w) {
		return
	}
	if !s.allowEvolve {
		jsonError(w, http.StatusForbidden, fmt.Errorf("mutation disabled; start with WithEvolution"))
		return
	}
	if s.notReady(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	batch, err := store.ParseFactBatch(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	clone := s.schema.Clone()
	oldLen := clone.Facts().Len()
	for i, fr := range batch {
		if err := store.ApplyFact(clone, fr); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]any{
				"error":    fmt.Sprintf("fact %d: %v", i, err),
				"applied":  i,
				"failedAt": i,
				"retained": false,
			})
			return
		}
	}
	resp := map[string]any{
		"appended": len(batch),
		"facts":    clone.Facts().Len(),
	}
	snapshotDue := false
	if s.store != nil {
		seq, due, err := s.store.AppendFactBatch(batch)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", err))
			return
		}
		resp["walSeq"] = seq
		snapshotDue = due
	}
	// An insert-only batch appends a suffix the cached modes can fold in
	// incrementally; a batch that replaced values at existing coordinates
	// cannot be expressed as a delta and evicts everything.
	var delta core.Delta
	if clone.Facts().Len() == oldLen+len(batch) {
		delta.NewFacts = clone.Facts().Facts()[oldLen:]
	} else {
		delta.FactsReplaced = true
	}
	delta.FactsWindow, delta.FactsWindowKnown = store.BatchWindow(batch)
	s.warmCaches(r, clone, delta, "facts", resp)
	prevID := s.schema.SwapID()
	s.schema = clone
	s.applier = s.applier.Rebind(clone)
	// Cached SELECTs whose time range cannot see the batch's window are
	// revalidated rather than dropped; everything overlapping drops.
	resp["queryCacheInvalidated"] = s.queryCache.Invalidate(prevID, clone.SwapID(), delta)
	s.logger.Info("facts appended", "facts", len(batch), "total", clone.Facts().Len(),
		"modesRetained", resp["retainedModes"], "modesEvicted", resp["evictedModes"])
	if snapshotDue {
		s.snapshotLocked("auto")
	}
	writeJSON(w, resp)
}

// handleFactsRetract removes facts: a JSON array of {coords, time}
// addresses. The batch is atomic with the same copy-on-write shape as
// /facts: every record must address an existing tuple of a clone; any
// miss returns 422 and changes nothing — in particular, nothing is
// logged to the WAL. On success the delta carries the old tuples, so
// warm modes subtract the retracted contributions under invertible
// aggregates instead of rebuilding, and the TQL result cache retargets
// entries whose time range provably cannot see the retracted window.
// Leader-only: followers answer 403 with the leader's address.
func (s *Server) handleFactsRetract(w http.ResponseWriter, r *http.Request) {
	if s.forbidOnReplica(w) {
		return
	}
	if !s.allowEvolve {
		jsonError(w, http.StatusForbidden, fmt.Errorf("mutation disabled; start with WithEvolution"))
		return
	}
	if s.notReady(w) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	batch, err := store.ParseRetractBatch(body)
	if err != nil {
		jsonError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	clone := s.schema.Clone()
	retracted := make([]*core.Fact, 0, len(batch))
	for i, rr := range batch {
		old, err := store.ApplyRetract(clone, rr)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(map[string]any{
				"error":    fmt.Sprintf("retract %d: %v", i, err),
				"applied":  i,
				"failedAt": i,
				"retained": false,
			})
			return
		}
		retracted = append(retracted, old)
	}
	resp := map[string]any{
		"retracted": len(batch),
		"facts":     clone.Facts().Len(),
	}
	snapshotDue := false
	if s.store != nil {
		seq, due, err := s.store.AppendRetractBatch(batch)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, fmt.Errorf("wal append: %w", err))
			return
		}
		resp["walSeq"] = seq
		snapshotDue = due
	}
	// Retraction is structure-neutral; the delta carries the old tuples
	// so warm maintenance can unfold them (or evict where it cannot).
	delta := evolution.TouchSet{}.WithRetraction(retracted)
	s.warmCaches(r, clone, delta, "retract", resp)
	prevID := s.schema.SwapID()
	s.schema = clone
	s.applier = s.applier.Rebind(clone)
	// Cached SELECTs whose time range cannot see the retracted window
	// are revalidated rather than dropped; everything overlapping drops.
	resp["queryCacheInvalidated"] = s.queryCache.Invalidate(prevID, clone.SwapID(), delta)
	s.logger.Info("facts retracted", "facts", len(batch), "total", clone.Facts().Len(),
		"modesRetained", resp["retainedModes"], "modesEvicted", resp["evictedModes"])
	if snapshotDue {
		s.snapshotLocked("auto")
	}
	writeJSON(w, resp)
}

// warmCaches hands the currently served schema's materialized MVFT
// modes to the accepted clone right before the swap, folding in only
// the delta (core.Schema.WarmFrom) — the serving tier no longer starts
// cold after every mutation. The caller holds s.mu (so s.schema is the
// outgoing base) and has already passed the point of no failure: the
// batch applied and the WAL append succeeded. Warming is therefore
// best-effort and detached from the client's cancellation — an aborted
// request must not decide cache temperature.
//
// The retained/evicted mode lists and delta-apply count are added to
// the response envelope; with ?trace=1 an "mvft_delta" span tree is
// attached as well.
func (s *Server) warmCaches(r *http.Request, clone *core.Schema, d core.Delta, endpoint string, resp map[string]any) {
	ctx := context.WithoutCancel(r.Context())
	var root *obs.Span
	if r.URL.Query().Get("trace") == "1" {
		ctx, root = obs.NewTrace(ctx, endpoint)
	}
	spanCtx, sp := obs.StartSpan(ctx, "mvft_delta")
	res := clone.WarmFrom(spanCtx, s.schema, d)
	sp.SetAttr("retained", len(res.Retained))
	sp.SetAttr("evicted", len(res.Evicted))
	sp.SetAttr("delta_applies", res.DeltaApplied)
	sp.SetAttr("delta_facts", len(d.NewFacts))
	if len(d.Retracted) > 0 {
		sp.SetAttr("retracted_facts", len(d.Retracted))
		sp.SetAttr("modes_subtracted", res.Subtracted)
		resp["modesSubtracted"] = res.Subtracted
	}
	sp.End()
	if res.Retained == nil {
		res.Retained = []string{}
	}
	if res.Evicted == nil {
		res.Evicted = []string{}
	}
	resp["retainedModes"] = res.Retained
	resp["evictedModes"] = res.Evicted
	resp["deltaApplies"] = res.DeltaApplied
	if root != nil {
		root.End()
		resp["trace"] = root.Node()
	}
}

// handleAdminSnapshot durably snapshots the served warehouse on
// demand and truncates the write-ahead log.
func (s *Server) handleAdminSnapshot(w http.ResponseWriter, _ *http.Request) {
	if s.forbidOnReplica(w) {
		return
	}
	s.mu.RLock()
	st := s.store
	s.mu.RUnlock()
	if st == nil {
		jsonError(w, http.StatusForbidden, fmt.Errorf("no store configured; start with -data-dir"))
		return
	}
	if s.notReady(w) {
		return
	}
	start := time.Now()
	s.mu.Lock()
	seq, err := st.Snapshot(s.schema, s.applier.Log(), "admin")
	warmModes := []string{}
	if err == nil && st.WarmEnabled() {
		warmModes = append(warmModes, s.schema.CachedModeKeys()...)
	}
	s.mu.Unlock()
	if err != nil {
		jsonError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, map[string]any{
		"walSeq":    seq,
		"warmModes": warmModes,
		"ms":        float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// snapshotLocked takes an automatic store snapshot of the served
// schema; the caller holds s.mu. Failure is logged, not returned — the
// WAL still holds every record, so durability is unharmed and the next
// snapshot retries the truncation.
func (s *Server) snapshotLocked(trigger string) {
	if _, err := s.store.Snapshot(s.schema, s.applier.Log(), trigger); err != nil {
		s.logger.Error("snapshot failed", "trigger", trigger, "err", err)
	}
}
