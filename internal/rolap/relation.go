package rolap

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Relation is an immutable derived table produced by the relational
// algebra. Rows are shared with their sources; operators never mutate
// rows in place.
type Relation struct {
	Cols Schema
	Rows [][]any
}

// Get returns the value of the named column in row i.
func (r *Relation) Get(i int, col string) (any, error) {
	ci := r.Cols.IndexOf(col)
	if ci < 0 {
		return nil, fmt.Errorf("rolap: no column %q", col)
	}
	return r.Rows[i][ci], nil
}

// Filter keeps the rows satisfying the predicate.
func (r *Relation) Filter(pred func(row []any) bool) *Relation {
	out := &Relation{Cols: r.Cols}
	for _, row := range r.Rows {
		if pred(row) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// FilterEq keeps rows whose column equals the value.
func (r *Relation) FilterEq(col string, value any) (*Relation, error) {
	ci := r.Cols.IndexOf(col)
	if ci < 0 {
		return nil, fmt.Errorf("rolap: no column %q", col)
	}
	nv, err := checkValue(r.Cols[ci].Type, value)
	if err != nil {
		return nil, err
	}
	return r.Filter(func(row []any) bool { return compareValues(row[ci], nv) == 0 }), nil
}

// Project keeps the named columns, in the given order. A projection may
// rename with "col AS name".
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	out := &Relation{Cols: make(Schema, len(cols))}
	for i, spec := range cols {
		name, alias := spec, ""
		if a, b, ok := cutFold(spec, " as "); ok {
			name, alias = strings.TrimSpace(a), strings.TrimSpace(b)
		}
		ci := r.Cols.IndexOf(name)
		if ci < 0 {
			return nil, fmt.Errorf("rolap: no column %q", name)
		}
		idx[i] = ci
		outName := alias
		if outName == "" {
			outName = r.Cols[ci].Name
		}
		out.Cols[i] = Column{Name: outName, Type: r.Cols[ci].Type}
	}
	for _, row := range r.Rows {
		nr := make([]any, len(idx))
		for i, ci := range idx {
			nr[i] = row[ci]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func cutFold(s, sep string) (string, string, bool) {
	ls, lsep := strings.ToLower(s), strings.ToLower(sep)
	i := strings.Index(ls, lsep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// Join hash-joins the relation with other on leftCol = rightCol
// (equi-join). The result concatenates the column lists.
func (r *Relation) Join(other *Relation, leftCol, rightCol string) (*Relation, error) {
	li := r.Cols.IndexOf(leftCol)
	if li < 0 {
		return nil, fmt.Errorf("rolap: join: no column %q on the left", leftCol)
	}
	ri := other.Cols.IndexOf(rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("rolap: join: no column %q on the right", rightCol)
	}
	out := &Relation{Cols: append(append(Schema{}, r.Cols...), other.Cols...)}
	// Build on the smaller side.
	build, probe := other, r
	bi, pi := ri, li
	swapped := false
	if len(r.Rows) < len(other.Rows) {
		build, probe = r, other
		bi, pi = li, ri
		swapped = true
	}
	ht := make(map[any][][]any, len(build.Rows))
	for _, row := range build.Rows {
		if row[bi] == nil {
			continue // NULL never joins
		}
		ht[row[bi]] = append(ht[row[bi]], row)
	}
	for _, prow := range probe.Rows {
		if prow[pi] == nil {
			continue
		}
		for _, brow := range ht[prow[pi]] {
			var lrow, rrow []any
			if swapped {
				lrow, rrow = brow, prow
			} else {
				lrow, rrow = prow, brow
			}
			nr := make([]any, 0, len(lrow)+len(rrow))
			nr = append(nr, lrow...)
			nr = append(nr, rrow...)
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

// AggFunc is an aggregate over a group of rows.
type AggFunc uint8

// Supported aggregates.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate.
func (a AggFunc) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return fmt.Sprintf("AggFunc(%d)", uint8(a))
}

// AggSpec names an aggregated column: Fn over Col, output name As.
type AggSpec struct {
	Fn  AggFunc
	Col string // "*" allowed for COUNT
	As  string
}

// GroupBy groups rows by the key columns and computes the aggregates.
// The output has the key columns followed by one column per aggregate.
// Grouping with no keys produces a single row over all input rows.
func (r *Relation) GroupBy(keys []string, aggs []AggSpec) (*Relation, error) {
	keyIdx := make([]int, len(keys))
	out := &Relation{}
	for i, k := range keys {
		ci := r.Cols.IndexOf(k)
		if ci < 0 {
			return nil, fmt.Errorf("rolap: group by: no column %q", k)
		}
		keyIdx[i] = ci
		out.Cols = append(out.Cols, r.Cols[ci])
	}
	aggIdx := make([]int, len(aggs))
	for i, a := range aggs {
		if a.Col == "*" {
			if a.Fn != AggCount {
				return nil, fmt.Errorf("rolap: %s(*) not supported", a.Fn)
			}
			aggIdx[i] = -1
		} else {
			ci := r.Cols.IndexOf(a.Col)
			if ci < 0 {
				return nil, fmt.Errorf("rolap: aggregate: no column %q", a.Col)
			}
			aggIdx[i] = ci
		}
		name := a.As
		if name == "" {
			name = fmt.Sprintf("%s(%s)", a.Fn, a.Col)
		}
		typ := Float
		if a.Fn == AggCount {
			typ = Int
		}
		out.Cols = append(out.Cols, Column{Name: name, Type: typ})
	}

	type group struct {
		key   []any
		sums  []float64
		mins  []float64
		maxs  []float64
		ns    []int64
		first bool
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range r.Rows {
		kb := make([]string, len(keyIdx))
		key := make([]any, len(keyIdx))
		for i, ci := range keyIdx {
			key[i] = row[ci]
			kb[i] = fmt.Sprint(row[ci])
		}
		ks := strings.Join(kb, "\x1f")
		g, ok := groups[ks]
		if !ok {
			g = &group{
				key:  key,
				sums: make([]float64, len(aggs)),
				mins: make([]float64, len(aggs)),
				maxs: make([]float64, len(aggs)),
				ns:   make([]int64, len(aggs)),
			}
			for i := range aggs {
				g.mins[i] = math.Inf(1)
				g.maxs[i] = math.Inf(-1)
			}
			groups[ks] = g
			order = append(order, ks)
		}
		for i, a := range aggs {
			if aggIdx[i] == -1 { // COUNT(*)
				g.ns[i]++
				continue
			}
			v := row[aggIdx[i]]
			if v == nil {
				continue
			}
			f, ok := toFloat(v)
			if !ok {
				if a.Fn == AggCount {
					g.ns[i]++
				}
				continue
			}
			if math.IsNaN(f) {
				continue
			}
			g.ns[i]++
			g.sums[i] += f
			if f < g.mins[i] {
				g.mins[i] = f
			}
			if f > g.maxs[i] {
				g.maxs[i] = f
			}
		}
	}
	for _, ks := range order {
		g := groups[ks]
		row := append([]any{}, g.key...)
		for i, a := range aggs {
			switch a.Fn {
			case AggCount:
				row = append(row, g.ns[i])
			case AggSum:
				row = append(row, g.sums[i])
			case AggMin:
				row = append(row, nanIfEmpty(g.mins[i], g.ns[i]))
			case AggMax:
				row = append(row, nanIfEmpty(g.maxs[i], g.ns[i]))
			case AggAvg:
				if g.ns[i] == 0 {
					row = append(row, math.NaN())
				} else {
					row = append(row, g.sums[i]/float64(g.ns[i]))
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func nanIfEmpty(v float64, n int64) float64 {
	if n == 0 {
		return math.NaN()
	}
	return v
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	}
	return 0, false
}

// OrderBy sorts the rows by the given columns. A column name prefixed
// with '-' sorts descending. The sort is stable.
func (r *Relation) OrderBy(cols ...string) (*Relation, error) {
	type key struct {
		ci   int
		desc bool
	}
	ks := make([]key, len(cols))
	for i, c := range cols {
		desc := false
		if strings.HasPrefix(c, "-") {
			desc = true
			c = c[1:]
		}
		ci := r.Cols.IndexOf(c)
		if ci < 0 {
			return nil, fmt.Errorf("rolap: order by: no column %q", c)
		}
		ks[i] = key{ci, desc}
	}
	out := &Relation{Cols: r.Cols, Rows: append([][]any{}, r.Rows...)}
	sort.SliceStable(out.Rows, func(i, j int) bool {
		for _, k := range ks {
			c := compareValues(out.Rows[i][k.ci], out.Rows[j][k.ci])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return out, nil
}

// Limit keeps the first n rows.
func (r *Relation) Limit(n int) *Relation {
	if n < 0 || n > len(r.Rows) {
		n = len(r.Rows)
	}
	return &Relation{Cols: r.Cols, Rows: r.Rows[:n]}
}

// Distinct removes duplicate rows, keeping first occurrences.
func (r *Relation) Distinct() *Relation {
	seen := make(map[string]bool)
	out := &Relation{Cols: r.Cols}
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprint(v)
		}
		key := strings.Join(parts, "\x1f")
		if !seen[key] {
			seen[key] = true
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// String renders the relation as an aligned text table.
func (r *Relation) String() string {
	widths := make([]int, len(r.Cols))
	header := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := "NULL"
			if v != nil {
				if f, ok := v.(float64); ok && f == math.Trunc(f) && !math.IsInf(f, 0) && !math.IsNaN(f) {
					s = fmt.Sprintf("%d", int64(f))
				} else {
					s = fmt.Sprint(v)
				}
			}
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
