package rolap

import (
	"strings"
	"testing"
)

func testDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("dw")
	facts := factTable(t)
	dept := deptTable(t)
	db.tables[facts.Name] = facts
	db.tables[dept.Name] = dept
	return db
}

func TestDatabaseBasics(t *testing.T) {
	db := NewDatabase("x")
	tab, err := db.CreateTable("t", Schema{{Name: "a", Type: Int}})
	if err != nil || tab == nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", Schema{{Name: "a", Type: Int}}); err == nil {
		t.Error("duplicate table must fail")
	}
	if _, err := db.CreateTable("bad", nil); err == nil {
		t.Error("bad schema must fail")
	}
	if db.Table("t") != tab || db.Table("zz") != nil {
		t.Error("Table lookup wrong")
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Errorf("TableNames = %v", got)
	}
	if err := db.DropTable("t"); err != nil {
		t.Error(err)
	}
	if err := db.DropTable("t"); err == nil {
		t.Error("dropping a missing table must fail")
	}
}

func TestSQLSimpleSelect(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query("SELECT dept, amount FROM fact WHERE year = 2001 ORDER BY amount DESC, dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	if rel.Rows[0][0] != "brian" || rel.Rows[0][1] != 100.0 {
		t.Errorf("first row = %v", rel.Rows[0])
	}
}

func TestSQLSelectStar(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query("SELECT * FROM fact LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 || len(rel.Cols) != 3 {
		t.Errorf("star select = %d rows, %d cols", len(rel.Rows), len(rel.Cols))
	}
}

func TestSQLGroupBy(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query("SELECT year, SUM(amount) AS total FROM fact GROUP BY year ORDER BY year")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("groups = %d", len(rel.Rows))
	}
	if rel.Rows[0][0] != int64(2001) || rel.Rows[0][1] != 250.0 {
		t.Errorf("2001 = %v", rel.Rows[0])
	}
	if rel.Cols[1].Name != "total" {
		t.Errorf("alias = %q", rel.Cols[1].Name)
	}
}

// TestSQLJoinRollup replays the paper's Q1 (amount by year and division)
// against a star layout, in "consistent time": the fact rows joined to
// the dimension rows valid at the fact's year.
func TestSQLJoinRollup(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query(
		"SELECT year, division, SUM(amount) AS total " +
			"FROM fact JOIN dept ON fact.dept = dept.id " +
			"GROUP BY year, division ORDER BY year, division")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{
		{int64(2001), "R&D", 100.0},
		{int64(2001), "Sales", 150.0},
		{int64(2002), "R&D", 150.0},
		{int64(2002), "Sales", 100.0},
	}
	if len(rel.Rows) != len(want) {
		t.Fatalf("rows:\n%s", rel)
	}
	for i, w := range want {
		for j := range w {
			if rel.Rows[i][j] != w[j] {
				t.Errorf("row %d col %d = %v, want %v", i, j, rel.Rows[i][j], w[j])
			}
		}
	}
}

func TestSQLWhereOperators(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		where string
		want  int
	}{
		{"amount > 50", 4},
		{"amount >= 50", 6},
		{"amount < 100", 2},
		{"amount <= 50", 2},
		{"amount != 100", 2},
		{"amount <> 100", 2},
		{"dept = 'jones'", 2},
		{"dept = 'jones' AND year = 2001", 1},
		{"dept = 'jones' OR dept = 'brian'", 4},
		{"NOT dept = 'jones'", 4},
		{"(dept = 'jones' OR dept = 'brian') AND year = 2002", 2},
		{"amount = -1", 0},
	}
	for _, c := range cases {
		rel, err := db.Query("SELECT * FROM fact WHERE " + c.where)
		if err != nil {
			t.Errorf("WHERE %s: %v", c.where, err)
			continue
		}
		if len(rel.Rows) != c.want {
			t.Errorf("WHERE %s: %d rows, want %d", c.where, len(rel.Rows), c.want)
		}
	}
}

func TestSQLStringEscapes(t *testing.T) {
	db := NewDatabase("x")
	tab, _ := db.CreateTable("t", Schema{{Name: "s", Type: Text}})
	tab.MustInsert("it's")
	rel, err := db.Query("SELECT * FROM t WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Error("escaped quote must match")
	}
}

func TestSQLBooleans(t *testing.T) {
	db := NewDatabase("x")
	tab, _ := db.CreateTable("t", Schema{{Name: "b", Type: Bool}})
	tab.MustInsert(true)
	tab.MustInsert(false)
	rel, err := db.Query("SELECT * FROM t WHERE b = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Error("boolean literal must work")
	}
}

func TestSQLNullNeverMatches(t *testing.T) {
	db := NewDatabase("x")
	tab, _ := db.CreateTable("t", Schema{{Name: "v", Type: Float}})
	tab.MustInsert(nil)
	tab.MustInsert(1.0)
	rel, err := db.Query("SELECT * FROM t WHERE v < 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Error("NULL must not satisfy comparisons")
	}
}

func TestSQLParseErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"",
		"UPDATE fact",
		"SELECT FROM fact",
		"SELECT * fact",
		"SELECT * FROM",
		"SELECT * FROM fact WHERE",
		"SELECT * FROM fact WHERE amount",
		"SELECT * FROM fact WHERE amount ~ 3",
		"SELECT * FROM fact WHERE amount = ",
		"SELECT * FROM fact WHERE (amount = 1",
		"SELECT * FROM fact GROUP year",
		"SELECT * FROM fact ORDER year",
		"SELECT * FROM fact LIMIT x",
		"SELECT * FROM fact JOIN dept",
		"SELECT * FROM fact JOIN dept ON a b",
		"SELECT * FROM fact trailing",
		"SELECT SUM( FROM fact",
		"SELECT SUM(a FROM fact",
		"SELECT * FROM fact WHERE s = 'unterminated",
		"SELECT * FROM fact WHERE a = b!c",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("query %q must fail", q)
		}
	}
}

func TestSQLExecErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT * FROM nope",
		"SELECT * FROM fact JOIN nope ON fact.dept = nope.id",
		"SELECT zz FROM fact",
		"SELECT * FROM fact WHERE zz = 1",
		"SELECT SUM(zz) FROM fact",
		"SELECT year FROM fact GROUP BY zz",
		"SELECT * FROM fact ORDER BY zz",
		"SELECT * FROM fact JOIN dept ON zz = dept.id",
	}
	for _, q := range bad {
		if _, err := db.Query(q); err == nil {
			t.Errorf("query %q must fail at execution", q)
		}
	}
}

func TestSQLCountStar(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query("SELECT COUNT(*) AS n FROM fact WHERE year = 2002")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(3) {
		t.Errorf("count = %v", rel.Rows[0][0])
	}
}

func TestSQLTimeComparison(t *testing.T) {
	db := NewDatabase("x")
	tab, _ := db.CreateTable("t", Schema{{Name: "at", Type: Time}})
	tab.MustInsert(int64(100))
	tab.MustInsert(int64(200))
	rel, err := db.Query("SELECT * FROM t WHERE at >= 150")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Error("time comparison against numeric literal must work")
	}
}

func TestSQLProjectionAliasWithoutAgg(t *testing.T) {
	db := testDB(t)
	rel, err := db.Query("SELECT dept AS d FROM fact LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cols[0].Name != "d" {
		t.Errorf("alias = %q", rel.Cols[0].Name)
	}
	if !strings.Contains(rel.String(), "d") {
		t.Error("rendered header must use alias")
	}
}
