package rolap

import (
	"math"
	"strings"
	"testing"

	"mvolap/internal/temporal"
)

func factTable(t testing.TB) *Table {
	t.Helper()
	tab := MustNewTable("fact", Schema{
		{Name: "dept", Type: Text},
		{Name: "year", Type: Int},
		{Name: "amount", Type: Float},
	})
	rows := [][]any{
		{"jones", 2001, 100.0},
		{"smith", 2001, 50.0},
		{"brian", 2001, 100.0},
		{"jones", 2002, 100.0},
		{"smith2", 2002, 100.0},
		{"brian", 2002, 50.0},
	}
	for _, r := range rows {
		tab.MustInsert(r...)
	}
	return tab
}

func TestFilterProject(t *testing.T) {
	rel := factTable(t).Relation()
	f, err := rel.FilterEq("year", 2001)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 3 {
		t.Fatalf("filter = %d rows", len(f.Rows))
	}
	p, err := f.Project("dept", "amount AS amt")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cols) != 2 || p.Cols[1].Name != "amt" {
		t.Errorf("projected cols = %v", p.Cols)
	}
	v, err := p.Get(0, "amt")
	if err != nil || v != 100.0 {
		t.Errorf("Get = %v, %v", v, err)
	}
	if _, err := p.Get(0, "zz"); err == nil {
		t.Error("Get unknown column must fail")
	}
	if _, err := rel.Project("zz"); err == nil {
		t.Error("project unknown column must fail")
	}
	if _, err := rel.FilterEq("zz", 1); err == nil {
		t.Error("filter unknown column must fail")
	}
}

func TestJoin(t *testing.T) {
	facts := factTable(t)
	dept := deptTable(t)
	j, err := facts.Relation().Join(dept.Relation(), "fact.dept", "dept.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 6 {
		t.Fatalf("join = %d rows, want 6", len(j.Rows))
	}
	if len(j.Cols) != 8 {
		t.Errorf("join cols = %d, want 8", len(j.Cols))
	}
	// Join in the other direction gives the same row count.
	j2, err := dept.Relation().Join(facts.Relation(), "dept.id", "fact.dept")
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Rows) != 6 {
		t.Errorf("reverse join = %d rows", len(j2.Rows))
	}
	if _, err := facts.Relation().Join(dept.Relation(), "zz", "dept.id"); err == nil {
		t.Error("join on unknown left column must fail")
	}
	if _, err := facts.Relation().Join(dept.Relation(), "fact.dept", "zz"); err == nil {
		t.Error("join on unknown right column must fail")
	}
}

func TestJoinSkipsNulls(t *testing.T) {
	a := MustNewTable("a", Schema{{Name: "k", Type: Text}})
	b := MustNewTable("b", Schema{{Name: "k", Type: Text}})
	a.MustInsert(nil)
	a.MustInsert("x")
	b.MustInsert("x")
	b.MustInsert(nil)
	j, err := a.Relation().Join(b.Relation(), "a.k", "b.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 1 {
		t.Errorf("NULL keys must not join; got %d rows", len(j.Rows))
	}
}

func TestGroupBy(t *testing.T) {
	rel := factTable(t).Relation()
	g, err := rel.GroupBy([]string{"year"}, []AggSpec{
		{Fn: AggSum, Col: "amount", As: "total"},
		{Fn: AggCount, Col: "*", As: "n"},
		{Fn: AggMin, Col: "amount", As: "lo"},
		{Fn: AggMax, Col: "amount", As: "hi"},
		{Fn: AggAvg, Col: "amount", As: "mean"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	get := func(i int, col string) any {
		v, err := g.Get(i, col)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get(0, "total") != 250.0 || get(0, "n") != int64(3) {
		t.Errorf("2001 totals = %v, %v", get(0, "total"), get(0, "n"))
	}
	if get(0, "lo") != 50.0 || get(0, "hi") != 100.0 {
		t.Errorf("2001 min/max = %v, %v", get(0, "lo"), get(0, "hi"))
	}
	if math.Abs(get(0, "mean").(float64)-250.0/3) > 1e-9 {
		t.Errorf("2001 mean = %v", get(0, "mean"))
	}
	// Grand total with no keys.
	g2, err := rel.GroupBy(nil, []AggSpec{{Fn: AggSum, Col: "amount"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Rows) != 1 || g2.Rows[0][0] != 500.0 {
		t.Errorf("grand total = %+v", g2.Rows)
	}
	if g2.Cols[0].Name != "SUM(amount)" {
		t.Errorf("default agg name = %q", g2.Cols[0].Name)
	}
	// Errors.
	if _, err := rel.GroupBy([]string{"zz"}, nil); err == nil {
		t.Error("group by unknown column must fail")
	}
	if _, err := rel.GroupBy(nil, []AggSpec{{Fn: AggSum, Col: "zz"}}); err == nil {
		t.Error("aggregate over unknown column must fail")
	}
	if _, err := rel.GroupBy(nil, []AggSpec{{Fn: AggSum, Col: "*"}}); err == nil {
		t.Error("SUM(*) must fail")
	}
}

func TestGroupBySkipsNaNAndNull(t *testing.T) {
	tab := MustNewTable("t", Schema{{Name: "k", Type: Text}, {Name: "v", Type: Float}})
	tab.MustInsert("a", 1.0)
	tab.MustInsert("a", math.NaN())
	tab.MustInsert("a", nil)
	tab.MustInsert("a", 2.0)
	g, err := tab.Relation().GroupBy([]string{"k"}, []AggSpec{
		{Fn: AggSum, Col: "v", As: "s"}, {Fn: AggCount, Col: "v", As: "n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows[0][1] != 3.0 {
		t.Errorf("sum = %v, want 3 (NaN and NULL skipped)", g.Rows[0][1])
	}
	if g.Rows[0][2] != int64(2) {
		t.Errorf("count = %v, want 2", g.Rows[0][2])
	}
}

func TestGroupByEmptyAggregates(t *testing.T) {
	tab := MustNewTable("t", Schema{{Name: "k", Type: Text}, {Name: "v", Type: Float}})
	tab.MustInsert("a", nil)
	g, err := tab.Relation().GroupBy([]string{"k"}, []AggSpec{
		{Fn: AggMin, Col: "v"}, {Fn: AggMax, Col: "v"}, {Fn: AggAvg, Col: "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if !math.IsNaN(g.Rows[0][i].(float64)) {
			t.Errorf("empty aggregate %d = %v, want NaN", i, g.Rows[0][i])
		}
	}
}

func TestOrderByLimitDistinct(t *testing.T) {
	rel := factTable(t).Relation()
	o, err := rel.OrderBy("-amount", "dept")
	if err != nil {
		t.Fatal(err)
	}
	if o.Rows[0][2] != 100.0 {
		t.Errorf("desc order first = %v", o.Rows[0])
	}
	if v, _ := o.Get(0, "amount"); v != 100.0 {
		t.Error("OrderBy changed values")
	}
	if _, err := rel.OrderBy("zz"); err == nil {
		t.Error("order by unknown column must fail")
	}
	l := o.Limit(2)
	if len(l.Rows) != 2 {
		t.Errorf("limit = %d", len(l.Rows))
	}
	if n := len(o.Limit(-1).Rows); n != 6 {
		t.Errorf("limit -1 = %d rows", n)
	}
	if n := len(o.Limit(100).Rows); n != 6 {
		t.Errorf("limit beyond size = %d rows", n)
	}
	d, err := rel.Project("year")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(d.Distinct().Rows); n != 2 {
		t.Errorf("distinct years = %d", n)
	}
}

func TestRelationString(t *testing.T) {
	rel := factTable(t).Relation()
	s := rel.String()
	if !strings.Contains(s, "fact.dept") || !strings.Contains(s, "jones") {
		t.Errorf("String missing content:\n%s", s)
	}
	// Whole floats render as integers.
	if !strings.Contains(s, " 100") || strings.Contains(s, "100.0") {
		t.Errorf("float rendering:\n%s", s)
	}
	// NULL rendering.
	tab := MustNewTable("t", Schema{{Name: "v", Type: Float}})
	tab.MustInsert(nil)
	if !strings.Contains(tab.Relation().String(), "NULL") {
		t.Error("NULL must render")
	}
}

func TestTimeColumnsInRelations(t *testing.T) {
	tab := MustNewTable("t", Schema{{Name: "at", Type: Time}, {Name: "v", Type: Float}})
	tab.MustInsert(temporal.Year(2001), 1.0)
	tab.MustInsert(temporal.Year(2002), 2.0)
	f, err := tab.Relation().FilterEq("at", temporal.Year(2002))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 || f.Rows[0][1] != 2.0 {
		t.Errorf("time filter = %+v", f.Rows)
	}
	o, err := tab.Relation().OrderBy("-at")
	if err != nil {
		t.Fatal(err)
	}
	if o.Rows[0][1] != 2.0 {
		t.Error("time ordering wrong")
	}
}
