package rolap

import (
	"fmt"
)

// Table is a named, typed, row-oriented in-memory table with optional
// hash indexes.
type Table struct {
	Name string

	schema  Schema
	rows    [][]any
	indexes map[string]*hashIndex
}

type hashIndex struct {
	col     int
	buckets map[any][]int // value -> row numbers
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("rolap: table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, c := range schema {
		if c.Name == "" {
			return nil, fmt.Errorf("rolap: table %q has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("rolap: table %q: duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{Name: name, schema: schema, indexes: make(map[string]*hashIndex)}, nil
}

// MustNewTable is NewTable panicking on error, for fixtures.
func MustNewTable(name string, schema Schema) *Table {
	t, err := NewTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// Schema returns the table schema. The slice is shared.
func (t *Table) Schema() Schema { return t.schema }

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row after validating arity and types.
func (t *Table) Insert(values ...any) error {
	if len(values) != len(t.schema) {
		return fmt.Errorf("rolap: table %q: %d values for %d columns", t.Name, len(values), len(t.schema))
	}
	row := make([]any, len(values))
	for i, v := range values {
		nv, err := checkValue(t.schema[i].Type, v)
		if err != nil {
			return fmt.Errorf("rolap: table %q column %q: %w", t.Name, t.schema[i].Name, err)
		}
		row[i] = nv
	}
	rowNum := len(t.rows)
	t.rows = append(t.rows, row)
	for _, idx := range t.indexes {
		idx.buckets[row[idx.col]] = append(idx.buckets[row[idx.col]], rowNum)
	}
	return nil
}

// MustInsert is Insert panicking on error.
func (t *Table) MustInsert(values ...any) {
	if err := t.Insert(values...); err != nil {
		panic(err)
	}
}

// CreateIndex builds a hash index over the named column. Creating an
// existing index is a no-op.
func (t *Table) CreateIndex(col string) error {
	if _, ok := t.indexes[col]; ok {
		return nil
	}
	ci := t.schema.IndexOf(col)
	if ci < 0 {
		return fmt.Errorf("rolap: table %q: no column %q", t.Name, col)
	}
	idx := &hashIndex{col: ci, buckets: make(map[any][]int)}
	for rn, row := range t.rows {
		idx.buckets[row[ci]] = append(idx.buckets[row[ci]], rn)
	}
	t.indexes[col] = idx
	return nil
}

// LookupEq returns the rows whose column equals the value, using the
// index when present and scanning otherwise.
func (t *Table) LookupEq(col string, value any) ([][]any, error) {
	ci := t.schema.IndexOf(col)
	if ci < 0 {
		return nil, fmt.Errorf("rolap: table %q: no column %q", t.Name, col)
	}
	nv, err := checkValue(t.schema[ci].Type, value)
	if err != nil {
		return nil, err
	}
	if idx, ok := t.indexes[col]; ok && idx.col == ci {
		nums := idx.buckets[nv]
		out := make([][]any, len(nums))
		for i, rn := range nums {
			out[i] = t.rows[rn]
		}
		return out, nil
	}
	var out [][]any
	for _, row := range t.rows {
		if compareValues(row[ci], nv) == 0 {
			out = append(out, row)
		}
	}
	return out, nil
}

// Rows returns the table rows. The slice and rows are shared; callers
// must not mutate them.
func (t *Table) Rows() [][]any { return t.rows }

// Relation snapshots the table as a relation for algebraic processing.
// Column names are qualified with the table name ("table.col"); the
// Schema.IndexOf resolution accepts unqualified names when unambiguous.
func (t *Table) Relation() *Relation {
	cols := make(Schema, len(t.schema))
	for i, c := range t.schema {
		cols[i] = Column{Name: t.Name + "." + c.Name, Type: c.Type}
	}
	return &Relation{Cols: cols, Rows: t.rows}
}

// Truncate removes all rows, keeping schema and indexes.
func (t *Table) Truncate() {
	t.rows = nil
	for _, idx := range t.indexes {
		idx.buckets = make(map[any][]int)
	}
}
