package rolap

import "testing"

// FuzzParseSelect checks the SQL parser never panics and that parsed
// statements always carry a FROM table.
func FuzzParseSelect(f *testing.F) {
	seeds := []string{
		"SELECT * FROM fact",
		"SELECT a, SUM(b) AS t FROM fact JOIN dim ON fact.a = dim.id WHERE x > 3 AND y = 'z' GROUP BY a ORDER BY a DESC LIMIT 5",
		"SELECT COUNT(*) FROM t WHERE NOT (a = 1 OR b <= -2)",
		"select a from t where s = 'it''s'",
		"SELECT",
		"",
		"SELECT * FROM t WHERE a ! b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			return
		}
		stmt, err := ParseSelect(input)
		if err != nil {
			return
		}
		if stmt == nil || stmt.From == "" {
			t.Fatal("accepted statement without FROM")
		}
		if len(stmt.Items) == 0 {
			t.Fatal("accepted statement without select items")
		}
	})
}
