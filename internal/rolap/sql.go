package rolap

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a compact SQL SELECT dialect:
//
//	SELECT item [, item]...
//	FROM table [JOIN table ON col = col]...
//	[WHERE cond]
//	[GROUP BY col [, col]...]
//	[ORDER BY col [ASC|DESC] [, ...]]
//	[LIMIT n]
//
// item := col [AS name] | SUM|COUNT|MIN|MAX|AVG ( col | * ) [AS name]
// cond := comparisons of a column against a literal, combined with
// AND, OR, NOT and parentheses.

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []selectItem
	From    string
	Joins   []joinClause
	Where   boolExpr // nil when absent
	GroupBy []string
	OrderBy []orderItem
	Limit   int // -1 when absent
}

type selectItem struct {
	Col   string
	Agg   AggFunc
	IsAgg bool
	Alias string
}

type joinClause struct {
	Table    string
	LeftCol  string
	RightCol string
}

type orderItem struct {
	Col  string
	Desc bool
}

// boolExpr evaluates a WHERE condition against a row.
type boolExpr interface {
	eval(cols Schema, row []any) (bool, error)
}

type andExpr struct{ l, r boolExpr }
type orExpr struct{ l, r boolExpr }
type notExpr struct{ e boolExpr }

func (e andExpr) eval(cols Schema, row []any) (bool, error) {
	l, err := e.l.eval(cols, row)
	if err != nil || !l {
		return false, err
	}
	return e.r.eval(cols, row)
}

func (e orExpr) eval(cols Schema, row []any) (bool, error) {
	l, err := e.l.eval(cols, row)
	if err != nil || l {
		return l, err
	}
	return e.r.eval(cols, row)
}

func (e notExpr) eval(cols Schema, row []any) (bool, error) {
	v, err := e.e.eval(cols, row)
	return !v, err
}

type cmpExpr struct {
	col string
	op  string
	lit any // untyped literal: float64, string or bool
}

func (e cmpExpr) eval(cols Schema, row []any) (bool, error) {
	ci := cols.IndexOf(e.col)
	if ci < 0 {
		return false, fmt.Errorf("rolap: sql: no column %q", e.col)
	}
	v := row[ci]
	if v == nil {
		return false, nil // NULL compares false, SQL-style
	}
	lit := e.lit
	// Coerce the literal to the column type.
	if f, ok := lit.(float64); ok {
		switch cols[ci].Type {
		case Int:
			lit = int64(f)
		case Time:
			nv, err := checkValue(Time, int64(f))
			if err != nil {
				return false, err
			}
			lit = nv
		}
	}
	c := compareValues(v, lit)
	switch e.op {
	case "=":
		return c == 0, nil
	case "!=", "<>":
		return c != 0, nil
	case "<":
		return c < 0, nil
	case "<=":
		return c <= 0, nil
	case ">":
		return c > 0, nil
	case ">=":
		return c >= 0, nil
	}
	return false, fmt.Errorf("rolap: sql: unknown operator %q", e.op)
}

// --- lexer ---

type token struct {
	kind tokenKind
	text string
}

type tokenKind uint8

const (
	tkIdent tokenKind = iota
	tkNumber
	tkString
	tkPunct
	tkEOF
)

func lexSQL(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("rolap: sql: unterminated string")
			}
			out = append(out, token{tkString, sb.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' && numberContext(out)):
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			out = append(out, token{tkNumber, s[i:j]})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(s) && isIdentPart(s[j]) {
				j++
			}
			out = append(out, token{tkIdent, s[i:j]})
			i = j
		case strings.ContainsRune("(),*=", rune(c)):
			out = append(out, token{tkPunct, string(c)})
			i++
		case c == '<':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>') {
				out = append(out, token{tkPunct, s[i : i+2]})
				i += 2
			} else {
				out = append(out, token{tkPunct, "<"})
				i++
			}
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				out = append(out, token{tkPunct, ">="})
				i += 2
			} else {
				out = append(out, token{tkPunct, ">"})
				i++
			}
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				out = append(out, token{tkPunct, "!="})
				i += 2
			} else {
				return nil, fmt.Errorf("rolap: sql: unexpected '!'")
			}
		default:
			return nil, fmt.Errorf("rolap: sql: unexpected character %q", c)
		}
	}
	out = append(out, token{tkEOF, ""})
	return out, nil
}

// numberContext reports whether a '-' can start a negative number here
// (after an operator or '(' rather than after a value).
func numberContext(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	last := toks[len(toks)-1]
	return last.kind == tkPunct && last.text != ")"
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) kw(s string) bool {
	t := p.peek()
	if t.kind == tkIdent && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.next()
	if t.kind != tkPunct || t.text != s {
		return fmt.Errorf("rolap: sql: expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.next()
	if t.kind != tkIdent {
		return "", fmt.Errorf("rolap: sql: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

// ParseSelect parses the SELECT dialect described in the file comment.
func ParseSelect(sql string) (*SelectStmt, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("rolap: sql: expected SELECT")
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.peek().kind == tkPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if !p.kw("FROM") {
		return nil, fmt.Errorf("rolap: sql: expected FROM")
	}
	if stmt.From, err = p.expectIdent(); err != nil {
		return nil, err
	}
	for p.kw("JOIN") {
		var jc joinClause
		if jc.Table, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if !p.kw("ON") {
			return nil, fmt.Errorf("rolap: sql: expected ON")
		}
		if jc.LeftCol, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if err = p.expectPunct("="); err != nil {
			return nil, err
		}
		if jc.RightCol, err = p.expectIdent(); err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, jc)
	}
	if p.kw("WHERE") {
		if stmt.Where, err = p.parseOr(); err != nil {
			return nil, err
		}
	}
	if p.kw("GROUP") {
		if !p.kw("BY") {
			return nil, fmt.Errorf("rolap: sql: expected BY after GROUP")
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if p.peek().kind == tkPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.kw("ORDER") {
		if !p.kw("BY") {
			return nil, fmt.Errorf("rolap: sql: expected BY after ORDER")
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			it := orderItem{Col: col}
			if p.kw("DESC") {
				it.Desc = true
			} else {
				p.kw("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, it)
			if p.peek().kind == tkPunct && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if p.kw("LIMIT") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("rolap: sql: expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, fmt.Errorf("rolap: sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	if p.peek().kind != tkEOF {
		return nil, fmt.Errorf("rolap: sql: trailing input at %q", p.peek().text)
	}
	return stmt, nil
}

var aggNames = map[string]AggFunc{
	"SUM": AggSum, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

func (p *parser) parseSelectItem() (selectItem, error) {
	t := p.next()
	if t.kind != tkIdent && !(t.kind == tkPunct && t.text == "*") {
		return selectItem{}, fmt.Errorf("rolap: sql: bad select item %q", t.text)
	}
	item := selectItem{Col: t.text}
	if fn, isAgg := aggNames[strings.ToUpper(t.text)]; isAgg &&
		p.peek().kind == tkPunct && p.peek().text == "(" {
		p.next()
		inner := p.next()
		if inner.kind != tkIdent && !(inner.kind == tkPunct && inner.text == "*") {
			return selectItem{}, fmt.Errorf("rolap: sql: bad aggregate argument %q", inner.text)
		}
		if err := p.expectPunct(")"); err != nil {
			return selectItem{}, err
		}
		item = selectItem{Col: inner.text, Agg: fn, IsAgg: true}
	}
	if p.kw("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return selectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) parseOr() (boolExpr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = orExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (boolExpr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = andExpr{l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (boolExpr, error) {
	if p.kw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (boolExpr, error) {
	if p.peek().kind == tkPunct && p.peek().text == "(" {
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	opTok := p.next()
	if opTok.kind != tkPunct {
		return nil, fmt.Errorf("rolap: sql: expected comparison operator, got %q", opTok.text)
	}
	switch opTok.text {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("rolap: sql: bad operator %q", opTok.text)
	}
	lit := p.next()
	var v any
	switch lit.kind {
	case tkNumber:
		f, err := strconv.ParseFloat(lit.text, 64)
		if err != nil {
			return nil, fmt.Errorf("rolap: sql: bad number %q", lit.text)
		}
		v = f
	case tkString:
		v = lit.text
	case tkIdent:
		switch strings.ToUpper(lit.text) {
		case "TRUE":
			v = true
		case "FALSE":
			v = false
		default:
			return nil, fmt.Errorf("rolap: sql: expected literal, got %q", lit.text)
		}
	default:
		return nil, fmt.Errorf("rolap: sql: expected literal, got %q", lit.text)
	}
	return cmpExpr{col: col, op: opTok.text, lit: v}, nil
}

// Execute runs the statement against the database.
func (s *SelectStmt) Execute(db *Database) (*Relation, error) {
	base := db.Table(s.From)
	if base == nil {
		return nil, fmt.Errorf("rolap: sql: no table %q", s.From)
	}
	rel := base.Relation()
	var err error
	for _, jc := range s.Joins {
		jt := db.Table(jc.Table)
		if jt == nil {
			return nil, fmt.Errorf("rolap: sql: no table %q", jc.Table)
		}
		rel, err = rel.Join(jt.Relation(), jc.LeftCol, jc.RightCol)
		if err != nil {
			return nil, err
		}
	}
	if s.Where != nil {
		var evalErr error
		rel = rel.Filter(func(row []any) bool {
			ok, err := s.Where.eval(rel.Cols, row)
			if err != nil && evalErr == nil {
				evalErr = err
			}
			return ok
		})
		if evalErr != nil {
			return nil, evalErr
		}
	}
	hasAgg := false
	for _, it := range s.Items {
		if it.IsAgg {
			hasAgg = true
		}
	}
	if hasAgg || len(s.GroupBy) > 0 {
		var aggs []AggSpec
		for _, it := range s.Items {
			if !it.IsAgg {
				continue // must be a group key; checked below
			}
			aggs = append(aggs, AggSpec{Fn: it.Agg, Col: it.Col, As: it.Alias})
		}
		rel, err = rel.GroupBy(s.GroupBy, aggs)
		if err != nil {
			return nil, err
		}
		// Reorder/rename columns to the select list.
		var proj []string
		for _, it := range s.Items {
			switch {
			case it.IsAgg:
				name := it.Alias
				if name == "" {
					name = fmt.Sprintf("%s(%s)", it.Agg, it.Col)
				}
				proj = append(proj, name)
			case it.Alias != "":
				proj = append(proj, it.Col+" AS "+it.Alias)
			default:
				proj = append(proj, it.Col)
			}
		}
		rel, err = rel.Project(proj...)
		if err != nil {
			return nil, err
		}
		if rel, err = applyOrder(rel, s.OrderBy); err != nil {
			return nil, err
		}
	} else {
		// Without aggregation, sort before projecting so ORDER BY may
		// reference columns absent from the select list.
		if rel, err = applyOrder(rel, s.OrderBy); err != nil {
			return nil, err
		}
		if !(len(s.Items) == 1 && s.Items[0].Col == "*") {
			var proj []string
			for _, it := range s.Items {
				if it.Alias != "" {
					proj = append(proj, it.Col+" AS "+it.Alias)
				} else {
					proj = append(proj, it.Col)
				}
			}
			rel, err = rel.Project(proj...)
			if err != nil {
				return nil, err
			}
		}
	}
	if s.Limit >= 0 {
		rel = rel.Limit(s.Limit)
	}
	return rel, nil
}

func applyOrder(rel *Relation, items []orderItem) (*Relation, error) {
	if len(items) == 0 {
		return rel, nil
	}
	cols := make([]string, len(items))
	for i, o := range items {
		if o.Desc {
			cols[i] = "-" + o.Col
		} else {
			cols[i] = o.Col
		}
	}
	return rel.OrderBy(cols...)
}
