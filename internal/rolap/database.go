package rolap

import (
	"fmt"
	"sort"
)

// Database is a named collection of tables.
type Database struct {
	Name   string
	tables map[string]*Table
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// CreateTable creates and registers a table.
func (db *Database) CreateTable(name string, schema Schema) (*Table, error) {
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("rolap: table %q already exists", name)
	}
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// DropTable removes the named table.
func (db *Database) DropTable(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("rolap: no table %q", name)
	}
	delete(db.tables, name)
	return nil
}

// TableNames lists the tables in lexical order.
func (db *Database) TableNames() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a SQL SELECT against the database.
func (db *Database) Query(sql string) (*Relation, error) {
	stmt, err := ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return stmt.Execute(db)
}
