package rolap

import (
	"testing"

	"mvolap/internal/temporal"
)

func deptTable(t testing.TB) *Table {
	t.Helper()
	tab, err := NewTable("dept", Schema{
		{Name: "id", Type: Text},
		{Name: "name", Type: Text},
		{Name: "division", Type: Text},
		{Name: "from", Type: Time},
		{Name: "to", Type: Time},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]any{
		{"jones", "Dpt.Jones", "Sales", temporal.Year(2001), temporal.YM(2002, 12)},
		{"smith", "Dpt.Smith", "Sales", temporal.Year(2001), temporal.YM(2001, 12)},
		{"smith2", "Dpt.Smith", "R&D", temporal.Year(2002), temporal.Now},
		{"brian", "Dpt.Brian", "R&D", temporal.Year(2001), temporal.Now},
	}
	for _, r := range rows {
		if err := tab.Insert(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("x", nil); err == nil {
		t.Error("empty schema must be rejected")
	}
	if _, err := NewTable("x", Schema{{Name: "", Type: Int}}); err == nil {
		t.Error("unnamed column must be rejected")
	}
	if _, err := NewTable("x", Schema{{Name: "a", Type: Int}, {Name: "a", Type: Int}}); err == nil {
		t.Error("duplicate column must be rejected")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tab := MustNewTable("t", Schema{
		{Name: "i", Type: Int}, {Name: "f", Type: Float},
		{Name: "s", Type: Text}, {Name: "tm", Type: Time}, {Name: "b", Type: Bool},
	})
	if err := tab.Insert(1, 2.5, "x", temporal.Year(2001), true); err != nil {
		t.Fatalf("valid insert rejected: %v", err)
	}
	// Widenings: int into float, int64 into int, int64 into time.
	if err := tab.Insert(int64(2), 3, "y", int64(100), false); err != nil {
		t.Fatalf("widened insert rejected: %v", err)
	}
	// NULLs allowed.
	if err := tab.Insert(nil, nil, nil, nil, nil); err != nil {
		t.Fatalf("NULL insert rejected: %v", err)
	}
	if err := tab.Insert(1, 2.5, "x", temporal.Year(2001)); err == nil {
		t.Error("arity mismatch must fail")
	}
	if err := tab.Insert("no", 2.5, "x", temporal.Year(2001), true); err == nil {
		t.Error("type mismatch must fail")
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestLookupEqWithAndWithoutIndex(t *testing.T) {
	tab := deptTable(t)
	// Without index.
	rows, err := tab.LookupEq("division", "R&D")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("scan lookup = %d rows", len(rows))
	}
	// With index.
	if err := tab.CreateIndex("division"); err != nil {
		t.Fatal(err)
	}
	rows2, err := tab.LookupEq("division", "R&D")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != len(rows) {
		t.Errorf("indexed lookup = %d rows, scan = %d", len(rows2), len(rows))
	}
	// Index stays current across inserts.
	tab.MustInsert("new", "Dpt.New", "R&D", temporal.Year(2003), temporal.Now)
	rows3, _ := tab.LookupEq("division", "R&D")
	if len(rows3) != 3 {
		t.Errorf("post-insert indexed lookup = %d rows", len(rows3))
	}
	// Re-creating is a no-op.
	if err := tab.CreateIndex("division"); err != nil {
		t.Error(err)
	}
	if err := tab.CreateIndex("zz"); err == nil {
		t.Error("index on unknown column must fail")
	}
	if _, err := tab.LookupEq("zz", 1); err == nil {
		t.Error("lookup on unknown column must fail")
	}
	if _, err := tab.LookupEq("division", 42); err == nil {
		t.Error("lookup with wrong type must fail")
	}
}

func TestTruncate(t *testing.T) {
	tab := deptTable(t)
	if err := tab.CreateIndex("division"); err != nil {
		t.Fatal(err)
	}
	tab.Truncate()
	if tab.Len() != 0 {
		t.Error("truncate must remove rows")
	}
	rows, _ := tab.LookupEq("division", "R&D")
	if len(rows) != 0 {
		t.Error("index must be cleared")
	}
	tab.MustInsert("a", "b", "R&D", temporal.Year(2001), temporal.Now)
	rows, _ = tab.LookupEq("division", "R&D")
	if len(rows) != 1 {
		t.Error("index must keep working after truncate")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{{Name: "dept.id", Type: Text}, {Name: "dept.name", Type: Text}, {Name: "fact.id", Type: Text}}
	if s.IndexOf("dept.name") != 1 {
		t.Error("qualified lookup failed")
	}
	if s.IndexOf("name") != 1 {
		t.Error("unambiguous unqualified lookup failed")
	}
	if s.IndexOf("id") != -1 {
		t.Error("ambiguous unqualified lookup must fail")
	}
	if s.IndexOf("zz") != -1 {
		t.Error("unknown column must be -1")
	}
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{Int: "INT", Float: "FLOAT", Text: "TEXT", Time: "TIME", Bool: "BOOL"} {
		if ct.String() != want {
			t.Errorf("String(%d) = %q", ct, ct.String())
		}
	}
	if ColType(9).String() == "" {
		t.Error("out-of-range ColType String")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(1), int64(2), -1},
		{int64(2), int64(2), 0},
		{3.5, 2.5, 1},
		{"a", "b", -1},
		{temporal.Year(2001), temporal.Year(2002), -1},
		{false, true, -1},
		{true, true, 0},
		{nil, int64(1), -1},
		{int64(1), nil, 1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := compareValues(c.a, c.b); got != c.want {
			t.Errorf("compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestTableAccessors(t *testing.T) {
	tab := deptTable(t)
	if len(tab.Schema()) != 5 {
		t.Errorf("schema = %v", tab.Schema())
	}
	if len(tab.Rows()) != tab.Len() {
		t.Error("Rows length mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInsert must panic on bad row")
		}
	}()
	tab.MustInsert("too", "few")
}

func TestMustNewTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewTable must panic on bad schema")
		}
	}()
	MustNewTable("x", nil)
}
