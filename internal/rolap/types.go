// Package rolap is the relational substrate of the prototype: a small
// in-memory relational engine playing the role that Microsoft SQL
// Server 2000 played for the paper's prototype (§5.1). It provides
// typed tables, hash indexes, a relational algebra (filter, project,
// hash join, group-by, order-by) and a compact SQL SELECT dialect.
//
// The temporal and multiversion data warehouses (package warehouse) lay
// their star, snowflake and parent-child schemas out on these tables.
package rolap

import (
	"fmt"

	"mvolap/internal/temporal"
)

// ColType is the type of a column.
type ColType uint8

// Supported column types.
const (
	Int ColType = iota
	Float
	Text
	Time // a temporal.Instant
	Bool
)

// String names the type.
func (c ColType) String() string {
	switch c {
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case Text:
		return "TEXT"
	case Time:
		return "TIME"
	case Bool:
		return "BOOL"
	}
	return fmt.Sprintf("ColType(%d)", uint8(c))
}

// Column describes one column of a table or derived relation.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf returns the position of the named column, or -1. Qualified
// names ("t.col") match their unqualified suffix when unambiguous.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	// Unqualified match against qualified column names.
	found := -1
	for i, c := range s {
		if suffixAfterDot(c.Name) == name {
			if found >= 0 {
				return -1 // ambiguous
			}
			found = i
		}
	}
	return found
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// checkValue validates that v is acceptable for the column type and
// normalizes it (ints may be given as int or int64; times as
// temporal.Instant).
func checkValue(t ColType, v any) (any, error) {
	if v == nil {
		return nil, nil // NULL is allowed in every column
	}
	switch t {
	case Int:
		switch x := v.(type) {
		case int:
			return int64(x), nil
		case int64:
			return x, nil
		}
	case Float:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		}
	case Text:
		if x, ok := v.(string); ok {
			return x, nil
		}
	case Time:
		switch x := v.(type) {
		case temporal.Instant:
			return x, nil
		case int64:
			return temporal.Instant(x), nil
		}
	case Bool:
		if x, ok := v.(bool); ok {
			return x, nil
		}
	}
	return nil, fmt.Errorf("rolap: value %v (%T) not valid for %s column", v, v, t)
}

// compareValues orders two normalized values of the same column type.
// NULL sorts first. It returns -1, 0 or 1.
func compareValues(a, b any) int {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0
		case a == nil:
			return -1
		default:
			return 1
		}
	}
	switch x := a.(type) {
	case int64:
		y := b.(int64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := b.(float64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		y := b.(string)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case temporal.Instant:
		y := b.(temporal.Instant)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case bool:
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	}
	return 0
}
