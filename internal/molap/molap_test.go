package molap

import (
	"math"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
	"mvolap/internal/workload"
)

func caseStore(t *testing.T) *Store {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestBuildAndCell(t *testing.T) {
	st := caseStore(t)
	s := st.schema
	g, err := st.Grid(core.TCM())
	if err != nil {
		t.Fatal(err)
	}
	v, cf, ok := g.Cell(core.Coords{casestudy.Smith}, temporal.Year(2002), 0)
	if !ok || v != 100 || cf != core.SourceData {
		t.Errorf("Smith@2002 = %v (%v) ok=%v", v, cf, ok)
	}
	// Empty cell.
	if _, _, ok := g.Cell(core.Coords{casestudy.Smith}, temporal.YM(2002, 6), 0); ok {
		t.Error("mid-year cell must be empty")
	}
	// Out of grid.
	if _, _, ok := g.Cell(core.Coords{casestudy.Smith}, temporal.Year(1990), 0); ok {
		t.Error("out-of-span cell must be empty")
	}
	if _, _, ok := g.Cell(core.Coords{"zz"}, temporal.Year(2002), 0); ok {
		t.Error("unknown row must be empty")
	}
	// V2 mode: the merged Jones 2003 cell.
	v2 := s.VersionAt(temporal.Year(2002))
	g2, err := st.Grid(core.InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	v, cf, ok = g2.Cell(core.Coords{casestudy.Jones}, temporal.Year(2003), 0)
	if !ok || v != 200 || cf != core.ExactMapping {
		t.Errorf("V2 Jones@2003 = %v (%v)", v, cf)
	}
	if _, err := st.Grid(core.Mode{Kind: core.VersionKind}); err == nil {
		t.Error("unknown mode must fail")
	}
}

func TestRangeSum(t *testing.T) {
	st := caseStore(t)
	g, err := st.Grid(core.TCM())
	if err != nil {
		t.Fatal(err)
	}
	// Smith over all three years: 50 + 100 + 110.
	sum, ok := g.RangeSum(core.Coords{casestudy.Smith}, temporal.Year(2001), temporal.Year(2003), 0)
	if !ok || sum != 260 {
		t.Errorf("Smith total = %v", sum)
	}
	// Clamped range.
	sum, ok = g.RangeSum(core.Coords{casestudy.Smith}, temporal.Year(1990), temporal.Year(2050), 0)
	if !ok || sum != 260 {
		t.Errorf("clamped total = %v", sum)
	}
	// Sub-range.
	sum, _ = g.RangeSum(core.Coords{casestudy.Smith}, temporal.Year(2002), temporal.Year(2002), 0)
	if sum != 100 {
		t.Errorf("2002 only = %v", sum)
	}
	// Inverted range is zero.
	sum, ok = g.RangeSum(core.Coords{casestudy.Smith}, temporal.Year(2003), temporal.Year(2001), 0)
	if !ok || sum != 0 {
		t.Errorf("inverted range = %v", sum)
	}
	if _, ok := g.RangeSum(core.Coords{"zz"}, temporal.Year(2001), temporal.Year(2003), 0); ok {
		t.Error("unknown row must report not-ok")
	}
}

// TestRangeSumMatchesQueryEngine: the O(1) prefix sums agree with the
// query engine on every mode of a synthetic workload.
func TestRangeSumMatchesQueryEngine(t *testing.T) {
	w := workload.MustGenerate(workload.Config{Seed: 11, Departments: 10, Years: 5, EvolutionsPerYear: 2})
	s := w.Schema
	st, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range s.Modes() {
		g, err := st.Grid(mode)
		if err != nil {
			t.Fatal(err)
		}
		// Grand totals must match a GrainAll query.
		res, err := s.Execute(core.Query{Grain: core.GrainAll, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if len(res.Rows) > 0 && !math.IsNaN(res.Rows[0].Values[0]) {
			want = res.Rows[0].Values[0]
		}
		if got := g.TotalSum(0); math.Abs(got-want) > 1e-6 {
			t.Errorf("mode %s: molap total %v, engine total %v", mode, got, want)
		}
	}
}

func TestDensityAndMemory(t *testing.T) {
	st := caseStore(t)
	g, _ := st.Grid(core.TCM())
	if g.Rows() != 5 {
		t.Errorf("rows = %d, want 5 leaf versions with data", g.Rows())
	}
	if g.MemoryCells() != g.Rows()*25 { // 01/2001..01/2003 = 25 months
		t.Errorf("cells = %d", g.MemoryCells())
	}
	d := g.Density(0)
	if d <= 0 || d >= 1 {
		t.Errorf("density = %v; yearly facts on a monthly grid must be sparse", d)
	}
	if len(g.Coords(0)) != 1 {
		t.Errorf("coords arity = %d", len(g.Coords(0)))
	}
}

func TestBuildErrors(t *testing.T) {
	s := core.NewSchema("empty", core.Measure{Name: "m", Agg: core.Sum})
	if _, err := Build(s); err == nil {
		t.Error("schema without facts must fail")
	}
}
