// Package molap is a dense multidimensional array store — the MOLAP
// alternative of §4.2 ("it can therefore be implemented either on
// ROLAP, MOLAP or HOLAP servers"). Each temporal mode of presentation
// materializes into a dense array indexed by (leaf member, time) with
// one value plane per measure and a confidence plane, plus prefix sums
// over the time axis so that range aggregations over time run in O(1)
// per cell row instead of scanning facts.
//
// The store trades memory (dense arrays over the full member × time
// grid, mirroring the §5.1 duplication discussion) for constant-time
// cell access — the classic MOLAP trade-off.
package molap

import (
	"fmt"
	"math"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// Store holds the dense arrays of one schema, one grid per temporal
// mode of presentation.
type Store struct {
	schema *core.Schema
	grids  map[string]*Grid
}

// Grid is the dense array of one mode: rows are the leaf member
// versions of the mode's structure (all dimensions flattened into one
// composite axis in coordinate order), columns are instants.
type Grid struct {
	Mode core.Mode
	// Times spans the fact instants [min, max].
	Times temporal.Interval
	// rowIndex maps a composite coordinate key to a row.
	rowIndex map[string]int
	// rowCoords remembers each row's coordinates.
	rowCoords []core.Coords
	// values[measure][row][col]; NaN marks empty or unknown cells.
	values [][][]float64
	// cfs[measure][row][col]; meaningful only where a value exists.
	cfs [][][]core.Confidence
	// prefix[measure][row][col] is the prefix sum of non-NaN values up
	// to and including col, for O(1) time-range sums of Sum measures.
	prefix [][][]float64
	// width is the number of time columns.
	width int
}

// Build materializes the dense store for every mode of the schema.
func Build(s *core.Schema) (*Store, error) {
	st := &Store{schema: s, grids: make(map[string]*Grid)}
	span := s.Facts().TimeSpan()
	if span.Empty() {
		return nil, fmt.Errorf("molap: schema has no facts")
	}
	// Materialize all modes concurrently before the dense grids are
	// filled; the per-mode Mode calls below hit the cache.
	if _, err := s.MultiVersion().All(); err != nil {
		return nil, err
	}
	for _, mode := range s.Modes() {
		mt, err := s.MultiVersion().Mode(mode)
		if err != nil {
			return nil, err
		}
		g := &Grid{
			Mode:     mode,
			Times:    span,
			rowIndex: make(map[string]int),
			width:    int(span.End-span.Start) + 1,
		}
		measures := len(s.Measures())
		addRow := func(coords core.Coords) int {
			key := coords.Key()
			if i, ok := g.rowIndex[key]; ok {
				return i
			}
			i := len(g.rowCoords)
			g.rowIndex[key] = i
			g.rowCoords = append(g.rowCoords, coords.Clone())
			for k := 0; k < measures; k++ {
				row := make([]float64, g.width)
				for c := range row {
					row[c] = math.NaN()
				}
				g.values[k] = append(g.values[k], row)
				g.cfs[k] = append(g.cfs[k], make([]core.Confidence, g.width))
			}
			return i
		}
		g.values = make([][][]float64, measures)
		g.cfs = make([][][]core.Confidence, measures)
		for _, f := range mt.Facts() {
			row := addRow(f.Coords)
			col := int(f.Time - span.Start)
			if col < 0 || col >= g.width {
				continue
			}
			for k := 0; k < measures; k++ {
				g.values[k][row][col] = f.Values[k]
				g.cfs[k][row][col] = f.CFs[k]
			}
		}
		g.buildPrefix(measures)
		st.grids[mode.String()] = g
	}
	return st, nil
}

func (g *Grid) buildPrefix(measures int) {
	g.prefix = make([][][]float64, measures)
	for k := 0; k < measures; k++ {
		g.prefix[k] = make([][]float64, len(g.rowCoords))
		for r := range g.rowCoords {
			ps := make([]float64, g.width)
			run := 0.0
			for c := 0; c < g.width; c++ {
				if v := g.values[k][r][c]; !math.IsNaN(v) {
					run += v
				}
				ps[c] = run
			}
			g.prefix[k][r] = ps
		}
	}
}

// Grid returns the dense grid of a mode.
func (st *Store) Grid(mode core.Mode) (*Grid, error) {
	g, ok := st.grids[mode.String()]
	if !ok {
		return nil, fmt.Errorf("molap: mode %s not materialized", mode)
	}
	return g, nil
}

// Rows reports the number of composite member rows.
func (g *Grid) Rows() int { return len(g.rowCoords) }

// Coords returns the coordinates of row r.
func (g *Grid) Coords(r int) core.Coords { return g.rowCoords[r] }

// Cell returns the value and confidence at (coords, t); ok is false for
// empty cells.
func (g *Grid) Cell(coords core.Coords, t temporal.Instant, measure int) (float64, core.Confidence, bool) {
	r, ok := g.rowIndex[coords.Key()]
	if !ok || !g.Times.Contains(t) {
		return 0, core.UnknownMapping, false
	}
	c := int(t - g.Times.Start)
	v := g.values[measure][r][c]
	if math.IsNaN(v) {
		return 0, core.UnknownMapping, false
	}
	return v, g.cfs[measure][r][c], true
}

// RangeSum returns the sum of the measure for the row over the closed
// time range, in O(1) via prefix sums. Instants outside the grid clamp
// to its bounds.
func (g *Grid) RangeSum(coords core.Coords, from, to temporal.Instant, measure int) (float64, bool) {
	r, ok := g.rowIndex[coords.Key()]
	if !ok {
		return 0, false
	}
	lo := int(temporal.Max(from, g.Times.Start) - g.Times.Start)
	hi := int(temporal.Min(to, g.Times.End) - g.Times.Start)
	if hi < lo {
		return 0, true
	}
	ps := g.prefix[measure][r]
	sum := ps[hi]
	if lo > 0 {
		sum -= ps[lo-1]
	}
	return sum, true
}

// TotalSum returns the grand total of the measure over the whole grid.
func (g *Grid) TotalSum(measure int) float64 {
	total := 0.0
	for r := range g.rowCoords {
		ps := g.prefix[measure][r]
		total += ps[len(ps)-1]
	}
	return total
}

// MemoryCells reports the allocated cell count (rows × width), the
// MOLAP density cost.
func (g *Grid) MemoryCells() int { return len(g.rowCoords) * g.width }

// Density is the fraction of allocated cells holding a value.
func (g *Grid) Density(measure int) float64 {
	if g.MemoryCells() == 0 {
		return 0
	}
	n := 0
	for r := range g.rowCoords {
		for c := 0; c < g.width; c++ {
			if !math.IsNaN(g.values[measure][r][c]) {
				n++
			}
		}
	}
	return float64(n) / float64(g.MemoryCells())
}
