package warehouse

import (
	"fmt"
	"sort"
	"strings"

	"mvolap/internal/core"
)

// This file implements the §1.1 "galaxy schema, or fact constellation"
// — a collection of stars (fact tables with their own measures) sharing
// conformed temporal dimensions — and the drill-across operation that
// joins their answers.

// Constellation is a set of star schemas whose shared dimensions must
// be structurally identical (conformed), so query results can be
// aligned across stars.
type Constellation struct {
	Name  string
	stars []*core.Schema
}

// NewConstellation creates an empty constellation.
func NewConstellation(name string) *Constellation { return &Constellation{Name: name} }

// AddStar registers a star schema. Dimensions whose ID already appears
// in an earlier star must be conformed: same member versions (ID,
// member, level, validity) and same relationships.
func (c *Constellation) AddStar(s *core.Schema) error {
	for _, prev := range c.stars {
		if prev.Name == s.Name {
			return fmt.Errorf("warehouse: constellation %s: duplicate star %q", c.Name, s.Name)
		}
		for _, d := range s.Dimensions() {
			pd := prev.Dimension(d.ID)
			if pd == nil {
				continue
			}
			if err := conformed(pd, d); err != nil {
				return fmt.Errorf("warehouse: constellation %s: dimension %s not conformed between %q and %q: %w",
					c.Name, d.ID, prev.Name, s.Name, err)
			}
		}
	}
	c.stars = append(c.stars, s)
	return nil
}

// Stars returns the registered star schemas.
func (c *Constellation) Stars() []*core.Schema { return c.stars }

// Star returns the star with the given schema name, or nil.
func (c *Constellation) Star(name string) *core.Schema {
	for _, s := range c.stars {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// conformed checks structural equality of two dimensions.
func conformed(a, b *core.Dimension) error {
	av, bv := a.Versions(), b.Versions()
	if len(av) != len(bv) {
		return fmt.Errorf("%d vs %d member versions", len(av), len(bv))
	}
	bByID := make(map[core.MVID]*core.MemberVersion, len(bv))
	for _, mv := range bv {
		bByID[mv.ID] = mv
	}
	for _, mv := range av {
		other := bByID[mv.ID]
		if other == nil {
			return fmt.Errorf("member version %q missing", mv.ID)
		}
		if mv.Member != other.Member || mv.Level != other.Level || !mv.Valid.Equal(other.Valid) {
			return fmt.Errorf("member version %q differs", mv.ID)
		}
	}
	ar, br := a.Relationships(), b.Relationships()
	if len(ar) != len(br) {
		return fmt.Errorf("%d vs %d relationships", len(ar), len(br))
	}
	key := func(r core.TemporalRelationship) string {
		return fmt.Sprintf("%s>%s@%s", r.From, r.To, r.Valid)
	}
	seen := make(map[string]bool, len(br))
	for _, r := range br {
		seen[key(r)] = true
	}
	for _, r := range ar {
		if !seen[key(r)] {
			return fmt.Errorf("relationship %s missing", key(r))
		}
	}
	return nil
}

// DrillAcrossRow is one aligned row of a drill-across result: the
// shared grouping, plus one value/confidence per (star, measure)
// column.
type DrillAcrossRow struct {
	TimeKey string
	Groups  []string
	// Values and CFs align with DrillAcrossResult.Columns; missing
	// cells (a star with no data for the group) hold nil.
	Values []*float64
	CFs    []core.Confidence
}

// DrillAcrossResult is the aligned multi-star result.
type DrillAcrossResult struct {
	// Columns name the value columns as "star.measure".
	Columns []string
	Rows    []DrillAcrossRow
	Mode    string
}

// DrillAcross runs the query shape (group-by, grain, range, filters)
// against every star and aligns the results on (time bucket, groups) —
// the classical drill-across over a fact constellation. The query's
// Measures field is ignored: each star contributes all its measures.
// The mode is resolved per star by the selector (structure versions are
// per star even when dimensions are conformed).
func (c *Constellation) DrillAcross(q core.Query, mode func(*core.Schema) core.Mode) (*DrillAcrossResult, error) {
	if len(c.stars) == 0 {
		return nil, fmt.Errorf("warehouse: constellation %s has no stars", c.Name)
	}
	type cell struct {
		v  float64
		cf core.Confidence
	}
	type rowState struct {
		timeKey string
		groups  []string
		cells   map[string]cell
	}
	rows := make(map[string]*rowState)
	var order []string
	out := &DrillAcrossResult{}
	for _, star := range c.stars {
		sq := q
		sq.Measures = nil
		sq.Mode = mode(star)
		if out.Mode == "" {
			out.Mode = sq.Mode.String()
		}
		res, err := star.Execute(sq)
		if err != nil {
			return nil, fmt.Errorf("warehouse: drill-across star %q: %w", star.Name, err)
		}
		for _, m := range res.MeasureNames {
			out.Columns = append(out.Columns, star.Name+"."+m)
		}
		for _, r := range res.Rows {
			key := r.TimeKey + "\x1f" + strings.Join(r.Groups, "\x1f")
			st, ok := rows[key]
			if !ok {
				st = &rowState{timeKey: r.TimeKey, groups: r.Groups, cells: make(map[string]cell)}
				rows[key] = st
				order = append(order, key)
			}
			for i, m := range res.MeasureNames {
				st.cells[star.Name+"."+m] = cell{v: r.Values[i], cf: r.CFs[i]}
			}
		}
	}
	sort.Strings(order)
	for _, key := range order {
		st := rows[key]
		row := DrillAcrossRow{TimeKey: st.timeKey, Groups: st.groups}
		for _, col := range out.Columns {
			if cl, ok := st.cells[col]; ok {
				v := cl.v
				row.Values = append(row.Values, &v)
				row.CFs = append(row.CFs, cl.cf)
			} else {
				row.Values = append(row.Values, nil)
				row.CFs = append(row.CFs, core.UnknownMapping)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
