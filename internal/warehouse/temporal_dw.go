// Package warehouse implements the physical architecture of §5.1 of
// Body et al. (ICDE 2003), which divides the system into three parts:
//
//   - a Temporal Data Warehouse holding the temporal multidimensional
//     schema (temporally consistent data) and its metadata, including
//     the mapping relations (the paper's Table 12);
//   - a MultiVersion Data Warehouse in which the temporal-mode
//     dimension has been materialized and the multiversion fact table
//     inferred from the temporally consistent fact table and the
//     mapping relationships;
//   - an OLAP cube built from the MultiVersion Data Warehouse (package
//     cube).
//
// The prototype "duplicate[s] the values in all versions", which the
// paper notes "implies a high level of useless redundancies"; this
// package offers both that Full policy and the suggested improvement of
// storing only the differences between versions (Delta), with
// redundancy accounting so the trade-off can be measured.
package warehouse

import (
	"strings"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/logical"
	"mvolap/internal/metadata"
	"mvolap/internal/rolap"
)

// TemporalDW is the first tier: the temporal multidimensional schema
// laid out relationally, with its metadata tables.
type TemporalDW struct {
	// DB holds the relational tables:
	//   dim_<id>_pc        parent-child dimension tables
	//   fact               the temporally consistent fact table
	//   meta_mappings      the Table-12 mapping relations
	//   meta_versions      member-version metadata
	//   meta_evolution     the evolution log
	DB     *rolap.Database
	schema *core.Schema
}

// Schema returns the conceptual schema the warehouse was built from.
func (dw *TemporalDW) Schema() *core.Schema { return dw.schema }

// BuildTemporal lays the schema out as a temporal data warehouse. The
// optional evolution log is stored as metadata.
func BuildTemporal(s *core.Schema, log []evolution.LogEntry) (*TemporalDW, error) {
	db := rolap.NewDatabase("temporal_dw")
	if _, err := logical.BuildDimensionTables(s, db, logical.ParentChild); err != nil {
		return nil, err
	}

	// The temporally consistent fact table: one MVID column per
	// dimension, the instant, and the measures.
	factSchema := rolap.Schema{}
	for _, d := range s.Dimensions() {
		factSchema = append(factSchema, rolap.Column{Name: "d_" + string(d.ID), Type: rolap.Text})
	}
	factSchema = append(factSchema, rolap.Column{Name: "t", Type: rolap.Time})
	for _, m := range s.Measures() {
		factSchema = append(factSchema, rolap.Column{Name: m.Name, Type: rolap.Float})
	}
	fact, err := db.CreateTable("fact", factSchema)
	if err != nil {
		return nil, err
	}
	for _, f := range s.Facts().Facts() {
		row := make([]any, 0, len(factSchema))
		for _, id := range f.Coords {
			row = append(row, string(id))
		}
		row = append(row, f.Time)
		for _, v := range f.Values {
			row = append(row, v)
		}
		if err := fact.Insert(row...); err != nil {
			return nil, err
		}
	}

	// Metadata: the mapping relations of Table 12.
	nMeasures := len(s.Measures())
	mapSchema := rolap.Schema{
		{Name: "from_name", Type: rolap.Text},
		{Name: "to_name", Type: rolap.Text},
	}
	for _, m := range s.Measures() {
		mapSchema = append(mapSchema, rolap.Column{Name: "k_" + m.Name, Type: rolap.Text})
	}
	for _, m := range s.Measures() {
		mapSchema = append(mapSchema, rolap.Column{Name: "kinv_" + m.Name, Type: rolap.Text})
	}
	mapSchema = append(mapSchema,
		rolap.Column{Name: "confidence", Type: rolap.Int},
		rolap.Column{Name: "confidence_inv", Type: rolap.Int})
	mm, err := db.CreateTable("meta_mappings", mapSchema)
	if err != nil {
		return nil, err
	}
	for _, r := range metadata.MappingTable(s) {
		row := []any{r.From, r.To}
		for i := 0; i < nMeasures; i++ {
			row = append(row, r.K[i])
		}
		for i := 0; i < nMeasures; i++ {
			row = append(row, r.KInv[i])
		}
		row = append(row, r.Conf, r.ConfInv)
		if err := mm.Insert(row...); err != nil {
			return nil, err
		}
	}

	// Metadata: member versions.
	mv, err := db.CreateTable("meta_versions", rolap.Schema{
		{Name: "mv_id", Type: rolap.Text},
		{Name: "member", Type: rolap.Text},
		{Name: "name", Type: rolap.Text},
		{Name: "level", Type: rolap.Text},
		{Name: "dim", Type: rolap.Text},
		{Name: "valid_from", Type: rolap.Time},
		{Name: "valid_to", Type: rolap.Time},
		{Name: "is_leaf", Type: rolap.Bool},
	})
	if err != nil {
		return nil, err
	}
	for _, d := range s.Dimensions() {
		for _, v := range d.Versions() {
			if err := mv.Insert(string(v.ID), v.Member, v.DisplayName(), v.Level,
				string(d.ID), v.Valid.Start, v.Valid.End, d.IsLeafVersion(v.ID)); err != nil {
				return nil, err
			}
		}
	}

	// Metadata: the evolution log (the "short textual description of
	// the transformations").
	ev, err := db.CreateTable("meta_evolution", rolap.Schema{
		{Name: "seq", Type: rolap.Int},
		{Name: "description", Type: rolap.Text},
		{Name: "touched", Type: rolap.Text},
	})
	if err != nil {
		return nil, err
	}
	for _, e := range log {
		ids := make([]string, len(e.Touched))
		for i, id := range e.Touched {
			ids[i] = string(id)
		}
		if err := ev.Insert(e.Seq, e.Description, strings.Join(ids, ",")); err != nil {
			return nil, err
		}
	}
	return &TemporalDW{DB: db, schema: s}, nil
}

// MemberHistory returns the evolution descriptions mentioning the
// member version, straight from the metadata table.
func (dw *TemporalDW) MemberHistory(id core.MVID) ([]string, error) {
	rel, err := dw.DB.Query("SELECT description, touched FROM meta_evolution ORDER BY seq")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, row := range rel.Rows {
		for _, part := range strings.Split(row[1].(string), ",") {
			if part == string(id) {
				out = append(out, row[0].(string))
				break
			}
		}
	}
	return out, nil
}

// Query runs SQL against the warehouse tables.
func (dw *TemporalDW) Query(sql string) (*rolap.Relation, error) { return dw.DB.Query(sql) }
