package warehouse

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/temporal"
	"mvolap/internal/workload"
)

func caseSchema(t testing.TB) *core.Schema {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildTemporalDW(t *testing.T) {
	s := caseSchema(t)
	log := []evolution.LogEntry{
		{Seq: 1, Description: "Exclude(Org, Dpt.Jones_id, 01/2003)", Touched: []core.MVID{casestudy.Jones}},
		{Seq: 2, Description: "Insert(Org, Dpt.Bill_id, ...)", Touched: []core.MVID{casestudy.Bill}},
	}
	dw, err := BuildTemporal(s, log)
	if err != nil {
		t.Fatal(err)
	}
	if dw.Schema() != s {
		t.Error("Schema accessor wrong")
	}
	// Fact rows loaded.
	rel, err := dw.Query("SELECT COUNT(*) AS n FROM fact")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(10) {
		t.Errorf("fact rows = %v, want 10 (Table 3)", rel.Rows[0][0])
	}
	// The consistent-time Q1 of Table 4, straight in SQL over the
	// parent-child dimension: join facts to the link valid at the fact
	// instant. (Here we check 2001 Sales = 150 via two-step filtering.)
	rel, err = dw.Query(
		"SELECT SUM(Amount) AS total FROM fact JOIN dim_Org_pc ON fact.d_Org = dim_Org_pc.mv_id " +
			"WHERE parent_id = 'Sales_id' AND t = 24012 AND valid_from <= 24012 AND valid_to >= 24012")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != 150.0 {
		t.Errorf("2001 Sales total = %v, want 150", rel.Rows[0][0])
	}
	// Mapping metadata is the Table 12 layout.
	rel, err = dw.Query("SELECT from_name, to_name, k_Amount, kinv_Amount, confidence, confidence_inv " +
		"FROM meta_mappings ORDER BY to_name")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("mapping rows = %d", len(rel.Rows))
	}
	if rel.Rows[0][0] != "Dpt.Jones" || rel.Rows[0][1] != "Dpt.Bill" ||
		rel.Rows[0][2] != "0.4" || rel.Rows[0][3] != "1" ||
		rel.Rows[0][4] != int64(1) || rel.Rows[0][5] != int64(2) {
		t.Errorf("Table 12 row = %v", rel.Rows[0])
	}
	// Member-version metadata.
	rel, err = dw.Query("SELECT COUNT(*) AS n FROM meta_versions WHERE is_leaf = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(5) {
		t.Errorf("leaf versions = %v, want 5", rel.Rows[0][0])
	}
	// Member history from the evolution log.
	hist, err := dw.MemberHistory(casestudy.Jones)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0] != "Exclude(Org, Dpt.Jones_id, 01/2003)" {
		t.Errorf("history = %v", hist)
	}
}

func TestInstantEncodingInTest(t *testing.T) {
	// Guard for the literal 24012 used above: January 2001.
	if int64(temporal.Year(2001)) != 24012 {
		t.Fatalf("Year(2001) = %d; fix the SQL literals in these tests", int64(temporal.Year(2001)))
	}
}

func TestBuildMultiVersionFull(t *testing.T) {
	s := caseSchema(t)
	dw, err := BuildMultiVersion(s, Full)
	if err != nil {
		t.Fatal(err)
	}
	// TMP dimension has tcm + V1..V3.
	rel, err := dw.Query("SELECT COUNT(*) AS n FROM tmp_modes")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0] != int64(4) {
		t.Errorf("tmp members = %v", rel.Rows[0][0])
	}
	// Stats: all logical rows stored.
	if dw.Stats.StoredRows != dw.Stats.LogicalRows {
		t.Errorf("full policy stored %d of %d", dw.Stats.StoredRows, dw.Stats.LogicalRows)
	}
	if dw.Stats.SourceRows != 10 {
		t.Errorf("source rows = %d", dw.Stats.SourceRows)
	}
	if dw.Stats.Redundancy() <= 1 {
		t.Errorf("redundancy = %v, must exceed 1", dw.Stats.Redundancy())
	}
	// Table 9's merged cell, via SQL: Jones 2003 in V2 = 200 with cf em
	// (code 2).
	rel, err = dw.Query("SELECT Amount, cf_Amount FROM mvfact " +
		"WHERE tmp = 'V2' AND d_Org = 'Dpt.Jones_id' AND t = 24036")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 || rel.Rows[0][0] != 200.0 || rel.Rows[0][1] != int64(2) {
		t.Errorf("V2 Jones@2003 = %v", rel.Rows)
	}
	// FactRows under Full passes stored rows through.
	rows, err := dw.FactRows("V2")
	if err != nil {
		t.Fatal(err)
	}
	// 6 rows for 2001-2002 plus 3 for 2003 (Bill and Paul merge into
	// a single Jones tuple).
	if len(rows.Rows) != 9 {
		t.Errorf("V2 rows = %d, want 9", len(rows.Rows))
	}
}

func TestBuildMultiVersionDelta(t *testing.T) {
	s := caseSchema(t)
	full, err := BuildMultiVersion(s, Full)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := BuildMultiVersion(s, Delta)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Stats.StoredRows >= full.Stats.StoredRows {
		t.Errorf("delta stored %d, full stored %d", delta.Stats.StoredRows, full.Stats.StoredRows)
	}
	if delta.Stats.Saving() <= 0 {
		t.Errorf("delta saving = %v", delta.Stats.Saving())
	}
	// Reconstruction must reproduce the full view for every mode.
	for _, mode := range []string{"tcm", "V1", "V2", "V3"} {
		fr, err := full.FactRows(mode)
		if err != nil {
			t.Fatal(err)
		}
		dr, err := delta.FactRows(mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(fr.Rows) != len(dr.Rows) {
			t.Errorf("mode %s: full %d rows, delta %d rows", mode, len(fr.Rows), len(dr.Rows))
			continue
		}
		key := func(row []any) string {
			k := ""
			for _, v := range row {
				k += "|"
				if f, ok := v.(float64); ok && math.IsNaN(f) {
					k += "NaN"
					continue
				}
				k += toS(v)
			}
			return k
		}
		seen := map[string]int{}
		for _, r := range fr.Rows {
			seen[key(r)]++
		}
		for _, r := range dr.Rows {
			seen[key(r)]--
		}
		for k, n := range seen {
			if n != 0 {
				t.Errorf("mode %s: row multiset differs at %s (%+d)", mode, k, n)
			}
		}
	}
	if _, err := delta.FactRows("V9"); err == nil {
		t.Error("unknown mode must fail")
	}
}

func toS(v any) string { return fmt.Sprint(v) }

func TestPolicyString(t *testing.T) {
	if Full.String() != "full" || Delta.String() != "delta" {
		t.Error("policy names wrong")
	}
	if StoragePolicy(9).String() == "" {
		t.Error("out-of-range policy String")
	}
}

func TestRedundancyStatsEdges(t *testing.T) {
	var r RedundancyStats
	if r.Redundancy() != 0 || r.Saving() != 0 {
		t.Error("zero stats must be zero")
	}
	r = RedundancyStats{SourceRows: 10, LogicalRows: 40, StoredRows: 15}
	if r.Redundancy() != 4 {
		t.Errorf("redundancy = %v", r.Redundancy())
	}
	if math.Abs(r.Saving()-0.625) > 1e-12 {
		t.Errorf("saving = %v", r.Saving())
	}
}

// TestDeltaReconstructionProperty: on random evolving workloads the
// delta-stored warehouse reconstructs exactly the same rows per mode as
// full duplication.
func TestDeltaReconstructionProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := workload.MustGenerate(workload.Config{
			Seed: seed, Departments: 8, Years: 4, EvolutionsPerYear: 2,
		})
		s := w.Schema
		full, err := BuildMultiVersion(s, Full)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := BuildMultiVersion(s, Delta)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range s.Modes() {
			fr, err := full.FactRows(mode.String())
			if err != nil {
				t.Fatal(err)
			}
			dr, err := delta.FactRows(mode.String())
			if err != nil {
				t.Fatal(err)
			}
			multiset := map[string]int{}
			for _, r := range fr.Rows {
				multiset[rowKey(r)]++
			}
			for _, r := range dr.Rows {
				multiset[rowKey(r)]--
			}
			for k, n := range multiset {
				if n != 0 {
					t.Fatalf("seed %d mode %s: row multiset differs at %s (%+d)", seed, mode, k, n)
				}
			}
		}
	}
}

func rowKey(row []any) string {
	parts := make([]string, len(row))
	for i, v := range row {
		if f, ok := v.(float64); ok && math.IsNaN(f) {
			parts[i] = "NaN"
			continue
		}
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, "|")
}

// TestTable9PureSQL reproduces Table 9 with nothing but SQL over the
// logical MultiVersion DW — validating the §4.1 claim that the model
// runs on plain relational OLAP servers once TMP is a flat dimension
// and confidence factors are measures.
func TestTable9PureSQL(t *testing.T) {
	s := caseSchema(t)
	dw, err := BuildMultiVersion(s, Full)
	if err != nil {
		t.Fatal(err)
	}
	year := func(y int) (lo, hi int64) {
		return int64(temporal.Year(y)), int64(temporal.EndOfYear(y))
	}
	query := func(y int) map[string][2]float64 {
		lo, hi := year(y)
		rel, err := dw.Query(fmt.Sprintf(
			"SELECT name, SUM(Amount) AS total, MAX(cf_Amount) AS cf "+
				"FROM mvfact JOIN dim_Org_star ON mvfact.d_Org = dim_Org_star.mv_id "+
				"WHERE tmp = 'V2' AND sv = 'V2' AND t >= %d AND t <= %d "+
				"GROUP BY name ORDER BY name", lo, hi))
		if err != nil {
			t.Fatal(err)
		}
		out := map[string][2]float64{}
		for _, row := range rel.Rows {
			out[row[0].(string)] = [2]float64{row[1].(float64), float64(row[2].(float64))}
		}
		return out
	}
	// 2002: all source data (prototype code 3).
	got := query(2002)
	for name, want := range map[string]float64{"Dpt.Jones": 100, "Dpt.Smith": 100, "Dpt.Brian": 50} {
		if got[name][0] != want {
			t.Errorf("2002 %s = %v, want %v", name, got[name][0], want)
		}
		if got[name][1] != 3 {
			t.Errorf("2002 %s cf code = %v, want 3 (sd)", name, got[name][1])
		}
	}
	// 2003: the merged Jones row with exact-mapping code 2.
	got = query(2003)
	if got["Dpt.Jones"][0] != 200 || got["Dpt.Jones"][1] != 2 {
		t.Errorf("2003 Jones = %v, want 200 with cf code 2 (em)", got["Dpt.Jones"])
	}
	if got["Dpt.Smith"][0] != 110 || got["Dpt.Brian"][0] != 40 {
		t.Errorf("2003 rows = %v", got)
	}
	// Rollup to divisions via the star ancestors, 2003 in V2: Sales =
	// Jones 200.
	lo, hi := year(2003)
	rel, err := dw.Query(fmt.Sprintf(
		"SELECT anc_Division, SUM(Amount) AS total "+
			"FROM mvfact JOIN dim_Org_star ON mvfact.d_Org = dim_Org_star.mv_id "+
			"WHERE tmp = 'V2' AND sv = 'V2' AND t >= %d AND t <= %d "+
			"GROUP BY anc_Division ORDER BY anc_Division", lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("division rollup:\n%s", rel)
	}
	if rel.Rows[0][0] != "R&D" || rel.Rows[0][1] != 150.0 {
		t.Errorf("R&D 2003 in V2 = %v", rel.Rows[0])
	}
	if rel.Rows[1][0] != "Sales" || rel.Rows[1][1] != 200.0 {
		t.Errorf("Sales 2003 in V2 = %v", rel.Rows[1])
	}
}
