package warehouse

import (
	"fmt"
	"math"

	"mvolap/internal/core"
	"mvolap/internal/logical"
	"mvolap/internal/rolap"
	"mvolap/internal/temporal"
)

// StoragePolicy selects how version-mapped tuples are stored in the
// MultiVersion DW.
type StoragePolicy uint8

const (
	// Full duplicates the values in all versions, the paper prototype's
	// approach (§5.1).
	Full StoragePolicy = iota
	// Delta stores the temporally consistent rows plus only the
	// version-mapped rows that differ from them — the improvement the
	// paper sketches ("we could only store differences between versions
	// instead of replicating all values").
	Delta
)

// String names the policy.
func (p StoragePolicy) String() string {
	switch p {
	case Full:
		return "full"
	case Delta:
		return "delta"
	}
	return fmt.Sprintf("StoragePolicy(%d)", uint8(p))
}

// RedundancyStats quantifies the §5.1 duplication overhead.
type RedundancyStats struct {
	// SourceRows is the size of the temporally consistent fact table.
	SourceRows int
	// LogicalRows is the size of the fully materialized multiversion
	// fact table (all modes).
	LogicalRows int
	// StoredRows is what the chosen policy actually stores.
	StoredRows int
}

// Redundancy is the ratio of logical rows to source rows: how many
// times each source value is replicated on average under Full storage.
func (r RedundancyStats) Redundancy() float64 {
	if r.SourceRows == 0 {
		return 0
	}
	return float64(r.LogicalRows) / float64(r.SourceRows)
}

// Saving is the fraction of logical rows the policy avoided storing.
func (r RedundancyStats) Saving() float64 {
	if r.LogicalRows == 0 {
		return 0
	}
	return 1 - float64(r.StoredRows)/float64(r.LogicalRows)
}

// MultiVersionDW is the second tier of the §5.1 architecture: the
// multiversion fact table materialized over a flat TMP dimension, with
// confidence factors as measures (prototype integer codes).
type MultiVersionDW struct {
	// DB holds:
	//   mvfact          (tmp, d_<dim>..., t, <measure>..., cf_<measure>...)
	//   tmp_modes       the flat TMP dimension (§4.1)
	//   dim_<id>_star   star dimension tables per structure version
	DB     *rolap.Database
	Policy StoragePolicy
	Stats  RedundancyStats

	schema *core.Schema
}

// BuildMultiVersion infers the MultiVersion DW from a temporal DW's
// schema: it materializes every temporal mode of presentation into the
// mvfact table under the chosen storage policy.
func BuildMultiVersion(s *core.Schema, policy StoragePolicy) (*MultiVersionDW, error) {
	db := rolap.NewDatabase("multiversion_dw")
	// The flat TMP dimension (§4.1).
	tmpTab, err := db.CreateTable("tmp_modes", rolap.Schema{{Name: "tmp", Type: rolap.Text}})
	if err != nil {
		return nil, err
	}
	for _, m := range logical.TMPDimensionOf(s).Members {
		if err := tmpTab.Insert(m); err != nil {
			return nil, err
		}
	}
	// Star dimension tables for rollups inside version modes.
	if _, err := logical.BuildDimensionTables(s, db, logical.Star); err != nil {
		return nil, err
	}

	factSchema := rolap.Schema{{Name: "tmp", Type: rolap.Text}}
	for _, d := range s.Dimensions() {
		factSchema = append(factSchema, rolap.Column{Name: "d_" + string(d.ID), Type: rolap.Text})
	}
	factSchema = append(factSchema, rolap.Column{Name: "t", Type: rolap.Time})
	for _, m := range s.Measures() {
		factSchema = append(factSchema, rolap.Column{Name: m.Name, Type: rolap.Float})
	}
	for _, m := range s.Measures() {
		factSchema = append(factSchema, rolap.Column{Name: "cf_" + m.Name, Type: rolap.Int})
	}
	fact, err := db.CreateTable("mvfact", factSchema)
	if err != nil {
		return nil, err
	}

	dw := &MultiVersionDW{DB: db, Policy: policy, schema: s}
	// Materialize all modes concurrently up front; the sequential
	// insert loop below reads the cached tables.
	tables, err := s.MultiVersion().All()
	if err != nil {
		return nil, err
	}
	insert := func(mode string, f *core.MappedFact) error {
		row := make([]any, 0, len(factSchema))
		row = append(row, mode)
		for _, id := range f.Coords {
			row = append(row, string(id))
		}
		row = append(row, f.Time)
		for _, v := range f.Values {
			if math.IsNaN(v) {
				row = append(row, nil)
			} else {
				row = append(row, v)
			}
		}
		for _, cf := range f.CFs {
			row = append(row, cf.PrototypeCode())
		}
		return fact.Insert(row...)
	}

	for _, mode := range s.Modes() {
		mt := tables[mode.String()]
		dw.Stats.LogicalRows += mt.Len()
		for _, f := range mt.Facts() {
			if policy == Delta && mode.Kind == core.VersionKind && isSourceIdentical(s, f) {
				continue
			}
			if err := insert(mode.String(), f); err != nil {
				return nil, err
			}
			dw.Stats.StoredRows++
		}
	}
	dw.Stats.SourceRows = s.Facts().Len()
	if err := fact.CreateIndex("tmp"); err != nil {
		return nil, err
	}
	return dw, nil
}

// isSourceIdentical reports whether a mapped tuple is exactly the
// source tuple (same coordinates, same values, all source-data
// confidence) and can therefore be reconstructed from the tcm rows.
func isSourceIdentical(s *core.Schema, f *core.MappedFact) bool {
	for _, cf := range f.CFs {
		if cf != core.SourceData {
			return false
		}
	}
	src, ok := s.Facts().Lookup(f.Coords, f.Time)
	if !ok {
		return false
	}
	for i, v := range f.Values {
		if v != src[i] {
			return false
		}
	}
	return true
}

// FactRows returns the multiversion fact rows for one mode,
// reconstructing implicit rows under the Delta policy: a source row is
// implied in a version mode when its coordinates are leaf member
// versions of that structure version and no stored delta overrides
// them.
func (dw *MultiVersionDW) FactRows(mode string) (*rolap.Relation, error) {
	stored, err := dw.DB.Query("SELECT * FROM mvfact WHERE tmp = '" + mode + "'")
	if err != nil {
		return nil, err
	}
	if dw.Policy == Full || mode == "tcm" {
		return stored, nil
	}
	sv := dw.schema.VersionByID(mode)
	if sv == nil {
		return nil, fmt.Errorf("warehouse: unknown mode %q", mode)
	}
	// Index the stored delta rows by coordinates+time.
	overridden := make(map[string]bool, len(stored.Rows))
	nd := len(dw.schema.Dimensions())
	for _, row := range stored.Rows {
		overridden[deltaKey(row[1:1+nd], row[1+nd])] = true
	}
	// A source fact is implicit when each coordinate is a leaf of the
	// structure version.
	leafSets := make([]map[core.MVID]bool, nd)
	for i, d := range dw.schema.Dimensions() {
		set := make(map[core.MVID]bool)
		rd := sv.Dimension(d.ID)
		if rd != nil {
			for _, mv := range rd.LeavesAt(sv.Valid.Start) {
				set[mv.ID] = true
			}
		}
		leafSets[i] = set
	}
	out := &rolap.Relation{Cols: stored.Cols, Rows: append([][]any{}, stored.Rows...)}
	for _, f := range dw.schema.Facts().Facts() {
		inVersion := true
		for i, id := range f.Coords {
			if !leafSets[i][id] {
				inVersion = false
				break
			}
		}
		if !inVersion {
			continue
		}
		coords := make([]any, nd)
		for i, id := range f.Coords {
			coords[i] = string(id)
		}
		if overridden[deltaKey(coords, f.Time)] {
			continue
		}
		row := make([]any, 0, len(stored.Cols))
		row = append(row, mode)
		row = append(row, coords...)
		row = append(row, f.Time)
		for _, v := range f.Values {
			row = append(row, v)
		}
		for range f.Values {
			row = append(row, core.SourceData.PrototypeCode())
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func deltaKey(coords []any, t any) string {
	key := ""
	for _, c := range coords {
		key += fmt.Sprint(c) + "\x1f"
	}
	var ti int64
	switch x := t.(type) {
	case temporal.Instant:
		ti = int64(x)
	case int64:
		ti = x
	}
	return key + fmt.Sprint(ti)
}

// Query runs SQL against the warehouse tables. Under the Delta policy
// queries against mvfact see only the stored rows; use FactRows for the
// reconstructed view.
func (dw *MultiVersionDW) Query(sql string) (*rolap.Relation, error) { return dw.DB.Query(sql) }
