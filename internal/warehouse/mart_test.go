package warehouse

import (
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func TestExtractMartByMember(t *testing.T) {
	s := caseSchema(t)
	mart, err := ExtractMart(s, MartSpec{
		Name:    "sales-mart",
		Members: map[core.DimID][]string{casestudy.OrgDim: {"Sales"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Facts under Sales at their instant: 2001 Jones+Smith, 2002 Jones,
	// 2003 Bill+Paul = 5.
	if mart.Facts().Len() != 5 {
		t.Fatalf("mart facts = %d, want 5", mart.Facts().Len())
	}
	// The structure carries over whole: the mart still answers mapped
	// queries (Bill+Paul back onto Jones in the 2002 structure).
	v2 := mart.VersionAt(temporal.Year(2002))
	if v2 == nil {
		t.Fatal("mart lost structure versions")
	}
	res, err := mart.Execute(core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
		Mode:    core.InVersion(v2),
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r.TimeKey == "2003" && r.Groups[0] == "Dpt.Jones" {
			found = true
			if r.Values[0] != 200 || r.CFs[0] != core.ExactMapping {
				t.Errorf("mart Table 9 cell = %v (%v)", r.Values[0], r.CFs[0])
			}
		}
	}
	if !found {
		t.Error("mart lost the mapped presentation")
	}
}

func TestExtractMartByWindow(t *testing.T) {
	s := caseSchema(t)
	mart, err := ExtractMart(s, MartSpec{
		Name:   "y2002",
		Window: temporal.Between(temporal.Year(2002), temporal.EndOfYear(2002)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if mart.Facts().Len() != 3 {
		t.Errorf("windowed mart facts = %d, want 3", mart.Facts().Len())
	}
}

// TestExtractMartIsIndependent: evolving the warehouse after extraction
// must not change the mart.
func TestExtractMartIsIndependent(t *testing.T) {
	s := caseSchema(t)
	mart, err := ExtractMart(s, MartSpec{Name: "all"})
	if err != nil {
		t.Fatal(err)
	}
	// Truncate a member in the source warehouse.
	if err := s.Dimension(casestudy.OrgDim).SetEnd(casestudy.Brian, temporal.YM(2003, 12)); err != nil {
		t.Fatal(err)
	}
	s.Invalidate()
	if got := mart.Dimension(casestudy.OrgDim).Version(casestudy.Brian).Valid.End; got != temporal.Now {
		t.Errorf("mart member mutated with the warehouse: end = %v", got)
	}
	if len(mart.StructureVersions()) != 3 {
		t.Errorf("mart versions = %d", len(mart.StructureVersions()))
	}
}

func TestExtractMartErrors(t *testing.T) {
	s := caseSchema(t)
	if _, err := ExtractMart(s, MartSpec{}); err == nil {
		t.Error("missing name must fail")
	}
	if _, err := ExtractMart(s, MartSpec{Name: "x", Members: map[core.DimID][]string{"zz": {"a"}}}); err == nil {
		t.Error("unknown dimension must fail")
	}
	if _, err := ExtractMart(s, MartSpec{Name: "x", Members: map[core.DimID][]string{casestudy.OrgDim: {"Nobody"}}}); err == nil {
		t.Error("empty selection must fail")
	}
}
