package warehouse

import (
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// budgetStar builds a second star over the same Org dimension: a Budget
// fact table sharing the conformed dimension.
func budgetStar(t testing.TB) *core.Schema {
	t.Helper()
	base := caseSchema(t) // for the conformed dimension shape
	s := core.NewSchema("budget", core.Measure{Name: "Budget", Agg: core.Sum})
	d := core.NewDimension(casestudy.OrgDim, "Org")
	for _, mv := range base.Dimension(casestudy.OrgDim).Versions() {
		if err := d.AddVersion(mv.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range base.Dimension(casestudy.OrgDim).Relationships() {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	type row struct {
		id  core.MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{casestudy.Jones, 2001, 90}, {casestudy.Smith, 2001, 60}, {casestudy.Brian, 2001, 110},
		{casestudy.Smith, 2002, 95}, {casestudy.Brian, 2002, 45},
	} {
		if err := s.InsertFact(core.Coords{r.id}, temporal.Year(r.yr), r.amt); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestConstellationConformance(t *testing.T) {
	c := NewConstellation("galaxy")
	sales := caseSchema(t)
	if err := c.AddStar(sales); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStar(budgetStar(t)); err != nil {
		t.Fatal(err)
	}
	if len(c.Stars()) != 2 || c.Star("budget") == nil || c.Star("zz") != nil {
		t.Error("star registry wrong")
	}
	// Duplicate names rejected.
	if err := c.AddStar(caseSchema(t)); err == nil {
		t.Error("duplicate star name must fail")
	}
	// A non-conformed dimension (one version truncated) is rejected.
	bad := budgetStar(t)
	bad.Name = "bad-budget"
	if err := bad.Dimension(casestudy.OrgDim).SetEnd(casestudy.Brian, temporal.YM(2002, 12)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStar(bad); err == nil {
		t.Error("non-conformed dimension must be rejected")
	}
	// Missing member version.
	bad2 := core.NewSchema("bad2", core.Measure{Name: "x", Agg: core.Sum})
	d2 := core.NewDimension(casestudy.OrgDim, "Org")
	if err := d2.AddVersion(&core.MemberVersion{ID: "only", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := bad2.AddDimension(d2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStar(bad2); err == nil {
		t.Error("differently-sized dimension must be rejected")
	}
}

func TestDrillAcross(t *testing.T) {
	c := NewConstellation("galaxy")
	if err := c.AddStar(caseSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStar(budgetStar(t)); err != nil {
		t.Fatal(err)
	}
	res, err := c.DrillAcross(core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Division"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(temporal.Year(2001), temporal.EndOfYear(2002)),
	}, func(*core.Schema) core.Mode { return core.TCM() })
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(res.Columns, ",") != "institution.Amount,budget.Budget" {
		t.Fatalf("columns = %v", res.Columns)
	}
	byKey := map[string][]*float64{}
	for _, r := range res.Rows {
		byKey[r.TimeKey+"/"+r.Groups[0]] = r.Values
	}
	// 2001 Sales: Amount 150 (Table 4), Budget 90+60 = 150.
	v := byKey["2001/Sales"]
	if v[0] == nil || *v[0] != 150 || v[1] == nil || *v[1] != 150 {
		t.Errorf("2001 Sales = %v", v)
	}
	// 2002 Sales: Amount 100; budget has no Sales facts in 2002 (Smith
	// moved, Jones unbudgeted) → nil cell.
	v = byKey["2002/Sales"]
	if v[0] == nil || *v[0] != 100 {
		t.Errorf("2002 Sales amount = %v", v[0])
	}
	if v[1] != nil {
		t.Errorf("2002 Sales budget must be missing, got %v", *v[1])
	}
	// 2002 R&D: Amount 150, Budget 95+45 = 140.
	v = byKey["2002/R&D"]
	if v[1] == nil || *v[1] != 140 {
		t.Errorf("2002 R&D budget = %v", v[1])
	}
}

// TestDrillAcrossVersionMode drills across with each star presented in
// its own structure version containing 2002.
func TestDrillAcrossVersionMode(t *testing.T) {
	c := NewConstellation("galaxy")
	if err := c.AddStar(caseSchema(t)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStar(budgetStar(t)); err != nil {
		t.Fatal(err)
	}
	res, err := c.DrillAcross(core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(temporal.Year(2002), temporal.EndOfYear(2003)),
	}, func(s *core.Schema) core.Mode {
		return core.InVersion(s.VersionAt(temporal.Year(2002)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "V2" {
		t.Errorf("mode = %s", res.Mode)
	}
	// The sales star still shows the Table 9 merge.
	for _, r := range res.Rows {
		if r.TimeKey == "2003" && r.Groups[0] == "Dpt.Jones" {
			if r.Values[0] == nil || *r.Values[0] != 200 || r.CFs[0] != core.ExactMapping {
				t.Errorf("drill-across Table 9 cell = %+v", r)
			}
		}
	}
}

func TestDrillAcrossErrors(t *testing.T) {
	c := NewConstellation("empty")
	if _, err := c.DrillAcross(core.Query{}, func(*core.Schema) core.Mode { return core.TCM() }); err == nil {
		t.Error("empty constellation must fail")
	}
	if err := c.AddStar(caseSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DrillAcross(core.Query{
		GroupBy: []core.GroupBy{{Dim: "zz", Level: "x"}},
	}, func(*core.Schema) core.Mode { return core.TCM() }); err == nil {
		t.Error("bad query must fail")
	}
}
