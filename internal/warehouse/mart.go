package warehouse

import (
	"fmt"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// This file implements the optional data-mart tier of Figure 1: "a data
// mart handles data sourced from the data warehouse, reduced for a
// selected subject", isolating data of interest for a smaller scope.

// MartSpec selects the subject of a data mart: a time window and, per
// dimension, the members (by display name, including ancestors) whose
// facts to keep. Dimensions without an entry keep everything.
type MartSpec struct {
	// Name names the resulting mart schema.
	Name string
	// Window restricts fact instants; the zero interval keeps all time.
	Window temporal.Interval
	// Members keeps only facts whose coordinate in the dimension lies
	// under one of the named members (evaluated against the structure
	// valid at each fact's instant).
	Members map[core.DimID][]string
}

// ExtractMart builds a data mart from the warehouse schema: the full
// dimension structures, mapping relationships and measures are carried
// over (structure is metadata and stays intact), while the fact table
// is reduced to the selected subject. The mart is an independent
// core.Schema: subsequent evolution of the warehouse does not affect it.
func ExtractMart(s *core.Schema, spec MartSpec) (*core.Schema, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("warehouse: mart needs a name")
	}
	window := spec.Window
	if window == (temporal.Interval{}) {
		window = temporal.Always
	}
	nameSets := make(map[core.DimID]map[string]bool, len(spec.Members))
	for dim, names := range spec.Members {
		if s.Dimension(dim) == nil {
			return nil, fmt.Errorf("warehouse: mart filters unknown dimension %q", dim)
		}
		set := make(map[string]bool, len(names))
		for _, n := range names {
			set[n] = true
		}
		nameSets[dim] = set
	}

	mart := core.NewSchema(spec.Name, s.Measures()...)
	mart.SetConfidenceAlgebra(s.ConfidenceAlgebra())
	// Deep-copy dimensions: member versions are cloned; relationships
	// are value types.
	for _, d := range s.Dimensions() {
		nd := core.NewDimension(d.ID, d.Name)
		for _, mv := range d.Versions() {
			if err := nd.AddVersion(mv.Clone()); err != nil {
				return nil, fmt.Errorf("warehouse: mart dimension copy: %w", err)
			}
		}
		for _, r := range d.Relationships() {
			if err := nd.AddRelationship(r); err != nil {
				return nil, fmt.Errorf("warehouse: mart relationship copy: %w", err)
			}
		}
		if err := mart.AddDimension(nd); err != nil {
			return nil, err
		}
	}
	for _, m := range s.Mappings() {
		if err := mart.AddMapping(m); err != nil {
			return nil, err
		}
	}

	dims := s.Dimensions()
	kept := 0
	for _, f := range s.Facts().Facts() {
		if !window.Contains(f.Time) {
			continue
		}
		keep := true
		for i, d := range dims {
			set, filtered := nameSets[d.ID]
			if !filtered {
				continue
			}
			if !d.HasAncestorNamedAt(f.Coords[i], set, f.Time) {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		if err := mart.InsertFact(f.Coords.Clone(), f.Time, f.Values...); err != nil {
			return nil, fmt.Errorf("warehouse: mart fact copy: %w", err)
		}
		kept++
	}
	if kept == 0 {
		return nil, fmt.Errorf("warehouse: mart %q selects no facts", spec.Name)
	}
	return mart, nil
}
