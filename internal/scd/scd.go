// Package scd implements the baselines the paper positions itself
// against (§1.2, §2.2): Kimball's three types of Slowly Changing
// Dimensions and the "updating model" behaviour of mapping everything
// into the most recent structure.
//
//   - Type 1 overwrites the dimension attribute: history is lost, every
//     fact is presented in the latest structure, and facts whose member
//     disappeared become unanswerable ("avoids the real goal", Kimball).
//   - Type 2 versions the dimension rows: history is tracked and
//     queries are temporally consistent, but "comparisons across the
//     transitions cannot be made, since links between them are not
//     kept".
//   - Type 3 keeps the previous value inside the member: one transition
//     is comparable, but "overlapping between versions may occur and
//     cannot be handled" and it is "equipped to handle only changes" on
//     attributes — merges and splits are out of reach.
//
// The package exposes a common interface so the experiments can run the
// same workload through every baseline and through the multiversion
// model and compare answers, lost facts, and comparability.
package scd

import (
	"fmt"
	"sort"

	"mvolap/internal/temporal"
)

// Fact is a measure value recorded for a member key at an instant.
type Fact struct {
	Key   string
	Time  temporal.Instant
	Value float64
}

// View selects how a dimension resolves grouping attributes.
type View uint8

// The presentation views a baseline may support.
const (
	// Current presents every fact in the latest structure.
	Current View = iota
	// AtTime presents each fact in the structure valid at its instant
	// (temporally consistent).
	AtTime
	// Previous presents facts in the structure before the last change
	// (only Type 3 supports this).
	Previous
)

// String names the view.
func (v View) String() string {
	switch v {
	case Current:
		return "current"
	case AtTime:
		return "at-time"
	case Previous:
		return "previous"
	}
	return fmt.Sprintf("View(%d)", uint8(v))
}

// Dimension is a slowly-changing dimension handler mapping a member key
// to a grouping attribute (the paper's department → division link).
type Dimension interface {
	// Name identifies the baseline.
	Name() string
	// Set records the attribute value for a key from the given instant.
	Set(key, value string, at temporal.Instant)
	// Delete removes the key from the dimension at the given instant.
	Delete(key string, at temporal.Instant)
	// Resolve returns the grouping value for a fact at t under the
	// view; ok is false when the baseline cannot answer.
	Resolve(key string, t temporal.Instant, view View) (string, bool)
	// Supports reports whether the baseline can answer the view at all.
	Supports(view View) bool
}

// Type1 is the overwrite baseline (also the §2.2 "updating model"
// behaviour: all data mapped to the most recent version).
type Type1 struct {
	attrs map[string]string
}

// NewType1 creates an empty Type 1 dimension.
func NewType1() *Type1 { return &Type1{attrs: make(map[string]string)} }

// Name identifies the baseline.
func (d *Type1) Name() string { return "scd-type1" }

// Set overwrites the attribute; prior history is destroyed.
func (d *Type1) Set(key, value string, _ temporal.Instant) { d.attrs[key] = value }

// Delete removes the member entirely; its facts become unanswerable.
func (d *Type1) Delete(key string, _ temporal.Instant) { delete(d.attrs, key) }

// Resolve always answers with the current structure, whatever the view
// asked for: a Type 1 dimension cannot distinguish them.
func (d *Type1) Resolve(key string, _ temporal.Instant, _ View) (string, bool) {
	v, ok := d.attrs[key]
	return v, ok
}

// Supports reports Current only.
func (d *Type1) Supports(view View) bool { return view == Current }

// Type2 is the row-versioning baseline.
type Type2 struct {
	rows map[string][]type2Row
}

type type2Row struct {
	value string
	valid temporal.Interval
}

// NewType2 creates an empty Type 2 dimension.
func NewType2() *Type2 { return &Type2{rows: make(map[string][]type2Row)} }

// Name identifies the baseline.
func (d *Type2) Name() string { return "scd-type2" }

// Set ends the open row for the key and opens a new one at the instant.
func (d *Type2) Set(key, value string, at temporal.Instant) {
	rows := d.rows[key]
	if n := len(rows); n > 0 && rows[n-1].valid.End == temporal.Now {
		rows[n-1].valid.End = at.Prev()
		if rows[n-1].valid.Empty() {
			rows = rows[:n-1]
		}
	}
	d.rows[key] = append(rows, type2Row{value: value, valid: temporal.Since(at)})
}

// Delete ends the open row at the instant.
func (d *Type2) Delete(key string, at temporal.Instant) {
	rows := d.rows[key]
	if n := len(rows); n > 0 && rows[n-1].valid.End == temporal.Now {
		rows[n-1].valid.End = at.Prev()
		if rows[n-1].valid.Empty() {
			rows = rows[:n-1]
		}
		d.rows[key] = rows
	}
}

// Resolve answers AtTime with the row valid at t; Current with the
// open row. Cross-version presentation is impossible: versions carry
// no links (the Kimball limitation the paper quotes).
func (d *Type2) Resolve(key string, t temporal.Instant, view View) (string, bool) {
	rows := d.rows[key]
	switch view {
	case AtTime:
		for _, r := range rows {
			if r.valid.Contains(t) {
				return r.value, true
			}
		}
	case Current:
		if n := len(rows); n > 0 && rows[n-1].valid.End == temporal.Now {
			// Only facts recorded during the current row's validity can
			// be presented: earlier versions have no link forward.
			if rows[n-1].valid.Contains(t) {
				return rows[n-1].value, true
			}
		}
	}
	return "", false
}

// Supports reports AtTime and (partially) Current.
func (d *Type2) Supports(view View) bool { return view == AtTime || view == Current }

// Type3 keeps the current and one previous attribute value inside the
// member.
type Type3 struct {
	attrs map[string]*type3Attrs
}

type type3Attrs struct {
	current   string
	previous  string
	changedAt temporal.Instant
	hasPrev   bool
}

// NewType3 creates an empty Type 3 dimension.
func NewType3() *Type3 { return &Type3{attrs: make(map[string]*type3Attrs)} }

// Name identifies the baseline.
func (d *Type3) Name() string { return "scd-type3" }

// Set shifts current into previous; only the last transition survives.
func (d *Type3) Set(key, value string, at temporal.Instant) {
	a, ok := d.attrs[key]
	if !ok {
		d.attrs[key] = &type3Attrs{current: value, changedAt: at}
		return
	}
	a.previous = a.current
	a.hasPrev = true
	a.current = value
	a.changedAt = at
}

// Delete removes the member.
func (d *Type3) Delete(key string, _ temporal.Instant) { delete(d.attrs, key) }

// Resolve answers Current with the current value, Previous with the
// previous one (when a transition happened), and AtTime by picking
// whichever of the two columns was valid — possible only for the single
// tracked transition.
func (d *Type3) Resolve(key string, t temporal.Instant, view View) (string, bool) {
	a, ok := d.attrs[key]
	if !ok {
		return "", false
	}
	switch view {
	case Current:
		return a.current, true
	case Previous:
		if a.hasPrev {
			return a.previous, true
		}
		return a.current, true
	case AtTime:
		if a.hasPrev && t.Before(a.changedAt) {
			return a.previous, true
		}
		return a.current, true
	}
	return "", false
}

// Supports reports all three views, within the one-transition limit.
func (d *Type3) Supports(View) bool { return true }

// TotalsRow is one line of a baseline query result: a time bucket, a
// group value, and the total.
type TotalsRow struct {
	Year  int
	Group string
	Total float64
}

// Report is the outcome of running a workload through a baseline.
type Report struct {
	Baseline string
	View     View
	Rows     []TotalsRow
	// LostFacts counts facts the baseline could not attribute to any
	// group under the view.
	LostFacts int
}

// Totals groups facts by year and resolved attribute under the view,
// counting unresolvable facts as lost.
func Totals(d Dimension, facts []Fact, view View) Report {
	rep := Report{Baseline: d.Name(), View: view}
	acc := map[[2]string]float64{}
	var order [][2]string
	for _, f := range facts {
		group, ok := d.Resolve(f.Key, f.Time, view)
		if !ok {
			rep.LostFacts++
			continue
		}
		key := [2]string{fmt.Sprintf("%04d", f.Time.YearOf()), group}
		if _, seen := acc[key]; !seen {
			order = append(order, key)
		}
		acc[key] += f.Value
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i][0] != order[j][0] {
			return order[i][0] < order[j][0]
		}
		return order[i][1] < order[j][1]
	})
	for _, key := range order {
		year := 0
		fmt.Sscanf(key[0], "%d", &year)
		rep.Rows = append(rep.Rows, TotalsRow{Year: year, Group: key[1], Total: acc[key]})
	}
	return rep
}
