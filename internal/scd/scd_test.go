package scd

import (
	"testing"

	"mvolap/internal/temporal"
)

func y(year int) temporal.Instant { return temporal.Year(year) }

// caseFacts is the paper's Table 3 keyed by department name.
func caseFacts() []Fact {
	return []Fact{
		{"Dpt.Jones", y(2001), 100}, {"Dpt.Smith", y(2001), 50}, {"Dpt.Brian", y(2001), 100},
		{"Dpt.Jones", y(2002), 100}, {"Dpt.Smith", y(2002), 100}, {"Dpt.Brian", y(2002), 50},
		{"Dpt.Bill", y(2003), 150}, {"Dpt.Paul", y(2003), 50},
		{"Dpt.Smith", y(2003), 110}, {"Dpt.Brian", y(2003), 40},
	}
}

// playHistory replays the case-study history on any baseline: the 2001
// org, Smith's 2002 move, and the 2003 split of Jones into Bill/Paul
// (expressed as delete + create, the only vocabulary SCDs have).
func playHistory(d Dimension) {
	d.Set("Dpt.Jones", "Sales", y(2001))
	d.Set("Dpt.Smith", "Sales", y(2001))
	d.Set("Dpt.Brian", "R&D", y(2001))
	d.Set("Dpt.Smith", "R&D", y(2002))
	d.Delete("Dpt.Jones", y(2003))
	d.Set("Dpt.Bill", "Sales", y(2003))
	d.Set("Dpt.Paul", "Sales", y(2003))
}

func find(rep Report, year int, group string) (float64, bool) {
	for _, r := range rep.Rows {
		if r.Year == year && r.Group == group {
			return r.Total, true
		}
	}
	return 0, false
}

// TestType1LosesHistoryAndFacts: the overwrite baseline presents
// everything in the latest structure and loses the deleted member's
// facts entirely — the paper's core criticism of updating models
// ("some data are corrupted, or even lost").
func TestType1LosesHistoryAndFacts(t *testing.T) {
	d := NewType1()
	playHistory(d)
	rep := Totals(d, caseFacts(), Current)
	// Jones's 200 across 2001-2002 is gone.
	if rep.LostFacts != 2 {
		t.Errorf("lost facts = %d, want 2 (Jones 2001, 2002)", rep.LostFacts)
	}
	// Smith's 2001 fact is presented under R&D: history rewritten.
	if v, ok := find(rep, 2001, "R&D"); !ok || v != 150 {
		t.Errorf("2001 R&D = %v (Smith's 50 must be misattributed here)", v)
	}
	if _, ok := find(rep, 2001, "Sales"); ok {
		t.Error("2001 Sales should have vanished entirely under Type 1")
	}
	if !d.Supports(Current) || d.Supports(AtTime) {
		t.Error("Type 1 supports only the current view")
	}
}

// TestType2IsConsistentButIncomparable: row versioning reproduces the
// temporally consistent Table 4, but cannot present old facts in the
// current structure (no links across versions).
func TestType2IsConsistentButIncomparable(t *testing.T) {
	d := NewType2()
	playHistory(d)
	rep := Totals(d, caseFacts(), AtTime)
	if rep.LostFacts != 0 {
		t.Errorf("at-time lost facts = %d", rep.LostFacts)
	}
	// Table 4 values.
	for _, w := range []struct {
		year  int
		group string
		total float64
	}{
		{2001, "Sales", 150}, {2001, "R&D", 100},
		{2002, "Sales", 100}, {2002, "R&D", 150},
	} {
		if v, ok := find(rep, w.year, w.group); !ok || v != w.total {
			t.Errorf("%d %s = %v, want %v", w.year, w.group, v, w.total)
		}
	}
	// Current view: Smith's 2001 fact has no link to the current row's
	// validity, so it is lost — comparisons across the transition are
	// impossible.
	cur := Totals(d, caseFacts(), Current)
	if cur.LostFacts == 0 {
		t.Error("Type 2 must lose pre-transition facts in the current view")
	}
	if v, ok := find(cur, 2001, "Sales"); ok && v != 100 {
		t.Errorf("2001 Sales current view = %v", v)
	}
}

// TestType3HandlesOneTransitionOnly: the previous-column baseline
// answers the Smith move but cannot express the Jones split, and a
// second change destroys the first.
func TestType3HandlesOneTransitionOnly(t *testing.T) {
	d := NewType3()
	playHistory(d)
	rep := Totals(d, caseFacts(), AtTime)
	// Smith's 2001 fact resolves to the previous value Sales — the one
	// transition Type 3 can answer. Jones is gone (the split is just
	// delete+create to an SCD), so 2001 Sales is Smith's 50 alone and
	// Jones's two facts are lost.
	if v, ok := find(rep, 2001, "Sales"); !ok || v != 50 {
		t.Errorf("2001 Sales = %v, want 50 (Jones lost)", v)
	}
	if rep.LostFacts != 2 {
		t.Errorf("lost facts = %d, want 2", rep.LostFacts)
	}
	// The previous view exists but, with Bill and Paul carrying no
	// transition, it mixes structures: 2003 Sales = Bill 150 + Paul 50
	// + Smith 110 (Smith's previous division). Compare the paper's V1
	// presentation of 2003, which maps Bill and Paul back onto Jones.
	prev := Totals(d, caseFacts(), Previous)
	if v, ok := find(prev, 2003, "Sales"); !ok || v != 310 {
		t.Errorf("previous view 2003 Sales = %v, want 310", v)
	}
	// A second move of Smith forgets the first.
	d.Set("Dpt.Smith", "Ops", y(2004))
	if v, _ := d.Resolve("Dpt.Smith", y(2001), AtTime); v != "R&D" {
		t.Errorf("after second change, 2001 Smith = %q (first transition destroyed, as documented)", v)
	}
	if !d.Supports(Previous) {
		t.Error("Type 3 supports the previous view")
	}
}

func TestType2RowMaintenance(t *testing.T) {
	d := NewType2()
	d.Set("k", "a", y(2001))
	d.Set("k", "b", y(2003))
	if v, ok := d.Resolve("k", y(2002), AtTime); !ok || v != "a" {
		t.Errorf("2002 = %v", v)
	}
	if v, ok := d.Resolve("k", y(2004), AtTime); !ok || v != "b" {
		t.Errorf("2004 = %v", v)
	}
	d.Delete("k", y(2005))
	if _, ok := d.Resolve("k", y(2006), AtTime); ok {
		t.Error("deleted key must not resolve after deletion")
	}
	if v, ok := d.Resolve("k", y(2004), AtTime); !ok || v != "b" {
		t.Errorf("history must survive deletion: %v", v)
	}
	// Same-instant replacement drops the empty row.
	d2 := NewType2()
	d2.Set("k", "a", y(2001))
	d2.Set("k", "b", y(2001))
	if v, _ := d2.Resolve("k", y(2001), AtTime); v != "b" {
		t.Errorf("same-instant replacement = %v", v)
	}
	// Deleting an unknown key is a no-op.
	d2.Delete("zz", y(2002))
}

func TestViewString(t *testing.T) {
	if Current.String() != "current" || AtTime.String() != "at-time" || Previous.String() != "previous" {
		t.Error("view names wrong")
	}
	if View(9).String() == "" {
		t.Error("out-of-range view String")
	}
}

func TestType3UnknownKeyAndView(t *testing.T) {
	d := NewType3()
	if _, ok := d.Resolve("zz", y(2001), Current); ok {
		t.Error("unknown key must not resolve")
	}
	d.Set("k", "a", y(2001))
	if v, ok := d.Resolve("k", y(2000), Previous); !ok || v != "a" {
		t.Error("previous without transition falls back to current")
	}
	if _, ok := d.Resolve("k", y(2001), View(9)); ok {
		t.Error("unknown view must not resolve")
	}
}

func TestSupports(t *testing.T) {
	if !NewType2().Supports(AtTime) || NewType2().Supports(Previous) {
		t.Error("Type 2 view support wrong")
	}
	if !NewType3().Supports(Previous) {
		t.Error("Type 3 supports previous")
	}
}
