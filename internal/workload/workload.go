// Package workload generates synthetic evolving multidimensional
// schemas. The paper evaluates its model on a case study and reports no
// absolute performance numbers; these generators produce organizations
// of parameterized size whose dimensions evolve at a parameterized rate
// (creations, deletions, reclassifications, merges, splits), so the
// benchmarks can measure how the costs the paper discusses
// qualitatively — structure-version inference, multiversion fact table
// materialization, duplication overhead — scale with size and change
// rate.
package workload

import (
	"fmt"
	"math/rand"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/temporal"
)

// Config parameterizes a synthetic organization.
type Config struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Divisions and Departments size the initial organization.
	Divisions   int
	Departments int
	// Years of history; evolutions happen at each year boundary.
	Years int
	// EvolutionsPerYear is how many evolution events fire per boundary.
	EvolutionsPerYear int
	// FactsPerYear is how many facts are recorded per active
	// department per year.
	FactsPerYear int
	// Measures is the measure count.
	Measures int
}

// Validate rejects impossible configurations. Zero values are legal
// (withDefaults fills them); negative sizes used to flow through
// withDefaults unchanged and panic deep inside the generators, so they
// are refused up front with a named-field error instead.
func (c Config) Validate() error {
	for _, f := range []struct {
		name  string
		value int
	}{
		{"Divisions", c.Divisions},
		{"Departments", c.Departments},
		{"Years", c.Years},
		{"EvolutionsPerYear", c.EvolutionsPerYear},
		{"FactsPerYear", c.FactsPerYear},
		{"Measures", c.Measures},
	} {
		if f.value < 0 {
			return fmt.Errorf("workload: Config.%s is negative (%d)", f.name, f.value)
		}
	}
	return nil
}

// Default fills unset fields with a small but non-trivial workload.
func (c Config) withDefaults() Config {
	if c.Divisions == 0 {
		c.Divisions = 3
	}
	if c.Departments == 0 {
		c.Departments = 12
	}
	if c.Years == 0 {
		c.Years = 4
	}
	if c.EvolutionsPerYear == 0 {
		c.EvolutionsPerYear = 2
	}
	if c.FactsPerYear == 0 {
		c.FactsPerYear = 1
	}
	if c.Measures == 0 {
		c.Measures = 1
	}
	return c
}

// Workload is a generated schema with its evolution history.
type Workload struct {
	Schema  *core.Schema
	Applier *evolution.Applier
	Config  Config
	// Events counts evolution events by kind.
	Events map[string]int
}

// OrgDim is the generated dimension's ID.
const OrgDim core.DimID = "Org"

// StartYear is the first year of generated history.
const StartYear = 2000

// Generate builds the synthetic organization: an initial structure at
// StartYear, EvolutionsPerYear random events at each year boundary
// (reclassify, split, merge, create, delete — weighted toward the
// cheap ones, like real organizations), and FactsPerYear facts per
// active department per year.
func Generate(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	measures := make([]core.Measure, cfg.Measures)
	for i := range measures {
		measures[i] = core.Measure{Name: fmt.Sprintf("m%d", i), Agg: core.Sum}
	}
	s := core.NewSchema("synthetic", measures...)
	d := core.NewDimension(OrgDim, "Org")

	start := temporal.Year(StartYear)
	divisions := make([]core.MVID, cfg.Divisions)
	for i := range divisions {
		id := core.MVID(fmt.Sprintf("div-%d", i))
		divisions[i] = id
		if err := d.AddVersion(&core.MemberVersion{
			ID: id, Member: string(id), Level: "Division", Valid: temporal.Since(start),
		}); err != nil {
			return nil, err
		}
	}
	if err := s.AddDimension(d); err != nil {
		return nil, err
	}

	w := &Workload{Schema: s, Applier: evolution.NewApplier(s), Config: cfg, Events: map[string]int{}}
	active := make([]core.MVID, 0, cfg.Departments)
	nextID := 0
	newDept := func(at temporal.Instant, parent core.MVID) (core.MVID, error) {
		id := core.MVID(fmt.Sprintf("dept-%d", nextID))
		nextID++
		err := w.Applier.Apply(evolution.CreateMember(OrgDim, evolution.NewMember{
			ID: id, Name: string(id), Level: "Department", Parents: []core.MVID{parent},
		}, at)...)
		return id, err
	}
	for i := 0; i < cfg.Departments; i++ {
		id, err := newDept(start, divisions[r.Intn(len(divisions))])
		if err != nil {
			return nil, err
		}
		active = append(active, id)
	}

	removeActive := func(id core.MVID) {
		for i, a := range active {
			if a == id {
				active = append(active[:i], active[i+1:]...)
				return
			}
		}
	}
	parentOf := func(id core.MVID, at temporal.Instant) core.MVID {
		ps := d.ParentsAt(id, at)
		if len(ps) == 0 {
			return divisions[0]
		}
		return ps[0].ID
	}

	for yr := 1; yr < cfg.Years; yr++ {
		at := temporal.Year(StartYear + yr)
		before := at.Prev()
		for e := 0; e < cfg.EvolutionsPerYear; e++ {
			if len(active) == 0 {
				break
			}
			pick := active[r.Intn(len(active))]
			if mv := d.Version(pick); mv == nil || !mv.ValidAt(before) {
				continue // created at this same boundary; not evolvable yet
			}
			var err error
			switch ev := r.Intn(10); {
			case ev < 4: // reclassify
				oldP := parentOf(pick, before)
				newP := divisions[r.Intn(len(divisions))]
				if newP == oldP {
					continue
				}
				err = w.Applier.Apply(evolution.ReclassifyMember(OrgDim, pick, at,
					[]core.MVID{oldP}, []core.MVID{newP})...)
				w.Events["reclassify"]++
			case ev < 6: // split in two
				p := parentOf(pick, before)
				frac := 0.2 + 0.6*r.Float64()
				mk := func(weight float64) evolution.SplitTarget {
					id := core.MVID(fmt.Sprintf("dept-%d", nextID))
					nextID++
					active = append(active, id)
					return evolution.SplitTarget{
						Member:   evolution.NewMember{ID: id, Name: string(id), Level: "Department", Parents: []core.MVID{p}},
						Forward:  core.UniformMapping(cfg.Measures, core.Linear{K: weight}, core.ApproxMapping),
						Backward: core.UniformMapping(cfg.Measures, core.Identity, core.ExactMapping),
					}
				}
				err = w.Applier.Apply(evolution.Split(OrgDim, pick,
					[]evolution.SplitTarget{mk(frac), mk(1 - frac)}, at)...)
				removeActive(pick)
				w.Events["split"]++
			case ev < 8 && len(active) >= 2: // merge two
				other := active[r.Intn(len(active))]
				if other == pick {
					continue
				}
				if mv := d.Version(other); mv == nil || !mv.ValidAt(before) {
					continue
				}
				p := parentOf(pick, before)
				id := core.MVID(fmt.Sprintf("dept-%d", nextID))
				nextID++
				err = w.Applier.Apply(evolution.Merge(OrgDim, []evolution.MergeSource{
					{ID: pick,
						Forward:  core.UniformMapping(cfg.Measures, core.Identity, core.ExactMapping),
						Backward: core.UniformMapping(cfg.Measures, core.Linear{K: 0.5}, core.ApproxMapping)},
					{ID: other,
						Forward:  core.UniformMapping(cfg.Measures, core.Identity, core.ExactMapping),
						Backward: core.UniformMapping(cfg.Measures, core.Linear{K: 0.5}, core.ApproxMapping)},
				}, evolution.NewMember{ID: id, Name: string(id), Level: "Department", Parents: []core.MVID{p}}, at)...)
				removeActive(pick)
				removeActive(other)
				active = append(active, id)
				w.Events["merge"]++
			case ev < 9: // create
				var id core.MVID
				id, err = newDept(at, divisions[r.Intn(len(divisions))])
				active = append(active, id)
				w.Events["create"]++
			default: // delete
				if len(active) < 3 {
					continue
				}
				err = w.Applier.Apply(evolution.DeleteMember(OrgDim, pick, at)...)
				removeActive(pick)
				w.Events["delete"]++
			}
			if err != nil {
				return nil, err
			}
		}
	}

	// Facts: per year, per department active that year.
	for yr := 0; yr < cfg.Years; yr++ {
		at := temporal.Year(StartYear + yr)
		for _, mv := range d.LeavesAt(at) {
			for f := 0; f < cfg.FactsPerYear; f++ {
				t := at + temporal.Instant(f%12)
				if !mv.ValidAt(t) {
					continue
				}
				values := make([]float64, cfg.Measures)
				for k := range values {
					values[k] = float64(10 + r.Intn(200))
				}
				if err := s.InsertFact(core.Coords{mv.ID}, t, values...); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// MustGenerate is Generate panicking on error, for benchmarks.
func MustGenerate(cfg Config) *Workload {
	w, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return w
}
