package workload

import (
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func TestGenerateDefaults(t *testing.T) {
	w, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Schema
	if err := s.Validate(); err != nil {
		t.Fatalf("generated schema invalid: %v", err)
	}
	if s.Facts().Len() == 0 {
		t.Error("no facts generated")
	}
	if len(s.StructureVersions()) < 2 {
		t.Errorf("structure versions = %d; evolutions should create more than one", len(s.StructureVersions()))
	}
	total := 0
	for _, n := range w.Events {
		total += n
	}
	if total == 0 {
		t.Error("no evolution events fired")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 42, Years: 5, EvolutionsPerYear: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 42, Years: 5, EvolutionsPerYear: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schema.Facts().Len() != b.Schema.Facts().Len() {
		t.Error("same seed must generate identical fact counts")
	}
	if len(a.Applier.Log()) != len(b.Applier.Log()) {
		t.Error("same seed must generate identical evolution logs")
	}
	for i, e := range a.Applier.Log() {
		if b.Applier.Log()[i].Description != e.Description {
			t.Fatalf("log diverges at %d: %q vs %q", i, e.Description, b.Applier.Log()[i].Description)
		}
	}
	c, err := Generate(Config{Seed: 43, Years: 5, EvolutionsPerYear: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Applier.Log()) == len(a.Applier.Log()) && c.Schema.Facts().Len() == a.Schema.Facts().Len() {
		t.Log("different seeds produced same shape (possible but unlikely); not failing")
	}
}

// TestGeneratedSchemaAnswersAllModes: every generated mode must be
// queryable without error, and mass must be conserved across modes for
// the generated mapping functions (identity backward, weights summing
// to 1 forward).
func TestGeneratedSchemaAnswersAllModes(t *testing.T) {
	w := MustGenerate(Config{Seed: 7, Years: 4, EvolutionsPerYear: 2, Departments: 8})
	s := w.Schema
	for _, mode := range s.Modes() {
		res, err := s.Execute(core.Query{
			GroupBy: []core.GroupBy{{Dim: OrgDim, Level: "Division"}},
			Grain:   core.GrainYear,
			Mode:    mode,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("mode %v: empty result", mode)
		}
	}
}

func TestGenerateScales(t *testing.T) {
	w := MustGenerate(Config{Seed: 3, Departments: 40, Years: 8, EvolutionsPerYear: 4, FactsPerYear: 2})
	s := w.Schema
	if s.Facts().Len() < 300 {
		t.Errorf("large workload facts = %d", s.Facts().Len())
	}
	svs := s.StructureVersions()
	if len(svs) < 4 {
		t.Errorf("large workload versions = %d", len(svs))
	}
	// Structure versions partition history.
	for i := 1; i < len(svs); i++ {
		if !svs[i-1].Valid.Adjacent(svs[i].Valid) {
			t.Fatal("versions must be adjacent")
		}
	}
	if svs[0].Valid.Start != temporal.Year(StartYear) {
		t.Errorf("history starts at %v", svs[0].Valid.Start)
	}
}

// TestGenerateMultiMeasure exercises the two-measure path (the §5.2
// Turnover/Profit prototype shape) end to end.
func TestGenerateMultiMeasure(t *testing.T) {
	w := MustGenerate(Config{Seed: 21, Measures: 2, Years: 4, EvolutionsPerYear: 2})
	s := w.Schema
	if len(s.Measures()) != 2 {
		t.Fatalf("measures = %v", s.Measures())
	}
	for _, mode := range s.Modes() {
		res, err := s.Execute(core.Query{
			GroupBy: []core.GroupBy{{Dim: OrgDim, Level: "Department"}},
			Grain:   core.GrainYear,
			Mode:    mode,
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		for _, r := range res.Rows {
			if len(r.Values) != 2 || len(r.CFs) != 2 {
				t.Fatalf("row arity = %d/%d", len(r.Values), len(r.CFs))
			}
		}
	}
}
