package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// This file extends the evolving-organization generators with an
// operation generator for production-shaped load: TQL queries over the
// generated schema, fact batches at currently-valid leaf members, and
// evolution scripts that keep reorganizing the structure while the
// load runs. The generator is deterministic from its seed, so a
// recorded op stream (internal/bench's trace codec) can be reproduced
// bit-identically.

// Leaf is one currently-valid leaf member a fact can land on.
type Leaf struct {
	ID string
	// Since is the leaf's validity start; generated facts never predate
	// it, so they always pass core.InsertFact's validity check.
	Since temporal.Instant
}

// Surface describes the queryable and mutable surface of a served
// schema: everything the op generator needs to emit statements that
// the server will accept. It is built either directly from a schema
// (SurfaceOf) or from a live server's /schema response
// (bench.DiscoverSurface).
type Surface struct {
	// Dim is the primary dimension: the one evolution scripts mutate.
	Dim string
	// DimLeaves holds, per schema dimension in order, the valid leaf
	// members facts can be recorded at.
	DimLeaves [][]Leaf
	// Parents are currently-valid non-leaf members of Dim, the parent
	// pool for generated INSERTs and RECLASSIFYs.
	Parents []string
	// GroupLevels are the level names usable in a BY clause.
	GroupLevels []string
	// LeafLevel is the level generated members are created at.
	LeafLevel string
	// Measures are the measure names, in schema order.
	Measures []string
	// FirstYear and LastYear bound the generated WHERE ranges and
	// VERSION AT instants.
	FirstYear, LastYear int
}

// Validate reports whether the surface can drive all three op kinds.
func (s Surface) Validate() error {
	if s.Dim == "" {
		return fmt.Errorf("workload: surface has no dimension")
	}
	if len(s.Measures) == 0 {
		return fmt.Errorf("workload: surface has no measures")
	}
	if len(s.DimLeaves) == 0 {
		return fmt.Errorf("workload: surface has no dimensions to place facts in")
	}
	for i, leaves := range s.DimLeaves {
		if len(leaves) == 0 {
			return fmt.Errorf("workload: surface dimension %d has no valid leaf members", i)
		}
	}
	if len(s.Parents) == 0 {
		return fmt.Errorf("workload: surface has no valid non-leaf members to parent new ones")
	}
	if len(s.GroupLevels) == 0 {
		return fmt.Errorf("workload: surface has no levels to group by")
	}
	return nil
}

// SurfaceOf derives the surface from a schema directly (the in-process
// path; a remote server's surface is discovered over /schema instead).
func SurfaceOf(s *core.Schema) Surface {
	sf := Surface{FirstYear: -1}
	for _, m := range s.Measures() {
		sf.Measures = append(sf.Measures, m.Name)
	}
	levels := map[string]bool{}
	for di, d := range s.Dimensions() {
		if di == 0 {
			sf.Dim = string(d.ID)
		}
		var leaves []Leaf
		for _, mv := range d.Versions() {
			if mv.Valid.End != temporal.Now {
				continue // no longer valid: not a target for new data
			}
			if d.IsLeafVersion(mv.ID) {
				leaves = append(leaves, Leaf{ID: string(mv.ID), Since: mv.Valid.Start})
				if di == 0 && sf.LeafLevel == "" && mv.Level != "" {
					sf.LeafLevel = mv.Level
				}
			} else if di == 0 {
				sf.Parents = append(sf.Parents, string(mv.ID))
			}
			if di == 0 && mv.Level != "" {
				levels[mv.Level] = true
			}
			if y := mv.Valid.Start.YearOf(); mv.Valid.Start != temporal.Origin {
				if sf.FirstYear < 0 || y < sf.FirstYear {
					sf.FirstYear = y
				}
				if y > sf.LastYear {
					sf.LastYear = y
				}
			}
		}
		sortLeaves(leaves)
		sf.DimLeaves = append(sf.DimLeaves, leaves)
	}
	sort.Strings(sf.Parents)
	for l := range levels {
		sf.GroupLevels = append(sf.GroupLevels, l)
	}
	sort.Strings(sf.GroupLevels)
	if sf.FirstYear < 0 {
		sf.FirstYear = StartYear
	}
	if sf.LastYear < sf.FirstYear {
		sf.LastYear = sf.FirstYear
	}
	return sf
}

// sortLeaves keeps surface construction deterministic regardless of
// the map-iteration order of the underlying dimension.
func sortLeaves(leaves []Leaf) {
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].ID < leaves[j].ID })
}

// Fact is the wire form of one generated fact; its JSON shape matches
// the POST /facts body (store.FactRecord).
type Fact struct {
	Coords []string  `json:"coords"`
	Time   string    `json:"time"`
	Values []float64 `json:"values"`
}

// OpGen deterministically generates queries, fact batches and
// evolution scripts over a surface. It is not safe for concurrent use:
// the benchmark's single generator goroutine owns it, which is exactly
// what makes a recorded op stream reproducible.
type OpGen struct {
	r *rand.Rand
	s Surface
	// prefix namespaces generated member IDs so concurrent or repeated
	// runs against the same server never collide.
	prefix string
	nextID int
	// created tracks members this generator inserted, with their
	// current parent, so RECLASSIFY statements are well-formed.
	created []createdMember
	// clock is the instant the next evolution fires at; it starts after
	// the surface's recorded history and advances monthly, mirroring how
	// real organizations keep evolving under load.
	clock temporal.Instant
}

type createdMember struct {
	id     string
	parent string
}

// NewOpGen builds a generator over the surface. Two generators with
// the same seed, surface and prefix emit identical op streams.
func NewOpGen(seed int64, s Surface, prefix string) *OpGen {
	if prefix == "" {
		prefix = "bench"
	}
	return &OpGen{
		r:      rand.New(rand.NewSource(seed)),
		s:      s,
		prefix: prefix,
		clock:  temporal.Year(s.LastYear + 1),
	}
}

// Rand exposes the generator's seeded source so the caller's own
// draws (e.g. the benchmark's mix picker) stay on the same single
// deterministic stream.
func (g *OpGen) Rand() *rand.Rand { return g.r }

// Query emits one TQL statement: a SELECT over a random measure
// subset, grouped by a random level of the primary dimension and a
// random time grain, with an optional WHERE range and a random
// temporal mode of presentation — the paper's Q1/Q2 shapes, varied.
func (g *OpGen) Query() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case g.r.Intn(10) < 3:
		b.WriteString("*")
	default:
		b.WriteString(g.s.Measures[g.r.Intn(len(g.s.Measures))])
	}
	b.WriteString(" BY ")
	b.WriteString(g.s.Dim)
	b.WriteString(".")
	b.WriteString(g.s.GroupLevels[g.r.Intn(len(g.s.GroupLevels))])
	b.WriteString(", TIME.")
	switch r := g.r.Intn(20); {
	case r < 12:
		b.WriteString("YEAR")
	case r < 15:
		b.WriteString("QUARTER")
	case r < 18:
		b.WriteString("MONTH")
	default:
		b.WriteString("ALL")
	}
	if g.r.Intn(10) < 7 {
		span := g.s.LastYear - g.s.FirstYear + 1
		y1 := g.s.FirstYear + g.r.Intn(span)
		y2 := y1 + g.r.Intn(g.s.LastYear-y1+1)
		fmt.Fprintf(&b, " WHERE TIME BETWEEN %d AND %d", y1, y2)
	}
	switch r := g.r.Intn(20); {
	case r < 13:
		b.WriteString(" MODE tcm")
	case r < 18:
		span := g.s.LastYear - g.s.FirstYear + 1
		fmt.Fprintf(&b, " MODE VERSION AT %d", g.s.FirstYear+g.r.Intn(span))
	default:
		// no MODE clause: exercises the tcm default path
	}
	return b.String()
}

// FactBatch emits n facts at currently-valid leaf coordinates. Fact
// times start at the later of the leaf's validity start and the
// surface's last year, so every fact passes validity checks no matter
// how the structure evolved before it.
func (g *OpGen) FactBatch(n int) []Fact {
	if n <= 0 {
		n = 1
	}
	batch := make([]Fact, n)
	for i := range batch {
		coords := make([]string, len(g.s.DimLeaves))
		var t temporal.Instant
		for di, leaves := range g.s.DimLeaves {
			leaf := leaves[g.r.Intn(len(leaves))]
			coords[di] = leaf.ID
			if at := temporal.Max(leaf.Since, temporal.Year(g.s.LastYear)); at > t {
				t = at
			}
		}
		t += temporal.Instant(g.r.Intn(12)) // scatter within the year
		values := make([]float64, len(g.s.Measures))
		for k := range values {
			values[k] = float64(10 + g.r.Intn(200))
		}
		batch[i] = Fact{Coords: coords, Time: t.String(), Values: values}
	}
	return batch
}

// EvolveScript emits a one-statement evolution script: mostly INSERTs
// of fresh members (which commute, so concurrent clients cannot
// invalidate each other), with occasional RECLASSIFYs of members this
// generator created earlier. The evolution clock advances one month
// per statement.
func (g *OpGen) EvolveScript() string {
	at := g.clock
	g.clock++
	if len(g.created) > 0 && g.r.Intn(10) < 3 {
		i := g.r.Intn(len(g.created))
		m := &g.created[i]
		newParent := g.s.Parents[g.r.Intn(len(g.s.Parents))]
		if newParent != m.parent {
			line := fmt.Sprintf("RECLASSIFY %s %s AT %s FROM %s TO %s",
				g.s.Dim, m.id, at, m.parent, newParent)
			m.parent = newParent
			return line
		}
		// fall through to an INSERT when the reroll landed on the same
		// parent — emitting a no-op RECLASSIFY would be a server error
	}
	id := fmt.Sprintf("%s-%d", g.prefix, g.nextID)
	g.nextID++
	parent := g.s.Parents[g.r.Intn(len(g.s.Parents))]
	g.created = append(g.created, createdMember{id: id, parent: parent})
	level := g.s.LeafLevel
	if level == "" {
		level = "Department"
	}
	return fmt.Sprintf("INSERT %s %s %s LEVEL %s AT %s PARENTS %s",
		g.s.Dim, id, id, level, at, parent)
}
