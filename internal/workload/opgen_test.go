package workload

import (
	"context"
	"strings"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/temporal"
	"mvolap/internal/tql"
)

func testSurface(t *testing.T) (*Workload, Surface) {
	t.Helper()
	w, err := Generate(Config{Seed: 7, Years: 4, EvolutionsPerYear: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := SurfaceOf(w.Schema)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return w, s
}

func TestSurfaceOf(t *testing.T) {
	_, s := testSurface(t)
	if s.Dim != string(OrgDim) {
		t.Fatalf("dim = %q", s.Dim)
	}
	if s.FirstYear != StartYear {
		t.Fatalf("first year = %d, want %d", s.FirstYear, StartYear)
	}
	if s.LastYear < s.FirstYear || s.LastYear > StartYear+4 {
		t.Fatalf("last year = %d out of range", s.LastYear)
	}
	if s.LeafLevel != "Department" {
		t.Fatalf("leaf level = %q", s.LeafLevel)
	}
	if len(s.GroupLevels) != 2 { // Division, Department
		t.Fatalf("group levels = %v", s.GroupLevels)
	}
	for _, leaf := range s.DimLeaves[0] {
		if leaf.Since == temporal.Origin {
			t.Fatalf("leaf %s has no validity start", leaf.ID)
		}
	}
}

// TestOpGenDeterministic: two generators with the same seed and
// surface emit identical streams; a different seed diverges.
func TestOpGenDeterministic(t *testing.T) {
	_, s := testSurface(t)
	a, b := NewOpGen(42, s, ""), NewOpGen(42, s, "")
	c := NewOpGen(43, s, "")
	var diverged bool
	for i := 0; i < 200; i++ {
		qa, qb, qc := a.Query(), b.Query(), c.Query()
		if qa != qb {
			t.Fatalf("query %d diverged under the same seed:\n%s\n%s", i, qa, qb)
		}
		if qa != qc {
			diverged = true
		}
		ea, eb := a.EvolveScript(), b.EvolveScript()
		if ea != eb {
			t.Fatalf("evolve %d diverged under the same seed:\n%s\n%s", i, ea, eb)
		}
		fa, fb := a.FactBatch(3), b.FactBatch(3)
		for j := range fa {
			if fa[j].Time != fb[j].Time || fa[j].Coords[0] != fb[j].Coords[0] {
				t.Fatalf("fact %d/%d diverged under the same seed", i, j)
			}
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 generated identical query streams")
	}
}

// TestOpGenOpsApply: everything the generator emits is accepted by the
// engine it was generated for — queries parse and run, evolution
// scripts apply, and facts land on valid coordinates.
func TestOpGenOpsApply(t *testing.T) {
	w, s := testSurface(t)
	g := NewOpGen(1, s, "t")
	applier := w.Applier
	for i := 0; i < 50; i++ {
		q := g.Query()
		if _, err := tql.RunContext(context.Background(), w.Schema, q); err != nil {
			t.Fatalf("query %d %q: %v", i, q, err)
		}
		script := g.EvolveScript()
		ops, err := evolution.ParseScript(strings.NewReader(script), len(s.Measures))
		if err != nil {
			t.Fatalf("script %d %q: %v", i, script, err)
		}
		if err := applier.Apply(ops...); err != nil {
			t.Fatalf("apply %d %q: %v", i, script, err)
		}
		for _, f := range g.FactBatch(4) {
			at, err := temporal.ParseInstant(f.Time)
			if err != nil {
				t.Fatalf("fact time %q: %v", f.Time, err)
			}
			coords := make(core.Coords, len(f.Coords))
			for k, c := range f.Coords {
				coords[k] = core.MVID(c)
			}
			if err := w.Schema.InsertFact(coords, at, f.Values...); err != nil {
				t.Fatalf("fact %d: %v", i, err)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Divisions: -1},
		{Departments: -2},
		{Years: -1},
		{EvolutionsPerYear: -3},
		{FactsPerYear: -1},
		{Measures: -5},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("Generate(%+v) accepted a negative field", cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if _, err := Generate(Config{Seed: 1}); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}
