package tql

import (
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func caseSchema(t testing.TB) *core.Schema {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseQ1(t *testing.T) {
	st, err := Parse("SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindSelect || len(st.Measures) != 1 || st.Measures[0] != "Amount" {
		t.Fatalf("statement = %+v", st)
	}
	if len(st.Axes) != 2 || st.Axes[0].Dim != "Org" || st.Axes[0].Level != "Division" || !st.Axes[1].Time {
		t.Fatalf("axes = %+v", st.Axes)
	}
	if !st.HasRange || !st.Range.Equal(temporal.Between(temporal.Year(2001), temporal.EndOfYear(2002))) {
		t.Errorf("range = %v", st.Range)
	}
	if !st.ModeTCM || st.DefaultMode {
		t.Errorf("mode = %+v", st)
	}
}

func TestParseVariants(t *testing.T) {
	cases := []string{
		"SELECT * BY Org.Department, TIME.MONTH",
		"SELECT Amount BY Org.Division, TIME.QUARTER MODE V2",
		"SELECT Amount BY Org.Division, TIME.ALL MODE VERSION AT 2002",
		"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 06/2001 AND 12/2002",
		"SELECT Amount, Amount BY Org.Division, TIME.YEAR",
		"MODES",
		"QUALITY SELECT Amount BY Org.Department, TIME.YEAR",
	}
	for _, in := range cases {
		if _, err := Parse(in); err != nil {
			t.Errorf("Parse(%q): %v", in, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"DROP TABLE x",
		"SELECT",
		"SELECT BY Org.Division",
		"SELECT Amount",
		"SELECT Amount BY",
		"SELECT Amount BY Org",
		"SELECT Amount BY Org.",
		"SELECT Amount BY TIME.DECADE",
		"SELECT Amount BY TIME.YEAR, TIME.MONTH",
		"SELECT Amount BY Org.Division WHERE",
		"SELECT Amount BY Org.Division WHERE TIME",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN 2001",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN 2001 AND",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN 2002 AND 2001",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN x AND y",
		"SELECT Amount BY Org.Division MODE",
		"SELECT Amount BY Org.Division MODE VERSION",
		"SELECT Amount BY Org.Division MODE VERSION AT",
		"SELECT Amount BY Org.Division trailing",
		"MODES trailing",
		"SELECT Amount BY Org.Division WHERE TIME BETWEEN 'unterminated",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) must fail", in)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	s := caseSchema(t)
	cases := []string{
		"SELECT Amount BY Nope.Division, TIME.YEAR",
		"SELECT Amount BY Org.Division, TIME.YEAR MODE V9",
		"SELECT Amount BY Org.Division, TIME.YEAR MODE VERSION AT 1980",
	}
	for _, in := range cases {
		st, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if _, err := st.Plan(s); err == nil {
			t.Errorf("Plan(%q) must fail", in)
		}
	}
	// Unknown measures fail at execution.
	if _, err := Run(s, "SELECT Nope BY Org.Division, TIME.YEAR"); err == nil {
		t.Error("unknown measure must fail")
	}
	st := &Statement{Kind: KindModes}
	if _, err := st.Plan(s); err == nil {
		t.Error("MODES has no plan")
	}
}

// TestRunQ1AllModes reproduces Tables 4, 5 and 6 through the query
// language.
func TestRunQ1AllModes(t *testing.T) {
	s := caseSchema(t)
	get := func(stmt string) map[string]float64 {
		t.Helper()
		out, err := Run(s, stmt)
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]float64{}
		for _, r := range out.Result.Rows {
			m[r.TimeKey+"/"+r.Groups[0]] = r.Values[0]
		}
		return m
	}
	q1 := "SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE "
	tcm := get(q1 + "tcm")
	if tcm["2001/Sales"] != 150 || tcm["2002/R&D"] != 150 {
		t.Errorf("Table 4 via TQL = %v", tcm)
	}
	v1 := get(q1 + "VERSION AT 2001")
	if v1["2002/Sales"] != 200 || v1["2002/R&D"] != 50 {
		t.Errorf("Table 5 via TQL = %v", v1)
	}
	v2 := get(q1 + "V2")
	if v2["2001/Sales"] != 100 || v2["2001/R&D"] != 150 {
		t.Errorf("Table 6 via TQL = %v", v2)
	}
}

func TestRunDefaultsToTCM(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "SELECT Amount BY Org.Division, TIME.YEAR")
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Mode.Kind != core.TCMKind {
		t.Errorf("default mode = %v", out.Result.Mode)
	}
	if out.Quality != 1 {
		t.Errorf("tcm quality = %v", out.Quality)
	}
}

func TestRunModes(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "MODES")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Modes) != 4 {
		t.Fatalf("modes = %v", out.Modes)
	}
	text := Render(out)
	if !strings.Contains(text, "tcm") || !strings.Contains(text, "V3 [01/2003 ; Now]") {
		t.Errorf("rendered modes:\n%s", text)
	}
}

func TestRunQuality(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "QUALITY SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ranking) != 4 {
		t.Fatalf("ranking = %v", out.Ranking)
	}
	if out.Ranking[0].Mode.Kind != core.TCMKind || out.Quality != 1 {
		t.Errorf("best mode = %v Q=%v", out.Ranking[0].Mode, out.Quality)
	}
	text := Render(out)
	if !strings.Contains(text, "tcm") || !strings.Contains(text, "Q=1.000") {
		t.Errorf("rendered ranking:\n%s", text)
	}
	// QUALITY with a broken plan propagates the error.
	if _, err := Run(s, "QUALITY SELECT Amount BY Nope.X, TIME.YEAR"); err == nil {
		t.Error("broken QUALITY plan must fail")
	}
}

func TestRenderResult(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE V2")
	if err != nil {
		t.Fatal(err)
	}
	text := Render(out)
	if !strings.Contains(text, "200 (em)") {
		t.Errorf("rendered result must show the merged em cell:\n%s", text)
	}
	if !strings.Contains(text, "mode=V2") {
		t.Errorf("rendered result must echo the mode:\n%s", text)
	}
}

func TestExplainStatement(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "EXPLAIN Dpt.Jones_id AT 2003 MODE V2")
	if err != nil {
		t.Fatal(err)
	}
	text := Render(out)
	if !strings.Contains(text, "Dpt.Bill") || !strings.Contains(text, "Dpt.Paul") {
		t.Errorf("lineage must name both merged sources:\n%s", text)
	}
	if !strings.Contains(text, "[em]") {
		t.Errorf("lineage must carry the em confidence:\n%s", text)
	}
	// tcm lineage of a plain cell.
	out, err = Run(s, "EXPLAIN Dpt.Smith_id AT 2002")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Lineage, "[sd]") {
		t.Errorf("tcm lineage:\n%s", out.Lineage)
	}
	// A cell nothing feeds.
	out, err = Run(s, "EXPLAIN Dpt.Smith_id AT 2010")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Lineage, "no source data") {
		t.Errorf("empty lineage:\n%s", out.Lineage)
	}
}

func TestExplainParseErrors(t *testing.T) {
	cases := []string{
		"EXPLAIN",
		"EXPLAIN ,",
		"EXPLAIN x",
		"EXPLAIN x AT",
		"EXPLAIN x AT junk",
		"EXPLAIN x AT 2003 MODE",
		"EXPLAIN x AT 2003 MODE VERSION",
		"EXPLAIN x AT 2003 trailing trailing",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) must fail", in)
		}
	}
	s := caseSchema(t)
	if _, err := Run(s, "EXPLAIN Dpt.Jones_id AT 2003 MODE V9"); err == nil {
		t.Error("unknown version must fail at run")
	}
	// Wrong coordinate arity fails in metadata.Explain.
	if _, err := Run(s, "EXPLAIN a, b AT 2003 MODE V2"); err == nil {
		t.Error("coordinate arity must fail")
	}
}

func TestFilterConditions(t *testing.T) {
	s := caseSchema(t)
	out, err := Run(s, "SELECT Amount BY Org.Department, TIME.YEAR "+
		"WHERE TIME BETWEEN 2001 AND 2003 AND Org IN Sales MODE tcm")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Result.Rows {
		if r.Groups[0] == "Dpt.Brian" {
			t.Errorf("Brian must be filtered out: %+v", r)
		}
	}
	// Multiple names, quoted and dotted, and filter-only WHERE.
	out, err = Run(s, "SELECT Amount BY Org.Department, TIME.YEAR "+
		"WHERE Org IN 'Dpt.Smith', Dpt.Brian")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range out.Result.Rows {
		seen[r.Groups[0]] = true
	}
	if !seen["Dpt.Smith"] || !seen["Dpt.Brian"] || len(seen) != 2 {
		t.Errorf("diced members = %v", seen)
	}
}

func TestFilterParseErrors(t *testing.T) {
	cases := []string{
		"SELECT Amount BY Org.Department WHERE Org",
		"SELECT Amount BY Org.Department WHERE Org IN",
		"SELECT Amount BY Org.Department WHERE Org IN ,",
		"SELECT Amount BY Org.Department WHERE TIME BETWEEN 2001 AND 2002 AND",
		"SELECT Amount BY Org.Department WHERE TIME BETWEEN 2001 AND 2002 AND TIME BETWEEN 2001 AND 2002",
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) must fail", in)
		}
	}
	s := caseSchema(t)
	if _, err := Run(s, "SELECT Amount BY Org.Department, TIME.YEAR WHERE Nope IN x"); err == nil {
		t.Error("unknown filter dimension must fail at plan")
	}
}
