// Package tql implements a small temporal query language in the spirit
// of the TOLAP language of Mendelzon & Vaisman that the paper builds
// on: the user states what to aggregate, how to group it, and — the
// paper's key contribution — in which Temporal Mode of Presentation the
// data should be presented.
//
// Grammar:
//
//	query   := SELECT measures BY axes [WHERE time] [MODE mode]
//	         | MODES
//	         | QUALITY SELECT ... (ranks all modes by quality factor)
//	         | EXPLAIN id [, id]... AT instant [MODE mode]  (value lineage, §5.2)
//	measures:= '*' | name (',' name)*
//	axes    := axis (',' axis)*
//	axis    := dim '.' level | TIME '.' (YEAR|QUARTER|MONTH|ALL)
//	time    := cond (AND cond)*
//	cond    := TIME BETWEEN instant AND instant | dim IN name (',' name)*
//	instant := year | 'MM/YYYY'
//	mode    := TCM | Vn | VERSION AT instant
//
// Examples (the paper's Q1 and Q2):
//
//	SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm
//	SELECT Amount BY Org.Department, TIME.YEAR WHERE TIME BETWEEN 2002 AND 2003 MODE VERSION AT 2002
package tql

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"mvolap/internal/core"
	"mvolap/internal/metadata"
	"mvolap/internal/obs"
	"mvolap/internal/quality"
	"mvolap/internal/temporal"
)

// Statement is a parsed TQL statement.
type Statement struct {
	Kind StatementKind
	// Select fields (valid for KindSelect and KindQuality).
	Measures []string // empty means all
	Axes     []Axis
	Grain    core.TimeGrain
	HasRange bool
	Range    temporal.Interval
	// Mode selection: exactly one of the following.
	ModeTCM     bool
	ModeID      string           // "V2"
	ModeAt      temporal.Instant // VERSION AT …
	HasModeAt   bool
	HasModeID   bool
	DefaultMode bool // no MODE clause: defaults to tcm
	// Filters are the WHERE <dim> IN (...) dice conditions.
	Filters []Filter
	// Explain fields (valid for KindExplain).
	ExplainCoords []core.MVID
	ExplainAt     temporal.Instant
}

// Filter is one dice condition: a dimension restricted to members by
// display name.
type Filter struct {
	Dim     core.DimID
	Members []string
}

// StatementKind distinguishes the statement forms.
type StatementKind uint8

// The statement kinds.
const (
	KindSelect StatementKind = iota
	KindModes
	KindQuality
	KindExplain
)

// Axis is one BY item.
type Axis struct {
	Dim   core.DimID
	Level string
	Time  bool // a TIME axis; Level then names the grain
}

// Parse parses a TQL statement.
func Parse(input string) (*Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	return parseTokens(toks)
}

// parseTokens parses a lexed token stream; split from Parse so the
// traced execution path can time the lex and parse stages separately.
func parseTokens(toks []token) (*Statement, error) {
	p := &parser{toks: toks}
	switch {
	case p.kw("MODES"):
		if !p.eof() {
			return nil, fmt.Errorf("tql: trailing input after MODES")
		}
		return &Statement{Kind: KindModes}, nil
	case p.kw("QUALITY"):
		st, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Kind = KindQuality
		return st, nil
	case p.kw("EXPLAIN"):
		return p.parseExplain()
	default:
		return p.parseSelect()
	}
}

type token struct {
	text  string
	punct bool
}

func lex(s string) ([]token, error) {
	var out []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ',' || c == '.' || c == '*':
			out = append(out, token{string(c), true})
			i++
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("tql: unterminated quoted token")
			}
			out = append(out, token{s[i+1 : j], false})
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\n\r,.*'", rune(s[j])) {
				j++
			}
			out = append(out, token{s[i:j], false})
			i = j
		}
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.eof() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("tql: unexpected end of input")
	}
	p.pos++
	return t, nil
}

func (p *parser) kw(s string) bool {
	t, ok := p.peek()
	if ok && !t.punct && strings.EqualFold(t.text, s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) punct(s string) bool {
	t, ok := p.peek()
	if ok && t.punct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseSelect() (*Statement, error) {
	if !p.kw("SELECT") {
		return nil, fmt.Errorf("tql: expected SELECT")
	}
	st := &Statement{Kind: KindSelect, Grain: core.GrainYear, DefaultMode: true, ModeTCM: true}
	// Measures.
	if p.punct("*") {
		// all measures
	} else {
		for {
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			if t.punct {
				return nil, fmt.Errorf("tql: expected measure name, got %q", t.text)
			}
			st.Measures = append(st.Measures, t.text)
			if !p.punct(",") {
				break
			}
		}
	}
	if !p.kw("BY") {
		return nil, fmt.Errorf("tql: expected BY")
	}
	timeSeen := false
	for {
		dimTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if dimTok.punct {
			return nil, fmt.Errorf("tql: expected axis, got %q", dimTok.text)
		}
		if !p.punct(".") {
			return nil, fmt.Errorf("tql: axis %q needs a level (dim.Level)", dimTok.text)
		}
		lvlTok, err := p.next()
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(dimTok.text, "TIME") {
			if timeSeen {
				return nil, fmt.Errorf("tql: duplicate TIME axis")
			}
			timeSeen = true
			switch strings.ToUpper(lvlTok.text) {
			case "YEAR":
				st.Grain = core.GrainYear
			case "QUARTER":
				st.Grain = core.GrainQuarter
			case "MONTH":
				st.Grain = core.GrainMonth
			case "ALL":
				st.Grain = core.GrainAll
			default:
				return nil, fmt.Errorf("tql: unknown TIME level %q", lvlTok.text)
			}
			st.Axes = append(st.Axes, Axis{Time: true, Level: strings.ToUpper(lvlTok.text)})
		} else {
			st.Axes = append(st.Axes, Axis{Dim: core.DimID(dimTok.text), Level: lvlTok.text})
		}
		if !p.punct(",") {
			break
		}
	}
	if p.kw("WHERE") {
		for {
			if p.kw("TIME") {
				if st.HasRange {
					return nil, fmt.Errorf("tql: duplicate TIME condition")
				}
				if !p.kw("BETWEEN") {
					return nil, fmt.Errorf("tql: expected BETWEEN after TIME")
				}
				from, err := p.parseInstant(false)
				if err != nil {
					return nil, err
				}
				if !p.kw("AND") {
					return nil, fmt.Errorf("tql: expected AND in TIME BETWEEN")
				}
				to, err := p.parseInstant(true)
				if err != nil {
					return nil, err
				}
				st.HasRange = true
				st.Range = temporal.Between(from, to)
				if st.Range.Empty() {
					return nil, fmt.Errorf("tql: empty time range %v", st.Range)
				}
			} else {
				dimTok, err := p.next()
				if err != nil {
					return nil, err
				}
				if dimTok.punct {
					return nil, fmt.Errorf("tql: expected condition, got %q", dimTok.text)
				}
				if !p.kw("IN") {
					return nil, fmt.Errorf("tql: expected IN after %q", dimTok.text)
				}
				f := Filter{Dim: core.DimID(dimTok.text)}
				for {
					name, err := p.dottedName()
					if err != nil {
						return nil, err
					}
					f.Members = append(f.Members, name)
					if !p.punct(",") {
						break
					}
				}
				st.Filters = append(st.Filters, f)
			}
			if !p.kw("AND") {
				break
			}
		}
	}
	if p.kw("MODE") {
		st.DefaultMode = false
		st.ModeTCM = false
		switch {
		case p.kw("TCM"):
			st.ModeTCM = true
		case p.kw("VERSION"):
			if !p.kw("AT") {
				return nil, fmt.Errorf("tql: expected AT after VERSION")
			}
			at, err := p.parseInstant(false)
			if err != nil {
				return nil, err
			}
			st.ModeAt = at
			st.HasModeAt = true
		default:
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			st.ModeID = t.text
			st.HasModeID = true
		}
	}
	if !p.eof() {
		t, _ := p.peek()
		return nil, fmt.Errorf("tql: trailing input at %q", t.text)
	}
	return st, nil
}

func (p *parser) parseExplain() (*Statement, error) {
	st := &Statement{Kind: KindExplain, DefaultMode: true, ModeTCM: true}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.punct {
			return nil, fmt.Errorf("tql: expected member version ID, got %q", t.text)
		}
		p.pos-- // re-read through dottedName
		id, err := p.dottedName()
		if err != nil {
			return nil, err
		}
		st.ExplainCoords = append(st.ExplainCoords, core.MVID(id))
		if !p.punct(",") {
			break
		}
	}
	if !p.kw("AT") {
		return nil, fmt.Errorf("tql: expected AT in EXPLAIN")
	}
	at, err := p.parseInstant(false)
	if err != nil {
		return nil, err
	}
	st.ExplainAt = at
	if p.kw("MODE") {
		st.DefaultMode = false
		st.ModeTCM = false
		switch {
		case p.kw("TCM"):
			st.ModeTCM = true
		case p.kw("VERSION"):
			if !p.kw("AT") {
				return nil, fmt.Errorf("tql: expected AT after VERSION")
			}
			v, err := p.parseInstant(false)
			if err != nil {
				return nil, err
			}
			st.ModeAt = v
			st.HasModeAt = true
		default:
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			st.ModeID = t.text
			st.HasModeID = true
		}
	}
	if !p.eof() {
		t, _ := p.peek()
		return nil, fmt.Errorf("tql: trailing input at %q", t.text)
	}
	return st, nil
}

// dottedName reads a name that may contain dots (which the lexer
// splits for the dim.Level syntax) and rejoins them.
func (p *parser) dottedName() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.punct {
		return "", fmt.Errorf("tql: expected name, got %q", t.text)
	}
	name := t.text
	for p.punct(".") {
		nt, err := p.next()
		if err != nil {
			return "", err
		}
		if nt.punct {
			return "", fmt.Errorf("tql: bad name around %q", name)
		}
		name += "." + nt.text
	}
	return name, nil
}

// parseInstant accepts "2001" (start or end of year depending on
// endOfRange) or "MM/YYYY".
func (p *parser) parseInstant(endOfRange bool) (temporal.Instant, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	if strings.Contains(t.text, "/") {
		return temporal.ParseInstant(t.text)
	}
	yr, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("tql: bad instant %q", t.text)
	}
	if endOfRange {
		return temporal.EndOfYear(yr), nil
	}
	return temporal.Year(yr), nil
}

// Plan turns a parsed SELECT into a core query against the schema.
func (st *Statement) Plan(s *core.Schema) (core.Query, error) {
	if st.Kind == KindModes {
		return core.Query{}, fmt.Errorf("tql: MODES has no query plan")
	}
	q := core.Query{
		Measures: st.Measures,
		Grain:    st.Grain,
	}
	if st.HasRange {
		q.Range = st.Range
	}
	for _, f := range st.Filters {
		if s.Dimension(f.Dim) == nil {
			return core.Query{}, fmt.Errorf("tql: unknown dimension %q in filter", f.Dim)
		}
		q.Filters = append(q.Filters, core.Filter{Dim: f.Dim, Members: f.Members})
	}
	for _, ax := range st.Axes {
		if ax.Time {
			continue
		}
		if s.Dimension(ax.Dim) == nil {
			return core.Query{}, fmt.Errorf("tql: unknown dimension %q", ax.Dim)
		}
		q.GroupBy = append(q.GroupBy, core.GroupBy{Dim: ax.Dim, Level: ax.Level})
	}
	switch {
	case st.ModeTCM:
		q.Mode = core.TCM()
	case st.HasModeID:
		sv := s.VersionByID(st.ModeID)
		if sv == nil {
			return core.Query{}, fmt.Errorf("tql: unknown structure version %q", st.ModeID)
		}
		q.Mode = core.InVersion(sv)
	case st.HasModeAt:
		sv := s.VersionAt(st.ModeAt)
		if sv == nil {
			return core.Query{}, fmt.Errorf("tql: no structure version at %s", st.ModeAt)
		}
		q.Mode = core.InVersion(sv)
	}
	return q, nil
}

// resolveMode maps the statement's mode clause onto the schema.
func (st *Statement) resolveMode(s *core.Schema) (core.Mode, error) {
	switch {
	case st.ModeTCM:
		return core.TCM(), nil
	case st.HasModeID:
		sv := s.VersionByID(st.ModeID)
		if sv == nil {
			return core.Mode{}, fmt.Errorf("tql: unknown structure version %q", st.ModeID)
		}
		return core.InVersion(sv), nil
	case st.HasModeAt:
		sv := s.VersionAt(st.ModeAt)
		if sv == nil {
			return core.Mode{}, fmt.Errorf("tql: no structure version at %s", st.ModeAt)
		}
		return core.InVersion(sv), nil
	}
	return core.TCM(), nil
}

// Output is the result of running a TQL statement.
type Output struct {
	// Result is set for SELECT.
	Result *core.Result
	// Quality is set for SELECT (the Q factor of the result under
	// default weights) and for QUALITY rankings.
	Quality float64
	// Ranking is set for QUALITY.
	Ranking []quality.ModeQuality
	// Modes is set for MODES.
	Modes []core.Mode
	// Lineage is set for EXPLAIN: the §5.2 provenance of the cell,
	// already rendered.
	Lineage string

	// rendered holds a serving tier's encoded form of this output; see
	// RenderOnce. It rides along with result-cache entries, so a cache
	// hit skips response encoding as well as the scan.
	rendered atomic.Pointer[[]byte]
}

// RenderOnce returns the output's cached encoded form, invoking render
// to produce it on first use. Outputs are frozen once built, so any
// deterministic rendering is computed at most once per output (modulo a
// benign race) no matter how many times the result cache serves it.
func (o *Output) RenderOnce(render func() []byte) []byte {
	if b := o.rendered.Load(); b != nil {
		return *b
	}
	b := render()
	o.rendered.Store(&b)
	return b
}

// Run executes a TQL statement against the schema using the default
// §5.2 confidence weights.
func Run(s *core.Schema, input string) (*Output, error) {
	return RunWithContext(context.Background(), s, input, quality.DefaultWeights())
}

// RunContext is Run with cancellation and tracing: ctx cancellation
// (client disconnect, per-request deadline) stops materialization and
// aggregation promptly, and an obs trace on ctx records per-stage
// spans (lex, parse, plan, materialize, aggregate, …).
func RunContext(ctx context.Context, s *core.Schema, input string) (*Output, error) {
	return RunWithContext(ctx, s, input, quality.DefaultWeights())
}

// RunWith executes a TQL statement with user-pondered confidence
// weights (the pds function of §5.2), which drive both per-result
// quality factors and QUALITY rankings.
func RunWith(s *core.Schema, input string, w quality.Weights) (*Output, error) {
	return RunWithContext(context.Background(), s, input, w)
}

// RunWithContext is RunWith with cancellation and tracing; see
// RunContext for the semantics.
func RunWithContext(ctx context.Context, s *core.Schema, input string, w quality.Weights) (*Output, error) {
	return RunCachedContext(ctx, s, input, w, nil)
}

// RunCachedContext is RunWithContext backed by a result cache: SELECT
// statements probe the cache under a structure-aware key (canonical
// statement text + resolved mode + structural signature + weights),
// validated against the serving schema's swap identity, and hits
// return the frozen cached output with zero scan, recorded as a
// "query_cache" span. A nil cache disables caching. Cached outputs are
// shared — callers must not mutate them.
func RunCachedContext(ctx context.Context, s *core.Schema, input string, w quality.Weights, cache *ResultCache) (*Output, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	_, lexSpan := obs.StartSpan(ctx, "lex")
	toks, err := lex(input)
	lexSpan.SetAttr("tokens", len(toks))
	lexSpan.End()
	if err != nil {
		return nil, err
	}
	_, parseSpan := obs.StartSpan(ctx, "parse")
	st, err := parseTokens(toks)
	parseSpan.End()
	if err != nil {
		return nil, err
	}
	switch st.Kind {
	case KindModes:
		return &Output{Modes: s.Modes()}, nil
	case KindExplain:
		_, sp := obs.StartSpan(ctx, "explain")
		defer sp.End()
		mode, err := st.resolveMode(s)
		if err != nil {
			return nil, err
		}
		steps, err := metadata.Explain(s, mode, core.Coords(st.ExplainCoords), st.ExplainAt)
		if err != nil {
			return nil, err
		}
		text := metadata.RenderLineage(s, steps)
		if text == "" {
			text = "no source data feeds this cell\n"
		}
		return &Output{Lineage: text}, nil
	case KindQuality:
		q, err := planSpanned(ctx, st, s)
		if err != nil {
			return nil, err
		}
		_, sp := obs.StartSpan(ctx, "rank")
		ranking, err := quality.RankModes(s, q, w)
		sp.SetAttr("modes", len(ranking))
		sp.End()
		if err != nil {
			return nil, err
		}
		out := &Output{Ranking: ranking}
		if len(ranking) > 0 {
			out.Quality = ranking[0].Quality
		}
		return out, nil
	default:
		q, err := planSpanned(ctx, st, s)
		if err != nil {
			return nil, err
		}
		var key string
		if cache != nil {
			_, sp := obs.StartSpan(ctx, "query_cache")
			key = cacheKey(st, q.Mode, w)
			out, ok := cache.get(key, s.SwapID())
			sp.SetAttr("hit", ok)
			sp.End()
			if ok {
				metCacheHits.Inc()
				return out, nil
			}
			metCacheMisses.Inc()
		}
		res, err := s.ExecuteContext(ctx, q)
		if err != nil {
			return nil, err
		}
		out := &Output{Result: res, Quality: quality.Of(res, w)}
		if cache != nil {
			// The effective range mirrors the executor: a statement
			// without WHERE TIME scans everything.
			rng := q.Range
			if rng == (temporal.Interval{}) {
				rng = temporal.Always
			}
			cache.put(key, s.SwapID(), rng, out)
		}
		return out, nil
	}
}

// planSpanned wraps Statement.Plan in a "plan" span.
func planSpanned(ctx context.Context, st *Statement, s *core.Schema) (core.Query, error) {
	_, sp := obs.StartSpan(ctx, "plan")
	defer sp.End()
	q, err := st.Plan(s)
	if err == nil {
		sp.SetAttr("mode", q.Mode.String())
	}
	return q, err
}

// Render renders an output as text: a result table with confidence
// codes and quality, a mode list, or a quality ranking.
func Render(out *Output) string {
	var b strings.Builder
	switch {
	case out.Lineage != "":
		b.WriteString(out.Lineage)
	case out.Modes != nil:
		b.WriteString("temporal modes of presentation:\n")
		for _, m := range out.Modes {
			if m.Kind == core.VersionKind {
				fmt.Fprintf(&b, "  %s %s\n", m.Version.ID, m.Version.Valid)
			} else {
				b.WriteString("  tcm (temporally consistent)\n")
			}
		}
	case out.Ranking != nil:
		b.WriteString("mode ranking by quality factor:\n")
		for _, r := range out.Ranking {
			fmt.Fprintf(&b, "  %-4s Q=%.3f\n", r.Mode, r.Quality)
		}
	case out.Result != nil:
		res := out.Result
		b.WriteString("time")
		for _, g := range res.GroupNames {
			b.WriteString(" | " + g)
		}
		for _, m := range res.MeasureNames {
			b.WriteString(" | " + m)
		}
		b.WriteString("\n")
		for _, r := range res.Rows {
			b.WriteString(r.TimeKey)
			for _, g := range r.Groups {
				b.WriteString(" | " + g)
			}
			for i := range res.MeasureNames {
				fmt.Fprintf(&b, " | %s (%s)", core.FormatValue(r.Values[i]), r.CFs[i])
			}
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "mode=%s quality=%.3f\n", res.Mode, out.Quality)
	}
	return b.String()
}
