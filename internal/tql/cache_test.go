package tql

import (
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func y(n int) temporal.Instant { return temporal.Year(n) }

// TestCacheRetargetFactsWindow pins the surgical invalidation routing:
// a facts batch with a known time window drops exactly the entries
// whose effective range overlaps it and revalidates the rest onto the
// new swap identity.
func TestCacheRetargetFactsWindow(t *testing.T) {
	c := NewResultCache(8)
	oOld, oHot, oAlways := &Output{}, &Output{}, &Output{}
	c.put("old", 1, temporal.Between(y(2001), y(2002)), oOld)
	c.put("hot", 1, temporal.Between(y(2004), y(2006)), oHot)
	c.put("always", 1, temporal.Always, oAlways)

	delta := core.Delta{
		FactsReplaced:    true,
		FactsWindow:      temporal.Between(y(2005), y(2005)),
		FactsWindowKnown: true,
	}
	dropped := c.Invalidate(1, 2, delta)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (overlapping + Always)", dropped)
	}
	if out, ok := c.get("old", 2); !ok || out != oOld {
		t.Fatal("disjoint-range entry was not revalidated to the new swap identity")
	}
	if _, ok := c.get("hot", 2); ok {
		t.Fatal("entry overlapping the facts window survived")
	}
	if _, ok := c.get("always", 2); ok {
		t.Fatal("unbounded-range entry survived a facts mutation")
	}
}

// TestCacheFactsUnknownWindowDropsAll: a facts mutation whose window
// could not be established must drop everything.
func TestCacheFactsUnknownWindowDropsAll(t *testing.T) {
	c := NewResultCache(8)
	c.put("k", 1, temporal.Between(y(2001), y(2001)), &Output{})
	if d := c.Invalidate(1, 2, core.Delta{FactsReplaced: true}); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if _, ok := c.get("k", 2); ok {
		t.Fatal("entry survived a facts mutation with unknown window")
	}
}

// TestCacheAdditiveStructureRetainsAll: a purely additive structural
// change (fresh member, upward edges only) retains every entry; a
// non-additive one drops them all.
func TestCacheAdditiveStructureRetainsAll(t *testing.T) {
	c := NewResultCache(8)
	o := &Output{}
	c.put("k", 1, temporal.Always, o)
	d := c.Invalidate(1, 2, core.Delta{StructureChanged: true, StructureAdditive: true})
	if d != 0 {
		t.Fatalf("dropped = %d, want 0 on additive evolve", d)
	}
	if out, ok := c.get("k", 2); !ok || out != o {
		t.Fatal("entry was not retained across an additive evolve")
	}
	if d := c.Invalidate(2, 3, core.Delta{StructureChanged: true}); d != 1 {
		t.Fatalf("dropped = %d, want 1 on non-additive evolve", d)
	}
	if _, ok := c.get("k", 3); ok {
		t.Fatal("entry survived a non-additive structural change")
	}
}

// TestCacheMappingsChangeDropsAll: mapping-set changes reroute version
// modes globally; nothing may survive, additive or not.
func TestCacheMappingsChangeDropsAll(t *testing.T) {
	c := NewResultCache(8)
	c.put("k", 1, temporal.Between(y(2001), y(2001)), &Output{})
	delta := core.Delta{MappingsChanged: true, StructureChanged: true, StructureAdditive: true}
	if d := c.Invalidate(1, 2, delta); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if _, ok := c.get("k", 2); ok {
		t.Fatal("entry survived a mapping change")
	}
}

// TestCacheStalePutNeverRevalidated is the generation-safety property:
// a put computed against generation N that lands after the N→N+1 swap
// must not be revalidated by the N+1→N+2 reconciliation — it was never
// reconciled against the N→N+1 mutation.
func TestCacheStalePutNeverRevalidated(t *testing.T) {
	c := NewResultCache(8)
	// Swap 1→2 happens first; the laggard put from generation 1 lands
	// after it.
	c.Invalidate(1, 2, core.Delta{FactsReplaced: true, FactsWindow: temporal.Between(y(2005), y(2005)), FactsWindowKnown: true})
	c.put("laggard", 1, temporal.Between(y(2001), y(2001)), &Output{})
	// The 2→3 reconciliation has a window disjoint from the entry's
	// range, but the entry is from generation 1, not 2: it must drop.
	c.Invalidate(2, 3, core.Delta{FactsReplaced: true, FactsWindow: temporal.Between(y(2006), y(2006)), FactsWindowKnown: true})
	if _, ok := c.get("laggard", 3); ok {
		t.Fatal("stale put from an older generation was revalidated")
	}
}

// TestCacheRacedAheadEntryKept: queries don't hold the serving lock, so
// an entry computed against the *new* generation can land before the
// swap's reconciliation runs; reconciliation must keep it.
func TestCacheRacedAheadEntryKept(t *testing.T) {
	c := NewResultCache(8)
	o := &Output{}
	c.put("ahead", 2, temporal.Always, o)
	c.Invalidate(1, 2, core.Delta{FactsReplaced: true, FactsWindow: temporal.Between(y(2005), y(2005)), FactsWindowKnown: true})
	if out, ok := c.get("ahead", 2); !ok || out != o {
		t.Fatal("entry already on the new generation was dropped by reconciliation")
	}
}
