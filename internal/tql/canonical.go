package tql

import (
	"sort"
	"strings"

	"mvolap/internal/temporal"
)

// Canonical renders the statement back to TQL text in a canonical form:
// parsing the canonical text yields an equivalent statement whose
// Canonical() is the same string (a parse→canonical→parse fixpoint).
//
// Normalizations applied:
//   - names are quoted exactly when the lexer could not re-read them as
//     one token (empty, or containing whitespace, ',', '.', '*');
//   - instants are rendered as MM/YYYY regardless of how they were
//     written (bare years, month syntax);
//   - the MODE clause is always explicit, with the default and the
//     explicit tcm mode both rendered as "MODE TCM";
//   - filter member lists are sorted and deduplicated (IN is a set
//     test) and filters are ordered by dimension, then member list —
//     conjunction order is irrelevant;
//   - the time-range condition, when present, always comes first in
//     WHERE.
//
// Equivalent queries therefore collapse onto one canonical string,
// which the result cache uses as the structural part of its key.
func (st *Statement) Canonical() string {
	var b strings.Builder
	switch st.Kind {
	case KindModes:
		return "MODES"
	case KindExplain:
		b.WriteString("EXPLAIN ")
		for i, id := range st.ExplainCoords {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteName(string(id)))
		}
		b.WriteString(" AT ")
		b.WriteString(canonicalInstant(st.ExplainAt))
		writeCanonicalMode(&b, st)
		return b.String()
	case KindQuality:
		b.WriteString("QUALITY ")
	}
	b.WriteString("SELECT ")
	if len(st.Measures) == 0 {
		b.WriteString("*")
	} else {
		for i, m := range st.Measures {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteName(m))
		}
	}
	b.WriteString(" BY ")
	for i, ax := range st.Axes {
		if i > 0 {
			b.WriteString(", ")
		}
		if ax.Time {
			b.WriteString("TIME.")
			b.WriteString(ax.Level)
		} else {
			b.WriteString(quoteName(string(ax.Dim)))
			b.WriteString(".")
			b.WriteString(quoteName(ax.Level))
		}
	}
	if st.HasRange || len(st.Filters) > 0 {
		b.WriteString(" WHERE ")
		first := true
		if st.HasRange {
			b.WriteString("TIME BETWEEN ")
			b.WriteString(canonicalInstant(st.Range.Start))
			b.WriteString(" AND ")
			b.WriteString(canonicalInstant(st.Range.End))
			first = false
		}
		for _, f := range canonicalFilters(st.Filters) {
			if !first {
				b.WriteString(" AND ")
			}
			first = false
			b.WriteString(quoteName(string(f.Dim)))
			b.WriteString(" IN ")
			for i, m := range f.Members {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(quoteName(m))
			}
		}
	}
	writeCanonicalMode(&b, st)
	return b.String()
}

// writeCanonicalMode appends the always-explicit MODE clause.
func writeCanonicalMode(b *strings.Builder, st *Statement) {
	switch {
	case st.HasModeID:
		b.WriteString(" MODE ")
		b.WriteString(quoteName(st.ModeID))
	case st.HasModeAt:
		b.WriteString(" MODE VERSION AT ")
		b.WriteString(canonicalInstant(st.ModeAt))
	default: // explicit tcm or the default mode
		b.WriteString(" MODE TCM")
	}
}

// canonicalFilters returns the filters with members sorted and
// deduplicated, ordered by dimension then member list. The input is
// not mutated.
func canonicalFilters(fs []Filter) []Filter {
	if len(fs) == 0 {
		return nil
	}
	out := make([]Filter, len(fs))
	for i, f := range fs {
		ms := append([]string(nil), f.Members...)
		sort.Strings(ms)
		j := 0
		for k, m := range ms {
			if k == 0 || m != ms[j-1] {
				ms[j] = m
				j++
			}
		}
		out[i] = Filter{Dim: f.Dim, Members: ms[:j]}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Dim != out[j].Dim {
			return out[i].Dim < out[j].Dim
		}
		return strings.Join(out[i].Members, "\x1f") < strings.Join(out[j].Members, "\x1f")
	})
	return out
}

// canonicalInstant renders an instant so the parser reads back the same
// value: the MM/YYYY form (temporal.Instant.String), which
// parseInstant routes through temporal.ParseInstant. Parsed statements
// never carry the Now/Origin sentinels (the grammar cannot produce
// them), but render them defensively via their temporal names.
func canonicalInstant(t temporal.Instant) string { return t.String() }

// quoteName renders a name as a single lexer token: raw when the lexer
// would read it back unchanged, single-quoted otherwise (empty names
// and names containing whitespace or the ','/'.'/'*' punctuation).
// Parser-produced names can never contain a quote character — the
// lexer terminates tokens at quotes — so quoting is always lossless
// here.
func quoteName(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\r,.*'") {
		return "'" + s + "'"
	}
	return s
}
