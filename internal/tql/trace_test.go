package tql

import (
	"context"
	"testing"

	"mvolap/internal/obs"
)

// TestRunContextTraceSpans asserts the acceptance criterion for query
// tracing: a traced SELECT produces a span tree containing at least
// the lex, parse, plan, materialize and aggregate stages.
func TestRunContextTraceSpans(t *testing.T) {
	s := caseSchema(t)
	ctx, root := obs.NewTrace(context.Background(), "query")
	out, err := RunContext(ctx, s, "SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	if err != nil {
		t.Fatal(err)
	}
	if out.Result == nil || len(out.Result.Rows) == 0 {
		t.Fatal("traced query should still return rows")
	}
	root.End()
	n := root.Node()
	for _, stage := range []string{"lex", "parse", "plan", "materialize", "aggregate"} {
		if n.Find(stage) == nil {
			t.Errorf("trace missing %q span", stage)
		}
	}
	mat := n.Find("materialize")
	if mat.Attrs["mode"] != "tcm" {
		t.Errorf("materialize attrs = %v, want mode=tcm", mat.Attrs)
	}
	if _, ok := mat.Attrs["cached"]; !ok {
		t.Errorf("materialize attrs = %v, want a cached verdict", mat.Attrs)
	}
	agg := n.Find("aggregate")
	if agg.Attrs["rows"] == nil {
		t.Errorf("aggregate attrs = %v, want a row count", agg.Attrs)
	}
}

// TestRunContextQualityTrace covers the QUALITY statement's rank span.
func TestRunContextQualityTrace(t *testing.T) {
	s := caseSchema(t)
	ctx, root := obs.NewTrace(context.Background(), "query")
	if _, err := RunContext(ctx, s, "QUALITY SELECT Amount BY Org.Division, TIME.YEAR"); err != nil {
		t.Fatal(err)
	}
	root.End()
	n := root.Node()
	if n.Find("rank") == nil {
		t.Error("QUALITY trace missing rank span")
	}
	if n.Find("plan") == nil {
		t.Error("QUALITY trace missing plan span")
	}
}

// TestRunWithoutTraceStillWorks pins the nil-span fast path: running
// without a trace on the context must not panic or change results.
func TestRunWithoutTraceStillWorks(t *testing.T) {
	s := caseSchema(t)
	out, err := RunContext(context.Background(), s, "SELECT Amount BY Org.Division, TIME.YEAR MODE tcm")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) == 0 {
		t.Fatal("expected rows")
	}
}
