package tql

import (
	"container/list"
	"fmt"
	"sync"

	"mvolap/internal/core"
	"mvolap/internal/obs"
	"mvolap/internal/quality"
	"mvolap/internal/temporal"
)

// Result-cache metrics, served by internal/server at GET /metrics and
// documented in docs/observability.md.
var (
	metCacheHits = obs.Default().Counter(
		"mvolap_query_cache_hits_total",
		"SELECT statements served from the TQL result cache with zero scan.")
	metCacheMisses = obs.Default().Counter(
		"mvolap_query_cache_misses_total",
		"Cacheable SELECT statements that had to execute a scan.")
	metCacheEvictions = obs.Default().Counter(
		"mvolap_query_cache_evictions_total",
		"Result-cache entries dropped by the LRU bound.")
	metCacheInvalidations = obs.Default().Counter(
		"mvolap_query_cache_invalidations_total",
		"Result-cache entries dropped because a mutation could affect them.")
	metCacheRetained = obs.Default().Counter(
		"mvolap_query_cache_retained_total",
		"Result-cache entries revalidated across a facts append whose time window their query range provably cannot see.")
)

// ResultCache is a bounded LRU cache of frozen SELECT outputs, keyed by
// the structure-aware cache key (see cacheKey): the statement's
// canonical text, the resolved mode and its structural signature, and
// the confidence weights. Validity is anchored on the served schema's
// swap identity, carried by each entry: the serving tier mutates
// exclusively by clone-then-swap (/facts, /evolve, and the replica's
// applyRecord all install a fresh clone with a fresh SwapID), and a
// lookup hits only when the entry's swapID matches the serving
// schema's, so entries are never served across a mutation they could
// observe.
//
// The swap path routes through Invalidate with the mutation's
// core.Delta. Structural or mapping changes — and fact batches that
// replaced existing coordinates — drop everything, as before. The hot
// mutation, an insert-only facts append, is handled surgically: the
// appended facts form a time window, and a cached SELECT whose
// effective time range does not overlap that window scans exactly the
// tuples it scanned before (appends only extend the fact table's
// tail), so its output is byte-identical — the entry is revalidated to
// the new swap identity instead of dropped. Queries without a WHERE
// TIME range have effective range temporal.Always and always drop.
//
// Cached outputs are shared and must be treated as frozen by every
// reader, which holds for the serving tier: results are rendered, never
// mutated.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

type cacheEntry struct {
	key    string
	swapID uint64
	// rng is the query's effective time range (temporal.Always when
	// the statement had no WHERE TIME clause), the exact filter the
	// scan applied to fact times — the overlap test for revalidating
	// across insert-only facts appends.
	rng temporal.Interval
	out *Output
}

// NewResultCache returns a cache bounded to max entries; max <= 0
// disables caching (every lookup misses, puts are dropped).
func NewResultCache(max int) *ResultCache {
	return &ResultCache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Len reports the live entry count.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get returns the cached output for key if it was computed against the
// given schema swap identity. A stale entry (a put that raced with a
// swap) is removed on sight.
func (c *ResultCache) get(key string, swapID uint64) (*Output, bool) {
	if c == nil || c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.swapID != swapID {
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.lru.MoveToFront(el)
	return ent.out, true
}

func (c *ResultCache) put(key string, swapID uint64, rng temporal.Interval, out *Output) {
	if c == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.swapID, ent.rng, ent.out = swapID, rng, out
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, swapID: swapID, rng: rng, out: out})
	for len(c.entries) > c.max {
		el := c.lru.Back()
		ent := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, ent.key)
		metCacheEvictions.Inc()
	}
}

// Invalidate reconciles the cache with one clone swap, described by
// the delta that produced the accepted clone (swapID is that clone's
// swap identity). Returns the number of entries dropped.
//
// Routing, from the byte-identity arguments on the Delta fields:
//   - A mapping change, or a structural change that is not purely
//     additive, can reroute any rollup — drop everything.
//   - A facts batch with a known time window (appends, replacements
//     and retractions alike only change values at their own instants)
//     drops the entries whose time range overlaps the window and
//     revalidates the rest — a retraction retargets entries over
//     disjoint windows and evicts only the overlapping ones.
//   - A purely additive structural change with no facts side touches
//     no existing rollup path — revalidate everything.
//   - Anything else (unknown window, conservative deltas) drops
//     everything.
//
// prevSwapID is the swap identity of the schema generation the clone
// replaced: only entries computed against exactly that generation may
// be revalidated (an entry from an older generation has unreconciled
// mutations between its generation and this one and must drop).
func (c *ResultCache) Invalidate(prevSwapID, swapID uint64, delta core.Delta) int {
	if c == nil {
		return 0
	}
	if delta.MappingsChanged || (delta.StructureChanged && !delta.StructureAdditive) {
		return c.InvalidateExcept(swapID)
	}
	factsTouched := delta.FactsReplaced || len(delta.NewFacts) > 0 || len(delta.Retracted) > 0
	switch {
	case factsTouched && delta.FactsWindowKnown:
		return c.RetargetFacts(prevSwapID, swapID, delta.FactsWindow)
	case factsTouched:
		return c.InvalidateExcept(swapID)
	default:
		// Purely additive structure change: every entry survives.
		return c.RetargetFacts(prevSwapID, swapID, temporal.Interval{Start: 1, End: 0})
	}
}

// RetargetFacts reconciles the cache with a mutation whose entire
// effect on stored facts lies inside window (an empty window means no
// effect at all): entries of the replaced generation (prevSwapID)
// whose effective time range avoids the window are revalidated to the
// new swap identity — their results are byte-identical on the new
// schema — and everything else is dropped: overlapping ranges could
// scan changed tuples, and entries from older generations carry
// mutations that were never reconciled against them. Entries already
// computed on the new generation (a query raced ahead of this
// reconciliation) are kept as-is. Returns the number dropped.
func (c *ResultCache) RetargetFacts(prevSwapID, swapID uint64, window temporal.Interval) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped, retained := 0, 0
	empty := window.Empty()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		switch {
		case ent.swapID == swapID:
			// already valid on the new generation
		case ent.swapID == prevSwapID && (empty || !ent.rng.Overlaps(window)):
			ent.swapID = swapID
			retained++
		default:
			c.lru.Remove(el)
			delete(c.entries, ent.key)
			dropped++
		}
		el = next
	}
	if dropped > 0 {
		metCacheInvalidations.Add(int64(dropped))
	}
	if retained > 0 {
		metCacheRetained.Add(int64(retained))
	}
	return dropped
}

// InvalidateExcept drops every entry not computed against the given
// schema swap identity and reports how many were dropped. The serving
// tier calls it (via Invalidate) on every swap that could change any
// result; the swapID check in get already guarantees stale entries
// cannot be hit, so this is memory reclamation, counted by the
// invalidations metric.
func (c *ResultCache) InvalidateExcept(swapID uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if ent.swapID != swapID {
			c.lru.Remove(el)
			delete(c.entries, ent.key)
			dropped++
		}
		el = next
	}
	if dropped > 0 {
		metCacheInvalidations.Add(int64(dropped))
	}
	return dropped
}

// cacheKey builds the structure-aware cache key for a planned SELECT.
// The canonical text collapses syntactic variants; the resolved mode
// plus its structural signature bind the entry to the exact structure
// it was computed in; the weights cover the quality factor baked into
// the output. Swap identity is deliberately NOT part of the key: it
// lives on the entry, so an insert-only facts append can revalidate
// surviving entries in place (RetargetFacts) and repeated queries keep
// hitting the same key across appends.
func cacheKey(st *Statement, mode core.Mode, w quality.Weights) string {
	sig := ""
	if mode.Kind == core.VersionKind && mode.Version != nil {
		sig = mode.Version.Signature()
	}
	return fmt.Sprintf("%s\x00%s\x00%s\x00%d/%d/%d/%d",
		st.Canonical(), mode, sig, w[0], w[1], w[2], w[3])
}
