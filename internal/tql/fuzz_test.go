package tql

import (
	"strings"
	"testing"
)

// FuzzParse checks the TQL parser never panics, that accepted SELECT
// statements can be planned against the case-study schema without
// panicking, and that canonicalization is stable: Canonical() never
// panics, its output reparses, and parse→canonical→parse is a fixpoint
// (the reparse canonicalizes to the same string). The fixpoint is what
// lets the result cache use the canonical text as a key — equivalent
// statements must collapse onto exactly one string.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm",
		"SELECT * BY Org.Department, TIME.MONTH",
		"QUALITY SELECT Amount BY Org.Department, TIME.YEAR",
		"MODES",
		"EXPLAIN Dpt.Jones_id AT 2003 MODE V2",
		"SELECT Amount BY Org.Department, TIME.YEAR WHERE Org IN 'Dpt.Smith', Dpt.Brian",
		"SELECT a BY b.c MODE VERSION AT 06/2001",
		"select amount by org.division, time.quarter",
		"",
		"SELECT",
		"garbage input ' with quotes",
		"SELECT Amount BY Org.Division, TIME.ALL WHERE Org IN Z, A, Z MODE VERSION AT 2004",
		"SELECT 'we ird' BY 'di m'.'le vel', TIME.YEAR WHERE TIME BETWEEN 12/2001 AND 2002",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			return
		}
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil statement without error")
		}
		// Round-trip sanity for SELECTs: Kind must be a known value.
		switch st.Kind {
		case KindSelect, KindModes, KindQuality, KindExplain:
		default:
			t.Fatalf("unknown kind %d", st.Kind)
		}
		if st.Kind == KindSelect && len(st.Axes) == 0 {
			t.Fatal("accepted SELECT without axes")
		}
		if strings.TrimSpace(input) == "" {
			t.Fatal("accepted blank input")
		}
		// Canonicalization stability: the canonical text must itself
		// parse, and canonicalizing the reparse must reproduce it.
		canon := st.Canonical()
		st2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %q -> %q: %v", input, canon, err)
		}
		if again := st2.Canonical(); again != canon {
			t.Fatalf("canonicalization is not a fixpoint:\n input: %q\n first: %q\nsecond: %q", input, canon, again)
		}
	})
}
