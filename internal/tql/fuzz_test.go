package tql

import (
	"strings"
	"testing"
)

// FuzzParse checks the TQL parser never panics and that accepted
// SELECT statements can be planned against the case-study schema
// without panicking either.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT Amount BY Org.Division, TIME.YEAR WHERE TIME BETWEEN 2001 AND 2002 MODE tcm",
		"SELECT * BY Org.Department, TIME.MONTH",
		"QUALITY SELECT Amount BY Org.Department, TIME.YEAR",
		"MODES",
		"EXPLAIN Dpt.Jones_id AT 2003 MODE V2",
		"SELECT Amount BY Org.Department, TIME.YEAR WHERE Org IN 'Dpt.Smith', Dpt.Brian",
		"SELECT a BY b.c MODE VERSION AT 06/2001",
		"select amount by org.division, time.quarter",
		"",
		"SELECT",
		"garbage input ' with quotes",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1024 {
			return
		}
		st, err := Parse(input)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatal("nil statement without error")
		}
		// Round-trip sanity for SELECTs: Kind must be a known value.
		switch st.Kind {
		case KindSelect, KindModes, KindQuality, KindExplain:
		default:
			t.Fatalf("unknown kind %d", st.Kind)
		}
		if st.Kind == KindSelect && len(st.Axes) == 0 {
			t.Fatal("accepted SELECT without axes")
		}
		if strings.TrimSpace(input) == "" {
			t.Fatal("accepted blank input")
		}
	})
}
