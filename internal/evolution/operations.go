package evolution

import (
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// This file compiles the six simple and three complex evolution
// operations of §2.3 into sequences of the four basic operators,
// following the paper's Table 11.

// NewMember describes a member version to be created by a compiled
// operation.
type NewMember struct {
	ID      core.MVID
	Name    string
	Level   string
	Attrs   map[string]string
	Parents []core.MVID
}

// CreateMember compiles "Creation of V at time T in the dimension Org as
// a child of P1" (Table 11, first entry):
//
//	Insert(Org, idV, V, T, {idP1}, ∅)
func CreateMember(dim core.DimID, m NewMember, at temporal.Instant) []Op {
	return []Op{Insert{
		Dim: dim, ID: m.ID, Name: m.Name, Level: m.Level, Attrs: m.Attrs,
		Start: at, Parents: m.Parents,
	}}
}

// DeleteMember compiles "Deletion of a dimension member" at time T:
//
//	Exclude(Org, idV, T)
func DeleteMember(dim core.DimID, id core.MVID, at temporal.Instant) []Op {
	return []Op{Exclude{Dim: dim, ID: id, At: at}}
}

// Transform compiles "Change from V to V' at time T" (Table 11, second
// entry): the old version is excluded, the new one inserted in the same
// position, and the two are associated by an equivalence (identity, em)
// relationship in both directions:
//
//	Exclude(Org, idV, T)
//	Insert(Org, idV', V', T, {idP1}, ∅)
//	Associate(idV, idV', {(x→x, em)}, {(x→x, em)})
//
// measures is the schema measure count (the identity applies to all).
func Transform(dim core.DimID, old core.MVID, replacement NewMember, at temporal.Instant, measures int) []Op {
	return []Op{
		Exclude{Dim: dim, ID: old, At: at},
		Insert{Dim: dim, ID: replacement.ID, Name: replacement.Name, Level: replacement.Level,
			Attrs: replacement.Attrs, Start: at, Parents: replacement.Parents},
		Associate{Mapping: core.MappingRelationship{
			From:     old,
			To:       replacement.ID,
			Forward:  core.UniformMapping(measures, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(measures, core.Identity, core.ExactMapping),
		}},
	}
}

// MergeSource is one of the members folded by a Merge, with the
// per-measure mappings of its values to (Forward) and from (Backward)
// the merged member.
type MergeSource struct {
	ID       core.MVID
	Forward  []core.MeasureMapping
	Backward []core.MeasureMapping
}

// Merge compiles "Merge of V1 and V2 into V12 at time T" (Table 11,
// third entry):
//
//	Exclude(Org, idV1, T)
//	Exclude(Org, idV2, T)
//	Insert(Org, idV12, V12, T, {idP1}, ∅)
//	Associate(idV1, idV12, F1, F1⁻¹)
//	Associate(idV2, idV12, F2, F2⁻¹)
func Merge(dim core.DimID, sources []MergeSource, merged NewMember, at temporal.Instant) []Op {
	ops := make([]Op, 0, 2*len(sources)+1)
	for _, src := range sources {
		ops = append(ops, Exclude{Dim: dim, ID: src.ID, At: at})
	}
	ops = append(ops, Insert{
		Dim: dim, ID: merged.ID, Name: merged.Name, Level: merged.Level,
		Attrs: merged.Attrs, Start: at, Parents: merged.Parents,
	})
	for _, src := range sources {
		ops = append(ops, Associate{Mapping: core.MappingRelationship{
			From: src.ID, To: merged.ID, Forward: src.Forward, Backward: src.Backward,
		}})
	}
	return ops
}

// SplitTarget is one of the members produced by a Split, with the
// per-measure mappings from the split member (Forward) and back to it
// (Backward).
type SplitTarget struct {
	Member   NewMember
	Forward  []core.MeasureMapping
	Backward []core.MeasureMapping
}

// Split compiles "Splitting of one member into n members" at time T:
//
//	Exclude(Org, idV, T)
//	Insert(Org, idV1, ..., T, P, ∅)  (one per target)
//	Associate(idV, idVi, Fi, Fi⁻¹)   (one per target)
//
// The paper's case study (Example 6) is Split of Dpt.Jones into
// Dpt.Bill (x→0.4x, am) and Dpt.Paul (x→0.6x, am) with exact identity
// backward mappings.
func Split(dim core.DimID, source core.MVID, targets []SplitTarget, at temporal.Instant) []Op {
	ops := make([]Op, 0, 2*len(targets)+1)
	ops = append(ops, Exclude{Dim: dim, ID: source, At: at})
	for _, tg := range targets {
		ops = append(ops, Insert{
			Dim: dim, ID: tg.Member.ID, Name: tg.Member.Name, Level: tg.Member.Level,
			Attrs: tg.Member.Attrs, Start: at, Parents: tg.Member.Parents,
		})
	}
	for _, tg := range targets {
		ops = append(ops, Associate{Mapping: core.MappingRelationship{
			From: source, To: tg.Member.ID, Forward: tg.Forward, Backward: tg.Backward,
		}})
	}
	return ops
}

// ReclassifyMember compiles "Reclassification of a member in the
// dimension structure": on the conceptual model this is the basic
// Reclassify operator itself (the §4.2 rewrite into
// Insert/Exclude/Associate is only needed at the logical level; see
// package logical).
func ReclassifyMember(dim core.DimID, id core.MVID, at temporal.Instant, oldParents, newParents []core.MVID) []Op {
	return []Op{Reclassify{
		Dim: dim, ID: id, Start: at, OldParents: oldParents, NewParents: newParents,
	}}
}

// Increase compiles the complex operation "Increase V in V+ at time T"
// (Table 11, fourth entry), here with a designer-supplied factor:
//
//	Exclude(Org, idV, T)
//	Insert(Org, idV+, V+, T, {idP1}, ∅)
//	Associate(idV, idV+, {(x→factor·x, am)}, {(x→x/factor, am)})
func Increase(dim core.DimID, old core.MVID, grown NewMember, at temporal.Instant, factor float64, measures int) []Op {
	return []Op{
		Exclude{Dim: dim, ID: old, At: at},
		Insert{Dim: dim, ID: grown.ID, Name: grown.Name, Level: grown.Level,
			Attrs: grown.Attrs, Start: at, Parents: grown.Parents},
		Associate{Mapping: core.MappingRelationship{
			From:     old,
			To:       grown.ID,
			Forward:  core.UniformMapping(measures, core.Linear{K: factor}, core.ApproxMapping),
			Backward: core.UniformMapping(measures, core.Linear{K: 1 / factor}, core.ApproxMapping),
		}},
	}
}

// Decrease compiles the complex operation "Decreasing: splitting
// followed by a deletion" (§2.3): the member splits into a kept part and
// a dropped part; only the kept part is inserted, carrying the kept
// fraction of the values.
func Decrease(dim core.DimID, old core.MVID, kept NewMember, at temporal.Instant, keptShare float64, measures int) []Op {
	return []Op{
		Exclude{Dim: dim, ID: old, At: at},
		Insert{Dim: dim, ID: kept.ID, Name: kept.Name, Level: kept.Level,
			Attrs: kept.Attrs, Start: at, Parents: kept.Parents},
		Associate{Mapping: core.MappingRelationship{
			From:     old,
			To:       kept.ID,
			Forward:  core.UniformMapping(measures, core.Linear{K: keptShare}, core.ApproxMapping),
			Backward: core.UniformMapping(measures, core.Identity, core.ExactMapping),
		}},
	}
}

// PartialAnnexation compiles the complex operation of Table 11's last
// entry: a portion of V1 is annexed by V2 at time T. With the paper's
// example numbers (10% of V1's measure goes to V2, which is a 20%
// increase for V2):
//
//	Exclude(Org, idV1, T)
//	Exclude(Org, idV2, T)
//	Insert(Org, idV1-, V1-, T, {idP1}, ∅)
//	Insert(Org, idV2+, V2+, T, {idP1}, ∅)
//	Associate(idV1, idV1-, {(x→0.9x, am)}, {(x→x, em)})
//	Associate(idV2, idV2+, {(x→x, em)}, {(x→0.8x, am)})
//	Associate(idV1, idV2+, {(x→0.1x, am)}, {(x→0.2x, am)})
//
// movedShare is the fraction of V1 moved (0.1 above); grownShare is the
// fraction of V2+ that came from V1 (0.2 above, the reverse weighting).
func PartialAnnexation(dim core.DimID, v1, v2 core.MVID, v1Minus, v2Plus NewMember,
	at temporal.Instant, movedShare, grownShare float64, measures int) []Op {
	return []Op{
		Exclude{Dim: dim, ID: v1, At: at},
		Exclude{Dim: dim, ID: v2, At: at},
		Insert{Dim: dim, ID: v1Minus.ID, Name: v1Minus.Name, Level: v1Minus.Level,
			Attrs: v1Minus.Attrs, Start: at, Parents: v1Minus.Parents},
		Insert{Dim: dim, ID: v2Plus.ID, Name: v2Plus.Name, Level: v2Plus.Level,
			Attrs: v2Plus.Attrs, Start: at, Parents: v2Plus.Parents},
		Associate{Mapping: core.MappingRelationship{
			From:     v1,
			To:       v1Minus.ID,
			Forward:  core.UniformMapping(measures, core.Linear{K: 1 - movedShare}, core.ApproxMapping),
			Backward: core.UniformMapping(measures, core.Identity, core.ExactMapping),
		}},
		Associate{Mapping: core.MappingRelationship{
			From:     v2,
			To:       v2Plus.ID,
			Forward:  core.UniformMapping(measures, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(measures, core.Linear{K: 1 - grownShare}, core.ApproxMapping),
		}},
		Associate{Mapping: core.MappingRelationship{
			From:     v1,
			To:       v2Plus.ID,
			Forward:  core.UniformMapping(measures, core.Linear{K: movedShare}, core.ApproxMapping),
			Backward: core.UniformMapping(measures, core.Linear{K: grownShare}, core.ApproxMapping),
		}},
	}
}
