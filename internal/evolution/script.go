package evolution

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// This file implements a line-oriented evolution script language so
// administrators can apply structural evolutions from files (cmd/evolve).
// One statement per line; '#' starts a comment. Names with spaces are
// double-quoted. Instants are "MM/YYYY" or "YYYY".
//
//	INSERT <dim> <id> <name> [LEVEL <level>] AT <t> [UNTIL <t>] [PARENTS a,b] [CHILDREN a,b]
//	EXCLUDE <dim> <id> AT <t>
//	ASSOCIATE <from> <to> FORWARD <k|-> <cf> BACKWARD <k|-> <cf>
//	RECLASSIFY <dim> <id> AT <t> [FROM a,b] [TO a,b]
//	SPLIT <dim> <id> AT <t> [LEVEL <level>] [PARENTS a,b] INTO <id>=<k> <id>=<k> ...
//	MERGE <dim> <a,b> AT <t> [LEVEL <level>] [PARENTS a,b] INTO <id> [BACK <k|->,<k|->]
//
// ASSOCIATE, SPLIT and MERGE apply the same mapping to every measure
// (the paper's common case); per-measure functions need the Go API.

// ParseScript parses an evolution script for a schema with the given
// measure count.
func ParseScript(r io.Reader, measures int) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		lineOps, err := parseLine(line, measures)
		if err != nil {
			return nil, fmt.Errorf("evolution: script line %d: %w", lineNo, err)
		}
		ops = append(ops, lineOps...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("evolution: reading script: %w", err)
	}
	return ops, nil
}

func parseLine(line string, measures int) ([]Op, error) {
	words, err := splitQuoted(line)
	if err != nil {
		return nil, err
	}
	p := &scriptParser{words: words}
	verb, err := p.word("statement")
	if err != nil {
		return nil, err
	}
	switch strings.ToUpper(verb) {
	case "INSERT":
		return p.parseInsert()
	case "EXCLUDE":
		return p.parseExclude()
	case "ASSOCIATE":
		return p.parseAssociate(measures)
	case "RECLASSIFY":
		return p.parseReclassify()
	case "SPLIT":
		return p.parseSplit(measures)
	case "MERGE":
		return p.parseMerge(measures)
	}
	return nil, fmt.Errorf("unknown statement %q", verb)
}

// splitQuoted splits on spaces, honouring double quotes.
func splitQuoted(s string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			if inQuote {
				out = append(out, cur.String())
				cur.Reset()
				inQuote = false
			} else {
				flush()
				inQuote = true
			}
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return out, nil
}

type scriptParser struct {
	words []string
	pos   int
}

func (p *scriptParser) word(what string) (string, error) {
	if p.pos >= len(p.words) {
		return "", fmt.Errorf("expected %s", what)
	}
	w := p.words[p.pos]
	p.pos++
	return w, nil
}

func (p *scriptParser) kw(s string) bool {
	if p.pos < len(p.words) && strings.EqualFold(p.words[p.pos], s) {
		p.pos++
		return true
	}
	return false
}

func (p *scriptParser) done() error {
	if p.pos != len(p.words) {
		return fmt.Errorf("trailing input at %q", p.words[p.pos])
	}
	return nil
}

func (p *scriptParser) instantAfter(kw string) (temporal.Instant, error) {
	if !p.kw(kw) {
		return 0, fmt.Errorf("expected %s", kw)
	}
	w, err := p.word("instant")
	if err != nil {
		return 0, err
	}
	return temporal.ParseInstant(w)
}

func (p *scriptParser) idList(w string) []core.MVID {
	parts := strings.Split(w, ",")
	out := make([]core.MVID, 0, len(parts))
	for _, s := range parts {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, core.MVID(s))
		}
	}
	return out
}

func (p *scriptParser) parseInsert() ([]Op, error) {
	dim, err := p.word("dimension")
	if err != nil {
		return nil, err
	}
	id, err := p.word("id")
	if err != nil {
		return nil, err
	}
	name, err := p.word("name")
	if err != nil {
		return nil, err
	}
	op := Insert{Dim: core.DimID(dim), ID: core.MVID(id), Name: name}
	if p.kw("LEVEL") {
		if op.Level, err = p.word("level"); err != nil {
			return nil, err
		}
	}
	if op.Start, err = p.instantAfter("AT"); err != nil {
		return nil, err
	}
	if p.kw("UNTIL") {
		w, err := p.word("instant")
		if err != nil {
			return nil, err
		}
		if op.End, err = temporal.ParseInstant(w); err != nil {
			return nil, err
		}
	}
	if p.kw("PARENTS") {
		w, err := p.word("parents")
		if err != nil {
			return nil, err
		}
		op.Parents = p.idList(w)
	}
	if p.kw("CHILDREN") {
		w, err := p.word("children")
		if err != nil {
			return nil, err
		}
		op.Children = p.idList(w)
	}
	return []Op{op}, p.done()
}

func (p *scriptParser) parseExclude() ([]Op, error) {
	dim, err := p.word("dimension")
	if err != nil {
		return nil, err
	}
	id, err := p.word("id")
	if err != nil {
		return nil, err
	}
	at, err := p.instantAfter("AT")
	if err != nil {
		return nil, err
	}
	return []Op{Exclude{Dim: core.DimID(dim), ID: core.MVID(id), At: at}}, p.done()
}

// parseMapper parses "<k|-> <cf>" into a uniform measure mapping.
func (p *scriptParser) parseMapper(measures int) ([]core.MeasureMapping, error) {
	kw, err := p.word("mapping factor")
	if err != nil {
		return nil, err
	}
	cfw, err := p.word("confidence")
	if err != nil {
		return nil, err
	}
	cf, err := core.ParseConfidence(cfw)
	if err != nil {
		return nil, err
	}
	if kw == "-" {
		return core.UniformMapping(measures, core.Unknown{}, cf), nil
	}
	k, err := strconv.ParseFloat(kw, 64)
	if err != nil {
		return nil, fmt.Errorf("bad factor %q", kw)
	}
	return core.UniformMapping(measures, core.Linear{K: k}, cf), nil
}

func (p *scriptParser) parseAssociate(measures int) ([]Op, error) {
	from, err := p.word("from id")
	if err != nil {
		return nil, err
	}
	to, err := p.word("to id")
	if err != nil {
		return nil, err
	}
	if !p.kw("FORWARD") {
		return nil, fmt.Errorf("expected FORWARD")
	}
	fwd, err := p.parseMapper(measures)
	if err != nil {
		return nil, err
	}
	if !p.kw("BACKWARD") {
		return nil, fmt.Errorf("expected BACKWARD")
	}
	back, err := p.parseMapper(measures)
	if err != nil {
		return nil, err
	}
	return []Op{Associate{Mapping: core.MappingRelationship{
		From: core.MVID(from), To: core.MVID(to), Forward: fwd, Backward: back,
	}}}, p.done()
}

func (p *scriptParser) parseReclassify() ([]Op, error) {
	dim, err := p.word("dimension")
	if err != nil {
		return nil, err
	}
	id, err := p.word("id")
	if err != nil {
		return nil, err
	}
	at, err := p.instantAfter("AT")
	if err != nil {
		return nil, err
	}
	op := Reclassify{Dim: core.DimID(dim), ID: core.MVID(id), Start: at}
	if p.kw("FROM") {
		w, err := p.word("old parents")
		if err != nil {
			return nil, err
		}
		op.OldParents = p.idList(w)
	}
	if p.kw("TO") {
		w, err := p.word("new parents")
		if err != nil {
			return nil, err
		}
		op.NewParents = p.idList(w)
	}
	return []Op{op}, p.done()
}

func (p *scriptParser) parseSplit(measures int) ([]Op, error) {
	dim, err := p.word("dimension")
	if err != nil {
		return nil, err
	}
	id, err := p.word("id")
	if err != nil {
		return nil, err
	}
	at, err := p.instantAfter("AT")
	if err != nil {
		return nil, err
	}
	level := ""
	var parents []core.MVID
	if p.kw("LEVEL") {
		if level, err = p.word("level"); err != nil {
			return nil, err
		}
	}
	if p.kw("PARENTS") {
		w, err := p.word("parents")
		if err != nil {
			return nil, err
		}
		parents = p.idList(w)
	}
	if !p.kw("INTO") {
		return nil, fmt.Errorf("expected INTO")
	}
	var targets []SplitTarget
	for p.pos < len(p.words) {
		w, _ := p.word("target")
		name, kStr, ok := strings.Cut(w, "=")
		if !ok {
			return nil, fmt.Errorf("split target %q needs id=weight", w)
		}
		k, err := strconv.ParseFloat(kStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad split weight %q", kStr)
		}
		targets = append(targets, SplitTarget{
			Member:   NewMember{ID: core.MVID(name), Name: name, Level: level, Parents: parents},
			Forward:  core.UniformMapping(measures, core.Linear{K: k}, core.ApproxMapping),
			Backward: core.UniformMapping(measures, core.Identity, core.ExactMapping),
		})
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("split needs at least one target")
	}
	return Split(core.DimID(dim), core.MVID(id), targets, at), nil
}

func (p *scriptParser) parseMerge(measures int) ([]Op, error) {
	dim, err := p.word("dimension")
	if err != nil {
		return nil, err
	}
	srcWord, err := p.word("source ids")
	if err != nil {
		return nil, err
	}
	srcIDs := p.idList(srcWord)
	if len(srcIDs) == 0 {
		return nil, fmt.Errorf("merge needs sources")
	}
	at, err := p.instantAfter("AT")
	if err != nil {
		return nil, err
	}
	level := ""
	var parents []core.MVID
	if p.kw("LEVEL") {
		if level, err = p.word("level"); err != nil {
			return nil, err
		}
	}
	if p.kw("PARENTS") {
		w, err := p.word("parents")
		if err != nil {
			return nil, err
		}
		parents = p.idList(w)
	}
	if !p.kw("INTO") {
		return nil, fmt.Errorf("expected INTO")
	}
	target, err := p.word("target id")
	if err != nil {
		return nil, err
	}
	backs := make([][]core.MeasureMapping, len(srcIDs))
	for i := range backs {
		backs[i] = core.UniformMapping(measures, core.Unknown{}, core.UnknownMapping)
	}
	if p.kw("BACK") {
		w, err := p.word("back weights")
		if err != nil {
			return nil, err
		}
		parts := strings.Split(w, ",")
		if len(parts) != len(srcIDs) {
			return nil, fmt.Errorf("BACK needs %d weights", len(srcIDs))
		}
		for i, part := range parts {
			if part == "-" {
				continue
			}
			k, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, fmt.Errorf("bad back weight %q", part)
			}
			backs[i] = core.UniformMapping(measures, core.Linear{K: k}, core.ApproxMapping)
		}
	}
	sources := make([]MergeSource, len(srcIDs))
	for i, sid := range srcIDs {
		sources[i] = MergeSource{
			ID:       sid,
			Forward:  core.UniformMapping(measures, core.Identity, core.ExactMapping),
			Backward: backs[i],
		}
	}
	merged := NewMember{ID: core.MVID(target), Name: target, Level: level, Parents: parents}
	if err := p.done(); err != nil {
		return nil, err
	}
	return Merge(core.DimID(dim), sources, merged, at), nil
}
