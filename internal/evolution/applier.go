package evolution

import (
	"fmt"
	"strings"

	"mvolap/internal/core"
)

// LogEntry records one applied operator for the §5.2 evolution
// metadata: its sequence number, its Table 11 notation, and the member
// versions it touched.
type LogEntry struct {
	Seq         int
	Description string
	Touched     []core.MVID
}

// Applier applies evolution operators to a schema, keeping the
// evolution log and invalidating the schema's derived caches after each
// batch.
type Applier struct {
	schema *core.Schema
	log    []LogEntry
}

// NewApplier creates an applier bound to the schema.
func NewApplier(s *core.Schema) *Applier { return &Applier{schema: s} }

// NewApplierWithLog creates an applier bound to the schema that starts
// from a previously recorded log — used when restoring a warehouse from
// a snapshot, so the §5.2 evolution history survives restarts. The log
// is copied; subsequent entries continue its sequence numbering.
func NewApplierWithLog(s *core.Schema, log []LogEntry) *Applier {
	return &Applier{schema: s, log: append([]LogEntry(nil), log...)}
}

// ApplyError reports a failed operator within a batch: which operator
// failed, and how many operators before it were already applied to the
// schema. Callers that applied the batch to a shared schema can use it
// to tell clients exactly how far the schema mutated; callers that
// applied it to a disposable clone can discard the clone for an atomic
// failure.
type ApplyError struct {
	// Index is the zero-based position of the failing operator in the
	// batch; operators [0, Index) were applied.
	Index int
	// Applied is the number of operators successfully applied before
	// the failure (equal to Index: Apply stops at the first failure).
	Applied int
	// Op is the Table 11 description of the failing operator.
	Op  string
	Err error
}

// Error renders the failure with its position in the batch.
func (e *ApplyError) Error() string {
	return fmt.Sprintf("evolution: applying operator %d (%s) after %d applied: %v",
		e.Index+1, e.Op, e.Applied, e.Err)
}

// Unwrap exposes the underlying operator error.
func (e *ApplyError) Unwrap() error { return e.Err }

// Apply runs the operators in order, stopping at the first failure.
// Applied operators are logged; on error the schema may be left with a
// prefix of the batch applied (operators are not transactional, like
// the DDL of the paper's prototype platform). The returned error is an
// *ApplyError reporting the failing operator's index and how many
// operators were applied before it; apply to a core.Schema.Clone and
// swap on success when atomicity is required.
func (a *Applier) Apply(ops ...Op) error {
	_, err := a.ApplyTouched(ops...)
	return err
}

// ApplyTouched is Apply returning the batch's structural footprint: the
// dimensions mutated and whether the mapping set changed. The serving
// tier feeds it to core.Schema.WarmFrom so only MVFT modes the batch
// could actually have changed are evicted across a clone-swap. Each
// operator's footprint is recorded even when it fails — it may have
// mutated part of the schema before erroring, so invalidation must
// still cover it.
func (a *Applier) ApplyTouched(ops ...Op) (TouchSet, error) {
	var ts TouchSet
	for i, op := range ops {
		if err := op.Apply(a.schema); err != nil {
			ts.observe(op)
			a.schema.Invalidate()
			return ts, &ApplyError{Index: i, Applied: i, Op: op.Describe(), Err: err}
		}
		ts.observe(op)
		a.log = append(a.log, LogEntry{
			Seq:         len(a.log) + 1,
			Description: op.Describe(),
			Touched:     op.Touches(),
		})
	}
	a.schema.Invalidate()
	return ts, nil
}

// Rebind returns a new applier bound to s carrying a copy of this
// applier's log — used with Schema.Clone for copy-on-write evolution:
// the clone's applier keeps the full §5.2 evolution history.
func (a *Applier) Rebind(s *core.Schema) *Applier {
	return &Applier{schema: s, log: append([]LogEntry(nil), a.log...)}
}

// Log returns the applied-operator log.
func (a *Applier) Log() []LogEntry { return a.log }

// History returns the textual descriptions of all logged operators that
// touched the given member version — the paper's "short textual
// description of the transformations that have affected a member".
func (a *Applier) History(id core.MVID) []string {
	var out []string
	for _, e := range a.log {
		for _, t := range e.Touched {
			if t == id {
				out = append(out, e.Description)
				break
			}
		}
	}
	return out
}

// Script renders the whole log as a readable evolution script.
func (a *Applier) Script() string {
	var b strings.Builder
	for _, e := range a.log {
		fmt.Fprintf(&b, "%3d. %s\n", e.Seq, e.Description)
	}
	return b.String()
}

// Describe renders a compiled operation (a sequence of basic operators)
// in the two-column style of Table 11.
func Describe(ops []Op) string {
	lines := make([]string, len(ops))
	for i, op := range ops {
		lines[i] = "- " + op.Describe()
	}
	return strings.Join(lines, "\n")
}
