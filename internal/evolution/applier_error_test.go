package evolution

import (
	"errors"
	"strings"
	"testing"

	"mvolap/internal/core"
)

// TestApplyErrorReportsPosition asserts the partial-application
// contract: Apply stops at the first failing operator and the returned
// *ApplyError reports which operator failed and how many were applied
// before it.
func TestApplyErrorReportsPosition(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := []Op{
		Insert{Dim: "Org", ID: "Dave", Name: "Dpt.Dave", Level: "Department",
			Start: y(2002), Parents: []core.MVID{"Sales"}},
		Exclude{Dim: "Org", ID: "no-such-member", At: y(2003)},
		Insert{Dim: "Org", ID: "Eve", Name: "Dpt.Eve", Level: "Department",
			Start: y(2003), Parents: []core.MVID{"Sales"}},
	}
	err := a.Apply(ops...)
	if err == nil {
		t.Fatal("batch with a bad operator should fail")
	}
	var ae *ApplyError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T, want *ApplyError", err)
	}
	if ae.Index != 1 || ae.Applied != 1 {
		t.Fatalf("ApplyError{Index: %d, Applied: %d}, want {1, 1}", ae.Index, ae.Applied)
	}
	if !strings.Contains(ae.Op, "no-such-member") {
		t.Fatalf("ApplyError.Op = %q, want the failing operator's description", ae.Op)
	}
	if ae.Unwrap() == nil {
		t.Fatal("ApplyError should wrap the operator error")
	}
	// The prefix before the failure was applied (non-transactional).
	if s.Dimension("Org").Version("Dave") == nil {
		t.Fatal("operator before the failure should have been applied")
	}
	if s.Dimension("Org").Version("Eve") != nil {
		t.Fatal("operator after the failure must not have been applied")
	}
	// Only the applied prefix is logged.
	if got := len(a.Log()); got != 1 {
		t.Fatalf("log length = %d, want 1", got)
	}
}

// TestRebindCarriesLog asserts that the clone's applier keeps the
// evolution history — the copy-on-write path the server uses.
func TestRebindCarriesLog(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	if err := a.Apply(Insert{Dim: "Org", ID: "Dave", Name: "Dpt.Dave",
		Level: "Department", Start: y(2002), Parents: []core.MVID{"Sales"}}); err != nil {
		t.Fatal(err)
	}

	clone := s.Clone()
	b := a.Rebind(clone)
	if got := len(b.Log()); got != 1 {
		t.Fatalf("rebound log length = %d, want 1", got)
	}
	if err := b.Apply(Insert{Dim: "Org", ID: "Eve", Name: "Dpt.Eve",
		Level: "Department", Start: y(2003), Parents: []core.MVID{"Sales"}}); err != nil {
		t.Fatal(err)
	}
	// The rebound applier mutates the clone, not the original, and its
	// log does not leak back.
	if s.Dimension("Org").Version("Eve") != nil {
		t.Fatal("rebound applier mutated the original schema")
	}
	if got := len(a.Log()); got != 1 {
		t.Fatalf("original log length = %d, want 1", got)
	}
	if got := len(b.Log()); got != 2 {
		t.Fatalf("rebound log length = %d, want 2", got)
	}
	if hist := b.History("Dave"); len(hist) != 1 {
		t.Fatalf("history of Dave on rebound applier = %v", hist)
	}
}
