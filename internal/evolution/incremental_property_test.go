package evolution_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/temporal"
)

// propSchema builds a small evolving warehouse with all three fold
// behaviours (Sum, Avg with contribution counts, Min) so the property
// test exercises every merge path.
func propSchema(t *testing.T, r *rand.Rand) *core.Schema {
	t.Helper()
	s := core.NewSchema("prop",
		core.Measure{Name: "amount", Agg: core.Sum},
		core.Measure{Name: "score", Agg: core.Avg},
		core.Measure{Name: "low", Agg: core.Min},
	)
	d := core.NewDimension("D", "D")
	add := func(id core.MVID, level string, valid temporal.Interval) {
		t.Helper()
		if err := d.AddVersion(&core.MemberVersion{ID: id, Level: level, Valid: valid}); err != nil {
			t.Fatal(err)
		}
	}
	add("top", "Top", temporal.Since(temporal.Year(2000)))
	for i := 0; i < 4; i++ {
		id := core.MVID(fmt.Sprintf("leaf%d", i))
		start := temporal.YM(2000+r.Intn(3), 1+r.Intn(12))
		add(id, "Leaf", temporal.Since(start))
		if err := d.AddRelationship(core.TemporalRelationship{
			From: id, To: "top", Valid: temporal.Since(start),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	return s
}

// randomFactBatch inserts 1..6 random facts into the clone, at times
// chosen so collisions (replacements) occasionally happen, and returns
// the resulting fact-side delta exactly as the serving tier computes
// it.
func randomFactBatch(t *testing.T, r *rand.Rand, clone *core.Schema) core.Delta {
	t.Helper()
	d := clone.Dimensions()[0]
	var leaves []*core.MemberVersion
	for _, mv := range d.Versions() {
		if mv.Level == "Leaf" {
			leaves = append(leaves, mv)
		}
	}
	oldLen := clone.Facts().Len()
	n := 1 + r.Intn(6)
	inserted := 0
	for i := 0; i < n; i++ {
		mv := leaves[r.Intn(len(leaves))]
		at := mv.Valid.Start + temporal.Instant(r.Intn(48))
		if !mv.ValidAt(at) {
			continue
		}
		vals := []float64{float64(r.Intn(200)), float64(r.Intn(10)), float64(r.Intn(50))}
		if r.Intn(12) == 0 {
			vals[1] = math.NaN() // exercise NaN folding in Avg
		}
		if err := clone.InsertFact(core.Coords{mv.ID}, at, vals...); err != nil {
			t.Fatal(err)
		}
		inserted++
	}
	var delta core.Delta
	if clone.Facts().Len() == oldLen+inserted {
		delta.NewFacts = clone.Facts().Facts()[oldLen:]
	} else {
		delta.FactsReplaced = true
	}
	return delta
}

// randomOps builds a 1..2 operator evolution batch against the clone's
// current members.
func randomOps(r *rand.Rand, clone *core.Schema) []evolution.Op {
	d := clone.Dimensions()[0]
	versions := d.Versions()
	var ops []evolution.Op
	n := 1 + r.Intn(2)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0: // insert a fresh leaf
			id := core.MVID(fmt.Sprintf("n%d-%d", r.Intn(1000), len(versions)))
			ops = append(ops, evolution.Insert{
				Dim: "D", ID: id, Name: string(id), Level: "Leaf",
				Start:   temporal.YM(2002+r.Intn(4), 1+r.Intn(12)),
				Parents: []core.MVID{"top"},
			})
		case 1: // exclude an existing leaf somewhere inside its validity
			mv := versions[r.Intn(len(versions))]
			if mv.ID == "top" {
				continue
			}
			ops = append(ops, evolution.Exclude{
				Dim: "D", ID: mv.ID,
				At: mv.Valid.Start + temporal.Instant(1+r.Intn(60)),
			})
		case 2: // associate two distinct members
			a := versions[r.Intn(len(versions))]
			b := versions[r.Intn(len(versions))]
			if a.ID == b.ID || a.ID == "top" || b.ID == "top" {
				continue
			}
			fn := core.Mapper(core.Identity)
			cf := core.ExactMapping
			if r.Intn(2) == 0 {
				fn = core.Linear{K: 0.5}
				cf = core.ApproxMapping
			}
			ops = append(ops, evolution.Associate{Mapping: core.MappingRelationship{
				From:     a.ID,
				To:       b.ID,
				Forward:  core.UniformMapping(3, fn, cf),
				Backward: core.UniformMapping(3, core.Identity, core.ExactMapping),
			}})
		case 3: // reclassify: end and recreate the leaf's link to top
			mv := versions[r.Intn(len(versions))]
			if mv.ID == "top" {
				continue
			}
			ops = append(ops, evolution.Reclassify{
				Dim: "D", ID: mv.ID,
				Start:      mv.Valid.Start + temporal.Instant(1+r.Intn(36)),
				OldParents: []core.MVID{"top"},
				NewParents: []core.MVID{"top"},
			})
		}
	}
	return ops
}

// assertBitIdentical compares the warm table against the cold rebuild
// tuple by tuple: order, coordinates, times, source counts, Dropped,
// every value by Float64bits and every confidence factor.
func assertBitIdentical(t *testing.T, step int, mode string, warm, cold *core.MappedTable) {
	t.Helper()
	if warm.Dropped != cold.Dropped {
		t.Fatalf("step %d mode %s: Dropped %d != %d", step, mode, warm.Dropped, cold.Dropped)
	}
	wf, cf := warm.Facts(), cold.Facts()
	if len(wf) != len(cf) {
		t.Fatalf("step %d mode %s: %d tuples != %d", step, mode, len(wf), len(cf))
	}
	for i := range wf {
		a, b := wf[i], cf[i]
		if !a.Coords.Equal(b.Coords) || a.Time != b.Time || a.Sources != b.Sources {
			t.Fatalf("step %d mode %s tuple %d: (%v,%v,%d) != (%v,%v,%d)",
				step, mode, i, a.Coords, a.Time, a.Sources, b.Coords, b.Time, b.Sources)
		}
		for k := range a.Values {
			if math.Float64bits(a.Values[k]) != math.Float64bits(b.Values[k]) {
				t.Fatalf("step %d mode %s tuple %d measure %d: %x != %x (%v vs %v)",
					step, mode, i, k,
					math.Float64bits(a.Values[k]), math.Float64bits(b.Values[k]),
					a.Values[k], b.Values[k])
			}
			if a.CFs[k] != b.CFs[k] {
				t.Fatalf("step %d mode %s tuple %d measure %d: cf %v != %v",
					step, mode, i, k, a.CFs[k], b.CFs[k])
			}
		}
	}
}

// TestIncrementalMatchesColdRebuild is the tentpole's correctness
// property: across a randomized interleaving of fact batches and
// evolution scripts, a warehouse maintained incrementally (WarmFrom
// carrying caches and folding deltas across every clone-swap) stays
// bit-identical — values, confidences, Dropped counts, tuple order —
// to a cold mapFacts rebuild performed from scratch after every step.
func TestIncrementalMatchesColdRebuild(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			cur := propSchema(t, r)
			applier := evolution.NewApplier(cur)

			// Materialize everything once so there are caches to carry.
			if _, err := cur.MultiVersion().All(); err != nil {
				t.Fatal(err)
			}

			const steps = 24
			for step := 0; step < steps; step++ {
				clone := cur.Clone()
				var delta core.Delta
				next := applier
				if r.Intn(10) < 7 {
					delta = randomFactBatch(t, r, clone)
					next = applier.Rebind(clone)
				} else {
					reb := applier.Rebind(clone)
					ts, err := reb.ApplyTouched(randomOps(r, clone)...)
					if err != nil {
						continue // failed batch: clone discarded, like the server's 422
					}
					delta = ts.Delta()
					next = reb
				}

				if res := clone.WarmFrom(context.Background(), cur, delta); res.DeltaApplied > 0 && delta.NewFacts == nil {
					t.Fatalf("step %d: delta applied without new facts", step)
				}

				cold := clone.Clone() // identical state, cold caches
				for _, m := range clone.Modes() {
					warmT, err := clone.MultiVersion().Mode(m)
					if err != nil {
						t.Fatal(err)
					}
					cm := m
					if m.Kind == core.VersionKind {
						cm = core.InVersion(cold.VersionByID(m.Version.ID))
					}
					coldT, err := cold.MultiVersion().Mode(cm)
					if err != nil {
						t.Fatal(err)
					}
					assertBitIdentical(t, step, m.String(), warmT, coldT)
				}
				cur, applier = clone, next
			}
		})
	}
}
