package evolution

import (
	"sort"

	"mvolap/internal/core"
)

// StructureToucher is an optional Op refinement: operators that mutate
// dimension structure report which dimensions they touch, so the
// serving tier can invalidate MVFT caches structure-aware instead of
// wholesale. The four basic operators all implement it.
type StructureToucher interface {
	// TouchedDims lists the dimensions the operator mutates
	// structurally (member versions or temporal relationships).
	TouchedDims() []core.DimID
}

// MappingToucher is an optional Op refinement: operators that change
// the schema's mapping-relationship set report it, because the mapping
// graph is global — a changed set can reroute resolution in every
// version mode.
type MappingToucher interface {
	TouchesMappings() bool
}

// AdditiveToucher is an optional Op refinement: operators whose
// structural footprint is purely creative — a fresh member version and
// edges from it to its parents, nothing pre-existing modified — report
// it, because results computed before such an operator are
// byte-identical after it (no stored fact can roll up through a member
// that did not exist when the fact's coordinates were written).
type AdditiveToucher interface {
	Additive() bool
}

// TouchSet accumulates the structural footprint of an applied operator
// batch. An operator implementing neither refinement is folded in
// conservatively, as if it had touched every dimension and the mapping
// set — unknown operators must degrade to full invalidation, never to
// stale caches.
type TouchSet struct {
	dims         map[core.DimID]bool
	mappings     bool
	conservative bool
	nonAdditive  bool
}

// observe folds one operator's footprint into the set.
func (ts *TouchSet) observe(op Op) {
	known := false
	if st, ok := op.(StructureToucher); ok {
		known = true
		touched := st.TouchedDims()
		for _, d := range touched {
			if ts.dims == nil {
				ts.dims = make(map[core.DimID]bool)
			}
			ts.dims[d] = true
		}
		if len(touched) > 0 {
			if at, ok := op.(AdditiveToucher); !ok || !at.Additive() {
				ts.nonAdditive = true
			}
		}
	}
	if mt, ok := op.(MappingToucher); ok {
		known = true
		if mt.TouchesMappings() {
			ts.mappings = true
		}
	}
	if !known {
		ts.conservative = true
	}
}

// Dims returns the touched dimensions, sorted for determinism.
func (ts TouchSet) Dims() []core.DimID {
	out := make([]core.DimID, 0, len(ts.dims))
	for d := range ts.dims {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StructureChanged reports whether any dimension structure changed.
func (ts TouchSet) StructureChanged() bool {
	return len(ts.dims) > 0 || ts.conservative
}

// MappingsChanged reports whether the mapping-relationship set changed.
func (ts TouchSet) MappingsChanged() bool {
	return ts.mappings || ts.conservative
}

// StructureAdditive reports that every structural change in the batch
// was purely creative (see AdditiveToucher); false whenever nothing
// structural changed at all.
func (ts TouchSet) StructureAdditive() bool {
	return len(ts.dims) > 0 && !ts.nonAdditive && !ts.conservative
}

// Delta renders the touch-set as a core.Delta for Schema.WarmFrom; the
// caller fills in the fact-side fields (NewFacts, FactsReplaced,
// Retracted — see WithRetraction for the latter).
func (ts TouchSet) Delta() core.Delta {
	return core.Delta{
		StructureChanged:  ts.StructureChanged(),
		MappingsChanged:   ts.MappingsChanged(),
		StructureAdditive: ts.StructureAdditive(),
		DimsTouched:       ts.Dims(),
	}
}

// WithRetraction classifies a fact-retraction batch on top of the
// touch-set's structural footprint: the rendered delta carries the
// retracted tuples and the hull of their instants as the facts window.
// A retraction touches no dimension and no mapping — it is structure-
// neutral — so a retraction-only batch (the zero TouchSet) yields a
// delta under which every structurally valid mode is retained and
// offered the unfold path; WarmFrom falls back to per-mode eviction
// only where the subtraction cannot be proven exact.
func (ts TouchSet) WithRetraction(retracted []*core.Fact) core.Delta {
	d := ts.Delta()
	d.Retracted = retracted
	d.FactsWindow, d.FactsWindowKnown = core.FactsSpan(retracted)
	return d
}
