// Package evolution implements the structural evolution operators of
// Body et al. (ICDE 2003) §3.2: the four basic operators Insert,
// Exclude, Associate and Reclassify through which the administrator
// integrates every change, plus the six simple and three complex
// operations of §2.3 compiled to sequences of basic operators exactly as
// the paper's Table 11 does.
//
// The package also keeps an evolution log with the "short textual
// description of the transformations that have affected a member"
// required by the metadata design of §5.2.
package evolution

import (
	"fmt"
	"strings"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// Op is a basic evolution operator application. Ops mutate the schema's
// dimensions and mapping set in place; the schema invalidates its
// derived caches on every such mutation automatically. Ops should also
// implement StructureToucher (and MappingToucher when relevant) so the
// serving tier can invalidate structure-aware; ops that don't are
// treated as touching everything.
type Op interface {
	// Apply performs the operator against the schema.
	Apply(s *core.Schema) error
	// Describe renders the operator in the paper's Table 11 notation,
	// e.g. "Insert(Org, idV, V, T, {idP1}, ∅)".
	Describe() string
	// Touches lists the member versions the operator affects, for the
	// per-member evolution log.
	Touches() []core.MVID
}

// Insert is the basic operator
// Insert(Did, mvID, mName, [A], [level], ti, [tf], P, C): it inserts a
// new member version and creates temporal relationships to its parents P
// and from its children C over the version's validity.
type Insert struct {
	Dim      core.DimID
	ID       core.MVID
	Member   string
	Name     string
	Attrs    map[string]string
	Level    string
	Start    temporal.Instant
	End      temporal.Instant // zero value means Now (tf omitted)
	Parents  []core.MVID
	Children []core.MVID
}

func (op Insert) end() temporal.Instant {
	if op.End == 0 {
		return temporal.Now
	}
	return op.End
}

// Apply inserts the member version and its relationships.
func (op Insert) Apply(s *core.Schema) error {
	d := s.Dimension(op.Dim)
	if d == nil {
		return fmt.Errorf("evolution: unknown dimension %q", op.Dim)
	}
	valid := temporal.Between(op.Start, op.end())
	member := op.Member
	if member == "" {
		member = op.Name
	}
	mv := &core.MemberVersion{
		ID:     op.ID,
		Member: member,
		Name:   op.Name,
		Attrs:  op.Attrs,
		Level:  op.Level,
		Valid:  valid,
	}
	if err := d.AddVersion(mv); err != nil {
		return err
	}
	link := func(from, to core.MVID) error {
		other := from
		if other == op.ID {
			other = to
		}
		omv := d.Version(other)
		if omv == nil {
			return fmt.Errorf("evolution: Insert(%s): unknown relative %q", op.ID, other)
		}
		window := valid.Intersect(omv.Valid)
		if window.Empty() {
			return fmt.Errorf("evolution: Insert(%s): no common validity with %q", op.ID, other)
		}
		return d.AddRelationship(core.TemporalRelationship{From: from, To: to, Valid: window})
	}
	for _, p := range op.Parents {
		if err := link(op.ID, p); err != nil {
			return err
		}
	}
	for _, c := range op.Children {
		if err := link(c, op.ID); err != nil {
			return err
		}
	}
	return nil
}

// Describe renders the Table 11 notation.
func (op Insert) Describe() string {
	return fmt.Sprintf("Insert(%s, %s, %s, %s, {%s}, {%s})",
		op.Dim, op.ID, op.Name, op.Start, joinIDs(op.Parents), joinIDs(op.Children))
}

// Touches reports the inserted version.
func (op Insert) Touches() []core.MVID { return []core.MVID{op.ID} }

// Additive reports whether the operator only creates: a fresh member
// version plus edges from it up to its parents. Linking existing
// children under the new member extends upward paths from pre-existing
// coordinates, so an Insert with children is not additive. An insert
// without an explicit level is not additive either: it can flip an
// all-explicitly-levelled dimension to derived depth levels, renaming
// every member's level.
func (op Insert) Additive() bool { return len(op.Children) == 0 && op.Level != "" }

// TouchedDims reports the mutated dimension.
func (op Insert) TouchedDims() []core.DimID { return []core.DimID{op.Dim} }

// Exclude is the basic operator Exclude(Did, mvID, tf): the member
// version is excluded on and after tf, i.e. its end time and the end of
// all relationships involving it are set to tf−1 (§3.2).
type Exclude struct {
	Dim core.DimID
	ID  core.MVID
	At  temporal.Instant
}

// Apply truncates the version and its relationships.
func (op Exclude) Apply(s *core.Schema) error {
	d := s.Dimension(op.Dim)
	if d == nil {
		return fmt.Errorf("evolution: unknown dimension %q", op.Dim)
	}
	return d.SetEnd(op.ID, op.At.Prev())
}

// Describe renders the Table 11 notation.
func (op Exclude) Describe() string {
	return fmt.Sprintf("Exclude(%s, %s, %s)", op.Dim, op.ID, op.At)
}

// Touches reports the excluded version.
func (op Exclude) Touches() []core.MVID { return []core.MVID{op.ID} }

// TouchedDims reports the mutated dimension.
func (op Exclude) TouchedDims() []core.DimID { return []core.DimID{op.Dim} }

// Associate is the basic operator Associate(Rmap): it checks a mapping
// relationship for consistency and adds it to the schema's set MR.
type Associate struct {
	Mapping core.MappingRelationship
}

// Apply registers the mapping relationship.
func (op Associate) Apply(s *core.Schema) error { return s.AddMapping(op.Mapping) }

// Describe renders the Table 11 notation, e.g.
// "Associate(idV1, idV12, {(x->x, em)}, {(x->0.5*x, am)})".
func (op Associate) Describe() string {
	return fmt.Sprintf("Associate(%s, %s, {%s}, {%s})",
		op.Mapping.From, op.Mapping.To,
		joinMappings(op.Mapping.Forward), joinMappings(op.Mapping.Backward))
}

// Touches reports both endpoints.
func (op Associate) Touches() []core.MVID {
	return []core.MVID{op.Mapping.From, op.Mapping.To}
}

// TouchedDims reports no structural change: Associate extends the
// mapping set without mutating any dimension.
func (op Associate) TouchedDims() []core.DimID { return nil }

// TouchesMappings reports that the mapping-relationship set changed.
func (op Associate) TouchesMappings() bool { return true }

// Reclassify is the basic operator
// Reclassify(Did, mvID, ti, [tf], OldParents, NewParents): it changes
// the position of the member version in the hierarchy by ending the
// relationships to OldParents at ti−1 and creating relationships to
// NewParents from ti (to tf). Either set may be empty.
type Reclassify struct {
	Dim        core.DimID
	ID         core.MVID
	Start      temporal.Instant
	End        temporal.Instant // zero value means Now
	OldParents []core.MVID
	NewParents []core.MVID
}

// Apply rewires the member version's parent relationships.
func (op Reclassify) Apply(s *core.Schema) error {
	d := s.Dimension(op.Dim)
	if d == nil {
		return fmt.Errorf("evolution: unknown dimension %q", op.Dim)
	}
	mv := d.Version(op.ID)
	if mv == nil {
		return fmt.Errorf("evolution: Reclassify: unknown member version %q", op.ID)
	}
	end := op.End
	if end == 0 {
		end = temporal.Now
	}
	for _, old := range op.OldParents {
		d.EndRelationship(op.ID, old, op.Start.Prev())
	}
	for _, p := range op.NewParents {
		pmv := d.Version(p)
		if pmv == nil {
			return fmt.Errorf("evolution: Reclassify: unknown parent %q", p)
		}
		window := temporal.Between(op.Start, end).
			Intersect(mv.Valid).Intersect(pmv.Valid)
		if window.Empty() {
			return fmt.Errorf("evolution: Reclassify(%s): no common validity with parent %q", op.ID, p)
		}
		if err := d.AddRelationship(core.TemporalRelationship{From: op.ID, To: p, Valid: window}); err != nil {
			return err
		}
	}
	return nil
}

// Describe renders the operator call.
func (op Reclassify) Describe() string {
	return fmt.Sprintf("Reclassify(%s, %s, %s, {%s}, {%s})",
		op.Dim, op.ID, op.Start, joinIDs(op.OldParents), joinIDs(op.NewParents))
}

// Touches reports the reclassified version and the parents involved.
func (op Reclassify) Touches() []core.MVID {
	out := []core.MVID{op.ID}
	out = append(out, op.OldParents...)
	out = append(out, op.NewParents...)
	return out
}

// TouchedDims reports the mutated dimension.
func (op Reclassify) TouchedDims() []core.DimID { return []core.DimID{op.Dim} }

func joinIDs(ids []core.MVID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

func joinMappings(ms []core.MeasureMapping) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = m.String()
	}
	return strings.Join(parts, ", ")
}
