package evolution

import (
	"strings"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func y(year int) temporal.Instant   { return temporal.Year(year) }
func ym(yr, m int) temporal.Instant { return temporal.YM(yr, m) }

// freshOrg builds the 2001 organization only (Table 1); evolutions are
// applied by the tests.
func freshOrg(t testing.TB) *core.Schema {
	t.Helper()
	s := core.NewSchema("org", core.Measure{Name: "Amount", Agg: core.Sum})
	d := core.NewDimension("Org", "Org")
	add := func(id core.MVID, name, level string) {
		if err := d.AddVersion(&core.MemberVersion{
			ID: id, Member: name, Name: name, Level: level, Valid: temporal.Since(y(2001)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("Sales", "Sales", "Division")
	add("R&D", "R&D", "Division")
	add("Jones", "Dpt.Jones", "Department")
	add("Smith", "Dpt.Smith", "Department")
	add("Brian", "Dpt.Brian", "Department")
	for _, r := range []core.TemporalRelationship{
		{From: "Jones", To: "Sales", Valid: temporal.Since(y(2001))},
		{From: "Smith", To: "Sales", Valid: temporal.Since(y(2001))},
		{From: "Brian", To: "R&D", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertOperator(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	op := Insert{
		Dim: "Org", ID: "Dave", Name: "Dpt.Dave", Level: "Department",
		Start: y(2002), Parents: []core.MVID{"Sales"},
	}
	if err := a.Apply(op); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	mv := d.Version("Dave")
	if mv == nil || !mv.Valid.Equal(temporal.Since(y(2002))) {
		t.Fatalf("inserted version = %v", mv)
	}
	ps := d.ParentsAt("Dave", y(2002))
	if len(ps) != 1 || ps[0].ID != "Sales" {
		t.Errorf("parents = %v", ps)
	}
	// Bounded insert.
	op2 := Insert{Dim: "Org", ID: "Temp", Name: "Temp", Level: "Department",
		Start: y(2002), End: ym(2002, 12), Parents: []core.MVID{"Sales"}}
	if err := a.Apply(op2); err != nil {
		t.Fatal(err)
	}
	if got := d.Version("Temp").Valid; !got.Equal(temporal.Between(y(2002), ym(2002, 12))) {
		t.Errorf("bounded validity = %v", got)
	}
}

func TestInsertWithChildren(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	// Insert an intermediate "Group" node over Jones and Smith.
	op := Insert{
		Dim: "Org", ID: "GroupA", Name: "GroupA", Level: "Group",
		Start: y(2002), Parents: []core.MVID{"Sales"}, Children: []core.MVID{"Jones", "Smith"},
	}
	if err := a.Apply(op); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	cs := d.ChildrenAt("GroupA", y(2002))
	if len(cs) != 2 {
		t.Errorf("children = %v", cs)
	}
}

func TestInsertErrors(t *testing.T) {
	s := freshOrg(t)
	cases := []struct {
		name string
		op   Insert
	}{
		{"unknown dimension", Insert{Dim: "zz", ID: "x", Start: y(2002)}},
		{"duplicate id", Insert{Dim: "Org", ID: "Jones", Start: y(2002)}},
		{"unknown parent", Insert{Dim: "Org", ID: "x", Start: y(2002), Parents: []core.MVID{"zz"}}},
		{"unknown child", Insert{Dim: "Org", ID: "x2", Start: y(2002), Children: []core.MVID{"zz"}}},
	}
	for _, c := range cases {
		if err := NewApplier(s).Apply(c.op); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Disjoint validity with parent.
	s2 := freshOrg(t)
	a := NewApplier(s2)
	if err := a.Apply(Insert{Dim: "Org", ID: "old", Start: ym(1999, 1), End: ym(2000, 1), Parents: []core.MVID{"Sales"}}); err == nil {
		t.Error("no common validity with parent: expected error")
	}
}

func TestExcludeOperator(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	if err := a.Apply(Exclude{Dim: "Org", ID: "Jones", At: y(2003)}); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	// "on and after tf": end time set to tf-1.
	if got := d.Version("Jones").Valid.End; got != ym(2002, 12) {
		t.Errorf("end = %v, want 12/2002", got)
	}
	for _, r := range d.Relationships() {
		if r.From == "Jones" && r.Valid.End > ym(2002, 12) {
			t.Error("relationships must be truncated")
		}
	}
	if err := NewApplier(s).Apply(Exclude{Dim: "zz", ID: "Jones", At: y(2003)}); err == nil {
		t.Error("unknown dimension must fail")
	}
	if err := NewApplier(s).Apply(Exclude{Dim: "Org", ID: "zz", At: y(2003)}); err == nil {
		t.Error("unknown member must fail")
	}
}

func TestAssociateOperator(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	op := Associate{Mapping: core.MappingRelationship{
		From:     "Jones",
		To:       "Smith",
		Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
		Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
	}}
	if err := a.Apply(op); err != nil {
		t.Fatal(err)
	}
	if len(s.Mappings()) != 1 {
		t.Error("mapping not registered")
	}
	bad := Associate{Mapping: core.MappingRelationship{From: "Jones", To: "zz",
		Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
		Backward: core.UniformMapping(1, core.Identity, core.ExactMapping)}}
	if err := a.Apply(bad); err == nil {
		t.Error("inconsistent mapping must be rejected")
	}
}

func TestReclassifyOperator(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := ReclassifyMember("Org", "Smith", y(2002), []core.MVID{"Sales"}, []core.MVID{"R&D"})
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	p01 := d.ParentsAt("Smith", y(2001))
	if len(p01) != 1 || p01[0].ID != "Sales" {
		t.Errorf("2001 parent = %v", p01)
	}
	p02 := d.ParentsAt("Smith", y(2002))
	if len(p02) != 1 || p02[0].ID != "R&D" {
		t.Errorf("2002 parent = %v", p02)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("dimension invalid after reclassify: %v", err)
	}
}

func TestReclassifyErrors(t *testing.T) {
	s := freshOrg(t)
	if err := NewApplier(s).Apply(Reclassify{Dim: "zz", ID: "Smith", Start: y(2002)}); err == nil {
		t.Error("unknown dimension must fail")
	}
	if err := NewApplier(s).Apply(Reclassify{Dim: "Org", ID: "zz", Start: y(2002)}); err == nil {
		t.Error("unknown member must fail")
	}
	if err := NewApplier(s).Apply(Reclassify{
		Dim: "Org", ID: "Smith", Start: y(2002), NewParents: []core.MVID{"zz"},
	}); err == nil {
		t.Error("unknown new parent must fail")
	}
	// Parent with disjoint validity.
	a := NewApplier(s)
	if err := a.Apply(Insert{Dim: "Org", ID: "late", Name: "late", Level: "Division", Start: y(2010)}); err != nil {
		t.Fatal(err)
	}
	if err := a.Apply(Reclassify{
		Dim: "Org", ID: "Jones", Start: y(2002), End: ym(2002, 12), NewParents: []core.MVID{"late"},
	}); err == nil {
		t.Error("disjoint parent validity must fail")
	}
}

func TestDescribeNotation(t *testing.T) {
	ins := Insert{Dim: "Org", ID: "idV", Name: "V", Start: y(2002), Parents: []core.MVID{"idP1"}}
	if got := ins.Describe(); got != "Insert(Org, idV, V, 01/2002, {idP1}, {})" {
		t.Errorf("Insert notation = %q", got)
	}
	ex := Exclude{Dim: "Org", ID: "idV", At: y(2002)}
	if got := ex.Describe(); got != "Exclude(Org, idV, 01/2002)" {
		t.Errorf("Exclude notation = %q", got)
	}
	as := Associate{Mapping: core.MappingRelationship{
		From:     "idV",
		To:       "idV'",
		Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
		Backward: core.UniformMapping(1, core.Linear{K: 0.5}, core.ApproxMapping),
	}}
	if got := as.Describe(); got != "Associate(idV, idV', {(x->x, em)}, {(x->0.5*x, am)})" {
		t.Errorf("Associate notation = %q", got)
	}
	rc := Reclassify{Dim: "Org", ID: "idV", Start: y(2002),
		OldParents: []core.MVID{"a"}, NewParents: []core.MVID{"b"}}
	if got := rc.Describe(); got != "Reclassify(Org, idV, 01/2002, {a}, {b})" {
		t.Errorf("Reclassify notation = %q", got)
	}
	if len(rc.Touches()) != 3 {
		t.Error("Reclassify must touch member and parents")
	}
}

func TestApplierLogAndHistory(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := Transform("Org", "Jones", NewMember{
		ID: "Jones2", Name: "Dpt.Jones-NewOffice", Level: "Department", Parents: []core.MVID{"Sales"},
	}, y(2002), 1)
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	if len(a.Log()) != 3 {
		t.Fatalf("log = %v", a.Log())
	}
	hist := a.History("Jones")
	if len(hist) != 2 { // Exclude + Associate touch Jones
		t.Errorf("history of Jones = %v", hist)
	}
	if hist := a.History("nobody"); hist != nil {
		t.Errorf("history of unknown member = %v", hist)
	}
	script := a.Script()
	if !strings.Contains(script, "1. Exclude(Org, Jones, 01/2002)") {
		t.Errorf("script = %q", script)
	}
	if got := Describe(ops); !strings.HasPrefix(got, "- Exclude(") {
		t.Errorf("Describe = %q", got)
	}
}

func TestApplierStopsOnError(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	err := a.Apply(
		Exclude{Dim: "Org", ID: "Jones", At: y(2002)},
		Exclude{Dim: "Org", ID: "zz", At: y(2002)}, // fails
		Exclude{Dim: "Org", ID: "Smith", At: y(2002)},
	)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(a.Log()) != 1 {
		t.Errorf("log after failure = %v", a.Log())
	}
	// Smith untouched because application stopped.
	if s.Dimension("Org").Version("Smith").Valid.End != temporal.Now {
		t.Error("operators after the failure must not run")
	}
}
