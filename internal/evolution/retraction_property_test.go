package evolution_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/temporal"
)

// randomRetractBatch retracts 1..3 distinct existing facts from the
// clone and returns the delta exactly as the serving tier computes it
// (TouchSet.WithRetraction on the structure-neutral zero touch-set).
// ok=false means the table was empty and nothing was retracted.
func randomRetractBatch(t *testing.T, r *rand.Rand, clone *core.Schema) (core.Delta, bool) {
	t.Helper()
	all := clone.Facts().Facts()
	if len(all) == 0 {
		return core.Delta{}, false
	}
	n := 1 + r.Intn(3)
	if n > len(all) {
		n = len(all)
	}
	// Capture the picks up front: retraction splices the table the
	// slice views.
	picks := make([]*core.Fact, 0, n)
	for _, i := range r.Perm(len(all))[:n] {
		picks = append(picks, all[i])
	}
	retracted := make([]*core.Fact, 0, n)
	for _, f := range picks {
		old, err := clone.RetractFact(f.Coords, f.Time)
		if err != nil {
			t.Fatalf("retract %v@%v: %v", f.Coords, f.Time, err)
		}
		retracted = append(retracted, old)
	}
	return evolution.TouchSet{}.WithRetraction(retracted), true
}

// TestRetractionMatchesColdRebuild extends the incremental-maintenance
// property to the unfold path: across a randomized interleaving of
// fact batches, retraction batches and evolution scripts, a warehouse
// maintained incrementally stays bit-identical — values, confidences,
// contribution counts, Dropped, tuple order — to a cold rebuild over
// the surviving facts after every step. The schema carries a Min
// measure, so partially retracted cells always take the per-mode
// eviction fallback and every retained table is tombstone-exact; the
// subtraction fast path is pinned separately by
// TestRetractionSumAvgSubtractsInPlace.
func TestRetractionMatchesColdRebuild(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			cur := propSchema(t, r)
			applier := evolution.NewApplier(cur)

			// Materialize everything once so there are caches to carry.
			if _, err := cur.MultiVersion().All(); err != nil {
				t.Fatal(err)
			}

			const steps = 24
			for step := 0; step < steps; step++ {
				clone := cur.Clone()
				var delta core.Delta
				next := applier
				switch roll := r.Intn(10); {
				case roll < 4:
					delta = randomFactBatch(t, r, clone)
					next = applier.Rebind(clone)
				case roll < 8:
					var ok bool
					if delta, ok = randomRetractBatch(t, r, clone); !ok {
						delta = randomFactBatch(t, r, clone)
					}
					next = applier.Rebind(clone)
				default:
					reb := applier.Rebind(clone)
					ts, err := reb.ApplyTouched(randomOps(r, clone)...)
					if err != nil {
						continue // failed batch: clone discarded, like the server's 422
					}
					delta = ts.Delta()
					next = reb
				}

				res := clone.WarmFrom(context.Background(), cur, delta)
				if res.DeltaApplied > 0 && delta.NewFacts == nil && len(delta.Retracted) == 0 {
					t.Fatalf("step %d: delta applied without new or retracted facts", step)
				}

				cold := clone.Clone() // identical state, cold caches
				for _, m := range clone.Modes() {
					warmT, err := clone.MultiVersion().Mode(m)
					if err != nil {
						t.Fatal(err)
					}
					cm := m
					if m.Kind == core.VersionKind {
						cm = core.InVersion(cold.VersionByID(m.Version.ID))
					}
					coldT, err := cold.MultiVersion().Mode(cm)
					if err != nil {
						t.Fatal(err)
					}
					assertBitIdentical(t, step, m.String(), warmT, coldT)
				}
				cur, applier = clone, next
			}
		})
	}
}

// retractSchema builds the directed fixture for the subtraction fast
// path: Sum and Avg measures only (both invertible), members A and B
// where A's validity ends with 2002 and an identity mapping A → B, so
// the post-exclusion structure version presents A's facts at B —
// merged with B's own source tuple at the shared instant. The
// mapped-source fact is inserted FIRST and the native fact SECOND, so
// retracting the native contribution leaves the cell's creation order
// identical to a cold rebuild over the survivors.
func retractSchema(t *testing.T) *core.Schema {
	t.Helper()
	s := core.NewSchema("retr",
		core.Measure{Name: "amount", Agg: core.Sum},
		core.Measure{Name: "score", Agg: core.Avg},
	)
	d := core.NewDimension("D", "D")
	add := func(id core.MVID, level string, valid temporal.Interval) {
		t.Helper()
		if err := d.AddVersion(&core.MemberVersion{ID: id, Level: level, Valid: valid}); err != nil {
			t.Fatal(err)
		}
	}
	start := temporal.YM(2001, 1)
	add("top", "Top", temporal.Since(start))
	add("A", "Leaf", temporal.Between(start, temporal.YM(2002, 12)))
	add("B", "Leaf", temporal.Since(start))
	for _, rel := range []core.TemporalRelationship{
		{From: "A", To: "top", Valid: temporal.Between(start, temporal.YM(2002, 12))},
		{From: "B", To: "top", Valid: temporal.Since(start)},
	} {
		if err := d.AddRelationship(rel); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMapping(core.MappingRelationship{
		From:     "A",
		To:       "B",
		Forward:  core.UniformMapping(2, core.Identity, core.ExactMapping),
		Backward: core.UniformMapping(2, core.Identity, core.ExactMapping),
	}); err != nil {
		t.Fatal(err)
	}
	// Integer values with exact sums: the subtraction below is exact in
	// float64, so bit-identity with the cold rebuild is guaranteed.
	for _, f := range []struct {
		id   core.MVID
		at   temporal.Instant
		vals []float64
	}{
		{"A", temporal.YM(2001, 6), []float64{10, 4}}, // mapped source, first
		{"B", temporal.YM(2001, 6), []float64{20, 6}}, // native, second
		{"B", temporal.YM(2002, 1), []float64{7, 3}},  // untouched bystander
	} {
		if err := s.InsertFact(core.Coords{f.id}, f.at, f.vals...); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestRetractionSumAvgSubtractsInPlace pins the invertible fast path:
// retracting one contribution of a merged cell under Sum/Avg-only
// measures must keep every mode warm — zero rematerializations — while
// leaving each table bit-identical to a cold rebuild over the
// surviving facts, with the cell's value subtracted and its Avg
// contribution count decremented in place.
func TestRetractionSumAvgSubtractsInPlace(t *testing.T) {
	base := retractSchema(t)
	if _, err := base.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	modes := base.Modes()
	if len(modes) != 3 { // tcm + pre-exclusion + post-exclusion versions
		t.Fatalf("fixture has %d modes, want 3", len(modes))
	}

	// Sanity: the post-exclusion version really merges A's mapped fact
	// with B's native one.
	post := base.VersionAt(temporal.YM(2003, 6))
	if post == nil {
		t.Fatal("no structure version after A's exclusion")
	}
	postT, err := base.MultiVersion().Mode(core.InVersion(post))
	if err != nil {
		t.Fatal(err)
	}
	merged, ok := postT.Lookup(core.Coords{"B"}, temporal.YM(2001, 6))
	if !ok || merged.Sources != 2 || merged.Values[0] != 30 || merged.Values[1] != 5 {
		t.Fatalf("merged cell = %+v, %v; want sources 2, amount 30, score 5", merged, ok)
	}

	clone := base.Clone()
	old, err := clone.RetractFact(core.Coords{"B"}, temporal.YM(2001, 6))
	if err != nil {
		t.Fatal(err)
	}
	delta := evolution.TouchSet{}.WithRetraction([]*core.Fact{old})
	if !delta.FactsWindowKnown {
		t.Fatal("retraction delta must carry a known facts window")
	}
	res := clone.WarmFrom(context.Background(), base, delta)
	if len(res.Evicted) != 0 {
		t.Fatalf("Sum/Avg-only retraction evicted %v, want all retained", res.Evicted)
	}
	if res.Subtracted != len(modes) {
		t.Fatalf("Subtracted = %d, want %d (every mode absorbs the retraction)", res.Subtracted, len(modes))
	}

	cold := clone.Clone()
	for _, m := range clone.Modes() {
		warmT, err := clone.MultiVersion().Mode(m)
		if err != nil {
			t.Fatal(err)
		}
		cm := m
		if m.Kind == core.VersionKind {
			cm = core.InVersion(cold.VersionByID(m.Version.ID))
		}
		coldT, err := cold.MultiVersion().Mode(cm)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, 0, m.String(), warmT, coldT)
	}
	// The acceptance gate: serving every mode above came from the warm
	// tables — the clone never rematerialized.
	if builds := clone.MultiVersion().Materializations(); builds != 0 {
		t.Fatalf("clone performed %d materializations, want 0", builds)
	}

	// The merged cell was subtracted in place, not rebuilt: one source
	// left, the mapped contribution's exact values and confidence.
	postW, err := clone.MultiVersion().Mode(core.InVersion(clone.VersionByID(post.ID)))
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := postW.Lookup(core.Coords{"B"}, temporal.YM(2001, 6))
	if !ok {
		t.Fatal("subtracted cell vanished")
	}
	if cell.Sources != 1 || cell.Values[0] != 10 || cell.Values[1] != 4 {
		t.Fatalf("subtracted cell = %+v; want sources 1, amount 10, score 4", cell)
	}
	if cell.CFs[0] != core.ExactMapping || cell.CFs[1] != core.ExactMapping {
		t.Fatalf("subtracted cell CFs = %v; want em (sd removal leaves ⊗cf unchanged)", cell.CFs)
	}

	// The native tuple is gone from every presentation.
	tcmW, err := clone.MultiVersion().Mode(core.TCM())
	if err != nil {
		t.Fatal(err)
	}
	if tcmW.Len() != 2 {
		t.Fatalf("tcm has %d tuples after retraction, want 2", tcmW.Len())
	}
}
