package evolution

import (
	"math"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// TestCaseStudyRebuiltFromOperators replays the paper's §2.1 history with
// evolution operators starting from the 2001 organization, then checks
// that the structure versions and the version-mapped queries of
// Tables 9 and 10 come out right.
func TestCaseStudyRebuiltFromOperators(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)

	// 2002: Smith is reorganized and moved into R&D (Table 2).
	if err := a.Apply(ReclassifyMember("Org", "Smith", y(2002),
		[]core.MVID{"Sales"}, []core.MVID{"R&D"})...); err != nil {
		t.Fatal(err)
	}
	// 2003: Jones is split into Bill (40%) and Paul (60%) (Table 7 +
	// Example 6).
	split := Split("Org", "Jones", []SplitTarget{
		{
			Member:   NewMember{ID: "Bill", Name: "Dpt.Bill", Level: "Department", Parents: []core.MVID{"Sales"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.4}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
		{
			Member:   NewMember{ID: "Paul", Name: "Dpt.Paul", Level: "Department", Parents: []core.MVID{"Sales"}},
			Forward:  core.UniformMapping(1, core.Linear{K: 0.6}, core.ApproxMapping),
			Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
		},
	}, y(2003))
	if err := a.Apply(split...); err != nil {
		t.Fatal(err)
	}

	// Load Table 3.
	type row struct {
		id  core.MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{"Jones", 2001, 100}, {"Smith", 2001, 50}, {"Brian", 2001, 100},
		{"Jones", 2002, 100}, {"Smith", 2002, 100}, {"Brian", 2002, 50},
		{"Bill", 2003, 150}, {"Paul", 2003, 50}, {"Smith", 2003, 110}, {"Brian", 2003, 40},
	} {
		if err := s.InsertFact(core.Coords{r.id}, y(r.yr), r.amt); err != nil {
			t.Fatal(err)
		}
	}

	svs := s.StructureVersions()
	if len(svs) != 3 {
		for _, v := range svs {
			t.Logf("  %v", v)
		}
		t.Fatalf("structure versions = %d, want 3", len(svs))
	}

	// Table 9: Q2 on the 2002 organization.
	v2 := s.VersionAt(y(2002))
	res, err := s.Execute(core.Query{
		GroupBy: []core.GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(y(2002), ym(2003, 12)),
		Mode:    core.InVersion(v2),
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	cfs := map[string]core.Confidence{}
	for _, r := range res.Rows {
		byKey[r.TimeKey+"/"+r.Groups[0]] = r.Values[0]
		cfs[r.TimeKey+"/"+r.Groups[0]] = r.CFs[0]
	}
	if byKey["2003/Dpt.Jones"] != 200 || cfs["2003/Dpt.Jones"] != core.ExactMapping {
		t.Errorf("Table 9 Jones 2003 = %v (%v), want 200 (em)", byKey["2003/Dpt.Jones"], cfs["2003/Dpt.Jones"])
	}

	// Table 10: Q2 on the 2003 organization.
	v3 := s.VersionAt(y(2003))
	res, err = s.Execute(core.Query{
		GroupBy: []core.GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(y(2002), ym(2003, 12)),
		Mode:    core.InVersion(v3),
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey = map[string]float64{}
	for _, r := range res.Rows {
		byKey[r.TimeKey+"/"+r.Groups[0]] = r.Values[0]
	}
	if byKey["2002/Dpt.Bill"] != 40 || byKey["2002/Dpt.Paul"] != 60 {
		t.Errorf("Table 10 2002 split = Bill %v, Paul %v; want 40, 60",
			byKey["2002/Dpt.Bill"], byKey["2002/Dpt.Paul"])
	}
}

// mergeFixture builds a two-leaf schema and merges them at 2002.
func mergeFixture(t *testing.T, backward2 []core.MeasureMapping) *core.Schema {
	t.Helper()
	s := core.NewSchema("m", core.Measure{Name: "v", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, mv := range []*core.MemberVersion{
		{ID: "top", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V1", Level: "Leaf", Valid: temporal.Since(y(2001))},
		{ID: "V2", Level: "Leaf", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []core.TemporalRelationship{
		{From: "V1", To: "top", Valid: temporal.Since(y(2001))},
		{From: "V2", To: "top", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	a := NewApplier(s)
	// Table 11's merge: half of V12's values map back to V1 with
	// approximation; the mapping back to V2 is configurable.
	ops := Merge("D", []MergeSource{
		{ID: "V1",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: core.UniformMapping(1, core.Linear{K: 0.5}, core.ApproxMapping)},
		{ID: "V2",
			Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
			Backward: backward2},
	}, NewMember{ID: "V12", Name: "V12", Level: "Leaf", Parents: []core.MVID{"top"}}, y(2002))
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMergeOperation(t *testing.T) {
	s := mergeFixture(t, core.UniformMapping(1, core.Unknown{}, core.UnknownMapping))
	// Old leaves end at 12/2001; V12 exists from 2002.
	d := s.Dimension("D")
	if d.Version("V1").Valid.End != ym(2001, 12) {
		t.Error("V1 must end at 12/2001")
	}
	if !d.Version("V12").Valid.Equal(temporal.Since(y(2002))) {
		t.Error("V12 validity wrong")
	}
	// Data recorded on V1 and V2 in 2001 presents as their sum on V12 in
	// the 2002 structure version.
	s.MustInsertFact(core.Coords{"V1"}, y(2001), 30)
	s.MustInsertFact(core.Coords{"V2"}, y(2001), 12)
	v2 := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := mt.Lookup(core.Coords{"V12"}, y(2001))
	if !ok || got.Values[0] != 42 {
		t.Errorf("merged presentation = %+v, want 42", got)
	}
	if got.CFs[0] != core.ExactMapping {
		t.Errorf("merged cf = %v, want em", got.CFs[0])
	}
	// V12's 2002 data mapped back to the 2001 version: half to V1 (am),
	// unknown to V2.
	s.MustInsertFact(core.Coords{"V12"}, y(2002), 100)
	v1 := s.VersionAt(y(2001))
	mt, err = s.MultiVersion().Mode(core.InVersion(v1))
	if err != nil {
		t.Fatal(err)
	}
	gv1, ok := mt.Lookup(core.Coords{"V1"}, y(2002))
	if !ok || gv1.Values[0] != 50 || gv1.CFs[0] != core.ApproxMapping {
		t.Errorf("back-mapped V1 = %+v, want 50 (am)", gv1)
	}
	gv2, ok := mt.Lookup(core.Coords{"V2"}, y(2002))
	if !ok || !math.IsNaN(gv2.Values[0]) || gv2.CFs[0] != core.UnknownMapping {
		t.Errorf("back-mapped V2 = %+v, want unknown", gv2)
	}
}

func TestIncreaseOperation(t *testing.T) {
	s := core.NewSchema("inc", core.Measure{Name: "v", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, mv := range []*core.MemberVersion{
		{ID: "top", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V", Level: "Leaf", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(core.TemporalRelationship{From: "V", To: "top", Valid: temporal.Since(y(2001))}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	a := NewApplier(s)
	// Table 11: increase V in V+ with factor 2, approximated.
	ops := Increase("D", "V", NewMember{ID: "V+", Name: "V+", Level: "Leaf", Parents: []core.MVID{"top"}}, y(2002), 2, 1)
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(core.Coords{"V"}, y(2001), 10)
	s.MustInsertFact(core.Coords{"V+"}, y(2002), 50)
	// Forward: V's 10 becomes 20 on V+ (am).
	vNew := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(vNew))
	if err != nil {
		t.Fatal(err)
	}
	fwd, ok := mt.Lookup(core.Coords{"V+"}, y(2001))
	if !ok || fwd.Values[0] != 20 || fwd.CFs[0] != core.ApproxMapping {
		t.Errorf("forward = %+v, want 20 (am)", fwd)
	}
	// Backward: V+'s 50 becomes 25 on V (x→0.5x).
	vOld := s.VersionAt(y(2001))
	mt, err = s.MultiVersion().Mode(core.InVersion(vOld))
	if err != nil {
		t.Fatal(err)
	}
	back, ok := mt.Lookup(core.Coords{"V"}, y(2002))
	if !ok || back.Values[0] != 25 {
		t.Errorf("backward = %+v, want 25", back)
	}
}

func TestDecreaseOperation(t *testing.T) {
	s := core.NewSchema("dec", core.Measure{Name: "v", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, mv := range []*core.MemberVersion{
		{ID: "top", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V", Level: "Leaf", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(core.TemporalRelationship{From: "V", To: "top", Valid: temporal.Since(y(2001))}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	// Decrease: 70% kept.
	ops := Decrease("D", "V", NewMember{ID: "V-", Name: "V-", Level: "Leaf", Parents: []core.MVID{"top"}}, y(2002), 0.7, 1)
	if err := NewApplier(s).Apply(ops...); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(core.Coords{"V"}, y(2001), 100)
	vNew := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(vNew))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := mt.Lookup(core.Coords{"V-"}, y(2001))
	if !ok || math.Abs(got.Values[0]-70) > 1e-9 || got.CFs[0] != core.ApproxMapping {
		t.Errorf("decreased presentation = %+v, want 70 (am)", got)
	}
}

// TestPartialAnnexationOperation reproduces Table 11's last entry with
// the paper's numbers: 10% of V1 goes to V2 (a 20% increase for V2).
func TestPartialAnnexationOperation(t *testing.T) {
	s := core.NewSchema("pa", core.Measure{Name: "v", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, mv := range []*core.MemberVersion{
		{ID: "top", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V1", Level: "Leaf", Valid: temporal.Since(y(2001))},
		{ID: "V2", Level: "Leaf", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []core.TemporalRelationship{
		{From: "V1", To: "top", Valid: temporal.Since(y(2001))},
		{From: "V2", To: "top", Valid: temporal.Since(y(2001))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	ops := PartialAnnexation("D", "V1", "V2",
		NewMember{ID: "V1-", Name: "V1-", Level: "Leaf", Parents: []core.MVID{"top"}},
		NewMember{ID: "V2+", Name: "V2+", Level: "Leaf", Parents: []core.MVID{"top"}},
		y(2002), 0.1, 0.2, 1)
	if len(ops) != 7 {
		t.Fatalf("partial annexation compiles to %d ops, want 7 (Table 11)", len(ops))
	}
	if err := NewApplier(s).Apply(ops...); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(core.Coords{"V1"}, y(2001), 100)
	s.MustInsertFact(core.Coords{"V2"}, y(2001), 40)
	vNew := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(vNew))
	if err != nil {
		t.Fatal(err)
	}
	g1, ok := mt.Lookup(core.Coords{"V1-"}, y(2001))
	if !ok || math.Abs(g1.Values[0]-90) > 1e-9 {
		t.Errorf("V1- = %+v, want 90", g1)
	}
	// V2+ receives V2's 40 (em) plus 10% of V1's 100 (am): 50 with am.
	g2, ok := mt.Lookup(core.Coords{"V2+"}, y(2001))
	if !ok || math.Abs(g2.Values[0]-50) > 1e-9 {
		t.Errorf("V2+ = %+v, want 50", g2)
	}
	if g2.CFs[0] != core.ApproxMapping {
		t.Errorf("V2+ cf = %v, want am", g2.CFs[0])
	}
	// Totals preserved: 90 + 50 = 140 = 100 + 40.
}

func TestCreateAndDeleteMember(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := CreateMember("Org", NewMember{
		ID: "Dave", Name: "Dpt.Dave", Level: "Department", Parents: []core.MVID{"R&D"},
	}, y(2002))
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	if s.Dimension("Org").Version("Dave") == nil {
		t.Fatal("member not created")
	}
	ops = DeleteMember("Org", "Dave", y(2004))
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	if got := s.Dimension("Org").Version("Dave").Valid.End; got != ym(2003, 12) {
		t.Errorf("deleted member end = %v", got)
	}
}

func TestTransformKeepsEquivalence(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := Transform("Org", "Jones", NewMember{
		ID: "Jones2", Name: "Dpt.Jones", Level: "Department", Parents: []core.MVID{"Sales"},
	}, y(2002), 1)
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(core.Coords{"Jones"}, y(2001), 100)
	s.MustInsertFact(core.Coords{"Jones2"}, y(2002), 120)
	// In the 2002 version, 2001 data presents on Jones2 unchanged (em).
	v2 := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(core.InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := mt.Lookup(core.Coords{"Jones2"}, y(2001))
	if !ok || got.Values[0] != 100 || got.CFs[0] != core.ExactMapping {
		t.Errorf("transformed presentation = %+v, want 100 (em)", got)
	}
}

// TestTransformChangesAttributes: §2.3 defines transformation as
// "change of an attribute, its name or meaning"; the new version can
// carry different attributes while the equivalence mapping keeps data
// flowing across the transition.
func TestTransformChangesAttributes(t *testing.T) {
	s := freshOrg(t)
	a := NewApplier(s)
	ops := Transform("Org", "Jones", NewMember{
		ID:      "Jones2",
		Name:    "Dpt.Jones",
		Level:   "Department",
		Parents: []core.MVID{"Sales"},
		Attrs:   map[string]string{"building": "Annex B", "head": "J. Jones Jr."},
	}, y(2002), 1)
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	old := d.Version("Jones")
	neu := d.Version("Jones2")
	if old.Attrs != nil {
		t.Errorf("old attrs = %v", old.Attrs)
	}
	if neu.Attrs["building"] != "Annex B" {
		t.Errorf("new attrs = %v", neu.Attrs)
	}
	// Both are versions of the same member.
	if neu.Member != "Dpt.Jones" || old.Member != "Dpt.Jones" {
		t.Errorf("member names: %q vs %q", old.Member, neu.Member)
	}
	vs := d.VersionsOfMember("Dpt.Jones")
	if len(vs) != 2 {
		t.Errorf("versions of member = %d", len(vs))
	}
}
