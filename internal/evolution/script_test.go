package evolution

import (
	"strings"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// TestScriptCaseStudy replays the full case study from a script.
func TestScriptCaseStudy(t *testing.T) {
	s := freshOrg(t)
	script := `
# Smith moves to R&D in 2002 (Table 2)
RECLASSIFY Org Smith AT 01/2002 FROM Sales TO R&D

# Jones splits into Bill (40%) and Paul (60%) in 2003 (Table 7, Ex. 6)
SPLIT Org Jones AT 01/2003 LEVEL Department PARENTS Sales INTO Bill=0.4 Paul=0.6
`
	ops, err := ParseScript(strings.NewReader(script), 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewApplier(s)
	if err := a.Apply(ops...); err != nil {
		t.Fatal(err)
	}
	if got := len(s.StructureVersions()); got != 3 {
		t.Fatalf("structure versions = %d", got)
	}
	d := s.Dimension("Org")
	if d.Version("Bill") == nil || d.Version("Paul") == nil {
		t.Fatal("split targets missing")
	}
	if d.Version("Jones").Valid.End != temporal.YM(2002, 12) {
		t.Error("Jones must end at 12/2002")
	}
	if len(s.Mappings()) != 2 {
		t.Errorf("mappings = %d", len(s.Mappings()))
	}
}

func TestScriptInsertExcludeAssociate(t *testing.T) {
	s := freshOrg(t)
	script := `
INSERT Org Dave "Dpt. Dave & Co" LEVEL Department AT 01/2002 UNTIL 12/2003 PARENTS Sales
EXCLUDE Org Brian AT 01/2003
ASSOCIATE Brian Dave FORWARD 0.5 am BACKWARD - uk
`
	ops, err := ParseScript(strings.NewReader(script), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewApplier(s).Apply(ops...); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	dave := d.Version("Dave")
	if dave == nil || dave.Name != "Dpt. Dave & Co" {
		t.Fatalf("quoted name lost: %v", dave)
	}
	if !dave.Valid.Equal(temporal.Between(temporal.YM(2002, 1), temporal.YM(2003, 12))) {
		t.Errorf("bounded validity = %v", dave.Valid)
	}
	if d.Version("Brian").Valid.End != temporal.YM(2002, 12) {
		t.Error("exclude failed")
	}
	m := s.Mappings()[0]
	if v, _ := m.Forward[0].Fn.Map(100); v != 50 {
		t.Errorf("forward factor = %v", v)
	}
	if _, ok := m.Backward[0].Fn.Map(1); ok {
		t.Error("backward must be unknown")
	}
}

func TestScriptMerge(t *testing.T) {
	s := freshOrg(t)
	script := `MERGE Org Jones,Smith AT 01/2002 LEVEL Department PARENTS Sales INTO JS BACK 0.7,-`
	ops, err := ParseScript(strings.NewReader(script), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewApplier(s).Apply(ops...); err != nil {
		t.Fatal(err)
	}
	d := s.Dimension("Org")
	if d.Version("JS") == nil {
		t.Fatal("merge target missing")
	}
	if len(s.Mappings()) != 2 {
		t.Fatalf("mappings = %d", len(s.Mappings()))
	}
	// First source maps back with 0.7, second is unknown.
	var jones, smith core.MappingRelationship
	for _, m := range s.Mappings() {
		switch m.From {
		case "Jones":
			jones = m
		case "Smith":
			smith = m
		}
	}
	if v, _ := jones.Backward[0].Fn.Map(100); v != 70 {
		t.Errorf("Jones back = %v", v)
	}
	if _, ok := smith.Backward[0].Fn.Map(1); ok {
		t.Error("Smith back must be unknown")
	}
}

func TestScriptCommentsAndBlank(t *testing.T) {
	ops, err := ParseScript(strings.NewReader("\n# only a comment\n\n"), 1)
	if err != nil || len(ops) != 0 {
		t.Errorf("comment-only script = %v, %v", ops, err)
	}
}

func TestScriptErrors(t *testing.T) {
	cases := []string{
		"FROBNICATE x",
		"INSERT Org",
		"INSERT Org id",
		"INSERT Org id name",         // missing AT
		"INSERT Org id name AT junk", // bad instant
		"INSERT Org id name AT 01/2002 UNTIL junk",
		"INSERT Org id name AT 01/2002 extra",
		"EXCLUDE Org",
		"EXCLUDE Org id",
		"EXCLUDE Org id AT junk",
		"ASSOCIATE a",
		"ASSOCIATE a b",
		"ASSOCIATE a b FORWARD",
		"ASSOCIATE a b FORWARD x em BACKWARD 1 em",
		"ASSOCIATE a b FORWARD 1 zz BACKWARD 1 em",
		"ASSOCIATE a b FORWARD 1 em",
		"ASSOCIATE a b FORWARD 1 em BACKWARD 1 em extra",
		"RECLASSIFY Org",
		"RECLASSIFY Org id",
		"RECLASSIFY Org id AT junk",
		"RECLASSIFY Org id AT 01/2002 junk",
		"SPLIT Org id AT 01/2002",
		"SPLIT Org id AT 01/2002 INTO noweight",
		"SPLIT Org id AT 01/2002 INTO a=x",
		"MERGE Org a,b AT 01/2002",
		"MERGE Org a,b AT 01/2002 INTO c BACK 0.5",
		"MERGE Org a,b AT 01/2002 INTO c BACK x,y",
		`INSERT Org id "unterminated AT 01/2002`,
	}
	for _, in := range cases {
		if _, err := ParseScript(strings.NewReader(in), 1); err == nil {
			t.Errorf("script %q must fail", in)
		}
	}
}
