package store

import (
	"fmt"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// BenchmarkWarmRestart measures restart-to-first-query: Open on a data
// dir holding a snapshot plus a WAL-tail fact batch, then the first
// query's MultiVersion().All(). The warm leg restores every mode's
// mapped table from the snapshot and delta-folds the tail; the cold leg
// (the same snapshot written with SnapshotWarm off) rematerializes
// every mode from the raw facts.
//
// The fixture is built so the two legs differ the way a long-lived
// warehouse does: facts live on current-era departments whose values
// only exist in earlier structure versions through mapping
// relationships, so cold materialization of each historical mode fans
// every fact out across the reachable era members, while the warm
// tables it produces stay small (the fan-out folds back onto the
// shared era members).

const (
	wbLeaves  = 120 // current-era departments carrying facts
	wbMonths  = 24  // months of facts per department
	wbEras    = 3   // historical eras preceding the current structure
	wbEraSize = 96  // departments per historical era
	wbFanOut  = 6   // mapping links per department per era
)

func wbLeaf(k int) core.MVID         { return core.MVID(fmt.Sprintf("leaf%d", k)) }
func wbEraMember(e, j int) core.MVID { return core.MVID(fmt.Sprintf("e%dm%d", e, j)) }

// warmBenchSchema builds the fixture: one Org dimension where each
// historical year 2000..2002 has its own generation of departments,
// the current departments exist since 2003 and carry all the facts,
// and mapping relationships link every current department to wbFanOut
// members of each era. The stride 7 is coprime with wbEraSize, so the
// mapping graph is one connected component and each department resolves
// to every member of the accepted era.
func warmBenchSchema(b *testing.B) *core.Schema {
	b.Helper()
	s := core.NewSchema("restart", core.Measure{Name: "Amount", Agg: core.Sum})
	d := core.NewDimension("Org", "Org")
	if err := d.AddVersion(&core.MemberVersion{ID: "top", Level: "Division", Valid: temporal.Since(temporal.Year(2000))}); err != nil {
		b.Fatal(err)
	}
	for e := 0; e < wbEras; e++ {
		valid := temporal.Between(temporal.Year(2000+e), temporal.EndOfYear(2000+e))
		for j := 0; j < wbEraSize; j++ {
			id := wbEraMember(e, j)
			if err := d.AddVersion(&core.MemberVersion{ID: id, Level: "Department", Valid: valid}); err != nil {
				b.Fatal(err)
			}
			if err := d.AddRelationship(core.TemporalRelationship{From: id, To: "top", Valid: valid}); err != nil {
				b.Fatal(err)
			}
		}
	}
	current := temporal.Since(temporal.Year(2000 + wbEras))
	for k := 0; k < wbLeaves; k++ {
		id := wbLeaf(k)
		if err := d.AddVersion(&core.MemberVersion{ID: id, Level: "Department", Valid: current}); err != nil {
			b.Fatal(err)
		}
		if err := d.AddRelationship(core.TemporalRelationship{From: id, To: "top", Valid: current}); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		b.Fatal(err)
	}
	for k := 0; k < wbLeaves; k++ {
		for e := 0; e < wbEras; e++ {
			for i := 0; i < wbFanOut; i++ {
				m := core.MappingRelationship{
					From:     wbEraMember(e, (k+7*i)%wbEraSize),
					To:       wbLeaf(k),
					Forward:  core.UniformMapping(1, core.Linear{K: 1.0 / wbFanOut}, core.ApproxMapping),
					Backward: core.UniformMapping(1, core.Linear{K: 1.0 / wbEraSize}, core.ApproxMapping),
				}
				if err := s.AddMapping(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	base := temporal.Year(2000 + wbEras)
	for k := 0; k < wbLeaves; k++ {
		for m := 0; m < wbMonths; m++ {
			if err := s.InsertFact(core.Coords{wbLeaf(k)}, base+temporal.Instant(m), float64(k+m)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s
}

// seedWarmRestartDir materializes every mode, snapshots (warm or cold)
// and appends a WAL-tail fact batch the snapshot does not cover, then
// abandons the store un-closed — each benchmark iteration recovers
// from this simulated SIGKILL. Returns the mode count.
func seedWarmRestartDir(b *testing.B, dir string, warm bool) int {
	b.Helper()
	st, sch, ap, err := Open(dir, warmBenchSchema(b), Options{SnapshotWarm: warm, Logger: quietLog()})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sch.MultiVersion().All(); err != nil {
		b.Fatal(err)
	}
	nModes := len(sch.Modes())
	if nModes < 4 {
		b.Fatalf("fixture has %d modes, want >= 4", nModes)
	}
	if _, err := st.Snapshot(sch, ap.Log(), "bench"); err != nil {
		b.Fatal(err)
	}
	tail := []FactRecord{
		{Coords: []string{string(wbLeaf(0))}, Time: "06/2005", Values: []float64{5}},
		{Coords: []string{string(wbLeaf(1))}, Time: "06/2005", Values: []float64{7}},
	}
	if _, _, err := st.AppendFactBatch(tail); err != nil {
		b.Fatal(err)
	}
	return nModes
}

func BenchmarkWarmRestart(b *testing.B) {
	for _, leg := range []struct {
		name string
		warm bool
	}{{"warm", true}, {"cold", false}} {
		b.Run(leg.name, func(b *testing.B) {
			dir := b.TempDir()
			nModes := seedWarmRestartDir(b, dir, leg.warm)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, sch, _, err := Open(dir, nil, Options{Logger: quietLog()})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sch.MultiVersion().All(); err != nil {
					b.Fatal(err)
				}
				builds := sch.MultiVersion().Materializations()
				restored := len(st.RecoveryStats().WarmModes)
				if leg.warm {
					if restored != nModes {
						b.Fatalf("restored %d warm modes, want %d", restored, nModes)
					}
					if builds != 0 {
						b.Fatalf("warm restart performed %d materializations, want 0", builds)
					}
				} else {
					if restored != 0 {
						b.Fatalf("cold snapshot restored %d warm modes", restored)
					}
					if builds != int64(nModes) {
						b.Fatalf("cold restart materialized %d modes, want %d", builds, nModes)
					}
				}
				b.StopTimer()
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
