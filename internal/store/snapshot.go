package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/schemaio"
)

// A snapshot is one JSON file freezing the whole warehouse at a WAL
// sequence number: the schema (serialized by schemaio, so snapshots
// are readable by every tool that reads warehouse files) plus the §5.2
// evolution log, which schemaio does not carry but /schema serves.
// Snapshots are written to a temp file, fsynced, and renamed into
// place, so a crash mid-write never leaves a half snapshot under the
// final name.

// snapshotFormat versions the envelope, not the schema document.
// Format 1 (PR 3) carried schema + evolution log; format 2 adds the
// optional warm section. Readers accept both — an old snapshot simply
// recovers with zero warm modes.
const (
	snapshotFormat       = 2
	oldestSnapshotFormat = 1
)

// snapshotFile is the on-disk envelope.
type snapshotFile struct {
	Format       int                `json:"format"`
	WALSeq       uint64             `json:"walSeq"`
	EvolutionLog []snapshotLogEntry `json:"evolutionLog,omitempty"`
	Schema       json.RawMessage    `json:"schema"`
	// Warm optionally carries the materialized MappedTable of every
	// cached temporal mode, each payload CRC-checked independently so
	// one corrupt mode degrades to a cold rebuild of that mode only.
	Warm []warmModeFile `json:"warm,omitempty"`
}

// warmModeFile is one cached mode's serialized MappedTable. Payload is
// the schemaio mapped-table binary encoding (base64 inside the JSON
// envelope); CRC is crc32.ChecksumIEEE over the raw payload bytes.
type warmModeFile struct {
	Mode    string `json:"mode"`
	CRC     uint32 `json:"crc"`
	Payload []byte `json:"payload"`
}

// snapshotLogEntry mirrors evolution.LogEntry with stable JSON names.
type snapshotLogEntry struct {
	Seq         int      `json:"seq"`
	Description string   `json:"description"`
	Touched     []string `json:"touched,omitempty"`
}

func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%016d.json", seq) }
func walName(seq uint64) string      { return fmt.Sprintf("wal-%016d.log", seq) }

// seqOfName extracts the sequence number from a snapshot or WAL file
// name produced by snapshotName/walName.
func seqOfName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if _, err := fmt.Sscanf(digits, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// encodeSnapshot renders the snapshot envelope for a schema and its
// evolution log. The bytes are deterministic for a given schema state:
// schemaio emits dimensions, versions, relationships, mappings and
// facts in insertion order, the warm section sorts by mode key and the
// mapped-table codec preserves tuple order, and the envelope adds no
// timestamps. With warm set, every completed mode of the schema's MVFT
// cache is carried; a cold cache yields no warm section at all.
func encodeSnapshot(sch *core.Schema, log []evolution.LogEntry, walSeq uint64, warm bool) ([]byte, error) {
	var schemaDoc bytes.Buffer
	if err := schemaio.Write(&schemaDoc, sch); err != nil {
		return nil, fmt.Errorf("store: snapshot schema: %w", err)
	}
	out := snapshotFile{Format: snapshotFormat, WALSeq: walSeq, Schema: schemaDoc.Bytes()}
	for _, e := range log {
		se := snapshotLogEntry{Seq: e.Seq, Description: e.Description}
		for _, id := range e.Touched {
			se.Touched = append(se.Touched, string(id))
		}
		out.EvolutionLog = append(out.EvolutionLog, se)
	}
	if warm {
		for _, exp := range sch.ExportWarmModes() {
			payload, err := schemaio.EncodeMappedTable(exp)
			if err != nil {
				return nil, fmt.Errorf("store: snapshot warm mode %s: %w", exp.ModeKey, err)
			}
			out.Warm = append(out.Warm, warmModeFile{
				Mode:    exp.ModeKey,
				CRC:     crc32.ChecksumIEEE(payload),
				Payload: payload,
			})
		}
	}
	return json.MarshalIndent(out, "", " ")
}

// writeSnapshot durably writes the snapshot for walSeq into dir:
// temp file → fsync → rename → fsync(dir).
func writeSnapshot(dir string, sch *core.Schema, log []evolution.LogEntry, walSeq uint64, warm bool) (string, error) {
	data, err := encodeSnapshot(sch, log, walSeq, warm)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, snapshotName(walSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// readSnapshot loads and validates one snapshot file. The returned
// warm list (if any) is unverified: callers CRC-check and decode each
// mode individually, so a corrupt mode degrades to a cold rebuild of
// that mode rather than an unreadable snapshot.
func readSnapshot(path string) (*core.Schema, []evolution.LogEntry, uint64, []warmModeFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, nil, err
	}
	return decodeSnapshot(data, path)
}

// decodeSnapshot parses a snapshot envelope from memory; name labels
// errors (a file path, or the bootstrap URL a replica fetched from).
func decodeSnapshot(data []byte, name string) (*core.Schema, []evolution.LogEntry, uint64, []warmModeFile, error) {
	var in snapshotFile
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, nil, 0, nil, fmt.Errorf("store: snapshot %s: %w", name, err)
	}
	if in.Format < oldestSnapshotFormat || in.Format > snapshotFormat {
		return nil, nil, 0, nil, fmt.Errorf("store: snapshot %s: unsupported format %d", name, in.Format)
	}
	sch, err := schemaio.Read(bytes.NewReader(in.Schema))
	if err != nil {
		return nil, nil, 0, nil, fmt.Errorf("store: snapshot %s: %w", name, err)
	}
	var log []evolution.LogEntry
	for _, se := range in.EvolutionLog {
		e := evolution.LogEntry{Seq: se.Seq, Description: se.Description}
		for _, id := range se.Touched {
			e.Touched = append(e.Touched, core.MVID(id))
		}
		log = append(log, e)
	}
	return sch, log, in.WALSeq, in.Warm, nil
}

// listBySeq returns the files in dir matching prefix/suffix, sorted by
// embedded sequence number ascending, paired with those numbers.
func listBySeq(dir, prefix, suffix string) (names []string, seqs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type item struct {
		name string
		seq  uint64
	}
	var items []item
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := seqOfName(e.Name(), prefix, suffix); ok {
			items = append(items, item{e.Name(), seq})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].seq < items[j].seq })
	for _, it := range items {
		names = append(names, it.name)
		seqs = append(seqs, it.seq)
	}
	return names, seqs, nil
}

// syncDir fsyncs a directory so renames and unlinks within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
