package store

import (
	"bytes"
	"encoding/binary"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/schemaio"
)

// quietLog keeps recovery and compaction logs out of test output.
func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// seedSchema builds the full ICDE 2003 case study fixture.
func seedSchema(t *testing.T) *core.Schema {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// schemaBytes renders a schema through schemaio for byte comparison.
func schemaBytes(t *testing.T, s *core.Schema) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := schemaio.Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// applyEvolve mirrors the serving path: parse, clone, rebind, apply.
func applyEvolve(t *testing.T, sch *core.Schema, ap *evolution.Applier, script string) (*core.Schema, *evolution.Applier) {
	t.Helper()
	ops, err := evolution.ParseScript(strings.NewReader(script), len(sch.Measures()))
	if err != nil {
		t.Fatalf("parse %q: %v", script, err)
	}
	clone := sch.Clone()
	ap2 := ap.Rebind(clone)
	if err := ap2.Apply(ops...); err != nil {
		t.Fatalf("apply %q: %v", script, err)
	}
	return clone, ap2
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{
		{"always", FsyncAlways},
		{"Interval", FsyncInterval},
		{" off ", FsyncOff},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy must fail")
	}
	if FsyncInterval.String() != "interval" {
		t.Errorf("String = %q", FsyncInterval.String())
	}
}

func TestParseFactBatch(t *testing.T) {
	batch, err := ParseFactBatch([]byte(`[{"coords":["Dpt.Bill_id"],"time":"2004","values":[70]}]`))
	if err != nil || len(batch) != 1 || batch[0].Values[0] != 70 {
		t.Fatalf("batch = %+v, %v", batch, err)
	}
	if _, err := ParseFactBatch([]byte(`[]`)); err == nil {
		t.Error("empty batch must fail")
	}
	if _, err := ParseFactBatch([]byte(`{"not":"array"}`)); err == nil {
		t.Error("non-array must fail")
	}
}

// TestOpenFreshAppendReopen is the basic durability loop: append an
// evolution and a fact batch, reopen, and observe the recovered schema
// carrying both.
func TestOpenFreshAppendReopen(t *testing.T) {
	dir := t.TempDir()
	st, sch, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.RecoveryStats(); got.Replayed != 0 || got.SnapshotSeq != 0 {
		t.Errorf("fresh stats = %+v", got)
	}
	baseModes := len(sch.Modes())

	seq, due, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n"))
	if err != nil || seq != 1 || due {
		t.Fatalf("append evolve = %d, %v, %v", seq, due, err)
	}
	seq, _, err = st.AppendFactBatch([]FactRecord{
		{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}},
		{Coords: []string{"Dpt.Paul_id"}, Time: "2004", Values: []float64{30}},
	})
	if err != nil || seq != 2 {
		t.Fatalf("append facts = %d, %v", seq, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, sch2, ap2, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats(); got.Replayed != 2 || got.TornBytes != 0 {
		t.Errorf("reopen stats = %+v", got)
	}
	if st2.LastSeq() != 2 {
		t.Errorf("lastSeq = %d", st2.LastSeq())
	}
	// The exclusion creates a fourth structure version; the batch adds
	// two facts.
	if got := len(sch2.Modes()); got != baseModes+1 {
		t.Errorf("modes after replay = %d, want %d", got, baseModes+1)
	}
	if got := sch2.Facts().Len(); got != 12 {
		t.Errorf("facts after replay = %d, want 12", got)
	}
	if len(ap2.Log()) == 0 {
		t.Error("replayed applier has no evolution log")
	}
	// The reopened store accepts further appends with continuous seqs.
	if seq, _, err := st2.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n")); err != nil || seq != 3 {
		t.Errorf("append after reopen = %d, %v", seq, err)
	}
}

// TestSnapshotRotateCompact verifies the snapshot lifecycle: rotation
// to a fresh WAL, deletion of superseded files, and recovery from the
// snapshot alone (nil seed).
func TestSnapshotRotateCompact(t *testing.T) {
	dir := t.TempDir()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	sch, ap = applyEvolve(t, sch, ap, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	seq, err := st.Snapshot(sch, ap.Log(), "test")
	if err != nil || seq != 1 {
		t.Fatalf("snapshot = %d, %v", seq, err)
	}
	if st.SnapshotSeq() != 1 {
		t.Errorf("snapSeq = %d", st.SnapshotSeq())
	}

	// Exactly one snapshot and one (fresh) WAL file remain.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("files after snapshot = %v %v", snaps, wals)
	}
	if wals[0] != filepath.Join(dir, walName(2)) {
		t.Errorf("rotated wal = %s", wals[0])
	}

	// One more record after the rotation.
	sch, ap = applyEvolve(t, sch, ap, "EXCLUDE Org Dpt.Smith_id AT 01/2005\n")
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n")); err != nil {
		t.Fatal(err)
	}
	want := schemaBytes(t, sch)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover with no seed: the snapshot is the only base.
	st2, sch2, ap2, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats(); got.SnapshotSeq != 1 || got.Replayed != 1 {
		t.Errorf("stats = %+v", got)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Errorf("recovered schema differs from live schema:\n%s\nvs\n%s", got, want)
	}
	if len(ap2.Log()) != len(ap.Log()) {
		t.Errorf("evolution log = %d entries, want %d", len(ap2.Log()), len(ap.Log()))
	}
}

func TestSnapshotDue(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{SnapshotEvery: 2, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, due, _ := st.AppendEvolve([]byte("# one\n")); due {
		t.Error("due after 1 of 2")
	}
	if _, due, _ := st.AppendEvolve([]byte("# two\n")); !due {
		t.Error("not due after 2 of 2")
	}
}

func TestOpenNoSeedNoSnapshot(t *testing.T) {
	if _, _, _, err := Open(t.TempDir(), nil, Options{Logger: quietLog()}); err == nil {
		t.Fatal("empty dir with nil seed must fail")
	}
}

func TestAppendAfterClose(t *testing.T) {
	st, _, _, err := Open(t.TempDir(), seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendEvolve([]byte("x")); err == nil {
		t.Error("append after close must fail")
	}
	if err := st.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestFsyncIntervalRecovers(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{
		Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond, Logger: quietLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the background flusher run
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.RecoveryStats().Replayed != 1 {
		t.Errorf("replayed = %d", st2.RecoveryStats().Replayed)
	}
}

func TestScanWALRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0000000000000001.log")
	if err := os.WriteFile(path, []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := scanWAL(path); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestScanWALRejectsSeqJump(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName(1))
	f, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{1, 3} { // gap: 2 is missing
		buf, err := encodeRecord(walRecord{Seq: seq, Type: RecordEvolve, Data: []byte(`"x"`)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := scanWAL(path); err == nil || !strings.Contains(err.Error(), "sequence jumped") {
		t.Fatalf("seq jump error = %v", err)
	}
}

// TestScanWALStopsAtCorruptRecord flips one payload byte and expects
// the scan to keep everything before it and report the rest as torn.
func TestScanWALStopsAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName(1))
	f, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	off := int64(len(walMagic))
	for seq := uint64(1); seq <= 3; seq++ {
		buf, err := encodeRecord(walRecord{Seq: seq, Type: RecordEvolve, Data: []byte(`"x"`)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
		off += int64(len(buf))
	}
	f.Close()

	// Corrupt one payload byte of record 3.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[offsets[2]+recordHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	scan, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.records) != 2 || scan.goodSize != offsets[2] || scan.tornBytes == 0 {
		t.Errorf("scan = %d records, goodSize %d (want %d), torn %d",
			len(scan.records), scan.goodSize, offsets[2], scan.tornBytes)
	}
}

// TestOpenRejectsMidHistoryCorruption: a torn record is only tolerable
// in the newest WAL file; anywhere else the history has a hole and
// recovery must refuse rather than silently skip records.
func TestOpenRejectsMidHistoryCorruption(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, walName(1))
	f, err := createWAL(old)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := encodeRecord(walRecord{Seq: 1, Type: RecordEvolve, Data: []byte(`"EXCLUDE Org Dpt.Brian_id AT 01/2004\n"`)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage-tail"); err != nil { // torn, but not the last file
		t.Fatal(err)
	}
	f.Close()
	f2, err := createWAL(filepath.Join(dir, walName(2)))
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()

	if _, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()}); err == nil ||
		!strings.Contains(err.Error(), "mid-history") {
		t.Fatalf("mid-history corruption error = %v", err)
	}
}

// TestOpenSkipsUnreadableSnapshot: a corrupt newest snapshot falls
// back to the older good one instead of failing recovery.
func TestOpenSkipsUnreadableSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	sch, ap = applyEvolve(t, sch, ap, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Snapshot(sch, ap.Log(), "test"); err != nil {
		t.Fatal(err)
	}
	want := schemaBytes(t, sch)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot that is garbage.
	if err := os.WriteFile(filepath.Join(dir, snapshotName(99)), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.RecoveryStats().SnapshotSeq != 1 {
		t.Errorf("snapshotSeq = %d, want fallback to 1", st2.RecoveryStats().SnapshotSeq)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Error("fallback snapshot recovered a different schema")
	}
}

// TestRecordRoundTrip checks the frame layout directly: length prefix,
// CRC, payload.
func TestRecordRoundTrip(t *testing.T) {
	buf, err := encodeRecord(walRecord{Seq: 7, Type: RecordFacts, Data: []byte(`[]`)})
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(buf[0:4]); int(got) != len(buf)-recordHeaderSize {
		t.Errorf("length prefix = %d, frame = %d", got, len(buf))
	}
	path := filepath.Join(t.TempDir(), walName(1))
	f, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(buf); err != nil {
		t.Fatal(err)
	}
	f.Close()
	scan, err := scanWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.records) != 1 || scan.records[0].Seq != 7 || scan.records[0].Type != RecordFacts {
		t.Errorf("scan = %+v", scan.records)
	}
	if scan.tornBytes != 0 {
		t.Errorf("tornBytes = %d", scan.tornBytes)
	}
}
