package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// These tests pin the append-path durability contract the replication
// tier depends on: an append that returns an error leaves no trace —
// not in the file, not in the sequence, not on any stream — and a
// CRC-valid record that cannot be parsed stops recovery instead of
// being silently dropped. See docs/persistence.md.

// TestAppendRejectsOversizedRecord: a record scanWAL would refuse on
// restart must be refused at append time, not acknowledged and then
// thrown away (with everything after it) by the next recovery.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	huge := bytes.Repeat([]byte("x"), maxWALRecord) // JSON framing pushes it past the bound
	if _, _, err := st.AppendEvolve(huge); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append error = %v, want ErrRecordTooLarge", err)
	}
	if st.LastSeq() != 0 {
		t.Errorf("lastSeq after rejected append = %d, want 0", st.LastSeq())
	}
	// The refused record consumed nothing: the next append takes seq 1
	// and a reopen replays exactly one record.
	if seq, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil || seq != 1 {
		t.Fatalf("append after rejection = %d, %v", seq, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats(); got.Replayed != 1 || got.TornBytes != 0 {
		t.Errorf("reopen stats = %+v", got)
	}
}

// TestScanWALRejectsUnparseablePayload: a frame whose CRC matches but
// whose payload is not a WAL record cannot be a torn write — the CRC
// covers the whole payload. It is mid-history corruption or version
// skew, and recovery must refuse rather than truncate acked records.
func TestScanWALRejectsUnparseablePayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName(1))
	f, err := createWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	good, err := encodeRecord(walRecord{Seq: 1, Type: RecordEvolve, Data: []byte(`"x"`)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(good); err != nil {
		t.Fatal(err)
	}
	// A CRC-valid frame around a payload that is not JSON.
	payload := []byte("{definitely not a wal record")
	var header [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := scanWAL(path); err == nil || !strings.Contains(err.Error(), "unparseable") {
		t.Fatalf("scan error = %v, want unparseable-payload refusal", err)
	}
}

// setFsyncHook swaps the store's fsync for a fault-injection stand-in.
func setFsyncHook(st *Store, hook func() error) {
	st.mu.Lock()
	st.fsyncHook = hook
	st.mu.Unlock()
}

// TestAppendFsyncFailureRollsBack: under FsyncAlways a failed fsync
// must leave the WAL exactly as it was — same size, same sequence —
// so the record a client was told failed can never replay on restart
// or ship to a replica.
func TestAppendFsyncFailureRollsBack(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{Fsync: FsyncAlways, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	if seq, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil || seq != 1 {
		t.Fatalf("first append = %d, %v", seq, err)
	}

	// Fail the append's fsync once; the rollback's own fsync succeeds.
	calls := 0
	setFsyncHook(st, func() error {
		calls++
		if calls == 1 {
			return errors.New("injected fsync failure")
		}
		return nil
	})
	poison := []byte("EXCLUDE Org Dpt.POISON_id AT 01/2005\n")
	if _, _, err := st.AppendEvolve(poison); err == nil || strings.Contains(err.Error(), "disabled") {
		t.Fatalf("append under fsync failure = %v, want plain fsync error", err)
	}
	if st.LastSeq() != 1 {
		t.Errorf("lastSeq after failed append = %d, want 1", st.LastSeq())
	}

	// The store stays usable and reuses the rolled-back sequence.
	if seq, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n")); err != nil || seq != 2 {
		t.Fatalf("append after recovery = %d, %v", seq, err)
	}

	// Crash-style reopen (no Close): the failed record must not exist.
	st2, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats(); got.Replayed != 2 || got.TornBytes != 0 {
		t.Errorf("reopen stats = %+v", got)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("POISON")) {
		t.Error("failed append left bytes in the WAL")
	}
}

// TestAppendFsyncPersistentFailureLatches: when even the rollback
// cannot be made durable, the store must refuse all further appends
// rather than limp along with an ambiguous tail.
func TestAppendFsyncPersistentFailureLatches(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{Fsync: FsyncAlways, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	setFsyncHook(st, func() error { return errors.New("disk on fire") })
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err == nil ||
		!strings.Contains(err.Error(), "disabled") {
		t.Fatalf("append under persistent fsync failure = %v, want store-disabled latch", err)
	}
	setFsyncHook(st, nil) // the latch, not the hook, must refuse
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n")); err == nil ||
		!strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on latched store = %v, want closed", err)
	}
}

// TestStreamReaderDelivers: a stream reader hands out the exact bytes
// of the committed WAL, blocks-then-wakes on a concurrent append, and
// reports idleness for the heartbeat path.
func TestStreamReaderDelivers(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendFactBatch([]FactRecord{{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}}}); err != nil {
		t.Fatal(err)
	}

	sr := st.StreamFrom(1)
	defer sr.Close()
	ctx := context.Background()
	frames, last, err := sr.Next(ctx, 1<<20, time.Second)
	if err != nil || last != 2 {
		t.Fatalf("Next = last %d, %v", last, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, walName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frames, raw[len(walMagic):]) {
		t.Error("streamed frames differ from the WAL bytes")
	}

	// Caught up: idle elapses with the committed frontier reported.
	if _, last, err := sr.Next(ctx, 1<<20, 20*time.Millisecond); !errors.Is(err, ErrStreamIdle) || last != 2 {
		t.Fatalf("idle Next = last %d, %v", last, err)
	}

	// A concurrent append wakes the blocked reader.
	go func() {
		time.Sleep(50 * time.Millisecond)
		st.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n"))
	}()
	frames, last, err = sr.Next(ctx, 1<<20, 5*time.Second)
	if err != nil || last != 3 || len(frames) == 0 {
		t.Fatalf("Next after wake = last %d, %d bytes, %v", last, len(frames), err)
	}

	// Context cancellation unblocks a caught-up reader.
	cctx, cancel := context.WithCancel(ctx)
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	if _, _, err := sr.Next(cctx, 1<<20, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Next = %v", err)
	}
}

// TestStreamReaderRotationAndCompaction: sequences are contiguous
// across WAL rotation, a reader survives compaction deleting the file
// under its open descriptor, and a position that now lives only in a
// snapshot reports ErrCompacted.
func TestStreamReaderRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var clone = sch
	clone, ap = applyEvolve(t, clone, ap, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendFactBatch([]FactRecord{{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}}}); err != nil {
		t.Fatal(err)
	}

	// Reader drains the first file and keeps its descriptor.
	sr := st.StreamFrom(1)
	defer sr.Close()
	ctx := context.Background()
	if _, last, err := sr.Next(ctx, 1<<20, time.Second); err != nil || last != 2 {
		t.Fatalf("pre-rotation Next = last %d, %v", last, err)
	}

	// Snapshot rotates to a fresh WAL and compacts the old one away.
	if _, err := st.Snapshot(clone, ap.Log(), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName(1))); !os.IsNotExist(err) {
		t.Fatalf("compaction left %s: %v", walName(1), err)
	}
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Smith_id AT 01/2005\n")); err != nil {
		t.Fatal(err)
	}

	// The open reader follows into the new file: seq 3 arrives.
	if _, last, err := sr.Next(ctx, 1<<20, time.Second); err != nil || last != 3 {
		t.Fatalf("post-rotation Next = last %d, %v", last, err)
	}

	// A fresh reader at a compacted position must re-bootstrap.
	old := st.StreamFrom(1)
	defer old.Close()
	if _, _, err := old.Next(ctx, 1<<20, time.Second); !errors.Is(err, ErrCompacted) {
		t.Fatalf("compacted Next = %v, want ErrCompacted", err)
	}
	// A fresh reader at the live position streams fine.
	live := st.StreamFrom(3)
	defer live.Close()
	if _, last, err := live.Next(ctx, 1<<20, time.Second); err != nil || last != 3 {
		t.Fatalf("live Next = last %d, %v", last, err)
	}
}

// TestHeartbeatFrameRoundTrip: heartbeats use the stream's normal
// framing so a follower parses them with the same reader.
func TestHeartbeatFrameRoundTrip(t *testing.T) {
	hb, err := HeartbeatFrame(42)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := readStreamFrame(bufio.NewReader(bytes.NewReader(hb)))
	if err != nil || rec.Seq != 42 || rec.Type != RecordHeartbeat {
		t.Fatalf("heartbeat round trip = %+v, %v", rec, err)
	}
}

// TestWaitForSeqBounded: the read-your-writes barrier respects its
// context instead of blocking a query forever.
func TestWaitForSeqBounded(t *testing.T) {
	r := NewReplica("http://unused", ReplicaOptions{Logger: quietLog()})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.WaitForSeq(ctx, 5); err == nil || !strings.Contains(err.Error(), "not yet replicated") {
		t.Fatalf("WaitForSeq = %v, want bounded failure", err)
	}
	if err := r.WaitForSeq(context.Background(), 0); err != nil {
		t.Fatalf("WaitForSeq(0) = %v", err)
	}
}
