package store

import "mvolap/internal/obs"

// Persistence metrics, served back out at GET /metrics. Names are
// documented in docs/persistence.md.
var (
	metWALAppends = obs.Default().CounterVec(
		"mvolap_store_wal_appends_total",
		"WAL records appended, by record type.",
		"type")
	metWALBytes = obs.Default().Counter(
		"mvolap_store_wal_bytes_total",
		"Bytes appended to the WAL (framing included).")
	metWALFsyncs = obs.Default().Counter(
		"mvolap_store_wal_fsyncs_total",
		"fsync calls issued on the WAL.")
	metWALFsyncSeconds = obs.Default().Histogram(
		"mvolap_store_wal_fsync_seconds",
		"WAL fsync latency.", nil)
	metWALLastSeq = obs.Default().Gauge(
		"mvolap_store_wal_last_seq",
		"Sequence number of the last appended WAL record.")
	metWALSinceSnapshot = obs.Default().Gauge(
		"mvolap_store_wal_records_since_snapshot",
		"WAL records appended since the latest snapshot.")
	metSnapshots = obs.Default().CounterVec(
		"mvolap_store_snapshots_total",
		"Snapshots taken, by trigger (auto, admin).",
		"trigger")
	metSnapshotSeconds = obs.Default().Histogram(
		"mvolap_store_snapshot_seconds",
		"Snapshot write + WAL rotation duration.", nil)
	metRecoverySeconds = obs.Default().Histogram(
		"mvolap_store_recovery_seconds",
		"Crash-recovery duration (snapshot load + WAL replay).", nil)
	metRecoveryRecords = obs.Default().Counter(
		"mvolap_store_recovery_replayed_total",
		"WAL records replayed during recovery.")
	metRecoveryTornBytes = obs.Default().Counter(
		"mvolap_store_recovery_torn_bytes_total",
		"Trailing WAL bytes dropped during recovery (torn final record).")
	metWarmRestored = obs.Default().Counter(
		"mvolap_mvft_warm_restore_total",
		"MVFT modes restored warm from a snapshot during crash recovery.")
	metWarmSkipped = obs.Default().Counter(
		"mvolap_mvft_warm_restore_skipped_total",
		"Snapshot warm modes rejected during recovery (CRC, codec or structural mismatch) and left to rebuild cold.")
	metReplApplied = obs.Default().Counter(
		"mvolap_repl_applied_total",
		"WAL records applied by this follower (bootstraps not included).")
	metReplLag = obs.Default().Gauge(
		"mvolap_repl_lag_records",
		"Replication lag in WAL records: leader's last known committed sequence minus the follower's applied sequence.")
	metReplReconnects = obs.Default().Counter(
		"mvolap_repl_reconnects_total",
		"Follower replication stream reconnect attempts (bootstrap retries included).")
)
