package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/evolution"
)

// fuzzFrame renders one framed WAL record for the seed corpus,
// panicking on failure (seeds are built from static literals).
func fuzzFrame(seq uint64, typ string, data any) []byte {
	raw, err := json.Marshal(data)
	if err != nil {
		panic(err)
	}
	buf, err := encodeRecord(walRecord{Seq: seq, Type: typ, Data: raw})
	if err != nil {
		panic(err)
	}
	return buf
}

// FuzzWALRecord drives the full recovery path — scanWAL framing, then
// applyRecord replay against the case-study warehouse — with arbitrary
// bytes in place of the WAL body. Every input must either replay or be
// refused with an error; nothing may panic. The seed corpus covers all
// three record types (facts, evolve, retract), a multi-record stream,
// a torn tail, and plain garbage.
func FuzzWALRecord(f *testing.F) {
	facts := fuzzFrame(1, RecordFacts, []FactRecord{
		{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}},
	})
	evolve := fuzzFrame(1, RecordEvolve, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	retract := fuzzFrame(2, RecordRetract, []RetractRecord{
		{Coords: []string{"Dpt.Bill_id"}, Time: "2004"},
	})
	f.Add(facts)
	f.Add(evolve)
	f.Add(retract)
	f.Add(append(append([]byte{}, facts...), retract...))
	f.Add(facts[:len(facts)-3]) // torn tail
	f.Add([]byte("garbage"))

	seed, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		path := filepath.Join(t.TempDir(), "wal-1.log")
		if err := os.WriteFile(path, append([]byte(walMagic), body...), 0o644); err != nil {
			t.Fatal(err)
		}
		scan, err := scanWAL(path)
		if err != nil {
			return // refused cleanly (corruption, version skew, sequence jump)
		}
		sch := seed.Clone()
		ap := evolution.NewApplier(sch)
		for _, rec := range scan.records {
			next, ap2, _, err := applyRecord(sch, ap, rec)
			if err != nil {
				// Refused cleanly; later records would replay against the
				// wrong state, exactly as recovery stops.
				return
			}
			sch, ap = next, ap2
		}
	})
}
