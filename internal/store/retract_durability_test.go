package store

import (
	"bytes"
	"os"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// Durability edges of the retract record type: a retraction is one WAL
// record like any other mutation, so a crash after the append must
// replay it byte-identically, and a crash inside it must land exactly
// on the pre-retraction state.

// buildRetractState drives the serving sequence: a fact batch (seq 1),
// a retraction of one appended and one seed fact (seq 2), and a
// re-insert at the retracted coordinates (seq 3 — an append, not a
// merge, since the old tuple is gone). It returns the abandoned store
// and the live schema bytes at each sequence point.
func buildRetractState(t *testing.T, dir string) (st *Store, atSeq map[uint64][]byte) {
	t.Helper()
	st, sch, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	atSeq = make(map[uint64][]byte)

	clone := sch.Clone()
	for _, fr := range crashFacts {
		if err := ApplyFact(clone, fr); err != nil {
			t.Fatalf("fact %+v: %v", fr, err)
		}
	}
	if seq, _, err := st.AppendFactBatch(crashFacts); err != nil || seq != 1 {
		t.Fatalf("facts append = %d, %v", seq, err)
	}
	sch = clone
	atSeq[1] = schemaBytes(t, sch)

	retract := []RetractRecord{
		{Coords: []string{"Dpt.Bill_id"}, Time: "2004"},  // appended above
		{Coords: []string{"Dpt.Smith_id"}, Time: "2002"}, // case-study seed fact
	}
	clone = sch.Clone()
	for i, rr := range retract {
		if _, err := ApplyRetract(clone, rr); err != nil {
			t.Fatalf("retract %d: %v", i, err)
		}
	}
	if seq, _, err := st.AppendRetractBatch(retract); err != nil || seq != 2 {
		t.Fatalf("retract append = %d, %v", seq, err)
	}
	sch = clone
	atSeq[2] = schemaBytes(t, sch)

	reinsert := []FactRecord{{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{55}}}
	clone = sch.Clone()
	if err := ApplyFact(clone, reinsert[0]); err != nil {
		t.Fatal(err)
	}
	if seq, _, err := st.AppendFactBatch(reinsert); err != nil || seq != 3 {
		t.Fatalf("re-insert append = %d, %v", seq, err)
	}
	sch = clone
	atSeq[3] = schemaBytes(t, sch)
	return st, atSeq
}

// TestCrashRecoveryAfterRetract kills the process right after a
// retract-bearing history and expects a byte-identical schema on
// reopen — the retraction replays exactly, including the re-insert
// that follows it.
func TestCrashRecoveryAfterRetract(t *testing.T) {
	dir := t.TempDir()
	_, atSeq := buildRetractState(t, dir) // store abandoned: simulated SIGKILL

	st2, sch2, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.RecoveryStats()
	if stats.Replayed != 3 || stats.TornBytes != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, atSeq[3]) {
		t.Errorf("recovered schema differs:\n%s\nwant:\n%s", got, atSeq[3])
	}
	if got := sch2.Facts().Len(); got != 11 {
		// 10 seed + 2 appended - 2 retracted + 1 re-inserted.
		t.Errorf("recovered fact count = %d, want 11", got)
	}
}

// TestCrashRecoveryTornRetract cuts the WAL inside the retract record:
// recovery must truncate the torn frame and land on the state before
// the retraction, with both retracted tuples still present.
func TestCrashRecoveryTornRetract(t *testing.T) {
	dir := t.TempDir()
	st, sch, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	clone := sch.Clone()
	for _, fr := range crashFacts {
		if err := ApplyFact(clone, fr); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.AppendFactBatch(crashFacts); err != nil {
		t.Fatal(err)
	}
	want := schemaBytes(t, clone)

	walPath := currentWAL(t, dir)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendRetractBatch([]RetractRecord{{Coords: []string{"Dpt.Bill_id"}, Time: "2004"}}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, before.Size()+5); err != nil { // mid-record
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.RecoveryStats()
	if stats.Replayed != 1 || stats.TornBytes != 5 {
		t.Errorf("stats = %+v", stats)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Error("torn retract changed the recovered state")
	}
	at, err := temporal.ParseInstant("2004")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sch2.Facts().Lookup(core.Coords{"Dpt.Bill_id"}, at); !ok {
		t.Error("tuple of the torn retraction is gone")
	}
}

// TestRecoveryRefusesPhantomRetract covers log/store divergence: a
// CRC-valid retract record addressing a tuple the store never held is
// corruption, not a torn tail — recovery must refuse the whole WAL
// rather than skip or partially apply the record.
func TestRecoveryRefusesPhantomRetract(t *testing.T) {
	dir := t.TempDir()
	st, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	// Append a retract record without validating it against any schema —
	// the tuple does not exist.
	if _, _, err := st.AppendRetractBatch([]RetractRecord{{Coords: []string{"Dpt.Bill_id"}, Time: "2050"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()}); err == nil {
		t.Fatal("recovery accepted a retract of a nonexistent tuple")
	}
}
