package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// This file simulates the crash half of the durability contract. A
// SIGKILL is modelled by abandoning a Store without Close — every
// write already issued is visible to a subsequent Open (the process
// page cache survives the process), and a crash mid-append is modelled
// by truncating the WAL inside its final record at a random byte.

// crashScripts are the evolution batches the crash tests drive through
// the WAL: an exclusion, an insertion and a reclassification, touching
// different §3.2 structural operators.
var crashScripts = []string{
	"EXCLUDE Org Dpt.Brian_id AT 01/2004\n",
	"INSERT Org Dpt.New_id Dpt.New LEVEL Department AT 01/2005 PARENTS Sales_id\n",
	"RECLASSIFY Org Dpt.Smith_id AT 01/2005 FROM R&D_id TO Sales_id\n",
}

var crashFacts = []FactRecord{
	{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}},
	{Coords: []string{"Dpt.Paul_id"}, Time: "2004", Values: []float64{30}},
}

// buildCrashState opens a store in dir and appends three evolution
// batches plus a fact batch (seq 1..4), mirroring each mutation on a
// live schema exactly like the serving path. It returns the abandoned
// store and the live state at seq 4.
func buildCrashState(t *testing.T, dir string) (*Store, []byte) {
	t.Helper()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	for _, script := range crashScripts {
		sch, ap = applyEvolve(t, sch, ap, script)
		if _, _, err := st.AppendEvolve([]byte(script)); err != nil {
			t.Fatal(err)
		}
	}
	clone := sch.Clone()
	for _, fr := range crashFacts {
		if err := ApplyFact(clone, fr); err != nil {
			t.Fatalf("fact %+v: %v", fr, err)
		}
	}
	if _, _, err := st.AppendFactBatch(crashFacts); err != nil {
		t.Fatal(err)
	}
	return st, schemaBytes(t, clone)
}

// currentWAL returns the single WAL file in dir.
func currentWAL(t *testing.T, dir string) string {
	t.Helper()
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("wal files = %v, %v", wals, err)
	}
	return wals[0]
}

// TestCrashRecoveryCleanKill kills the process (no Close, no torn
// write) and expects a byte-identical schema on reopen.
func TestCrashRecoveryCleanKill(t *testing.T) {
	dir := t.TempDir()
	_, want := buildCrashState(t, dir) // store abandoned: simulated SIGKILL

	st2, sch2, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.RecoveryStats()
	if stats.Replayed != 4 || stats.TornBytes != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Errorf("recovered schema differs:\n%s\nwant:\n%s", got, want)
	}
	if stats.Trace == nil {
		t.Error("recovery trace missing")
	}
}

// TestCrashRecoveryTornTail crashes mid-append: the final WAL record
// is cut at a random interior byte. Recovery must truncate the torn
// tail, land exactly on the state before the torn record, and leave
// the WAL appendable.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	st, want := buildCrashState(t, dir)

	// One more record whose append the "crash" interrupts.
	walPath := currentWAL(t, dir)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.New_id AT 06/2005\n")); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recLen := after.Size() - before.Size()
	if recLen <= 1 {
		t.Fatalf("record length = %d", recLen)
	}
	// Cut inside the record at a deterministic pseudo-random byte.
	rnd := rand.New(rand.NewSource(20260805))
	cut := before.Size() + 1 + rnd.Int63n(recLen-1)
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	st2, sch2, ap2, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.RecoveryStats()
	if stats.Replayed != 4 {
		t.Errorf("replayed = %d, want 4 (torn record dropped)", stats.Replayed)
	}
	if wantTorn := cut - before.Size(); stats.TornBytes != wantTorn {
		t.Errorf("tornBytes = %d, want %d", stats.TornBytes, wantTorn)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Errorf("recovered schema differs:\n%s\nwant:\n%s", got, want)
	}
	// The truncated file is back on a record boundary: appends continue
	// from seq 5 and survive another reopen.
	sch3, _ := applyEvolve(t, sch2, ap2, crashScriptAfterRecovery)
	if seq, _, err := st2.AppendEvolve([]byte(crashScriptAfterRecovery)); err != nil || seq != 5 {
		t.Fatalf("append after torn recovery = %d, %v", seq, err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, schFinal, _, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.RecoveryStats().Replayed != 5 {
		t.Errorf("second recovery replayed = %d", st3.RecoveryStats().Replayed)
	}
	if !bytes.Equal(schemaBytes(t, schFinal), schemaBytes(t, sch3)) {
		t.Error("schema after post-recovery append differs on reopen")
	}
}

const crashScriptAfterRecovery = "EXCLUDE Org Dpt.New_id AT 06/2005\n"

// TestCrashRecoveryAfterSnapshot crashes after a snapshot plus further
// appends, with the newest record torn: recovery loads the snapshot,
// replays only the WAL tail, and drops the torn record.
func TestCrashRecoveryAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	sch, ap = applyEvolve(t, sch, ap, crashScripts[0])
	if _, _, err := st.AppendEvolve([]byte(crashScripts[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Snapshot(sch, ap.Log(), "test"); err != nil {
		t.Fatal(err)
	}
	sch, ap = applyEvolve(t, sch, ap, crashScripts[1])
	if _, _, err := st.AppendEvolve([]byte(crashScripts[1])); err != nil {
		t.Fatal(err)
	}
	want := schemaBytes(t, sch)

	// Tear a third record and abandon the store.
	walPath := currentWAL(t, dir)
	before, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.AppendEvolve([]byte(crashScripts[2])); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, before.Size()+3); err != nil { // mid-header
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.RecoveryStats()
	if stats.SnapshotSeq != 1 || stats.Replayed != 1 || stats.TornBytes != 3 {
		t.Errorf("stats = %+v", stats)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Error("recovered schema differs from pre-crash state")
	}
}
