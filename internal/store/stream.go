package store

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// WAL streaming: the leader side of replication. A StreamReader
// follows the committed frontier of the write-ahead log and hands out
// raw MVOWAL01 frames — the same bytes, CRCs included, that recovery
// would replay — so a follower applies exactly what the leader wrote.
//
// The reader never sees an uncommitted byte: Store.append advances
// walSize and seq only after the record (and, under FsyncAlways, its
// fsync) succeeded, so a frame rolled back by a failed append is never
// shipped. Rotation is transparent — sequence numbers are contiguous
// across WAL files, and a file deleted by compaction under an open
// descriptor still reads to its final size.

// WALSeqHeader carries a WAL sequence number on the replication
// endpoints: the leader's last committed sequence on GET /wal/stream,
// and the covered sequence on GET /wal/snapshot.
const WALSeqHeader = "X-Mvolap-Wal-Seq"

// WALMagic is the stream preamble, identical to the WAL file header:
// a replication stream is a WAL file shipped over HTTP.
const WALMagic = walMagic

// ErrCompacted reports that the requested WAL position has been
// compacted into a snapshot; the follower must re-bootstrap from
// GET /wal/snapshot.
var ErrCompacted = errors.New("store: requested WAL records compacted into a snapshot")

// ErrStreamIdle reports that no record arrived within the idle window
// passed to Next; the caller typically emits a heartbeat frame.
var ErrStreamIdle = errors.New("store: wal stream idle")

// walStatusView is a point-in-time view of the WAL for stream readers.
type walStatusView struct {
	path      string
	committed int64  // committed byte size of path
	lastSeq   uint64 // last committed record
	notify    <-chan struct{}
}

func (st *Store) walStatus() (walStatusView, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return walStatusView{}, false
	}
	return walStatusView{path: st.walPath, committed: st.walSize, lastSeq: st.seq, notify: st.appendCh}, true
}

// HeartbeatFrame encodes a RecordHeartbeat frame carrying the leader's
// last committed sequence, in the stream's MVOWAL01 framing.
func HeartbeatFrame(seq uint64) ([]byte, error) {
	return encodeRecord(walRecord{Seq: seq, Type: RecordHeartbeat})
}

// StreamReader follows the WAL from a starting sequence, delivering
// committed frames in order. It is not safe for concurrent use; each
// replication stream owns one.
type StreamReader struct {
	st     *Store
	next   uint64 // next sequence to deliver
	f      *os.File
	path   string
	offset int64
}

// StreamFrom returns a reader positioned at the given sequence. The
// first Next reports ErrCompacted if that position now lives only
// inside a snapshot.
func (st *Store) StreamFrom(from uint64) *StreamReader {
	return &StreamReader{st: st, next: from}
}

// Close releases the reader's file handle.
func (r *StreamReader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// Next returns the raw framed bytes of one or more committed records
// starting at the reader's position (whole frames, up to roughly
// maxBytes), with the sequence of the last record included. When the
// reader is caught up it blocks until a record commits, the context
// ends, or idle elapses — the latter returns the current committed
// sequence with ErrStreamIdle so the caller can emit a heartbeat.
func (r *StreamReader) Next(ctx context.Context, maxBytes int, idle time.Duration) ([]byte, uint64, error) {
	var out []byte
	var last uint64
	for {
		status, ok := r.st.walStatus()
		if !ok {
			return nil, 0, errors.New("store: closed")
		}
		if r.next > status.lastSeq {
			if len(out) > 0 {
				return out, last, nil
			}
			timer := time.NewTimer(idle)
			select {
			case <-ctx.Done():
				timer.Stop()
				return nil, 0, ctx.Err()
			case <-status.notify:
				timer.Stop()
				continue
			case <-timer.C:
				return nil, status.lastSeq, ErrStreamIdle
			}
		}
		if r.f == nil {
			if err := r.open(); err != nil {
				return nil, 0, err
			}
		}
		// A rotated (non-current) file is complete: read it to its final
		// size. The current file is bounded by the committed frontier.
		limit := status.committed
		if r.path != status.path {
			info, err := r.f.Stat()
			if err != nil {
				return nil, 0, err
			}
			limit = info.Size()
		}
		if r.offset >= limit {
			if r.path != status.path {
				// Drained a rotated file; the next sequence lives in a
				// newer one (sequences are contiguous across rotation).
				r.Close()
				continue
			}
			// Committed frontier already consumed under this status view;
			// re-fetch (a commit may have landed since).
			continue
		}
		frame, seq, err := readFrameAt(r.f, r.path, r.offset, limit)
		if err != nil {
			return nil, 0, err
		}
		r.offset += int64(len(frame))
		if seq < r.next {
			continue // skipping the already-delivered prefix of this file
		}
		if seq != r.next {
			return nil, 0, fmt.Errorf("store: wal stream: expected seq %d, found %d in %s", r.next, seq, r.path)
		}
		out = append(out, frame...)
		last, r.next = seq, seq+1
		if len(out) >= maxBytes {
			return out, last, nil
		}
	}
}

// open positions the reader on the WAL file containing r.next: the
// file with the greatest base sequence not after it. A position older
// than every on-disk file has been compacted into a snapshot.
func (r *StreamReader) open() error {
	names, seqs, err := listBySeq(r.st.dir, "wal-", ".log")
	if err != nil {
		return err
	}
	idx := -1
	for i, base := range seqs {
		if base <= r.next {
			idx = i
		}
	}
	if idx < 0 {
		return ErrCompacted
	}
	path := filepath.Join(r.st.dir, names[idx])
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return ErrCompacted // compacted between the listing and the open
		}
		return err
	}
	magic := make([]byte, len(walMagic))
	if _, err := f.ReadAt(magic, 0); err != nil || string(magic) != walMagic {
		f.Close()
		return fmt.Errorf("store: %s: not a WAL file (bad magic)", path)
	}
	r.f, r.path, r.offset = f, path, int64(len(walMagic))
	return nil
}

// readFrameAt reads one complete frame at off, which the caller
// guarantees starts a committed record ending at or before limit. The
// CRC is verified before the bytes are handed to a follower.
func readFrameAt(f *os.File, path string, off, limit int64) ([]byte, uint64, error) {
	var header [recordHeaderSize]byte
	if off+recordHeaderSize > limit {
		return nil, 0, fmt.Errorf("store: %s: frame header crosses the committed frontier at %d", path, off)
	}
	if _, err := f.ReadAt(header[:], off); err != nil {
		return nil, 0, err
	}
	payloadLen := binary.LittleEndian.Uint32(header[0:4])
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	if payloadLen == 0 || payloadLen > maxWALRecord {
		return nil, 0, fmt.Errorf("store: %s: corrupt frame length %d at %d", path, payloadLen, off)
	}
	if off+recordHeaderSize+int64(payloadLen) > limit {
		return nil, 0, fmt.Errorf("store: %s: frame at %d crosses the committed frontier", path, off)
	}
	frame := make([]byte, recordHeaderSize+int(payloadLen))
	copy(frame, header[:])
	if _, err := f.ReadAt(frame[recordHeaderSize:], off+recordHeaderSize); err != nil {
		return nil, 0, err
	}
	payload := frame[recordHeaderSize:]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, fmt.Errorf("store: %s: CRC mismatch at %d", path, off)
	}
	var seqOnly struct {
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(payload, &seqOnly); err != nil {
		return nil, 0, fmt.Errorf("store: %s: unparseable frame at %d: %w", path, off, err)
	}
	return frame, seqOnly.Seq, nil
}

// LatestSnapshotBytes returns the raw bytes of the newest readable
// snapshot and the WAL sequence it covers — the follower bootstrap
// payload. It validates only the envelope, not the schema document.
func (st *Store) LatestSnapshotBytes() ([]byte, uint64, error) {
	names, _, err := listBySeq(st.dir, "snapshot-", ".json")
	if err != nil {
		return nil, 0, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(st.dir, names[i]))
		if err != nil {
			continue
		}
		var in snapshotFile
		if err := json.Unmarshal(data, &in); err != nil {
			continue
		}
		if in.Format < oldestSnapshotFormat || in.Format > snapshotFormat {
			continue
		}
		return data, in.WALSeq, nil
	}
	return nil, 0, fmt.Errorf("store: no readable snapshot in %s", st.dir)
}
