package store

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
)

// A Replica is the follower side of WAL-shipping replication: it
// bootstraps from the leader's latest snapshot (warm MVFT modes
// included), then applies the streamed WAL records through the same
// applyRecord → ApplyTouched + WarmFrom clone-swap path that crash
// recovery and the serving tier use, so a follower's hot state is the
// leader's hot state. Each applied clone is handed to the publish
// callback (typically server.Install), which swaps it into service.
//
// The replica owns its reconnect loop: a dropped stream resumes from
// the last applied sequence with exponential backoff, and a 410 from
// the leader (the resume position was compacted into a snapshot)
// triggers a fresh bootstrap.

// errGone reports a 410 from the leader's stream endpoint.
var errGone = errors.New("store: replica: resume position compacted; re-bootstrap required")

// ReplicaOptions tunes a Replica; the zero value works.
type ReplicaOptions struct {
	// Client performs the leader HTTP requests; nil means a dedicated
	// client with no overall timeout (streams are long-lived).
	Client *http.Client
	// Logger receives bootstrap, apply and reconnect logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// StaleAfter bounds how long the stream may go without any frame
	// (records or heartbeats) before the follower declares the
	// connection dead and reconnects; 0 means 10s.
	StaleAfter time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff; 0 means
	// 100ms / 3s.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// BeforeApply, when set, is called with each record's sequence
	// number before it is applied — an extension point for tests
	// (deterministic lag) and throttling.
	BeforeApply func(seq uint64)
}

// ReplicaStatus is a point-in-time view of replication progress,
// served on the follower's /readyz.
type ReplicaStatus struct {
	Leader     string `json:"leader"`
	Connected  bool   `json:"connected"`
	AppliedSeq uint64 `json:"appliedSeq"`
	LeaderSeq  uint64 `json:"leaderSeq"`
	// LagRecords is the seq delta: records the leader has committed
	// that this follower has not yet applied (as of last contact).
	LagRecords uint64 `json:"lagRecords"`
	// LagMs is the wall-clock lag: 0 when caught up, otherwise the
	// time since the follower last applied (or, before the first
	// apply, since it connected).
	LagMs      float64 `json:"lagMs"`
	Reconnects uint64  `json:"reconnects"`
	Bootstraps uint64  `json:"bootstraps"`
	WarmModes  int     `json:"warmModes"`
}

// Replica replicates a leader's WAL into a locally served schema.
type Replica struct {
	leader  string
	client  *http.Client
	logger  *slog.Logger
	opts    ReplicaOptions
	publish func(*core.Schema, *evolution.Applier, core.Delta)

	mu         sync.Mutex
	sch        *core.Schema
	ap         *evolution.Applier
	applied    uint64
	leaderSeq  uint64
	connected  bool
	lastFrame  time.Time
	lastApply  time.Time
	reconnects uint64
	bootstraps uint64
	warmModes  int
	appliedCh  chan struct{} // closed + replaced on every apply/bootstrap
}

// NewReplica creates a follower of the leader at the given base URL
// (e.g. "http://leader:8080"). Call SetPublish before Run.
func NewReplica(leader string, opts ReplicaOptions) *Replica {
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 10 * time.Second
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 3 * time.Second
	}
	return &Replica{
		leader:    strings.TrimRight(leader, "/"),
		client:    opts.Client,
		logger:    opts.Logger,
		opts:      opts,
		publish:   func(*core.Schema, *evolution.Applier, core.Delta) {},
		appliedCh: make(chan struct{}),
	}
}

// SetPublish installs the callback that swaps each applied clone into
// service (typically server.InstallDelta). The delta describes what
// the applied record changed — a bootstrap publishes a conservative
// everything-changed delta — so the publisher can retain caches the
// change provably cannot affect. It must be set before Run.
func (r *Replica) SetPublish(fn func(*core.Schema, *evolution.Applier, core.Delta)) {
	if fn != nil {
		r.publish = fn
	}
}

// Leader returns the leader's base URL.
func (r *Replica) Leader() string { return r.leader }

// Applied returns the last applied WAL sequence.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Status reports replication progress.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := ReplicaStatus{
		Leader:     r.leader,
		Connected:  r.connected,
		AppliedSeq: r.applied,
		LeaderSeq:  r.leaderSeq,
		Reconnects: r.reconnects,
		Bootstraps: r.bootstraps,
		WarmModes:  r.warmModes,
	}
	if r.leaderSeq > r.applied {
		s.LagRecords = r.leaderSeq - r.applied
		since := r.lastApply
		if since.IsZero() {
			since = r.lastFrame
		}
		if !since.IsZero() {
			s.LagMs = float64(time.Since(since)) / float64(time.Millisecond)
		}
	}
	return s
}

// WaitForSeq blocks until the replica has applied at least seq — the
// read-your-writes barrier behind the ?minWalSeq= query parameter —
// or the context ends.
func (r *Replica) WaitForSeq(ctx context.Context, seq uint64) error {
	for {
		r.mu.Lock()
		applied, ch := r.applied, r.appliedCh
		r.mu.Unlock()
		if applied >= seq {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("wal seq %d not yet replicated (applied %d): %w", seq, applied, ctx.Err())
		case <-ch:
		}
	}
}

// Run bootstraps and then follows the leader's WAL until ctx ends,
// reconnecting with backoff on any stream failure. It returns only
// the context's error.
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.opts.MinBackoff
	needBootstrap := true
	for ctx.Err() == nil {
		var err error
		if needBootstrap {
			if err = r.bootstrap(ctx); err == nil {
				needBootstrap = false
			}
		}
		if err == nil {
			connectedAt := time.Now()
			err = r.streamOnce(ctx)
			if errors.Is(err, errGone) {
				needBootstrap = true
				continue
			}
			if time.Since(connectedAt) > 10*time.Second {
				backoff = r.opts.MinBackoff // the last stream was healthy
			}
		}
		if ctx.Err() != nil {
			break
		}
		r.mu.Lock()
		r.connected = false
		r.reconnects++
		r.mu.Unlock()
		metReplReconnects.Inc()
		r.logger.Warn("replica: stream interrupted; backing off",
			"leader", r.leader, "applied", r.Applied(), "backoff", backoff, "err", err)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
	return ctx.Err()
}

// bootstrap fetches the leader's latest snapshot and installs it:
// schema, evolution log, warm MVFT modes, and the covered sequence.
func (r *Replica) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.leader+"/wal/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: bootstrap: leader returned %s", resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	sch, log, seq, warm, err := decodeSnapshot(data, r.leader+"/wal/snapshot")
	if err != nil {
		return fmt.Errorf("replica: bootstrap: %w", err)
	}
	restored := restoreWarmModes(sch, warm, r.logger)
	ap := evolution.NewApplierWithLog(sch, log)

	r.publish(sch, ap, core.Delta{FactsReplaced: true, StructureChanged: true, MappingsChanged: true})
	r.mu.Lock()
	r.sch, r.ap = sch, ap
	r.applied = seq
	if seq > r.leaderSeq {
		r.leaderSeq = seq
	}
	r.lastApply = time.Now()
	r.bootstraps++
	r.warmModes = len(restored)
	close(r.appliedCh)
	r.appliedCh = make(chan struct{})
	r.mu.Unlock()
	metReplLag.Set(int64(r.Status().LagRecords))
	r.logger.Info("replica: bootstrapped from leader snapshot",
		"leader", r.leader, "seq", seq, "warmModes", len(restored))
	return nil
}

// streamOnce holds one stream connection open, applying records as
// they arrive, until the connection drops, goes stale, or ctx ends.
func (r *Replica) streamOnce(ctx context.Context) error {
	from := r.Applied() + 1
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		fmt.Sprintf("%s/wal/stream?from=%d", r.leader, from), nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return errGone
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("replica: stream: leader returned %s", resp.Status)
	}
	if v := resp.Header.Get(WALSeqHeader); v != "" {
		if seq, err := strconv.ParseUint(v, 10, 64); err == nil {
			r.noteLeaderSeq(seq)
		}
	}
	r.mu.Lock()
	r.connected = true
	r.lastFrame = time.Now()
	r.mu.Unlock()

	// Watchdog: the leader heartbeats an idle stream, so a silent
	// connection means the leader (or the path to it) is gone.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(r.opts.StaleAfter / 2)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-sctx.Done():
				return
			case <-t.C:
				r.mu.Lock()
				stale := time.Since(r.lastFrame) > r.opts.StaleAfter
				r.mu.Unlock()
				if stale {
					r.logger.Warn("replica: stream stale, reconnecting", "leader", r.leader)
					cancel()
					return
				}
			}
		}
	}()

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("replica: stream: %w", err)
	}
	if string(magic) != walMagic {
		return fmt.Errorf("replica: stream: bad magic %q", magic)
	}
	for {
		rec, err := readStreamFrame(br)
		if err != nil {
			return err
		}
		r.mu.Lock()
		r.lastFrame = time.Now()
		r.mu.Unlock()
		r.noteLeaderSeq(rec.Seq)
		if rec.Type == RecordHeartbeat {
			metReplLag.Set(int64(r.Status().LagRecords))
			continue
		}
		if r.opts.BeforeApply != nil {
			r.opts.BeforeApply(rec.Seq)
		}
		if err := r.apply(rec); err != nil {
			return err
		}
	}
}

// apply applies one streamed record through the clone-swap path and
// publishes the evolved clone. Records at or before the applied
// frontier (reconnect overlap) are skipped; a gap is a protocol error.
func (r *Replica) apply(rec walRecord) error {
	r.mu.Lock()
	sch, ap, applied := r.sch, r.ap, r.applied
	r.mu.Unlock()
	if rec.Seq <= applied {
		return nil
	}
	if rec.Seq != applied+1 {
		return fmt.Errorf("replica: wal gap: applied %d, received %d", applied, rec.Seq)
	}
	clone, ap2, delta, err := applyRecord(sch, ap, rec)
	if err != nil {
		return fmt.Errorf("replica: applying record %d: %w", rec.Seq, err)
	}
	r.publish(clone, ap2, delta)
	r.mu.Lock()
	r.sch, r.ap = clone, ap2
	r.applied = rec.Seq
	if rec.Seq > r.leaderSeq {
		r.leaderSeq = rec.Seq
	}
	r.lastApply = time.Now()
	close(r.appliedCh)
	r.appliedCh = make(chan struct{})
	r.mu.Unlock()
	metReplApplied.Inc()
	metReplLag.Set(int64(r.Status().LagRecords))
	return nil
}

func (r *Replica) noteLeaderSeq(seq uint64) {
	r.mu.Lock()
	if seq > r.leaderSeq {
		r.leaderSeq = seq
	}
	r.mu.Unlock()
}

// readStreamFrame reads one MVOWAL01 frame off the stream, verifying
// the length bound and CRC exactly like scanWAL.
func readStreamFrame(br *bufio.Reader) (walRecord, error) {
	var rec walRecord
	var header [recordHeaderSize]byte
	if _, err := io.ReadFull(br, header[:]); err != nil {
		return rec, err
	}
	payloadLen := binary.LittleEndian.Uint32(header[0:4])
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	if payloadLen == 0 || payloadLen > maxWALRecord {
		return rec, fmt.Errorf("replica: stream: corrupt frame length %d", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return rec, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return rec, fmt.Errorf("replica: stream: frame CRC mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("replica: stream: unparseable frame: %w", err)
	}
	return rec, nil
}
