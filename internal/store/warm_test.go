package store

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/schemaio"
)

// warmExports materializes nothing: it encodes every mode already
// cached on the schema, keyed by mode, for byte comparison.
func warmExports(t *testing.T, sch *core.Schema) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, exp := range sch.ExportWarmModes() {
		data, err := schemaio.EncodeMappedTable(exp)
		if err != nil {
			t.Fatalf("encode mode %s: %v", exp.ModeKey, err)
		}
		out[exp.ModeKey] = data
	}
	return out
}

// coldExports fully rematerializes a cold clone of sch and returns its
// per-mode encodings — the ground truth warm restore must match bit
// for bit.
func coldExports(t *testing.T, sch *core.Schema) map[string][]byte {
	t.Helper()
	cold := sch.Clone()
	if _, err := cold.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	return warmExports(t, cold)
}

// buildWarmWarehouse opens dir with warm snapshots, evolves once (five
// temporal modes), materializes every mode and snapshots. The store is
// returned unclosed so callers can choose where the simulated SIGKILL
// lands.
func buildWarmWarehouse(t *testing.T, dir string) (*Store, *core.Schema, *evolution.Applier) {
	t.Helper()
	st, sch, ap, err := Open(dir, seedSchema(t), Options{SnapshotWarm: true, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	sch, ap = applyEvolve(t, sch, ap, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if _, _, err := st.AppendEvolve([]byte("EXCLUDE Org Dpt.Brian_id AT 01/2004\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := sch.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	if got := len(sch.CachedModeKeys()); got < 4 {
		t.Fatalf("fixture has %d cached modes, want >= 4", got)
	}
	if _, err := st.Snapshot(sch, ap.Log(), "test"); err != nil {
		t.Fatal(err)
	}
	return st, sch, ap
}

// TestCrashRecoveryWarmSnapshotNoTail is the SIGKILL-between-snapshot-
// and-WAL-append case: the snapshot is durable, no record follows, the
// store is never closed. Recovery must serve every mode warm — zero
// materializations — with tables byte-identical to a cold rebuild.
func TestCrashRecoveryWarmSnapshotNoTail(t *testing.T) {
	dir := t.TempDir()
	_, sch, _ := buildWarmWarehouse(t, dir) // store abandoned: simulated SIGKILL
	want := warmExports(t, sch)

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats().WarmModes; len(got) != len(want) {
		t.Fatalf("WarmModes = %v, want %d modes", got, len(want))
	}
	if _, err := sch2.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	if builds := sch2.MultiVersion().Materializations(); builds != 0 {
		t.Errorf("warm restart performed %d materializations, want 0", builds)
	}
	got := warmExports(t, sch2)
	if !reflect.DeepEqual(got, want) {
		t.Error("warm-restored tables differ from the snapshotted ones")
	}
	cold := coldExports(t, sch2)
	if !reflect.DeepEqual(got, cold) {
		t.Error("warm-restored tables differ from a cold rebuild")
	}
}

// TestCrashRecoveryWarmSnapshotThenWALTail kills the process after a
// warm snapshot and two more fact batches: replay must delta-fold the
// tail into the restored tables (no materializations) and still match
// a cold rebuild bit for bit.
func TestCrashRecoveryWarmSnapshotThenWALTail(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := buildWarmWarehouse(t, dir)
	for _, batch := range [][]FactRecord{
		{
			{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}},
			{Coords: []string{"Dpt.Paul_id"}, Time: "2004", Values: []float64{30}},
		},
		{
			{Coords: []string{"Dpt.Smith_id"}, Time: "2005", Values: []float64{11}},
		},
	} {
		if _, _, err := st.AppendFactBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	// Store abandoned without Close: simulated SIGKILL with a WAL tail.

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.RecoveryStats().Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", st2.RecoveryStats().Replayed)
	}
	warm := st2.RecoveryStats().WarmModes
	if len(warm) < 4 {
		t.Fatalf("WarmModes = %v, want >= 4", warm)
	}
	if deltas := sch2.MultiVersion().DeltaApplies(); deltas == 0 {
		t.Error("WAL-tail fact batches were not delta-folded into warm tables")
	}
	if _, err := sch2.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	if builds := sch2.MultiVersion().Materializations(); builds != 0 {
		t.Errorf("warm restart performed %d materializations, want 0", builds)
	}
	got := warmExports(t, sch2)
	cold := coldExports(t, sch2)
	if !reflect.DeepEqual(got, cold) {
		t.Error("warm tables with folded WAL tail differ from a cold rebuild")
	}
}

// TestCrashRecoveryWarmCorruptModeDegradesCold flips one byte in one
// mode's payload: only that mode rebuilds cold; every other mode stays
// warm, and answers are still exactly the cold-rebuild answers.
func TestCrashRecoveryWarmCorruptModeDegradesCold(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := buildWarmWarehouse(t, dir)
	if _, _, err := st.AppendFactBatch([]FactRecord{
		{Coords: []string{"Dpt.Bill_id"}, Time: "2004", Values: []float64{70}},
	}); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	var in snapshotFile
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	if len(in.Warm) < 4 {
		t.Fatalf("snapshot carries %d warm modes, want >= 4", len(in.Warm))
	}
	corrupted := in.Warm[1].Mode
	in.Warm[1].Payload[len(in.Warm[1].Payload)/2] ^= 0xFF
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := st2.RecoveryStats().WarmModes
	for _, m := range warm {
		if m == corrupted {
			t.Fatalf("corrupt mode %s reported warm", m)
		}
	}
	if len(warm) != len(in.Warm)-1 {
		t.Errorf("WarmModes = %v, want the %d uncorrupted modes", warm, len(in.Warm)-1)
	}
	if _, err := sch2.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	if builds := sch2.MultiVersion().Materializations(); builds != 1 {
		t.Errorf("materializations = %d, want exactly the corrupted mode", builds)
	}
	got := warmExports(t, sch2)
	cold := coldExports(t, sch2)
	if !reflect.DeepEqual(got, cold) {
		t.Error("degraded warm restart differs from a cold rebuild")
	}
}

// TestV1MappedCodecSnapshotRecovers rewrites every warm payload of a
// snapshot in the legacy MVMT01 row-major framing (as a snapshot
// written before the codec bump would carry): recovery must restore
// every mode warm — zero materializations — with tables byte-identical
// to a cold rebuild. This is the format-1→2 mapped-codec regression.
func TestV1MappedCodecSnapshotRecovers(t *testing.T) {
	dir := t.TempDir()
	_, sch, _ := buildWarmWarehouse(t, dir) // store abandoned: simulated SIGKILL
	want := warmExports(t, sch)

	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	var in snapshotFile
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	if len(in.Warm) < 4 {
		t.Fatalf("snapshot carries %d warm modes, want >= 4", len(in.Warm))
	}
	for i := range in.Warm {
		exp, err := schemaio.DecodeMappedTable(in.Warm[i].Payload)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := schemaio.EncodeMappedTableV1(exp)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(v1, in.Warm[i].Payload) {
			t.Fatalf("mode %s: v1 re-encoding identical to v2 payload", in.Warm[i].Mode)
		}
		in.Warm[i].Payload = v1
		in.Warm[i].CRC = crc32.ChecksumIEEE(v1)
	}
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.RecoveryStats().WarmModes; len(got) != len(in.Warm) {
		t.Fatalf("WarmModes = %v, want all %d modes from the v1 payloads", got, len(in.Warm))
	}
	if _, err := sch2.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	if builds := sch2.MultiVersion().Materializations(); builds != 0 {
		t.Errorf("v1-payload warm restart performed %d materializations, want 0", builds)
	}
	got := warmExports(t, sch2)
	if !reflect.DeepEqual(got, want) {
		t.Error("v1-payload warm restore differs from the original tables")
	}
	cold := coldExports(t, sch2)
	if !reflect.DeepEqual(got, cold) {
		t.Error("v1-payload warm restore differs from a cold rebuild")
	}
}

// TestOldFormatSnapshotRecovers rewrites the snapshot as a PR 3
// format-1 envelope (no warm section): recovery must load it cleanly
// with zero warm modes — the format bump is backward compatible.
func TestOldFormatSnapshotRecovers(t *testing.T) {
	dir := t.TempDir()
	st, sch, _ := buildWarmWarehouse(t, dir)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	want := schemaBytes(t, sch)

	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.json"))
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	var in snapshotFile
	if err := json.Unmarshal(data, &in); err != nil {
		t.Fatal(err)
	}
	in.Format = 1
	in.Warm = nil
	data, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A snapshot from a future format must be skipped, not fatal: the
	// older readable snapshot is the fallback.
	future, err := json.Marshal(snapshotFile{Format: snapshotFormat + 1, WALSeq: 99, Schema: in.Schema})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotName(99)), future, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, sch2, _, err := Open(dir, nil, Options{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.RecoveryStats().SnapshotSeq != 1 {
		t.Errorf("snapshotSeq = %d, want fallback to the format-1 snapshot", st2.RecoveryStats().SnapshotSeq)
	}
	if warm := st2.RecoveryStats().WarmModes; len(warm) != 0 {
		t.Errorf("format-1 snapshot restored warm modes %v", warm)
	}
	if got := schemaBytes(t, sch2); !bytes.Equal(got, want) {
		t.Error("format-1 snapshot recovered a different schema")
	}
}

// TestSnapshotEnvelopeDeterministic snapshots the same state twice and
// compares the envelopes byte for byte — the CI determinism guard. A
// nondeterministic codec would silently break the byte-identical
// warm-restore guarantee.
func TestSnapshotEnvelopeDeterministic(t *testing.T) {
	st, sch, ap, err := Open(t.TempDir(), seedSchema(t), Options{SnapshotWarm: true, Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sch, ap = applyEvolve(t, sch, ap, "EXCLUDE Org Dpt.Brian_id AT 01/2004\n")
	if _, err := sch.MultiVersion().All(); err != nil {
		t.Fatal(err)
	}
	a, err := encodeSnapshot(sch, ap.Log(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := encodeSnapshot(sch, ap.Log(), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same state differ byte for byte")
	}
	coldOnly, err := encodeSnapshot(sch, ap.Log(), 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(coldOnly, []byte(`"warm"`)) {
		t.Error("warm=false envelope still carries a warm section")
	}
	if !bytes.Contains(a, []byte(`"warm"`)) {
		t.Error("warm=true envelope carries no warm section")
	}
}
