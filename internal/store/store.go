// Package store is the durable persistence subsystem of the serving
// tier. The paper reduces every structural evolution to a short
// sequence of instance-level operators (§3.2, Table 11), which makes
// the mutation history of the warehouse a naturally loggable sequence:
// the store appends each accepted mutation — an evolution script or a
// fact batch — to an append-only, CRC-checksummed write-ahead log
// before it is swapped into the served schema, and periodically
// freezes the whole warehouse into a snapshot (via schemaio) so the
// log can be truncated.
//
// Crash recovery loads the latest valid snapshot and replays the WAL
// tail through evolution.Applier against the same copy-on-write
// clone-swap path the server uses, tolerating a torn final record
// (the one write that was in flight when the process died).
//
// Durability is configurable: fsync on every append (no acknowledged
// mutation is ever lost), on a background interval (bounded loss,
// much higher throughput), or never (the OS decides).
package store

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mvolap/internal/core"
	"mvolap/internal/evolution"
	"mvolap/internal/obs"
	"mvolap/internal/schemaio"
	"mvolap/internal/temporal"
)

// FsyncPolicy says when the WAL is flushed to stable storage.
type FsyncPolicy uint8

const (
	// FsyncAlways syncs after every append: an acknowledged mutation
	// survives any crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker: a crash loses at
	// most the last FsyncEvery of acknowledged mutations.
	FsyncInterval
	// FsyncOff never syncs explicitly; the OS page cache decides.
	FsyncOff
)

// ParseFsyncPolicy parses "always", "interval" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval or off)", s)
}

// String renders the flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	default:
		return "off"
	}
}

// Options configures a Store.
type Options struct {
	// Fsync is the WAL flush policy. The default (zero value) is
	// FsyncAlways.
	Fsync FsyncPolicy
	// FsyncEvery is the background flush period for FsyncInterval;
	// 0 means 100ms.
	FsyncEvery time.Duration
	// SnapshotEvery takes an automatic snapshot after this many WAL
	// records since the last one; 0 disables automatic snapshots.
	SnapshotEvery int
	// SnapshotWarm carries the materialized MappedTables of every cached
	// temporal mode inside each snapshot, so a restarted process answers
	// its first query per mode without a rematerialization. It gates
	// writing only: recovery always restores whatever warm section the
	// loaded snapshot holds.
	SnapshotWarm bool
	// Logger receives recovery and compaction logs; nil means
	// slog.Default().
	Logger *slog.Logger
}

// RecoveryStats reports what Open did to reconstruct the warehouse.
type RecoveryStats struct {
	// SnapshotSeq is the WAL sequence covered by the loaded snapshot
	// (0 when booting from the seed schema).
	SnapshotSeq uint64
	// SnapshotPath is the loaded snapshot file ("" when none existed).
	SnapshotPath string
	// Replayed is the number of WAL records replayed.
	Replayed int
	// TornBytes is the size of the truncated torn tail, if any.
	TornBytes int64
	// WarmModes lists the temporal modes restored warm from the
	// snapshot's warm section (validated against the recovered schema,
	// WAL-tail deltas folded in), sorted by mode key.
	WarmModes []string
	// Duration is the total recovery time.
	Duration time.Duration
	// Trace is the recovery span tree (load-snapshot, warm-restore,
	// replay-wal).
	Trace *obs.SpanNode
}

// Store is a durable WAL + snapshot store rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	dir    string
	opts   Options
	logger *slog.Logger

	mu      sync.Mutex
	wal     *os.File
	walPath string
	walSize int64  // committed bytes of walPath (never covers a rolled-back frame)
	seq     uint64 // last appended (or replayed) record
	snapSeq uint64 // sequence covered by the latest snapshot
	dirty   bool   // unsynced appends pending (interval policy)
	closed  bool
	stats   RecoveryStats
	// appendCh is closed and replaced on every committed append (and on
	// Close), waking WAL stream readers; never nil.
	appendCh chan struct{}
	// fsyncHook overrides the WAL fsync in fault-injection tests; nil
	// means the real (*os.File).Sync.
	fsyncHook func() error

	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if needed) the store in dir and recovers the
// warehouse: latest valid snapshot, then the WAL tail replayed through
// evolution.Applier on the copy-on-write clone-swap path. seed is the
// schema to start from when no snapshot exists (the -schema/-demo
// warehouse); it must be the same warehouse across restarts, since WAL
// records replay against it. Open returns the recovered schema and an
// applier carrying the recovered evolution log.
func Open(dir string, seed *core.Schema, opts Options) (*Store, *core.Schema, *evolution.Applier, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{dir: dir, opts: opts, logger: logger, appendCh: make(chan struct{})}

	start := time.Now()
	ctx, root := obs.NewTrace(context.Background(), "recovery")
	sch, applier, err := st.recover(ctx, seed)
	root.End()
	if err != nil {
		return nil, nil, nil, err
	}
	st.stats.Duration = time.Since(start)
	st.stats.Trace = root.Node()
	metRecoverySeconds.Observe(st.stats.Duration.Seconds())
	metWALLastSeq.Set(int64(st.seq))
	metWALSinceSnapshot.Set(int64(st.seq - st.snapSeq))

	st.compactLocked()

	if opts.Fsync == FsyncInterval {
		st.flushStop = make(chan struct{})
		st.flushDone = make(chan struct{})
		go st.flushLoop()
	}
	logger.Info("store recovered",
		"dir", dir, "snapshotSeq", st.stats.SnapshotSeq, "snapshot", st.stats.SnapshotPath,
		"replayed", st.stats.Replayed, "tornBytes", st.stats.TornBytes,
		"lastSeq", st.seq, "ms", float64(st.stats.Duration)/float64(time.Millisecond))
	return st, sch, applier, nil
}

// recover performs the snapshot load and WAL replay. It runs before
// the store is published, so it touches fields without the lock.
func (st *Store) recover(ctx context.Context, seed *core.Schema) (*core.Schema, *evolution.Applier, error) {
	// Load the newest snapshot that parses; older ones are fallbacks
	// in case of on-disk corruption.
	_, span := obs.StartSpan(ctx, "load-snapshot")
	sch, log, warm, err := st.loadLatestSnapshot(seed)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	applier := evolution.NewApplierWithLog(sch, log)

	// Warm restore runs before WAL replay so the replayed fact batches
	// delta-fold into the restored tables via WarmFrom, exactly like the
	// live clone-swap path.
	if len(warm) > 0 {
		_, span = obs.StartSpan(ctx, "warm_restore")
		st.restoreWarm(sch, warm, span)
		span.End()
	}

	_, span = obs.StartSpan(ctx, "replay-wal")
	sch, applier, err = st.replayWAL(sch, applier, span)
	span.End()
	if err != nil {
		return nil, nil, err
	}
	if len(st.stats.WarmModes) > 0 {
		// Replayed records may have evicted modes (structure changes,
		// fact replacement); report only the modes still warm on the
		// schema that will actually serve.
		st.stats.WarmModes = sch.CachedModeKeys()
	}
	return sch, applier, nil
}

// loadLatestSnapshot picks the newest readable snapshot, or falls back
// to the seed schema when none exists.
func (st *Store) loadLatestSnapshot(seed *core.Schema) (*core.Schema, []evolution.LogEntry, []warmModeFile, error) {
	names, _, err := listBySeq(st.dir, "snapshot-", ".json")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %w", err)
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(st.dir, names[i])
		sch, log, seq, warm, err := readSnapshot(path)
		if err != nil {
			st.logger.Warn("store: skipping unreadable snapshot", "path", path, "err", err)
			continue
		}
		st.snapSeq, st.seq = seq, seq
		st.stats.SnapshotSeq, st.stats.SnapshotPath = seq, path
		return sch, log, warm, nil
	}
	if seed == nil {
		return nil, nil, nil, fmt.Errorf("store: %s has no snapshot and no seed schema was given", st.dir)
	}
	return seed, nil, nil, nil
}

// restoreWarm rehydrates the snapshot's warm section into the
// recovered schema's MVFT cache. Every failure — CRC mismatch, codec
// corruption, structural-signature drift — is per mode: that mode is
// logged, counted and skipped, and rebuilds cold on first use; the
// recovery itself never fails here.
func (st *Store) restoreWarm(sch *core.Schema, warm []warmModeFile, span *obs.Span) {
	st.stats.WarmModes = restoreWarmModes(sch, warm, st.logger)
	span.SetAttr("restored", len(st.stats.WarmModes))
	span.SetAttr("skipped", len(warm)-len(st.stats.WarmModes))
}

// restoreWarmModes is the warm-restore core shared by crash recovery
// and replica bootstrap: validate and import each warm mode payload,
// returning the keys of the modes restored.
func restoreWarmModes(sch *core.Schema, warm []warmModeFile, logger *slog.Logger) []string {
	var restored []string
	for _, wm := range warm {
		if got := crc32.ChecksumIEEE(wm.Payload); got != wm.CRC {
			logger.Warn("store: warm mode failed CRC check, rebuilding cold",
				"mode", wm.Mode, "want", wm.CRC, "got", got)
			metWarmSkipped.Inc()
			continue
		}
		exp, err := schemaio.DecodeMappedTable(wm.Payload)
		if err != nil {
			logger.Warn("store: warm mode undecodable, rebuilding cold", "mode", wm.Mode, "err", err)
			metWarmSkipped.Inc()
			continue
		}
		if err := sch.ImportWarmMode(exp); err != nil {
			logger.Warn("store: warm mode rejected, rebuilding cold", "mode", wm.Mode, "err", err)
			metWarmSkipped.Inc()
			continue
		}
		restored = append(restored, wm.Mode)
		metWarmRestored.Inc()
	}
	return restored
}

// replayWAL replays every record after the snapshot through the
// applier, clone-swapping per record exactly like the serving path, so
// a recovered schema is indistinguishable from one that evolved live.
// A torn final record (crash mid-append) is truncated away; corruption
// anywhere else is an error. The surviving WAL file is reopened for
// appending.
func (st *Store) replayWAL(sch *core.Schema, applier *evolution.Applier, span *obs.Span) (*core.Schema, *evolution.Applier, error) {
	names, _, err := listBySeq(st.dir, "wal-", ".log")
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	expected := st.snapSeq + 1
	var lastScan *walScan
	var lastPath string
	for i, name := range names {
		path := filepath.Join(st.dir, name)
		scan, err := scanWAL(path)
		if err != nil {
			return nil, nil, err
		}
		if scan.tornBytes > 0 && i != len(names)-1 {
			return nil, nil, fmt.Errorf("store: %s: corrupt record mid-history (%d trailing bytes, but %d newer WAL files exist)",
				path, scan.tornBytes, len(names)-1-i)
		}
		for _, rec := range scan.records {
			if rec.Seq <= st.snapSeq {
				continue // already captured by the snapshot
			}
			if rec.Seq != expected {
				return nil, nil, fmt.Errorf("store: %s: missing WAL records %d..%d", path, expected, rec.Seq-1)
			}
			sch, applier, _, err = applyRecord(sch, applier, rec)
			if err != nil {
				return nil, nil, fmt.Errorf("store: replaying record %d: %w", rec.Seq, err)
			}
			expected++
			st.seq = rec.Seq
			st.stats.Replayed++
			metRecoveryRecords.Inc()
		}
		lastScan, lastPath = scan, path
	}
	span.SetAttr("records", st.stats.Replayed)

	if lastScan == nil {
		// Fresh directory: start the first WAL file.
		st.walPath = filepath.Join(st.dir, walName(st.snapSeq+1))
		f, err := createWAL(st.walPath)
		if err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
		if err := syncDir(st.dir); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: %w", err)
		}
		st.wal, st.walSize = f, int64(len(walMagic))
		return sch, applier, nil
	}

	f, err := os.OpenFile(lastPath, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if lastScan.tornBytes > 0 {
		st.logger.Warn("store: truncating torn WAL tail",
			"path", lastPath, "bytes", lastScan.tornBytes, "goodSize", lastScan.goodSize)
		if err := f.Truncate(lastScan.goodSize); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating %s: %w", lastPath, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: %w", err)
		}
		st.stats.TornBytes = lastScan.tornBytes
		metRecoveryTornBytes.Add(lastScan.tornBytes)
		span.SetAttr("tornBytes", lastScan.tornBytes)
	}
	if _, err := f.Seek(lastScan.goodSize, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	st.wal, st.walPath, st.walSize = f, lastPath, lastScan.goodSize
	return sch, applier, nil
}

// ApplyFact inserts one FactRecord into the schema, parsing its
// instant and coordinates. Shared by WAL replay and POST /facts.
func ApplyFact(s *core.Schema, fr FactRecord) error {
	at, err := temporal.ParseInstant(fr.Time)
	if err != nil {
		return err
	}
	coords := make(core.Coords, len(fr.Coords))
	for i, c := range fr.Coords {
		coords[i] = core.MVID(c)
	}
	return s.InsertFact(coords, at, fr.Values...)
}

// ApplyRetract removes one RetractRecord's tuple from the schema,
// parsing its instant and coordinates, and returns the old tuple for
// the delta. Shared by WAL replay and POST /facts/retract.
func ApplyRetract(s *core.Schema, rr RetractRecord) (*core.Fact, error) {
	at, err := temporal.ParseInstant(rr.Time)
	if err != nil {
		return nil, err
	}
	coords := make(core.Coords, len(rr.Coords))
	for i, c := range rr.Coords {
		coords[i] = core.MVID(c)
	}
	return s.RetractFact(coords, at)
}

// BatchWindow returns the hull of the batch's fact instants — the time
// window a replace-or-append batch could have touched — and whether
// the batch was non-empty with every instant parseable. Shared by the
// WAL apply path and POST /facts so leaders and followers hand the
// same window to their result caches.
func BatchWindow(batch []FactRecord) (temporal.Interval, bool) {
	known := false
	var window temporal.Interval
	for _, fr := range batch {
		at, err := temporal.ParseInstant(fr.Time)
		if err != nil {
			return temporal.Interval{}, false
		}
		iv := temporal.Between(at, at)
		if !known {
			window, known = iv, true
		} else {
			window = window.Hull(iv)
		}
	}
	return window, known
}

// applyRecord applies one WAL record to a clone of sch (copy-on-write,
// exactly like the serving path) and returns the evolved clone with
// its rebound applier and the delta describing what the record changed
// (consumers use it to retain caches the change provably cannot
// affect). Like the serving path, the clone is warmed from the base
// before it takes over: warm-restored (or earlier-replayed) tables
// survive the replay where the retention rules allow, with each fact
// batch delta-folded in. WarmFrom is a no-op on a cold base.
func applyRecord(sch *core.Schema, ap *evolution.Applier, rec walRecord) (*core.Schema, *evolution.Applier, core.Delta, error) {
	clone := sch.Clone()
	ap2 := ap.Rebind(clone)
	var delta core.Delta
	switch rec.Type {
	case RecordEvolve:
		var script string
		if err := json.Unmarshal(rec.Data, &script); err != nil {
			return nil, nil, delta, fmt.Errorf("bad evolve payload: %w", err)
		}
		ops, err := evolution.ParseScript(strings.NewReader(script), len(clone.Measures()))
		if err != nil {
			return nil, nil, delta, err
		}
		touched, err := ap2.ApplyTouched(ops...)
		if err != nil {
			return nil, nil, delta, err
		}
		delta = touched.Delta()
	case RecordFacts:
		batch, err := ParseFactBatch(rec.Data)
		if err != nil {
			return nil, nil, delta, err
		}
		oldLen := clone.Facts().Len()
		for i, fr := range batch {
			if err := ApplyFact(clone, fr); err != nil {
				return nil, nil, delta, fmt.Errorf("fact %d: %w", i, err)
			}
		}
		if clone.Facts().Len() == oldLen+len(batch) {
			delta.NewFacts = clone.Facts().Facts()[oldLen:]
		} else {
			delta.FactsReplaced = true // some insert overwrote a coordinate
		}
		delta.FactsWindow, delta.FactsWindowKnown = BatchWindow(batch)
	case RecordRetract:
		batch, err := ParseRetractBatch(rec.Data)
		if err != nil {
			return nil, nil, delta, err
		}
		retracted := make([]*core.Fact, 0, len(batch))
		for i, rr := range batch {
			old, err := ApplyRetract(clone, rr)
			if err != nil {
				// A logged retract batch was validated before the append,
				// so a miss here means the log and the store disagree;
				// refuse the record rather than apply it partially.
				return nil, nil, delta, fmt.Errorf("retract %d: %w", i, err)
			}
			retracted = append(retracted, old)
		}
		delta = evolution.TouchSet{}.WithRetraction(retracted)
	default:
		return nil, nil, delta, fmt.Errorf("unknown record type %q", rec.Type)
	}
	clone.WarmFrom(context.Background(), sch, delta)
	return clone, ap2, delta, nil
}

// AppendEvolve logs one accepted evolution script (the raw /evolve
// body). It returns the record's sequence number and whether an
// automatic snapshot is due.
func (st *Store) AppendEvolve(script []byte) (uint64, bool, error) {
	data, err := json.Marshal(string(script))
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	return st.append(RecordEvolve, data)
}

// AppendFactBatch logs one accepted fact batch in canonical form.
func (st *Store) AppendFactBatch(batch []FactRecord) (uint64, bool, error) {
	data, err := json.Marshal(batch)
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	return st.append(RecordFacts, data)
}

// AppendRetractBatch logs one accepted retract batch in canonical
// form. Callers must have validated every record against the serving
// schema first — the whole batch applies or none of it is logged.
func (st *Store) AppendRetractBatch(batch []RetractRecord) (uint64, bool, error) {
	data, err := json.Marshal(batch)
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	return st.append(RecordRetract, data)
}

func (st *Store) append(typ string, data json.RawMessage) (uint64, bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, false, fmt.Errorf("store: closed")
	}
	rec := walRecord{Seq: st.seq + 1, Type: typ, Data: data}
	buf, err := encodeRecord(rec)
	if err != nil {
		return 0, false, err
	}
	if payload := len(buf) - recordHeaderSize; payload > maxWALRecord {
		// scanWAL rejects oversized frames, so writing one would ack a
		// record that recovery — and every replica — must then throw
		// away, along with everything appended after it.
		return 0, false, fmt.Errorf("%w: payload is %d bytes, bound is %d", ErrRecordTooLarge, payload, maxWALRecord)
	}
	if _, err := st.wal.Write(buf); err != nil {
		// Roll the file back to the last record boundary so one failed
		// write does not poison every later append with a garbage gap.
		if rerr := st.rollbackLocked(); rerr != nil {
			return 0, false, fmt.Errorf("store: wal write failed (%v) and rollback failed (%v): store disabled", err, rerr)
		}
		return 0, false, fmt.Errorf("store: wal append: %w", err)
	}
	if st.opts.Fsync == FsyncAlways {
		if err := st.syncLocked(); err != nil {
			// The bytes are in the file but the caller is about to be
			// told the append failed: if the record survived, a restart
			// would replay — and a replica replicate — a write the client
			// believes was rejected. Undo the bytes and make the undo
			// durable; a disk that cannot even do that latches the store
			// closed.
			if rerr := st.rollbackLocked(); rerr != nil {
				return 0, false, fmt.Errorf("store: wal fsync failed (%v) and rollback failed (%v): store disabled", err, rerr)
			}
			if serr := st.syncLocked(); serr != nil {
				st.closed = true
				return 0, false, fmt.Errorf("store: wal fsync failed (%v) and rollback fsync failed (%v): store disabled", err, serr)
			}
			return 0, false, fmt.Errorf("store: wal fsync: %w", err)
		}
	}
	// The record is committed: only now do the sequence and the
	// committed size advance, so a concurrent WAL stream can never ship
	// a frame that a failed append later rolls back.
	st.walSize += int64(len(buf))
	st.seq = rec.Seq
	if st.opts.Fsync == FsyncInterval {
		st.dirty = true
	}
	st.notifyLocked()

	metWALAppends.With(typ).Inc()
	metWALBytes.Add(int64(len(buf)))
	metWALLastSeq.Set(int64(st.seq))
	metWALSinceSnapshot.Set(int64(st.seq - st.snapSeq))

	due := st.opts.SnapshotEvery > 0 && st.seq-st.snapSeq >= uint64(st.opts.SnapshotEvery)
	return st.seq, due, nil
}

// rollbackLocked discards the bytes of a failed append: truncate back
// to the last committed record boundary (st.walSize has not advanced)
// and reseek for the next write. Failure latches the store closed —
// the file may hold a frame whose append was reported as failed.
func (st *Store) rollbackLocked() error {
	if err := st.wal.Truncate(st.walSize); err != nil {
		st.closed = true
		return err
	}
	if _, err := st.wal.Seek(st.walSize, io.SeekStart); err != nil {
		st.closed = true
		return err
	}
	return nil
}

// notifyLocked wakes everything waiting for WAL progress (replication
// stream readers); the caller holds st.mu.
func (st *Store) notifyLocked() {
	close(st.appendCh)
	st.appendCh = make(chan struct{})
}

// syncLocked fsyncs the WAL; the caller holds st.mu. fsyncHook
// substitutes for the real fsync in fault-injection tests.
func (st *Store) syncLocked() error {
	start := time.Now()
	sync := st.wal.Sync
	if st.fsyncHook != nil {
		sync = st.fsyncHook
	}
	err := sync()
	metWALFsyncs.Inc()
	metWALFsyncSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		st.dirty = false
	}
	return err
}

// flushLoop is the FsyncInterval background flusher.
func (st *Store) flushLoop() {
	defer close(st.flushDone)
	t := time.NewTicker(st.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			st.mu.Lock()
			if st.dirty && !st.closed {
				if err := st.syncLocked(); err != nil {
					st.logger.Error("store: background fsync failed", "err", err)
				}
			}
			st.mu.Unlock()
		case <-st.flushStop:
			return
		}
	}
}

// Snapshot durably freezes the given schema and evolution log at the
// current WAL position, then rotates and compacts the log: a fresh WAL
// file is started and older WAL files and snapshots are deleted. The
// trigger labels the snapshot metric ("auto", "admin", ...).
func (st *Store) Snapshot(sch *core.Schema, log []evolution.LogEntry, trigger string) (uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, fmt.Errorf("store: closed")
	}
	start := time.Now()
	seq := st.seq
	if _, err := writeSnapshot(st.dir, sch, log, seq, st.opts.SnapshotWarm); err != nil {
		return 0, fmt.Errorf("store: snapshot: %w", err)
	}
	newPath := filepath.Join(st.dir, walName(seq+1))
	if newPath != st.walPath {
		f, err := createWAL(newPath)
		if err != nil {
			return 0, fmt.Errorf("store: rotating wal: %w", err)
		}
		if err := syncDir(st.dir); err != nil {
			f.Close()
			return 0, fmt.Errorf("store: %w", err)
		}
		st.wal.Close() // superseded; its records are inside the snapshot
		st.wal, st.walPath, st.walSize, st.dirty = f, newPath, int64(len(walMagic)), false
	}
	st.snapSeq = seq
	st.compactLocked()

	dur := time.Since(start)
	metSnapshots.With(trigger).Inc()
	metSnapshotSeconds.Observe(dur.Seconds())
	metWALSinceSnapshot.Set(0)
	st.logger.Info("store snapshot taken", "seq", seq, "trigger", trigger,
		"ms", float64(dur)/float64(time.Millisecond))
	return seq, nil
}

// compactLocked deletes WAL files other than the current one and
// snapshots older than the latest; the caller holds st.mu (or is
// inside Open, before the store is published). Deletion failures are
// logged, never fatal — stale files are re-collected next time.
func (st *Store) compactLocked() {
	names, seqs, err := listBySeq(st.dir, "wal-", ".log")
	if err == nil {
		for _, name := range names {
			if path := filepath.Join(st.dir, name); path != st.walPath {
				if err := os.Remove(path); err != nil {
					st.logger.Warn("store: compaction could not remove wal", "path", path, "err", err)
				}
			}
		}
	}
	names, seqs, err = listBySeq(st.dir, "snapshot-", ".json")
	if err == nil {
		for i, name := range names {
			if seqs[i] < st.snapSeq {
				if err := os.Remove(filepath.Join(st.dir, name)); err != nil {
					st.logger.Warn("store: compaction could not remove snapshot", "name", name, "err", err)
				}
			}
		}
	}
	_ = syncDir(st.dir)
}

// LastSeq returns the sequence number of the last appended record.
func (st *Store) LastSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// SnapshotSeq returns the WAL sequence covered by the latest snapshot.
func (st *Store) SnapshotSeq() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapSeq
}

// RecoveryStats reports what Open did.
func (st *Store) RecoveryStats() RecoveryStats { return st.stats }

// WarmEnabled reports whether snapshots carry the warm MVFT section.
func (st *Store) WarmEnabled() bool { return st.opts.SnapshotWarm }

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Close flushes and closes the WAL. It never snapshots — a process
// killed without Close recovers identically, minus at most the
// unsynced tail permitted by the fsync policy.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.notifyLocked() // wake stream readers so they observe the close
	flushStop := st.flushStop
	st.mu.Unlock()
	if flushStop != nil {
		close(flushStop)
		<-st.flushDone
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var err error
	if st.opts.Fsync != FsyncOff {
		err = st.wal.Sync()
	}
	if cerr := st.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
