package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is a sequence of length-prefixed, CRC-checksummed
// records after an 8-byte magic header:
//
//	file   := magic record*
//	magic  := "MVOWAL01"
//	record := payloadLen:u32le  crc32(payload):u32le  payload
//
// The payload is the JSON walRecord below. Records carry strictly
// increasing sequence numbers; a record is torn (incomplete header or
// payload, or CRC mismatch) only as the result of a crash mid-append,
// so scanning stops at the first invalid record and recovery truncates
// the file back to the last good byte. A frame whose CRC matches but
// whose payload does not parse cannot be torn — the checksum covers
// the whole payload — so it is refused as corruption instead of
// truncated (see scanWAL).

const (
	walMagic = "MVOWAL01"

	// maxWALRecord bounds a single record so a corrupt length prefix
	// cannot drive a multi-gigabyte allocation during recovery.
	maxWALRecord = 64 << 20

	recordHeaderSize = 8 // payloadLen + crc32
)

// Record types.
const (
	// RecordEvolve is an evolution script: the raw POST /evolve payload.
	RecordEvolve = "evolve"
	// RecordFacts is a fact-batch append: a JSON array of FactRecord.
	RecordFacts = "facts"
	// RecordRetract is a fact-batch retraction: a JSON array of
	// RetractRecord addressing the tuples to remove. Introducing it as a
	// new record type (rather than a flag on RecordFacts) versions the
	// WAL implicitly: a binary that predates retraction refuses the
	// record cleanly in applyRecord ("unknown record type") instead of
	// misapplying it as an append.
	RecordRetract = "retract"
	// RecordHeartbeat is a liveness frame on the replication stream,
	// carrying the leader's last committed sequence. It is never
	// written to a WAL file and never applied by a follower.
	RecordHeartbeat = "hb"
)

// ErrRecordTooLarge reports an append whose payload exceeds
// maxWALRecord. Writing such a record would ack a mutation that
// scanWAL must then reject on recovery — truncating it and everything
// appended after it — so the append path refuses it up front.
var ErrRecordTooLarge = errors.New("store: record exceeds the WAL record size bound")

// walRecord is the JSON payload of one WAL record.
type walRecord struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// FactRecord is the wire form of one appended fact, shared by the
// POST /facts endpoint and the WAL: member-version coordinates in
// schema dimension order, an instant ("MM/YYYY" or "YYYY"), and one
// value per measure.
type FactRecord struct {
	Coords []string  `json:"coords"`
	Time   string    `json:"time"`
	Values []float64 `json:"values"`
}

// ParseFactBatch strictly decodes a JSON fact batch (the POST /facts
// body and the WAL fact-record payload).
func ParseFactBatch(data []byte) ([]FactRecord, error) {
	var batch []FactRecord
	if err := json.Unmarshal(data, &batch); err != nil {
		return nil, fmt.Errorf("store: fact batch: %w", err)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("store: fact batch is empty")
	}
	return batch, nil
}

// RetractRecord is the wire form of one retracted fact, shared by the
// POST /facts/retract endpoint and the WAL: the address of the tuple
// only. The old values are recovered from the fact table when the
// record is applied — the log stays minimal and cannot disagree with
// the store about what was removed.
type RetractRecord struct {
	Coords []string `json:"coords"`
	Time   string   `json:"time"`
}

// ParseRetractBatch strictly decodes a JSON retract batch (the
// POST /facts/retract body and the WAL retract-record payload).
func ParseRetractBatch(data []byte) ([]RetractRecord, error) {
	var batch []RetractRecord
	if err := json.Unmarshal(data, &batch); err != nil {
		return nil, fmt.Errorf("store: retract batch: %w", err)
	}
	if len(batch) == 0 {
		return nil, fmt.Errorf("store: retract batch is empty")
	}
	return batch, nil
}

// encodeRecord renders the framed bytes of one record.
func encodeRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding wal record %d: %w", rec.Seq, err)
	}
	buf := make([]byte, recordHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recordHeaderSize:], payload)
	return buf, nil
}

// walScan is the result of scanning one WAL file.
type walScan struct {
	// records are the valid records in file order.
	records []walRecord
	// goodSize is the byte offset just past the last valid record; a
	// torn tail is everything from goodSize to the file size.
	goodSize int64
	// tornBytes counts trailing bytes dropped by the scan (0 when the
	// file ends cleanly on a record boundary).
	tornBytes int64
}

// scanWAL reads every valid record of a WAL file, stopping at the
// first torn or corrupt one. A missing or wrong magic header is an
// error (the file is not a WAL); anything after the last valid record
// is reported as a torn tail for the caller to truncate.
func scanWAL(path string) (*walScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()

	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != walMagic {
		return nil, fmt.Errorf("store: %s: not a WAL file (bad magic)", path)
	}
	scan := &walScan{goodSize: int64(len(walMagic))}
	var header [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			break // clean EOF or torn header
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if payloadLen == 0 || payloadLen > maxWALRecord {
			break // corrupt length prefix
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break // corrupt payload
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// A crash-torn write cannot produce this: the CRC covers the
			// whole payload, so a partial or interleaved write fails the
			// checksum above. A frame that checks out but does not parse
			// is mid-history corruption or version skew, and treating it
			// as a torn tail would silently truncate away every later
			// valid record — refuse recovery like a sequence jump.
			return nil, fmt.Errorf("store: %s: record %d (offset %d): CRC-valid frame with unparseable payload: %w",
				path, len(scan.records)+1, scan.goodSize, err)
		}
		if n := len(scan.records); n > 0 && rec.Seq != scan.records[n-1].Seq+1 {
			return nil, fmt.Errorf("store: %s: wal sequence jumped %d → %d",
				path, scan.records[n-1].Seq, rec.Seq)
		}
		scan.records = append(scan.records, rec)
		scan.goodSize += int64(recordHeaderSize) + int64(payloadLen)
	}
	scan.tornBytes = size - scan.goodSize
	return scan, nil
}

// createWAL creates a fresh WAL file containing only the magic header
// and syncs it. It fails if the file already exists.
func createWAL(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
