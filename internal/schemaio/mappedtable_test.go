package schemaio

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// sampleExport builds an export exercising every field: sentinel
// interval bounds, NaN value bits, multiple measures, Avg counts.
func sampleExport(hasAvg bool) *core.MappedTableExport {
	exp := &core.MappedTableExport{
		ModeKey:     "V2",
		Valid:       temporal.Interval{Start: temporal.Instant(408), End: temporal.Now},
		Signature:   "sig|Org=3|Geo=1",
		Dropped:     2,
		NumDims:     2,
		NumMeasures: 2,
		HasAvg:      hasAvg,
		NumFacts:    2,
	}
	sh := core.MappedShardExport{
		N: 2,
		Coords: []core.MVID{
			"Dpt.Bill_id", "City.Lyon_id",
			"Dpt.Paul_id", "City.Paris_id",
		},
		Times: []temporal.Instant{temporal.Instant(410), temporal.Origin},
		Values: []uint64{
			math.Float64bits(70.5), math.Float64bits(math.NaN()),
			math.Float64bits(math.Copysign(0, -1)), math.Float64bits(1e300),
		},
		CFs:     []core.Confidence{0, 2, 1, 1},
		Sources: []int32{3, 1},
	}
	if hasAvg {
		sh.AvgN = []int32{3, 1, 1, 2}
	}
	exp.Shards = []core.MappedShardExport{sh}
	return exp
}

func TestMappedTableRoundTrip(t *testing.T) {
	for _, hasAvg := range []bool{false, true} {
		exp := sampleExport(hasAvg)
		data, err := EncodeMappedTable(exp)
		if err != nil {
			t.Fatalf("hasAvg=%v: encode: %v", hasAvg, err)
		}
		got, err := DecodeMappedTable(data)
		if err != nil {
			t.Fatalf("hasAvg=%v: decode: %v", hasAvg, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("hasAvg=%v: round trip mismatch:\n got %+v\nwant %+v", hasAvg, got, exp)
		}
		// Determinism: encoding the decoded table reproduces the bytes.
		again, err := EncodeMappedTable(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("hasAvg=%v: re-encode differs", hasAvg)
		}
	}
}

// TestMappedTableV1DecodesAsV2 is the format-1→2 regression: a payload
// written in the legacy row-major framing must decode into exactly the
// export its columnar re-encoding round-trips to — old snapshots keep
// warm-restoring after the bump.
func TestMappedTableV1DecodesAsV2(t *testing.T) {
	for _, hasAvg := range []bool{false, true} {
		exp := sampleExport(hasAvg)
		v1, err := EncodeMappedTableV1(exp)
		if err != nil {
			t.Fatalf("hasAvg=%v: encode v1: %v", hasAvg, err)
		}
		v2, err := EncodeMappedTable(exp)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(v1, v2) {
			t.Fatal("v1 and v2 framings must differ on the wire")
		}
		got, err := DecodeMappedTable(v1)
		if err != nil {
			t.Fatalf("hasAvg=%v: decode v1: %v", hasAvg, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("hasAvg=%v: v1 decode mismatch:\n got %+v\nwant %+v", hasAvg, got, exp)
		}
		reenc, err := EncodeMappedTable(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, v2) {
			t.Errorf("hasAvg=%v: v1-decoded table re-encodes differently from native v2", hasAvg)
		}
	}
}

func TestMappedTableEncodeRejectsBadShapes(t *testing.T) {
	if _, err := EncodeMappedTable(nil); err == nil {
		t.Error("nil export must fail")
	}
	exp := sampleExport(false)
	exp.Shards[0].Values = exp.Shards[0].Values[:1]
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("short values column must fail")
	}
	exp = sampleExport(true)
	exp.Shards[0].AvgN = nil
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("missing avg counts must fail")
	}
	exp = sampleExport(false)
	exp.NumFacts = 3
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("fact count not matching shards must fail")
	}
	exp = sampleExport(false)
	exp.Shards[0].N = 0
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("empty shard must fail")
	}
}

// TestMappedTableDecodeRejectsCorruption truncates and mutates the
// encoding at every offset: decoding must fail cleanly (or, for a byte
// flip, either fail or produce a parseable table), never panic.
func TestMappedTableDecodeRejectsCorruption(t *testing.T) {
	for name, enc := range map[string]func(*core.MappedTableExport) ([]byte, error){
		"v2": EncodeMappedTable,
		"v1": EncodeMappedTableV1,
	} {
		data, err := enc(sampleExport(true))
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(data); n++ {
			if _, err := DecodeMappedTable(data[:n]); err == nil {
				t.Fatalf("%s: truncation at %d of %d decoded", name, n, len(data))
			}
		}
		if _, err := DecodeMappedTable(append(append([]byte{}, data...), 0)); err == nil {
			t.Errorf("%s: trailing byte must fail", name)
		}
		bad := append([]byte{}, data...)
		bad[0] ^= 0xFF
		if _, err := DecodeMappedTable(bad); err == nil {
			t.Errorf("%s: bad magic must fail", name)
		}
	}
}

// FuzzMappedTableCodec checks the round-trip invariant on arbitrary
// bytes: whatever decodes (in either format) must re-encode and decode
// back identically, and the decoder must never panic or over-allocate.
func FuzzMappedTableCodec(f *testing.F) {
	for _, hasAvg := range []bool{false, true} {
		seed, err := EncodeMappedTable(sampleExport(hasAvg))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
		seedV1, err := EncodeMappedTableV1(sampleExport(hasAvg))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seedV1)
	}
	f.Add([]byte("MVMT01"))
	f.Add([]byte("MVMT02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := DecodeMappedTable(data)
		if err != nil {
			return
		}
		out, err := EncodeMappedTable(exp)
		if err != nil {
			t.Fatalf("decoded table failed to re-encode: %v", err)
		}
		back, err := DecodeMappedTable(out)
		if err != nil {
			t.Fatalf("re-encoded table failed to decode: %v", err)
		}
		if !reflect.DeepEqual(back, exp) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
