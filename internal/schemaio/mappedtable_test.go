package schemaio

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// sampleExport builds an export exercising every field: sentinel
// interval bounds, NaN value bits, multiple measures, Avg counts.
func sampleExport(hasAvg bool) *core.MappedTableExport {
	exp := &core.MappedTableExport{
		ModeKey:     "V2",
		Valid:       temporal.Interval{Start: temporal.Instant(408), End: temporal.Now},
		Signature:   "sig|Org=3|Geo=1",
		Dropped:     2,
		NumDims:     2,
		NumMeasures: 2,
		HasAvg:      hasAvg,
	}
	facts := []core.MappedFactExport{
		{
			Coords:  core.Coords{"Dpt.Bill_id", "City.Lyon_id"},
			Time:    temporal.Instant(410),
			Values:  []uint64{math.Float64bits(70.5), math.Float64bits(math.NaN())},
			CFs:     []core.Confidence{0, 2},
			Sources: 3,
		},
		{
			Coords:  core.Coords{"Dpt.Paul_id", "City.Paris_id"},
			Time:    temporal.Origin,
			Values:  []uint64{math.Float64bits(-0.0), math.Float64bits(1e300)},
			CFs:     []core.Confidence{1, 1},
			Sources: 1,
		},
	}
	if hasAvg {
		facts[0].AvgN = []int32{3, 1}
		facts[1].AvgN = []int32{1, 2}
	}
	exp.Facts = facts
	return exp
}

func TestMappedTableRoundTrip(t *testing.T) {
	for _, hasAvg := range []bool{false, true} {
		exp := sampleExport(hasAvg)
		data, err := EncodeMappedTable(exp)
		if err != nil {
			t.Fatalf("hasAvg=%v: encode: %v", hasAvg, err)
		}
		got, err := DecodeMappedTable(data)
		if err != nil {
			t.Fatalf("hasAvg=%v: decode: %v", hasAvg, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Errorf("hasAvg=%v: round trip mismatch:\n got %+v\nwant %+v", hasAvg, got, exp)
		}
		// Determinism: encoding the decoded table reproduces the bytes.
		again, err := EncodeMappedTable(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Errorf("hasAvg=%v: re-encode differs", hasAvg)
		}
	}
}

func TestMappedTableEncodeRejectsBadShapes(t *testing.T) {
	if _, err := EncodeMappedTable(nil); err == nil {
		t.Error("nil export must fail")
	}
	exp := sampleExport(false)
	exp.Facts[0].Values = exp.Facts[0].Values[:1]
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("short values must fail")
	}
	exp = sampleExport(true)
	exp.Facts[1].AvgN = nil
	if _, err := EncodeMappedTable(exp); err == nil {
		t.Error("missing avg counts must fail")
	}
}

// TestMappedTableDecodeRejectsCorruption truncates and mutates the
// encoding at every offset: decoding must fail cleanly (or, for a byte
// flip, either fail or produce a parseable table), never panic.
func TestMappedTableDecodeRejectsCorruption(t *testing.T) {
	data, err := EncodeMappedTable(sampleExport(true))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeMappedTable(data[:n]); err == nil {
			t.Fatalf("truncation at %d of %d decoded", n, len(data))
		}
	}
	if _, err := DecodeMappedTable(append(append([]byte{}, data...), 0)); err == nil {
		t.Error("trailing byte must fail")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xFF
	if _, err := DecodeMappedTable(bad); err == nil {
		t.Error("bad magic must fail")
	}
}

// FuzzMappedTableCodec checks the round-trip invariant on arbitrary
// bytes: whatever decodes must re-encode and decode back identically,
// and the decoder must never panic or over-allocate.
func FuzzMappedTableCodec(f *testing.F) {
	for _, hasAvg := range []bool{false, true} {
		seed, err := EncodeMappedTable(sampleExport(hasAvg))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seed)
	}
	f.Add([]byte("MVMT01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		exp, err := DecodeMappedTable(data)
		if err != nil {
			return
		}
		out, err := EncodeMappedTable(exp)
		if err != nil {
			t.Fatalf("decoded table failed to re-encode: %v", err)
		}
		back, err := DecodeMappedTable(out)
		if err != nil {
			t.Fatalf("re-encoded table failed to decode: %v", err)
		}
		if !reflect.DeepEqual(back, exp) {
			t.Fatal("re-encode round trip diverged")
		}
	})
}
