// Package schemaio serializes temporal multidimensional schemas to and
// from JSON, so warehouses survive process restarts and the command
// line tools can exchange them. Mapping functions serialize as the
// prototype's linear k factors (§5.2) or the unknown mapping; arbitrary
// Go functions are not serializable and are rejected.
package schemaio

import (
	"encoding/json"
	"fmt"
	"io"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// fileSchema is the on-disk layout.
type fileSchema struct {
	Name       string          `json:"name"`
	Measures   []fileMeasure   `json:"measures"`
	Dimensions []fileDimension `json:"dimensions"`
	Mappings   []fileMapping   `json:"mappings,omitempty"`
	Facts      []fileFact      `json:"facts,omitempty"`
}

type fileMeasure struct {
	Name string `json:"name"`
	Agg  string `json:"agg"`
}

type fileDimension struct {
	ID            string         `json:"id"`
	Name          string         `json:"name"`
	Versions      []fileVersion  `json:"versions"`
	Relationships []fileRelation `json:"relationships,omitempty"`
}

type fileVersion struct {
	ID     string            `json:"id"`
	Member string            `json:"member,omitempty"`
	Name   string            `json:"name,omitempty"`
	Level  string            `json:"level,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	From   string            `json:"from"`
	To     string            `json:"to"`
}

type fileRelation struct {
	Child  string `json:"child"`
	Parent string `json:"parent"`
	From   string `json:"from"`
	To     string `json:"to"`
}

type fileMapping struct {
	From     string       `json:"from"`
	To       string       `json:"to"`
	Forward  []fileMapper `json:"forward"`
	Backward []fileMapper `json:"backward"`
}

type fileMapper struct {
	// K is the linear factor; null K with Unknown=true is the unknown
	// mapping.
	K       *float64 `json:"k,omitempty"`
	Unknown bool     `json:"unknown,omitempty"`
	CF      string   `json:"cf"`
}

type fileFact struct {
	Coords []string  `json:"coords"`
	Time   string    `json:"time"`
	Values []float64 `json:"values"`
}

// Write serializes the schema as indented JSON.
func Write(w io.Writer, s *core.Schema) error {
	out := fileSchema{Name: s.Name}
	for _, m := range s.Measures() {
		out.Measures = append(out.Measures, fileMeasure{Name: m.Name, Agg: m.Agg.String()})
	}
	for _, d := range s.Dimensions() {
		fd := fileDimension{ID: string(d.ID), Name: d.Name}
		for _, mv := range d.Versions() {
			fd.Versions = append(fd.Versions, fileVersion{
				ID: string(mv.ID), Member: mv.Member, Name: mv.Name, Level: mv.Level,
				Attrs: mv.Attrs, From: mv.Valid.Start.String(), To: mv.Valid.End.String(),
			})
		}
		for _, r := range d.Relationships() {
			fd.Relationships = append(fd.Relationships, fileRelation{
				Child: string(r.From), Parent: string(r.To),
				From: r.Valid.Start.String(), To: r.Valid.End.String(),
			})
		}
		out.Dimensions = append(out.Dimensions, fd)
	}
	for _, m := range s.Mappings() {
		fm := fileMapping{From: string(m.From), To: string(m.To)}
		var err error
		if fm.Forward, err = encodeMappers(m.Forward); err != nil {
			return fmt.Errorf("schemaio: mapping %s→%s: %w", m.From, m.To, err)
		}
		if fm.Backward, err = encodeMappers(m.Backward); err != nil {
			return fmt.Errorf("schemaio: mapping %s→%s: %w", m.From, m.To, err)
		}
		out.Mappings = append(out.Mappings, fm)
	}
	for _, f := range s.Facts().Facts() {
		ff := fileFact{Time: f.Time.String(), Values: f.Values}
		for _, id := range f.Coords {
			ff.Coords = append(ff.Coords, string(id))
		}
		out.Facts = append(out.Facts, ff)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func encodeMappers(ms []core.MeasureMapping) ([]fileMapper, error) {
	out := make([]fileMapper, len(ms))
	for i, m := range ms {
		fm := fileMapper{CF: m.CF.String()}
		switch fn := m.Fn.(type) {
		case core.Linear:
			k := fn.K
			fm.K = &k
		case core.Unknown:
			fm.Unknown = true
		default:
			return nil, fmt.Errorf("mapper %T is not serializable (use Linear or Unknown)", m.Fn)
		}
		out[i] = fm
	}
	return out, nil
}

// Read deserializes a schema.
func Read(r io.Reader) (*core.Schema, error) {
	var in fileSchema
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("schemaio: %w", err)
	}
	measures := make([]core.Measure, len(in.Measures))
	for i, m := range in.Measures {
		agg, err := core.ParseAggKind(m.Agg)
		if err != nil {
			return nil, fmt.Errorf("schemaio: measure %q: %w", m.Name, err)
		}
		measures[i] = core.Measure{Name: m.Name, Agg: agg}
	}
	s := core.NewSchema(in.Name, measures...)
	for _, fd := range in.Dimensions {
		d := core.NewDimension(core.DimID(fd.ID), fd.Name)
		for _, fv := range fd.Versions {
			valid, err := parseInterval(fv.From, fv.To)
			if err != nil {
				return nil, fmt.Errorf("schemaio: version %q: %w", fv.ID, err)
			}
			if err := d.AddVersion(&core.MemberVersion{
				ID: core.MVID(fv.ID), Member: fv.Member, Name: fv.Name,
				Level: fv.Level, Attrs: fv.Attrs, Valid: valid,
			}); err != nil {
				return nil, fmt.Errorf("schemaio: %w", err)
			}
		}
		for _, fr := range fd.Relationships {
			valid, err := parseInterval(fr.From, fr.To)
			if err != nil {
				return nil, fmt.Errorf("schemaio: relationship %s→%s: %w", fr.Child, fr.Parent, err)
			}
			if err := d.AddRelationship(core.TemporalRelationship{
				From: core.MVID(fr.Child), To: core.MVID(fr.Parent), Valid: valid,
			}); err != nil {
				return nil, fmt.Errorf("schemaio: %w", err)
			}
		}
		if err := s.AddDimension(d); err != nil {
			return nil, fmt.Errorf("schemaio: %w", err)
		}
	}
	for _, fm := range in.Mappings {
		fwd, err := decodeMappers(fm.Forward)
		if err != nil {
			return nil, fmt.Errorf("schemaio: mapping %s→%s: %w", fm.From, fm.To, err)
		}
		back, err := decodeMappers(fm.Backward)
		if err != nil {
			return nil, fmt.Errorf("schemaio: mapping %s→%s: %w", fm.From, fm.To, err)
		}
		if err := s.AddMapping(core.MappingRelationship{
			From: core.MVID(fm.From), To: core.MVID(fm.To), Forward: fwd, Backward: back,
		}); err != nil {
			return nil, fmt.Errorf("schemaio: %w", err)
		}
	}
	for i, ff := range in.Facts {
		at, err := temporal.ParseInstant(ff.Time)
		if err != nil {
			return nil, fmt.Errorf("schemaio: fact %d: %w", i, err)
		}
		coords := make(core.Coords, len(ff.Coords))
		for j, c := range ff.Coords {
			coords[j] = core.MVID(c)
		}
		if err := s.InsertFact(coords, at, ff.Values...); err != nil {
			return nil, fmt.Errorf("schemaio: fact %d: %w", i, err)
		}
	}
	return s, nil
}

func decodeMappers(ms []fileMapper) ([]core.MeasureMapping, error) {
	out := make([]core.MeasureMapping, len(ms))
	for i, fm := range ms {
		cf, err := core.ParseConfidence(fm.CF)
		if err != nil {
			return nil, err
		}
		var fn core.Mapper
		switch {
		case fm.Unknown:
			fn = core.Unknown{}
		case fm.K != nil:
			fn = core.Linear{K: *fm.K}
		default:
			return nil, fmt.Errorf("mapper %d needs k or unknown", i)
		}
		out[i] = core.MeasureMapping{Fn: fn, CF: cf}
	}
	return out, nil
}

func parseInterval(from, to string) (temporal.Interval, error) {
	start, err := temporal.ParseInstant(from)
	if err != nil {
		return temporal.Interval{}, err
	}
	end, err := temporal.ParseInstant(to)
	if err != nil {
		return temporal.Interval{}, err
	}
	iv := temporal.Between(start, end)
	if iv.Empty() {
		return temporal.Interval{}, fmt.Errorf("empty interval [%s, %s]", from, to)
	}
	return iv, nil
}
