package schemaio

import (
	"bytes"
	"testing"

	"mvolap/internal/casestudy"
)

// FuzzReadWrite checks the round-trip contract the persistence
// subsystem depends on: any document Read accepts must Write back out,
// re-Read, and from then on be a byte-level fixed point. Snapshots and
// the crash-recovery byte-identity guarantee both assume this — a
// non-deterministic emission order or a Write that loses information
// would make a recovered warehouse drift from the one that crashed.
//
// Note the property is idempotence after one round trip, not
// Write(Read(x)) == x: Read canonicalizes (it defaults a version's
// Member to its ID, collapses duplicate fact coordinates, and so on),
// so the first trip may normalize, but the normal form must be stable.
func FuzzReadWrite(f *testing.F) {
	// Seed with the real fixtures so the fuzzer starts from documents
	// that exercise every section of the format.
	for _, cfg := range []casestudy.Config{
		{},
		{WithFacts: true},
		{WithFacts: true, WithSplitMappings: true},
	} {
		s, err := casestudy.New(cfg)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, s); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"name":"x","measures":[{"name":"m","agg":"sum"}],"dimensions":[]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return // invalid documents may be rejected, never crash
		}
		var first bytes.Buffer
		if err := Write(&first, s); err != nil {
			t.Fatalf("Write after successful Read failed: %v", err)
		}
		s2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of written document failed: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := Write(&second, s2); err != nil {
			t.Fatalf("second Write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip is not a fixed point:\nfirst:\n%s\nsecond:\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}
