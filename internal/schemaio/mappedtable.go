package schemaio

import (
	"encoding/binary"
	"fmt"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// Mapped-table codec: the binary serialization of one cached MVFT
// mode, embedded (CRC-checked) in the store's snapshot envelope for
// warm restarts. The format is deterministic — same table, same bytes
// — which is what lets CI diff two snapshots of the same state.
//
// Format 2 (current) mirrors the engine's columnar shard layout:
// after the header, each field travels as one contiguous column over
// all tuples, so encoding streams straight out of the shard arrays and
// decoding re-chunks into shards without ever materializing rows:
//
//	magic "MVMT02"
//	uvarint len(modeKey), modeKey
//	int64 LE valid.Start, int64 LE valid.End   (raw bits; Now/Origin safe)
//	uvarint len(signature), signature
//	uvarint dropped
//	uvarint numDims, uvarint numMeasures, byte hasAvg
//	uvarint numFacts, then field-major columns:
//	  numFacts×numDims coord ids, each uvarint len + bytes
//	  numFacts int64 LE times
//	  numFacts×numMeasures uint64 LE Float64bits values
//	  numFacts×numMeasures byte confidences
//	  numFacts uvarint source counts
//	  if hasAvg: numFacts×numMeasures uint32 LE avg counts
//
// Format 1 ("MVMT01") carried the same header followed by row-major
// tuples (per fact: coords, time, values, cfs, sources, avg counts).
// DecodeMappedTable still reads it — snapshots written before the
// format bump must warm-restore, not silently rebuild cold — and
// EncodeMappedTableV1 still writes it for regression tests and
// downgrade tooling.
//
// Times and interval bounds travel as raw little-endian int64 — the
// temporal sentinels (Now = MaxInt64, Origin = MinInt64) would not
// survive a float-typed JSON number.

var (
	mappedTableMagic   = []byte("MVMT02")
	mappedTableMagicV1 = []byte("MVMT01")
)

// Decode limits: a string longer than this, or a count implying more
// bytes than the input holds, marks the payload corrupt. They bound
// allocations on hostile input (the fuzz target) without constraining
// any real table.
const (
	mtMaxStringLen = 1 << 20
	mtMaxCount     = 1 << 28
)

// validateExportShape checks the shard invariants the engine
// guarantees (and decoding re-establishes): every shard but the last
// exactly full, column lengths matching the shard's tuple count, tuple
// counts summing to NumFacts.
func validateExportShape(exp *core.MappedTableExport) error {
	total := 0
	for si := range exp.Shards {
		sh := &exp.Shards[si]
		if sh.N < 1 || sh.N > core.MappedShardSize {
			return fmt.Errorf("schemaio: mapped shard %d holds %d tuples", si, sh.N)
		}
		if si < len(exp.Shards)-1 && sh.N != core.MappedShardSize {
			return fmt.Errorf("schemaio: non-final mapped shard %d holds %d tuples", si, sh.N)
		}
		if len(sh.Coords) != sh.N*exp.NumDims || len(sh.Times) != sh.N ||
			len(sh.Values) != sh.N*exp.NumMeasures || len(sh.CFs) != sh.N*exp.NumMeasures ||
			len(sh.Sources) != sh.N {
			return fmt.Errorf("schemaio: mapped shard %d column shape mismatch", si)
		}
		wantAvg := 0
		if exp.HasAvg {
			wantAvg = sh.N * exp.NumMeasures
		}
		if len(sh.AvgN) != wantAvg {
			return fmt.Errorf("schemaio: mapped shard %d has %d avg counts, want %d", si, len(sh.AvgN), wantAvg)
		}
		for _, s := range sh.Sources {
			if s < 0 {
				return fmt.Errorf("schemaio: mapped shard %d has negative source count", si)
			}
		}
		total += sh.N
	}
	if total != exp.NumFacts {
		return fmt.Errorf("schemaio: mapped table has %d tuples across shards, header says %d", total, exp.NumFacts)
	}
	return nil
}

// appendMappedHeader appends the header fields shared by both formats
// (everything between the magic and the fact payload).
func appendMappedHeader(buf []byte, exp *core.MappedTableExport) []byte {
	buf = appendString(buf, exp.ModeKey)
	buf = appendInt64(buf, int64(exp.Valid.Start))
	buf = appendInt64(buf, int64(exp.Valid.End))
	buf = appendString(buf, exp.Signature)
	buf = binary.AppendUvarint(buf, uint64(exp.Dropped))
	buf = binary.AppendUvarint(buf, uint64(exp.NumDims))
	buf = binary.AppendUvarint(buf, uint64(exp.NumMeasures))
	if exp.HasAvg {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return binary.AppendUvarint(buf, uint64(exp.NumFacts))
}

// EncodeMappedTable serializes one exported mode deterministically in
// the current (columnar, format 2) framing.
func EncodeMappedTable(exp *core.MappedTableExport) ([]byte, error) {
	if exp == nil {
		return nil, fmt.Errorf("schemaio: nil mapped-table export")
	}
	if err := validateExportShape(exp); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64+exp.NumFacts*(16+9*exp.NumMeasures))
	buf = append(buf, mappedTableMagic...)
	buf = appendMappedHeader(buf, exp)
	for si := range exp.Shards {
		for _, id := range exp.Shards[si].Coords {
			buf = appendString(buf, string(id))
		}
	}
	for si := range exp.Shards {
		for _, t := range exp.Shards[si].Times {
			buf = appendInt64(buf, int64(t))
		}
	}
	for si := range exp.Shards {
		for _, v := range exp.Shards[si].Values {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	for si := range exp.Shards {
		for _, cf := range exp.Shards[si].CFs {
			buf = append(buf, byte(cf))
		}
	}
	for si := range exp.Shards {
		for _, s := range exp.Shards[si].Sources {
			buf = binary.AppendUvarint(buf, uint64(s))
		}
	}
	if exp.HasAvg {
		for si := range exp.Shards {
			for _, n := range exp.Shards[si].AvgN {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
			}
		}
	}
	return buf, nil
}

// EncodeMappedTableV1 serializes one exported mode in the legacy
// row-major format 1 framing. The engine never writes it anymore; it
// exists so tests can prove format-1 payloads still warm-restore, and
// as a downgrade escape hatch.
func EncodeMappedTableV1(exp *core.MappedTableExport) ([]byte, error) {
	if exp == nil {
		return nil, fmt.Errorf("schemaio: nil mapped-table export")
	}
	if err := validateExportShape(exp); err != nil {
		return nil, err
	}
	nd, nm := exp.NumDims, exp.NumMeasures
	buf := make([]byte, 0, 64+exp.NumFacts*(16+9*nm))
	buf = append(buf, mappedTableMagicV1...)
	buf = appendMappedHeader(buf, exp)
	for si := range exp.Shards {
		sh := &exp.Shards[si]
		for j := 0; j < sh.N; j++ {
			for _, id := range sh.Coords[j*nd : (j+1)*nd] {
				buf = appendString(buf, string(id))
			}
			buf = appendInt64(buf, int64(sh.Times[j]))
			for _, v := range sh.Values[j*nm : (j+1)*nm] {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
			for _, cf := range sh.CFs[j*nm : (j+1)*nm] {
				buf = append(buf, byte(cf))
			}
			buf = binary.AppendUvarint(buf, uint64(sh.Sources[j]))
			if exp.HasAvg {
				for _, n := range sh.AvgN[j*nm : (j+1)*nm] {
					buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
				}
			}
		}
	}
	return buf, nil
}

// DecodeMappedTable parses an encoded mode in either format, validating
// every length and count against the remaining input so corrupt or
// hostile bytes fail cleanly instead of over-allocating.
func DecodeMappedTable(data []byte) (*core.MappedTableExport, error) {
	if len(data) >= len(mappedTableMagic) {
		switch string(data[:len(mappedTableMagic)]) {
		case string(mappedTableMagic):
			return decodeMappedTable(data[len(mappedTableMagic):], false)
		case string(mappedTableMagicV1):
			return decodeMappedTable(data[len(mappedTableMagicV1):], true)
		}
	}
	return nil, fmt.Errorf("schemaio: bad mapped-table magic")
}

// decodeMappedTable parses the body shared by both formats: the header,
// then either row-major (v1) or field-major (v2) fact payload. Both
// land in the same flat columns, chunked into MappedShardSize shards,
// so a v1 payload decodes into exactly the export a v2 round trip
// would produce.
func decodeMappedTable(body []byte, rowMajor bool) (*core.MappedTableExport, error) {
	r := &mtReader{data: body}
	exp := &core.MappedTableExport{}
	exp.ModeKey = r.string()
	exp.Valid.Start = temporal.Instant(r.int64())
	exp.Valid.End = temporal.Instant(r.int64())
	exp.Signature = r.string()
	exp.Dropped = r.count()
	exp.NumDims = r.count()
	exp.NumMeasures = r.count()
	exp.HasAvg = r.byte() != 0
	nFacts := r.count()
	if r.err != nil {
		return nil, r.err
	}
	if exp.NumDims > mtMaxCount || exp.NumMeasures > mtMaxCount {
		return nil, fmt.Errorf("schemaio: mapped table dims/measures out of range")
	}
	// Every tuple needs at least one byte per coord plus its fixed
	// fields; a count the remaining bytes cannot hold is corruption.
	// This also bounds the column allocations below by the input size.
	minPerFact := exp.NumDims + 8 + 9*exp.NumMeasures + 1
	if exp.HasAvg {
		minPerFact += 4 * exp.NumMeasures
	}
	if nFacts*minPerFact > len(r.data)-r.off {
		return nil, fmt.Errorf("schemaio: mapped table fact count %d exceeds payload", nFacts)
	}
	exp.NumFacts = nFacts
	nd, nm := exp.NumDims, exp.NumMeasures
	coords := make([]core.MVID, nFacts*nd)
	times := make([]temporal.Instant, nFacts)
	values := make([]uint64, nFacts*nm)
	cfs := make([]core.Confidence, nFacts*nm)
	sources := make([]int32, nFacts)
	var avgN []int32
	if exp.HasAvg {
		avgN = make([]int32, nFacts*nm)
	}
	if rowMajor {
		for i := 0; i < nFacts; i++ {
			for d := 0; d < nd; d++ {
				coords[i*nd+d] = core.MVID(r.string())
			}
			times[i] = temporal.Instant(r.int64())
			for k := 0; k < nm; k++ {
				values[i*nm+k] = r.uint64()
			}
			for k := 0; k < nm; k++ {
				cfs[i*nm+k] = core.Confidence(r.byte())
			}
			sources[i] = int32(r.count())
			if exp.HasAvg {
				for k := 0; k < nm; k++ {
					avgN[i*nm+k] = int32(r.uint32())
				}
			}
			if r.err != nil {
				return nil, r.err
			}
		}
	} else {
		for i := range coords {
			coords[i] = core.MVID(r.string())
		}
		for i := range times {
			times[i] = temporal.Instant(r.int64())
		}
		for i := range values {
			values[i] = r.uint64()
		}
		for i := range cfs {
			cfs[i] = core.Confidence(r.byte())
		}
		for i := range sources {
			sources[i] = int32(r.count())
		}
		for i := range avgN {
			avgN[i] = int32(r.uint32())
		}
		if r.err != nil {
			return nil, r.err
		}
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("schemaio: %d trailing bytes after mapped table", len(r.data)-r.off)
	}
	for lo := 0; lo < nFacts; lo += core.MappedShardSize {
		hi := min(lo+core.MappedShardSize, nFacts)
		se := core.MappedShardExport{
			N:       hi - lo,
			Coords:  coords[lo*nd : hi*nd : hi*nd],
			Times:   times[lo:hi:hi],
			Values:  values[lo*nm : hi*nm : hi*nm],
			CFs:     cfs[lo*nm : hi*nm : hi*nm],
			Sources: sources[lo:hi:hi],
		}
		if exp.HasAvg {
			se.AvgN = avgN[lo*nm : hi*nm : hi*nm]
		}
		exp.Shards = append(exp.Shards, se)
	}
	return exp, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendInt64 appends the raw two's-complement bits little-endian.
func appendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// mtReader is a bounds-checked cursor over the encoded payload; the
// first failure sticks and every later read returns zero values.
type mtReader struct {
	data []byte
	off  int
	err  error
}

func (r *mtReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("schemaio: corrupt mapped table: "+format, args...)
	}
}

func (r *mtReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("need %d bytes at offset %d of %d", n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *mtReader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *mtReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that must fit a non-negative int within the
// decode limits.
func (r *mtReader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > mtMaxCount {
		r.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

func (r *mtReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > mtMaxStringLen {
		r.fail("string length %d out of range", n)
		return ""
	}
	return string(r.bytes(int(n)))
}

func (r *mtReader) uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *mtReader) uint32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *mtReader) int64() int64 { return int64(r.uint64()) }
