package schemaio

import (
	"encoding/binary"
	"fmt"

	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// Mapped-table codec: the binary serialization of one cached MVFT
// mode, embedded (CRC-checked) in the store's snapshot envelope for
// warm restarts. The format is deterministic — same table, same bytes
// — which is what lets CI diff two snapshots of the same state:
//
//	magic "MVMT01"
//	uvarint len(modeKey), modeKey
//	int64 LE valid.Start, int64 LE valid.End   (raw bits; Now/Origin safe)
//	uvarint len(signature), signature
//	uvarint dropped
//	uvarint numDims, uvarint numMeasures, byte hasAvg
//	uvarint numFacts, then per fact:
//	  per dim: uvarint len(id), id
//	  int64 LE time
//	  per measure: uint64 LE Float64bits(value)
//	  per measure: byte confidence
//	  uvarint sources
//	  if hasAvg, per measure: uint32 LE avg count
//
// Times and interval bounds travel as raw little-endian int64 — the
// temporal sentinels (Now = MaxInt64, Origin = MinInt64) would not
// survive a float-typed JSON number.

var mappedTableMagic = []byte("MVMT01")

// Decode limits: a string longer than this, or a count implying more
// bytes than the input holds, marks the payload corrupt. They bound
// allocations on hostile input (the fuzz target) without constraining
// any real table.
const (
	mtMaxStringLen = 1 << 20
	mtMaxCount     = 1 << 28
)

// EncodeMappedTable serializes one exported mode deterministically.
func EncodeMappedTable(exp *core.MappedTableExport) ([]byte, error) {
	if exp == nil {
		return nil, fmt.Errorf("schemaio: nil mapped-table export")
	}
	buf := make([]byte, 0, 64+len(exp.Facts)*(16+8*exp.NumMeasures))
	buf = append(buf, mappedTableMagic...)
	buf = appendString(buf, exp.ModeKey)
	buf = appendInt64(buf, int64(exp.Valid.Start))
	buf = appendInt64(buf, int64(exp.Valid.End))
	buf = appendString(buf, exp.Signature)
	buf = binary.AppendUvarint(buf, uint64(exp.Dropped))
	buf = binary.AppendUvarint(buf, uint64(exp.NumDims))
	buf = binary.AppendUvarint(buf, uint64(exp.NumMeasures))
	if exp.HasAvg {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(exp.Facts)))
	for i := range exp.Facts {
		f := &exp.Facts[i]
		if len(f.Coords) != exp.NumDims || len(f.Values) != exp.NumMeasures || len(f.CFs) != exp.NumMeasures {
			return nil, fmt.Errorf("schemaio: mapped tuple %d shape mismatch", i)
		}
		if exp.HasAvg && len(f.AvgN) != exp.NumMeasures {
			return nil, fmt.Errorf("schemaio: mapped tuple %d missing avg counts", i)
		}
		for _, id := range f.Coords {
			buf = appendString(buf, string(id))
		}
		buf = appendInt64(buf, int64(f.Time))
		for _, v := range f.Values {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		for _, cf := range f.CFs {
			buf = append(buf, byte(cf))
		}
		buf = binary.AppendUvarint(buf, uint64(f.Sources))
		if exp.HasAvg {
			for _, n := range f.AvgN {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
			}
		}
	}
	return buf, nil
}

// DecodeMappedTable parses an encoded mode, validating every length
// and count against the remaining input so corrupt or hostile bytes
// fail cleanly instead of over-allocating.
func DecodeMappedTable(data []byte) (*core.MappedTableExport, error) {
	r := &mtReader{data: data}
	magic := r.bytes(len(mappedTableMagic))
	if r.err == nil && string(magic) != string(mappedTableMagic) {
		return nil, fmt.Errorf("schemaio: bad mapped-table magic")
	}
	exp := &core.MappedTableExport{}
	exp.ModeKey = r.string()
	exp.Valid.Start = temporal.Instant(r.int64())
	exp.Valid.End = temporal.Instant(r.int64())
	exp.Signature = r.string()
	exp.Dropped = r.count()
	exp.NumDims = r.count()
	exp.NumMeasures = r.count()
	exp.HasAvg = r.byte() != 0
	nFacts := r.count()
	if r.err != nil {
		return nil, r.err
	}
	if exp.NumDims > mtMaxCount || exp.NumMeasures > mtMaxCount {
		return nil, fmt.Errorf("schemaio: mapped table dims/measures out of range")
	}
	// Every tuple needs at least one byte per coord plus its fixed
	// fields; a count the remaining bytes cannot hold is corruption.
	minPerFact := exp.NumDims + 8 + 9*exp.NumMeasures + 1
	if minPerFact < 1 {
		minPerFact = 1
	}
	if nFacts*minPerFact > len(r.data)-r.off {
		return nil, fmt.Errorf("schemaio: mapped table fact count %d exceeds payload", nFacts)
	}
	exp.Facts = make([]core.MappedFactExport, 0, nFacts)
	for i := 0; i < nFacts; i++ {
		var f core.MappedFactExport
		f.Coords = make(core.Coords, exp.NumDims)
		for d := 0; d < exp.NumDims; d++ {
			f.Coords[d] = core.MVID(r.string())
		}
		f.Time = temporal.Instant(r.int64())
		f.Values = make([]uint64, exp.NumMeasures)
		for k := range f.Values {
			f.Values[k] = r.uint64()
		}
		f.CFs = make([]core.Confidence, exp.NumMeasures)
		for k := range f.CFs {
			f.CFs[k] = core.Confidence(r.byte())
		}
		f.Sources = r.count()
		if exp.HasAvg {
			f.AvgN = make([]int32, exp.NumMeasures)
			for k := range f.AvgN {
				f.AvgN[k] = int32(r.uint32())
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		exp.Facts = append(exp.Facts, f)
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("schemaio: %d trailing bytes after mapped table", len(r.data)-r.off)
	}
	return exp, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendInt64 appends the raw two's-complement bits little-endian.
func appendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

// mtReader is a bounds-checked cursor over the encoded payload; the
// first failure sticks and every later read returns zero values.
type mtReader struct {
	data []byte
	off  int
	err  error
}

func (r *mtReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("schemaio: corrupt mapped table: "+format, args...)
	}
}

func (r *mtReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("need %d bytes at offset %d of %d", n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *mtReader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *mtReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// count reads a uvarint that must fit a non-negative int within the
// decode limits.
func (r *mtReader) count() int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > mtMaxCount {
		r.fail("count %d out of range", v)
		return 0
	}
	return int(v)
}

func (r *mtReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > mtMaxStringLen {
		r.fail("string length %d out of range", n)
		return ""
	}
	return string(r.bytes(int(n)))
}

func (r *mtReader) uint64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *mtReader) uint32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *mtReader) int64() int64 { return int64(r.uint64()) }
