package schemaio

import (
	"bytes"
	"strings"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

func TestRoundTrip(t *testing.T) {
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name {
		t.Errorf("name = %q", back.Name)
	}
	if back.Facts().Len() != s.Facts().Len() {
		t.Errorf("facts = %d, want %d", back.Facts().Len(), s.Facts().Len())
	}
	if len(back.Mappings()) != len(s.Mappings()) {
		t.Errorf("mappings = %d", len(back.Mappings()))
	}
	// The round-tripped schema answers the paper's queries identically.
	for _, yr := range []int{2001, 2002, 2003} {
		want := s.VersionAt(temporal.Year(yr))
		got := back.VersionAt(temporal.Year(yr))
		if want == nil || got == nil || !want.Valid.Equal(got.Valid) {
			t.Errorf("version at %d differs: %v vs %v", yr, want, got)
		}
	}
	q := core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
		Mode:    core.InVersion(back.VersionAt(temporal.Year(2002))),
	}
	res, err := back.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r.TimeKey == "2003" && r.Groups[0] == "Dpt.Jones" {
			found = true
			if r.Values[0] != 200 || r.CFs[0] != core.ExactMapping {
				t.Errorf("Table 9 cell after round trip = %v (%v)", r.Values[0], r.CFs[0])
			}
		}
	}
	if !found {
		t.Error("merged row missing after round trip")
	}
}

func TestWriteRejectsCustomFuncs(t *testing.T) {
	s, _ := casestudy.New(casestudy.Config{})
	err := s.AddMapping(core.MappingRelationship{
		From: casestudy.Jones,
		To:   casestudy.Bill,
		Forward: []core.MeasureMapping{{
			Fn: core.Func{F: func(x float64) float64 { return x }}, CF: core.ExactMapping,
		}},
		Backward: core.UniformMapping(1, core.Identity, core.ExactMapping),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err == nil {
		t.Error("custom func mapper must be rejected")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"not json",
		`{"unknownField": 1}`,
		`{"name":"x","measures":[{"name":"m","agg":"BOGUS"}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "dimensions":[{"id":"D","name":"D","versions":[{"id":"a","from":"junk","to":"Now"}]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "dimensions":[{"id":"D","name":"D","versions":[{"id":"a","from":"01/2002","to":"01/2001"}]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "dimensions":[{"id":"D","name":"D","versions":[{"id":"a","from":"01/2001","to":"Now"}],
		  "relationships":[{"child":"a","parent":"zz","from":"01/2001","to":"Now"}]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "mappings":[{"from":"a","to":"b","forward":[{"cf":"xx"}],"backward":[]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "mappings":[{"from":"a","to":"b","forward":[{"cf":"em"}],"backward":[{"cf":"em","k":1}]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "facts":[{"coords":["a"],"time":"junk","values":[1]}]}`,
		`{"name":"x","measures":[{"name":"m","agg":"SUM"}],
		  "dimensions":[{"id":"D","name":"D","versions":[{"id":"a","from":"01/2001","to":"Now"}]}],
		  "facts":[{"coords":["zz"],"time":"01/2001","values":[1]}]}`,
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestUnknownMapperRoundTrip(t *testing.T) {
	s := core.NewSchema("uk", core.Measure{Name: "m", Agg: core.Sum})
	d := core.NewDimension("D", "D")
	for _, id := range []core.MVID{"a", "b"} {
		if err := d.AddVersion(&core.MemberVersion{ID: id, Valid: temporal.Always}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMapping(core.MappingRelationship{
		From:     "a",
		To:       "b",
		Forward:  core.UniformMapping(1, core.Identity, core.ExactMapping),
		Backward: core.UniformMapping(1, core.Unknown{}, core.UnknownMapping),
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := back.Mappings()[0]
	if _, ok := m.Backward[0].Fn.Map(1); ok {
		t.Error("unknown mapper must survive the round trip")
	}
	if m.Backward[0].CF != core.UnknownMapping {
		t.Error("uk confidence must survive")
	}
}
