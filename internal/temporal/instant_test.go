package temporal

import (
	"testing"
	"testing/quick"
)

func TestYMRoundTrip(t *testing.T) {
	cases := []struct {
		year, month int
	}{
		{2001, 1}, {2002, 12}, {1999, 6}, {0, 1}, {0, 12}, {2100, 7},
	}
	for _, c := range cases {
		i := YM(c.year, c.month)
		if got := i.YearOf(); got != c.year {
			t.Errorf("YM(%d,%d).YearOf() = %d", c.year, c.month, got)
		}
		if got := i.MonthOf(); got != c.month {
			t.Errorf("YM(%d,%d).MonthOf() = %d", c.year, c.month, got)
		}
	}
}

func TestYMRoundTripProperty(t *testing.T) {
	f := func(y int16, m uint8) bool {
		month := int(m%12) + 1
		i := YM(int(y), month)
		return i.YearOf() == int(y) && i.MonthOf() == month
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeInstants(t *testing.T) {
	i := YM(-1, 12)
	if i.YearOf() != -1 || i.MonthOf() != 12 {
		t.Errorf("YM(-1,12) round-trip failed: %d/%d", i.MonthOf(), i.YearOf())
	}
	if YM(-1, 12).Next() != YM(0, 1) {
		t.Error("Dec of year -1 should precede Jan of year 0")
	}
}

func TestNextPrev(t *testing.T) {
	if got := YM(2001, 12).Next(); got != YM(2002, 1) {
		t.Errorf("Next across year boundary = %v", got)
	}
	if got := YM(2002, 1).Prev(); got != YM(2001, 12) {
		t.Errorf("Prev across year boundary = %v", got)
	}
	if Now.Next() != Now || Now.Prev() != Now {
		t.Error("Now must be a fixed point of Next and Prev")
	}
	if Origin.Prev() != Origin {
		t.Error("Origin must be a fixed point of Prev")
	}
}

func TestInstantString(t *testing.T) {
	cases := []struct {
		in   Instant
		want string
	}{
		{YM(2001, 1), "01/2001"},
		{YM(2002, 12), "12/2002"},
		{Now, "Now"},
		{Origin, "-inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseInstant(t *testing.T) {
	cases := []struct {
		in      string
		want    Instant
		wantErr bool
	}{
		{"01/2001", YM(2001, 1), false},
		{"12/2002", YM(2002, 12), false},
		{"2003", Year(2003), false},
		{"Now", Now, false},
		{"now", Now, false},
		{" 06/1999 ", YM(1999, 6), false},
		{"13/2001", 0, true},
		{"0/2001", 0, true},
		{"abc", 0, true},
		{"xx/2001", 0, true},
		{"01/yy", 0, true},
	}
	for _, c := range cases {
		got, err := ParseInstant(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseInstant(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseInstant(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseInstant(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseInstantRoundTripProperty(t *testing.T) {
	f := func(y uint16, m uint8) bool {
		i := YM(int(y), int(m%12)+1)
		parsed, err := ParseInstant(i.String())
		return err == nil && parsed == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	a, b := YM(2001, 3), YM(2002, 7)
	if Min(a, b) != a || Min(b, a) != a {
		t.Error("Min is wrong")
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Error("Max is wrong")
	}
	if Min(a, Now) != a || Max(a, Now) != Now {
		t.Error("Now must dominate every instant")
	}
}

func TestSentinelPanics(t *testing.T) {
	for _, s := range []Instant{Now, Origin} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("YearOf(%v) should panic", s)
				}
			}()
			_ = s.YearOf()
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MonthOf(%v) should panic", s)
				}
			}()
			_ = s.MonthOf()
		}()
	}
}

func TestBeforeAfter(t *testing.T) {
	a, b := YM(2001, 5), YM(2001, 6)
	if !a.Before(b) || b.Before(a) || a.Before(a) {
		t.Error("Before wrong")
	}
	if !b.After(a) || a.After(b) || a.After(a) {
		t.Error("After wrong")
	}
}
