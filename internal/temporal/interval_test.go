package temporal

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genInterval builds a reasonably small random interval, occasionally
// unbounded, for property tests.
func genInterval(r *rand.Rand) Interval {
	start := YM(2000+r.Intn(10), r.Intn(12)+1)
	switch r.Intn(5) {
	case 0:
		return Since(start)
	case 1: // sometimes empty
		return Interval{start, start - Instant(r.Intn(3))}
	default:
		return Interval{start, start + Instant(r.Intn(48))}
	}
}

func (Interval) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genInterval(r))
}

func TestIntervalBasics(t *testing.T) {
	iv := Between(YM(2001, 1), YM(2002, 12))
	if iv.Empty() {
		t.Fatal("non-empty interval reported empty")
	}
	if !iv.Contains(YM(2001, 1)) || !iv.Contains(YM(2002, 12)) {
		t.Error("closed interval must contain both endpoints")
	}
	if iv.Contains(YM(2000, 12)) || iv.Contains(YM(2003, 1)) {
		t.Error("interval contains instants outside bounds")
	}
	if iv.Duration() != 24 {
		t.Errorf("Duration = %d, want 24", iv.Duration())
	}
	if Since(YM(2003, 1)).Duration() != -1 {
		t.Error("unbounded interval must report duration -1")
	}
	if got := iv.String(); got != "[01/2001 ; 12/2002]" {
		t.Errorf("String = %q", got)
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Interval
	}{
		{Between(Year(2001), EndOfYear(2002)), Between(Year(2002), EndOfYear(2003)), Between(Year(2002), EndOfYear(2002))},
		{Since(Year(2003)), Between(Year(2001), EndOfYear(2002)), Interval{Year(2003), EndOfYear(2002)}},
		{Always, Since(Year(2001)), Since(Year(2001))},
	}
	for i, c := range cases {
		got := c.a.Intersect(c.b)
		if !got.Equal(c.want) {
			t.Errorf("case %d: Intersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestIntersectProperties(t *testing.T) {
	commutative := func(a, b Interval) bool {
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	idempotent := func(a Interval) bool {
		return a.Intersect(a).Equal(a)
	}
	associative := func(a, b, c Interval) bool {
		return a.Intersect(b).Intersect(c).Equal(a.Intersect(b.Intersect(c)))
	}
	contained := func(a, b Interval) bool {
		x := a.Intersect(b)
		return a.ContainsInterval(x) && b.ContainsInterval(x)
	}
	for name, f := range map[string]any{
		"commutative": commutative,
		"idempotent":  idempotent,
		"associative": associative,
		"contained":   contained,
	} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHullProperties(t *testing.T) {
	covers := func(a, b Interval) bool {
		h := a.Hull(b)
		return h.ContainsInterval(a) && h.ContainsInterval(b)
	}
	if err := quick.Check(covers, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacent(t *testing.T) {
	a := Between(Year(2001), EndOfYear(2001))
	b := Between(Year(2002), EndOfYear(2002))
	if !a.Adjacent(b) || !b.Adjacent(a) {
		t.Error("2001 and 2002 must be adjacent")
	}
	if a.Adjacent(a) {
		t.Error("an interval is not adjacent to itself")
	}
	c := Between(Year(2003), EndOfYear(2003))
	if a.Adjacent(c) {
		t.Error("2001 and 2003 are not adjacent")
	}
	if Since(Year(2001)).Adjacent(Since(Year(2005))) {
		t.Error("an interval ending Now has no successor")
	}
}

func TestParseInterval(t *testing.T) {
	cases := []struct {
		in      string
		want    Interval
		wantErr bool
	}{
		{"[01/2001 ; 12/2002]", Between(YM(2001, 1), YM(2002, 12)), false},
		{"[01/2003 ; Now]", Since(YM(2003, 1)), false},
		{"2001..2002", Between(Year(2001), Year(2002)), false},
		{"garbage", Interval{}, true},
		{"[x ; y]", Interval{}, true},
		{"[01/2001 ; zz]", Interval{}, true},
	}
	for _, c := range cases {
		got, err := ParseInterval(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseInterval(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseInterval(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseInterval(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIntervalStringRoundTripProperty(t *testing.T) {
	f := func(a Interval) bool {
		if a.Empty() {
			return true
		}
		parsed, err := ParseInterval(a.String())
		return err == nil && parsed.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionCaseStudy(t *testing.T) {
	// Valid times from the paper's Org dimension: Sales [2001, Now],
	// Jones [2001, 12/2002], Bill and Paul [2003, Now], plus the Smith
	// relationship change at 01/2002. Expect elementary boundaries at
	// 01/2001, 01/2002, 01/2003.
	in := []Interval{
		Since(YM(2001, 1)),                 // Sales
		Between(YM(2001, 1), YM(2002, 12)), // Jones
		Since(YM(2003, 1)),                 // Bill, Paul
		Between(YM(2001, 1), YM(2001, 12)), // Smith->Sales rel
		Since(YM(2002, 1)),                 // Smith->R&D rel
	}
	got := Partition(in)
	want := []Interval{
		Between(YM(2001, 1), YM(2001, 12)),
		Between(YM(2002, 1), YM(2002, 12)),
		Since(YM(2003, 1)),
	}
	if len(got) != len(want) {
		t.Fatalf("Partition = %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("elementary[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPartitionProperties(t *testing.T) {
	disjointSortedCovering := func(in []Interval) bool {
		elems := Partition(in)
		// Sorted and disjoint.
		for i := 1; i < len(elems); i++ {
			if elems[i].Start <= elems[i-1].End {
				return false
			}
		}
		// Every input interval is exactly covered: each input start and
		// end instant must fall inside some elementary interval, and each
		// elementary interval must be fully inside some input.
		for _, iv := range in {
			if iv.Empty() {
				continue
			}
			if !coveredByAny(iv.Start, elems) {
				return false
			}
			if iv.End != Now && !coveredByAny(iv.End, elems) {
				return false
			}
		}
		for _, e := range elems {
			inside := false
			for _, iv := range in {
				if iv.ContainsInterval(e) {
					inside = true
					break
				}
			}
			if !inside {
				return false
			}
		}
		return true
	}
	if err := quick.Check(disjointSortedCovering, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRespectsInputBoundaries(t *testing.T) {
	// No elementary interval may straddle an input boundary.
	f := func(in []Interval) bool {
		elems := Partition(in)
		for _, e := range elems {
			for _, iv := range in {
				if iv.Empty() {
					continue
				}
				x := e.Intersect(iv)
				if !x.Empty() && !x.Equal(e) {
					return false // partial overlap: boundary violated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(nil); got != nil {
		t.Errorf("Partition(nil) = %v", got)
	}
	if got := Partition([]Interval{{Year(2002), Year(2001)}}); got != nil {
		t.Errorf("Partition(empty intervals) = %v", got)
	}
}

func TestMergeAdjacent(t *testing.T) {
	in := []Interval{
		Between(Year(2001), EndOfYear(2001)),
		Between(Year(2002), EndOfYear(2002)),
		Between(Year(2004), EndOfYear(2004)),
		Since(Year(2005)),
	}
	got := MergeAdjacent(in)
	want := []Interval{
		Between(Year(2001), EndOfYear(2002)),
		Since(Year(2004)),
	}
	if len(got) != len(want) {
		t.Fatalf("MergeAdjacent = %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
