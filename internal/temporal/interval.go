package temporal

import (
	"fmt"
	"sort"
)

// Interval is a closed valid-time interval [Start, End]. An interval that
// is still valid has End == Now. The zero Interval is empty.
type Interval struct {
	Start, End Instant
}

// Between returns the closed interval [start, end].
func Between(start, end Instant) Interval { return Interval{start, end} }

// Since returns the still-open interval [start, Now].
func Since(start Instant) Interval { return Interval{start, Now} }

// Always is the interval covering the whole time axis.
var Always = Interval{Origin, Now}

// Empty reports whether the interval contains no instant (Start > End).
func (iv Interval) Empty() bool { return iv.Start > iv.End }

// Contains reports whether t lies inside the interval.
func (iv Interval) Contains(t Instant) bool { return iv.Start <= t && t <= iv.End }

// ContainsInterval reports whether other lies entirely inside iv.
// The empty interval is contained in everything.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two intervals share at least one instant.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

// Intersect returns the common part of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Max(iv.Start, other.Start), Min(iv.End, other.End)}
}

// Hull returns the smallest interval covering both operands. Empty
// operands are ignored; the hull of two empty intervals is empty.
func (iv Interval) Hull(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	return Interval{Min(iv.Start, other.Start), Max(iv.End, other.End)}
}

// Adjacent reports whether the intervals touch without overlapping, that
// is one begins exactly one instant after the other ends.
func (iv Interval) Adjacent(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return (iv.End != Now && iv.End.Next() == other.Start) ||
		(other.End != Now && other.End.Next() == iv.Start)
}

// Equal reports whether two intervals denote the same set of instants.
// All empty intervals are equal.
func (iv Interval) Equal(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return iv.Empty() && other.Empty()
	}
	return iv.Start == other.Start && iv.End == other.End
}

// Clamp restricts the interval to the given bounds.
func (iv Interval) Clamp(bounds Interval) Interval { return iv.Intersect(bounds) }

// Duration reports the number of instants in the interval. It returns -1
// for unbounded intervals (End == Now or Start == Origin).
func (iv Interval) Duration() int64 {
	if iv.Empty() {
		return 0
	}
	if iv.End == Now || iv.Start == Origin {
		return -1
	}
	return int64(iv.End-iv.Start) + 1
}

// String renders the interval in the paper's notation "[01/2001 ; Now]".
func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%s ; %s]", iv.Start, iv.End)
}

// ParseInterval parses "[start ; end]" or "start..end" using the instant
// forms accepted by ParseInstant.
func ParseInterval(s string) (Interval, error) {
	raw := s
	if len(s) >= 2 && s[0] == '[' && s[len(s)-1] == ']' {
		s = s[1 : len(s)-1]
	}
	var a, b string
	var ok bool
	if a, b, ok = cut2(s, ";"); !ok {
		if a, b, ok = cut2(s, ".."); !ok {
			return Interval{}, fmt.Errorf("temporal: cannot parse interval %q", raw)
		}
	}
	start, err := ParseInstant(a)
	if err != nil {
		return Interval{}, err
	}
	end, err := ParseInstant(b)
	if err != nil {
		return Interval{}, err
	}
	return Interval{start, end}, nil
}

func cut2(s, sep string) (before, after string, found bool) {
	i := indexOf(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Partition slices the hull of the given intervals into the coarsest set
// of elementary intervals such that every input interval is a union of
// elementary intervals. This is the construction behind Definition 9 of
// the paper: structure versions are "the intersections of the valid time
// intervals of all Member Versions and Temporal Relationships".
//
// The returned intervals are sorted, pairwise disjoint, and cover exactly
// the union of the inputs. Empty inputs are ignored.
func Partition(intervals []Interval) []Interval {
	type boundary struct {
		t     Instant
		start bool
	}
	var bs []boundary
	for _, iv := range intervals {
		if iv.Empty() {
			continue
		}
		bs = append(bs, boundary{iv.Start, true})
		// The instant after the end opens a new elementary interval.
		if iv.End != Now {
			bs = append(bs, boundary{iv.End.Next(), true})
		}
	}
	if len(bs) == 0 {
		return nil
	}
	// Collect distinct cut points.
	cuts := make([]Instant, 0, len(bs))
	for _, b := range bs {
		cuts = append(cuts, b.t)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedupInstants(cuts)

	// Determine global coverage to clip elementary intervals to instants
	// actually covered by at least one input.
	var out []Interval
	for i, c := range cuts {
		end := Now
		if i+1 < len(cuts) {
			end = cuts[i+1].Prev()
		}
		elem := Interval{c, end}
		if coveredByAny(elem.Start, intervals) {
			out = append(out, elem)
		}
	}
	return out
}

func dedupInstants(xs []Instant) []Instant {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func coveredByAny(t Instant, intervals []Interval) bool {
	for _, iv := range intervals {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// MergeAdjacent coalesces sorted, disjoint intervals that touch, keeping
// the list canonical. It is used after filtering elementary intervals by
// a predicate (e.g. merging elementary intervals with identical dimension
// restrictions into a single structure version).
func MergeAdjacent(intervals []Interval) []Interval {
	var out []Interval
	for _, iv := range intervals {
		if iv.Empty() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Adjacent(iv) {
			out[n-1] = out[n-1].Hull(iv)
			continue
		}
		out = append(out, iv)
	}
	return out
}
