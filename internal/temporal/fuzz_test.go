package temporal

import "testing"

// FuzzParseInstant checks parse/format round-tripping: anything the
// parser accepts must render back to a form it accepts again, reaching
// the same instant.
func FuzzParseInstant(f *testing.F) {
	for _, s := range []string{"01/2001", "12/2002", "2003", "Now", "-inf", "00/2001", "junk", "13/1", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 64 {
			return
		}
		i, err := ParseInstant(input)
		if err != nil {
			return
		}
		back, err := ParseInstant(i.String())
		if err != nil {
			t.Fatalf("rendered form %q does not re-parse: %v", i.String(), err)
		}
		if back != i {
			t.Fatalf("round trip %q -> %v -> %v", input, i, back)
		}
	})
}

// FuzzParseInterval does the same for intervals.
func FuzzParseInterval(f *testing.F) {
	for _, s := range []string{"[01/2001 ; Now]", "2001..2002", "[x ; y]", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 64 {
			return
		}
		iv, err := ParseInterval(input)
		if err != nil || iv.Empty() {
			return
		}
		back, err := ParseInterval(iv.String())
		if err != nil || !back.Equal(iv) {
			t.Fatalf("round trip %q -> %v -> %v (%v)", input, iv, back, err)
		}
	})
}
