// Package temporal implements the valid-time algebra underlying the
// temporal multidimensional model of Body et al. (ICDE 2003).
//
// Time is discrete at month granularity, matching the paper's prototype
// where member versions carry valid times such as [01/2001, 12/2002] or
// [01/2003, Now]. An Instant counts months since year 0; the special
// value Now marks an interval that is still valid ("until changed").
//
// Intervals are closed on both ends: [ti, tf] contains both ti and tf.
// The Exclude evolution operator of the paper sets the end of a version
// to tf-1, which is well defined on this discrete axis.
package temporal

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Instant is a point on the discrete time axis, counted in months since
// January of year 0. Using months matches the granularity of the paper's
// prototype; coarser granularities (years) are expressible as January
// instants via Year.
type Instant int64

// Now is the open upper bound of a still-valid interval. It compares
// greater than every concrete instant.
const Now Instant = math.MaxInt64

// Origin is the smallest representable instant, usable as an unbounded
// lower bound in queries.
const Origin Instant = math.MinInt64

// YM returns the instant for the given year and month (1-12).
func YM(year, month int) Instant {
	return Instant(int64(year)*12 + int64(month-1))
}

// Year returns the instant for January of the given year.
func Year(year int) Instant { return YM(year, 1) }

// EndOfYear returns the instant for December of the given year.
func EndOfYear(year int) Instant { return YM(year, 12) }

// YearOf reports the calendar year containing the instant.
// It panics for the sentinel values Now and Origin, which belong to no year.
func (i Instant) YearOf() int {
	if i == Now || i == Origin {
		panic("temporal: YearOf on sentinel instant")
	}
	y := int64(i) / 12
	if int64(i)%12 < 0 {
		y--
	}
	return int(y)
}

// MonthOf reports the month (1-12) of the instant.
// It panics for the sentinel values Now and Origin.
func (i Instant) MonthOf() int {
	if i == Now || i == Origin {
		panic("temporal: MonthOf on sentinel instant")
	}
	m := int64(i) % 12
	if m < 0 {
		m += 12
	}
	return int(m) + 1
}

// Next returns the following instant. Now has no successor and is
// returned unchanged.
func (i Instant) Next() Instant {
	if i == Now {
		return Now
	}
	return i + 1
}

// Prev returns the preceding instant. Origin has no predecessor and is
// returned unchanged; Now-1 is not meaningful and Now is returned
// unchanged as well (an interval ending "now" stays open).
func (i Instant) Prev() Instant {
	if i == Origin || i == Now {
		return i
	}
	return i - 1
}

// Before reports whether i is strictly before j.
func (i Instant) Before(j Instant) bool { return i < j }

// After reports whether i is strictly after j.
func (i Instant) After(j Instant) bool { return i > j }

// Min returns the earlier of two instants.
func Min(a, b Instant) Instant {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of two instants.
func Max(a, b Instant) Instant {
	if a > b {
		return a
	}
	return b
}

// String renders the instant as "MM/YYYY" in the style of the paper
// ("01/2001"), with the sentinels rendered as "Now" and "-inf".
func (i Instant) String() string {
	switch i {
	case Now:
		return "Now"
	case Origin:
		return "-inf"
	}
	return fmt.Sprintf("%02d/%04d", i.MonthOf(), i.YearOf())
}

// ParseInstant parses the textual forms produced by String: "MM/YYYY",
// a bare year "YYYY" (meaning January), or "Now".
func ParseInstant(s string) (Instant, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "now":
		return Now, nil
	case "-inf":
		return Origin, nil
	}
	if mm, yyyy, ok := strings.Cut(s, "/"); ok {
		m, err := strconv.Atoi(mm)
		if err != nil || m < 1 || m > 12 {
			return 0, fmt.Errorf("temporal: invalid month in %q", s)
		}
		y, err := strconv.Atoi(yyyy)
		if err != nil {
			return 0, fmt.Errorf("temporal: invalid year in %q", s)
		}
		return YM(y, m), nil
	}
	y, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("temporal: cannot parse instant %q", s)
	}
	return Year(y), nil
}
