package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mvolap/internal/temporal"
)

// requireBitIdentical fails unless two results agree bit for bit:
// row order, group names and IDs, tuple counts, value bits (NaN
// patterns included), confidence factors and drop counts.
func requireBitIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Dropped != want.Dropped {
		t.Fatalf("%s: dropped %d, want %d", label, got.Dropped, want.Dropped)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		g, w := got.Rows[i], want.Rows[i]
		if g.TimeKey != w.TimeKey || g.N != w.N {
			t.Fatalf("%s row %d: (%s,%d) vs (%s,%d)", label, i, g.TimeKey, g.N, w.TimeKey, w.N)
		}
		for k := range w.Groups {
			if g.Groups[k] != w.Groups[k] || g.GroupIDs[k] != w.GroupIDs[k] {
				t.Fatalf("%s row %d: groups %v/%v, want %v/%v", label, i, g.Groups, g.GroupIDs, w.Groups, w.GroupIDs)
			}
		}
		for k := range w.Values {
			if math.Float64bits(g.Values[k]) != math.Float64bits(w.Values[k]) {
				t.Fatalf("%s row %d value %d: bits %x vs %x", label, i, k,
					math.Float64bits(g.Values[k]), math.Float64bits(w.Values[k]))
			}
			if g.CFs[k] != w.CFs[k] {
				t.Fatalf("%s row %d: CFs differ", label, i)
			}
		}
	}
}

// TestPropertyPrunedCachedBitIdentical is the fast-path equivalence
// property: for randomized queries over an evolving schema — fact
// appends and structural mutations interleaved through clone-swap
// generations, exactly as the serving tier mutates — the production
// path (zone-map pruning on, parallel classify and fold) returns
// results bit-identical to the reference path (pruning disabled,
// single worker). Every query runs in tcm and in a version mode, with
// random ranges, grains and dices, so shard skipping, the dice memo,
// the shared rollup caches and the reused structure-version
// restrictions all face the same answers as the naive scan.
func TestPropertyPrunedCachedBitIdentical(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := bigTCMSchema(t, 2*MappedShardSize+rng.Intn(MappedShardSize))

			divisions := []string{"Sales", "R&D"}
			grains := []TimeGrain{GrainAll, GrainYear, GrainQuarter, GrainMonth}
			randQuery := func() Query {
				q := Query{
					GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
					Grain:   grains[rng.Intn(len(grains))],
					Mode:    TCM(),
				}
				if rng.Intn(2) == 0 {
					q.GroupBy[0].Level = "Department"
				}
				if rng.Intn(4) > 0 { // 75%: bounded range
					y1 := 2001 + rng.Intn(6)
					y2 := y1 + rng.Intn(2006-y1+1)
					q.Range = temporal.Between(temporal.Year(y1), temporal.YM(y2, 12))
				}
				if rng.Intn(3) == 0 {
					q.Filters = []Filter{{Dim: "Org", Members: []string{divisions[rng.Intn(len(divisions))]}}}
				}
				if rng.Intn(4) == 0 {
					if v := s.VersionAt(temporal.Year(2001 + rng.Intn(4))); v != nil {
						q.Mode = InVersion(v)
					}
				}
				return q
			}

			check := func(gen int, q Query) {
				s.SetMaterializeWorkers(1)
				debugDisableZonePruning = true
				want, err := s.Execute(q)
				debugDisableZonePruning = false
				if err != nil {
					t.Fatal(err)
				}
				workers := 2 + rng.Intn(7)
				s.SetMaterializeWorkers(workers)
				got, err := s.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, fmt.Sprintf("gen %d workers %d mode %s", gen, workers, q.Mode), got, want)
			}

			for gen := 0; gen < 6; gen++ {
				for i := 0; i < 4; i++ {
					check(gen, randQuery())
				}
				// Swap in a mutated clone, the serving tier's way.
				clone := s.Clone()
				switch rng.Intn(3) {
				case 0:
					// Facts append at a fresh late instant: the
					// zone-map time pruning case.
					for i := 0; i < 3; i++ {
						member := []Coords{{"Smith"}, {"Brian"}}[rng.Intn(2)]
						at := temporal.YM(2005+rng.Intn(2), 1+rng.Intn(12))
						if err := clone.InsertFact(member, at, float64(rng.Intn(1000))); err != nil {
							t.Fatal(err)
						}
					}
				case 1:
					// Additive structural change: fresh member, upward
					// edge only.
					d := clone.Dimension("Org")
					id := MVID(fmt.Sprintf("New%d-%d", seed, gen))
					valid := temporal.Since(temporal.YM(2004, 1+rng.Intn(12)))
					if err := d.AddVersion(&MemberVersion{ID: id, Member: string(id), Level: "Department", Valid: valid}); err != nil {
						t.Fatal(err)
					}
					if err := d.AddRelationship(TemporalRelationship{From: id, To: "Sales", Valid: valid}); err != nil {
						t.Fatal(err)
					}
				case 2:
					// Non-additive: truncate an existing relationship
					// (a reclassify-shaped rewiring).
					d := clone.Dimension("Org")
					d.EndRelationship("Brian", "R&D", temporal.YM(2004+gen, 6))
					valid := temporal.Since(temporal.YM(2004+gen, 7))
					if err := d.AddRelationship(TemporalRelationship{From: "Brian", To: "Sales", Valid: valid}); err != nil {
						t.Fatal(err)
					}
				}
				s = clone
			}
		})
	}
}

// TestPropertyStructureVersionReuseMatchesFresh pins the
// structure-version recompute reuse (invalidate stashes the previous
// generation; StructureVersions salvages versions whose interval and
// signature are unchanged): a schema that recomputes after every
// mutation must infer exactly the structure versions a from-scratch
// computation over the final state infers — IDs, intervals,
// signatures, and the full restricted member/relationship content.
func TestPropertyStructureVersionReuseMatchesFresh(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		incremental := randomEvolvingSchema(seed)
		fresh := randomEvolvingSchema(seed)

		mutateBoth := func(f func(*Schema)) {
			f(incremental)
			f(fresh)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for step := 0; step < 5; step++ {
			// Warm the incremental schema's cache so the next mutation
			// has a previous generation to salvage from; the fresh
			// schema never computes until the end.
			incremental.StructureVersions()
			id := MVID(fmt.Sprintf("extra%d-%d", seed, step))
			valid := temporal.Since(temporal.YM(2003+step, 1+rng.Intn(12)))
			mutateBoth(func(s *Schema) {
				d := s.Dimension("D")
				if err := d.AddVersion(&MemberVersion{ID: id, Member: string(id), Level: "Leaf", Valid: valid}); err != nil {
					t.Fatal(err)
				}
				if err := d.AddRelationship(TemporalRelationship{From: id, To: "root", Valid: valid}); err != nil {
					t.Fatal(err)
				}
			})
		}

		got := incremental.StructureVersions()
		want := fresh.StructureVersions()
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d versions, want %d", seed, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.ID != w.ID || g.Valid != w.Valid || g.sig != w.sig {
				t.Fatalf("seed %d version %d: (%s %s) vs (%s %s)", seed, i, g.ID, g.Valid, w.ID, w.Valid)
			}
			for j := range w.dims {
				gd, wd := g.dims[j], w.dims[j]
				gv, wv := gd.Versions(), wd.Versions()
				if len(gv) != len(wv) {
					t.Fatalf("seed %d %s dim %d: %d members, want %d", seed, g.ID, j, len(gv), len(wv))
				}
				for k := range wv {
					if gv[k].ID != wv[k].ID || gv[k].Valid != wv[k].Valid || gv[k].Level != wv[k].Level {
						t.Fatalf("seed %d %s dim %d member %d: %+v vs %+v", seed, g.ID, j, k, gv[k], wv[k])
					}
				}
				gr, wr := gd.Relationships(), wd.Relationships()
				if len(gr) != len(wr) {
					t.Fatalf("seed %d %s dim %d: %d rels, want %d", seed, g.ID, j, len(gr), len(wr))
				}
				for k := range wr {
					if gr[k] != wr[k] {
						t.Fatalf("seed %d %s dim %d rel %d: %+v vs %+v", seed, g.ID, j, k, gr[k], wr[k])
					}
				}
			}
		}
	}
}
