package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinearMapper(t *testing.T) {
	m := Linear{K: 0.4}
	v, ok := m.Map(100)
	if !ok || v != 40 {
		t.Errorf("Map(100) = %v, %v", v, ok)
	}
	if m.String() != "x->0.4*x" {
		t.Errorf("String = %q", m.String())
	}
	if Identity.String() != "x->x" {
		t.Errorf("identity String = %q", Identity.String())
	}
}

func TestLinearComposition(t *testing.T) {
	c := Linear{K: 0.4}.Compose(Linear{K: 0.5})
	l, ok := c.(Linear)
	if !ok {
		t.Fatalf("linear∘linear should stay linear, got %T", c)
	}
	if math.Abs(l.K-0.2) > 1e-12 {
		t.Errorf("composed K = %v, want 0.2", l.K)
	}
}

func TestLinearCompositionProperty(t *testing.T) {
	f := func(k1, k2, x float64) bool {
		if math.IsNaN(k1) || math.IsNaN(k2) || math.IsNaN(x) ||
			math.IsInf(k1, 0) || math.IsInf(k2, 0) || math.IsInf(x, 0) {
			return true
		}
		composed, _ := Linear{k1}.Compose(Linear{k2}).Map(x)
		direct := k2 * (k1 * x)
		if math.IsNaN(composed) && math.IsNaN(direct) {
			return true
		}
		return composed == direct ||
			math.Abs(composed-direct) <= 1e-9*math.Max(math.Abs(composed), math.Abs(direct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnknownMapper(t *testing.T) {
	uk := Unknown{}
	_, ok := uk.Map(1)
	if ok {
		t.Error("unknown mapping must report not-ok")
	}
	if uk.String() != "-" {
		t.Errorf("String = %q", uk.String())
	}
	// Unknown poisons composition in both directions.
	if _, ok := uk.Compose(Linear{2}).Map(1); ok {
		t.Error("uk∘linear must stay unknown")
	}
	if _, ok := (Linear{2}).Compose(Unknown{}).Map(1); ok {
		t.Error("linear∘uk must stay unknown")
	}
	if _, ok := (Func{F: func(x float64) float64 { return x }}).Compose(Unknown{}).Map(1); ok {
		t.Error("func∘uk must stay unknown")
	}
}

func TestFuncMapper(t *testing.T) {
	sq := Func{F: func(x float64) float64 { return x * x }, Desc: "x->x^2"}
	v, ok := sq.Map(3)
	if !ok || v != 9 {
		t.Errorf("Map(3) = %v, %v", v, ok)
	}
	if sq.String() != "x->x^2" {
		t.Errorf("String = %q", sq.String())
	}
	if (Func{F: func(x float64) float64 { return x }}).String() != "x->f(x)" {
		t.Error("default Func description")
	}
	// func∘linear chains left-to-right: square then halve.
	c := sq.Compose(Linear{0.5})
	v, ok = c.Map(4)
	if !ok || v != 8 {
		t.Errorf("chain Map(4) = %v, want 8", v)
	}
	// linear∘func also chains: halve then square.
	c2 := Linear{0.5}.Compose(sq)
	v, ok = c2.Map(4)
	if !ok || v != 4 {
		t.Errorf("chain2 Map(4) = %v, want 4", v)
	}
	if c2.String() == "" {
		t.Error("chain String must describe both stages")
	}
	// chain composes further.
	c3 := c2.Compose(Linear{10})
	v, ok = c3.Map(4)
	if !ok || v != 40 {
		t.Errorf("chain3 Map(4) = %v, want 40", v)
	}
	if _, okc := c2.Compose(Unknown{}).Map(1); okc {
		t.Error("chain∘uk must stay unknown")
	}
}

func TestUniformMapping(t *testing.T) {
	ms := UniformMapping(3, Identity, ExactMapping)
	if len(ms) != 3 {
		t.Fatalf("len = %d", len(ms))
	}
	for _, m := range ms {
		if m.CF != ExactMapping {
			t.Errorf("cf = %v", m.CF)
		}
		if v, _ := m.Fn.Map(7); v != 7 {
			t.Errorf("fn(7) = %v", v)
		}
	}
	if ms[0].String() != "(x->x, em)" {
		t.Errorf("String = %q", ms[0].String())
	}
}

func TestMappingRelationshipValidate(t *testing.T) {
	good := MappingRelationship{
		From:     "a",
		To:       "b",
		Forward:  UniformMapping(1, Identity, ExactMapping),
		Backward: UniformMapping(1, Identity, ExactMapping),
	}
	if err := good.Validate(1); err != nil {
		t.Errorf("good relationship rejected: %v", err)
	}
	cases := []struct {
		name string
		mr   MappingRelationship
	}{
		{"empty endpoint", MappingRelationship{From: "", To: "b",
			Forward: UniformMapping(1, Identity, ExactMapping), Backward: UniformMapping(1, Identity, ExactMapping)}},
		{"self", MappingRelationship{From: "a", To: "a",
			Forward: UniformMapping(1, Identity, ExactMapping), Backward: UniformMapping(1, Identity, ExactMapping)}},
		{"forward arity", MappingRelationship{From: "a", To: "b",
			Forward: UniformMapping(2, Identity, ExactMapping), Backward: UniformMapping(1, Identity, ExactMapping)}},
		{"backward arity", MappingRelationship{From: "a", To: "b",
			Forward: UniformMapping(1, Identity, ExactMapping), Backward: nil}},
		{"nil mapper", MappingRelationship{From: "a", To: "b",
			Forward: []MeasureMapping{{Fn: nil}}, Backward: UniformMapping(1, Identity, ExactMapping)}},
	}
	for _, c := range cases {
		if err := c.mr.Validate(1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if good.String() == "" {
		t.Error("String must render")
	}
}

// splitGraph builds the case-study mapping graph: Jones → Bill (0.4, am)
// and Jones → Paul (0.6, am), backward identity em.
func splitGraph() *mappingGraph {
	rels := []MappingRelationship{
		{From: "Jones", To: "Bill",
			Forward:  []MeasureMapping{{Fn: Linear{0.4}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
		{From: "Jones", To: "Paul",
			Forward:  []MeasureMapping{{Fn: Linear{0.6}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
	}
	return newMappingGraph(rels, 1, PaperAlgebra())
}

func acceptSet(ids ...MVID) func(MVID) bool {
	set := make(map[MVID]bool)
	for _, id := range ids {
		set[id] = true
	}
	return func(id MVID) bool { return set[id] }
}

func TestResolveIdentity(t *testing.T) {
	g := splitGraph()
	rs := g.resolve("Jones", acceptSet("Jones", "Bill"))
	if len(rs) != 1 || rs[0].target != "Jones" {
		t.Fatalf("resolve to self failed: %+v", rs)
	}
	if rs[0].per[0].CF != SourceData {
		t.Errorf("self resolution cf = %v", rs[0].per[0].CF)
	}
}

func TestResolveSplitForward(t *testing.T) {
	g := splitGraph()
	rs := g.resolve("Jones", acceptSet("Bill", "Paul", "Smith"))
	if len(rs) != 2 {
		t.Fatalf("split must fan out to 2 targets, got %+v", rs)
	}
	byTarget := map[MVID]resolution{}
	for _, r := range rs {
		byTarget[r.target] = r
	}
	if v, _ := byTarget["Bill"].per[0].Fn.Map(100); v != 40 {
		t.Errorf("Bill mapping(100) = %v, want 40", v)
	}
	if v, _ := byTarget["Paul"].per[0].Fn.Map(100); v != 60 {
		t.Errorf("Paul mapping(100) = %v, want 60", v)
	}
	for id, r := range byTarget {
		if r.per[0].CF != ApproxMapping {
			t.Errorf("%s cf = %v, want am", id, r.per[0].CF)
		}
	}
}

func TestResolveMergeBackward(t *testing.T) {
	g := splitGraph()
	rs := g.resolve("Bill", acceptSet("Jones"))
	if len(rs) != 1 || rs[0].target != "Jones" {
		t.Fatalf("backward resolution = %+v", rs)
	}
	if v, _ := rs[0].per[0].Fn.Map(150); v != 150 {
		t.Errorf("backward map(150) = %v", v)
	}
	if rs[0].per[0].CF != ExactMapping {
		t.Errorf("backward cf = %v, want em", rs[0].per[0].CF)
	}
}

func TestResolveTransitiveChain(t *testing.T) {
	// a → b → c, each exact halving; a must reach c with k=0.25 and em.
	rels := []MappingRelationship{
		{From: "a", To: "b",
			Forward:  []MeasureMapping{{Fn: Linear{0.5}, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Linear{2}, CF: ExactMapping}}},
		{From: "b", To: "c",
			Forward:  []MeasureMapping{{Fn: Linear{0.5}, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Linear{2}, CF: ExactMapping}}},
	}
	g := newMappingGraph(rels, 1, PaperAlgebra())
	rs := g.resolve("a", acceptSet("c"))
	if len(rs) != 1 || rs[0].target != "c" {
		t.Fatalf("transitive resolution = %+v", rs)
	}
	if v, _ := rs[0].per[0].Fn.Map(100); v != 25 {
		t.Errorf("composed map(100) = %v, want 25", v)
	}
	// Reverse direction composes the backward functions.
	back := g.resolve("c", acceptSet("a"))
	if len(back) != 1 {
		t.Fatalf("reverse transitive failed: %+v", back)
	}
	if v, _ := back[0].per[0].Fn.Map(25); v != 100 {
		t.Errorf("reverse composed map(25) = %v, want 100", v)
	}
}

func TestResolveStopsAtNearestTarget(t *testing.T) {
	// a → b → c where both b and c are acceptable: data maps to b only
	// (nearest version), not through it to c.
	rels := []MappingRelationship{
		{From: "a", To: "b",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
		{From: "b", To: "c",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
	}
	g := newMappingGraph(rels, 1, PaperAlgebra())
	rs := g.resolve("a", acceptSet("b", "c"))
	if len(rs) != 1 || rs[0].target != "b" {
		t.Errorf("resolution must stop at the nearest target, got %+v", rs)
	}
}

func TestResolveUnreachable(t *testing.T) {
	g := splitGraph()
	if rs := g.resolve("Smith", acceptSet("Bill")); len(rs) != 0 {
		t.Errorf("unreachable source resolved to %+v", rs)
	}
}

func TestResolveUnknownMapping(t *testing.T) {
	// Merge of V1, V2 into V12 where the backward mapping to V2 is
	// unknown (Table 11's merge example): resolving V12 back to V2
	// produces a target with an Unknown mapper and uk confidence.
	rels := []MappingRelationship{
		{From: "V2", To: "V12",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Unknown{}, CF: UnknownMapping}}},
	}
	g := newMappingGraph(rels, 1, PaperAlgebra())
	rs := g.resolve("V12", acceptSet("V2"))
	if len(rs) != 1 {
		t.Fatalf("resolution = %+v", rs)
	}
	if _, ok := rs[0].per[0].Fn.Map(100); ok {
		t.Error("mapper must be unknown")
	}
	if rs[0].per[0].CF != UnknownMapping {
		t.Errorf("cf = %v, want uk", rs[0].per[0].CF)
	}
}

func TestResolveCycleTermination(t *testing.T) {
	// a ↔ b cycle plus an exit; resolution must terminate.
	rels := []MappingRelationship{
		{From: "a", To: "b",
			Forward:  UniformMapping(1, Identity, ExactMapping),
			Backward: UniformMapping(1, Identity, ExactMapping)},
		{From: "b", To: "a",
			Forward:  UniformMapping(1, Identity, ExactMapping),
			Backward: UniformMapping(1, Identity, ExactMapping)},
		{From: "b", To: "c",
			Forward:  UniformMapping(1, Identity, ExactMapping),
			Backward: UniformMapping(1, Identity, ExactMapping)},
	}
	g := newMappingGraph(rels, 1, PaperAlgebra())
	rs := g.resolve("a", acceptSet("c"))
	if len(rs) != 1 || rs[0].target != "c" {
		t.Errorf("cycle resolution = %+v", rs)
	}
}

func TestResolveIntoExported(t *testing.T) {
	s := splitSchema(t)
	v3 := s.VersionAt(y(2003))
	rs := s.ResolveInto("Jones", v3)
	if len(rs) != 2 {
		t.Fatalf("resolutions = %+v", rs)
	}
	byTarget := map[MVID]Resolution{}
	for _, r := range rs {
		byTarget[r.Target] = r
	}
	bill, ok := byTarget["Bill"]
	if !ok {
		t.Fatal("Bill missing")
	}
	if v, _ := bill.Per[0].Fn.Map(100); v != 40 {
		t.Errorf("Bill mapping = %v", v)
	}
	if bill.Per[0].CF != ApproxMapping {
		t.Errorf("Bill cf = %v", bill.Per[0].CF)
	}
	// Identity resolution for a member valid in the version.
	rs = s.ResolveInto("Smith", v3)
	if len(rs) != 1 || rs[0].Target != "Smith" || rs[0].Per[0].CF != SourceData {
		t.Errorf("Smith resolution = %+v", rs)
	}
	// Unknown member and nil version yield nothing.
	if rs := s.ResolveInto("zz", v3); rs != nil {
		t.Errorf("unknown member resolved: %+v", rs)
	}
	if rs := s.ResolveInto("Jones", nil); rs != nil {
		t.Errorf("nil version resolved: %+v", rs)
	}
}

// TestSchemaWithQuantitativeAlgebra runs the case-study mapping under
// the quantitative ⊗cf: long approximate chains degrade toward uk.
func TestSchemaWithQuantitativeAlgebra(t *testing.T) {
	s := splitSchema(t)
	s.SetConfidenceAlgebra(NewQuantitativeAlgebra())
	if s.ConfidenceAlgebra().Name() != "quantitative" {
		t.Fatal("algebra not installed")
	}
	s.Invalidate()
	v3 := s.VersionAt(y(2003))
	mt, err := s.MultiVersion().Mode(InVersion(v3))
	if err != nil {
		t.Fatal(err)
	}
	bill, ok := mt.Lookup(Coords{"Bill"}, y(2001))
	if !ok || bill.Values[0] != 40 {
		t.Fatalf("mapped value = %+v", bill)
	}
	// One am step under quantitative reliabilities (1×0.5) classifies am.
	if bill.CFs[0] != ApproxMapping {
		t.Errorf("quantitative cf = %v", bill.CFs[0])
	}
}
