package core

import (
	"fmt"
	"math/rand"

	"mvolap/internal/temporal"
)

// randomEvolvingSchema builds a deterministic pseudo-random schema whose
// dimension members appear and disappear at random instants, producing a
// non-trivial set of structure versions. Used by property tests.
func randomEvolvingSchema(seed int64) *Schema {
	r := rand.New(rand.NewSource(seed))
	s := NewSchema("random", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")

	// A root that always exists plus a second root appearing later.
	mustAdd := func(mv *MemberVersion) {
		if err := d.AddVersion(mv); err != nil {
			panic(err)
		}
	}
	mustRel := func(rel TemporalRelationship) {
		if err := d.AddRelationship(rel); err != nil {
			panic(err)
		}
	}
	mustAdd(&MemberVersion{ID: "root", Level: "Top", Valid: temporal.Since(temporal.Year(2000))})
	mustAdd(&MemberVersion{ID: "root2", Level: "Top", Valid: temporal.Since(temporal.Year(2000 + r.Intn(5)))})

	n := 2 + r.Intn(8)
	for i := 0; i < n; i++ {
		start := temporal.YM(2000+r.Intn(6), 1+r.Intn(12))
		var valid temporal.Interval
		if r.Intn(3) == 0 {
			valid = temporal.Since(start)
		} else {
			valid = temporal.Between(start, start+temporal.Instant(1+r.Intn(60)))
		}
		id := MVID(fmt.Sprintf("leaf%d", i))
		mustAdd(&MemberVersion{ID: id, Level: "Leaf", Valid: valid})
		parent := MVID("root")
		if r.Intn(2) == 0 {
			parent = "root2"
		}
		window := valid.Intersect(d.Version(parent).Valid)
		if !window.Empty() {
			mustRel(TemporalRelationship{From: id, To: parent, Valid: window})
		}
	}
	if err := s.AddDimension(d); err != nil {
		panic(err)
	}
	return s
}
