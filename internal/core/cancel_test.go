package core

import (
	"context"
	"errors"
	"testing"

	"mvolap/internal/temporal"
)

// TestExecuteContextCancelled asserts the acceptance criterion: a query
// issued with an already-cancelled context returns promptly with a
// cancellation error instead of scanning facts.
func TestExecuteContextCancelled(t *testing.T) {
	s := splitSchema(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.ExecuteContext(ctx, Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err == nil {
		t.Fatal("cancelled query should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

// TestExecuteContextDeadline covers the deadline flavour of
// cancellation used by the server's per-request query timeout.
func TestExecuteContextDeadline(t *testing.T) {
	s := splitSchema(t)
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err := s.ExecuteContext(ctx, Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
}

// TestModeContextCancelledBuildEvicted asserts that a build abandoned
// by cancellation is evicted from the mode cache, so the next live
// caller rebuilds cleanly instead of inheriting the failure.
func TestModeContextCancelledBuildEvicted(t *testing.T) {
	s := splitSchema(t)
	mv := s.MultiVersion()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mv.ModeContext(ctx, TCM()); err == nil {
		t.Fatal("cancelled materialization should fail")
	}

	mt, err := mv.ModeContext(context.Background(), TCM())
	if err != nil {
		t.Fatalf("retry after cancelled build: %v", err)
	}
	if mt == nil || len(mt.Facts()) == 0 {
		t.Fatal("retry should produce a materialized table")
	}
	// One cancelled attempt plus one successful rebuild.
	if got := mv.Materializations(); got != 2 {
		t.Fatalf("Materializations() = %d, want 2", got)
	}
}

// TestSchemaCloneIsolated asserts Clone's copy-on-write contract: the
// clone is deep enough that in-place evolution of the clone's
// dimensions and facts never shows through to the original.
func TestSchemaCloneIsolated(t *testing.T) {
	orig := splitSchema(t)
	origVersions := len(orig.Dimension("Org").Versions())
	origFacts := orig.Facts().Len()
	origModes := len(orig.Modes())

	clone := orig.Clone()
	d := clone.Dimension("Org")
	if d == orig.Dimension("Org") {
		t.Fatal("clone shares the dimension pointer")
	}
	if err := d.AddVersion(&MemberVersion{
		ID: "NewDept", Member: "NewDept", Level: "Department",
		Valid: temporal.Since(y(2004)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetEnd("Smith", ym(2003, 12)); err != nil {
		t.Fatal(err)
	}
	if err := clone.InsertFact(Coords{"NewDept"}, y(2004), 99); err != nil {
		t.Fatal(err)
	}
	clone.Invalidate()

	if got := len(orig.Dimension("Org").Versions()); got != origVersions {
		t.Fatalf("original dimension mutated: %d versions, want %d", got, origVersions)
	}
	if v := orig.Dimension("Org").Version("Smith"); v == nil || v.Valid.End != temporal.Now {
		t.Fatal("original member validity mutated through clone")
	}
	if got := orig.Facts().Len(); got != origFacts {
		t.Fatalf("original facts mutated: %d, want %d", got, origFacts)
	}
	if got := len(orig.Modes()); got != origModes {
		t.Fatalf("original modes changed: %d, want %d", got, origModes)
	}

	// Both schemas stay independently queryable.
	for _, s := range []*Schema{orig, clone} {
		if _, err := s.Execute(Query{
			GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
			Grain:   GrainYear,
			Mode:    TCM(),
		}); err != nil {
			t.Fatal(err)
		}
	}
}
