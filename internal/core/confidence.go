// Package core implements the temporal multidimensional model of
// Body, Miquel, Bédard & Tchounikine, "Handling Evolutions in
// Multidimensional Structures" (ICDE 2003).
//
// The model (Definitions 1-12 of the paper) consists of:
//
//   - Member Versions: time-sliced states of dimension members (Def. 1).
//   - Temporal Relationships: hierarchy links with valid time (Def. 2).
//   - Temporal Dimensions: time-indexed rollup DAGs (Def. 3) whose levels
//     are derived from the instances (Def. 4).
//   - A Temporally Consistent Fact Table mapping leaf member versions and
//     time to measure values (Def. 5).
//   - Confidence Factors describing data reliability, combined by a
//     designer-supplied algebra (Def. 6).
//   - Mapping Relationships carrying per-measure mapping functions across
//     member transitions, with forward and reverse directions (Def. 7).
//   - The Temporal Multidimensional Schema tying it together (Def. 8).
//   - Structure Versions inferred from the valid-time endpoints (Def. 9).
//   - Temporal Modes of Presentation: temporally consistent, or mapped
//     into one structure version (Def. 10).
//   - The MultiVersion Fact Table materializing data in every mode with
//     confidence factors (Def. 11) and mode-aware aggregation (Def. 12).
package core

import "fmt"

// Confidence is a qualitative confidence factor describing the
// reliability of a value (Definition 6). The four values follow
// Example 5 of the paper; the prototype's integer codes from §5.2 are
// available through PrototypeCode.
type Confidence uint8

const (
	// SourceData (sd) marks temporally consistent source values.
	SourceData Confidence = iota
	// ExactMapping (em) marks values mapped with an exact function.
	ExactMapping
	// ApproxMapping (am) marks values mapped with an approximation.
	ApproxMapping
	// UnknownMapping (uk) marks values whose mapping is unknown.
	UnknownMapping

	numConfidence = 4
)

// String returns the paper's two-letter code for the confidence factor.
func (c Confidence) String() string {
	switch c {
	case SourceData:
		return "sd"
	case ExactMapping:
		return "em"
	case ApproxMapping:
		return "am"
	case UnknownMapping:
		return "uk"
	}
	return fmt.Sprintf("Confidence(%d)", uint8(c))
}

// PrototypeCode returns the integer coding used by the paper's prototype
// (§5.2): 3 for source data, 2 for exact, 1 for approximated, 4 for
// unknown mapping.
func (c Confidence) PrototypeCode() int {
	switch c {
	case SourceData:
		return 3
	case ExactMapping:
		return 2
	case ApproxMapping:
		return 1
	case UnknownMapping:
		return 4
	}
	return 0
}

// ConfidenceFromPrototypeCode is the inverse of PrototypeCode.
func ConfidenceFromPrototypeCode(code int) (Confidence, error) {
	switch code {
	case 3:
		return SourceData, nil
	case 2:
		return ExactMapping, nil
	case 1:
		return ApproxMapping, nil
	case 4:
		return UnknownMapping, nil
	}
	return 0, fmt.Errorf("core: unknown prototype confidence code %d", code)
}

// ParseConfidence parses the two-letter codes sd, em, am, uk.
func ParseConfidence(s string) (Confidence, error) {
	switch s {
	case "sd":
		return SourceData, nil
	case "em":
		return ExactMapping, nil
	case "am":
		return ApproxMapping, nil
	case "uk":
		return UnknownMapping, nil
	}
	return 0, fmt.Errorf("core: unknown confidence code %q", s)
}

// ConfidenceAlgebra is the aggregate function ⊗cf of Definition 6: it
// combines the confidence factors of values that are aggregated together
// (or of mapping steps that are composed). The paper lets the designer
// define it either as a truth table (qualitative factors) or as a
// function (quantitative factors).
type ConfidenceAlgebra interface {
	// Combine merges two confidence factors.
	Combine(a, b Confidence) Confidence
	// Name identifies the algebra in metadata.
	Name() string
}

// TruthTable is a qualitative confidence algebra given extensionally, as
// in Example 5 of the paper. It is indexed by the two operand values.
type TruthTable struct {
	Table [numConfidence][numConfidence]Confidence
	Label string
}

// Combine looks the pair up in the table. Out-of-range operands combine
// to UnknownMapping.
func (t *TruthTable) Combine(a, b Confidence) Confidence {
	if a >= numConfidence || b >= numConfidence {
		return UnknownMapping
	}
	return t.Table[a][b]
}

// Name returns the table's label.
func (t *TruthTable) Name() string { return t.Label }

// PaperAlgebra returns the truth table of Example 5:
//
//	⊗cf | sd  em  am  uk
//	 sd | sd  em  am  uk
//	 em | em  em  am  uk
//	 am | am  am  am  uk
//	 uk | uk  uk  uk  uk
//
// It is an idempotent commutative monoid with identity sd and absorbing
// element uk (least-reliable-wins).
func PaperAlgebra() ConfidenceAlgebra {
	sd, em, am, uk := SourceData, ExactMapping, ApproxMapping, UnknownMapping
	return &TruthTable{
		Label: "paper-example-5",
		Table: [numConfidence][numConfidence]Confidence{
			{sd, em, am, uk},
			{em, em, am, uk},
			{am, am, am, uk},
			{uk, uk, uk, uk},
		},
	}
}

// QuantitativeAlgebra is a confidence algebra defined by a function on a
// numeric reliability scale, the quantitative alternative mentioned in
// Definition 6. Each qualitative factor is assigned a reliability in
// [0,1]; combination multiplies reliabilities and maps the product back
// to the nearest factor, so long mapping chains degrade gracefully.
type QuantitativeAlgebra struct {
	// Reliability assigns a numeric reliability to each factor. The
	// defaults (1, 0.9, 0.5, 0) are used for unset entries.
	Reliability [numConfidence]float64
}

// NewQuantitativeAlgebra returns a quantitative algebra with the default
// reliability assignment sd=1, em=0.9, am=0.5, uk=0.
func NewQuantitativeAlgebra() *QuantitativeAlgebra {
	return &QuantitativeAlgebra{Reliability: [numConfidence]float64{1, 0.9, 0.5, 0}}
}

// Combine multiplies the operand reliabilities and classifies the result.
func (q *QuantitativeAlgebra) Combine(a, b Confidence) Confidence {
	if a >= numConfidence || b >= numConfidence {
		return UnknownMapping
	}
	p := q.Reliability[a] * q.Reliability[b]
	// Classify against the thresholds between the configured levels.
	best, bestDist := UnknownMapping, 2.0
	for c := SourceData; c < numConfidence; c++ {
		d := q.Reliability[c] - p
		if d < 0 {
			d = -d
		}
		// Prefer the less reliable class on ties so combination never
		// increases confidence.
		if d < bestDist || (d == bestDist && c > best) {
			best, bestDist = c, d
		}
	}
	return best
}

// Name identifies the algebra.
func (q *QuantitativeAlgebra) Name() string { return "quantitative" }
