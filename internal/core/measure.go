package core

import (
	"fmt"
	"math"
)

// AggKind selects the aggregate function ⊕m of a measure (Definition 12).
type AggKind uint8

// Supported aggregate functions.
const (
	Sum AggKind = iota
	Count
	Min
	Max
	Avg
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Avg:
		return "AVG"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(a))
}

// ParseAggKind parses the SQL-style names accepted by String.
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "SUM", "sum":
		return Sum, nil
	case "COUNT", "count":
		return Count, nil
	case "MIN", "min":
		return Min, nil
	case "MAX", "max":
		return Max, nil
	case "AVG", "avg":
		return Avg, nil
	}
	return 0, fmt.Errorf("core: unknown aggregate %q", s)
}

// Measure describes one measure of the fact table: a name and its
// aggregate function.
type Measure struct {
	Name string
	Agg  AggKind
}

// Accumulator incrementally computes one aggregate over float64 values,
// skipping NaN (the representation of values with unknown mapping).
type Accumulator struct {
	kind       AggKind
	sum        float64
	minV, maxV float64
	n          int
}

// NewAccumulator returns an empty accumulator for the aggregate kind.
func NewAccumulator(kind AggKind) *Accumulator {
	return &Accumulator{kind: kind, minV: math.Inf(1), maxV: math.Inf(-1)}
}

// Add folds a value into the aggregate. NaN values (unknown mappings)
// are ignored, matching the paper's treatment of unknown data: they
// poison the confidence factor, not the number.
func (a *Accumulator) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	a.n++
	a.sum += v
	if v < a.minV {
		a.minV = v
	}
	if v > a.maxV {
		a.maxV = v
	}
}

// N reports how many non-NaN values were added.
func (a *Accumulator) N() int { return a.n }

// Value returns the aggregate. An empty accumulator yields NaN, which
// renders as an unknown cell.
func (a *Accumulator) Value() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	switch a.kind {
	case Sum:
		return a.sum
	case Count:
		return float64(a.n)
	case Min:
		return a.minV
	case Max:
		return a.maxV
	case Avg:
		return a.sum / float64(a.n)
	}
	return math.NaN()
}
