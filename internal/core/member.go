package core

import (
	"fmt"

	"mvolap/internal/temporal"
)

// MVID uniquely identifies a Member Version within a schema.
type MVID string

// DimID uniquely identifies a Temporal Dimension within a schema.
type DimID string

// MemberVersion is a state of a member, unchanged and coherent over a
// time slice (Definition 1). A member may have several valid versions at
// the same instant (valid times may overlap), so no exact history
// partition is required of the designer — unlike Kimball's Type Two
// slowly changing dimensions.
type MemberVersion struct {
	// ID is the unique identifier MVid.
	ID MVID
	// Member names the underlying member this version belongs to.
	// Several versions of the same member share this name.
	Member string
	// Name is the display name of this particular version. It defaults
	// to Member when empty.
	Name string
	// Attrs holds the optional user-defined attributes [A].
	Attrs map[string]string
	// Level optionally tags the schema level of this version. When all
	// versions of a dimension carry a level tag, levels are the
	// equivalence classes of the tag; otherwise they are derived from
	// DAG depth (Definition 4).
	Level string
	// Valid is the valid time [ti, tf] of this version.
	Valid temporal.Interval
}

// DisplayName returns Name, falling back to Member.
func (mv *MemberVersion) DisplayName() string {
	if mv.Name != "" {
		return mv.Name
	}
	return mv.Member
}

// ValidAt reports whether the version is valid at instant t.
func (mv *MemberVersion) ValidAt(t temporal.Instant) bool { return mv.Valid.Contains(t) }

// String renders the version as the paper does in Example 1:
// <id, 'name', level, ti, tf>.
func (mv *MemberVersion) String() string {
	lvl := ""
	if mv.Level != "" {
		lvl = ", " + mv.Level
	}
	return fmt.Sprintf("<%s, %q%s, %s, %s>", mv.ID, mv.DisplayName(), lvl, mv.Valid.Start, mv.Valid.End)
}

// Clone returns a deep copy of the member version.
func (mv *MemberVersion) Clone() *MemberVersion {
	cp := *mv
	if mv.Attrs != nil {
		cp.Attrs = make(map[string]string, len(mv.Attrs))
		for k, v := range mv.Attrs {
			cp.Attrs[k] = v
		}
	}
	return &cp
}

// TemporalRelationship is an explicit hierarchical link between two
// member versions, representing a rollup function (Definition 2). From
// is the child, To the parent. Its valid time must be included in the
// intersection of the valid times of both member versions; AddRelationship
// enforces this.
type TemporalRelationship struct {
	From  MVID
	To    MVID
	Valid temporal.Interval
}

// String renders the relationship as <from, to, ti, tf>.
func (r TemporalRelationship) String() string {
	return fmt.Sprintf("<%s, %s, %s, %s>", r.From, r.To, r.Valid.Start, r.Valid.End)
}
