package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggKindStringParse(t *testing.T) {
	for _, k := range []AggKind{Sum, Count, Min, Max, Avg} {
		parsed, err := ParseAggKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("round trip %v failed: %v, %v", k, parsed, err)
		}
	}
	if _, err := ParseAggKind("median"); err == nil {
		t.Error("unknown aggregate must fail to parse")
	}
	if AggKind(42).String() == "" {
		t.Error("out-of-range String must be non-empty")
	}
	// Lower-case forms parse too.
	if k, err := ParseAggKind("sum"); err != nil || k != Sum {
		t.Error("lower-case parse failed")
	}
}

func TestAccumulator(t *testing.T) {
	cases := []struct {
		kind   AggKind
		values []float64
		want   float64
	}{
		{Sum, []float64{1, 2, 3}, 6},
		{Count, []float64{5, 5, 5}, 3},
		{Min, []float64{3, 1, 2}, 1},
		{Max, []float64{3, 1, 2}, 3},
		{Avg, []float64{2, 4, 6}, 4},
		{Sum, []float64{1, math.NaN(), 3}, 4},
		{Count, []float64{1, math.NaN()}, 1},
	}
	for _, c := range cases {
		a := NewAccumulator(c.kind)
		for _, v := range c.values {
			a.Add(v)
		}
		if got := a.Value(); got != c.want {
			t.Errorf("%v over %v = %v, want %v", c.kind, c.values, got, c.want)
		}
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	for _, k := range []AggKind{Sum, Count, Min, Max, Avg} {
		a := NewAccumulator(k)
		if !math.IsNaN(a.Value()) {
			t.Errorf("%v: empty accumulator must be NaN", k)
		}
		if a.N() != 0 {
			t.Errorf("%v: empty N = %d", k, a.N())
		}
	}
	a := NewAccumulator(AggKind(77))
	a.Add(1)
	if !math.IsNaN(a.Value()) {
		t.Error("unknown kind must yield NaN")
	}
}

// TestSumOrderIndependence: Sum and Count are order-independent.
func TestSumOrderIndependence(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		fwd := NewAccumulator(Sum)
		rev := NewAccumulator(Sum)
		for _, x := range clean {
			fwd.Add(x)
		}
		for i := len(clean) - 1; i >= 0; i-- {
			rev.Add(clean[i])
		}
		a, b := fwd.Value(), rev.Value()
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMinMaxBounds: Min <= every input <= Max.
func TestMinMaxBounds(t *testing.T) {
	f := func(xs []float64) bool {
		mn, mx := NewAccumulator(Min), NewAccumulator(Max)
		var clean []float64
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			clean = append(clean, x)
			mn.Add(x)
			mx.Add(x)
		}
		if len(clean) == 0 {
			return true
		}
		for _, x := range clean {
			if x < mn.Value() || x > mx.Value() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
