package core

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"mvolap/internal/temporal"
)

// Delta describes what one accepted mutation batch changed between a
// base schema and its evolved clone, precisely enough for incremental
// MVFT maintenance to decide, per cached mode, between folding the
// change in and rebuilding from zero.
type Delta struct {
	// NewFacts is the suffix of the clone's fact table appended by the
	// batch, in insertion order. Appends never rewrite earlier tuples,
	// so folding this suffix through the mapping graph reproduces, bit
	// for bit, the tail of a cold rebuild.
	NewFacts []*Fact
	// Retracted lists the old tuples a retract batch removed from the
	// fact table, in batch order. Carrying the full tuple (not just its
	// key) lets WarmFrom recompute the exact emissions it contributed
	// and subtract them out of retained modes under invertible
	// aggregates; modes it cannot unfold exactly are evicted instead
	// (see Schema.retractInto).
	Retracted []*Fact
	// FactsReplaced reports that the batch overwrote values at existing
	// coordinates (FactTable.Insert replaces — the fact table is a
	// function). A replacement is not an insert-only delta: merged
	// tuples already folded the old value, so every cached mode is
	// evicted.
	FactsReplaced bool
	// FactsWindow, when FactsWindowKnown, is the hull of the instants
	// of every fact the batch inserted or replaced. Whether a tuple was
	// appended or overwritten, only its own instant's value changed, so
	// a query result computed over a time range disjoint from this
	// window is byte-identical before and after the batch — the TQL
	// result cache revalidates such entries instead of dropping them.
	FactsWindow      temporal.Interval
	FactsWindowKnown bool
	// StructureAdditive reports that every structural mutation in the
	// batch only created fresh member versions with relationships up to
	// their parents — nothing pre-existing was modified, ended, or
	// given a new child-to-parent edge. No already-stored fact can roll
	// up through a freshly created member (its coordinates predate it,
	// and upward paths from them were not extended), so query results
	// computed before the batch are byte-identical after it.
	StructureAdditive bool
	// StructureChanged reports that any dimension was mutated in place
	// (evolution operators). Version modes then retain their tables
	// only when their structure version provably survived unchanged.
	StructureChanged bool
	// MappingsChanged reports that the set of mapping relationships
	// changed (Associate). The mapping graph is global — resolution may
	// route through any relationship — so every version mode is
	// evicted; tcm does not use the graph and survives.
	MappingsChanged bool
	// DimsTouched lists the dimensions the batch mutated, for
	// observability; retention itself is decided by the structural
	// signature comparison below, which is safe for operators that do
	// not report their footprint.
	DimsTouched []DimID
}

// WarmResult reports what WarmFrom did, per temporal mode.
type WarmResult struct {
	// Retained modes answer queries on the new schema without a
	// rematerialization; those with a non-empty fact delta had it
	// folded in (DeltaApplied).
	Retained []string
	// Evicted modes rebuild lazily on first use.
	Evicted []string
	// DeltaApplied counts retained modes into which the fact delta was
	// folded.
	DeltaApplied int
	// Subtracted counts retained modes that absorbed a retraction by
	// unfolding (tombstones and/or subtraction) instead of rebuilding.
	Subtracted int
}

// WarmFrom seeds the schema's MultiVersion Fact Table from the modes
// already materialized on base, applying only the delta — the serving
// tier's answer to the §5.1 observation that evolution should store
// changes, not duplicate the warehouse. It is called on a clone right
// before it is swapped into service, while base still serves queries.
//
// Retention is structure-aware:
//
//   - tcm depends only on the fact table: retained unless facts were
//     replaced in place, with NewFacts folded in.
//   - a version mode Vi is retained when the mapping set is unchanged
//     and the new schema has a structure version with the same ID, the
//     same valid time and the same structural signature (member
//     versions and relationships); its table then only absorbs the
//     fact delta. Anything else — new partitioning, touched interval,
//     changed mappings — evicts the mode.
//
// Folding the delta replays exactly the add() suffix a cold rebuild
// would run after the base facts, so retained tables are bit-identical
// to full rematerialization (see TestIncrementalMatchesColdRebuild).
// Published base tables are never mutated: folding happens on
// copy-on-write clones that share the base's storage shards wholesale
// and privatize only the shards the delta lands in, so a swap costs
// O(shards touched), not O(warehouse), and in-flight queries on base
// keep their consistent snapshots. Retained modes fold their deltas
// concurrently — each mode's fold is independent and deterministic, so
// the parallelism cannot change a single bit of any table.
//
// Retained modes do not count as Materializations; they count as
// DeltaApplies when a fact delta was folded. A ctx cancellation
// mid-fold simply evicts the affected modes — the swap must not fail
// because warming was abandoned.
func (s *Schema) WarmFrom(ctx context.Context, base *Schema, d Delta) WarmResult {
	var res WarmResult
	base.mu.Lock()
	baseMV := base.mvftCache
	base.mu.Unlock()
	if baseMV == nil {
		return res
	}
	type cached struct {
		key   string
		table *MappedTable
	}
	var tables []cached
	baseMV.mu.Lock()
	for k, e := range baseMV.byMode {
		select {
		case <-e.done:
			if e.err == nil && e.table != nil {
				tables = append(tables, cached{k, e.table})
			}
		default: // still building; leave it to base's snapshot
		}
	}
	baseMV.mu.Unlock()
	if len(tables) == 0 {
		return res
	}
	sort.Slice(tables, func(i, j int) bool { return tables[i].key < tables[j].key })

	if d.FactsReplaced {
		for _, t := range tables {
			res.Evicted = append(res.Evicted, t.key)
		}
		metModesEvicted.Add(int64(len(res.Evicted)))
		return res
	}

	// Resolve the new schema's modes by ID once; version retention also
	// needs the base's structure versions for the signature comparison.
	dstModes := map[string]Mode{TCM().String(): TCM()}
	for _, sv := range s.StructureVersions() {
		dstModes[sv.ID] = InVersion(sv)
	}
	baseSVs := map[string]*StructureVersion{}
	for _, sv := range base.StructureVersions() {
		baseSVs[sv.ID] = sv
	}

	type job struct {
		key  string
		src  *MappedTable
		mode Mode
	}
	var jobs []job
	for _, t := range tables {
		mode, ok := dstModes[t.key]
		if !ok || !s.retains(base, baseSVs, mode, d) || ctx.Err() != nil {
			res.Evicted = append(res.Evicted, t.key)
			continue
		}
		jobs = append(jobs, job{t.key, t.table, mode})
	}

	// Most version-mode tables carry their materialization context
	// (mapping graph + leaf sets) from the build that produced them;
	// one shared graph covers any that do not (e.g. snapshot imports).
	var sharedGraph *mappingGraph
	if len(d.NewFacts) > 0 || len(d.Retracted) > 0 {
		for _, j := range jobs {
			if j.mode.Kind == VersionKind && j.src.graph == nil {
				sharedGraph = newMappingGraph(s.mappings, len(s.measures), s.alg)
				break
			}
		}
	}
	if len(d.Retracted) > 0 {
		metRetractionsApplied.Add(int64(len(d.Retracted)))
	}

	// Clone and fold every retained mode concurrently. Each mode's fold
	// is independent (private clone, read-only shared graph) and
	// deterministic, so results are assembled in sorted key order
	// regardless of completion order.
	folded := make([]*MappedTable, len(jobs))
	retractEvict := make([]bool, len(jobs))
	workers := min(len(jobs), runtime.GOMAXPROCS(0))
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[i]
			out := j.src.cloneForWarm(j.mode, s.alg, s.measures)
			if j.mode.Kind == VersionKind && (len(d.NewFacts) > 0 || len(d.Retracted) > 0) {
				if out.graph == nil {
					out.graph = sharedGraph
				}
				if out.leafIn == nil {
					out.leafIn = s.versionLeafSets(j.mode.Version)
				}
			}
			// Retractions unfold first: the fact table spliced the
			// retracted tuples out before appending anything, so the
			// warm table must shed them before new facts fold in.
			if len(d.Retracted) > 0 {
				if !s.retractInto(ctx, out, j.mode, d.Retracted) {
					retractEvict[i] = true
					return // folded[i] stays nil: evicted
				}
			}
			if len(d.NewFacts) > 0 {
				if j.mode.Kind == TCMKind {
					if err := s.foldTCM(ctx, out, d.NewFacts); err != nil {
						return
					}
				} else {
					if err := s.mapInto(ctx, out, out.graph, out.leafIn, d.NewFacts); err != nil {
						return
					}
				}
			}
			folded[i] = out
		}(i)
	}
	wg.Wait()

	warm := make(map[string]*MappedTable, len(jobs))
	evictedByRetract := 0
	for i, j := range jobs {
		if folded[i] == nil {
			res.Evicted = append(res.Evicted, j.key)
			if retractEvict[i] {
				evictedByRetract++
			}
			continue
		}
		warm[j.key] = folded[i]
		res.Retained = append(res.Retained, j.key)
		if len(d.NewFacts) > 0 || len(d.Retracted) > 0 {
			res.DeltaApplied++
		}
		if len(d.Retracted) > 0 {
			res.Subtracted++
		}
	}
	metModesSubtracted.Add(int64(res.Subtracted))
	metModesEvictedByRetract.Add(int64(evictedByRetract))

	if len(warm) > 0 {
		mv := s.MultiVersion()
		mv.mu.Lock()
		for k, mt := range warm {
			e := &modeEntry{done: make(chan struct{}), table: mt}
			close(e.done)
			mv.byMode[k] = e
		}
		mv.mu.Unlock()
		mv.deltas.Add(int64(res.DeltaApplied))
	}
	metDeltaApplies.Add(int64(res.DeltaApplied))
	metModesRetained.Add(int64(len(res.Retained)))
	metModesEvicted.Add(int64(len(res.Evicted)))
	return res
}

// retains decides whether one of base's cached modes is still valid on
// the (already mutated) receiver under the given delta.
func (s *Schema) retains(base *Schema, baseSVs map[string]*StructureVersion, mode Mode, d Delta) bool {
	if mode.Kind == TCMKind {
		return true
	}
	if d.MappingsChanged {
		return false
	}
	if !d.StructureChanged && len(d.DimsTouched) == 0 {
		// A pure fact batch: dimensions were deep-cloned unchanged.
		return true
	}
	old, ok := baseSVs[mode.Version.ID]
	if !ok || old.Valid != mode.Version.Valid {
		return false
	}
	// Same ID and interval: the mode survives iff the structural
	// signature over that interval is unchanged. Structure versions are
	// maximal constant-signature intervals, so agreement at Start means
	// agreement throughout — the restriction, and with it every leaf
	// set and resolution, is identical. Inferred versions carry their
	// signature; the re-encoding fallback covers hand-composed ones.
	if old.sig != "" && mode.Version.sig != "" {
		return old.sig == mode.Version.sig
	}
	return base.signatureAt(old.Valid.Start) == s.signatureAt(mode.Version.Valid.Start)
}

// cloneForWarm returns a copy-on-write clone of a published mapped
// table, rebound to the new schema's mode, algebra and measures, ready
// to absorb a fact delta. The clone copies one header per storage
// shard — never the tuples — and takes a fresh epoch, so every
// inherited shard is shared until a merge or append actually writes
// into it (see MappedTable.writableShard). The materialization context
// (mapping graph, leaf sets) rides along: warm retention guarantees
// the mapping set and structural signature are unchanged, so the next
// delta fold reuses both instead of rebuilding O(structure) state.
func (mt *MappedTable) cloneForWarm(m Mode, alg ConfidenceAlgebra, measures []Measure) *MappedTable {
	out := &MappedTable{
		Mode:     m,
		shards:   append([]*factShard(nil), mt.shards...),
		n:        mt.n,
		dead:     mt.dead,
		epoch:    shardEpochCounter.Add(1),
		nd:       mt.nd,
		nm:       mt.nm,
		Dropped:  mt.Dropped,
		alg:      alg,
		measures: measures,
		hasAvg:   mt.hasAvg,
		graph:    mt.graph,
		leafIn:   mt.leafIn,
	}
	metShardsShared.Add(int64(len(mt.shards)))
	switch {
	case mt.base == nil:
		// Published tables are never mutated again, so the source's
		// full index can be shared as the frozen base layer.
		out.base = mt.index
		out.baseLen = mt.n
		out.index = make(map[string]int)
	case len(mt.index)*flattenThreshold > mt.n:
		// Flattening folds the deletion shadow in: retracted keys are
		// simply left out of the merged layer.
		merged := make(map[string]int, len(mt.base)+len(mt.index))
		for k, v := range mt.base {
			if v < mt.baseLen && !mt.dels[k] {
				merged[k] = v
			}
		}
		for k, v := range mt.index {
			merged[k] = v
		}
		out.base = merged
		out.baseLen = mt.n
		out.index = make(map[string]int)
	default:
		out.base = mt.base
		out.baseLen = mt.baseLen
		out.index = make(map[string]int, len(mt.index))
		for k, v := range mt.index {
			out.index[k] = v
		}
		if len(mt.dels) > 0 {
			out.dels = make(map[string]bool, len(mt.dels))
			for k := range mt.dels {
				out.dels[k] = true
			}
		}
	}
	return out
}
