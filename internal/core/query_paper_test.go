package core_test

import (
	"math"
	"testing"

	"mvolap/internal/casestudy"
	"mvolap/internal/core"
	"mvolap/internal/temporal"
)

// wantRow is an expected result line: time bucket, group names, value,
// and (when checked) confidence.
type wantRow struct {
	time   string
	groups []string
	value  float64
	cf     core.Confidence
}

func checkResult(t *testing.T, res *core.Result, want []wantRow, checkCF bool) {
	t.Helper()
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%s", len(res.Rows), len(want), dumpResult(res))
	}
	for i, w := range want {
		r := res.Rows[i]
		if r.TimeKey != w.time {
			t.Errorf("row %d: time %q, want %q", i, r.TimeKey, w.time)
		}
		if len(r.Groups) != len(w.groups) {
			t.Fatalf("row %d: %d groups, want %d", i, len(r.Groups), len(w.groups))
		}
		for j := range w.groups {
			if r.Groups[j] != w.groups[j] {
				t.Errorf("row %d: group[%d] = %q, want %q", i, j, r.Groups[j], w.groups[j])
			}
		}
		if math.IsNaN(w.value) != math.IsNaN(r.Values[0]) ||
			(!math.IsNaN(w.value) && math.Abs(r.Values[0]-w.value) > 1e-9) {
			t.Errorf("row %d (%s %v): value %v, want %v", i, r.TimeKey, r.Groups, r.Values[0], w.value)
		}
		if checkCF && r.CFs[0] != w.cf {
			t.Errorf("row %d (%s %v): cf %v, want %v", i, r.TimeKey, r.Groups, r.CFs[0], w.cf)
		}
	}
}

func dumpResult(res *core.Result) string {
	out := ""
	for _, r := range res.Rows {
		out += r.TimeKey
		for _, g := range r.Groups {
			out += " | " + g
		}
		out += " | " + core.FormatValue(r.Values[0]) + " (" + r.CFs[0].String() + ")\n"
	}
	return out
}

func fullSchema(t testing.TB) *core.Schema {
	t.Helper()
	s, err := casestudy.New(casestudy.Config{WithFacts: true, WithSplitMappings: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// q1 is the paper's query Q1: total Amount by year and division for
// 2001-2002.
func q1(mode core.Mode) core.Query {
	return core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Division"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(temporal.Year(2001), temporal.EndOfYear(2002)),
		Mode:    mode,
	}
}

// q2 is the paper's query Q2: total Amount by year and department for
// 2002-2003.
func q2(mode core.Mode) core.Query {
	return core.Query{
		GroupBy: []core.GroupBy{{Dim: casestudy.OrgDim, Level: "Department"}},
		Grain:   core.GrainYear,
		Range:   temporal.Between(temporal.Year(2002), temporal.EndOfYear(2003)),
		Mode:    mode,
	}
}

// TestStructureVersionsOfCaseStudy checks the inference behind Example 7
// extended by the Smith reclassification: three structure versions.
func TestStructureVersionsOfCaseStudy(t *testing.T) {
	s := fullSchema(t)
	svs := s.StructureVersions()
	if len(svs) != 3 {
		for _, v := range svs {
			t.Logf("  %s", v)
		}
		t.Fatalf("got %d structure versions, want 3", len(svs))
	}
	wantValid := []temporal.Interval{
		temporal.Between(temporal.YM(2001, 1), temporal.YM(2001, 12)),
		temporal.Between(temporal.YM(2002, 1), temporal.YM(2002, 12)),
		temporal.Since(temporal.YM(2003, 1)),
	}
	for i, v := range svs {
		if !v.Valid.Equal(wantValid[i]) {
			t.Errorf("V%d valid %v, want %v", i+1, v.Valid, wantValid[i])
		}
	}
	// V1 contains Jones and Smith under Sales; V3 must not contain Jones.
	if !svs[0].Has(casestudy.Jones) || !svs[0].Has(casestudy.Smith) {
		t.Error("V1 must contain Jones and Smith")
	}
	if svs[2].Has(casestudy.Jones) {
		t.Error("V3 must not contain Jones")
	}
	if !svs[2].Has(casestudy.Bill) || !svs[2].Has(casestudy.Paul) {
		t.Error("V3 must contain Bill and Paul")
	}
}

// TestTable4 reproduces Table 4: Q1 in consistent time.
func TestTable4(t *testing.T) {
	s := fullSchema(t)
	res, err := s.Execute(q1(core.TCM()))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2001", []string{"R&D"}, 100, core.SourceData},
		{"2001", []string{"Sales"}, 150, core.SourceData},
		{"2002", []string{"R&D"}, 150, core.SourceData},
		{"2002", []string{"Sales"}, 100, core.SourceData},
	}, true)
}

// TestTable5 reproduces Table 5: Q1 mapped on the 2001 organization.
func TestTable5(t *testing.T) {
	s := fullSchema(t)
	v1 := s.VersionAt(temporal.Year(2001))
	if v1 == nil {
		t.Fatal("no structure version for 2001")
	}
	res, err := s.Execute(q1(core.InVersion(v1)))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2001", []string{"R&D"}, 100, core.SourceData},
		{"2001", []string{"Sales"}, 150, core.SourceData},
		{"2002", []string{"R&D"}, 50, core.SourceData},
		{"2002", []string{"Sales"}, 200, core.SourceData},
	}, true)
}

// TestTable6 reproduces Table 6: Q1 mapped on the 2002 organization.
func TestTable6(t *testing.T) {
	s := fullSchema(t)
	v2 := s.VersionAt(temporal.Year(2002))
	if v2 == nil {
		t.Fatal("no structure version for 2002")
	}
	res, err := s.Execute(q1(core.InVersion(v2)))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2001", []string{"R&D"}, 150, core.SourceData},
		{"2001", []string{"Sales"}, 100, core.SourceData},
		{"2002", []string{"R&D"}, 150, core.SourceData},
		{"2002", []string{"Sales"}, 100, core.SourceData},
	}, true)
}

// TestTable8 reproduces Table 8: Q2 in consistent time.
func TestTable8(t *testing.T) {
	s := fullSchema(t)
	res, err := s.Execute(q2(core.TCM()))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2002", []string{"Dpt.Brian"}, 50, core.SourceData},
		{"2002", []string{"Dpt.Jones"}, 100, core.SourceData},
		{"2002", []string{"Dpt.Smith"}, 100, core.SourceData},
		{"2003", []string{"Dpt.Bill"}, 150, core.SourceData},
		{"2003", []string{"Dpt.Brian"}, 40, core.SourceData},
		{"2003", []string{"Dpt.Paul"}, 50, core.SourceData},
		{"2003", []string{"Dpt.Smith"}, 110, core.SourceData},
	}, true)
}

// TestTable9 reproduces Table 9: Q2 mapped on the 2002 organization.
// Bill's and Paul's 2003 amounts map back exactly (em) onto Dpt.Jones
// and merge to 200.
func TestTable9(t *testing.T) {
	s := fullSchema(t)
	v2 := s.VersionAt(temporal.Year(2002))
	res, err := s.Execute(q2(core.InVersion(v2)))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2002", []string{"Dpt.Brian"}, 50, core.SourceData},
		{"2002", []string{"Dpt.Jones"}, 100, core.SourceData},
		{"2002", []string{"Dpt.Smith"}, 100, core.SourceData},
		{"2003", []string{"Dpt.Brian"}, 40, core.SourceData},
		{"2003", []string{"Dpt.Jones"}, 200, core.ExactMapping},
		{"2003", []string{"Dpt.Smith"}, 110, core.SourceData},
	}, true)
}

// TestTable10 reproduces Table 10: Q2 mapped on the 2003 organization.
// Jones's 2002 amount splits approximately (am) as 40% to Bill and 60%
// to Paul.
func TestTable10(t *testing.T) {
	s := fullSchema(t)
	v3 := s.VersionAt(temporal.Year(2003))
	res, err := s.Execute(q2(core.InVersion(v3)))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, []wantRow{
		{"2002", []string{"Dpt.Bill"}, 40, core.ApproxMapping},
		{"2002", []string{"Dpt.Brian"}, 50, core.SourceData},
		{"2002", []string{"Dpt.Paul"}, 60, core.ApproxMapping},
		{"2002", []string{"Dpt.Smith"}, 100, core.SourceData},
		{"2003", []string{"Dpt.Bill"}, 150, core.SourceData},
		{"2003", []string{"Dpt.Brian"}, 40, core.SourceData},
		{"2003", []string{"Dpt.Paul"}, 50, core.SourceData},
		{"2003", []string{"Dpt.Smith"}, 110, core.SourceData},
	}, true)
}

// TestQ1DivisionTotalsInvariant: under exact or identity mappings the
// yearly grand total is identical in every mode (mass conservation).
func TestGrandTotalInvariantAcrossModes(t *testing.T) {
	s := fullSchema(t)
	grand := func(mode core.Mode) map[string]float64 {
		res, err := s.Execute(core.Query{
			Grain: core.GrainYear,
			Mode:  mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64)
		for _, r := range res.Rows {
			out[r.TimeKey] = r.Values[0]
		}
		return out
	}
	base := grand(core.TCM())
	for _, v := range s.StructureVersions() {
		got := grand(core.InVersion(v))
		for year, want := range base {
			if math.Abs(got[year]-want) > 1e-9 {
				t.Errorf("mode %s: total for %s = %v, want %v", v.ID, year, got[year], want)
			}
		}
	}
}
