package core

import (
	"sort"

	"mvolap/internal/temporal"
)

// zoneDistinctCap bounds the per-dimension distinct-coordinate set kept
// in a shard zone map. Shards touching more distinct members than this
// keep only the min/max bounds; dice pruning then falls back to
// scanning the shard.
const zoneDistinctCap = 32

// zoneDim summarizes one coordinate column of a shard: lexicographic
// min/max member version IDs plus, when small enough, the exact
// distinct set (sorted).
type zoneDim struct {
	min, max MVID
	// distinct is the sorted distinct coordinate set, nil once the
	// shard exceeds zoneDistinctCap distinct members in this dimension.
	distinct []MVID
}

// shardZone is the zone map of one factShard: the min/max fact instant
// and per-dimension coordinate summaries. A zone describes the shard's
// coords and times columns only — merge folds (which rewrite values,
// confidences and source counts, never coordinates or times) keep it
// valid; appends invalidate it (factShard.add clears the pointer and
// re-seals a full shard).
//
// The query scan consults zones to skip shards that cannot contain a
// tuple passing the query's time window or its prunable dice filters.
type shardZone struct {
	minTime, maxTime temporal.Instant
	dims             []zoneDim
}

// buildZone computes the zone map over the first n tuples of the shard
// columns, skipping tombstoned slots (sources == 0) so a retraction
// tightens the envelope instead of pinning it to dead coordinates. nd
// is the coordinate width.
func buildZone(sh *factShard, nd int) *shardZone {
	first := -1
	for i := 0; i < sh.n; i++ {
		if sh.sources[i] != 0 {
			first = i
			break
		}
	}
	if first < 0 {
		// Empty (or fully tombstoned) shard: an impossible envelope, so
		// time pruning always skips it.
		return &shardZone{minTime: temporal.Now, maxTime: temporal.Origin}
	}
	z := &shardZone{
		minTime: sh.times[first],
		maxTime: sh.times[first],
		dims:    make([]zoneDim, nd),
	}
	for i := first; i < sh.n; i++ {
		if sh.sources[i] == 0 {
			continue
		}
		t := sh.times[i]
		if t < z.minTime {
			z.minTime = t
		}
		if t > z.maxTime {
			z.maxTime = t
		}
	}
	for d := 0; d < nd; d++ {
		set := make(map[MVID]struct{}, zoneDistinctCap+1)
		zd := &z.dims[d]
		zd.min = sh.coords[first*nd+d]
		zd.max = zd.min
		for i := first; i < sh.n; i++ {
			if sh.sources[i] == 0 {
				continue
			}
			id := sh.coords[i*nd+d]
			if id < zd.min {
				zd.min = id
			}
			if id > zd.max {
				zd.max = id
			}
			if set != nil {
				set[id] = struct{}{}
				if len(set) > zoneDistinctCap {
					set = nil
				}
			}
		}
		if set != nil {
			zd.distinct = make([]MVID, 0, len(set))
			for id := range set {
				zd.distinct = append(zd.distinct, id)
			}
			sort.Slice(zd.distinct, func(i, j int) bool { return zd.distinct[i] < zd.distinct[j] })
		}
	}
	return z
}

// zoneMap returns the shard's zone, building and caching it when
// absent. Safe on published (read-only) shards: a concurrent duplicate
// build stores an identical zone. Shards still receiving appends carry
// a nil cached zone (cleared by add); callers on such tables rebuild
// per call, which only the single-writer materialization path does.
func (sh *factShard) zoneMap(nd int) *shardZone {
	if z := sh.zone.Load(); z != nil {
		return z
	}
	z := buildZone(sh, nd)
	sh.zone.Store(z)
	return z
}

// overlapsTime reports whether any tuple instant in the zone can lie in
// the query range.
func (z *shardZone) overlapsTime(rng temporal.Interval) bool {
	return z.minTime <= rng.End && rng.Start <= z.maxTime
}

// hasDistinct reports whether the zone tracks the exact distinct set
// for dimension d.
func (z *shardZone) hasDistinct(d int) bool {
	return d < len(z.dims) && z.dims[d].distinct != nil
}
