package core

import (
	"math"
	"testing"
	"testing/quick"

	"mvolap/internal/temporal"
)

// splitSchema builds the full case-study schema white-box (departments,
// reclassification, split, facts, mappings).
func splitSchema(t testing.TB) *Schema {
	s := NewSchema("cs", Measure{Name: "Amount", Agg: Sum})
	d := buildOrg(t)
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	maps := []MappingRelationship{
		{From: "Jones", To: "Bill",
			Forward:  []MeasureMapping{{Fn: Linear{0.4}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
		{From: "Jones", To: "Paul",
			Forward:  []MeasureMapping{{Fn: Linear{0.6}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
	}
	for _, m := range maps {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	type row struct {
		id  MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{"Jones", 2001, 100}, {"Smith", 2001, 50}, {"Brian", 2001, 100},
		{"Jones", 2002, 100}, {"Smith", 2002, 100}, {"Brian", 2002, 50},
		{"Bill", 2003, 150}, {"Paul", 2003, 50}, {"Smith", 2003, 110}, {"Brian", 2003, 40},
	} {
		if err := s.InsertFact(Coords{r.id}, y(r.yr), r.amt); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestTCMRestrictionIsSource verifies the identity of Definition 11:
// f' restricted to tcm equals f × {sd}^m.
func TestTCMRestrictionIsSource(t *testing.T) {
	s := splitSchema(t)
	mt, err := s.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != s.Facts().Len() {
		t.Fatalf("tcm has %d tuples, source has %d", mt.Len(), s.Facts().Len())
	}
	for _, f := range s.Facts().Facts() {
		m, ok := mt.Lookup(f.Coords, f.Time)
		if !ok {
			t.Fatalf("tcm missing %v@%v", f.Coords, f.Time)
		}
		for k := range f.Values {
			if m.Values[k] != f.Values[k] {
				t.Errorf("tcm value differs at %v@%v", f.Coords, f.Time)
			}
			if m.CFs[k] != SourceData {
				t.Errorf("tcm cf must be sd, got %v", m.CFs[k])
			}
		}
	}
	if mt.Dropped != 0 {
		t.Errorf("tcm dropped %d", mt.Dropped)
	}
}

func TestVersionModeMapping(t *testing.T) {
	s := splitSchema(t)
	v3 := s.VersionAt(y(2003))
	mt, err := s.MultiVersion().Mode(InVersion(v3))
	if err != nil {
		t.Fatal(err)
	}
	// Jones's 2001 and 2002 tuples fan out to Bill and Paul.
	bill01, ok := mt.Lookup(Coords{"Bill"}, y(2001))
	if !ok || bill01.Values[0] != 40 || bill01.CFs[0] != ApproxMapping {
		t.Errorf("Bill@2001 = %+v", bill01)
	}
	paul02, ok := mt.Lookup(Coords{"Paul"}, y(2002))
	if !ok || paul02.Values[0] != 60 || paul02.CFs[0] != ApproxMapping {
		t.Errorf("Paul@2002 = %+v", paul02)
	}
	// Smith stays source data.
	smith02, ok := mt.Lookup(Coords{"Smith"}, y(2002))
	if !ok || smith02.Values[0] != 100 || smith02.CFs[0] != SourceData {
		t.Errorf("Smith@2002 = %+v", smith02)
	}
	// No Jones tuples exist in V3.
	if _, ok := mt.Lookup(Coords{"Jones"}, y(2001)); ok {
		t.Error("Jones must not appear in V3 presentation")
	}
}

func TestVersionModeMerge(t *testing.T) {
	s := splitSchema(t)
	v2 := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	jones03, ok := mt.Lookup(Coords{"Jones"}, y(2003))
	if !ok {
		t.Fatal("Jones@2003 missing in V2 presentation")
	}
	if jones03.Values[0] != 200 {
		t.Errorf("merged value = %v, want 200", jones03.Values[0])
	}
	if jones03.CFs[0] != ExactMapping {
		t.Errorf("merged cf = %v, want em", jones03.CFs[0])
	}
	if jones03.Sources != 2 {
		t.Errorf("merged sources = %d, want 2", jones03.Sources)
	}
}

func TestDroppedFactsWithoutMappings(t *testing.T) {
	// Without the split mappings, Jones's data cannot be presented in
	// V3 (no chain to any valid leaf): those tuples are dropped.
	s := NewSchema("cs", Measure{Name: "Amount", Agg: Sum})
	d := buildOrg(t)
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Jones"}, y(2001), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Smith"}, y(2001), 50); err != nil {
		t.Fatal(err)
	}
	v3 := s.VersionAt(y(2003))
	mt, err := s.MultiVersion().Mode(InVersion(v3))
	if err != nil {
		t.Fatal(err)
	}
	if mt.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the Jones tuple)", mt.Dropped)
	}
	if mt.Len() != 1 {
		t.Errorf("presented tuples = %d, want 1", mt.Len())
	}
}

func TestUnknownMappingYieldsNaN(t *testing.T) {
	// V1, V2 merged into V12 at 2002 with unknown backward mapping to
	// V2 (the paper's Table 11 merge).
	s := NewSchema("merge", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")
	for _, mv := range []*MemberVersion{
		{ID: "root", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V1", Level: "Leaf", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{ID: "V2", Level: "Leaf", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{ID: "V12", Level: "Leaf", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "V1", To: "root", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{From: "V2", To: "root", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{From: "V12", To: "root", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	for _, m := range []MappingRelationship{
		{From: "V1", To: "V12",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Linear{0.5}, CF: ApproxMapping}}},
		{From: "V2", To: "V12",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Unknown{}, CF: UnknownMapping}}},
	} {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InsertFact(Coords{"V12"}, y(2002), 100); err != nil {
		t.Fatal(err)
	}
	v1 := s.VersionAt(y(2001))
	mt, err := s.MultiVersion().Mode(InVersion(v1))
	if err != nil {
		t.Fatal(err)
	}
	// V12's value maps to V1 as 50 (am) and to V2 as unknown.
	mv1, ok := mt.Lookup(Coords{"V1"}, y(2002))
	if !ok || mv1.Values[0] != 50 || mv1.CFs[0] != ApproxMapping {
		t.Errorf("V1 presentation = %+v", mv1)
	}
	mv2, ok := mt.Lookup(Coords{"V2"}, y(2002))
	if !ok {
		t.Fatal("V2 presentation missing")
	}
	if !math.IsNaN(mv2.Values[0]) {
		t.Errorf("V2 value = %v, want NaN", mv2.Values[0])
	}
	if mv2.CFs[0] != UnknownMapping {
		t.Errorf("V2 cf = %v, want uk", mv2.CFs[0])
	}
}

// TestMassConservationProperty: with exact identity backward mappings
// (as in the case study), the total of each measure per instant is
// preserved in every version presentation built from splits whose
// forward factors sum to 1.
func TestMassConservationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		_ = seed
		s := splitSchema(t)
		for _, v := range s.StructureVersions() {
			mt, err := s.MultiVersion().Mode(InVersion(v))
			if err != nil {
				return false
			}
			totals := map[temporal.Instant]float64{}
			for _, mf := range mt.Facts() {
				if !math.IsNaN(mf.Values[0]) {
					totals[mf.Time] += mf.Values[0]
				}
			}
			want := map[temporal.Instant]float64{}
			for _, sf := range s.Facts().Facts() {
				want[sf.Time] += sf.Values[0]
			}
			for k, v := range want {
				if math.Abs(totals[k]-v) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestMultiVersionAll(t *testing.T) {
	s := splitSchema(t)
	all, err := s.MultiVersion().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 { // tcm + V1..V3
		t.Fatalf("got %d modes, want 4", len(all))
	}
	for key, mt := range all {
		if mt.Len() == 0 {
			t.Errorf("mode %s has no tuples", key)
		}
	}
	// The cache returns the same tables.
	mt1, _ := s.MultiVersion().Mode(TCM())
	mt2, _ := s.MultiVersion().Mode(TCM())
	if mt1 != mt2 {
		t.Error("mapped tables must be cached")
	}
	// Inserting a fact invalidates the cache.
	if err := s.InsertFact(Coords{"Smith"}, y(2003), 1); err != nil {
		t.Fatal(err)
	}
	mt3, _ := s.MultiVersion().Mode(TCM())
	if mt3 == mt1 {
		t.Error("fact insertion must invalidate the MVFT cache")
	}
}

func TestModeErrors(t *testing.T) {
	s := splitSchema(t)
	if _, err := s.MultiVersion().Mode(Mode{Kind: VersionKind}); err == nil {
		t.Error("version mode without version must fail")
	}
	if _, err := s.MultiVersion().Mode(Mode{Kind: ModeKind(9)}); err == nil {
		t.Error("unknown mode kind must fail")
	}
}

func TestFoldPair(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		kind AggKind
		a, b float64
		want float64
	}{
		{Sum, 1, 2, 3},
		{Min, 1, 2, 1},
		{Max, 1, 2, 2},
		{Avg, 1, 3, 2},
		{Count, 2, 3, 5},
		{Sum, nan, 2, 2},
		{Sum, 1, nan, 1},
		{Count, nan, 7, 1},
	}
	for _, c := range cases {
		got := foldPair(c.kind, c.a, c.b)
		if got != c.want {
			t.Errorf("foldPair(%v, %v, %v) = %v, want %v", c.kind, c.a, c.b, got, c.want)
		}
	}
	if !math.IsNaN(foldPair(Sum, nan, nan)) {
		t.Error("NaN+NaN must stay NaN")
	}
	if !math.IsNaN(foldPair(AggKind(99), 1, 2)) {
		t.Error("unknown agg kind must fold to NaN")
	}
}
