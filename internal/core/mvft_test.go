package core

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"mvolap/internal/temporal"
)

// splitSchema builds the full case-study schema white-box (departments,
// reclassification, split, facts, mappings).
func splitSchema(t testing.TB) *Schema {
	s := NewSchema("cs", Measure{Name: "Amount", Agg: Sum})
	d := buildOrg(t)
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	maps := []MappingRelationship{
		{From: "Jones", To: "Bill",
			Forward:  []MeasureMapping{{Fn: Linear{0.4}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
		{From: "Jones", To: "Paul",
			Forward:  []MeasureMapping{{Fn: Linear{0.6}, CF: ApproxMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}}},
	}
	for _, m := range maps {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	type row struct {
		id  MVID
		yr  int
		amt float64
	}
	for _, r := range []row{
		{"Jones", 2001, 100}, {"Smith", 2001, 50}, {"Brian", 2001, 100},
		{"Jones", 2002, 100}, {"Smith", 2002, 100}, {"Brian", 2002, 50},
		{"Bill", 2003, 150}, {"Paul", 2003, 50}, {"Smith", 2003, 110}, {"Brian", 2003, 40},
	} {
		if err := s.InsertFact(Coords{r.id}, y(r.yr), r.amt); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestTCMRestrictionIsSource verifies the identity of Definition 11:
// f' restricted to tcm equals f × {sd}^m.
func TestTCMRestrictionIsSource(t *testing.T) {
	s := splitSchema(t)
	mt, err := s.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if mt.Len() != s.Facts().Len() {
		t.Fatalf("tcm has %d tuples, source has %d", mt.Len(), s.Facts().Len())
	}
	for _, f := range s.Facts().Facts() {
		m, ok := mt.Lookup(f.Coords, f.Time)
		if !ok {
			t.Fatalf("tcm missing %v@%v", f.Coords, f.Time)
		}
		for k := range f.Values {
			if m.Values[k] != f.Values[k] {
				t.Errorf("tcm value differs at %v@%v", f.Coords, f.Time)
			}
			if m.CFs[k] != SourceData {
				t.Errorf("tcm cf must be sd, got %v", m.CFs[k])
			}
		}
	}
	if mt.Dropped != 0 {
		t.Errorf("tcm dropped %d", mt.Dropped)
	}
}

func TestVersionModeMapping(t *testing.T) {
	s := splitSchema(t)
	v3 := s.VersionAt(y(2003))
	mt, err := s.MultiVersion().Mode(InVersion(v3))
	if err != nil {
		t.Fatal(err)
	}
	// Jones's 2001 and 2002 tuples fan out to Bill and Paul.
	bill01, ok := mt.Lookup(Coords{"Bill"}, y(2001))
	if !ok || bill01.Values[0] != 40 || bill01.CFs[0] != ApproxMapping {
		t.Errorf("Bill@2001 = %+v", bill01)
	}
	paul02, ok := mt.Lookup(Coords{"Paul"}, y(2002))
	if !ok || paul02.Values[0] != 60 || paul02.CFs[0] != ApproxMapping {
		t.Errorf("Paul@2002 = %+v", paul02)
	}
	// Smith stays source data.
	smith02, ok := mt.Lookup(Coords{"Smith"}, y(2002))
	if !ok || smith02.Values[0] != 100 || smith02.CFs[0] != SourceData {
		t.Errorf("Smith@2002 = %+v", smith02)
	}
	// No Jones tuples exist in V3.
	if _, ok := mt.Lookup(Coords{"Jones"}, y(2001)); ok {
		t.Error("Jones must not appear in V3 presentation")
	}
}

func TestVersionModeMerge(t *testing.T) {
	s := splitSchema(t)
	v2 := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	jones03, ok := mt.Lookup(Coords{"Jones"}, y(2003))
	if !ok {
		t.Fatal("Jones@2003 missing in V2 presentation")
	}
	if jones03.Values[0] != 200 {
		t.Errorf("merged value = %v, want 200", jones03.Values[0])
	}
	if jones03.CFs[0] != ExactMapping {
		t.Errorf("merged cf = %v, want em", jones03.CFs[0])
	}
	if jones03.Sources != 2 {
		t.Errorf("merged sources = %d, want 2", jones03.Sources)
	}
}

func TestDroppedFactsWithoutMappings(t *testing.T) {
	// Without the split mappings, Jones's data cannot be presented in
	// V3 (no chain to any valid leaf): those tuples are dropped.
	s := NewSchema("cs", Measure{Name: "Amount", Agg: Sum})
	d := buildOrg(t)
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Jones"}, y(2001), 100); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Smith"}, y(2001), 50); err != nil {
		t.Fatal(err)
	}
	v3 := s.VersionAt(y(2003))
	mt, err := s.MultiVersion().Mode(InVersion(v3))
	if err != nil {
		t.Fatal(err)
	}
	if mt.Dropped != 1 {
		t.Errorf("dropped = %d, want 1 (the Jones tuple)", mt.Dropped)
	}
	if mt.Len() != 1 {
		t.Errorf("presented tuples = %d, want 1", mt.Len())
	}
}

func TestUnknownMappingYieldsNaN(t *testing.T) {
	// V1, V2 merged into V12 at 2002 with unknown backward mapping to
	// V2 (the paper's Table 11 merge).
	s := NewSchema("merge", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")
	for _, mv := range []*MemberVersion{
		{ID: "root", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "V1", Level: "Leaf", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{ID: "V2", Level: "Leaf", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{ID: "V12", Level: "Leaf", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "V1", To: "root", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{From: "V2", To: "root", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{From: "V12", To: "root", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	for _, m := range []MappingRelationship{
		{From: "V1", To: "V12",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Linear{0.5}, CF: ApproxMapping}}},
		{From: "V2", To: "V12",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Unknown{}, CF: UnknownMapping}}},
	} {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.InsertFact(Coords{"V12"}, y(2002), 100); err != nil {
		t.Fatal(err)
	}
	v1 := s.VersionAt(y(2001))
	mt, err := s.MultiVersion().Mode(InVersion(v1))
	if err != nil {
		t.Fatal(err)
	}
	// V12's value maps to V1 as 50 (am) and to V2 as unknown.
	mv1, ok := mt.Lookup(Coords{"V1"}, y(2002))
	if !ok || mv1.Values[0] != 50 || mv1.CFs[0] != ApproxMapping {
		t.Errorf("V1 presentation = %+v", mv1)
	}
	mv2, ok := mt.Lookup(Coords{"V2"}, y(2002))
	if !ok {
		t.Fatal("V2 presentation missing")
	}
	if !math.IsNaN(mv2.Values[0]) {
		t.Errorf("V2 value = %v, want NaN", mv2.Values[0])
	}
	if mv2.CFs[0] != UnknownMapping {
		t.Errorf("V2 cf = %v, want uk", mv2.CFs[0])
	}
}

// TestMassConservationProperty: with exact identity backward mappings
// (as in the case study), the total of each measure per instant is
// preserved in every version presentation built from splits whose
// forward factors sum to 1.
func TestMassConservationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		_ = seed
		s := splitSchema(t)
		for _, v := range s.StructureVersions() {
			mt, err := s.MultiVersion().Mode(InVersion(v))
			if err != nil {
				return false
			}
			totals := map[temporal.Instant]float64{}
			for _, mf := range mt.Facts() {
				if !math.IsNaN(mf.Values[0]) {
					totals[mf.Time] += mf.Values[0]
				}
			}
			want := map[temporal.Instant]float64{}
			for _, sf := range s.Facts().Facts() {
				want[sf.Time] += sf.Values[0]
			}
			for k, v := range want {
				if math.Abs(totals[k]-v) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestMultiVersionAll(t *testing.T) {
	s := splitSchema(t)
	all, err := s.MultiVersion().All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 { // tcm + V1..V3
		t.Fatalf("got %d modes, want 4", len(all))
	}
	for key, mt := range all {
		if mt.Len() == 0 {
			t.Errorf("mode %s has no tuples", key)
		}
	}
	// The cache returns the same tables.
	mt1, _ := s.MultiVersion().Mode(TCM())
	mt2, _ := s.MultiVersion().Mode(TCM())
	if mt1 != mt2 {
		t.Error("mapped tables must be cached")
	}
	// Inserting a fact invalidates the cache.
	if err := s.InsertFact(Coords{"Smith"}, y(2003), 1); err != nil {
		t.Fatal(err)
	}
	mt3, _ := s.MultiVersion().Mode(TCM())
	if mt3 == mt1 {
		t.Error("fact insertion must invalidate the MVFT cache")
	}
}

// mergeSchema builds a dimension where leaves A, B, C (and D with an
// unknown mapping) of 2001 merge into M at 2002, carrying one measure
// of the given aggregate kind.
func mergeSchema(t *testing.T, agg AggKind) *Schema {
	t.Helper()
	s := NewSchema("merge3", Measure{Name: "m", Agg: agg})
	d := NewDimension("D", "D")
	old := temporal.Between(y(2001), ym(2001, 12))
	for _, mv := range []*MemberVersion{
		{ID: "root", Level: "Top", Valid: temporal.Since(y(2001))},
		{ID: "A", Level: "Leaf", Valid: old},
		{ID: "B", Level: "Leaf", Valid: old},
		{ID: "C", Level: "Leaf", Valid: old},
		{ID: "Dx", Level: "Leaf", Valid: old},
		{ID: "M", Level: "Leaf", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "A", To: "root", Valid: old},
		{From: "B", To: "root", Valid: old},
		{From: "C", To: "root", Valid: old},
		{From: "Dx", To: "root", Valid: old},
		{From: "M", To: "root", Valid: temporal.Since(y(2002))},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	fwd := func(fn Mapper, cf Confidence) []MeasureMapping { return []MeasureMapping{{Fn: fn, CF: cf}} }
	for _, m := range []MappingRelationship{
		{From: "A", To: "M", Forward: fwd(Identity, ExactMapping), Backward: fwd(Unknown{}, UnknownMapping)},
		{From: "B", To: "M", Forward: fwd(Identity, ExactMapping), Backward: fwd(Unknown{}, UnknownMapping)},
		{From: "C", To: "M", Forward: fwd(Identity, ExactMapping), Backward: fwd(Unknown{}, UnknownMapping)},
		{From: "Dx", To: "M", Forward: fwd(Unknown{}, UnknownMapping), Backward: fwd(Unknown{}, UnknownMapping)},
	} {
		if err := s.AddMapping(m); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestAvgThreeWayMerge pins the Avg merge fix: folding three source
// tuples onto one target must yield the true mean of the three, not the
// order-dependent pairwise midpoint ((a+b)/2 + c)/2 of the old code.
func TestAvgThreeWayMerge(t *testing.T) {
	s := mergeSchema(t, Avg)
	for id, v := range map[MVID]float64{"A": 10, "B": 20, "C": 60} {
		if err := s.InsertFact(Coords{id}, y(2001), v); err != nil {
			t.Fatal(err)
		}
	}
	v2 := s.VersionAt(y(2002))
	mt, err := s.MultiVersion().Mode(InVersion(v2))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mt.Lookup(Coords{"M"}, y(2001))
	if !ok {
		t.Fatal("merged tuple missing")
	}
	if m.Values[0] != 30 {
		t.Errorf("3-way merged Avg = %v, want the true mean 30", m.Values[0])
	}
	if m.Sources != 3 {
		t.Errorf("Sources = %d, want 3", m.Sources)
	}
}

// TestAvgMergeIgnoresUnknown: a contributor whose mapping is unknown
// (NaN) must not drag the merged mean or its weight.
func TestAvgMergeIgnoresUnknown(t *testing.T) {
	s := mergeSchema(t, Avg)
	for id, v := range map[MVID]float64{"A": 10, "B": 20, "C": 60, "Dx": 1000} {
		if err := s.InsertFact(Coords{id}, y(2001), v); err != nil {
			t.Fatal(err)
		}
	}
	mt, err := s.MultiVersion().Mode(InVersion(s.VersionAt(y(2002))))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mt.Lookup(Coords{"M"}, y(2001))
	if !ok {
		t.Fatal("merged tuple missing")
	}
	if m.Values[0] != 30 {
		t.Errorf("merged Avg with NaN contributor = %v, want 30", m.Values[0])
	}
	if m.Sources != 4 {
		t.Errorf("Sources = %d, want 4 (NaN contributors still count as sources)", m.Sources)
	}
	if m.CFs[0] != UnknownMapping {
		t.Errorf("merged cf = %v, want uk (poisoned by the unknown mapping)", m.CFs[0])
	}
}

// TestModeSingleflight asserts the Mode cache race fix: many concurrent
// callers on the same cold mode must share exactly one materialization
// and the same table pointer. Run with -race.
func TestModeSingleflight(t *testing.T) {
	s := splitSchema(t)
	modes := s.Modes()
	mv := s.MultiVersion()
	const callers = 16
	tables := make([][]*MappedTable, len(modes))
	for i := range tables {
		tables[i] = make([]*MappedTable, callers)
	}
	var wg sync.WaitGroup
	for mi, m := range modes {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(mi, c int, m Mode) {
				defer wg.Done()
				mt, err := mv.Mode(m)
				if err != nil {
					t.Error(err)
					return
				}
				tables[mi][c] = mt
			}(mi, c, m)
		}
	}
	wg.Wait()
	for mi := range tables {
		for c := 1; c < callers; c++ {
			if tables[mi][c] != tables[mi][0] {
				t.Fatalf("mode %s: caller %d got a different table", modes[mi], c)
			}
		}
	}
	if got := mv.Materializations(); got != int64(len(modes)) {
		t.Errorf("materializations = %d, want exactly %d (one per mode)", got, len(modes))
	}
}

// TestInvalidationVisibility pins the caching contract: a handle taken
// before an insert keeps serving its snapshot (the new fact must NOT
// appear through it), while handles fetched after the invalidation see
// the new fact.
func TestInvalidationVisibility(t *testing.T) {
	s := splitSchema(t)
	stale := s.MultiVersion()
	base, err := stale.Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	n0 := base.Len()
	if err := s.InsertFact(Coords{"Smith"}, y(2004), 7); err != nil {
		t.Fatal(err)
	}
	// Before re-fetching (i.e. "before Invalidate" from the stale
	// handle's point of view) the fact is invisible.
	again, err := stale.Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != n0 {
		t.Errorf("stale handle sees %d tuples, want the snapshot's %d", again.Len(), n0)
	}
	if _, ok := again.Lookup(Coords{"Smith"}, y(2004)); ok {
		t.Error("inserted fact must not appear through the pre-insert handle")
	}
	// InsertFact invalidates: a fresh handle sees the fact.
	fresh := s.MultiVersion()
	if fresh == stale {
		t.Fatal("insert must drop the cached MVFT")
	}
	cur, err := fresh.Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if cur.Len() != n0+1 {
		t.Errorf("fresh handle sees %d tuples, want %d", cur.Len(), n0+1)
	}
	if _, ok := cur.Lookup(Coords{"Smith"}, y(2004)); !ok {
		t.Error("inserted fact must appear after invalidation")
	}
	// Explicit Invalidate also rotates the handle and keeps the fact.
	s.Invalidate()
	third := s.MultiVersion()
	if third == fresh {
		t.Fatal("Invalidate must drop the cached MVFT")
	}
	cur2, err := third.Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur2.Lookup(Coords{"Smith"}, y(2004)); !ok {
		t.Error("fact must stay visible after explicit Invalidate")
	}
}

// sameMappedTable reports bit-level equality of two mapped tables:
// fact order, coordinates, times, values (NaN-aware, bitwise), CFs,
// source counts and the dropped counter.
func sameMappedTable(a, b *MappedTable) string {
	if a.Len() != b.Len() {
		return "length differs"
	}
	if a.Dropped != b.Dropped {
		return "dropped differs"
	}
	af, bf := a.Facts(), b.Facts()
	for i := range af {
		fa, fb := af[i], bf[i]
		if !fa.Coords.Equal(fb.Coords) || fa.Time != fb.Time || fa.Sources != fb.Sources {
			return "tuple identity differs"
		}
		for k := range fa.Values {
			if math.Float64bits(fa.Values[k]) != math.Float64bits(fb.Values[k]) {
				return "values differ"
			}
			if fa.CFs[k] != fb.CFs[k] {
				return "cfs differ"
			}
		}
	}
	return ""
}

// TestParallelMatchesSequential asserts the determinism guarantee on
// the case-study schema: any worker count yields a table bit-identical
// to the sequential one, in every mode.
func TestParallelMatchesSequential(t *testing.T) {
	seq := splitSchema(t)
	seq.SetMaterializeWorkers(1)
	for _, workers := range []int{2, 3, 8} {
		par := splitSchema(t)
		par.SetMaterializeWorkers(workers)
		for _, m := range seq.Modes() {
			want, err := seq.MultiVersion().Mode(m)
			if err != nil {
				t.Fatal(err)
			}
			pm := m
			if m.Kind == VersionKind {
				pm = InVersion(par.VersionByID(m.Version.ID))
			}
			got, err := par.MultiVersion().Mode(pm)
			if err != nil {
				t.Fatal(err)
			}
			if diff := sameMappedTable(want, got); diff != "" {
				t.Errorf("workers=%d mode=%s: %s", workers, m, diff)
			}
		}
	}
}

func TestModeErrors(t *testing.T) {
	s := splitSchema(t)
	if _, err := s.MultiVersion().Mode(Mode{Kind: VersionKind}); err == nil {
		t.Error("version mode without version must fail")
	}
	if _, err := s.MultiVersion().Mode(Mode{Kind: ModeKind(9)}); err == nil {
		t.Error("unknown mode kind must fail")
	}
}

func TestFoldPair(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		kind AggKind
		a, b float64
		want float64
	}{
		{Sum, 1, 2, 3},
		{Min, 1, 2, 1},
		{Max, 1, 2, 2},
		{Avg, 1, 3, 2},
		{Count, 2, 3, 5},
		{Sum, nan, 2, 2},
		{Sum, 1, nan, 1},
		{Count, nan, 7, 1},
	}
	for _, c := range cases {
		got := foldPair(c.kind, c.a, c.b)
		if got != c.want {
			t.Errorf("foldPair(%v, %v, %v) = %v, want %v", c.kind, c.a, c.b, got, c.want)
		}
	}
	if !math.IsNaN(foldPair(Sum, nan, nan)) {
		t.Error("NaN+NaN must stay NaN")
	}
	if !math.IsNaN(foldPair(AggKind(99), 1, 2)) {
		t.Error("unknown agg kind must fold to NaN")
	}
}
