package core

import (
	"math"
	"testing"

	"mvolap/internal/temporal"
)

func TestQueryGrains(t *testing.T) {
	s := NewSchema("g", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")
	if err := d.AddVersion(&MemberVersion{ID: "a", Level: "Leaf", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	// One fact per month over 2001.
	for m := 1; m <= 12; m++ {
		if err := s.InsertFact(Coords{"a"}, ym(2001, m), 1); err != nil {
			t.Fatal(err)
		}
	}
	run := func(grain TimeGrain) *Result {
		res, err := s.Execute(Query{Grain: grain, Mode: TCM()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(GrainAll); len(res.Rows) != 1 || res.Rows[0].Values[0] != 12 {
		t.Errorf("GrainAll: %+v", res.Rows)
	}
	if res := run(GrainYear); len(res.Rows) != 1 || res.Rows[0].TimeKey != "2001" {
		t.Errorf("GrainYear: %+v", res.Rows)
	}
	if res := run(GrainQuarter); len(res.Rows) != 4 || res.Rows[0].TimeKey != "Q1/2001" || res.Rows[0].Values[0] != 3 {
		t.Errorf("GrainQuarter: %+v", res.Rows)
	}
	if res := run(GrainMonth); len(res.Rows) != 12 || res.Rows[0].TimeKey != "01/2001" {
		t.Errorf("GrainMonth: %+v", res.Rows)
	}
}

func TestTimeGrainString(t *testing.T) {
	for grain, want := range map[TimeGrain]string{
		GrainAll: "all", GrainYear: "year", GrainQuarter: "quarter", GrainMonth: "month",
	} {
		if grain.String() != want {
			t.Errorf("String(%d) = %q", grain, grain.String())
		}
	}
	if TimeGrain(9).String() == "" {
		t.Error("out-of-range grain String")
	}
}

func TestQueryMeasureSelection(t *testing.T) {
	s := NewSchema("m2", Measure{Name: "turnover", Agg: Sum}, Measure{Name: "profit", Agg: Sum})
	d := NewDimension("D", "D")
	if err := d.AddVersion(&MemberVersion{ID: "a", Level: "Leaf", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"a"}, y(2001), 100, 20); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(Query{Measures: []string{"profit"}, Grain: GrainYear, Mode: TCM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeasureNames) != 1 || res.MeasureNames[0] != "profit" || res.Rows[0].Values[0] != 20 {
		t.Errorf("projection failed: %+v", res)
	}
	// All measures by default.
	res, err = s.Execute(Query{Grain: GrainYear, Mode: TCM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeasureNames) != 2 {
		t.Errorf("default selection = %v", res.MeasureNames)
	}
	if _, err := s.Execute(Query{Measures: []string{"zz"}, Mode: TCM()}); err == nil {
		t.Error("unknown measure must fail")
	}
	if _, err := s.Execute(Query{GroupBy: []GroupBy{{Dim: "zz"}}, Mode: TCM()}); err == nil {
		t.Error("unknown dimension must fail")
	}
}

func TestQueryGroupNames(t *testing.T) {
	s := splitSchema(t)
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupNames) != 1 || res.GroupNames[0] != "Org.Division" {
		t.Errorf("GroupNames = %v", res.GroupNames)
	}
	if res.Mode.Kind != TCMKind {
		t.Error("result must echo the mode")
	}
}

// TestMultiHierarchyFanOut: a leaf under two parents contributes to both
// groups.
func TestMultiHierarchyFanOut(t *testing.T) {
	s := NewSchema("mh", Measure{Name: "m", Agg: Sum})
	d := NewDimension("Geo", "Geo")
	for _, mv := range []*MemberVersion{
		{ID: "city", Level: "City", Valid: temporal.Always},
		{ID: "state", Level: "Admin", Valid: temporal.Always},
		{ID: "region", Level: "Admin", Valid: temporal.Always},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "city", To: "state", Valid: temporal.Always},
		{From: "city", To: "region", Valid: temporal.Always},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"city"}, y(2001), 10); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Geo", Level: "Admin"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.Values[0] != 10 {
			t.Errorf("row %v value %v, want 10", r.Groups, r.Values[0])
		}
	}
}

// TestNonCoveringHierarchySkips: a leaf with no ancestor at the grouped
// level silently falls out of the grouping.
func TestNonCoveringHierarchySkips(t *testing.T) {
	s := NewSchema("nc", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")
	for _, mv := range []*MemberVersion{
		{ID: "top", Level: "Top", Valid: temporal.Always},
		{ID: "underTop", Level: "Leaf", Valid: temporal.Always},
		{ID: "orphan", Level: "Leaf", Valid: temporal.Always},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(TemporalRelationship{From: "underTop", To: "top", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(Coords{"underTop"}, y(2001), 5)
	s.MustInsertFact(Coords{"orphan"}, y(2001), 7)
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "D", Level: "Top"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != 5 {
		t.Errorf("non-covering rollup = %+v", res.Rows)
	}
}

// TestGroupByLeafLevelIncludesSelf: grouping by the leaf's own level
// returns the leaf itself (Q2 of the paper groups by Department).
func TestGroupByLeafLevelIncludesSelf(t *testing.T) {
	s := splitSchema(t)
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   GrainYear,
		Range:   temporal.Between(y(2001), ym(2001, 12)),
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %+v", res.Rows)
	}
}

func TestDerivedLevelGroupBy(t *testing.T) {
	// A dimension without explicit level tags: group by "depth-0".
	s := NewSchema("dl", Measure{Name: "m", Agg: Sum})
	d := NewDimension("D", "D")
	for _, mv := range []*MemberVersion{
		{ID: "root", Valid: temporal.Always},
		{ID: "a", Valid: temporal.Always},
		{ID: "b", Valid: temporal.Always},
	} {
		if err := d.AddVersion(mv); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "a", To: "root", Valid: temporal.Always},
		{From: "b", To: "root", Valid: temporal.Always},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	s.MustInsertFact(Coords{"a"}, y(2001), 3)
	s.MustInsertFact(Coords{"b"}, y(2001), 4)
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "D", Level: "depth-0"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != 7 {
		t.Errorf("derived-level rollup = %+v", res.Rows)
	}
}

func TestRowOrdering(t *testing.T) {
	s := splitSchema(t)
	res, err := s.Execute(q2TestQuery(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a.TimeKey > b.TimeKey {
			t.Fatal("rows must be sorted by time")
		}
		if a.TimeKey == b.TimeKey && a.Groups[0] > b.Groups[0] {
			t.Fatal("rows must be sorted by group within a time bucket")
		}
	}
}

func q2TestQuery(s *Schema) Query {
	return Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "?"},
		{100, "100"},
		{0.5, "0.5"},
		{-3, "-3"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRowN(t *testing.T) {
	s := splitSchema(t)
	res, err := s.Execute(Query{Grain: GrainAll, Mode: TCM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].N != 10 {
		t.Errorf("grand total N = %+v", res.Rows)
	}
	if res.Rows[0].Values[0] != 850 {
		t.Errorf("grand total = %v, want 850", res.Rows[0].Values[0])
	}
}

func TestQueryFilters(t *testing.T) {
	s := splitSchema(t)
	// Slice to the Sales division: only departments under Sales at each
	// fact's instant contribute in tcm.
	res, err := s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   GrainYear,
		Filters: []Filter{{Dim: "Org", Members: []string{"Sales"}}},
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Groups[0] == "Brian" {
			t.Errorf("Brian is never under Sales: %+v", r)
		}
	}
	// Smith contributes only in 2001 (under Sales then, R&D after).
	found2001, found2002 := false, false
	for _, r := range res.Rows {
		if r.Groups[0] == "Smith" {
			switch r.TimeKey {
			case "2001":
				found2001 = true
			case "2002":
				found2002 = true
			}
		}
	}
	if !found2001 || found2002 {
		t.Errorf("Smith slice wrong: 2001=%v 2002=%v", found2001, found2002)
	}
	// Dice by leaf names.
	res, err = s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   GrainYear,
		Filters: []Filter{{Dim: "Org", Members: []string{"Smith", "Brian"}}},
		Mode:    TCM(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Groups[0] != "Smith" && r.Groups[0] != "Brian" {
			t.Errorf("unexpected member %q", r.Groups[0])
		}
	}
	// Filter in a version mode follows that version's structure: slicing
	// V1's Sales covers Smith even for 2002+ facts.
	v1 := s.VersionAt(y(2001))
	res, err = s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Department"}},
		Grain:   GrainYear,
		Filters: []Filter{{Dim: "Org", Members: []string{"Sales"}}},
		Mode:    InVersion(v1),
	})
	if err != nil {
		t.Fatal(err)
	}
	smith2002 := false
	for _, r := range res.Rows {
		if r.Groups[0] == "Smith" && r.TimeKey == "2002" {
			smith2002 = true
		}
	}
	if !smith2002 {
		t.Error("in V1, Smith is under Sales for all instants")
	}
	// Unknown dimension in a filter fails.
	if _, err := s.Execute(Query{
		Filters: []Filter{{Dim: "zz"}},
		Mode:    TCM(),
	}); err == nil {
		t.Error("unknown filter dimension must fail")
	}
}

// TestConcurrentQueries exercises the derived caches from many
// goroutines; run with -race to verify the locking.
func TestConcurrentQueries(t *testing.T) {
	s := splitSchema(t)
	modes := s.Modes()
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				mode := modes[(g+i)%len(modes)]
				_, err := s.Execute(Query{
					GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
					Grain:   GrainYear,
					Mode:    mode,
				})
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
