package core

import (
	"fmt"

	"mvolap/internal/temporal"
)

// This file implements the improvement the paper's conclusion calls
// for: "Our model still suffers from the fact that a structure version
// is composed of the set of the temporal dimensions validated for that
// version. An improvement would allow the building of a structure
// version by selecting the temporal dimensions in different versions."
//
// ComposeVersion builds exactly that: a synthetic structure version
// whose per-dimension structure is picked from possibly different
// inferred versions. An analyst can, for example, present data with the
// current product hierarchy but last year's sales territories.

// ComposeVersion builds a custom presentation structure: picks selects,
// per dimension ID, the inferred structure version (by ID) whose
// restriction of that dimension to use. Every schema dimension must be
// picked. The copied elements are renormalized to the valid interval so
// the composite behaves as a single coherent structure version; valid
// must be non-empty.
//
// The result can be used anywhere a structure version can — most
// usefully as InVersion(composed) in a query's temporal mode of
// presentation.
func (s *Schema) ComposeVersion(id string, valid temporal.Interval, picks map[DimID]string) (*StructureVersion, error) {
	if valid.Empty() {
		return nil, fmt.Errorf("core: compose %s: empty valid interval", id)
	}
	if id == "" {
		return nil, fmt.Errorf("core: compose: empty version ID")
	}
	out := &StructureVersion{
		ID:       id,
		Valid:    valid,
		dimIndex: make(map[DimID]int),
	}
	for i, d := range s.dims {
		pickID, ok := picks[d.ID]
		if !ok {
			return nil, fmt.Errorf("core: compose %s: no pick for dimension %s", id, d.ID)
		}
		src := s.VersionByID(pickID)
		if src == nil {
			return nil, fmt.Errorf("core: compose %s: unknown structure version %q", id, pickID)
		}
		rd := src.Dimension(d.ID)
		if rd == nil {
			return nil, fmt.Errorf("core: compose %s: version %s has no dimension %s", id, pickID, d.ID)
		}
		out.dimIndex[d.ID] = i
		out.dims = append(out.dims, rd.renormalize(valid))
	}
	return out, nil
}

// renormalize deep-copies the dimension with every member version and
// relationship declared valid exactly over the given interval, so the
// copy reads as one unchanged structure over that interval.
func (d *Dimension) renormalize(valid temporal.Interval) *Dimension {
	out := NewDimension(d.ID, d.Name)
	for _, id := range d.order {
		cp := d.members[id].Clone()
		cp.Valid = valid
		out.members[cp.ID] = cp
		out.order = append(out.order, cp.ID)
	}
	for _, r := range d.rels {
		nr := r
		nr.Valid = valid
		idx := len(out.rels)
		out.rels = append(out.rels, nr)
		out.parentRels[nr.From] = append(out.parentRels[nr.From], idx)
		out.childRels[nr.To] = append(out.childRels[nr.To], idx)
	}
	return out
}

// AggregateMember performs the Definition 12 data aggregation for one
// member version directly: it locates the member in the mode's
// structure, collects the leaf member versions below it (or itself when
// it is a leaf), and folds the mode-mapped values at instant t with the
// measure aggregates ⊕ and the confidence algebra ⊗cf. It returns one
// value and confidence per measure; a member with no data at t yields
// NaN values with UnknownMapping confidence.
func (s *Schema) AggregateMember(id MVID, t temporal.Instant, mode Mode) ([]float64, []Confidence, error) {
	d := s.DimensionOf(id)
	if d == nil {
		return nil, nil, fmt.Errorf("core: unknown member version %q", id)
	}
	dimPos := s.DimIndex(d.ID)
	// Pick the structure to roll up in.
	graph := d
	at := t
	if mode.Kind == VersionKind {
		if mode.Version == nil {
			return nil, nil, fmt.Errorf("core: version mode without version")
		}
		graph = mode.Version.Dimension(d.ID)
		if graph == nil || graph.Version(id) == nil {
			return nil, nil, fmt.Errorf("core: member %q not in structure version %s", id, mode.Version.ID)
		}
		at = mode.Version.Valid.Start
	}
	// Leaves under id (including id itself when childless).
	leafSet := make(map[MVID]bool)
	var walk func(cur MVID)
	seen := make(map[MVID]bool)
	walk = func(cur MVID) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		kids := graph.ChildrenAt(cur, at)
		if len(kids) == 0 {
			leafSet[cur] = true
			return
		}
		for _, c := range kids {
			walk(c.ID)
		}
	}
	walk(id)

	mt, err := s.MultiVersion().Mode(mode)
	if err != nil {
		return nil, nil, err
	}
	accs := make([]*Accumulator, len(s.measures))
	for i, m := range s.measures {
		accs[i] = NewAccumulator(m.Agg)
	}
	cfs := make([]Confidence, len(s.measures))
	first := true
	for _, f := range mt.Facts() {
		if f.Time != t || !leafSet[f.Coords[dimPos]] {
			continue
		}
		for k := range accs {
			accs[k].Add(f.Values[k])
			if first {
				cfs[k] = f.CFs[k]
			} else {
				cfs[k] = s.alg.Combine(cfs[k], f.CFs[k])
			}
		}
		first = false
	}
	values := make([]float64, len(accs))
	for k, a := range accs {
		values[k] = a.Value()
		if a.N() == 0 {
			cfs[k] = UnknownMapping
		}
	}
	return values, cfs, nil
}
