package core

import (
	"context"
	"math"

	"mvolap/internal/temporal"
)

// This file is the unfold side of incremental maintenance: taking a
// retracted source tuple's contributions back OUT of a warm-clone
// MappedTable. Folding is only partially invertible, so the engine
// classifies each touched cell:
//
//   - Full retraction (every source contribution of the cell is in the
//     batch): the tuple is tombstoned. Always exact, for every
//     aggregate and confidence algebra — the cell simply ceases to
//     exist, just as it would in a cold rebuild over surviving facts.
//   - Partial retraction: the retracted contributions are subtracted
//     from the cell under invertible aggregates (Sum, Count, and Avg
//     via the per-measure contribution counts). Min/Max folds discard
//     the information subtraction needs, and the confidence ⊗cf is
//     idempotent, so a mode is evicted instead whenever it carries a
//     Min/Max measure, a retracted emission whose confidence is not
//     SourceData, or a cell state the rules below cannot prove
//     invertible.
//
// Eviction is per mode and conservative: the mode rebuilds cold on its
// next access, which is always correct.

// FactsSpan returns the hull of the facts' instants and whether the
// slice was non-empty — the time window a retraction batch can affect,
// handed to the TQL result-cache invalidator.
func FactsSpan(facts []*Fact) (temporal.Interval, bool) {
	if len(facts) == 0 {
		return temporal.Interval{}, false
	}
	window := temporal.Between(facts[0].Time, facts[0].Time)
	for _, f := range facts[1:] {
		window = window.Hull(temporal.Between(f.Time, f.Time))
	}
	return window, true
}

// unfoldPair takes one prior contribution v back out of a folded cell
// value x; avgc carries the cell's per-measure non-NaN contribution
// count (meaningful for Avg only). ok=false means the fold cannot be
// proven invertible from the information at hand and the caller must
// evict the mode.
//
// NaN is the absent value (see foldPair): a NaN contribution never
// changed a Sum or Avg cell, so unfolding it is a no-op, and a
// subtraction that would leave a cell with no provable non-NaN
// contribution refuses rather than fabricate a zero where a cold
// rebuild computes NaN. Count folds reset to 1 whenever either side is
// NaN, destroying the running total, so any NaN involvement — or a
// cell sitting at the ambiguous reset value 1 — refuses too.
func unfoldPair(kind AggKind, x float64, avgc int32, v float64) (float64, int32, bool) {
	switch kind {
	case Sum:
		if math.IsNaN(v) {
			return x, avgc, true
		}
		if math.IsNaN(x) || x == v {
			return x, avgc, false
		}
		return x - v, avgc, true
	case Count:
		if math.IsNaN(v) || math.IsNaN(x) || x == v || x == 1 {
			return x, avgc, false
		}
		return x - v, avgc, true
	case Avg:
		if math.IsNaN(v) {
			return x, avgc, true
		}
		if math.IsNaN(x) || avgc < 1 {
			return x, avgc, false
		}
		if avgc == 1 {
			// v was the cell's only non-NaN contribution; any survivors
			// are NaN, so the mean reverts to absent — but only if the
			// stored mean really is that single contribution.
			if math.Float64bits(x) != math.Float64bits(v) {
				return x, avgc, false
			}
			return math.NaN(), 0, true
		}
		return (x*float64(avgc) - v) / float64(avgc-1), avgc - 1, true
	}
	return x, avgc, false // Min, Max: folding is lossy, never invertible
}

// tombstone kills the tuple at global position pos: the slot stays in
// place (positional indexing over fixed-size shards must never shift)
// but its sources count drops to zero, every view and scan skips it,
// and its key leaves the index layers so a later emission on the same
// coordinates appends a fresh tuple. keyBuf is scratch, returned for
// reuse.
func (mt *MappedTable) tombstone(pos int, keyBuf []byte) []byte {
	sh := mt.writableShard(pos >> shardShift)
	j := pos & shardMask
	sh.sources[j] = 0
	mt.dead++
	keyBuf = appendFactKey(keyBuf[:0], Coords(sh.coords[j*mt.nd:(j+1)*mt.nd]), sh.times[j])
	if _, ok := mt.index[string(keyBuf)]; ok {
		delete(mt.index, string(keyBuf))
	} else if mt.base != nil {
		if mt.dels == nil {
			mt.dels = make(map[string]bool)
		}
		mt.dels[string(keyBuf)] = true
	}
	return keyBuf
}

// retractInto unfolds the retracted source tuples out of a warm-clone
// table for one mode. It returns false when the mode cannot absorb the
// retraction exactly; the caller evicts it and the mode rebuilds cold
// on next access. The table may be left part-mutated on false — every
// touched shard is a private copy, so the caller simply discards the
// clone.
func (s *Schema) retractInto(ctx context.Context, out *MappedTable, mode Mode, retracted []*Fact) bool {
	nd, nm := out.nd, out.nm
	// Recompute the exact emissions the retracted tuples contributed.
	// Resolution and mapping are deterministic, so running the tuples
	// through the table's own graph again reproduces the original
	// emissions bit for bit.
	var p *partialShard
	if mode.Kind == TCMKind {
		p = &partialShard{}
		for _, f := range retracted {
			p.coords = append(p.coords, f.Coords...)
			p.times = append(p.times, f.Time)
			p.values = append(p.values, f.Values...)
			for k := 0; k < nm; k++ {
				p.cfs = append(p.cfs, SourceData)
			}
		}
	} else {
		p = s.mapShard(ctx, out.graph, out.leafIn, retracted)
		if ctx.Err() != nil {
			return false
		}
	}
	out.Dropped -= p.dropped

	// Group the emissions by the cell they folded into, in emission
	// order (subtraction order must be deterministic).
	type cellPlan struct {
		pos   int
		emits []int
	}
	byPos := make(map[int]*cellPlan)
	order := make([]*cellPlan, 0, len(p.times))
	var keyBuf []byte
	for i := range p.times {
		keyBuf = appendFactKey(keyBuf[:0], Coords(p.coords[i*nd:(i+1)*nd]), p.times[i])
		pos, ok := out.lookupKey(keyBuf)
		if !ok {
			// The table holds no tuple this emission folded into — the
			// warm state disagrees with the retraction; rebuild cold.
			return false
		}
		pl := byPos[pos]
		if pl == nil {
			pl = &cellPlan{pos: pos}
			byPos[pos] = pl
			order = append(order, pl)
		}
		pl.emits = append(pl.emits, i)
	}

	// A partially retracted cell needs invertible folds for every
	// measure of the table.
	partial := false
	for _, pl := range order {
		sh, j := out.shardAt(pl.pos)
		src := int(sh.sources[j])
		if len(pl.emits) > src {
			return false
		}
		if len(pl.emits) < src {
			partial = true
		}
	}
	if partial {
		for _, m := range out.measures {
			if m.Agg == Min || m.Agg == Max {
				return false
			}
		}
	}

	tombShards := make(map[int]bool)
	for _, pl := range order {
		si := pl.pos >> shardShift
		j := pl.pos & shardMask
		if src := int(out.shards[si].sources[j]); len(pl.emits) == src {
			keyBuf = out.tombstone(pl.pos, keyBuf)
			tombShards[si] = true
			continue
		}
		sh := out.writableShard(si)
		vals := sh.values[j*nm : (j+1)*nm]
		for _, ei := range pl.emits {
			// Subtraction cannot un-combine ⊗cf; it is only safe when the
			// retracted emission's confidences are the source-data grade,
			// whose removal leaves the cell's combined confidence
			// unchanged in both built-in algebras.
			ecfs := p.cfs[ei*nm : (ei+1)*nm]
			for k := 0; k < nm; k++ {
				if ecfs[k] != SourceData {
					return false
				}
			}
			evals := p.values[ei*nm : (ei+1)*nm]
			for k := 0; k < nm; k++ {
				var avgc int32
				if sh.avgN != nil {
					avgc = sh.avgN[j*nm+k]
				}
				nv, nc, ok := unfoldPair(out.measures[k].Agg, vals[k], avgc, evals[k])
				if !ok {
					return false
				}
				vals[k] = nv
				if sh.avgN != nil {
					sh.avgN[j*nm+k] = nc
				}
			}
		}
		sh.sources[j] -= int32(len(pl.emits))
	}

	// Tombstones shrink the coordinate/time envelope a shard's zone map
	// summarizes. A stale zone would still be conservative (it only
	// over-approximates), but re-sealing the touched shards keeps
	// pruning tight; appends into the tail shard invalidate as usual.
	for si := range tombShards {
		sh := out.shards[si]
		sh.zone.Store(buildZone(sh, nd))
	}
	return true
}
