package core

import (
	"context"
	"math"
	"testing"

	"mvolap/internal/temporal"
)

// TestFactTableCloneCopyOnWrite pins the COW contract of
// FactTable.Clone: inserts and replacements on either side never reach
// through to the other, across chained clones.
func TestFactTableCloneCopyOnWrite(t *testing.T) {
	src := NewFactTable(1)
	for i, id := range []MVID{"a", "b", "c"} {
		if err := src.Insert(Coords{id}, y(2001), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cl := src.Clone()

	// Insert-only growth on both sides stays private.
	if err := cl.Insert(Coords{"d"}, y(2001), 3); err != nil {
		t.Fatal(err)
	}
	if err := src.Insert(Coords{"e"}, y(2001), 4); err != nil {
		t.Fatal(err)
	}
	if src.Len() != 4 || cl.Len() != 4 {
		t.Fatalf("lens = %d, %d, want 4, 4", src.Len(), cl.Len())
	}
	if _, ok := src.Lookup(Coords{"d"}, y(2001)); ok {
		t.Error("clone insert visible in source")
	}
	if _, ok := cl.Lookup(Coords{"e"}, y(2001)); ok {
		t.Error("source insert visible in clone (base index must be bounds-guarded)")
	}

	// Replacement privatizes the shared tuple instead of mutating it.
	if err := cl.Insert(Coords{"a"}, y(2001), 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := src.Lookup(Coords{"a"}, y(2001)); v[0] != 0 {
		t.Errorf("clone replacement leaked into source: %v", v)
	}
	if v, _ := cl.Lookup(Coords{"a"}, y(2001)); v[0] != 99 {
		t.Errorf("clone replacement lost: %v", v)
	}
	// And symmetrically on the source, whose tuples are shared too.
	if err := src.Insert(Coords{"b"}, y(2001), -1); err != nil {
		t.Fatal(err)
	}
	if v, _ := cl.Lookup(Coords{"b"}, y(2001)); v[0] != 1 {
		t.Errorf("source replacement leaked into clone: %v", v)
	}

	// A chained clone (exercising the flatten/copy paths) stays isolated.
	cl2 := cl.Clone()
	if err := cl2.Insert(Coords{"a"}, y(2001), 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := cl.Lookup(Coords{"a"}, y(2001)); v[0] != 99 {
		t.Errorf("grandchild replacement leaked: %v", v)
	}
	if v, _ := cl2.Lookup(Coords{"a"}, y(2001)); v[0] != 7 {
		t.Errorf("grandchild replacement lost: %v", v)
	}
}

// TestDimensionMutationInvalidatesMVFT is the regression test for the
// old footgun: evolution operators mutate dimensions in place, and the
// cached MultiVersion Fact Table used to survive unless the caller
// remembered Schema.Invalidate. Every mutator must now invalidate
// through the dimension's schema callback.
func TestDimensionMutationInvalidatesMVFT(t *testing.T) {
	mutations := []struct {
		name string
		do   func(t *testing.T, s *Schema)
	}{
		{"AddVersion", func(t *testing.T, s *Schema) {
			if err := s.Dimension("Org").AddVersion(&MemberVersion{
				ID: "Newbie", Level: "Department", Valid: temporal.Since(y(2004)),
			}); err != nil {
				t.Fatal(err)
			}
		}},
		{"AddRelationship", func(t *testing.T, s *Schema) {
			d := s.Dimension("Org")
			if err := d.AddVersion(&MemberVersion{
				ID: "Newbie", Level: "Department", Valid: temporal.Since(y(2004)),
			}); err != nil {
				t.Fatal(err)
			}
			if err := d.AddRelationship(TemporalRelationship{
				From: "Newbie", To: "Sales", Valid: temporal.Since(y(2004)),
			}); err != nil {
				t.Fatal(err)
			}
		}},
		{"SetEnd", func(t *testing.T, s *Schema) {
			if err := s.Dimension("Org").SetEnd("Smith", y(2004)); err != nil {
				t.Fatal(err)
			}
		}},
		{"EndRelationship", func(t *testing.T, s *Schema) {
			s.Dimension("Org").EndRelationship("Brian", "R&D", y(2004))
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			s := splitSchema(t)
			before := s.MultiVersion()
			if _, err := before.Mode(TCM()); err != nil {
				t.Fatal(err)
			}
			svsBefore := len(s.StructureVersions())
			m.do(t, s) // no manual s.Invalidate()
			if after := s.MultiVersion(); after == before {
				t.Fatal("in-place dimension mutation did not invalidate the MVFT cache")
			}
			if svs := len(s.StructureVersions()); svs == svsBefore {
				// every mutation above changes the partition of history
				t.Fatalf("structure versions not recomputed: still %d", svs)
			}
		})
	}

	t.Run("CloneDimsRebound", func(t *testing.T) {
		s := splitSchema(t)
		cl := s.Clone()
		before := cl.MultiVersion()
		if _, err := before.Mode(TCM()); err != nil {
			t.Fatal(err)
		}
		if err := cl.Dimension("Org").SetEnd("Smith", y(2004)); err != nil {
			t.Fatal(err)
		}
		if after := cl.MultiVersion(); after == before {
			t.Fatal("mutation of a cloned dimension did not invalidate the clone's cache")
		}
	})
}

// equalMappedTables fails the test unless the two tables are
// bit-identical: same tuple order, coordinates, times, values (by
// Float64bits, so NaN and -0 count), confidences, source counts and
// Dropped.
func equalMappedTables(t *testing.T, label string, got, want *MappedTable) {
	t.Helper()
	if got.Dropped != want.Dropped {
		t.Fatalf("%s: Dropped = %d, want %d", label, got.Dropped, want.Dropped)
	}
	gf, wf := got.Facts(), want.Facts()
	if len(gf) != len(wf) {
		t.Fatalf("%s: %d tuples, want %d", label, len(gf), len(wf))
	}
	for i := range gf {
		g, w := gf[i], wf[i]
		if !g.Coords.Equal(w.Coords) || g.Time != w.Time || g.Sources != w.Sources {
			t.Fatalf("%s[%d]: (%v,%v,%d) vs (%v,%v,%d)", label, i,
				g.Coords, g.Time, g.Sources, w.Coords, w.Time, w.Sources)
		}
		for k := range g.Values {
			if math.Float64bits(g.Values[k]) != math.Float64bits(w.Values[k]) {
				t.Fatalf("%s[%d].Values[%d] = %v, want %v", label, i, k, g.Values[k], w.Values[k])
			}
			if g.CFs[k] != w.CFs[k] {
				t.Fatalf("%s[%d].CFs[%d] = %v, want %v", label, i, k, g.CFs[k], w.CFs[k])
			}
		}
	}
}

// TestWarmFromFactDelta verifies the tentpole end to end at the core
// layer: after a pure fact batch, every cached mode survives the
// clone-swap, the delta is folded in, the result is bit-identical to a
// cold rebuild, and the clone performed zero materializations.
func TestWarmFromFactDelta(t *testing.T) {
	base := splitSchema(t)
	baseMV := base.MultiVersion()
	for _, m := range base.Modes() {
		if _, err := baseMV.Mode(m); err != nil {
			t.Fatal(err)
		}
	}
	nModes := len(base.Modes())

	clone := base.Clone()
	oldLen := clone.Facts().Len()
	batch := []struct {
		id MVID
		at temporal.Instant
		v  float64
	}{{"Jones", ym(2002, 3), 25}, {"Bill", ym(2003, 5), 75}, {"Smith", ym(2001, 7), 5}}
	for _, b := range batch {
		if err := clone.InsertFact(Coords{b.id}, b.at, b.v); err != nil {
			t.Fatal(err)
		}
	}
	delta := Delta{NewFacts: clone.Facts().Facts()[oldLen:]}

	res := clone.WarmFrom(context.Background(), base, delta)
	if len(res.Retained) != nModes || len(res.Evicted) != 0 {
		t.Fatalf("retained %v evicted %v, want all %d modes retained", res.Retained, res.Evicted, nModes)
	}
	if res.DeltaApplied != nModes {
		t.Fatalf("DeltaApplied = %d, want %d", res.DeltaApplied, nModes)
	}

	cold := clone.Clone() // same facts, cold caches
	for _, m := range clone.Modes() {
		warmT, err := clone.MultiVersion().Mode(m)
		if err != nil {
			t.Fatal(err)
		}
		coldT, err := cold.MultiVersion().Mode(InVersionOf(cold, m))
		if err != nil {
			t.Fatal(err)
		}
		equalMappedTables(t, m.String(), warmT, coldT)
	}
	if b := clone.MultiVersion().Materializations(); b != 0 {
		t.Fatalf("warm clone performed %d materializations, want 0", b)
	}
	if d := clone.MultiVersion().DeltaApplies(); d != int64(nModes) {
		t.Fatalf("DeltaApplies = %d, want %d", d, nModes)
	}

	// The base's published tables must be untouched by the fold.
	for _, m := range base.Modes() {
		freshBase := splitSchema(t)
		wantT, err := freshBase.MultiVersion().Mode(InVersionOf(freshBase, m))
		if err != nil {
			t.Fatal(err)
		}
		gotT, err := baseMV.Mode(m)
		if err != nil {
			t.Fatal(err)
		}
		equalMappedTables(t, "base/"+m.String(), gotT, wantT)
	}
}

// InVersionOf translates a mode of one schema into the equivalent mode
// of another schema with the same structure-version partition.
func InVersionOf(s *Schema, m Mode) Mode {
	if m.Kind == TCMKind {
		return m
	}
	return InVersion(s.VersionByID(m.Version.ID))
}

// TestWarmFromStructureChange verifies structure-aware invalidation:
// a mutation that splits one structure version evicts the modes whose
// partition slice changed while tcm and untouched versions survive.
func TestWarmFromStructureChange(t *testing.T) {
	base := splitSchema(t)
	baseMV := base.MultiVersion()
	for _, m := range base.Modes() {
		if _, err := baseMV.Mode(m); err != nil {
			t.Fatal(err)
		}
	}

	clone := base.Clone()
	// End Brian in 2004: history gains a new structure version covering
	// [2004, ∞) and the final old version's interval is truncated, but
	// earlier versions keep their interval and signature.
	if err := clone.Dimension("Org").SetEnd("Brian", y(2004)); err != nil {
		t.Fatal(err)
	}
	delta := Delta{StructureChanged: true, DimsTouched: []DimID{"Org"}}
	res := clone.WarmFrom(context.Background(), base, delta)

	retained := map[string]bool{}
	for _, k := range res.Retained {
		retained[k] = true
	}
	if !retained["tcm"] {
		t.Fatalf("tcm evicted on a pure dimension change: %v", res.Retained)
	}
	if len(res.Evicted) == 0 {
		t.Fatalf("no mode evicted although the partition changed: retained %v", res.Retained)
	}
	for _, k := range res.Evicted {
		if k == "tcm" {
			t.Fatal("tcm must survive dimension mutations")
		}
	}

	// Retained version modes must be provably identical to cold rebuilds
	// on the new schema.
	cold := clone.Clone()
	for _, m := range clone.Modes() {
		if !retained[m.String()] {
			continue
		}
		warmT, err := clone.MultiVersion().Mode(m)
		if err != nil {
			t.Fatal(err)
		}
		coldT, err := cold.MultiVersion().Mode(InVersionOf(cold, m))
		if err != nil {
			t.Fatal(err)
		}
		equalMappedTables(t, m.String(), warmT, coldT)
	}
}

// TestWarmFromEvictsAll covers the blanket-eviction deltas: replaced
// facts and changed mappings.
func TestWarmFromEvictsAll(t *testing.T) {
	t.Run("FactsReplaced", func(t *testing.T) {
		base := splitSchema(t)
		if _, err := base.MultiVersion().Mode(TCM()); err != nil {
			t.Fatal(err)
		}
		clone := base.Clone()
		if err := clone.InsertFact(Coords{"Jones"}, y(2001), 1); err != nil {
			t.Fatal(err)
		}
		res := clone.WarmFrom(context.Background(), base, Delta{FactsReplaced: true})
		if len(res.Retained) != 0 {
			t.Fatalf("retained %v after an in-place replacement", res.Retained)
		}
	})
	t.Run("MappingsChanged", func(t *testing.T) {
		base := splitSchema(t)
		baseMV := base.MultiVersion()
		for _, m := range base.Modes() {
			if _, err := baseMV.Mode(m); err != nil {
				t.Fatal(err)
			}
		}
		clone := base.Clone()
		if err := clone.AddMapping(MappingRelationship{
			From: "Smith", To: "Brian",
			Forward:  []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
			Backward: []MeasureMapping{{Fn: Identity, CF: ExactMapping}},
		}); err != nil {
			t.Fatal(err)
		}
		res := clone.WarmFrom(context.Background(), base, Delta{MappingsChanged: true})
		retained := map[string]bool{}
		for _, k := range res.Retained {
			retained[k] = true
		}
		if !retained["tcm"] || len(retained) != 1 {
			t.Fatalf("retained %v, want exactly tcm (mappings are global to version modes)", res.Retained)
		}
	})
}
