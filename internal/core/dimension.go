package core

import (
	"fmt"
	"sort"
	"sync"

	"mvolap/internal/temporal"
)

// Dimension is a Temporal Dimension (Definition 3): a set of member
// versions and a set of temporal relationships that together form a
// time-indexed directed graph. For any instant t the restriction D(t)
// must be a DAG representing the dimension structure at t.
//
// Hierarchy levels are not declared; they emerge from the instances
// (Definition 4), which lets the dimension represent non-onto,
// non-covering and multiple hierarchies, and makes schema evolution a
// special case of instance evolution (§2.3 of the paper).
type Dimension struct {
	ID   DimID
	Name string

	members map[MVID]*MemberVersion
	order   []MVID // insertion order, for deterministic iteration
	rels    []TemporalRelationship

	parentRels map[MVID][]int // child MVID -> indexes into rels
	childRels  map[MVID][]int // parent MVID -> indexes into rels

	// onMutate, when set, runs after every successful structural
	// mutation. The owning schema hooks its cache invalidation here, so
	// evolution operators mutating a dimension in place can never leave
	// a stale MultiVersion Fact Table behind (the old footgun where
	// in-place mutation required a manual Invalidate call).
	onMutate func()

	// derived caches rollup structures (level assignments, ancestor
	// sets) shared by every query over this dimension value. Clone
	// shares the pointer — a clone's structure is content-identical to
	// its base until mutated, and every mutation routes through
	// notifyMutate, which detaches the mutated dimension onto a fresh
	// cache. Readers of still-shared generations (the base, and any
	// fact-append clones) keep filling one warm cache; cached
	// *MemberVersion ancestors may belong to an earlier generation's
	// member copies, which is sound because rollup consumes only their
	// content (ID, display name), never their identity.
	derived *dimDerived
}

// dimDerived is the detachable derived-rollup cache of one dimension
// structure value; see the Dimension.derived field doc.
type dimDerived struct {
	mu     sync.RWMutex
	levels map[temporal.Instant]map[MVID]string
	ancs   map[ancKey][]*MemberVersion
}

// NewDimension creates an empty temporal dimension.
func NewDimension(id DimID, name string) *Dimension {
	return &Dimension{
		ID:         id,
		Name:       name,
		members:    make(map[MVID]*MemberVersion),
		parentRels: make(map[MVID][]int),
		childRels:  make(map[MVID][]int),
		derived:    &dimDerived{},
	}
}

// AddVersion inserts a member version. It fails if the ID is already
// taken or the valid time is empty.
func (d *Dimension) AddVersion(mv *MemberVersion) error {
	if mv.ID == "" {
		return fmt.Errorf("core: dimension %s: member version with empty ID", d.ID)
	}
	if _, dup := d.members[mv.ID]; dup {
		return fmt.Errorf("core: dimension %s: duplicate member version %q", d.ID, mv.ID)
	}
	if mv.Valid.Empty() {
		return fmt.Errorf("core: dimension %s: member version %q has empty valid time %v", d.ID, mv.ID, mv.Valid)
	}
	if mv.Member == "" {
		mv.Member = string(mv.ID)
	}
	d.members[mv.ID] = mv
	d.order = append(d.order, mv.ID)
	d.notifyMutate()
	return nil
}

// notifyMutate reports a structural change to the owning schema and
// detaches this dimension from the (possibly shared) derived rollup
// cache onto a fresh one. Detaching rather than clearing keeps the
// warm cache intact for every generation that still shares the old
// structure value; mutation only ever happens on an unpublished clone
// (copy-on-write), so no concurrent reader observes the swap.
func (d *Dimension) notifyMutate() {
	d.derived = &dimDerived{}
	if d.onMutate != nil {
		d.onMutate()
	}
}

// AddRelationship inserts a temporal relationship. Definition 2 requires
// the relationship's valid time to be included in the intersection of
// the valid times of both member versions; violations are rejected.
func (d *Dimension) AddRelationship(r TemporalRelationship) error {
	child, ok := d.members[r.From]
	if !ok {
		return fmt.Errorf("core: dimension %s: relationship child %q not found", d.ID, r.From)
	}
	parent, ok := d.members[r.To]
	if !ok {
		return fmt.Errorf("core: dimension %s: relationship parent %q not found", d.ID, r.To)
	}
	if r.From == r.To {
		return fmt.Errorf("core: dimension %s: self relationship on %q", d.ID, r.From)
	}
	if r.Valid.Empty() {
		return fmt.Errorf("core: dimension %s: relationship %s has empty valid time", d.ID, r)
	}
	window := child.Valid.Intersect(parent.Valid)
	if !window.ContainsInterval(r.Valid) {
		return fmt.Errorf("core: dimension %s: relationship %s exceeds the intersection %v of its member validities",
			d.ID, r, window)
	}
	idx := len(d.rels)
	d.rels = append(d.rels, r)
	d.parentRels[r.From] = append(d.parentRels[r.From], idx)
	d.childRels[r.To] = append(d.childRels[r.To], idx)
	d.notifyMutate()
	return nil
}

// Version returns the member version with the given ID, or nil.
func (d *Dimension) Version(id MVID) *MemberVersion { return d.members[id] }

// Versions returns all member versions in insertion order.
func (d *Dimension) Versions() []*MemberVersion {
	out := make([]*MemberVersion, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.members[id])
	}
	return out
}

// VersionsOfMember returns all versions of the named member, in
// insertion order.
func (d *Dimension) VersionsOfMember(member string) []*MemberVersion {
	var out []*MemberVersion
	for _, id := range d.order {
		if mv := d.members[id]; mv.Member == member {
			out = append(out, mv)
		}
	}
	return out
}

// Relationships returns a copy of all temporal relationships.
func (d *Dimension) Relationships() []TemporalRelationship {
	out := make([]TemporalRelationship, len(d.rels))
	copy(out, d.rels)
	return out
}

// VersionsAt returns D(t): the member versions valid at t, in insertion
// order.
func (d *Dimension) VersionsAt(t temporal.Instant) []*MemberVersion {
	var out []*MemberVersion
	for _, id := range d.order {
		if mv := d.members[id]; mv.ValidAt(t) {
			out = append(out, mv)
		}
	}
	return out
}

// RelationshipsAt returns G(t): the relationships valid at t.
func (d *Dimension) RelationshipsAt(t temporal.Instant) []TemporalRelationship {
	var out []TemporalRelationship
	for _, r := range d.rels {
		if r.Valid.Contains(t) {
			out = append(out, r)
		}
	}
	return out
}

// ParentsAt returns the parents of id in the DAG D(t).
func (d *Dimension) ParentsAt(id MVID, t temporal.Instant) []*MemberVersion {
	var out []*MemberVersion
	for _, idx := range d.parentRels[id] {
		r := d.rels[idx]
		if r.Valid.Contains(t) {
			if p := d.members[r.To]; p != nil && p.ValidAt(t) {
				out = append(out, p)
			}
		}
	}
	return out
}

// ChildrenAt returns the children of id in the DAG D(t).
func (d *Dimension) ChildrenAt(id MVID, t temporal.Instant) []*MemberVersion {
	var out []*MemberVersion
	for _, idx := range d.childRels[id] {
		r := d.rels[idx]
		if r.Valid.Contains(t) {
			if c := d.members[r.From]; c != nil && c.ValidAt(t) {
				out = append(out, c)
			}
		}
	}
	return out
}

// HasChildrenAt reports whether id has at least one child at t.
func (d *Dimension) HasChildrenAt(id MVID, t temporal.Instant) bool {
	for _, idx := range d.childRels[id] {
		r := d.rels[idx]
		if r.Valid.Contains(t) {
			if c := d.members[r.From]; c != nil && c.ValidAt(t) {
				return true
			}
		}
	}
	return false
}

// LeavesAt returns the member versions valid at t with no children at t.
func (d *Dimension) LeavesAt(t temporal.Instant) []*MemberVersion {
	var out []*MemberVersion
	for _, id := range d.order {
		mv := d.members[id]
		if mv.ValidAt(t) && !d.HasChildrenAt(id, t) {
			out = append(out, mv)
		}
	}
	return out
}

// IsLeafVersion reports whether the member version is a Leaf Member
// Version in the paper's sense: it has no children at at least one
// instant of its validity. The check is performed on the elementary
// intervals of the dimension, so it is exact.
func (d *Dimension) IsLeafVersion(id MVID) bool {
	mv := d.members[id]
	if mv == nil {
		return false
	}
	for _, elem := range d.ElementaryIntervals() {
		x := elem.Intersect(mv.Valid)
		if x.Empty() {
			continue
		}
		if !d.HasChildrenAt(id, x.Start) {
			return true
		}
	}
	return false
}

// LeafVersions returns all Leaf Member Versions of the dimension.
func (d *Dimension) LeafVersions() []*MemberVersion {
	var out []*MemberVersion
	for _, id := range d.order {
		if d.IsLeafVersion(id) {
			out = append(out, d.members[id])
		}
	}
	return out
}

// ElementaryIntervals returns the partition of the dimension's lifetime
// into maximal intervals over which no member version or relationship
// starts or ends. The structure D(t) is constant within each elementary
// interval.
func (d *Dimension) ElementaryIntervals() []temporal.Interval {
	ivs := make([]temporal.Interval, 0, len(d.members)+len(d.rels))
	for _, id := range d.order {
		ivs = append(ivs, d.members[id].Valid)
	}
	for _, r := range d.rels {
		ivs = append(ivs, r.Valid)
	}
	return temporal.Partition(ivs)
}

// Lifetime returns the hull of all element validities.
func (d *Dimension) Lifetime() temporal.Interval {
	var hull temporal.Interval
	hull = temporal.Interval{Start: 1, End: 0} // empty
	for _, id := range d.order {
		hull = hull.Hull(d.members[id].Valid)
	}
	return hull
}

// RootsAt returns the member versions valid at t with no parents at t.
func (d *Dimension) RootsAt(t temporal.Instant) []*MemberVersion {
	var out []*MemberVersion
	for _, id := range d.order {
		mv := d.members[id]
		if mv.ValidAt(t) && len(d.ParentsAt(id, t)) == 0 {
			out = append(out, mv)
		}
	}
	return out
}

// DepthAt returns the depth of the member version in D(t): roots have
// depth 0, and every other node is one deeper than its shallowest
// parent. It returns -1 if id is not valid at t.
func (d *Dimension) DepthAt(id MVID, t temporal.Instant) int {
	mv := d.members[id]
	if mv == nil || !mv.ValidAt(t) {
		return -1
	}
	depth, ok := d.depthAt(id, t, make(map[MVID]int))
	if !ok {
		return -1
	}
	return depth
}

func (d *Dimension) depthAt(id MVID, t temporal.Instant, memo map[MVID]int) (int, bool) {
	if v, ok := memo[id]; ok {
		if v == -2 { // cycle guard
			return 0, false
		}
		return v, true
	}
	memo[id] = -2
	parents := d.ParentsAt(id, t)
	if len(parents) == 0 {
		memo[id] = 0
		return 0, true
	}
	best := -1
	for _, p := range parents {
		pd, ok := d.depthAt(p.ID, t, memo)
		if !ok {
			return 0, false
		}
		if best == -1 || pd+1 < best {
			best = pd + 1
		}
	}
	memo[id] = best
	return best, true
}

// HasExplicitLevels reports whether every member version carries a Level
// tag, enabling the first levelling strategy of Definition 4.
func (d *Dimension) HasExplicitLevels() bool {
	if len(d.order) == 0 {
		return false
	}
	for _, id := range d.order {
		if d.members[id].Level == "" {
			return false
		}
	}
	return true
}

// Level is a named set of member versions (Definition 4).
type Level struct {
	// Name is the level tag, or "depth-N" for derived levels.
	Name string
	// Depth is the DAG depth for derived levels, -1 for explicit ones.
	Depth int
	// Members are the member versions belonging to the level.
	Members []*MemberVersion
}

// LevelsAt computes the levels of D(t) following Definition 4: if every
// member version carries an explicit Level tag, levels are the
// equivalence classes of the tag; otherwise they are the sets of member
// versions of equal depth in the DAG of D(t). The result is ordered from
// the root level down.
func (d *Dimension) LevelsAt(t temporal.Instant) []Level {
	valid := d.VersionsAt(t)
	if len(valid) == 0 {
		return nil
	}
	if d.HasExplicitLevels() {
		byName := make(map[string][]*MemberVersion)
		var names []string
		// Order level names by the minimum depth of their members so the
		// result still reads root-first.
		minDepth := make(map[string]int)
		for _, mv := range valid {
			if _, seen := byName[mv.Level]; !seen {
				names = append(names, mv.Level)
				minDepth[mv.Level] = int(^uint(0) >> 1)
			}
			byName[mv.Level] = append(byName[mv.Level], mv)
			if dep := d.DepthAt(mv.ID, t); dep >= 0 && dep < minDepth[mv.Level] {
				minDepth[mv.Level] = dep
			}
		}
		sort.SliceStable(names, func(i, j int) bool { return minDepth[names[i]] < minDepth[names[j]] })
		out := make([]Level, 0, len(names))
		for _, n := range names {
			out = append(out, Level{Name: n, Depth: -1, Members: byName[n]})
		}
		return out
	}
	byDepth := make(map[int][]*MemberVersion)
	maxDepth := 0
	for _, mv := range valid {
		dep := d.DepthAt(mv.ID, t)
		if dep < 0 {
			continue
		}
		byDepth[dep] = append(byDepth[dep], mv)
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	var out []Level
	for dep := 0; dep <= maxDepth; dep++ {
		if ms := byDepth[dep]; len(ms) > 0 {
			out = append(out, Level{Name: fmt.Sprintf("depth-%d", dep), Depth: dep, Members: ms})
		}
	}
	return out
}

// levelNamesAt returns the level name of every member version valid at
// t, keyed by version ID: the rollup form of LevelsAt, skipping the
// root-first level ordering that rollup never consults — which for
// explicitly-levelled dimensions means skipping the depth computation
// entirely. The map is cached on the dimension and shared by
// concurrent queries; callers must treat it as frozen.
func (d *Dimension) levelNamesAt(t temporal.Instant) map[MVID]string {
	der := d.derived
	der.mu.RLock()
	m, ok := der.levels[t]
	der.mu.RUnlock()
	if ok {
		return m
	}
	m = make(map[MVID]string)
	if d.HasExplicitLevels() {
		for _, id := range d.order {
			if mv := d.members[id]; mv.ValidAt(t) {
				m[id] = mv.Level
			}
		}
	} else {
		// One shared depth memo across the members: each walk reuses the
		// ancestors already resolved by earlier ones.
		memo := make(map[MVID]int)
		for _, id := range d.order {
			if !d.members[id].ValidAt(t) {
				continue
			}
			if dep, ok := d.depthAt(id, t, memo); ok {
				m[id] = fmt.Sprintf("depth-%d", dep)
			}
		}
	}
	der.mu.Lock()
	if der.levels == nil {
		der.levels = make(map[temporal.Instant]map[MVID]string)
	}
	if prev, ok := der.levels[t]; ok {
		m = prev // keep the first writer's map so readers share one value
	} else {
		der.levels[t] = m
	}
	der.mu.Unlock()
	return m
}

// ancestorsAtLevel returns the member versions at the named level
// reachable upward from id in D(at), including id itself when it sits
// at the level. Results are cached on the dimension; callers must
// treat the returned slice as frozen.
func (d *Dimension) ancestorsAtLevel(id MVID, level string, at temporal.Instant) []*MemberVersion {
	key := ancKey{id: id, level: level, at: at}
	der := d.derived
	der.mu.RLock()
	v, ok := der.ancs[key]
	der.mu.RUnlock()
	if ok {
		return v
	}
	lm := d.levelNamesAt(at)
	var out []*MemberVersion
	seen := make(map[MVID]bool)
	var walk func(cur MVID)
	walk = func(cur MVID) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		if lm[cur] == level {
			if mv := d.members[cur]; mv != nil {
				out = append(out, mv)
			}
			return
		}
		for _, p := range d.ParentsAt(cur, at) {
			walk(p.ID)
		}
	}
	walk(id)
	der.mu.Lock()
	if der.ancs == nil {
		der.ancs = make(map[ancKey][]*MemberVersion)
	}
	if prev, ok := der.ancs[key]; ok {
		out = prev
	} else {
		der.ancs[key] = out
	}
	der.mu.Unlock()
	return out
}

// LevelOf returns the level name of the member version at t, using the
// same strategy as LevelsAt.
func (d *Dimension) LevelOf(id MVID, t temporal.Instant) string {
	mv := d.members[id]
	if mv == nil || !mv.ValidAt(t) {
		return ""
	}
	if d.HasExplicitLevels() {
		return mv.Level
	}
	dep := d.DepthAt(id, t)
	if dep < 0 {
		return ""
	}
	return fmt.Sprintf("depth-%d", dep)
}

// MembersOfLevelAt returns the member versions belonging to the named
// level at t.
func (d *Dimension) MembersOfLevelAt(level string, t temporal.Instant) []*MemberVersion {
	for _, l := range d.LevelsAt(t) {
		if l.Name == level {
			return l.Members
		}
	}
	return nil
}

// ValidateAt checks that D(t) is a DAG (Definition 3).
func (d *Dimension) ValidateAt(t temporal.Instant) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[MVID]int)
	var visit func(id MVID) error
	visit = func(id MVID) error {
		switch color[id] {
		case grey:
			return fmt.Errorf("core: dimension %s: cycle through %q at %s", d.ID, id, t)
		case black:
			return nil
		}
		color[id] = grey
		for _, p := range d.ParentsAt(id, t) {
			if err := visit(p.ID); err != nil {
				return err
			}
		}
		color[id] = black
		return nil
	}
	for _, mv := range d.VersionsAt(t) {
		if err := visit(mv.ID); err != nil {
			return err
		}
	}
	return nil
}

// Validate checks the dimension's global invariants: every relationship
// valid time within its members' intersection (re-checked in case of
// later mutation), and D(t) acyclic at every elementary interval.
func (d *Dimension) Validate() error {
	for _, r := range d.rels {
		window := d.members[r.From].Valid.Intersect(d.members[r.To].Valid)
		if !window.ContainsInterval(r.Valid) {
			return fmt.Errorf("core: dimension %s: relationship %s exceeds member validity %v", d.ID, r, window)
		}
	}
	for _, elem := range d.ElementaryIntervals() {
		if err := d.ValidateAt(elem.Start); err != nil {
			return err
		}
	}
	return nil
}

// Restrict returns the restriction of the dimension to the elements
// (member versions and relationships) valid during the whole of the
// given interval, as used to build structure versions (Definition 9).
// The returned dimension shares no mutable state with the original.
func (d *Dimension) Restrict(iv temporal.Interval) *Dimension {
	out := NewDimension(d.ID, d.Name)
	for _, id := range d.order {
		mv := d.members[id]
		if mv.Valid.ContainsInterval(iv) {
			cp := mv.Clone()
			out.members[cp.ID] = cp
			out.order = append(out.order, cp.ID)
		}
	}
	for _, r := range d.rels {
		if r.Valid.ContainsInterval(iv) {
			if _, okF := out.members[r.From]; !okF {
				continue
			}
			if _, okT := out.members[r.To]; !okT {
				continue
			}
			idx := len(out.rels)
			out.rels = append(out.rels, r)
			out.parentRels[r.From] = append(out.parentRels[r.From], idx)
			out.childRels[r.To] = append(out.childRels[r.To], idx)
		}
	}
	return out
}

// Clone returns a deep copy of the dimension sharing no mutable state
// with the original: member versions are cloned and the relationship
// slice and its indexes are rebuilt. It backs the serving tier's
// copy-on-write evolution (queries keep reading the old structure
// while operators mutate the clone).
func (d *Dimension) Clone() *Dimension {
	out := NewDimension(d.ID, d.Name)
	for _, id := range d.order {
		cp := d.members[id].Clone()
		out.members[cp.ID] = cp
		out.order = append(out.order, cp.ID)
	}
	out.rels = append([]TemporalRelationship(nil), d.rels...)
	for i, r := range out.rels {
		out.parentRels[r.From] = append(out.parentRels[r.From], i)
		out.childRels[r.To] = append(out.childRels[r.To], i)
	}
	// The clone's structure value is identical until mutated, so it
	// shares the warm derived-rollup cache; the first mutation detaches
	// it (notifyMutate).
	out.derived = d.derived
	return out
}

// SetEnd truncates the valid time of a member version; it implements
// the core of the Exclude evolution operator. Relationships involving
// the version are truncated as well, per §3.2 of the paper, and
// relationships emptied by the truncation are dropped.
func (d *Dimension) SetEnd(id MVID, end temporal.Instant) error {
	mv := d.members[id]
	if mv == nil {
		return fmt.Errorf("core: dimension %s: unknown member version %q", d.ID, id)
	}
	if end < mv.Valid.Start {
		return fmt.Errorf("core: dimension %s: cannot end %q at %s before its start %s",
			d.ID, id, end, mv.Valid.Start)
	}
	mv.Valid.End = end
	for i := range d.rels {
		r := &d.rels[i]
		if (r.From == id || r.To == id) && r.Valid.End > end {
			r.Valid.End = end
		}
	}
	// Drop relationships emptied by the truncation.
	d.compactRels()
	d.notifyMutate()
	return nil
}

// EndRelationship truncates all relationships between the child from
// and the parent to; it implements part of the Reclassify operator.
// Relationships emptied by the truncation are dropped.
func (d *Dimension) EndRelationship(from, to MVID, end temporal.Instant) {
	for i := range d.rels {
		r := &d.rels[i]
		if r.From == from && r.To == to && r.Valid.End > end {
			r.Valid.End = end
		}
	}
	d.compactRels()
	d.notifyMutate()
}

func (d *Dimension) compactRels() {
	kept := d.rels[:0]
	for _, r := range d.rels {
		if !r.Valid.Empty() {
			kept = append(kept, r)
		}
	}
	d.rels = kept
	d.parentRels = make(map[MVID][]int)
	d.childRels = make(map[MVID][]int)
	for i, r := range d.rels {
		d.parentRels[r.From] = append(d.parentRels[r.From], i)
		d.childRels[r.To] = append(d.childRels[r.To], i)
	}
}

// HasAncestorNamedAt reports whether the member version, or any of its
// ancestors in D(t), carries one of the display names. It backs
// member-sliced fact extraction (data marts) and engine-level dicing.
func (d *Dimension) HasAncestorNamedAt(id MVID, names map[string]bool, t temporal.Instant) bool {
	seen := make(map[MVID]bool)
	var walk func(cur MVID) bool
	walk = func(cur MVID) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		mv := d.members[cur]
		if mv == nil || !mv.ValidAt(t) {
			return false
		}
		if names[mv.DisplayName()] {
			return true
		}
		for _, p := range d.ParentsAt(cur, t) {
			if walk(p.ID) {
				return true
			}
		}
		return false
	}
	return walk(id)
}
