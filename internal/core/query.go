package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"mvolap/internal/obs"
	"mvolap/internal/temporal"
)

// TimeGrain selects how fact instants are bucketed on the time axis of a
// query result.
type TimeGrain uint8

// Supported time grains.
const (
	// GrainAll folds the whole queried range into a single bucket.
	GrainAll TimeGrain = iota
	// GrainYear buckets by calendar year, the grain of the paper's
	// case-study queries.
	GrainYear
	// GrainQuarter buckets by calendar quarter.
	GrainQuarter
	// GrainMonth keeps the native month grain.
	GrainMonth
)

// String names the grain.
func (g TimeGrain) String() string {
	switch g {
	case GrainAll:
		return "all"
	case GrainYear:
		return "year"
	case GrainQuarter:
		return "quarter"
	case GrainMonth:
		return "month"
	}
	return fmt.Sprintf("TimeGrain(%d)", uint8(g))
}

func bucketOf(g TimeGrain, t temporal.Instant) (key string, order int64) {
	switch g {
	case GrainYear:
		return fmt.Sprintf("%d", t.YearOf()), int64(t.YearOf())
	case GrainQuarter:
		q := (t.MonthOf()-1)/3 + 1
		return fmt.Sprintf("Q%d/%d", q, t.YearOf()), int64(t.YearOf())*4 + int64(q)
	case GrainMonth:
		return t.String(), int64(t)
	default:
		return "all", 0
	}
}

// bucketRef is a memoized bucketOf result. Fact instants repeat heavily
// (a month of data is one instant), so the per-tuple rendering cost of
// bucketOf collapses to a map probe.
type bucketRef struct {
	key   string
	order int64
}

// GroupBy names a grouping axis: a dimension and one of its levels
// (explicit tag or "depth-N" for derived levels).
type GroupBy struct {
	Dim   DimID
	Level string
}

// Filter restricts one dimension to facts lying under the named
// members: a fact passes when its (mode-mapped) coordinate in the
// dimension is one of the named members or has one as an ancestor in
// the mode's structure. Names are display names. This is the engine
// form of the OLAP slice (one name) and dice (several) operators.
type Filter struct {
	Dim     DimID
	Members []string
}

// Query is a multidimensional request against the MultiVersion Fact
// Table: which measures to aggregate, how to group members and time, the
// time range, and crucially the Temporal Mode of Presentation in which
// the user wants the data presented (Definition 10).
type Query struct {
	// Measures selects measures by name; empty means all.
	Measures []string
	// GroupBy lists the grouping axes; empty yields a grand total.
	GroupBy []GroupBy
	// Grain buckets the time axis.
	Grain TimeGrain
	// Range restricts fact instants; the zero interval means all time.
	Range temporal.Interval
	// Filters dice dimensions to members (and their descendants).
	Filters []Filter
	// Mode is the temporal mode of presentation.
	Mode Mode
}

// Row is one line of a query result.
type Row struct {
	// TimeKey is the rendered time bucket ("2001", "Q2/2002", ...).
	TimeKey string
	// Groups holds the display names of the grouping members, aligned
	// with Query.GroupBy.
	Groups []string
	// GroupIDs holds the member version IDs behind Groups.
	GroupIDs []MVID
	// Values holds one aggregate per selected measure; NaN marks a value
	// whose mapping is unknown.
	Values []float64
	// CFs holds the combined confidence factor per value.
	CFs []Confidence
	// N counts the mapped tuples folded into the row.
	N int

	timeOrder int64
}

// Result is a query result: a header plus sorted rows.
type Result struct {
	// MeasureNames are the selected measures in output order.
	MeasureNames []string
	// GroupNames are the grouping level names in output order.
	GroupNames []string
	// Mode echoes the query's temporal mode of presentation.
	Mode Mode
	// Rows are sorted by time bucket, then group names.
	Rows []*Row
	// Dropped counts source facts not presentable in the mode.
	Dropped int
}

// Execute runs the query against the schema's MultiVersion Fact Table,
// performing Definition 12 data aggregation: measures fold under their
// aggregate function ⊕, confidence factors under ⊗cf, and rollup to the
// requested levels follows the temporal relationships of the mode's
// structure (the structure version's graph in a version mode, D(t) at
// each fact's instant in tcm).
func (s *Schema) Execute(q Query) (*Result, error) {
	return s.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation and tracing: the
// materialization and aggregation stages check ctx inside their
// per-fact loops (so a client disconnect or deadline stops work
// promptly), and when ctx carries an obs trace the two stages record
// "materialize" and "aggregate" spans with fact and row counts.
func (s *Schema) ExecuteContext(ctx context.Context, q Query) (*Result, error) {
	mctx, msp := obs.StartSpan(ctx, "materialize")
	msp.SetAttr("mode", q.Mode.String())
	mt, cached, err := s.MultiVersion().modeContext(mctx, q.Mode)
	if err == nil {
		msp.SetAttr("cached", cached)
		msp.SetAttr("facts", mt.Len())
		msp.SetAttr("dropped", mt.Dropped)
	}
	msp.End()
	if err != nil {
		return nil, err
	}
	actx, asp := obs.StartSpan(ctx, "aggregate")
	res, err := s.executeOn(actx, mt, q)
	if err == nil {
		asp.SetAttr("rows", len(res.Rows))
	}
	asp.End()
	return res, err
}

func (s *Schema) executeOn(ctx context.Context, mt *MappedTable, q Query) (*Result, error) {
	// Resolve measure selection.
	mIdx := make([]int, 0, len(s.measures))
	var mNames []string
	if len(q.Measures) == 0 {
		for i, m := range s.measures {
			mIdx = append(mIdx, i)
			mNames = append(mNames, m.Name)
		}
	} else {
		for _, name := range q.Measures {
			i := s.MeasureIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("core: unknown measure %q", name)
			}
			mIdx = append(mIdx, i)
			mNames = append(mNames, name)
		}
	}
	// Resolve grouping dimensions.
	type axis struct {
		dimPos int
		level  string
	}
	axes := make([]axis, 0, len(q.GroupBy))
	var gNames []string
	for _, g := range q.GroupBy {
		pos := s.DimIndex(g.Dim)
		if pos < 0 {
			return nil, fmt.Errorf("core: unknown dimension %q", g.Dim)
		}
		axes = append(axes, axis{dimPos: pos, level: g.Level})
		gNames = append(gNames, fmt.Sprintf("%s.%s", s.dims[pos].Name, g.Level))
	}

	rng := q.Range
	if rng == (temporal.Interval{}) {
		rng = temporal.Always
	}

	lookup := newRollupCache(s, q.Mode)

	type dice struct {
		dimPos int
		names  map[string]bool
		// static marks a dice whose rollup instant does not depend on
		// the fact time: a version mode with the dimension restricted
		// into the structure version. Only static dices may consult a
		// shard zone's distinct-coordinate set for pruning (a
		// time-dependent verdict cannot disqualify a whole shard).
		static bool
	}
	dices := make([]dice, 0, len(q.Filters))
	for _, f := range q.Filters {
		pos := s.DimIndex(f.Dim)
		if pos < 0 {
			return nil, fmt.Errorf("core: unknown dimension %q in filter", f.Dim)
		}
		names := make(map[string]bool, len(f.Members))
		for _, n := range f.Members {
			names[n] = true
		}
		static := q.Mode.Kind == VersionKind && q.Mode.Version != nil &&
			q.Mode.Version.Dimension(s.dims[pos].ID) != nil
		dices = append(dices, dice{dimPos: pos, names: names, static: static})
	}

	// skipShard consults the shard's zone map: a shard is skipped when
	// no tuple instant can fall in the queried range, or when a static
	// dice has an exact distinct-coordinate set none of whose members
	// passes. Both checks are conservative — a skipped shard provably
	// emits nothing — so pruning is invisible in the result bits.
	skipShard := func(sh *factShard, lookup *rollupCache) bool {
		if debugDisableZonePruning {
			return false
		}
		z := sh.zoneMap(mt.nd)
		if !z.overlapsTime(rng) {
			return true
		}
		for di := range dices {
			dc := &dices[di]
			if !dc.static || !z.hasDistinct(dc.dimPos) {
				continue
			}
			any := false
			for _, id := range z.dims[dc.dimPos].distinct {
				// The instant is irrelevant for a static dice.
				if lookup.diceContains(di, dc.dimPos, id, dc.names, rng.Start) {
					any = true
					break
				}
			}
			if !any {
				return true
			}
		}
		return false
	}

	// The scan splits into two phases. Classification — range and dice
	// filters, rollup to the grouping levels, building each (tuple,
	// combination) cell key — is the expensive part and carries no
	// cross-tuple state, so it fans out across contiguous shard ranges
	// of the columnar table, one rollup cache per worker, skipping
	// whole shards their zone maps disqualify. The fold below replays
	// the emissions partitioned by cell, preserving global tuple order
	// within every cell.
	// cellInfo is the per-worker interned identity of one result cell:
	// built on the worker's first sight of the key, shared by every
	// later emission of the same cell, so an emission is two words. The
	// globally first emission of a cell (the one the fold creates the
	// row from) carries the groups resolved at that first sight.
	type cellInfo struct {
		hash      uint32
		timeKey   string
		timeOrder int64
		key       string
		groups    []string
		groupIDs  []MVID
	}
	type cellEmit struct {
		tuple int
		cell  *cellInfo
	}
	type scanStats struct {
		shardsPruned int
		factsPruned  int
		scanned      int
	}
	classify := func(ctx context.Context, shardLo, shardHi int, lookup *rollupCache) ([]cellEmit, scanStats, error) {
		var out []cellEmit
		var stats scanStats
		perAxis := make([][]*MemberVersion, len(axes))
		combo := make([]int, len(axes))
		nd := mt.nd
		hasDead := mt.dead > 0
		buckets := make(map[temporal.Instant]bucketRef, 64)
		interned := make(map[string]*cellInfo, 64)
		var keyBuf []byte
		steps := 0
		for si := shardLo; si < shardHi; si++ {
			sh := mt.shards[si]
			if sh.n == 0 {
				continue
			}
			if skipShard(sh, lookup) {
				stats.shardsPruned++
				stats.factsPruned += sh.n
				continue
			}
			base := si << shardShift
			stats.scanned += sh.n
			// One grow per shard at most: emissions are ~1 per passing
			// tuple, so reserving the shard's tuple count keeps the
			// append loop below out of growslice.
			if need := len(out) + sh.n; need > cap(out) {
				grown := make([]cellEmit, len(out), need)
				copy(grown, out)
				out = grown
			}
			for j := 0; j < sh.n; j++ {
				if steps%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						return nil, stats, fmt.Errorf("core: query cancelled: %w", err)
					}
				}
				steps++
				if hasDead && sh.sources[j] == 0 {
					continue // tombstoned by a retraction
				}
				t := sh.times[j]
				if !rng.Contains(t) {
					continue
				}
				coords := sh.coords[j*nd : (j+1)*nd]
				pass := true
				for di := range dices {
					dc := &dices[di]
					if !lookup.diceContains(di, dc.dimPos, coords[dc.dimPos], dc.names, t) {
						pass = false
						break
					}
				}
				if !pass {
					continue
				}
				// Each axis may roll the fact up to several members
				// (multiple hierarchies); a fact contributes to every
				// combination.
				skip := false
				for ai, ax := range axes {
					ups := lookup.ancestorsAtLevel(ax.dimPos, coords[ax.dimPos], ax.level, t)
					if len(ups) == 0 {
						skip = true // non-covering hierarchy: no ancestor at the level
						break
					}
					perAxis[ai] = ups
				}
				if skip {
					continue
				}
				br, ok := buckets[t]
				if !ok {
					br.key, br.order = bucketOf(q.Grain, t)
					buckets[t] = br
				}
				for i := range combo {
					combo[i] = 0
				}
				for {
					keyBuf = append(keyBuf[:0], br.key...)
					keyBuf = append(keyBuf, '\x1e')
					for ai := range axes {
						if ai > 0 {
							keyBuf = append(keyBuf, '\x1f')
						}
						keyBuf = append(keyBuf, perAxis[ai][combo[ai]].DisplayName()...)
					}
					ci, ok := interned[string(keyBuf)] // no-alloc probe
					if !ok {
						key := string(keyBuf)
						groups := make([]string, len(axes))
						groupIDs := make([]MVID, len(axes))
						for ai := range axes {
							mv := perAxis[ai][combo[ai]]
							groups[ai] = mv.DisplayName()
							groupIDs[ai] = mv.ID
						}
						ci = &cellInfo{
							hash:      fnv32(key),
							timeKey:   br.key,
							timeOrder: br.order,
							key:       key,
							groups:    groups,
							groupIDs:  groupIDs,
						}
						interned[key] = ci
					}
					out = append(out, cellEmit{tuple: base + j, cell: ci})
					// Advance the combination counter.
					i := 0
					for ; i < len(combo); i++ {
						combo[i]++
						if combo[i] < len(perAxis[i]) {
							break
						}
						combo[i] = 0
					}
					if i == len(combo) {
						break
					}
				}
			}
		}
		return out, stats, nil
	}

	numShards := len(mt.shards)
	workers := s.materializeWorkers(mt.Len())
	if workers > numShards {
		workers = numShards
	}
	if workers < 1 {
		workers = 1
	}
	var emitChunks [][]cellEmit
	var total scanStats
	if workers <= 1 {
		emits, st, err := classify(ctx, 0, numShards, lookup)
		if err != nil {
			metQueryCancelled.Inc()
			return nil, err
		}
		total = st
		emitChunks = [][]cellEmit{emits}
	} else {
		emitChunks = make([][]cellEmit, workers)
		statsBy := make([]scanStats, workers)
		errs := make([]error, workers)
		chunk := (numShards + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, numShards)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				emitChunks[w], statsBy[w], errs[w] = classify(ctx, lo, hi, newRollupCache(s, q.Mode))
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				metQueryCancelled.Inc()
				return nil, err
			}
		}
		for _, st := range statsBy {
			total.shardsPruned += st.shardsPruned
			total.factsPruned += st.factsPruned
			total.scanned += st.scanned
		}
	}
	metShardsPruned.Add(int64(total.shardsPruned))
	metFactsPruned.Add(int64(total.factsPruned))
	metFactsScanned.Add(int64(total.scanned))

	// The fold — Accumulator.Add and ⊗cf per emission — is
	// order-dependent (float Sum is not associative): bit-identity
	// requires every cell to fold its emissions in global tuple order.
	// Order only matters *within* a cell, so the fold partitions by
	// cell — hash of the cell key modulo the fold worker count — and
	// each fold worker replays all chunks in chunk order, processing
	// only its own cells: the exact per-cell add sequence of a
	// sequential fold, bit-identical at any worker count. The final
	// sort is a total order over cells (equal sort keys imply the same
	// cell), so row order is independent of the partitioning too.
	type cellState struct {
		row  *Row
		accs []*Accumulator
		seen []bool
	}
	nm := mt.nm
	foldPartition := func(part, nparts int) []*Row {
		cells := make(map[string]*cellState, 64)
		order := make([]*cellState, 0, 64)
		for _, emits := range emitChunks {
			for i := range emits {
				e := &emits[i]
				ci := e.cell
				if nparts > 1 && ci.hash%uint32(nparts) != uint32(part) {
					continue
				}
				st, ok := cells[ci.key]
				if !ok {
					st = &cellState{
						row: &Row{
							TimeKey:   ci.timeKey,
							Groups:    ci.groups,
							GroupIDs:  ci.groupIDs,
							CFs:       make([]Confidence, len(mIdx)),
							timeOrder: ci.timeOrder,
						},
						accs: make([]*Accumulator, len(mIdx)),
						seen: make([]bool, len(mIdx)),
					}
					for k, mi := range mIdx {
						st.accs[k] = NewAccumulator(s.measures[mi].Agg)
					}
					cells[ci.key] = st
					order = append(order, st)
				}
				sh, j := mt.shardAt(e.tuple)
				for k, mi := range mIdx {
					st.accs[k].Add(sh.values[j*nm+mi])
					if !st.seen[k] {
						st.row.CFs[k] = sh.cfs[j*nm+mi]
						st.seen[k] = true
					} else {
						st.row.CFs[k] = s.alg.Combine(st.row.CFs[k], sh.cfs[j*nm+mi])
					}
				}
				st.row.N++
			}
		}
		rows := make([]*Row, len(order))
		for i, st := range order {
			st.row.Values = make([]float64, len(mIdx))
			for k := range mIdx {
				st.row.Values[k] = st.accs[k].Value()
			}
			rows[i] = st.row
		}
		return rows
	}

	res := &Result{MeasureNames: mNames, GroupNames: gNames, Mode: q.Mode, Dropped: mt.Dropped}
	if workers <= 1 {
		res.Rows = foldPartition(0, 1)
	} else {
		parts := make([][]*Row, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				parts[w] = foldPartition(w, workers)
			}(w)
		}
		wg.Wait()
		for _, p := range parts {
			res.Rows = append(res.Rows, p...)
		}
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		if a.timeOrder != b.timeOrder {
			return a.timeOrder < b.timeOrder
		}
		for k := range a.Groups {
			if a.Groups[k] != b.Groups[k] {
				return a.Groups[k] < b.Groups[k]
			}
		}
		return false
	})
	metQueryRows.Add(int64(len(res.Rows)))
	return res, nil
}

// fnv32 is FNV-1a over the cell key, used to partition cells across
// fold workers deterministically.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// debugDisableZonePruning turns zone-map shard skipping off. Test-only:
// the equivalence suites compute their reference results with pruning
// disabled. Must not be flipped while queries are in flight.
var debugDisableZonePruning bool

// ancKey memoizes ancestorsAtLevel per (member, level, resolved
// instant) without rendering a string key per probe.
type ancKey struct {
	id    MVID
	level string
	at    temporal.Instant
}

// diceKey memoizes a dice verdict per (member, resolved instant).
type diceKey struct {
	id MVID
	at temporal.Instant
}

// rollupCache resolves "ancestors of a leaf at a level" questions for a
// mode, caching per-instant level assignments.
type rollupCache struct {
	schema *Schema
	mode   Mode
	// diceMemo[diceIdx] caches pass/fail verdicts of one query filter:
	// whether a coordinate lies under any of the filter's named
	// members in the structure resolved at the given instant.
	diceMemo []map[diceKey]bool
}

func newRollupCache(s *Schema, m Mode) *rollupCache {
	return &rollupCache{schema: s, mode: m}
}

// diceContains is underAnyNamed memoized per query filter: the walk
// verdict for a coordinate depends only on the resolved (dimension,
// instant) pair, which repeats for every tuple of a month (tcm) or the
// whole table (version modes).
func (rc *rollupCache) diceContains(diceIdx, dimPos int, id MVID, names map[string]bool, t temporal.Instant) bool {
	d, at := rc.dimAndInstant(dimPos, t)
	for len(rc.diceMemo) <= diceIdx {
		rc.diceMemo = append(rc.diceMemo, nil)
	}
	m := rc.diceMemo[diceIdx]
	if m == nil {
		m = make(map[diceKey]bool)
		rc.diceMemo[diceIdx] = m
	}
	k := diceKey{id: id, at: at}
	if v, ok := m[k]; ok {
		return v
	}
	v := underAnyNamedIn(d, at, id, names)
	m[k] = v
	return v
}

// dimAndInstant picks the graph to roll up in: the structure version's
// restricted dimension (static) in a version mode, D(t) in tcm.
func (rc *rollupCache) dimAndInstant(dimPos int, t temporal.Instant) (*Dimension, temporal.Instant) {
	d := rc.schema.dims[dimPos]
	if rc.mode.Kind == VersionKind && rc.mode.Version != nil {
		rd := rc.mode.Version.Dimension(d.ID)
		if rd != nil {
			return rd, rc.mode.Version.Valid.Start
		}
	}
	return d, t
}

// ancestorsAtLevel returns the member versions at the named level that
// are reachable upward from id (including id itself when it sits at the
// level). It delegates straight to the dimension's shared derived
// cache — which survives clone swaps — so repeated queries over the
// same dimension value pay the rollup walk only once process-wide.
func (rc *rollupCache) ancestorsAtLevel(dimPos int, id MVID, level string, t temporal.Instant) []*MemberVersion {
	d, at := rc.dimAndInstant(dimPos, t)
	return d.ancestorsAtLevel(id, level, at)
}

// underAnyNamed reports whether id or any of its ancestors in the
// mode's structure carries one of the display names.
func (rc *rollupCache) underAnyNamed(dimPos int, id MVID, names map[string]bool, t temporal.Instant) bool {
	d, at := rc.dimAndInstant(dimPos, t)
	return underAnyNamedIn(d, at, id, names)
}

// underAnyNamedIn walks upward from id in the given dimension structure
// at the given instant, looking for any of the display names.
func underAnyNamedIn(d *Dimension, at temporal.Instant, id MVID, names map[string]bool) bool {
	seen := make(map[MVID]bool)
	var walk func(cur MVID) bool
	walk = func(cur MVID) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		mv := d.Version(cur)
		if mv == nil {
			return false
		}
		if names[mv.DisplayName()] {
			return true
		}
		for _, p := range d.ParentsAt(cur, at) {
			if walk(p.ID) {
				return true
			}
		}
		return false
	}
	return walk(id)
}

// FormatValue renders a measure value, with unknown (NaN) shown as "?".
func FormatValue(v float64) string {
	if math.IsNaN(v) {
		return "?"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
