package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"mvolap/internal/obs"
	"mvolap/internal/temporal"
)

// TimeGrain selects how fact instants are bucketed on the time axis of a
// query result.
type TimeGrain uint8

// Supported time grains.
const (
	// GrainAll folds the whole queried range into a single bucket.
	GrainAll TimeGrain = iota
	// GrainYear buckets by calendar year, the grain of the paper's
	// case-study queries.
	GrainYear
	// GrainQuarter buckets by calendar quarter.
	GrainQuarter
	// GrainMonth keeps the native month grain.
	GrainMonth
)

// String names the grain.
func (g TimeGrain) String() string {
	switch g {
	case GrainAll:
		return "all"
	case GrainYear:
		return "year"
	case GrainQuarter:
		return "quarter"
	case GrainMonth:
		return "month"
	}
	return fmt.Sprintf("TimeGrain(%d)", uint8(g))
}

func bucketOf(g TimeGrain, t temporal.Instant) (key string, order int64) {
	switch g {
	case GrainYear:
		return fmt.Sprintf("%d", t.YearOf()), int64(t.YearOf())
	case GrainQuarter:
		q := (t.MonthOf()-1)/3 + 1
		return fmt.Sprintf("Q%d/%d", q, t.YearOf()), int64(t.YearOf())*4 + int64(q)
	case GrainMonth:
		return t.String(), int64(t)
	default:
		return "all", 0
	}
}

// GroupBy names a grouping axis: a dimension and one of its levels
// (explicit tag or "depth-N" for derived levels).
type GroupBy struct {
	Dim   DimID
	Level string
}

// Filter restricts one dimension to facts lying under the named
// members: a fact passes when its (mode-mapped) coordinate in the
// dimension is one of the named members or has one as an ancestor in
// the mode's structure. Names are display names. This is the engine
// form of the OLAP slice (one name) and dice (several) operators.
type Filter struct {
	Dim     DimID
	Members []string
}

// Query is a multidimensional request against the MultiVersion Fact
// Table: which measures to aggregate, how to group members and time, the
// time range, and crucially the Temporal Mode of Presentation in which
// the user wants the data presented (Definition 10).
type Query struct {
	// Measures selects measures by name; empty means all.
	Measures []string
	// GroupBy lists the grouping axes; empty yields a grand total.
	GroupBy []GroupBy
	// Grain buckets the time axis.
	Grain TimeGrain
	// Range restricts fact instants; the zero interval means all time.
	Range temporal.Interval
	// Filters dice dimensions to members (and their descendants).
	Filters []Filter
	// Mode is the temporal mode of presentation.
	Mode Mode
}

// Row is one line of a query result.
type Row struct {
	// TimeKey is the rendered time bucket ("2001", "Q2/2002", ...).
	TimeKey string
	// Groups holds the display names of the grouping members, aligned
	// with Query.GroupBy.
	Groups []string
	// GroupIDs holds the member version IDs behind Groups.
	GroupIDs []MVID
	// Values holds one aggregate per selected measure; NaN marks a value
	// whose mapping is unknown.
	Values []float64
	// CFs holds the combined confidence factor per value.
	CFs []Confidence
	// N counts the mapped tuples folded into the row.
	N int

	timeOrder int64
}

// Result is a query result: a header plus sorted rows.
type Result struct {
	// MeasureNames are the selected measures in output order.
	MeasureNames []string
	// GroupNames are the grouping level names in output order.
	GroupNames []string
	// Mode echoes the query's temporal mode of presentation.
	Mode Mode
	// Rows are sorted by time bucket, then group names.
	Rows []*Row
	// Dropped counts source facts not presentable in the mode.
	Dropped int
}

// Execute runs the query against the schema's MultiVersion Fact Table,
// performing Definition 12 data aggregation: measures fold under their
// aggregate function ⊕, confidence factors under ⊗cf, and rollup to the
// requested levels follows the temporal relationships of the mode's
// structure (the structure version's graph in a version mode, D(t) at
// each fact's instant in tcm).
func (s *Schema) Execute(q Query) (*Result, error) {
	return s.ExecuteContext(context.Background(), q)
}

// ExecuteContext is Execute with cancellation and tracing: the
// materialization and aggregation stages check ctx inside their
// per-fact loops (so a client disconnect or deadline stops work
// promptly), and when ctx carries an obs trace the two stages record
// "materialize" and "aggregate" spans with fact and row counts.
func (s *Schema) ExecuteContext(ctx context.Context, q Query) (*Result, error) {
	mctx, msp := obs.StartSpan(ctx, "materialize")
	msp.SetAttr("mode", q.Mode.String())
	mt, cached, err := s.MultiVersion().modeContext(mctx, q.Mode)
	if err == nil {
		msp.SetAttr("cached", cached)
		msp.SetAttr("facts", mt.Len())
		msp.SetAttr("dropped", mt.Dropped)
	}
	msp.End()
	if err != nil {
		return nil, err
	}
	actx, asp := obs.StartSpan(ctx, "aggregate")
	res, err := s.executeOn(actx, mt, q)
	if err == nil {
		asp.SetAttr("rows", len(res.Rows))
	}
	asp.End()
	return res, err
}

func (s *Schema) executeOn(ctx context.Context, mt *MappedTable, q Query) (*Result, error) {
	// Resolve measure selection.
	mIdx := make([]int, 0, len(s.measures))
	var mNames []string
	if len(q.Measures) == 0 {
		for i, m := range s.measures {
			mIdx = append(mIdx, i)
			mNames = append(mNames, m.Name)
		}
	} else {
		for _, name := range q.Measures {
			i := s.MeasureIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("core: unknown measure %q", name)
			}
			mIdx = append(mIdx, i)
			mNames = append(mNames, name)
		}
	}
	// Resolve grouping dimensions.
	type axis struct {
		dimPos int
		level  string
	}
	axes := make([]axis, 0, len(q.GroupBy))
	var gNames []string
	for _, g := range q.GroupBy {
		pos := s.DimIndex(g.Dim)
		if pos < 0 {
			return nil, fmt.Errorf("core: unknown dimension %q", g.Dim)
		}
		axes = append(axes, axis{dimPos: pos, level: g.Level})
		gNames = append(gNames, fmt.Sprintf("%s.%s", s.dims[pos].Name, g.Level))
	}

	rng := q.Range
	if rng == (temporal.Interval{}) {
		rng = temporal.Always
	}

	lookup := newRollupCache(s, q.Mode)

	type dice struct {
		dimPos int
		names  map[string]bool
	}
	dices := make([]dice, 0, len(q.Filters))
	for _, f := range q.Filters {
		pos := s.DimIndex(f.Dim)
		if pos < 0 {
			return nil, fmt.Errorf("core: unknown dimension %q in filter", f.Dim)
		}
		names := make(map[string]bool, len(f.Members))
		for _, n := range f.Members {
			names[n] = true
		}
		dices = append(dices, dice{dimPos: pos, names: names})
	}

	// The scan splits into two phases. Classification — range and dice
	// filters, rollup to the grouping levels, building each (tuple,
	// combination) cell key — is the expensive part and carries no
	// cross-tuple state, so it fans out across contiguous tuple ranges
	// of the columnar shards, one rollup cache per worker. The fold —
	// Accumulator.Add and ⊗cf per emission — is cheap but
	// order-dependent (float Sum is not associative), so it replays the
	// emissions sequentially in global tuple order: the exact add
	// sequence of a sequential scan, bit-identical for any worker count.
	type cellEmit struct {
		tuple     int
		timeKey   string
		timeOrder int64
		key       string
		groups    []string
		groupIDs  []MVID
	}
	classify := func(ctx context.Context, lo, hi int, lookup *rollupCache) ([]cellEmit, error) {
		var out []cellEmit
		perAxis := make([][]*MemberVersion, len(axes))
		combo := make([]int, len(axes))
		nd := mt.nd
		for fi := lo; fi < hi; fi++ {
			if (fi-lo)%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("core: query cancelled: %w", err)
				}
			}
			sh, j := mt.shardAt(fi)
			t := sh.times[j]
			if !rng.Contains(t) {
				continue
			}
			coords := sh.coords[j*nd : (j+1)*nd]
			timeKey, timeOrder := bucketOf(q.Grain, t)
			pass := true
			for _, dc := range dices {
				if !lookup.underAnyNamed(dc.dimPos, coords[dc.dimPos], dc.names, t) {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			// Each axis may roll the fact up to several members (multiple
			// hierarchies); a fact contributes to every combination.
			skip := false
			for ai, ax := range axes {
				ups := lookup.ancestorsAtLevel(ax.dimPos, coords[ax.dimPos], ax.level, t)
				if len(ups) == 0 {
					skip = true // non-covering hierarchy: no ancestor at the level
					break
				}
				perAxis[ai] = ups
			}
			if skip {
				continue
			}
			for i := range combo {
				combo[i] = 0
			}
			for {
				groups := make([]string, len(axes))
				groupIDs := make([]MVID, len(axes))
				for ai := range axes {
					mv := perAxis[ai][combo[ai]]
					groups[ai] = mv.DisplayName()
					groupIDs[ai] = mv.ID
				}
				out = append(out, cellEmit{
					tuple:     fi,
					timeKey:   timeKey,
					timeOrder: timeOrder,
					key:       timeKey + "\x1e" + strings.Join(groups, "\x1f"),
					groups:    groups,
					groupIDs:  groupIDs,
				})
				// Advance the combination counter.
				i := 0
				for ; i < len(combo); i++ {
					combo[i]++
					if combo[i] < len(perAxis[i]) {
						break
					}
					combo[i] = 0
				}
				if i == len(combo) {
					break
				}
			}
		}
		return out, nil
	}

	workers := s.materializeWorkers(mt.Len())
	var emitChunks [][]cellEmit
	if workers <= 1 {
		emits, err := classify(ctx, 0, mt.Len(), lookup)
		if err != nil {
			metQueryCancelled.Inc()
			return nil, err
		}
		emitChunks = [][]cellEmit{emits}
	} else {
		emitChunks = make([][]cellEmit, workers)
		errs := make([]error, workers)
		chunk := (mt.Len() + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, mt.Len())
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				emitChunks[w], errs[w] = classify(ctx, lo, hi, newRollupCache(s, q.Mode))
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				metQueryCancelled.Inc()
				return nil, err
			}
		}
	}

	type cellState struct {
		row  *Row
		accs []*Accumulator
		seen []bool
	}
	cells := make(map[string]*cellState)
	var order []string
	nm := mt.nm
	for _, emits := range emitChunks {
		for i := range emits {
			e := &emits[i]
			st, ok := cells[e.key]
			if !ok {
				st = &cellState{
					row: &Row{
						TimeKey:   e.timeKey,
						Groups:    e.groups,
						GroupIDs:  e.groupIDs,
						CFs:       make([]Confidence, len(mIdx)),
						timeOrder: e.timeOrder,
					},
					accs: make([]*Accumulator, len(mIdx)),
					seen: make([]bool, len(mIdx)),
				}
				for k, mi := range mIdx {
					st.accs[k] = NewAccumulator(s.measures[mi].Agg)
				}
				cells[e.key] = st
				order = append(order, e.key)
			}
			sh, j := mt.shardAt(e.tuple)
			for k, mi := range mIdx {
				st.accs[k].Add(sh.values[j*nm+mi])
				if !st.seen[k] {
					st.row.CFs[k] = sh.cfs[j*nm+mi]
					st.seen[k] = true
				} else {
					st.row.CFs[k] = s.alg.Combine(st.row.CFs[k], sh.cfs[j*nm+mi])
				}
			}
			st.row.N++
		}
	}

	metFactsScanned.Add(int64(mt.Len()))
	res := &Result{MeasureNames: mNames, GroupNames: gNames, Mode: q.Mode, Dropped: mt.Dropped}
	for _, key := range order {
		st := cells[key]
		st.row.Values = make([]float64, len(mIdx))
		for k := range mIdx {
			st.row.Values[k] = st.accs[k].Value()
		}
		res.Rows = append(res.Rows, st.row)
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		if a.timeOrder != b.timeOrder {
			return a.timeOrder < b.timeOrder
		}
		for k := range a.Groups {
			if a.Groups[k] != b.Groups[k] {
				return a.Groups[k] < b.Groups[k]
			}
		}
		return false
	})
	metQueryRows.Add(int64(len(res.Rows)))
	return res, nil
}

// rollupCache resolves "ancestors of a leaf at a level" questions for a
// mode, caching per-instant level assignments.
type rollupCache struct {
	schema *Schema
	mode   Mode
	// levels[dimPos][instant] maps member version -> level name.
	levels []map[temporal.Instant]map[MVID]string
	// memo[dimPos][key] caches ancestor sets.
	memo []map[string][]*MemberVersion
}

func newRollupCache(s *Schema, m Mode) *rollupCache {
	rc := &rollupCache{
		schema: s,
		mode:   m,
		levels: make([]map[temporal.Instant]map[MVID]string, len(s.dims)),
		memo:   make([]map[string][]*MemberVersion, len(s.dims)),
	}
	for i := range rc.levels {
		rc.levels[i] = make(map[temporal.Instant]map[MVID]string)
		rc.memo[i] = make(map[string][]*MemberVersion)
	}
	return rc
}

// dimAndInstant picks the graph to roll up in: the structure version's
// restricted dimension (static) in a version mode, D(t) in tcm.
func (rc *rollupCache) dimAndInstant(dimPos int, t temporal.Instant) (*Dimension, temporal.Instant) {
	d := rc.schema.dims[dimPos]
	if rc.mode.Kind == VersionKind && rc.mode.Version != nil {
		rd := rc.mode.Version.Dimension(d.ID)
		if rd != nil {
			return rd, rc.mode.Version.Valid.Start
		}
	}
	return d, t
}

func (rc *rollupCache) levelMap(dimPos int, d *Dimension, t temporal.Instant) map[MVID]string {
	if m, ok := rc.levels[dimPos][t]; ok {
		return m
	}
	m := make(map[MVID]string)
	for _, l := range d.LevelsAt(t) {
		for _, mv := range l.Members {
			m[mv.ID] = l.Name
		}
	}
	rc.levels[dimPos][t] = m
	return m
}

// ancestorsAtLevel returns the member versions at the named level that
// are reachable upward from id (including id itself when it sits at the
// level).
func (rc *rollupCache) ancestorsAtLevel(dimPos int, id MVID, level string, t temporal.Instant) []*MemberVersion {
	d, at := rc.dimAndInstant(dimPos, t)
	key := fmt.Sprintf("%s\x1f%s\x1f%d", id, level, int64(at))
	if v, ok := rc.memo[dimPos][key]; ok {
		return v
	}
	lm := rc.levelMap(dimPos, d, at)
	var out []*MemberVersion
	seen := make(map[MVID]bool)
	var walk func(cur MVID)
	walk = func(cur MVID) {
		if seen[cur] {
			return
		}
		seen[cur] = true
		if lm[cur] == level {
			if mv := d.Version(cur); mv != nil {
				out = append(out, mv)
			}
			return
		}
		for _, p := range d.ParentsAt(cur, at) {
			walk(p.ID)
		}
	}
	walk(id)
	rc.memo[dimPos][key] = out
	return out
}

// underAnyNamed reports whether id or any of its ancestors in the
// mode's structure carries one of the display names.
func (rc *rollupCache) underAnyNamed(dimPos int, id MVID, names map[string]bool, t temporal.Instant) bool {
	d, at := rc.dimAndInstant(dimPos, t)
	seen := make(map[MVID]bool)
	var walk func(cur MVID) bool
	walk = func(cur MVID) bool {
		if seen[cur] {
			return false
		}
		seen[cur] = true
		mv := d.Version(cur)
		if mv == nil {
			return false
		}
		if names[mv.DisplayName()] {
			return true
		}
		for _, p := range d.ParentsAt(cur, at) {
			if walk(p.ID) {
				return true
			}
		}
		return false
	}
	return walk(id)
}

// FormatValue renders a measure value, with unknown (NaN) shown as "?".
func FormatValue(v float64) string {
	if math.IsNaN(v) {
		return "?"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
