package core

import (
	"context"
	"math"
	"testing"
)

// TestUnfoldPair pins the invertibility rules measure by measure: when
// a contribution can be taken back out of a folded cell exactly, and
// when the fold must refuse (ok=false → per-mode eviction).
func TestUnfoldPair(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name     string
		kind     AggKind
		x        float64
		avgc     int32
		v        float64
		wantV    float64
		wantC    int32
		wantOK   bool
		wantNaNV bool
	}{
		// Sum: subtraction, except where a non-NaN survivor cannot be proven.
		{name: "sum subtract", kind: Sum, x: 30, v: 20, wantV: 10, wantOK: true},
		{name: "sum nan contribution is a no-op", kind: Sum, x: 30, v: nan, wantV: 30, wantOK: true},
		{name: "sum nan cell refuses", kind: Sum, x: nan, v: 5, wantOK: false},
		{name: "sum equal value refuses", kind: Sum, x: 20, v: 20, wantOK: false},
		{name: "sum negative contribution", kind: Sum, x: 10, v: -5, wantV: 15, wantOK: true},

		// Count: NaN folding resets the total to 1, so any NaN
		// involvement — or the ambiguous value 1 itself — refuses.
		{name: "count subtract", kind: Count, x: 3, v: 1, wantV: 2, wantOK: true},
		{name: "count nan contribution refuses", kind: Count, x: 3, v: nan, wantOK: false},
		{name: "count nan cell refuses", kind: Count, x: nan, v: 1, wantOK: false},
		{name: "count at reset value refuses", kind: Count, x: 1, v: 1, wantOK: false},
		{name: "count equal value refuses", kind: Count, x: 2, v: 2, wantOK: false},

		// Avg: contribution counts make the mean invertible.
		{name: "avg subtract", kind: Avg, x: 5, avgc: 2, v: 6, wantV: 4, wantC: 1, wantOK: true},
		{name: "avg nan contribution is a no-op", kind: Avg, x: 5, avgc: 2, v: nan, wantV: 5, wantC: 2, wantOK: true},
		{name: "avg nan cell refuses", kind: Avg, x: nan, avgc: 0, v: 3, wantOK: false},
		{name: "avg zero count refuses", kind: Avg, x: 5, avgc: 0, v: 5, wantOK: false},
		{name: "avg last contribution reverts to absent", kind: Avg, x: 6, avgc: 1, v: 6, wantC: 0, wantOK: true, wantNaNV: true},
		{name: "avg last contribution mismatch refuses", kind: Avg, x: 6, avgc: 1, v: 7, wantOK: false},

		// Min/Max: folding is lossy, never invertible.
		{name: "min refuses", kind: Min, x: 3, v: 5, wantOK: false},
		{name: "max refuses", kind: Max, x: 5, v: 3, wantOK: false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gotV, gotC, ok := unfoldPair(c.kind, c.x, c.avgc, c.v)
			if ok != c.wantOK {
				t.Fatalf("ok = %v, want %v", ok, c.wantOK)
			}
			if !ok {
				return // cell state is discarded on refusal
			}
			if c.wantNaNV {
				if !math.IsNaN(gotV) {
					t.Fatalf("value = %v, want NaN", gotV)
				}
			} else if gotV != c.wantV {
				t.Fatalf("value = %v, want %v", gotV, c.wantV)
			}
			if gotC != c.wantC {
				t.Fatalf("count = %d, want %d", gotC, c.wantC)
			}
		})
	}
}

// TestUnfoldInvertsFold is the algebraic property behind the fast
// path: for integer-valued contributions (exact float64 arithmetic),
// unfoldPair(fold(x, v), v) returns x bit-for-bit for every invertible
// aggregate.
func TestUnfoldInvertsFold(t *testing.T) {
	for x := float64(2); x < 40; x += 3 {
		for v := float64(1); v < 30; v += 2 {
			if got := foldPair(Sum, x, v); true {
				back, _, ok := unfoldPair(Sum, got, 0, v)
				if !ok || math.Float64bits(back) != math.Float64bits(x) {
					t.Fatalf("sum: unfold(fold(%v,%v)) = %v, %v", x, v, back, ok)
				}
			}
			mean, n := foldAvg(x, 1, v)
			back, c, ok := unfoldPair(Avg, mean, n, v)
			if !ok || c != 1 || math.Float64bits(back) != math.Float64bits(x) {
				t.Fatalf("avg: unfold(fold(%v,%v)) = %v n=%d, %v", x, v, back, c, ok)
			}
		}
	}
}

// TestFactTableRetract covers the source-of-truth side: retraction
// removes exactly the addressed tuple, preserves the order of the
// survivors, stays lookup-consistent, and misses report an error
// without mutating anything.
func TestFactTableRetract(t *testing.T) {
	s := orgSchema(t)
	for _, f := range []struct {
		id  MVID
		yr  int
		amt float64
	}{
		{"Smith", 2001, 50}, {"Brian", 2001, 100}, {"Smith", 2002, 70},
	} {
		if err := s.InsertFact(Coords{f.id}, y(f.yr), f.amt); err != nil {
			t.Fatal(err)
		}
	}

	// Miss: unknown coordinates and wrong instants change nothing.
	if _, err := s.RetractFact(Coords{"Smith"}, y(2005)); err == nil {
		t.Fatal("retracting a nonexistent tuple must fail")
	}
	if _, err := s.RetractFact(Coords{"zzz"}, y(2001)); err == nil {
		t.Fatal("retracting unknown coordinates must fail")
	}
	if s.Facts().Len() != 3 {
		t.Fatalf("failed retraction mutated the table: %d facts", s.Facts().Len())
	}

	old, err := s.RetractFact(Coords{"Brian"}, y(2001))
	if err != nil {
		t.Fatal(err)
	}
	if old.Values[0] != 100 {
		t.Fatalf("retraction returned %+v, want the old tuple", old)
	}
	facts := s.Facts().Facts()
	if len(facts) != 2 {
		t.Fatalf("%d facts after retraction, want 2", len(facts))
	}
	if !facts[0].Coords.Equal(Coords{"Smith"}) || facts[0].Time != y(2001) ||
		!facts[1].Coords.Equal(Coords{"Smith"}) || facts[1].Time != y(2002) {
		t.Fatalf("survivor order broken: %v", facts)
	}
	if _, ok := s.Facts().Lookup(Coords{"Brian"}, y(2001)); ok {
		t.Fatal("retracted tuple still resolvable")
	}
	if vals, ok := s.Facts().Lookup(Coords{"Smith"}, y(2002)); !ok || vals[0] != 70 {
		t.Fatal("survivor lookup broken after reindex")
	}

	// Re-inserting the retracted coordinates is an append, not a merge.
	if err := s.InsertFact(Coords{"Brian"}, y(2001), 33); err != nil {
		t.Fatal(err)
	}
	if vals, ok := s.Facts().Lookup(Coords{"Brian"}, y(2001)); !ok || vals[0] != 33 {
		t.Fatal("re-insert after retraction broken")
	}
}

// TestRetractFromClone pins the copy-on-write contract: retracting on
// a clone must leave the source table untouched, including its index.
func TestRetractFromClone(t *testing.T) {
	s := orgSchema(t)
	if err := s.InsertFact(Coords{"Smith"}, y(2001), 50); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Brian"}, y(2001), 100); err != nil {
		t.Fatal(err)
	}
	clone := s.Clone()
	if _, err := clone.RetractFact(Coords{"Smith"}, y(2001)); err != nil {
		t.Fatal(err)
	}
	if clone.Facts().Len() != 1 {
		t.Fatalf("clone has %d facts, want 1", clone.Facts().Len())
	}
	if s.Facts().Len() != 2 {
		t.Fatalf("retraction on the clone leaked into the source: %d facts", s.Facts().Len())
	}
	if _, ok := s.Facts().Lookup(Coords{"Smith"}, y(2001)); !ok {
		t.Fatal("source lost the retracted tuple")
	}
}

// TestTombstoneZoneRebuild: tombstoning every tuple of a shard must
// leave its zone map empty — pruned by every scan — and a partially
// tombstoned shard's zone must shrink to the survivors' envelope.
func TestTombstoneZoneRebuild(t *testing.T) {
	s := orgSchema(t)
	if err := s.InsertFact(Coords{"Smith"}, y(2001), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertFact(Coords{"Smith"}, y(2002), 2); err != nil {
		t.Fatal(err)
	}
	mt, err := s.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	out := mt.cloneForWarm(TCM(), s.alg, s.measures)
	if !s.retractInto(context.Background(), out, TCM(), []*Fact{s.Facts().Facts()[1]}) {
		t.Fatal("tcm retraction must always be absorbable")
	}
	if out.Len() != 1 {
		t.Fatalf("Len = %d after tombstone, want 1", out.Len())
	}
	sh := out.shards[0]
	z := sh.zone.Load()
	if z == nil {
		t.Fatal("touched shard was not re-sealed")
	}
	if z.minTime != y(2001) || z.maxTime != y(2001) {
		t.Fatalf("zone envelope [%v, %v], want the survivor's instant", z.minTime, z.maxTime)
	}
	// Tombstone the survivor too: the zone must become empty.
	if !s.retractInto(context.Background(), out, TCM(), []*Fact{s.Facts().Facts()[0]}) {
		t.Fatal("second tcm retraction refused")
	}
	if out.Len() != 0 {
		t.Fatalf("Len = %d, want 0", out.Len())
	}
	z = sh.zone.Load()
	if z == nil || z.minTime <= z.maxTime {
		t.Fatalf("fully tombstoned shard zone = %+v, want empty envelope", z)
	}
}
