package core

import (
	"strings"
	"testing"

	"mvolap/internal/temporal"
)

func y(year int) temporal.Instant   { return temporal.Year(year) }
func ym(yr, m int) temporal.Instant { return temporal.YM(yr, m) }

// buildOrg replicates the case-study Org dimension inside the package
// (the casestudy package cannot be imported here without a cycle in
// white-box tests).
func buildOrg(t testing.TB) *Dimension {
	t.Helper()
	d := NewDimension("Org", "Org")
	add := func(id MVID, level string, valid temporal.Interval) {
		if err := d.AddVersion(&MemberVersion{ID: id, Member: string(id), Level: level, Valid: valid}); err != nil {
			t.Fatal(err)
		}
	}
	add("Sales", "Division", temporal.Since(y(2001)))
	add("R&D", "Division", temporal.Since(y(2001)))
	add("Jones", "Department", temporal.Between(y(2001), ym(2002, 12)))
	add("Smith", "Department", temporal.Since(y(2001)))
	add("Brian", "Department", temporal.Since(y(2001)))
	add("Bill", "Department", temporal.Since(y(2003)))
	add("Paul", "Department", temporal.Since(y(2003)))
	rels := []TemporalRelationship{
		{From: "Jones", To: "Sales", Valid: temporal.Between(y(2001), ym(2002, 12))},
		{From: "Smith", To: "Sales", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{From: "Smith", To: "R&D", Valid: temporal.Since(y(2002))},
		{From: "Brian", To: "R&D", Valid: temporal.Since(y(2001))},
		{From: "Bill", To: "Sales", Valid: temporal.Since(y(2003))},
		{From: "Paul", To: "Sales", Valid: temporal.Since(y(2003))},
	}
	for _, r := range rels {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func names(mvs []*MemberVersion) []string {
	out := make([]string, len(mvs))
	for i, mv := range mvs {
		out[i] = string(mv.ID)
	}
	return out
}

func TestDimensionSnapshots(t *testing.T) {
	d := buildOrg(t)
	// Table 1: the organization in 2001.
	if got := names(d.LeavesAt(y(2001))); strings.Join(got, ",") != "Jones,Smith,Brian" {
		t.Errorf("2001 leaves = %v", got)
	}
	parents := d.ParentsAt("Smith", y(2001))
	if len(parents) != 1 || parents[0].ID != "Sales" {
		t.Errorf("Smith's 2001 parent = %v", names(parents))
	}
	// Table 2: Smith reclassified under R&D in 2002.
	parents = d.ParentsAt("Smith", y(2002))
	if len(parents) != 1 || parents[0].ID != "R&D" {
		t.Errorf("Smith's 2002 parent = %v", names(parents))
	}
	// Table 7: 2003 has Bill and Paul, no Jones.
	if got := names(d.LeavesAt(y(2003))); strings.Join(got, ",") != "Smith,Brian,Bill,Paul" {
		t.Errorf("2003 leaves = %v", got)
	}
	if mv := d.Version("Jones"); mv.ValidAt(y(2003)) {
		t.Error("Jones must not be valid in 2003")
	}
}

func TestAddVersionErrors(t *testing.T) {
	d := NewDimension("D", "D")
	if err := d.AddVersion(&MemberVersion{ID: "", Valid: temporal.Always}); err == nil {
		t.Error("empty ID must be rejected")
	}
	if err := d.AddVersion(&MemberVersion{ID: "a", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddVersion(&MemberVersion{ID: "a", Valid: temporal.Always}); err == nil {
		t.Error("duplicate ID must be rejected")
	}
	if err := d.AddVersion(&MemberVersion{ID: "b", Valid: temporal.Between(y(2002), y(2001))}); err == nil {
		t.Error("empty validity must be rejected")
	}
}

func TestAddRelationshipErrors(t *testing.T) {
	d := NewDimension("D", "D")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.AddVersion(&MemberVersion{ID: "child", Valid: temporal.Between(y(2001), ym(2002, 12))}))
	must(d.AddVersion(&MemberVersion{ID: "parent", Valid: temporal.Between(y(2002), ym(2003, 12))}))

	cases := []struct {
		name string
		rel  TemporalRelationship
	}{
		{"unknown child", TemporalRelationship{From: "x", To: "parent", Valid: temporal.Between(y(2002), ym(2002, 12))}},
		{"unknown parent", TemporalRelationship{From: "child", To: "y", Valid: temporal.Between(y(2002), ym(2002, 12))}},
		{"self loop", TemporalRelationship{From: "child", To: "child", Valid: temporal.Between(y(2002), ym(2002, 12))}},
		{"empty validity", TemporalRelationship{From: "child", To: "parent", Valid: temporal.Between(y(2003), y(2002))}},
		// Definition 2: valid time must lie within the intersection
		// [01/2002, 12/2002] of the members' validities.
		{"exceeds intersection", TemporalRelationship{From: "child", To: "parent", Valid: temporal.Between(y(2001), ym(2002, 12))}},
	}
	for _, c := range cases {
		if err := d.AddRelationship(c.rel); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	ok := TemporalRelationship{From: "child", To: "parent", Valid: temporal.Between(y(2002), ym(2002, 12))}
	if err := d.AddRelationship(ok); err != nil {
		t.Errorf("valid relationship rejected: %v", err)
	}
}

func TestLeafVersions(t *testing.T) {
	d := buildOrg(t)
	leaves := names(d.LeafVersions())
	want := map[string]bool{"Jones": true, "Smith": true, "Brian": true, "Bill": true, "Paul": true}
	if len(leaves) != len(want) {
		t.Fatalf("leaf versions = %v", leaves)
	}
	for _, l := range leaves {
		if !want[l] {
			t.Errorf("unexpected leaf %q", l)
		}
	}
	if d.IsLeafVersion("Sales") {
		t.Error("Sales has children at all instants; not a leaf version")
	}
	if d.IsLeafVersion("nope") {
		t.Error("unknown ID cannot be a leaf version")
	}
}

// TestLeafVersionTemporalSubtlety: a member with children at one instant
// but none at another is still a Leaf Member Version per the paper
// ("no children at, at least, one instant").
func TestLeafVersionTemporalSubtlety(t *testing.T) {
	d := NewDimension("D", "D")
	for _, v := range []*MemberVersion{
		{ID: "p", Valid: temporal.Since(y(2001))},
		{ID: "c", Valid: temporal.Between(y(2001), ym(2001, 12))},
	} {
		if err := d.AddVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(TemporalRelationship{From: "c", To: "p", Valid: temporal.Between(y(2001), ym(2001, 12))}); err != nil {
		t.Fatal(err)
	}
	if !d.IsLeafVersion("p") {
		t.Error("p is childless from 2002 on; it must be a leaf version")
	}
	if !d.IsLeafVersion("c") {
		t.Error("c never has children; it must be a leaf version")
	}
}

func TestExplicitLevels(t *testing.T) {
	d := buildOrg(t)
	if !d.HasExplicitLevels() {
		t.Fatal("Org carries explicit level tags")
	}
	levels := d.LevelsAt(y(2001))
	if len(levels) != 2 {
		t.Fatalf("got %d levels, want 2", len(levels))
	}
	if levels[0].Name != "Division" || levels[1].Name != "Department" {
		t.Errorf("level order = %s, %s; want Division, Department", levels[0].Name, levels[1].Name)
	}
	if len(levels[0].Members) != 2 || len(levels[1].Members) != 3 {
		t.Errorf("level sizes = %d, %d; want 2, 3", len(levels[0].Members), len(levels[1].Members))
	}
	if got := d.LevelOf("Smith", y(2001)); got != "Department" {
		t.Errorf("LevelOf(Smith) = %q", got)
	}
	if got := d.LevelOf("Smith", y(1999)); got != "" {
		t.Errorf("LevelOf before validity = %q", got)
	}
	if ms := d.MembersOfLevelAt("Division", y(2003)); len(ms) != 2 {
		t.Errorf("divisions in 2003 = %v", names(ms))
	}
	if ms := d.MembersOfLevelAt("Nope", y(2003)); ms != nil {
		t.Errorf("unknown level returned %v", names(ms))
	}
}

func TestDerivedLevels(t *testing.T) {
	// Same structure without level tags: levels fall back to DAG depth
	// (Definition 4, second strategy).
	d := NewDimension("D", "D")
	for _, id := range []MVID{"root", "mid", "leaf1", "leaf2"} {
		if err := d.AddVersion(&MemberVersion{ID: id, Valid: temporal.Always}); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "mid", To: "root", Valid: temporal.Always},
		{From: "leaf1", To: "mid", Valid: temporal.Always},
		{From: "leaf2", To: "mid", Valid: temporal.Always},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	if d.HasExplicitLevels() {
		t.Fatal("no explicit levels expected")
	}
	levels := d.LevelsAt(y(2001))
	if len(levels) != 3 {
		t.Fatalf("got %d depth levels, want 3", len(levels))
	}
	if levels[0].Name != "depth-0" || levels[2].Name != "depth-2" {
		t.Errorf("level names = %v, %v", levels[0].Name, levels[2].Name)
	}
	if got := d.LevelOf("leaf1", y(2001)); got != "depth-2" {
		t.Errorf("LevelOf(leaf1) = %q", got)
	}
	if got := d.DepthAt("mid", y(2001)); got != 1 {
		t.Errorf("DepthAt(mid) = %d", got)
	}
	if got := d.DepthAt("nope", y(2001)); got != -1 {
		t.Errorf("DepthAt(unknown) = %d", got)
	}
}

// TestMultipleHierarchies: a leaf with two parents (multiple hierarchy),
// supported because the model imposes no explicit schema (§2.3).
func TestMultipleHierarchies(t *testing.T) {
	d := NewDimension("Geo", "Geo")
	for _, v := range []*MemberVersion{
		{ID: "city", Level: "City", Valid: temporal.Always},
		{ID: "state", Level: "State", Valid: temporal.Always},
		{ID: "salesRegion", Level: "Region", Valid: temporal.Always},
	} {
		if err := d.AddVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []TemporalRelationship{
		{From: "city", To: "state", Valid: temporal.Always},
		{From: "city", To: "salesRegion", Valid: temporal.Always},
	} {
		if err := d.AddRelationship(r); err != nil {
			t.Fatal(err)
		}
	}
	ps := d.ParentsAt("city", y(2001))
	if len(ps) != 2 {
		t.Fatalf("city parents = %v", names(ps))
	}
	if err := d.Validate(); err != nil {
		t.Errorf("multiple hierarchy must validate: %v", err)
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	d := NewDimension("D", "D")
	for _, id := range []MVID{"a", "b"} {
		if err := d.AddVersion(&MemberVersion{ID: id, Valid: temporal.Always}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.AddRelationship(TemporalRelationship{From: "a", To: "b", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddRelationship(TemporalRelationship{From: "b", To: "a", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err == nil {
		t.Error("cycle must fail validation")
	}
}

func TestRestrict(t *testing.T) {
	d := buildOrg(t)
	v1 := d.Restrict(temporal.Between(y(2001), ym(2001, 12)))
	if v1.Version("Bill") != nil {
		t.Error("Bill must not be in the 2001 restriction")
	}
	ps := v1.ParentsAt("Smith", y(2001))
	if len(ps) != 1 || ps[0].ID != "Sales" {
		t.Errorf("restricted Smith parent = %v", names(ps))
	}
	// Restriction requires validity over the WHOLE interval: Jones's
	// relationship to Sales ends 12/2002, so restricting over
	// [01/2002, 12/2003] keeps neither Jones (invalid from 2003) nor the
	// Smith->Sales relationship (ends 12/2001).
	wide := d.Restrict(temporal.Between(y(2002), ym(2003, 12)))
	if wide.Version("Jones") != nil {
		t.Error("Jones is not valid across the whole of 2002-2003")
	}
	if got := wide.ParentsAt("Smith", y(2002)); len(got) != 1 || got[0].ID != "R&D" {
		t.Errorf("Smith parents in wide restriction = %v", names(got))
	}
	// Mutating the restriction must not affect the original.
	v1.Version("Smith").Attrs = map[string]string{"x": "y"}
	if d.Version("Smith").Attrs != nil {
		t.Error("Restrict must deep-copy member versions")
	}
}

func TestVersionsOfMember(t *testing.T) {
	d := NewDimension("D", "D")
	for _, v := range []*MemberVersion{
		{ID: "m1", Member: "M", Valid: temporal.Between(y(2001), ym(2001, 12))},
		{ID: "m2", Member: "M", Valid: temporal.Since(y(2002))},
		{ID: "other", Member: "O", Valid: temporal.Always},
	} {
		if err := d.AddVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	got := d.VersionsOfMember("M")
	if len(got) != 2 || got[0].ID != "m1" || got[1].ID != "m2" {
		t.Errorf("VersionsOfMember = %v", names(got))
	}
}

// TestOverlappingVersions: Definition 1 allows several valid versions of
// one member at the same instant — no exact history partition needed.
func TestOverlappingVersions(t *testing.T) {
	d := NewDimension("D", "D")
	for _, v := range []*MemberVersion{
		{ID: "v1", Member: "M", Valid: temporal.Between(y(2001), ym(2002, 12))},
		{ID: "v2", Member: "M", Valid: temporal.Between(y(2002), ym(2003, 12))},
	} {
		if err := d.AddVersion(v); err != nil {
			t.Fatal(err)
		}
	}
	at := d.VersionsAt(y(2002))
	if len(at) != 2 {
		t.Fatalf("expected both overlapping versions valid in 2002, got %v", names(at))
	}
	if err := d.Validate(); err != nil {
		t.Errorf("overlap must be legal: %v", err)
	}
}

func TestRootsAndLifetime(t *testing.T) {
	d := buildOrg(t)
	roots := names(d.RootsAt(y(2001)))
	if strings.Join(roots, ",") != "Sales,R&D" {
		t.Errorf("2001 roots = %v", roots)
	}
	life := d.Lifetime()
	if !life.Equal(temporal.Since(y(2001))) {
		t.Errorf("lifetime = %v", life)
	}
}

func TestElementaryIntervals(t *testing.T) {
	d := buildOrg(t)
	elems := d.ElementaryIntervals()
	want := []temporal.Interval{
		temporal.Between(y(2001), ym(2001, 12)),
		temporal.Between(y(2002), ym(2002, 12)),
		temporal.Since(y(2003)),
	}
	if len(elems) != len(want) {
		t.Fatalf("elementary intervals = %v", elems)
	}
	for i := range want {
		if !elems[i].Equal(want[i]) {
			t.Errorf("elem[%d] = %v, want %v", i, elems[i], want[i])
		}
	}
}

func TestMemberVersionString(t *testing.T) {
	mv := &MemberVersion{ID: "Dpt.Jones_id", Member: "Dpt.Jones", Level: "Department",
		Valid: temporal.Between(y(2001), ym(2002, 12))}
	got := mv.String()
	want := `<Dpt.Jones_id, "Dpt.Jones", Department, 01/2001, 12/2002>`
	if got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
	r := TemporalRelationship{From: "a", To: "b", Valid: temporal.Since(y(2003))}
	if r.String() != "<a, b, 01/2003, Now>" {
		t.Errorf("rel String = %s", r.String())
	}
}

func TestSetEnd(t *testing.T) {
	d := buildOrg(t)
	if err := d.SetEnd("Brian", ym(2003, 12)); err != nil {
		t.Fatal(err)
	}
	if d.Version("Brian").Valid.End != ym(2003, 12) {
		t.Error("SetEnd did not truncate the member version")
	}
	for _, r := range d.Relationships() {
		if r.From == "Brian" && r.Valid.End > ym(2003, 12) {
			t.Error("SetEnd must truncate relationships too")
		}
	}
	if err := d.SetEnd("nope", y(2003)); err == nil {
		t.Error("SetEnd on unknown version must fail")
	}
	if err := d.SetEnd("Smith", y(1999)); err == nil {
		t.Error("SetEnd before start must fail")
	}
}

func TestHasAncestorNamedAt(t *testing.T) {
	d := buildOrg(t)
	sales := map[string]bool{"Sales": true}
	if !d.HasAncestorNamedAt("Smith", sales, y(2001)) {
		t.Error("Smith is under Sales in 2001")
	}
	if d.HasAncestorNamedAt("Smith", sales, y(2002)) {
		t.Error("Smith left Sales in 2002")
	}
	// Self-match by display name.
	if !d.HasAncestorNamedAt("Sales", sales, y(2001)) {
		t.Error("a member matches its own name")
	}
	// Unknown member and invalid instant.
	if d.HasAncestorNamedAt("zz", sales, y(2001)) {
		t.Error("unknown member must not match")
	}
	if d.HasAncestorNamedAt("Bill", sales, y(2001)) {
		t.Error("Bill is not valid in 2001")
	}
}

func TestMemberVersionCloneAttrs(t *testing.T) {
	mv := &MemberVersion{ID: "a", Valid: temporal.Always, Attrs: map[string]string{"k": "v"}}
	cp := mv.Clone()
	cp.Attrs["k"] = "changed"
	if mv.Attrs["k"] != "v" {
		t.Error("Clone must deep-copy attributes")
	}
}
