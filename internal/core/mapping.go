package core

import (
	"fmt"
	"math"
)

// Mapper is a mapping function fm from a measure domain into itself
// (Definition 7). The paper's prototype uses linear functions
// f(x) = k·x (§5.2); arbitrary functions and the unknown mapping are
// also supported. Mappers compose so that mapping chains across several
// transitions can be collapsed into a single function.
type Mapper interface {
	// Map applies the function. ok is false when the mapping is unknown,
	// in which case the value is unusable.
	Map(x float64) (value float64, ok bool)
	// Compose returns the mapper equivalent to applying the receiver
	// first and then next.
	Compose(next Mapper) Mapper
	// String describes the function in the paper's arrow notation.
	String() string
}

// Linear is the mapper f(x) = K·x used by the paper's prototype, where K
// represents a percentage or weighting of a measure (§5.2). Identity is
// Linear{1}.
type Linear struct{ K float64 }

// Map applies f(x) = K·x.
func (l Linear) Map(x float64) (float64, bool) { return l.K * x, true }

// Compose collapses chained linear functions by multiplying factors.
// Composition with a non-linear mapper falls back to function chaining.
func (l Linear) Compose(next Mapper) Mapper {
	switch n := next.(type) {
	case Linear:
		return Linear{l.K * n.K}
	case Unknown:
		return Unknown{}
	default:
		return chain{l, next}
	}
}

// String renders "x→0.4x" style notation; identity renders "x→x".
func (l Linear) String() string {
	if l.K == 1 {
		return "x->x"
	}
	return fmt.Sprintf("x->%g*x", l.K)
}

// Identity is the identity mapping x→x.
var Identity = Linear{K: 1}

// Unknown is the absent mapping function, written "-" in the paper's
// Table 11: no value can be derived across the transition.
type Unknown struct{}

// Map reports that no value can be produced.
func (Unknown) Map(x float64) (float64, bool) { return math.NaN(), false }

// Compose of an unknown mapping with anything stays unknown.
func (Unknown) Compose(Mapper) Mapper { return Unknown{} }

// String renders the paper's "-" notation.
func (Unknown) String() string { return "-" }

// Func is an arbitrary user-defined mapping function with a textual
// description for metadata.
type Func struct {
	F    func(float64) float64
	Desc string
}

// Map applies the wrapped function.
func (f Func) Map(x float64) (float64, bool) { return f.F(x), true }

// Compose chains the functions.
func (f Func) Compose(next Mapper) Mapper {
	if _, uk := next.(Unknown); uk {
		return Unknown{}
	}
	return chain{f, next}
}

// String returns the description.
func (f Func) String() string {
	if f.Desc != "" {
		return f.Desc
	}
	return "x->f(x)"
}

// chain applies first then second.
type chain struct{ first, second Mapper }

func (c chain) Map(x float64) (float64, bool) {
	v, ok := c.first.Map(x)
	if !ok {
		return math.NaN(), false
	}
	return c.second.Map(v)
}

func (c chain) Compose(next Mapper) Mapper {
	if _, uk := next.(Unknown); uk {
		return Unknown{}
	}
	return chain{c, next}
}

func (c chain) String() string { return c.first.String() + " ∘ " + c.second.String() }

// MeasureMapping is one pair <fm_k, cf_k> of Definition 7: a mapping
// function for one measure together with the confidence factor of that
// mapping.
type MeasureMapping struct {
	Fn Mapper
	CF Confidence
}

// String renders "(x→0.4x, am)".
func (m MeasureMapping) String() string { return fmt.Sprintf("(%s, %s)", m.Fn, m.CF) }

// UniformMapping builds a per-measure mapping list applying the same
// function and confidence to all m measures, the common case in the
// paper's examples.
func UniformMapping(m int, fn Mapper, cf Confidence) []MeasureMapping {
	out := make([]MeasureMapping, m)
	for i := range out {
		out[i] = MeasureMapping{Fn: fn, CF: cf}
	}
	return out
}

// MappingRelationship keeps the link across a member transition
// (Definition 7): From is the leaf member version before the change, To
// the one after. Forward holds one MeasureMapping per measure describing
// how values of From map onto To; Backward (F⁻¹ in the paper) describes
// the reverse direction. Mapping relationships are only meaningful for
// leaf member versions; non-leaf values are recomputed by aggregating
// their (mapped) children.
type MappingRelationship struct {
	From     MVID
	To       MVID
	Forward  []MeasureMapping
	Backward []MeasureMapping
}

// String renders the relationship in the paper's Example 6 notation.
func (m MappingRelationship) String() string {
	return fmt.Sprintf("<%s, %s, %v, %v>", m.From, m.To, m.Forward, m.Backward)
}

// Validate checks structural sanity for a schema with m measures.
func (m MappingRelationship) Validate(measures int) error {
	if m.From == "" || m.To == "" {
		return fmt.Errorf("core: mapping relationship with empty endpoint: %s", m)
	}
	if m.From == m.To {
		return fmt.Errorf("core: mapping relationship from %q to itself", m.From)
	}
	if len(m.Forward) != measures {
		return fmt.Errorf("core: mapping %s→%s: %d forward mappings for %d measures",
			m.From, m.To, len(m.Forward), measures)
	}
	if len(m.Backward) != measures {
		return fmt.Errorf("core: mapping %s→%s: %d backward mappings for %d measures",
			m.From, m.To, len(m.Backward), measures)
	}
	for i, mm := range append(append([]MeasureMapping{}, m.Forward...), m.Backward...) {
		if mm.Fn == nil {
			return fmt.Errorf("core: mapping %s→%s: nil mapper at %d", m.From, m.To, i)
		}
	}
	return nil
}

// resolution is one way of presenting a source leaf version inside a
// target structure version: the target leaf, plus the composed mapping
// function and confidence per measure.
type resolution struct {
	target MVID
	per    []MeasureMapping
}

// mappingGraph indexes mapping relationships for traversal in both
// directions. Once built it is a read-only snapshot: resolve allocates
// all of its mutable state per call, so one graph is safe to share
// across concurrent materialization workers.
type mappingGraph struct {
	forward  map[MVID][]*MappingRelationship // From -> rels
	backward map[MVID][]*MappingRelationship // To -> rels
	measures int
	alg      ConfidenceAlgebra
	// identity is the shared per-measure identity mapping used by every
	// self-resolution; read-only after construction.
	identity []MeasureMapping
}

func newMappingGraph(rels []MappingRelationship, measures int, alg ConfidenceAlgebra) *mappingGraph {
	g := &mappingGraph{
		forward:  make(map[MVID][]*MappingRelationship),
		backward: make(map[MVID][]*MappingRelationship),
		measures: measures,
		alg:      alg,
		identity: make([]MeasureMapping, measures),
	}
	for i := range g.identity {
		g.identity[i] = MeasureMapping{Fn: Identity, CF: SourceData}
	}
	for i := range rels {
		r := &rels[i]
		g.forward[r.From] = append(g.forward[r.From], r)
		g.backward[r.To] = append(g.backward[r.To], r)
	}
	return g
}

// resolve finds every presentation of source inside the set of
// acceptable target member versions, following mapping relationships
// forward (using Forward functions) and backward (using Backward
// functions). Functions compose along the path; confidences combine with
// ⊗cf. Search is breadth-first with a visited set, and stops expanding a
// node once it is itself an acceptable target, so data maps to the
// nearest version. If source is already acceptable it resolves to itself
// with identity mappings and SourceData confidence.
//
// resolve is safe for concurrent use: it only reads graph state and the
// per slices of returned resolutions may alias the graph's shared
// identity slice, so callers must treat them as read-only.
func (g *mappingGraph) resolve(source MVID, acceptable func(MVID) bool) []resolution {
	identity := g.identity
	if acceptable(source) {
		return []resolution{{target: source, per: identity}}
	}
	type node struct {
		id  MVID
		per []MeasureMapping
	}
	visited := map[MVID]bool{source: true}
	frontier := []node{{id: source, per: identity}}
	var out []resolution
	seenTarget := map[MVID]bool{}
	for len(frontier) > 0 {
		var next []node
		for _, n := range frontier {
			expand := func(other MVID, step []MeasureMapping) {
				if visited[other] {
					return
				}
				per := make([]MeasureMapping, g.measures)
				for k := 0; k < g.measures; k++ {
					per[k] = MeasureMapping{
						Fn: n.per[k].Fn.Compose(step[k].Fn),
						CF: g.alg.Combine(n.per[k].CF, step[k].CF),
					}
				}
				if acceptable(other) {
					if !seenTarget[other] {
						seenTarget[other] = true
						out = append(out, resolution{target: other, per: per})
					}
					// Do not expand beyond an acceptable target: data is
					// mapped to the nearest valid version.
					visited[other] = true
					return
				}
				visited[other] = true
				next = append(next, node{id: other, per: per})
			}
			for _, r := range g.forward[n.id] {
				expand(r.To, r.Forward)
			}
			for _, r := range g.backward[n.id] {
				expand(r.From, r.Backward)
			}
		}
		frontier = next
	}
	return out
}

// Resolution is one exported way of presenting a source leaf member
// version inside a target structure version: the target leaf plus, per
// measure, the composed mapping function and combined confidence.
type Resolution struct {
	Target MVID
	Per    []MeasureMapping
}

// ResolveInto computes every presentation of the source leaf member
// version among the leaf member versions of the target structure
// version, following mapping relationships forward (F) and backward
// (F⁻¹) and composing functions and confidences along the way. A source
// valid throughout the version resolves to itself with identity
// mappings and SourceData confidence. An empty result means the source
// cannot be presented in that version at all. The Per slices may be
// shared between resolutions; callers must treat them as read-only.
func (s *Schema) ResolveInto(source MVID, sv *StructureVersion) []Resolution {
	d := s.DimensionOf(source)
	if d == nil || sv == nil {
		return nil
	}
	rd := sv.Dimension(d.ID)
	leafSet := make(map[MVID]bool)
	if rd != nil {
		for _, mv := range rd.LeavesAt(sv.Valid.Start) {
			leafSet[mv.ID] = true
		}
	}
	graph := newMappingGraph(s.mappings, len(s.measures), s.alg)
	rs := graph.resolve(source, func(x MVID) bool { return leafSet[x] })
	out := make([]Resolution, len(rs))
	for i, r := range rs {
		out[i] = Resolution{Target: r.target, Per: r.per}
	}
	return out
}
