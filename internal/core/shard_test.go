package core

import (
	"context"
	"math"
	"testing"
)

// bigTCMSchema builds a single-dimension schema with n facts spread
// over distinct (member, month) keys — enough to span several storage
// shards when n exceeds MappedShardSize.
func bigTCMSchema(t testing.TB, n int) *Schema {
	t.Helper()
	s := NewSchema("big", Measure{Name: "Amount", Agg: Sum})
	if err := s.AddDimension(buildOrg(t)); err != nil {
		t.Fatal(err)
	}
	members := []MVID{"Smith", "Brian"}
	for i := 0; i < n; i++ {
		at := ym(2001+(i/2)/12, 1+(i/2)%12)
		if err := s.InsertFact(Coords{members[i%2]}, at, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestWarmCloneAliasesShardsUntilTouched is the property the whole
// sharded layout exists for: a warm clone shares every untouched shard
// with its source — the same *factShard, the same backing arrays — and
// privatizes exactly the shards a delta writes into, leaving the
// source bit-for-bit intact. A silent deep-copy anywhere in the clone
// path would fail the identity checks below.
func TestWarmCloneAliasesShardsUntilTouched(t *testing.T) {
	const n = 2*MappedShardSize + 100
	base := bigTCMSchema(t, n)
	baseT, err := base.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if got := baseT.NumShards(); got != 3 {
		t.Fatalf("base table has %d shards, want 3", got)
	}

	clone := base.Clone()
	oldLen := clone.Facts().Len()
	if err := clone.InsertFact(Coords{"Smith"}, ym(2500, 1), 42); err != nil {
		t.Fatal(err)
	}
	res := clone.WarmFrom(context.Background(), base, Delta{NewFacts: clone.Facts().Facts()[oldLen:]})
	if len(res.Retained) != 1 || res.DeltaApplied != 1 {
		t.Fatalf("WarmFrom = %+v, want tcm retained with delta applied", res)
	}
	cloneT, err := clone.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	if b := clone.MultiVersion().Materializations(); b != 0 {
		t.Fatalf("warm clone performed %d materializations", b)
	}

	// The append landed in the partial tail shard: it alone was
	// privatized; the two full shards are shared by identity.
	if cloneT.NumShards() != 3 {
		t.Fatalf("clone has %d shards, want 3", cloneT.NumShards())
	}
	for si := 0; si < 2; si++ {
		if cloneT.shards[si] != baseT.shards[si] {
			t.Errorf("untouched shard %d was copied, want aliased", si)
		}
	}
	if cloneT.shards[2] == baseT.shards[2] {
		t.Fatal("tail shard still shared after the delta wrote into it")
	}
	if &cloneT.shards[2].times[0] == &baseT.shards[2].times[0] {
		t.Error("privatized tail shard still aliases the base backing arrays")
	}
	if baseT.shards[2].n != 100 || cloneT.shards[2].n != 101 {
		t.Fatalf("tail ns = %d/%d, want 100/101", baseT.shards[2].n, cloneT.shards[2].n)
	}
	if _, ok := baseT.Lookup(Coords{"Smith"}, ym(2500, 1)); ok {
		t.Error("delta fact leaked into the published base table")
	}
	if f, ok := cloneT.Lookup(Coords{"Smith"}, ym(2500, 1)); !ok || f.Values[0] != 42 {
		t.Errorf("delta fact missing from the warm clone: %v %v", f, ok)
	}

	// Shared shards carry the base's epoch, not the clone's: any write
	// into them must go through privatization first.
	if cloneT.epoch == baseT.epoch {
		t.Fatal("clone did not take a fresh epoch")
	}
	for si := 0; si < 2; si++ {
		if cloneT.shards[si].epoch == cloneT.epoch {
			t.Errorf("shared shard %d claims to be owned by the clone", si)
		}
	}
	if cloneT.shards[2].epoch != cloneT.epoch {
		t.Error("privatized tail shard does not carry the clone's epoch")
	}
}

// TestMergePrivatizesOnlyTouchedShard drives a merge (add at an
// existing key) into the first shard of a warm clone: that shard must
// be privatized and folded, every other shard must stay shared, and
// the source tuple must keep its original bits.
func TestMergePrivatizesOnlyTouchedShard(t *testing.T) {
	const n = MappedShardSize + 50
	s := bigTCMSchema(t, n)
	baseT, err := s.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	out := baseT.cloneForWarm(TCM(), s.alg, s.measures)

	// Tuple 0 lives in shard 0: fold a second contribution into it.
	f0 := baseT.Facts()[0]
	wantBase := f0.Values[0]
	out.add(f0.Coords, f0.Time, []float64{5}, []Confidence{SourceData})

	if out.Len() != baseT.Len() {
		t.Fatalf("merge changed the tuple count: %d vs %d", out.Len(), baseT.Len())
	}
	if out.shards[0] == baseT.shards[0] {
		t.Fatal("merged-into shard still shared")
	}
	if out.shards[1] != baseT.shards[1] {
		t.Error("untouched shard was copied by a merge elsewhere")
	}
	if got := baseT.shards[0].values[0]; got != wantBase {
		t.Errorf("merge leaked into the published source: %v", got)
	}
	if got := out.shards[0].values[0]; got != wantBase+5 {
		t.Errorf("merge result = %v, want %v", got, wantBase+5)
	}
	if got := out.shards[0].sources[0]; got != 2 {
		t.Errorf("merged sources = %d, want 2", got)
	}
	if got := baseT.shards[0].sources[0]; got != 1 {
		t.Errorf("source count mutated on the published table: %d", got)
	}
}

// TestCloneForWarmAllocationBound is the satellite-6 regression: the
// cost of a warm clone must be O(shard headers), never O(warehouse).
// Allocation counts are the tripwire — the old layout copied one
// pointer slice entry and one owned-map entry per tuple, so its
// allocation profile scaled with the table; the sharded clone performs
// a small constant number of allocations at any size.
func TestCloneForWarmAllocationBound(t *testing.T) {
	small := bigTCMSchema(t, 2*MappedShardSize)
	big := bigTCMSchema(t, 8*MappedShardSize)
	smallT, err := small.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	bigT, err := big.MultiVersion().Mode(TCM())
	if err != nil {
		t.Fatal(err)
	}
	allocsSmall := testing.AllocsPerRun(20, func() {
		_ = smallT.cloneForWarm(TCM(), small.alg, small.measures)
	})
	allocsBig := testing.AllocsPerRun(20, func() {
		_ = bigT.cloneForWarm(TCM(), big.alg, big.measures)
	})
	if allocsBig > allocsSmall {
		t.Errorf("cloneForWarm allocations scale with table size: %v at 2 shards, %v at 8", allocsSmall, allocsBig)
	}
	if allocsBig > 8 {
		t.Errorf("cloneForWarm performs %v allocations, want a small constant", allocsBig)
	}
}

// TestQueryParallelMatchesSequential asserts the scan-side determinism
// guarantee: the parallel classification + sequential fold pipeline
// returns results bit-identical to a single-worker scan, for any
// worker count, including CFs and row order.
func TestQueryParallelMatchesSequential(t *testing.T) {
	s := bigTCMSchema(t, 3000)
	q := Query{
		GroupBy: []GroupBy{{Dim: "Org", Level: "Division"}},
		Grain:   GrainYear,
		Filters: []Filter{{Dim: "Org", Members: []string{"Sales", "R&D"}}},
		Mode:    TCM(),
	}
	s.SetMaterializeWorkers(1)
	want, err := s.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("fixture query returned no rows")
	}
	for _, workers := range []int{2, 3, 8} {
		s.SetMaterializeWorkers(workers)
		got, err := s.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			w, g := want.Rows[i], got.Rows[i]
			if g.TimeKey != w.TimeKey || g.N != w.N {
				t.Fatalf("workers=%d row %d: (%s,%d) vs (%s,%d)", workers, i, g.TimeKey, g.N, w.TimeKey, w.N)
			}
			for k := range w.Groups {
				if g.Groups[k] != w.Groups[k] || g.GroupIDs[k] != w.GroupIDs[k] {
					t.Fatalf("workers=%d row %d: groups differ", workers, i)
				}
			}
			for k := range w.Values {
				if math.Float64bits(g.Values[k]) != math.Float64bits(w.Values[k]) {
					t.Fatalf("workers=%d row %d: value bits differ: %v vs %v", workers, i, g.Values[k], w.Values[k])
				}
				if g.CFs[k] != w.CFs[k] {
					t.Fatalf("workers=%d row %d: CFs differ", workers, i)
				}
			}
		}
	}
}

// BenchmarkMappedTableLookup is the satellite-2 micro-benchmark: the
// single lookupKey helper probing the owned layer then the frozen base
// must not regress any of the three probe outcomes.
func BenchmarkMappedTableLookup(b *testing.B) {
	s := bigTCMSchema(b, 2*MappedShardSize)
	baseT, err := s.MultiVersion().Mode(TCM())
	if err != nil {
		b.Fatal(err)
	}
	clone := baseT.cloneForWarm(TCM(), s.alg, s.measures)
	// Give the clone one owned key so the index layer is non-empty.
	clone.add(Coords{"Smith"}, ym(2500, 1), []float64{1}, []Confidence{SourceData})

	f0 := baseT.Facts()[0]
	baseKey := appendFactKey(nil, f0.Coords, f0.Time)
	ownKey := appendFactKey(nil, Coords{"Smith"}, ym(2500, 1))
	missKey := appendFactKey(nil, Coords{"Smith"}, ym(3000, 1))

	b.Run("base-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := clone.lookupKey(baseKey); !ok {
				b.Fatal("base key missing")
			}
		}
	})
	b.Run("index-hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := clone.lookupKey(ownKey); !ok {
				b.Fatal("owned key missing")
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := clone.lookupKey(missKey); ok {
				b.Fatal("phantom key")
			}
		}
	})
	// The common state of a fresh warm clone: empty owned layer. The
	// fast path must skip the dead map probe entirely.
	fresh := baseT.cloneForWarm(TCM(), s.alg, s.measures)
	b.Run("base-hit-empty-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, ok := fresh.lookupKey(baseKey); !ok {
				b.Fatal("base key missing")
			}
		}
	})
}
