package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"mvolap/internal/core"
	"mvolap/internal/workload"
)

// These black-box property tests run the full engine over randomly
// generated evolving schemas (package workload) and check the model's
// global invariants.

func genWorkload(seed uint32) *workload.Workload {
	return workload.MustGenerate(workload.Config{
		Seed:              int64(seed),
		Departments:       6 + int(seed%10),
		Years:             3 + int(seed%4),
		EvolutionsPerYear: 1 + int(seed%3),
	})
}

// TestPropertyTCMIsSource: Definition 11's identity f'|tcm = f × {sd}^m
// holds on arbitrary schemas.
func TestPropertyTCMIsSource(t *testing.T) {
	f := func(seed uint32) bool {
		s := genWorkload(seed).Schema
		mt, err := s.MultiVersion().Mode(core.TCM())
		if err != nil {
			return false
		}
		if mt.Len() != s.Facts().Len() || mt.Dropped != 0 {
			return false
		}
		for _, mf := range mt.Facts() {
			src, ok := s.Facts().Lookup(mf.Coords, mf.Time)
			if !ok {
				return false
			}
			for k := range mf.Values {
				if mf.Values[k] != src[k] || mf.CFs[k] != core.SourceData {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMappedCoordsAreVersionLeaves: in a version mode every
// presented tuple sits on leaf member versions of that structure
// version (Definition 11's coordinate constraint).
func TestPropertyMappedCoordsAreVersionLeaves(t *testing.T) {
	f := func(seed uint32) bool {
		s := genWorkload(seed).Schema
		for _, sv := range s.StructureVersions() {
			mt, err := s.MultiVersion().Mode(core.InVersion(sv))
			if err != nil {
				return false
			}
			for di, d := range s.Dimensions() {
				leafSet := map[core.MVID]bool{}
				rd := sv.Dimension(d.ID)
				for _, mv := range rd.LeavesAt(sv.Valid.Start) {
					leafSet[mv.ID] = true
				}
				for _, mf := range mt.Facts() {
					if !leafSet[mf.Coords[di]] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyAccounting: presented sources + dropped sources account
// for every source fact in every mode (fan-out counts once per source).
func TestPropertyAccounting(t *testing.T) {
	f := func(seed uint32) bool {
		s := genWorkload(seed).Schema
		for _, sv := range s.StructureVersions() {
			mt, err := s.MultiVersion().Mode(core.InVersion(sv))
			if err != nil {
				return false
			}
			// Each source fact either drops or contributes >= 1 mapped
			// tuple; sum of Sources counts fan-in, so it can exceed the
			// source count but never fall below presented sources.
			presented := 0
			for _, mf := range mt.Facts() {
				presented += mf.Sources
			}
			if mt.Dropped < 0 || mt.Dropped > s.Facts().Len() {
				return false
			}
			if presented+mt.Dropped < s.Facts().Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQualityBounds: the quality factor of any query result in
// any mode lies in [0, 1], and tcm is always 1.
func TestPropertyQualityBounds(t *testing.T) {
	f := func(seed uint32) bool {
		s := genWorkload(seed).Schema
		for _, mode := range s.Modes() {
			res, err := s.Execute(core.Query{
				GroupBy: []core.GroupBy{{Dim: workload.OrgDim, Level: "Department"}},
				Grain:   core.GrainYear,
				Mode:    mode,
			})
			if err != nil {
				return false
			}
			q := qualityOf(res)
			if q < 0 || q > 1 {
				return false
			}
			if mode.Kind == core.TCMKind && len(res.Rows) > 0 && q != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// qualityOf reimplements the default §5.2 weighting locally to avoid an
// import cycle with the quality package's own tests.
func qualityOf(res *core.Result) float64 {
	weights := map[core.Confidence]int{
		core.SourceData: 10, core.ExactMapping: 8, core.ApproxMapping: 5, core.UnknownMapping: 0,
	}
	sum, cells := 0, 0
	for _, r := range res.Rows {
		for _, cf := range r.CFs {
			sum += weights[cf]
			cells++
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(sum) / float64(cells*10)
}

// TestPropertyQueryTotalsMatchMVFT: grand-total queries agree with
// direct summation over the mapped table (the query engine adds no
// mass).
func TestPropertyQueryTotalsMatchMVFT(t *testing.T) {
	f := func(seed uint32) bool {
		s := genWorkload(seed).Schema
		for _, mode := range s.Modes() {
			mt, err := s.MultiVersion().Mode(mode)
			if err != nil {
				return false
			}
			want := 0.0
			for _, mf := range mt.Facts() {
				if !math.IsNaN(mf.Values[0]) {
					want += mf.Values[0]
				}
			}
			res, err := s.Execute(core.Query{Grain: core.GrainAll, Mode: mode})
			if err != nil {
				return false
			}
			got := 0.0
			if len(res.Rows) > 0 && !math.IsNaN(res.Rows[0].Values[0]) {
				got = res.Rows[0].Values[0]
			}
			if math.Abs(got-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
