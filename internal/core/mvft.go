package core

import (
	"fmt"
	"math"
	"sync"

	"mvolap/internal/temporal"
)

// MappedFact is one tuple of the MultiVersion Fact Table (Definition 11)
// for a particular temporal mode of presentation: coordinates valid in
// that mode, the (possibly mapped) measure values, and one confidence
// factor per value.
type MappedFact struct {
	Coords Coords
	Time   temporal.Instant
	Values []float64
	CFs    []Confidence
	// Sources counts how many source facts were folded into this tuple
	// (greater than one after a merge transition).
	Sources int
}

// MappedTable is the restriction of the MultiVersion Fact Table to one
// temporal mode: f'(·, ·, tmp).
type MappedTable struct {
	Mode  Mode
	facts []*MappedFact
	index map[string]int
	// Dropped counts source facts that could not be presented in this
	// mode at all: no chain of mapping relationships reaches any member
	// version of the target structure version ("impossible cross-points"
	// in the paper's grid rendering, §5.2).
	Dropped int
}

// Facts returns the mapped facts in deterministic order. The slice is
// shared; callers must not mutate it.
func (mt *MappedTable) Facts() []*MappedFact { return mt.facts }

// Len reports the number of mapped tuples.
func (mt *MappedTable) Len() int { return len(mt.facts) }

// Lookup returns the mapped tuple at the given coordinates and time.
func (mt *MappedTable) Lookup(coords Coords, t temporal.Instant) (*MappedFact, bool) {
	i, ok := mt.index[factKey(coords, t)]
	if !ok {
		return nil, false
	}
	return mt.facts[i], true
}

func (mt *MappedTable) add(alg ConfidenceAlgebra, measures []Measure, coords Coords, t temporal.Instant, values []float64, cfs []Confidence) {
	key := factKey(coords, t)
	if i, ok := mt.index[key]; ok {
		// A merge: several source tuples present themselves on the same
		// target coordinates. Fold values with the measure aggregate ⊕
		// and confidences with ⊗cf (Definition 12).
		f := mt.facts[i]
		for k := range f.Values {
			f.Values[k] = foldPair(measures[k].Agg, f.Values[k], values[k])
			f.CFs[k] = alg.Combine(f.CFs[k], cfs[k])
		}
		f.Sources++
		return
	}
	mt.index[key] = len(mt.facts)
	mt.facts = append(mt.facts, &MappedFact{
		Coords:  coords.Clone(),
		Time:    t,
		Values:  append([]float64(nil), values...),
		CFs:     append([]Confidence(nil), cfs...),
		Sources: 1,
	})
}

// foldPair folds two values under an aggregate kind, with NaN treated as
// the absent value.
func foldPair(kind AggKind, a, b float64) float64 {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return math.NaN()
	case aNaN:
		if kind == Count {
			return 1
		}
		return b
	case bNaN:
		if kind == Count {
			return 1
		}
		return a
	}
	switch kind {
	case Sum:
		return a + b
	case Count:
		return a + b // both sides are counts of folded source tuples
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	case Avg:
		// The fact table stores raw values; averaging across merged
		// tuples without weights degrades to the mean of the two.
		return (a + b) / 2
	}
	return math.NaN()
}

// MultiVersionFactTable materializes the function f' of Definition 11:
// for every temporal mode of presentation, the source data presented in
// that mode with confidence factors. Restrictions per mode are computed
// lazily and cached; the cache lives until the schema is mutated (the
// schema drops its reference on Invalidate).
type MultiVersionFactTable struct {
	schema *Schema
	mu     sync.Mutex
	byMode map[string]*MappedTable
}

// MultiVersion returns the schema's MultiVersion Fact Table. The table
// is cached on the schema and recomputed lazily after mutation; facts
// inserted after the first call require Invalidate before they are
// visible here.
func (s *Schema) MultiVersion() *MultiVersionFactTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mvftCache == nil {
		s.mvftCache = &MultiVersionFactTable{schema: s, byMode: make(map[string]*MappedTable)}
	}
	return s.mvftCache
}

// Mode returns the restriction of the MultiVersion Fact Table to one
// temporal mode of presentation.
func (mv *MultiVersionFactTable) Mode(m Mode) (*MappedTable, error) {
	key := m.String()
	mv.mu.Lock()
	if t, ok := mv.byMode[key]; ok {
		mv.mu.Unlock()
		return t, nil
	}
	mv.mu.Unlock()
	// Materialize outside the lock; duplicate work between racing
	// callers is possible but harmless (last write wins).
	t, err := mv.schema.mapFacts(m)
	if err != nil {
		return nil, err
	}
	mv.mu.Lock()
	mv.byMode[key] = t
	mv.mu.Unlock()
	return t, nil
}

// All materializes every mode of the schema, the full f'. The returned
// map is a snapshot copy, safe to iterate concurrently with queries.
func (mv *MultiVersionFactTable) All() (map[string]*MappedTable, error) {
	for _, m := range mv.schema.Modes() {
		if _, err := mv.Mode(m); err != nil {
			return nil, err
		}
	}
	mv.mu.Lock()
	defer mv.mu.Unlock()
	out := make(map[string]*MappedTable, len(mv.byMode))
	for k, v := range mv.byMode {
		out[k] = v
	}
	return out, nil
}

// mapFacts presents the temporally consistent fact table in the given
// mode. In tcm the result is the source data tagged sd (the paper's
// f'|tcm = f × {sd}^m). In a version mode every source coordinate is
// resolved into the leaf member versions of the target structure
// version through the mapping-relationship graph; values flow through
// the composed mapping functions, confidences through ⊗cf; tuples
// landing on identical target coordinates merge under ⊕ and ⊗cf.
func (s *Schema) mapFacts(m Mode) (*MappedTable, error) {
	out := &MappedTable{Mode: m, index: make(map[string]int)}
	switch m.Kind {
	case TCMKind:
		for _, f := range s.facts.Facts() {
			cfs := make([]Confidence, len(s.measures))
			out.add(s.alg, s.measures, f.Coords, f.Time, f.Values, cfs) // zero value is SourceData
		}
		return out, nil
	case VersionKind:
		if m.Version == nil {
			return nil, fmt.Errorf("core: version mode without structure version")
		}
	default:
		return nil, fmt.Errorf("core: unknown mode kind %d", m.Kind)
	}

	sv := m.Version
	graph := newMappingGraph(s.mappings, len(s.measures), s.alg)
	// Per dimension, the acceptable targets are the leaf member versions
	// of the structure version's restriction.
	leafIn := make([]map[MVID]bool, len(s.dims))
	for i, d := range s.dims {
		rd := sv.Dimension(d.ID)
		set := make(map[MVID]bool)
		if rd != nil {
			for _, mv := range rd.LeavesAt(sv.Valid.Start) {
				set[mv.ID] = true
			}
		}
		leafIn[i] = set
	}
	// Resolutions are deterministic per source member version; cache them.
	resCache := make([]map[MVID][]resolution, len(s.dims))
	for i := range resCache {
		resCache[i] = make(map[MVID][]resolution)
	}
	for _, f := range s.facts.Facts() {
		perDim := make([][]resolution, len(s.dims))
		ok := true
		for i, id := range f.Coords {
			rs, cached := resCache[i][id]
			if !cached {
				set := leafIn[i]
				rs = graph.resolve(id, func(x MVID) bool { return set[x] })
				resCache[i][id] = rs
			}
			if len(rs) == 0 {
				ok = false
				break
			}
			perDim[i] = rs
		}
		if !ok {
			out.Dropped++
			continue
		}
		// Cartesian product across dimensions (splits fan out).
		combo := make([]int, len(s.dims))
		for {
			coords := make(Coords, len(s.dims))
			values := make([]float64, len(s.measures))
			cfs := make([]Confidence, len(s.measures))
			copy(values, f.Values)
			for k := range cfs {
				cfs[k] = SourceData
			}
			for i := range s.dims {
				r := perDim[i][combo[i]]
				coords[i] = r.target
				for k := 0; k < len(s.measures); k++ {
					v, okv := r.per[k].Fn.Map(values[k])
					if !okv {
						v = math.NaN()
					}
					values[k] = v
					cfs[k] = s.alg.Combine(cfs[k], r.per[k].CF)
				}
			}
			out.add(s.alg, s.measures, coords, f.Time, values, cfs)
			// Advance the product counter.
			i := 0
			for ; i < len(combo); i++ {
				combo[i]++
				if combo[i] < len(perDim[i]) {
					break
				}
				combo[i] = 0
			}
			if i == len(combo) {
				break
			}
		}
	}
	return out, nil
}
