package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvolap/internal/temporal"
)

// MappedFact is one tuple of the MultiVersion Fact Table (Definition 11)
// for a particular temporal mode of presentation: coordinates valid in
// that mode, the (possibly mapped) measure values, and one confidence
// factor per value.
type MappedFact struct {
	Coords Coords
	Time   temporal.Instant
	Values []float64
	CFs    []Confidence
	// Sources counts how many source facts were folded into this tuple
	// (greater than one after a merge transition).
	Sources int
	// avgN carries, per measure, the number of non-NaN source
	// contributions folded into Values, so Avg measures merge as true
	// means instead of order-dependent pairwise midpoints. Allocated
	// only when the schema has an Avg measure.
	avgN []int32
}

// MappedTable is the restriction of the MultiVersion Fact Table to one
// temporal mode: f'(·, ·, tmp).
//
// A table is single-writer while it is built and read-only once
// published. Incremental maintenance (Schema.WarmFrom) never mutates a
// published table: it takes a copy-on-write clone — shared tuples and a
// shared frozen index layer — and folds the fact delta into the clone,
// privatizing only the tuples the delta merges into.
type MappedTable struct {
	Mode  Mode
	facts []*MappedFact
	// index holds keys owned by this table; base is the frozen index
	// layer shared with the warm-clone source (nil for a cold build)
	// and only covers the first baseLen tuples.
	index   map[string]int
	base    map[string]int
	baseLen int
	// facts[:cowBase] are shared with the clone source and must be
	// privatized before a merge folds into them; owned marks positions
	// already privatized.
	cowBase int
	owned   map[int]bool
	// Dropped counts source facts that could not be presented in this
	// mode at all: no chain of mapping relationships reaches any member
	// version of the target structure version ("impossible cross-points"
	// in the paper's grid rendering, §5.2).
	Dropped int

	alg      ConfidenceAlgebra
	measures []Measure
	hasAvg   bool
	// keyBuf is scratch for building index keys during materialization.
	keyBuf []byte
}

func newMappedTable(m Mode, alg ConfidenceAlgebra, measures []Measure, capacity int) *MappedTable {
	mt := &MappedTable{
		Mode:     m,
		index:    make(map[string]int, capacity),
		alg:      alg,
		measures: measures,
	}
	for _, ms := range measures {
		if ms.Agg == Avg {
			mt.hasAvg = true
			break
		}
	}
	return mt
}

// Facts returns the mapped facts in deterministic order. The slice is
// shared; callers must not mutate it.
func (mt *MappedTable) Facts() []*MappedFact { return mt.facts }

// Len reports the number of mapped tuples.
func (mt *MappedTable) Len() int { return len(mt.facts) }

// lookupKey probes the owned index layer, then the shared base layer
// inherited from a warm clone.
func (mt *MappedTable) lookupKey(key []byte) (int, bool) {
	if i, ok := mt.index[string(key)]; ok {
		return i, true
	}
	if mt.base != nil {
		if i, ok := mt.base[string(key)]; ok && i < mt.baseLen {
			return i, true
		}
	}
	return 0, false
}

// Lookup returns the mapped tuple at the given coordinates and time.
// It is safe for concurrent use once the table is materialized.
func (mt *MappedTable) Lookup(coords Coords, t temporal.Instant) (*MappedFact, bool) {
	var scratch [64]byte
	key := appendFactKey(scratch[:0], coords, t)
	i, ok := mt.lookupKey(key)
	if !ok {
		return nil, false
	}
	return mt.facts[i], true
}

// clone returns a private copy of the mapped fact for copy-on-write
// folding: values, confidences and Avg counts are copied (they mutate
// under merges), coordinates and time stay shared (they never do).
func (f *MappedFact) clone() *MappedFact {
	out := &MappedFact{
		Coords:  f.Coords,
		Time:    f.Time,
		Values:  append([]float64(nil), f.Values...),
		CFs:     append([]Confidence(nil), f.CFs...),
		Sources: f.Sources,
	}
	if f.avgN != nil {
		out.avgN = append([]int32(nil), f.avgN...)
	}
	return out
}

// add folds one emitted tuple into the table. It takes ownership of
// coords, values and cfs — callers pass slices the table may retain and
// mutate (the materialization arenas), never shared buffers.
func (mt *MappedTable) add(coords Coords, t temporal.Instant, values []float64, cfs []Confidence) {
	mt.keyBuf = appendFactKey(mt.keyBuf[:0], coords, t)
	if i, ok := mt.lookupKey(mt.keyBuf); ok {
		// A merge: several source tuples present themselves on the same
		// target coordinates. Fold values with the measure aggregate ⊕
		// and confidences with ⊗cf (Definition 12).
		f := mt.facts[i]
		if i < mt.cowBase && !mt.owned[i] {
			f = f.clone()
			mt.facts[i] = f
			if mt.owned == nil {
				mt.owned = make(map[int]bool)
			}
			mt.owned[i] = true
		}
		for k := range f.Values {
			if mt.measures[k].Agg == Avg {
				f.Values[k], f.avgN[k] = foldAvg(f.Values[k], f.avgN[k], values[k])
			} else {
				f.Values[k] = foldPair(mt.measures[k].Agg, f.Values[k], values[k])
			}
			f.CFs[k] = mt.alg.Combine(f.CFs[k], cfs[k])
		}
		f.Sources++
		return
	}
	f := &MappedFact{Coords: coords, Time: t, Values: values, CFs: cfs, Sources: 1}
	if mt.hasAvg {
		f.avgN = make([]int32, len(values))
		for k, v := range values {
			if !math.IsNaN(v) {
				f.avgN[k] = 1
			}
		}
	}
	mt.index[string(mt.keyBuf)] = len(mt.facts)
	mt.facts = append(mt.facts, f)
}

// foldPair folds two values under an aggregate kind, with NaN treated as
// the absent value. Avg folding during materialization goes through
// foldAvg instead, which carries contribution counts.
func foldPair(kind AggKind, a, b float64) float64 {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return math.NaN()
	case aNaN:
		if kind == Count {
			return 1
		}
		return b
	case bNaN:
		if kind == Count {
			return 1
		}
		return a
	}
	switch kind {
	case Sum:
		return a + b
	case Count:
		return a + b // both sides are counts of folded source tuples
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	case Avg:
		// Two raw values without counts degrade to their midpoint.
		return (a + b) / 2
	}
	return math.NaN()
}

// foldAvg folds one new contribution b into a running mean a carrying
// na non-NaN contributions, returning the new mean and count. Unlike
// the old pairwise (a+b)/2, the running count makes a 3-way merge the
// true mean of its sources regardless of fold order.
func foldAvg(a float64, na int32, b float64) (mean float64, n int32) {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return math.NaN(), na
	case aNaN:
		return b, 1
	case bNaN:
		return a, na
	}
	n = na + 1
	return (a*float64(na) + b) / float64(n), n
}

// modeEntry is the singleflight slot for one mode's materialization:
// the caller that creates the entry runs mapFacts and closes done;
// every concurrent and later caller waits on done and shares the
// result. Waiters may abandon the wait when their own context is
// cancelled; a failed build is evicted from the cache so the next
// caller retries instead of being served a stale error.
type modeEntry struct {
	done  chan struct{}
	table *MappedTable
	err   error
}

// MultiVersionFactTable materializes the function f' of Definition 11:
// for every temporal mode of presentation, the source data presented in
// that mode with confidence factors. Restrictions per mode are computed
// lazily, once per mode (concurrent callers share a single
// materialization), and cached; the cache lives until the schema is
// mutated (the schema drops its reference on Invalidate, so a handle
// obtained before the mutation keeps serving its consistent snapshot).
type MultiVersionFactTable struct {
	schema *Schema
	mu     sync.Mutex
	byMode map[string]*modeEntry
	builds atomic.Int64
	deltas atomic.Int64
}

// MultiVersion returns the schema's MultiVersion Fact Table. The table
// is cached on the schema and recomputed lazily after mutation.
// InsertFact and every dimension mutation through the registered API
// (AddVersion, AddRelationship, SetEnd, EndRelationship — i.e. all
// evolution operators) invalidate the cache automatically.
func (s *Schema) MultiVersion() *MultiVersionFactTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mvftCache == nil {
		s.mvftCache = &MultiVersionFactTable{schema: s, byMode: make(map[string]*modeEntry)}
	}
	return s.mvftCache
}

// Mode returns the restriction of the MultiVersion Fact Table to one
// temporal mode of presentation. Racing callers on the same mode do not
// duplicate work: exactly one materializes, the rest block on it.
func (mv *MultiVersionFactTable) Mode(m Mode) (*MappedTable, error) {
	return mv.ModeContext(context.Background(), m)
}

// ModeContext is Mode with cancellation: the materializing caller
// checks ctx inside the per-fact mapping loops, and waiting callers
// stop waiting when their own ctx is cancelled (the build itself keeps
// the builder's context). A build abandoned on cancellation is evicted
// from the cache, so the mode re-materializes cleanly on the next call.
func (mv *MultiVersionFactTable) ModeContext(ctx context.Context, m Mode) (*MappedTable, error) {
	mt, _, err := mv.modeContext(ctx, m)
	return mt, err
}

// modeContext additionally reports whether the table was served from
// cache (true) or built by this call (false).
func (mv *MultiVersionFactTable) modeContext(ctx context.Context, m Mode) (*MappedTable, bool, error) {
	key := m.String()
	for {
		mv.mu.Lock()
		e, ok := mv.byMode[key]
		if !ok {
			e = &modeEntry{done: make(chan struct{})}
			mv.byMode[key] = e
			mv.mu.Unlock()
			metModeCacheMisses.Inc()
			mv.builds.Add(1)
			start := time.Now()
			e.table, e.err = mv.schema.mapFacts(ctx, m)
			close(e.done)
			if e.err != nil {
				// Never cache a failure: evict the entry so a later call
				// retries (in particular, a build cancelled by one
				// client's disconnect must not poison the mode).
				mv.mu.Lock()
				if mv.byMode[key] == e {
					delete(mv.byMode, key)
				}
				mv.mu.Unlock()
				if isCancellation(e.err) {
					metQueryCancelled.Inc()
				}
				return nil, false, e.err
			}
			metMaterializeSeconds.With(m.String()).Observe(time.Since(start).Seconds())
			metMaterializeDropped.Add(int64(e.table.Dropped))
			return e.table, false, nil
		}
		mv.mu.Unlock()
		metModeCacheHits.Inc()
		select {
		case <-e.done:
			if e.err != nil && isCancellation(e.err) && ctx.Err() == nil {
				// The builder was cancelled but this caller is still
				// live: retry (the failed entry has been evicted).
				continue
			}
			return e.table, true, e.err
		case <-ctx.Done():
			metQueryCancelled.Inc()
			return nil, true, fmt.Errorf("core: materialization wait cancelled: %w", ctx.Err())
		}
	}
}

// isCancellation reports whether err stems from context cancellation
// or deadline expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Materializations reports how many mapFacts runs this table has
// performed — an observability hook that also lets tests assert the
// singleflight contract (one build per mode, however many callers).
func (mv *MultiVersionFactTable) Materializations() int64 { return mv.builds.Load() }

// DeltaApplies reports how many retained modes had a fact delta folded
// in by Schema.WarmFrom instead of a full rematerialization. Warm
// retention never counts as a Materialization.
func (mv *MultiVersionFactTable) DeltaApplies() int64 { return mv.deltas.Load() }

// All materializes every mode of the schema — the full f' — running the
// per-mode materializations concurrently. The returned map is a
// snapshot copy, safe to iterate concurrently with queries.
func (mv *MultiVersionFactTable) All() (map[string]*MappedTable, error) {
	modes := mv.schema.Modes()
	errs := make([]error, len(modes))
	var wg sync.WaitGroup
	for i, m := range modes {
		wg.Add(1)
		go func(i int, m Mode) {
			defer wg.Done()
			_, errs[i] = mv.Mode(m)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]*MappedTable, len(modes))
	for _, m := range modes {
		t, err := mv.Mode(m) // cached by the pass above
		if err != nil {
			return nil, err
		}
		out[m.String()] = t
	}
	return out, nil
}

// parallelFactThreshold is the fact count below which materialization
// stays sequential even when several workers are available: tiny
// schemas (like the paper's case study) must not pay goroutine and
// merge overhead.
const parallelFactThreshold = 256

// materializeWorkers resolves the worker count for one materialization:
// an explicit SetMaterializeWorkers pin wins, otherwise GOMAXPROCS with
// the small-table sequential fallback.
func (s *Schema) materializeWorkers(nFacts int) int {
	w := int(s.matWorkers.Load())
	pinned := w > 0
	if !pinned {
		w = runtime.GOMAXPROCS(0)
		if nFacts < parallelFactThreshold {
			return 1
		}
	}
	if w > nFacts {
		w = nFacts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partialShard is one worker's private output: every tuple its fact
// shard emits, in fact order, stored in flat arenas (one slice per
// field instead of per-tuple allocations). Tuples are NOT pre-folded
// inside the shard — the deterministic merge replays them in global
// fact order so the fold tree (and therefore every floating-point
// result) is bit-identical to the sequential path. Dropped facts only
// contribute a count, which is order-insensitive.
type partialShard struct {
	coords  []MVID
	values  []float64
	cfs     []Confidence
	times   []temporal.Instant
	dropped int
}

// cancelCheckStride is how many facts a mapping or aggregation loop
// processes between context checks: frequent enough that cancellation
// is prompt even on modest tables, rare enough to stay off the
// per-fact hot path.
const cancelCheckStride = 256

// mapShard resolves and maps one contiguous shard of the fact table
// into a partialShard. graph and leafIn are shared read-only snapshots;
// the resolution cache is private to the shard. The shard stops early
// (leaving its output incomplete) when ctx is cancelled; mapFacts
// checks ctx after the join and discards the partials.
func (s *Schema) mapShard(ctx context.Context, graph *mappingGraph, leafIn []map[MVID]bool, facts []*Fact) *partialShard {
	nd, nm := len(s.dims), len(s.measures)
	p := &partialShard{}
	// Resolutions are deterministic per source member version; cache
	// them per worker.
	resCache := make([]map[MVID][]resolution, nd)
	for i := range resCache {
		resCache[i] = make(map[MVID][]resolution)
	}
	perDim := make([][]resolution, nd)
	combo := make([]int, nd)
	for fi, f := range facts {
		if fi%cancelCheckStride == 0 && ctx.Err() != nil {
			return p
		}
		ok := true
		for i, id := range f.Coords {
			rs, cached := resCache[i][id]
			if !cached {
				set := leafIn[i]
				rs = graph.resolve(id, func(x MVID) bool { return set[x] })
				resCache[i][id] = rs
			}
			if len(rs) == 0 {
				ok = false
				break
			}
			perDim[i] = rs
		}
		if !ok {
			p.dropped++
			continue
		}
		// Cartesian product across dimensions (splits fan out). Each
		// combination appends one tuple to the arenas.
		for i := range combo {
			combo[i] = 0
		}
		for {
			p.times = append(p.times, f.Time)
			p.values = append(p.values, f.Values...)
			values := p.values[len(p.values)-nm:]
			cb := len(p.cfs)
			for k := 0; k < nm; k++ {
				p.cfs = append(p.cfs, SourceData)
			}
			cfs := p.cfs[cb:]
			for i := 0; i < nd; i++ {
				r := perDim[i][combo[i]]
				p.coords = append(p.coords, r.target)
				for k := 0; k < nm; k++ {
					v, okv := r.per[k].Fn.Map(values[k])
					if !okv {
						v = math.NaN()
					}
					values[k] = v
					cfs[k] = s.alg.Combine(cfs[k], r.per[k].CF)
				}
			}
			// Advance the product counter.
			i := 0
			for ; i < len(combo); i++ {
				combo[i]++
				if combo[i] < len(perDim[i]) {
					break
				}
				combo[i] = 0
			}
			if i == len(combo) {
				break
			}
		}
	}
	return p
}

// mergePartials replays each shard's emissions, in shard order and
// within a shard in fact order, through MappedTable.add — exactly the
// add sequence the sequential path would have run, so merges fold in
// the same order and the result is bit-identical for any worker count.
// The mapped facts alias the shard arenas (capped sub-slices), which
// the table then owns.
func (s *Schema) mergePartials(out *MappedTable, partials []*partialShard) {
	nd, nm := len(s.dims), len(s.measures)
	for _, p := range partials {
		if p == nil {
			continue
		}
		out.Dropped += p.dropped
		for i, t := range p.times {
			out.add(
				Coords(p.coords[i*nd:(i+1)*nd:(i+1)*nd]),
				t,
				p.values[i*nm:(i+1)*nm:(i+1)*nm],
				p.cfs[i*nm:(i+1)*nm:(i+1)*nm],
			)
		}
	}
}

// foldTCM folds facts into a tcm table in fact order: source values
// copied into flat arenas (mapped facts own their values), confidences
// the zero value SourceData. Shared by cold materialization (all facts)
// and delta application (the appended suffix) — the add sequence, and
// therefore every bit of the result, is identical either way.
func (s *Schema) foldTCM(ctx context.Context, out *MappedTable, facts []*Fact) error {
	nm := len(s.measures)
	values := make([]float64, 0, len(facts)*nm)
	cfs := make([]Confidence, len(facts)*nm)
	for i, f := range facts {
		if i > 0 && i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: materialization cancelled: %w", err)
			}
		}
		values = append(values, f.Values...)
		out.add(f.Coords, f.Time,
			values[i*nm:(i+1)*nm:(i+1)*nm],
			cfs[i*nm:(i+1)*nm:(i+1)*nm])
	}
	return nil
}

// versionLeafSets builds, per dimension, the acceptable mapping targets
// for a structure version: the leaf member versions of its restriction.
// Built once per materialization, read-only for all workers.
func (s *Schema) versionLeafSets(sv *StructureVersion) []map[MVID]bool {
	leafIn := make([]map[MVID]bool, len(s.dims))
	for i, d := range s.dims {
		rd := sv.Dimension(d.ID)
		set := make(map[MVID]bool)
		if rd != nil {
			for _, mv := range rd.LeavesAt(sv.Valid.Start) {
				set[mv.ID] = true
			}
		}
		leafIn[i] = set
	}
	return leafIn
}

// mapFacts presents the temporally consistent fact table in the given
// mode. In tcm the result is the source data tagged sd (the paper's
// f'|tcm = f × {sd}^m). In a version mode every source coordinate is
// resolved into the leaf member versions of the target structure
// version through the mapping-relationship graph; values flow through
// the composed mapping functions, confidences through ⊗cf; tuples
// landing on identical target coordinates merge under ⊕ and ⊗cf.
//
// Resolution and mapping — the expensive phase — is sharded across
// materializeWorkers goroutines over a shared read-only mapping-graph
// snapshot; the cheap fold phase replays the shards deterministically
// (see mergePartials).
func (s *Schema) mapFacts(ctx context.Context, m Mode) (*MappedTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: materialization cancelled: %w", err)
	}
	facts := s.facts.Facts()
	switch m.Kind {
	case TCMKind:
		out := newMappedTable(m, s.alg, s.measures, len(facts))
		if err := s.foldTCM(ctx, out, facts); err != nil {
			return nil, err
		}
		return out, nil
	case VersionKind:
		if m.Version == nil {
			return nil, fmt.Errorf("core: version mode without structure version")
		}
	default:
		return nil, fmt.Errorf("core: unknown mode kind %d", m.Kind)
	}

	sv := m.Version
	graph := newMappingGraph(s.mappings, len(s.measures), s.alg)
	leafIn := s.versionLeafSets(sv)

	out := newMappedTable(m, s.alg, s.measures, len(facts))
	workers := s.materializeWorkers(len(facts))
	if workers <= 1 {
		p := s.mapShard(ctx, graph, leafIn, facts)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: materialization cancelled: %w", err)
		}
		s.mergePartials(out, []*partialShard{p})
		return out, nil
	}
	partials := make([]*partialShard, workers)
	chunk := (len(facts) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(facts))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = s.mapShard(ctx, graph, leafIn, facts[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: materialization cancelled: %w", err)
	}
	s.mergePartials(out, partials)
	return out, nil
}
