package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mvolap/internal/temporal"
)

// MappedFact is one tuple of the MultiVersion Fact Table (Definition 11)
// for a particular temporal mode of presentation: coordinates valid in
// that mode, the (possibly mapped) measure values, and one confidence
// factor per value.
//
// Storage is columnar (see factShard); a MappedFact is a read-only view
// whose slices alias the shard columns. Callers must not mutate it.
type MappedFact struct {
	Coords Coords
	Time   temporal.Instant
	Values []float64
	CFs    []Confidence
	// Sources counts how many source facts were folded into this tuple
	// (greater than one after a merge transition).
	Sources int
	// avgN carries, per measure, the number of non-NaN source
	// contributions folded into Values, so Avg measures merge as true
	// means instead of order-dependent pairwise midpoints. Allocated
	// only when the schema has an Avg measure.
	avgN []int32
}

// MappedShardSize is the number of tuples per storage shard of a
// MappedTable. Every shard except the last is exactly full, so tuple i
// lives in shard i/MappedShardSize at offset i%MappedShardSize. The
// size trades swap granularity (a delta privatizes whole shards)
// against sharing granularity (a warm clone copies one header per
// shard): at 4096 tuples a 100k-fact mode is ~25 headers per swap.
const MappedShardSize = 4096

const (
	shardShift = 12 // log2(MappedShardSize)
	shardMask  = MappedShardSize - 1
)

// shardEpochCounter issues table ownership epochs. Epoch 0 is reserved
// for frozen shards no table owns (e.g. adopted from a snapshot), so a
// table always privatizes them before writing.
var shardEpochCounter atomic.Uint64

// factShard is one fixed-size block of mapped tuples in struct-of-
// arrays layout: parallel columns instead of per-tuple structs, so
// aggregation scans are cache-dense and a warm clone shares untouched
// shards wholesale. A shard is writable only by the table whose epoch
// it carries; every other table copy-on-writes it first (privatize).
type factShard struct {
	epoch uint64
	n     int
	// coords holds n*nd member version IDs, times n instants, values
	// and cfs n*nm entries each, sources n counts, and avgN n*nm Avg
	// contribution counts (nil unless the schema has an Avg measure).
	coords  []MVID
	times   []temporal.Instant
	values  []float64
	cfs     []Confidence
	sources []int32
	avgN    []int32
	// zone caches the shard's zone map (min/max time, per-dimension
	// coordinate summaries). Sealed when the shard fills, invalidated
	// by appends, carried across privatize (the copy has identical
	// coords/times), rebuilt lazily by the query scan otherwise.
	zone atomic.Pointer[shardZone]
}

// MappedTable is the restriction of the MultiVersion Fact Table to one
// temporal mode: f'(·, ·, tmp).
//
// A table is single-writer while it is built and read-only once
// published. Incremental maintenance (Schema.WarmFrom) never mutates a
// published table: it takes a copy-on-write clone — shared shards and a
// shared frozen index layer — and folds the fact delta into the clone,
// privatizing only the shards the delta lands in (per-shard epochs; a
// shard whose epoch differs from the table's is copied before the
// first write into it).
type MappedTable struct {
	Mode   Mode
	shards []*factShard
	// n is the total tuple count; epoch is this table's shard-ownership
	// epoch (a shard with a different epoch is shared and frozen).
	n     int
	epoch uint64
	// nd and nm are the coordinate and measure widths of every tuple.
	nd, nm int
	// index holds keys owned by this table; base is the frozen index
	// layer shared with the warm-clone source (nil for a cold build)
	// and only covers the first baseLen tuples. dels is the deletion
	// shadow over base: a retraction cannot remove a key from the
	// shared frozen layer, so it records the key here instead and
	// lookupKey masks it. Invariant: dels is nil whenever base is nil.
	index   map[string]int
	base    map[string]int
	baseLen int
	dels    map[string]bool
	// dead counts tombstoned tuples: slots whose sources count was
	// zeroed by a retraction. The slot itself stays (positional
	// indexing over fixed-size shards must not shift) but every view
	// and scan skips it.
	dead int
	// Dropped counts source facts that could not be presented in this
	// mode at all: no chain of mapping relationships reaches any member
	// version of the target structure version ("impossible cross-points"
	// in the paper's grid rendering, §5.2).
	Dropped int

	alg      ConfidenceAlgebra
	measures []Measure
	hasAvg   bool
	// keyBuf is scratch for building index keys during materialization.
	keyBuf []byte

	// graph and leafIn cache the materialization context of a version
	// mode (the mapping-relationship graph snapshot and per-dimension
	// acceptable leaf sets). Warm retention guarantees both are still
	// valid on the retained clone — same mapping set, same structural
	// signature — so delta folds reuse them instead of rebuilding
	// O(structure) state per swap.
	graph  *mappingGraph
	leafIn []map[MVID]bool

	// view caches the row-oriented compatibility view built by Facts().
	// Built lazily after the table is published; a table under
	// construction must not be viewed.
	view atomic.Pointer[[]*MappedFact]
}

func newMappedTable(m Mode, alg ConfidenceAlgebra, measures []Measure, nd, capacity int) *MappedTable {
	mt := &MappedTable{
		Mode:     m,
		epoch:    shardEpochCounter.Add(1),
		nd:       nd,
		nm:       len(measures),
		index:    make(map[string]int, capacity),
		alg:      alg,
		measures: measures,
	}
	for _, ms := range measures {
		if ms.Agg == Avg {
			mt.hasAvg = true
			break
		}
	}
	return mt
}

// Len reports the number of live mapped tuples (tombstoned slots are
// excluded).
func (mt *MappedTable) Len() int { return mt.n - mt.dead }

// NumShards reports the number of storage shards backing the table.
func (mt *MappedTable) NumShards() int { return len(mt.shards) }

// Facts returns the mapped facts in deterministic order as read-only
// views over the columnar shards. The view is built once per published
// table and cached; callers must not mutate it. Hot paths (query
// aggregation, export) iterate the shards directly instead.
func (mt *MappedTable) Facts() []*MappedFact {
	if v := mt.view.Load(); v != nil {
		return *v
	}
	live := mt.n - mt.dead
	arena := make([]MappedFact, live)
	out := make([]*MappedFact, live)
	i := 0
	for _, sh := range mt.shards {
		for j := 0; j < sh.n; j++ {
			if sh.sources[j] == 0 {
				continue // tombstoned by a retraction
			}
			mt.fillView(&arena[i], sh, j)
			out[i] = &arena[i]
			i++
		}
	}
	mt.view.Store(&out)
	return out
}

// fillView points one row view at tuple j of a shard.
func (mt *MappedTable) fillView(f *MappedFact, sh *factShard, j int) {
	nd, nm := mt.nd, mt.nm
	f.Coords = Coords(sh.coords[j*nd : (j+1)*nd : (j+1)*nd])
	f.Time = sh.times[j]
	f.Values = sh.values[j*nm : (j+1)*nm : (j+1)*nm]
	f.CFs = sh.cfs[j*nm : (j+1)*nm : (j+1)*nm]
	f.Sources = int(sh.sources[j])
	if sh.avgN != nil {
		f.avgN = sh.avgN[j*nm : (j+1)*nm : (j+1)*nm]
	}
}

// shardAt returns the shard and in-shard offset of global tuple i.
func (mt *MappedTable) shardAt(i int) (*factShard, int) {
	return mt.shards[i>>shardShift], i & shardMask
}

// lookupKey probes the owned index layer, then the shared base layer
// inherited from a warm clone. The owned layer is skipped entirely
// while empty — the common state of a fresh warm clone, whose merge
// folds would otherwise pay a dead map probe per delta tuple.
func (mt *MappedTable) lookupKey(key []byte) (int, bool) {
	if len(mt.index) != 0 {
		if i, ok := mt.index[string(key)]; ok {
			return i, true
		}
	}
	if mt.base != nil {
		if mt.dels != nil && mt.dels[string(key)] {
			return 0, false
		}
		if i, ok := mt.base[string(key)]; ok && i < mt.baseLen {
			return i, true
		}
	}
	return 0, false
}

// Lookup returns the mapped tuple at the given coordinates and time as
// a read-only view. It is safe for concurrent use once the table is
// materialized.
func (mt *MappedTable) Lookup(coords Coords, t temporal.Instant) (*MappedFact, bool) {
	var scratch [64]byte
	key := appendFactKey(scratch[:0], coords, t)
	i, ok := mt.lookupKey(key)
	if !ok {
		return nil, false
	}
	f := &MappedFact{}
	sh, j := mt.shardAt(i)
	mt.fillView(f, sh, j)
	return f, true
}

// writableShard returns shard si, privatizing it first when it is
// shared with (or frozen by) another table.
func (mt *MappedTable) writableShard(si int) *factShard {
	sh := mt.shards[si]
	if sh.epoch != mt.epoch {
		sh = mt.privatize(si)
	}
	return sh
}

// privatize deep-copies shard si so this table owns it. This is the
// whole copy-on-write cost of a delta landing in a shared shard:
// O(MappedShardSize) once per (table, shard), never per tuple.
func (mt *MappedTable) privatize(si int) *factShard {
	src := mt.shards[si]
	cp := &factShard{
		epoch:   mt.epoch,
		n:       src.n,
		coords:  append([]MVID(nil), src.coords...),
		times:   append([]temporal.Instant(nil), src.times...),
		values:  append([]float64(nil), src.values...),
		cfs:     append([]Confidence(nil), src.cfs...),
		sources: append([]int32(nil), src.sources...),
	}
	if src.avgN != nil {
		cp.avgN = append([]int32(nil), src.avgN...)
	}
	// The copy has identical coords/times columns, so the zone map
	// carries over; the first append into the copy clears it.
	cp.zone.Store(src.zone.Load())
	mt.shards[si] = cp
	metShardsPrivatized.Inc()
	return cp
}

// tailShard returns the shard the next appended tuple lands in,
// opening a fresh one when the tail is full and privatizing a shared
// partial tail first.
func (mt *MappedTable) tailShard() *factShard {
	if len(mt.shards) == 0 || mt.shards[len(mt.shards)-1].n == MappedShardSize {
		sh := &factShard{epoch: mt.epoch}
		mt.shards = append(mt.shards, sh)
		return sh
	}
	return mt.writableShard(len(mt.shards) - 1)
}

// add folds one emitted tuple into the table. Values, confidences and
// coordinates are copied into the columnar shards; callers keep
// ownership of the passed slices.
func (mt *MappedTable) add(coords Coords, t temporal.Instant, values []float64, cfs []Confidence) {
	mt.keyBuf = appendFactKey(mt.keyBuf[:0], coords, t)
	nm := mt.nm
	if i, ok := mt.lookupKey(mt.keyBuf); ok {
		// A merge: several source tuples present themselves on the same
		// target coordinates. Fold values with the measure aggregate ⊕
		// and confidences with ⊗cf (Definition 12).
		sh := mt.writableShard(i >> shardShift)
		j := i & shardMask
		vals := sh.values[j*nm : (j+1)*nm]
		cfd := sh.cfs[j*nm : (j+1)*nm]
		for k := range vals {
			if mt.measures[k].Agg == Avg {
				vals[k], sh.avgN[j*nm+k] = foldAvg(vals[k], sh.avgN[j*nm+k], values[k])
			} else {
				vals[k] = foldPair(mt.measures[k].Agg, vals[k], values[k])
			}
			cfd[k] = mt.alg.Combine(cfd[k], cfs[k])
		}
		sh.sources[j]++
		return
	}
	sh := mt.tailShard()
	sh.coords = append(sh.coords, coords...)
	sh.times = append(sh.times, t)
	sh.values = append(sh.values, values...)
	sh.cfs = append(sh.cfs, cfs...)
	sh.sources = append(sh.sources, 1)
	if mt.hasAvg {
		for _, v := range values {
			var c int32
			if !math.IsNaN(v) {
				c = 1
			}
			sh.avgN = append(sh.avgN, c)
		}
	}
	sh.n++
	// Appends change the coords/times columns the zone map summarizes:
	// drop a stale zone, and seal a freshly filled shard with its final
	// zone (full shards never change again under this table's epoch).
	if sh.n == MappedShardSize {
		sh.zone.Store(buildZone(sh, mt.nd))
	} else if sh.zone.Load() != nil {
		sh.zone.Store(nil)
	}
	mt.index[string(mt.keyBuf)] = mt.n
	mt.n++
}

// foldPair folds two values under an aggregate kind, with NaN treated as
// the absent value. Avg folding during materialization goes through
// foldAvg instead, which carries contribution counts.
func foldPair(kind AggKind, a, b float64) float64 {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return math.NaN()
	case aNaN:
		if kind == Count {
			return 1
		}
		return b
	case bNaN:
		if kind == Count {
			return 1
		}
		return a
	}
	switch kind {
	case Sum:
		return a + b
	case Count:
		return a + b // both sides are counts of folded source tuples
	case Min:
		return math.Min(a, b)
	case Max:
		return math.Max(a, b)
	case Avg:
		// Two raw values without counts degrade to their midpoint.
		return (a + b) / 2
	}
	return math.NaN()
}

// foldAvg folds one new contribution b into a running mean a carrying
// na non-NaN contributions, returning the new mean and count. Unlike
// the old pairwise (a+b)/2, the running count makes a 3-way merge the
// true mean of its sources regardless of fold order.
func foldAvg(a float64, na int32, b float64) (mean float64, n int32) {
	aNaN, bNaN := math.IsNaN(a), math.IsNaN(b)
	switch {
	case aNaN && bNaN:
		return math.NaN(), na
	case aNaN:
		return b, 1
	case bNaN:
		return a, na
	}
	n = na + 1
	return (a*float64(na) + b) / float64(n), n
}

// modeEntry is the singleflight slot for one mode's materialization:
// the caller that creates the entry runs mapFacts and closes done;
// every concurrent and later caller waits on done and shares the
// result. Waiters may abandon the wait when their own context is
// cancelled; a failed build is evicted from the cache so the next
// caller retries instead of being served a stale error.
type modeEntry struct {
	done  chan struct{}
	table *MappedTable
	err   error
}

// MultiVersionFactTable materializes the function f' of Definition 11:
// for every temporal mode of presentation, the source data presented in
// that mode with confidence factors. Restrictions per mode are computed
// lazily, once per mode (concurrent callers share a single
// materialization), and cached; the cache lives until the schema is
// mutated (the schema drops its reference on Invalidate, so a handle
// obtained before the mutation keeps serving its consistent snapshot).
type MultiVersionFactTable struct {
	schema *Schema
	mu     sync.Mutex
	byMode map[string]*modeEntry
	builds atomic.Int64
	deltas atomic.Int64
}

// MultiVersion returns the schema's MultiVersion Fact Table. The table
// is cached on the schema and recomputed lazily after mutation.
// InsertFact and every dimension mutation through the registered API
// (AddVersion, AddRelationship, SetEnd, EndRelationship — i.e. all
// evolution operators) invalidate the cache automatically.
func (s *Schema) MultiVersion() *MultiVersionFactTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mvftCache == nil {
		s.mvftCache = &MultiVersionFactTable{schema: s, byMode: make(map[string]*modeEntry)}
	}
	return s.mvftCache
}

// Mode returns the restriction of the MultiVersion Fact Table to one
// temporal mode of presentation. Racing callers on the same mode do not
// duplicate work: exactly one materializes, the rest block on it.
func (mv *MultiVersionFactTable) Mode(m Mode) (*MappedTable, error) {
	return mv.ModeContext(context.Background(), m)
}

// ModeContext is Mode with cancellation: the materializing caller
// checks ctx inside the per-fact mapping loops, and waiting callers
// stop waiting when their own ctx is cancelled (the build itself keeps
// the builder's context). A build abandoned on cancellation is evicted
// from the cache, so the mode re-materializes cleanly on the next call.
func (mv *MultiVersionFactTable) ModeContext(ctx context.Context, m Mode) (*MappedTable, error) {
	mt, _, err := mv.modeContext(ctx, m)
	return mt, err
}

// modeContext additionally reports whether the table was served from
// cache (true) or built by this call (false).
func (mv *MultiVersionFactTable) modeContext(ctx context.Context, m Mode) (*MappedTable, bool, error) {
	key := m.String()
	for {
		mv.mu.Lock()
		e, ok := mv.byMode[key]
		if !ok {
			e = &modeEntry{done: make(chan struct{})}
			mv.byMode[key] = e
			mv.mu.Unlock()
			metModeCacheMisses.Inc()
			mv.builds.Add(1)
			start := time.Now()
			e.table, e.err = mv.schema.mapFacts(ctx, m)
			close(e.done)
			if e.err != nil {
				// Never cache a failure: evict the entry so a later call
				// retries (in particular, a build cancelled by one
				// client's disconnect must not poison the mode).
				mv.mu.Lock()
				if mv.byMode[key] == e {
					delete(mv.byMode, key)
				}
				mv.mu.Unlock()
				if isCancellation(e.err) {
					metQueryCancelled.Inc()
				}
				return nil, false, e.err
			}
			metMaterializeSeconds.With(m.String()).Observe(time.Since(start).Seconds())
			metMaterializeDropped.Add(int64(e.table.Dropped))
			return e.table, false, nil
		}
		mv.mu.Unlock()
		metModeCacheHits.Inc()
		select {
		case <-e.done:
			if e.err != nil && isCancellation(e.err) && ctx.Err() == nil {
				// The builder was cancelled but this caller is still
				// live: retry (the failed entry has been evicted).
				continue
			}
			return e.table, true, e.err
		case <-ctx.Done():
			metQueryCancelled.Inc()
			return nil, true, fmt.Errorf("core: materialization wait cancelled: %w", ctx.Err())
		}
	}
}

// isCancellation reports whether err stems from context cancellation
// or deadline expiry.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Materializations reports how many mapFacts runs this table has
// performed — an observability hook that also lets tests assert the
// singleflight contract (one build per mode, however many callers).
func (mv *MultiVersionFactTable) Materializations() int64 { return mv.builds.Load() }

// DeltaApplies reports how many retained modes had a fact delta folded
// in by Schema.WarmFrom instead of a full rematerialization. Warm
// retention never counts as a Materialization.
func (mv *MultiVersionFactTable) DeltaApplies() int64 { return mv.deltas.Load() }

// All materializes every mode of the schema — the full f' — running the
// per-mode materializations concurrently. The returned map is a
// snapshot copy, safe to iterate concurrently with queries.
func (mv *MultiVersionFactTable) All() (map[string]*MappedTable, error) {
	modes := mv.schema.Modes()
	errs := make([]error, len(modes))
	var wg sync.WaitGroup
	for i, m := range modes {
		wg.Add(1)
		go func(i int, m Mode) {
			defer wg.Done()
			_, errs[i] = mv.Mode(m)
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string]*MappedTable, len(modes))
	for _, m := range modes {
		t, err := mv.Mode(m) // cached by the pass above
		if err != nil {
			return nil, err
		}
		out[m.String()] = t
	}
	return out, nil
}

// parallelFactThreshold is the fact count below which materialization
// stays sequential even when several workers are available: tiny
// schemas (like the paper's case study) must not pay goroutine and
// merge overhead.
const parallelFactThreshold = 256

// materializeWorkers resolves the worker count for one materialization:
// an explicit SetMaterializeWorkers pin wins, otherwise GOMAXPROCS with
// the small-table sequential fallback.
func (s *Schema) materializeWorkers(nFacts int) int {
	w := int(s.matWorkers.Load())
	pinned := w > 0
	if !pinned {
		w = runtime.GOMAXPROCS(0)
		if nFacts < parallelFactThreshold {
			return 1
		}
	}
	if w > nFacts {
		w = nFacts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// partialShard is one worker's private output: every tuple its fact
// shard emits, in fact order, stored in flat arenas (one slice per
// field instead of per-tuple allocations). Tuples are NOT pre-folded
// inside the shard — the deterministic merge replays them in global
// fact order so the fold tree (and therefore every floating-point
// result) is bit-identical to the sequential path. Dropped facts only
// contribute a count, which is order-insensitive.
type partialShard struct {
	coords  []MVID
	values  []float64
	cfs     []Confidence
	times   []temporal.Instant
	dropped int
}

// cancelCheckStride is how many facts a mapping or aggregation loop
// processes between context checks: frequent enough that cancellation
// is prompt even on modest tables, rare enough to stay off the
// per-fact hot path.
const cancelCheckStride = 256

// mapShard resolves and maps one contiguous shard of the fact table
// into a partialShard. graph and leafIn are shared read-only snapshots;
// the resolution cache is private to the shard. The shard stops early
// (leaving its output incomplete) when ctx is cancelled; mapFacts
// checks ctx after the join and discards the partials.
func (s *Schema) mapShard(ctx context.Context, graph *mappingGraph, leafIn []map[MVID]bool, facts []*Fact) *partialShard {
	nd, nm := len(s.dims), len(s.measures)
	p := &partialShard{}
	// Resolutions are deterministic per source member version; cache
	// them per worker.
	resCache := make([]map[MVID][]resolution, nd)
	for i := range resCache {
		resCache[i] = make(map[MVID][]resolution)
	}
	perDim := make([][]resolution, nd)
	combo := make([]int, nd)
	for fi, f := range facts {
		if fi%cancelCheckStride == 0 && ctx.Err() != nil {
			return p
		}
		ok := true
		for i, id := range f.Coords {
			rs, cached := resCache[i][id]
			if !cached {
				set := leafIn[i]
				rs = graph.resolve(id, func(x MVID) bool { return set[x] })
				resCache[i][id] = rs
			}
			if len(rs) == 0 {
				ok = false
				break
			}
			perDim[i] = rs
		}
		if !ok {
			p.dropped++
			continue
		}
		// Cartesian product across dimensions (splits fan out). Each
		// combination appends one tuple to the arenas.
		for i := range combo {
			combo[i] = 0
		}
		for {
			p.times = append(p.times, f.Time)
			p.values = append(p.values, f.Values...)
			values := p.values[len(p.values)-nm:]
			cb := len(p.cfs)
			for k := 0; k < nm; k++ {
				p.cfs = append(p.cfs, SourceData)
			}
			cfs := p.cfs[cb:]
			for i := 0; i < nd; i++ {
				r := perDim[i][combo[i]]
				p.coords = append(p.coords, r.target)
				for k := 0; k < nm; k++ {
					v, okv := r.per[k].Fn.Map(values[k])
					if !okv {
						v = math.NaN()
					}
					values[k] = v
					cfs[k] = s.alg.Combine(cfs[k], r.per[k].CF)
				}
			}
			// Advance the product counter.
			i := 0
			for ; i < len(combo); i++ {
				combo[i]++
				if combo[i] < len(perDim[i]) {
					break
				}
				combo[i] = 0
			}
			if i == len(combo) {
				break
			}
		}
	}
	return p
}

// mergePartials replays each shard's emissions, in shard order and
// within a shard in fact order, through MappedTable.add — exactly the
// add sequence the sequential path would have run, so merges fold in
// the same order and the result is bit-identical for any worker count.
func (s *Schema) mergePartials(out *MappedTable, partials []*partialShard) {
	nd, nm := len(s.dims), len(s.measures)
	for _, p := range partials {
		if p == nil {
			continue
		}
		out.Dropped += p.dropped
		for i, t := range p.times {
			out.add(
				Coords(p.coords[i*nd:(i+1)*nd:(i+1)*nd]),
				t,
				p.values[i*nm:(i+1)*nm:(i+1)*nm],
				p.cfs[i*nm:(i+1)*nm:(i+1)*nm],
			)
		}
	}
}

// mapInto resolves facts through the mapping graph and folds them into
// out: the expensive resolution/mapping phase shards across
// materializeWorkers goroutines, the cheap fold replays the shards
// deterministically (see mergePartials). Shared by cold
// materialization (all facts) and warm delta application (the appended
// suffix) — the add sequence, and with it every floating-point bit, is
// identical either way.
func (s *Schema) mapInto(ctx context.Context, out *MappedTable, graph *mappingGraph, leafIn []map[MVID]bool, facts []*Fact) error {
	workers := s.materializeWorkers(len(facts))
	if workers <= 1 {
		p := s.mapShard(ctx, graph, leafIn, facts)
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: materialization cancelled: %w", err)
		}
		s.mergePartials(out, []*partialShard{p})
		return nil
	}
	partials := make([]*partialShard, workers)
	chunk := (len(facts) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(facts))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = s.mapShard(ctx, graph, leafIn, facts[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: materialization cancelled: %w", err)
	}
	s.mergePartials(out, partials)
	return nil
}

// foldTCM folds facts into a tcm table in fact order: source values
// copied into flat arenas, confidences the zero value SourceData.
// Shared by cold materialization (all facts) and delta application
// (the appended suffix) — the add sequence, and therefore every bit of
// the result, is identical either way.
func (s *Schema) foldTCM(ctx context.Context, out *MappedTable, facts []*Fact) error {
	nm := len(s.measures)
	values := make([]float64, 0, len(facts)*nm)
	cfs := make([]Confidence, len(facts)*nm)
	for i, f := range facts {
		if i > 0 && i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: materialization cancelled: %w", err)
			}
		}
		values = append(values, f.Values...)
		out.add(f.Coords, f.Time,
			values[i*nm:(i+1)*nm:(i+1)*nm],
			cfs[i*nm:(i+1)*nm:(i+1)*nm])
	}
	return nil
}

// versionLeafSets builds, per dimension, the acceptable mapping targets
// for a structure version: the leaf member versions of its restriction.
// Built once per materialization, read-only for all workers.
func (s *Schema) versionLeafSets(sv *StructureVersion) []map[MVID]bool {
	leafIn := make([]map[MVID]bool, len(s.dims))
	for i, d := range s.dims {
		rd := sv.Dimension(d.ID)
		set := make(map[MVID]bool)
		if rd != nil {
			for _, mv := range rd.LeavesAt(sv.Valid.Start) {
				set[mv.ID] = true
			}
		}
		leafIn[i] = set
	}
	return leafIn
}

// mapFacts presents the temporally consistent fact table in the given
// mode. In tcm the result is the source data tagged sd (the paper's
// f'|tcm = f × {sd}^m). In a version mode every source coordinate is
// resolved into the leaf member versions of the target structure
// version through the mapping-relationship graph; values flow through
// the composed mapping functions, confidences through ⊗cf; tuples
// landing on identical target coordinates merge under ⊕ and ⊗cf.
//
// Resolution and mapping — the expensive phase — is sharded across
// materializeWorkers goroutines over a shared read-only mapping-graph
// snapshot; the cheap fold phase replays the shards deterministically
// (see mapInto). The graph and leaf sets are cached on the table so
// warm delta folds after a clone-swap reuse them.
func (s *Schema) mapFacts(ctx context.Context, m Mode) (*MappedTable, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: materialization cancelled: %w", err)
	}
	facts := s.facts.Facts()
	switch m.Kind {
	case TCMKind:
		out := newMappedTable(m, s.alg, s.measures, len(s.dims), len(facts))
		if err := s.foldTCM(ctx, out, facts); err != nil {
			return nil, err
		}
		return out, nil
	case VersionKind:
		if m.Version == nil {
			return nil, fmt.Errorf("core: version mode without structure version")
		}
	default:
		return nil, fmt.Errorf("core: unknown mode kind %d", m.Kind)
	}

	sv := m.Version
	out := newMappedTable(m, s.alg, s.measures, len(s.dims), len(facts))
	out.graph = newMappingGraph(s.mappings, len(s.measures), s.alg)
	out.leafIn = s.versionLeafSets(sv)
	if err := s.mapInto(ctx, out, out.graph, out.leafIn, facts); err != nil {
		return nil, err
	}
	return out, nil
}
