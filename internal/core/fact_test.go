package core

import (
	"testing"

	"mvolap/internal/temporal"
)

func TestCoordsKeyAndEqual(t *testing.T) {
	a := Coords{"x", "y"}
	b := Coords{"x", "y"}
	c := Coords{"x", "z"}
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("Key not canonical")
	}
	if !a.Equal(b) || a.Equal(c) || a.Equal(Coords{"x"}) {
		t.Error("Equal wrong")
	}
	cl := a.Clone()
	cl[0] = "mut"
	if a[0] != "x" {
		t.Error("Clone must not share backing array")
	}
}

func TestFactTableInsertLookup(t *testing.T) {
	ft := NewFactTable(2)
	if err := ft.Insert(Coords{"a"}, y(2001), 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := ft.Insert(Coords{"a"}, y(2001), 5); err == nil {
		t.Error("arity mismatch must fail")
	}
	vals, ok := ft.Lookup(Coords{"a"}, y(2001))
	if !ok || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("Lookup = %v, %v", vals, ok)
	}
	if _, ok := ft.Lookup(Coords{"a"}, y(2002)); ok {
		t.Error("missing fact must not be found")
	}
	// The table is a function: re-insert replaces.
	if err := ft.Insert(Coords{"a"}, y(2001), 9, 8); err != nil {
		t.Fatal(err)
	}
	vals, _ = ft.Lookup(Coords{"a"}, y(2001))
	if vals[0] != 9 || ft.Len() != 1 {
		t.Error("re-insert must replace in place")
	}
}

func TestFactTableInsertCopiesCoords(t *testing.T) {
	ft := NewFactTable(1)
	coords := Coords{"a"}
	if err := ft.Insert(coords, y(2001), 1); err != nil {
		t.Fatal(err)
	}
	coords[0] = "changed"
	if _, ok := ft.Lookup(Coords{"a"}, y(2001)); !ok {
		t.Error("Insert must defensively copy coordinates")
	}
}

func TestFactTableTimes(t *testing.T) {
	ft := NewFactTable(1)
	for _, yr := range []int{2003, 2001, 2002, 2001} {
		if err := ft.Insert(Coords{MVID(rune('a' + yr%10))}, y(yr), 1); err != nil {
			t.Fatal(err)
		}
	}
	times := ft.Times()
	if len(times) != 3 || times[0] != y(2001) || times[2] != y(2003) {
		t.Errorf("Times = %v", times)
	}
	span := ft.TimeSpan()
	if !span.Equal(temporal.Between(y(2001), y(2003))) {
		t.Errorf("TimeSpan = %v", span)
	}
	if !NewFactTable(1).TimeSpan().Empty() {
		t.Error("empty table span must be empty")
	}
}
