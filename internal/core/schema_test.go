package core

import (
	"testing"
	"testing/quick"

	"mvolap/internal/temporal"
)

func orgSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema("test", Measure{Name: "Amount", Agg: Sum})
	if err := s.AddDimension(buildOrg(t)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDimensionRegistry(t *testing.T) {
	s := orgSchema(t)
	if s.Dimension("Org") == nil {
		t.Fatal("dimension lookup failed")
	}
	if s.Dimension("nope") != nil {
		t.Error("unknown dimension must be nil")
	}
	if s.DimIndex("Org") != 0 || s.DimIndex("nope") != -1 {
		t.Error("DimIndex wrong")
	}
	if err := s.AddDimension(NewDimension("Org", "dup")); err == nil {
		t.Error("duplicate dimension must be rejected")
	}
	if len(s.Dimensions()) != 1 {
		t.Error("Dimensions() wrong length")
	}
}

func TestSchemaMeasures(t *testing.T) {
	s := NewSchema("m", Measure{Name: "a", Agg: Sum}, Measure{Name: "b", Agg: Avg})
	if s.MeasureIndex("b") != 1 || s.MeasureIndex("zz") != -1 {
		t.Error("MeasureIndex wrong")
	}
	if len(s.Measures()) != 2 {
		t.Error("Measures() wrong")
	}
	if s.Facts().Measures() != 2 {
		t.Error("fact table arity wrong")
	}
}

func TestInsertFactValidation(t *testing.T) {
	s := orgSchema(t)
	ok := s.InsertFact(Coords{"Smith"}, y(2001), 50)
	if ok != nil {
		t.Fatalf("valid fact rejected: %v", ok)
	}
	cases := []struct {
		name   string
		coords Coords
		t      temporal.Instant
		vals   []float64
	}{
		{"arity", Coords{"Smith", "Smith"}, y(2001), []float64{1}},
		{"unknown member", Coords{"zzz"}, y(2001), []float64{1}},
		{"not valid at t", Coords{"Bill"}, y(2001), []float64{1}},
		{"value arity", Coords{"Smith"}, y(2001), []float64{1, 2}},
	}
	for _, c := range cases {
		if err := s.InsertFact(c.coords, c.t, c.vals...); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMustInsertFactPanics(t *testing.T) {
	s := orgSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("MustInsertFact must panic on invalid fact")
		}
	}()
	s.MustInsertFact(Coords{"zzz"}, y(2001), 1)
}

func TestAddMappingValidation(t *testing.T) {
	s := orgSchema(t)
	good := MappingRelationship{
		From:     "Jones",
		To:       "Bill",
		Forward:  UniformMapping(1, Linear{0.4}, ApproxMapping),
		Backward: UniformMapping(1, Identity, ExactMapping),
	}
	if err := s.AddMapping(good); err != nil {
		t.Fatalf("good mapping rejected: %v", err)
	}
	if len(s.Mappings()) != 1 {
		t.Error("mapping not stored")
	}
	bad := good
	bad.From = "zzz"
	if err := s.AddMapping(bad); err == nil {
		t.Error("mapping from unknown member must be rejected")
	}
	bad = good
	bad.To = "zzz"
	if err := s.AddMapping(bad); err == nil {
		t.Error("mapping to unknown member must be rejected")
	}
	bad = good
	bad.Forward = nil
	if err := s.AddMapping(bad); err == nil {
		t.Error("mapping with wrong arity must be rejected")
	}
}

func TestVersionOfAndDimensionOf(t *testing.T) {
	s := orgSchema(t)
	if s.VersionOf("Smith") == nil || s.VersionOf("zzz") != nil {
		t.Error("VersionOf wrong")
	}
	if d := s.DimensionOf("Smith"); d == nil || d.ID != "Org" {
		t.Error("DimensionOf wrong")
	}
	if s.DimensionOf("zzz") != nil {
		t.Error("DimensionOf(zzz) must be nil")
	}
}

func TestStructureVersionLookups(t *testing.T) {
	s := orgSchema(t)
	svs := s.StructureVersions()
	if len(svs) != 3 {
		t.Fatalf("got %d versions", len(svs))
	}
	if v := s.VersionAt(y(2002)); v == nil || v.ID != "V2" {
		t.Errorf("VersionAt(2002) = %v", v)
	}
	if v := s.VersionAt(y(1999)); v != nil {
		t.Errorf("VersionAt(1999) = %v, want nil", v)
	}
	if v := s.VersionByID("V3"); v == nil || !v.Valid.Equal(temporal.Since(y(2003))) {
		t.Errorf("VersionByID(V3) = %v", v)
	}
	if s.VersionByID("V9") != nil {
		t.Error("VersionByID(V9) must be nil")
	}
	// Restricted dimension accessors.
	v1 := svs[0]
	if v1.Dimension("Org") == nil || v1.Dimension("zz") != nil {
		t.Error("StructureVersion.Dimension wrong")
	}
	if len(v1.Dimensions()) != 1 {
		t.Error("StructureVersion.Dimensions wrong")
	}
	if v1.String() != "V1 [01/2001 ; 12/2001]" {
		t.Errorf("String = %q", v1.String())
	}
}

func TestStructureVersionsCacheInvalidation(t *testing.T) {
	s := orgSchema(t)
	first := s.StructureVersions()
	if got := s.StructureVersions(); &got[0] != &first[0] {
		t.Error("structure versions must be cached")
	}
	s.Invalidate()
	// After invalidation the result is recomputed (content equal).
	second := s.StructureVersions()
	if len(second) != len(first) {
		t.Error("recomputed versions differ")
	}
}

// TestStructureVersionsPartitionProperty: structure versions partition
// the schema lifetime — sorted, disjoint, adjacent, covering.
func TestStructureVersionsPartitionProperty(t *testing.T) {
	f := func(seed uint32) bool {
		s := randomEvolvingSchema(int64(seed))
		svs := s.StructureVersions()
		if len(svs) == 0 {
			return true
		}
		for i := 1; i < len(svs); i++ {
			if !svs[i-1].Valid.Adjacent(svs[i].Valid) {
				return false
			}
		}
		// Every member version interval is covered by whole versions.
		for _, d := range s.Dimensions() {
			for _, mv := range d.Versions() {
				for _, sv := range svs {
					x := sv.Valid.Intersect(mv.Valid)
					if !x.Empty() && !x.Equal(sv.Valid) {
						return false // partial overlap: boundary missed
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStructureVersionsConsecutiveDiffer: adjacent structure versions
// must have different structural signatures (maximality).
func TestStructureVersionsConsecutiveDiffer(t *testing.T) {
	f := func(seed uint32) bool {
		s := randomEvolvingSchema(int64(seed))
		svs := s.StructureVersions()
		for i := 1; i < len(svs); i++ {
			if s.signatureAt(svs[i-1].Valid.Start) == s.signatureAt(svs[i].Valid.Start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestModes(t *testing.T) {
	s := orgSchema(t)
	modes := s.Modes()
	if len(modes) != 4 {
		t.Fatalf("got %d modes, want tcm + 3 versions", len(modes))
	}
	if modes[0].String() != "tcm" {
		t.Errorf("first mode = %v", modes[0])
	}
	if modes[1].String() != "V1" || modes[3].String() != "V3" {
		t.Errorf("version modes = %v, %v", modes[1], modes[3])
	}
	if (Mode{Kind: VersionKind}).String() != "version(?)" {
		t.Error("nil version mode String")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := orgSchema(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	// Corrupt a relationship's validity behind the dimension's back.
	d := s.Dimension("Org")
	d.rels[0].Valid = temporal.Always
	if err := s.Validate(); err == nil {
		t.Error("corrupted relationship must fail validation")
	}
}

// TestDegenerateSchemas: empty schemas must not panic anywhere on the
// query path.
func TestDegenerateSchemas(t *testing.T) {
	// No dimensions, no facts.
	s := NewSchema("empty", Measure{Name: "m", Agg: Sum})
	if got := s.StructureVersions(); len(got) != 0 {
		t.Errorf("empty schema versions = %v", got)
	}
	if got := s.Modes(); len(got) != 1 || got[0].Kind != TCMKind {
		t.Errorf("empty schema modes = %v", got)
	}
	res, err := s.Execute(Query{Grain: GrainYear, Mode: TCM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("empty schema rows = %v", res.Rows)
	}
	// Dimension with members but no facts.
	d := NewDimension("D", "D")
	if err := d.AddVersion(&MemberVersion{ID: "a", Level: "L", Valid: temporal.Always}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDimension(d); err != nil {
		t.Fatal(err)
	}
	res, err = s.Execute(Query{
		GroupBy: []GroupBy{{Dim: "D", Level: "L"}},
		Grain:   GrainYear,
		Mode:    TCM(),
	})
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("factless schema: %v, %v", res.Rows, err)
	}
	// Version-mode query on a factless schema.
	if svs := s.StructureVersions(); len(svs) == 1 {
		res, err = s.Execute(Query{Grain: GrainYear, Mode: InVersion(svs[0])})
		if err != nil || len(res.Rows) != 0 {
			t.Errorf("factless version mode: %v, %v", res.Rows, err)
		}
	} else {
		t.Errorf("factless schema versions = %v", svs)
	}
	// Schema without measures.
	s2 := NewSchema("nomeasures")
	if err := s2.AddDimension(buildOrg(t)); err != nil {
		t.Fatal(err)
	}
	if err := s2.InsertFact(Coords{"Smith"}, y(2001)); err != nil {
		t.Fatal(err)
	}
	res, err = s2.Execute(Query{Grain: GrainYear, Mode: TCM()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0].Values) != 0 {
		t.Errorf("zero-measure rows = %+v", res.Rows)
	}
}
