package core

import "mvolap/internal/obs"

// Engine-level metrics, registered on the process-wide registry and
// served by internal/server at GET /metrics. Names and semantics are
// documented in docs/observability.md.
var (
	metMaterializeSeconds = obs.Default().HistogramVec(
		"mvolap_materialize_seconds",
		"MVFT materialization duration per temporal mode of presentation.",
		nil, "mode")
	metModeCacheHits = obs.Default().Counter(
		"mvolap_mode_cache_hits_total",
		"Mode requests served from an already-materialized (or in-flight) MVFT restriction.")
	metModeCacheMisses = obs.Default().Counter(
		"mvolap_mode_cache_misses_total",
		"Mode requests that had to materialize the MVFT restriction.")
	metMaterializeDropped = obs.Default().Counter(
		"mvolap_materialize_dropped_total",
		"Source facts dropped during materialization because no mapping chain reaches the target structure version.")
	metFactsScanned = obs.Default().Counter(
		"mvolap_query_facts_scanned_total",
		"Mapped facts scanned by query aggregation (zone-pruned shards excluded).")
	metShardsPruned = obs.Default().Counter(
		"mvolap_query_shards_pruned_total",
		"MappedTable shards skipped by zone-map pruning during query scans.")
	metFactsPruned = obs.Default().Counter(
		"mvolap_query_facts_pruned_total",
		"Mapped facts inside zone-pruned shards (work avoided by the scan).")
	metQueryRows = obs.Default().Counter(
		"mvolap_query_rows_total",
		"Result rows emitted by query aggregation.")
	metQueryCancelled = obs.Default().Counter(
		"mvolap_query_cancelled_total",
		"Queries or materializations abandoned on context cancellation or deadline.")
	metDeltaApplies = obs.Default().Counter(
		"mvolap_mvft_delta_applies_total",
		"Retained MVFT modes that absorbed a fact batch incrementally instead of rematerializing.")
	metModesRetained = obs.Default().Counter(
		"mvolap_mvft_modes_retained_total",
		"Cached MVFT modes carried across a schema clone-swap by structure-aware invalidation.")
	metModesEvicted = obs.Default().Counter(
		"mvolap_mvft_modes_evicted_total",
		"Cached MVFT modes dropped across a schema clone-swap because their structure or mappings changed.")
	metShardsShared = obs.Default().Counter(
		"mvolap_mvft_shards_shared_total",
		"MappedTable storage shards shared wholesale (header copy only) by warm copy-on-write clones.")
	metShardsPrivatized = obs.Default().Counter(
		"mvolap_mvft_shards_privatized_total",
		"Shared MappedTable storage shards deep-copied because a delta fold wrote into them.")
	metRetractionsApplied = obs.Default().Counter(
		"mvolap_mvft_retractions_applied_total",
		"Retracted source facts handed to warm MVFT maintenance (per tuple, per batch).")
	metModesSubtracted = obs.Default().Counter(
		"mvolap_mvft_modes_subtracted_total",
		"Retained MVFT modes that absorbed a retraction by unfolding (tombstone/subtract) instead of rebuilding.")
	metModesEvictedByRetract = obs.Default().Counter(
		"mvolap_mvft_modes_evicted_by_retract_total",
		"Cached MVFT modes evicted because a retraction could not be unfolded exactly (Min/Max, non-source confidence, or inconsistent cell state).")
)
